package nalquery

import (
	"path/filepath"
	"testing"

	"nalquery/internal/store"
	"nalquery/internal/xmlgen"
)

// TestLoadStoreFile: a document persisted in the binary store format loads
// into the engine and answers queries identically to its in-memory
// original.
func TestLoadStoreFile(t *testing.T) {
	cfg := xmlgen.DefaultConfig(40)
	doc := xmlgen.Bib(cfg)
	path := filepath.Join(t.TempDir(), "bib.nalb")
	if err := store.SaveFile(path, doc); err != nil {
		t.Fatal(err)
	}

	fromStore := NewEngine()
	if err := fromStore.LoadStoreFile("bib.xml", path); err != nil {
		t.Fatal(err)
	}
	inMemory := NewEngine()
	inMemory.LoadDocument(doc)

	q := `
let $d := doc("bib.xml")
for $t in $d//book/title
return <t>{ string($t) }</t>`
	a, err := fromStore.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	b, err := inMemory.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Errorf("store-loaded document answers differently from the in-memory one")
	}
	if a == "" {
		t.Errorf("empty result from store-loaded document")
	}
}

// TestLoadStoreFileMissing: a missing path reports an error.
func TestLoadStoreFileMissing(t *testing.T) {
	eng := NewEngine()
	if err := eng.LoadStoreFile("x.xml", filepath.Join(t.TempDir(), "absent.nalb")); err == nil {
		t.Errorf("no error for missing store file")
	}
}
