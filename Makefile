# Build/verify targets. tier1 is the hard gate every PR must keep green;
# bench-smoke additionally vets the tree and runs every benchmark family
# once, catching benchmark-harness rot without paying for real measurement.
# ci is the full gate: tier-1, go vet plus race-built tests, and the
# benchmark-trajectory diff against the committed BENCH_results.json.

GO ?= go

.PHONY: tier1 vet lint test race-test faults fuzz-smoke bench-smoke bench-json bench-diff serve load-smoke ci

tier1:
	$(GO) build ./...
	$(GO) test ./...

vet:
	$(GO) vet ./...

# lint builds the repo's own analyzer suite (cmd/nalvet, docs/ANALYSIS.md)
# and runs it over the whole tree through the go vet driver. It enforces
# the cross-file engine invariants: operator-dispatch completeness,
# panic discipline, charge-map label stability, MustParse confinement and
# scan-loop cancellation polling. Findings print as file:line: message.
lint:
	@mkdir -p .bin
	$(GO) build -o .bin/nalvet ./cmd/nalvet
	$(GO) vet -vettool=$(CURDIR)/.bin/nalvet ./...

test:
	$(GO) test ./...

# race-test vets the tree and runs the test suite built with the race
# detector — the data-race gate of the CI story.
race-test:
	$(GO) vet ./...
	$(GO) test -race ./...

# faults runs the resource-governance fault-injection sweep under the race
# detector: every paper plan on both engines, tripped at every operator
# boundary the run crosses (faults_test.go), plus the budget-exhaustion
# paths of the HTTP tier. Uncached (-count=1) so CI always re-executes it.
faults:
	$(GO) test -race -count=1 -run 'TestFault|TestWithMax|TestBudget|TestConcurrentBudget' .
	$(GO) test -race -count=1 -run 'TestResource|TestRequestBodyBounds' ./internal/server/

# fuzz-smoke is the per-PR fuzzing gate (docs/FUZZING.md): each native fuzz
# target runs briefly under the coverage engine (which always replays the
# committed testdata/fuzz corpus first — the pinned crashers), then the
# seeded differential sweep drives generated queries through every plan
# alternative on both engines under the race detector. Override FUZZTIME /
# QGEN_SEED / QGEN_COUNT to dig; failures print a one-line reproducer.
FUZZTIME ?= 30s
QGEN_SEED ?= 20240808
QGEN_COUNT ?= 250
fuzz-smoke:
	$(GO) test -fuzz FuzzParse -fuzztime $(FUZZTIME) -run '^$$' ./internal/xquery/
	$(GO) test -fuzz FuzzRoundTrip -fuzztime $(FUZZTIME) -run '^$$' ./internal/xquery/
	$(GO) test -fuzz FuzzCompile -fuzztime $(FUZZTIME) -run '^$$' .
	$(GO) test -fuzz FuzzHTTPQuery -fuzztime $(FUZZTIME) -run '^$$' ./internal/server/
	NALQUERY_QGEN_SEED=$(QGEN_SEED) NALQUERY_QGEN_COUNT=$(QGEN_COUNT) \
		$(GO) test -race -count=1 -run 'TestDifferential|TestCrasher|TestMalformedRequestSweep' . ./internal/server/

bench-smoke: vet
	$(GO) build ./...
	$(GO) test -run '^$$' -bench . -benchtime 1x ./...

# bench-json regenerates BENCH_results.json, the machine-readable perf
# trajectory (ns/op, B/op, allocs/op per experiment/plan/size).
bench-json:
	$(GO) run ./cmd/nalbench -json

# bench-diff compares the working-tree BENCH_results.json against the
# committed trajectory (BENCH_BASE, default HEAD) and fails when allocs/op
# regresses more than BENCH_DIFF_PCT percent on any measured plan, or when
# a measured plan vanished from the file (ns/op is reported but not gated —
# wall-clock noise, unlike the allocation profile, is machine-dependent).
# It gates the trajectory transition you are about to commit: regenerate
# with `make bench-json` first, or set BENCH_BASE=HEAD~1 to validate the
# last committed transition.
BENCH_BASE ?= HEAD
BENCH_DIFF_PCT ?= 10
bench-diff:
	@git show $(BENCH_BASE):BENCH_results.json > .bench-base.json
	@$(GO) run ./cmd/nalbench -diff .bench-base.json -threshold $(BENCH_DIFF_PCT); \
		rc=$$?; rm -f .bench-base.json; exit $$rc

# serve runs a local nalserved over the synthetic corpus — the quickest
# way to poke the HTTP surface by hand (see docs/SERVER.md).
SERVE_ADDR ?= 127.0.0.1:8080
SERVE_GEN ?= 1000
serve:
	$(GO) run ./cmd/nalserved -addr $(SERVE_ADDR) -gen $(SERVE_GEN)

# load-smoke exercises the full service lifecycle end to end: start a
# daemon on a private port, wait for /readyz, drive a short nalload sweep
# (including an overload step), SIGTERM the daemon and require a clean
# drain. It catches rot in the daemon wiring that the in-process e2e suite
# cannot see (flag parsing, signal handling, real sockets).
LOAD_ADDR ?= 127.0.0.1:18730
load-smoke:
	@mkdir -p .bin
	$(GO) build -o .bin/nalserved ./cmd/nalserved
	$(GO) build -o .bin/nalload ./cmd/nalload
	@./.bin/nalserved -addr $(LOAD_ADDR) -gen 200 -max-inflight 2 -max-queue 2 & \
		pid=$$!; \
		./.bin/nalload -addr http://$(LOAD_ADDR) -wait 10s -warmup 200ms \
			-concurrency 1,8 -duration 1s; rc=$$?; \
		kill -TERM $$pid; wait $$pid; drc=$$?; \
		[ $$rc -eq 0 ] && [ $$drc -eq 0 ]

ci: tier1 lint race-test bench-diff
