# Build/verify targets. tier1 is the hard gate every PR must keep green;
# bench-smoke additionally vets the tree and runs every benchmark family
# once, catching benchmark-harness rot without paying for real measurement.

GO ?= go

.PHONY: tier1 vet test bench-smoke bench-json

tier1:
	$(GO) build ./...
	$(GO) test ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

bench-smoke: vet
	$(GO) build ./...
	$(GO) test -run '^$$' -bench . -benchtime 1x ./...

# bench-json regenerates BENCH_results.json, the machine-readable perf
# trajectory (ns/op, B/op, allocs/op per experiment/plan/size).
bench-json:
	$(GO) run ./cmd/nalbench -json
