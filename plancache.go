package nalquery

import (
	"container/list"
	"sync"
)

// DefaultPlanCacheSize is the plan-cache capacity of a new Engine: enough
// for a serving loop's working set of distinct query texts while bounding
// the memory pinned by cached plans and their document snapshots.
const DefaultPlanCacheSize = 128

// planCache is the engine's bounded LRU of compiled queries, keyed by the
// exact query text plus the engine-state generation it was compiled under.
// A document load or catalog edit bumps the generation, so stale entries
// can never be returned — they simply age out of the LRU.
type planCache struct {
	mu      sync.Mutex
	cap     int
	ll      *list.List // front = most recently used; values are *planCacheEntry
	entries map[planCacheKey]*list.Element

	hits, misses int64
}

type planCacheKey struct {
	text string
	gen  uint64
}

type planCacheEntry struct {
	key planCacheKey
	q   *Query
}

func (c *planCache) get(text string, gen uint64) (*Query, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.cap <= 0 || c.entries == nil {
		c.misses++
		return nil, false
	}
	el, ok := c.entries[planCacheKey{text: text, gen: gen}]
	if !ok {
		c.misses++
		return nil, false
	}
	c.ll.MoveToFront(el)
	c.hits++
	return el.Value.(*planCacheEntry).q, true
}

func (c *planCache) put(text string, gen uint64, q *Query) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.cap <= 0 {
		return
	}
	if c.entries == nil {
		c.ll = list.New()
		c.entries = make(map[planCacheKey]*list.Element)
	}
	key := planCacheKey{text: text, gen: gen}
	if el, ok := c.entries[key]; ok {
		// A concurrent miss compiled the same text twice; keep the newer
		// query, the plans are equivalent.
		el.Value.(*planCacheEntry).q = q
		c.ll.MoveToFront(el)
		return
	}
	c.entries[key] = c.ll.PushFront(&planCacheEntry{key: key, q: q})
	for c.ll.Len() > c.cap {
		c.evictOldest()
	}
}

// evictOldest removes the least recently used entry; callers hold mu.
func (c *planCache) evictOldest() {
	el := c.ll.Back()
	if el == nil {
		return
	}
	c.ll.Remove(el)
	delete(c.entries, el.Value.(*planCacheEntry).key)
}

func (c *planCache) resize(n int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.cap = n
	if n <= 0 {
		c.ll = nil
		c.entries = nil
		return
	}
	for c.ll != nil && c.ll.Len() > n {
		c.evictOldest()
	}
}

func (c *planCache) stats() PlanCacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	st := PlanCacheStats{Hits: c.hits, Misses: c.misses}
	if c.ll != nil {
		st.Entries = c.ll.Len()
	}
	return st
}

// PlanCacheStats reports the engine plan cache's effectiveness counters.
type PlanCacheStats struct {
	// Hits and Misses count cache consultations by Engine.Query and
	// Engine.RunText since the engine was created.
	Hits, Misses int64
	// Entries is the number of cached compiled queries (stale generations
	// included until they age out).
	Entries int
}

// SetPlanCacheSize bounds the engine's plan cache to n compiled queries,
// evicting the least recently used beyond the bound; n <= 0 disables
// caching and drops all entries. The default is DefaultPlanCacheSize.
func (e *Engine) SetPlanCacheSize(n int) { e.cache.resize(n) }

// PlanCacheStats returns the plan cache's hit/miss/occupancy counters.
func (e *Engine) PlanCacheStats() PlanCacheStats { return e.cache.stats() }
