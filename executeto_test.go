package nalquery

import (
	"bytes"
	"errors"
	"testing"
)

// TestExecuteToMatchesExecute: the writer-streaming API produces the same
// bytes as the in-memory APIs on every plan.
func TestExecuteToMatchesExecute(t *testing.T) {
	eng := NewEngine()
	eng.LoadUseCaseDocuments(40, 2)
	q, err := eng.Compile(QueryQ1Grouping)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range q.Plans() {
		want, _, err := q.Execute(p.Name)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		stats, err := q.ExecuteTo(&buf, p.Name)
		if err != nil {
			t.Fatalf("plan %q: %v", p.Name, err)
		}
		if buf.String() != want {
			t.Errorf("plan %q: streamed bytes differ from Execute output", p.Name)
		}
		if stats.DocAccesses == 0 {
			t.Errorf("plan %q: no document accesses recorded", p.Name)
		}
	}
}

// failingWriter errors after a few bytes, to exercise the flush error path.
type failingWriter struct{ n int }

func (f *failingWriter) Write(p []byte) (int, error) {
	f.n += len(p)
	if f.n > 8 {
		return 0, errors.New("disk full")
	}
	return len(p), nil
}

// TestExecuteToWriterError: write failures surface as errors.
func TestExecuteToWriterError(t *testing.T) {
	eng := NewEngine()
	eng.LoadUseCaseDocuments(40, 2)
	q, err := eng.Compile(QueryQ1Grouping)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := q.ExecuteTo(&failingWriter{}, ""); err == nil {
		t.Errorf("no error from a failing writer")
	}
}

// TestExecuteToUnknownPlan: plan lookup errors propagate.
func TestExecuteToUnknownPlan(t *testing.T) {
	eng := NewEngine()
	eng.LoadUseCaseDocuments(20, 2)
	q, err := eng.Compile(QueryQ1Grouping)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := q.ExecuteTo(&buf, "no-such-plan"); err == nil {
		t.Errorf("no error for unknown plan name")
	}
}
