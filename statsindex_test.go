package nalquery

import (
	"fmt"
	"strings"
	"sync"
	"testing"

	"nalquery/internal/cost"
)

// The statistics & index subsystem's differential gate and lifecycle tests:
// index-substituted plans must be byte-identical to their base plans on
// every paper query under both engines, measured statistics must flip the
// default plan choice, and the snapshot sidecar must invalidate exactly
// like the plan cache.

// TestDifferentialIndexedPlans: for every paper query, every "indexed *"
// plan alternative produces byte-identical output to its base plan, on both
// the slot engine and the reference evaluator. (The name keeps it inside
// the CI fuzz-smoke sweep's TestDifferential pattern.)
func TestDifferentialIndexedPlans(t *testing.T) {
	eng := NewEngine()
	eng.LoadUseCaseDocuments(60, 2)
	eng.LoadDBLPDocument(60)
	for name, text := range PaperQueries {
		q, err := eng.Compile(text)
		if err != nil {
			t.Fatalf("%s: compile: %v", name, err)
		}
		indexed := 0
		for _, p := range q.Plans() {
			base, ok := strings.CutPrefix(p.Name, "indexed ")
			if !ok {
				continue
			}
			indexed++
			want, _, err := q.Execute(base)
			if err != nil {
				t.Fatalf("%s/%s: base: %v", name, base, err)
			}
			got, st, err := q.Execute(p.Name)
			if err != nil {
				t.Fatalf("%s/%s: %v", name, p.Name, err)
			}
			if got != want {
				t.Fatalf("%s: plan %q differs from %q\nbase:    %q\nindexed: %q",
					name, p.Name, base, want, got)
			}
			if st.IndexScans == 0 {
				t.Errorf("%s: plan %q executed no index scans", name, p.Name)
			}
			ref, _, err := q.ExecuteReference(p.Name)
			if err != nil {
				t.Fatalf("%s/%s (reference): %v", name, p.Name, err)
			}
			if ref != want {
				t.Fatalf("%s: plan %q reference output differs from base", name, p.Name)
			}
		}
		if indexed == 0 {
			t.Logf("%s: no indexed alternative (ok for shapes outside the substitution)", name)
		}
	}
}

// selectiveQuery scans books for one year — the selective predicate the
// value index answers with a probe.
const selectiveQuery = `
let $d := doc("bib.xml")
for $b in $d//book
where $b/@year = 1999
return $b/title`

// TestPlanFlipMeasuredStats pins the tentpole behavior: with the engine's
// measured statistics the default plan choice is an index-scan plan, while
// the constants-only cost model (the pre-stats default) picks the full-scan
// plan — and the flip pays off, measured by the engine's own counters.
func TestPlanFlipMeasuredStats(t *testing.T) {
	eng := NewEngine()
	eng.LoadUseCaseDocuments(300, 2)

	measured, err := eng.Compile(selectiveQuery)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	constants, err := eng.Compile(selectiveQuery,
		WithCostModel(cost.NewModel(eng.snapshot().docs)))
	if err != nil {
		t.Fatalf("compile (constants): %v", err)
	}

	mp, _ := measured.Plan("")
	cp, _ := constants.Plan("")
	if !strings.HasPrefix(mp.Name, "indexed ") {
		t.Fatalf("measured stats picked %q, want an indexed plan", mp.Name)
	}
	if strings.HasPrefix(cp.Name, "indexed ") {
		t.Fatalf("constants-only model picked %q, want a full-scan plan", cp.Name)
	}

	// The flip is a win: the index plan touches a fraction of the tuples.
	outIdx, stIdx, err := measured.Execute(mp.Name)
	if err != nil {
		t.Fatalf("indexed: %v", err)
	}
	outFull, stFull, err := measured.Execute(cp.Name)
	if err != nil {
		t.Fatalf("full scan: %v", err)
	}
	if outIdx != outFull {
		t.Fatalf("plan outputs differ")
	}
	if stIdx.IndexScans == 0 || stFull.IndexScans != 0 {
		t.Fatalf("index-scan counters: indexed=%d full=%d", stIdx.IndexScans, stFull.IndexScans)
	}
	if stIdx.Tuples*4 >= stFull.Tuples {
		t.Fatalf("index plan processed %d tuples vs %d for the full scan — no win",
			stIdx.Tuples, stFull.Tuples)
	}
}

// TestStatsLifecycle: document statistics appear at load, survive unrelated
// loads, and are replaced — together with the plan choice they drive — when
// the document is re-uploaded.
func TestStatsLifecycle(t *testing.T) {
	eng := NewEngine()
	if _, ok := eng.DocumentStats("bib.xml"); ok {
		t.Fatalf("stats before any load")
	}
	runs0 := eng.AnalyzerRuns()

	eng.LoadXMLString("bib.xml", `<bib><book year="1999"><title>A</title></book></bib>`)
	ds, ok := eng.DocumentStats("bib.xml")
	if !ok || ds.Elements != 3 {
		t.Fatalf("stats after load: %+v ok=%v", ds, ok)
	}
	if eng.AnalyzerRuns() != runs0+1 {
		t.Fatalf("analyzer runs = %d, want %d", eng.AnalyzerRuns(), runs0+1)
	}

	// An unrelated load keeps bib.xml's sidecar (pointer-compare reconcile).
	eng.LoadXMLString("other.xml", `<o/>`)
	if eng.AnalyzerRuns() != runs0+2 {
		t.Fatalf("unrelated load reran the bib analyzer: %d runs", eng.AnalyzerRuns())
	}

	// Replacing the document replaces the measurement.
	eng.LoadXMLString("bib.xml",
		`<bib><book year="2001"><title>B</title></book><book year="2002"><title>C</title></book></bib>`)
	ds, _ = eng.DocumentStats("bib.xml")
	if ds.Elements != 5 {
		t.Fatalf("stats after replace: %+v", ds)
	}
	if eng.AnalyzerRuns() != runs0+3 {
		t.Fatalf("analyzer runs after replace = %d", eng.AnalyzerRuns())
	}
	found := false
	for _, p := range ds.Paths {
		if p.Path == "/bib/book/@year" {
			found = true
			if p.Count != 2 || p.Min != "2001" || p.Max != "2002" {
				t.Fatalf("replaced year stats: %+v", p)
			}
		}
	}
	if !found {
		t.Fatalf("no @year path in %+v", ds.Paths)
	}
}

// TestConcurrentRunDuringReanalysis: 8 sessions run a query that exercises
// index scans while the engine concurrently replaces documents (triggering
// re-analysis). Compile-time snapshots keep every run consistent; the test
// is meaningful under -race.
func TestConcurrentRunDuringReanalysis(t *testing.T) {
	eng := NewEngine()
	eng.LoadUseCaseDocuments(40, 2)
	q, err := eng.Compile(selectiveQuery)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	want, _, err := q.Execute("")
	if err != nil {
		t.Fatalf("execute: %v", err)
	}

	var wg sync.WaitGroup
	errs := make(chan error, 16)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				got, _, err := q.Execute("")
				if err != nil {
					errs <- err
					return
				}
				if got != want {
					errs <- fmt.Errorf("output drifted under concurrent reload")
					return
				}
			}
		}()
	}
	// Concurrent re-uploads force sidecar reconciliation on every mutate.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 20; i++ {
			eng.LoadXMLString("churn.xml", fmt.Sprintf(`<c><v>%d</v></c>`, i))
			// Re-compiling against the fresh snapshot must also be safe.
			if _, err := eng.Compile(selectiveQuery); err != nil {
				errs <- err
				return
			}
		}
	}()
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// TestExplainCards: estimates and actuals line up operator-for-operator, and
// parameterized queries skip the actuals.
func TestExplainCards(t *testing.T) {
	eng := NewEngine()
	eng.LoadUseCaseDocuments(50, 2)
	q, err := eng.Compile(selectiveQuery)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	rows, err := q.ExplainCards("")
	if err != nil {
		t.Fatalf("cards: %v", err)
	}
	if len(rows) < 2 || rows[0].Depth != 0 {
		t.Fatalf("card rows: %+v", rows)
	}
	for _, r := range rows {
		if r.Actual < 0 {
			t.Fatalf("unparameterized query must measure actuals: %+v", r)
		}
		if r.Est <= 0 {
			t.Fatalf("estimate must be positive: %+v", r)
		}
	}
	if !strings.Contains(FormatCards(rows), "est=") {
		t.Fatalf("FormatCards output malformed")
	}

	pq, err := eng.Compile(`declare variable $y external;
let $d := doc("bib.xml") for $b in $d//book where $b/@year = $y return $b/title`)
	if err != nil {
		t.Fatalf("compile param query: %v", err)
	}
	prows, err := pq.ExplainCards("")
	if err != nil {
		t.Fatalf("param cards: %v", err)
	}
	for _, r := range prows {
		if r.Actual != -1 {
			t.Fatalf("parameterized query must not execute: %+v", r)
		}
	}
}
