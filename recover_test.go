package nalquery

import (
	"context"
	"errors"
	"io"
	"strings"
	"testing"

	"nalquery/internal/algebra"
	"nalquery/internal/value"
)

// panicOp is an injected poison plan: every evaluation path panics. It
// stands in for any evaluator bug so the tests pin the recovery boundary
// itself, not one particular crash.
type panicOp struct{ msg any }

func (p panicOp) Eval(*algebra.Ctx, value.Tuple) value.TupleSeq { panic(p.msg) }
func (p panicOp) String() string                                { return "panic!" }
func (p panicOp) Children() []algebra.Op                        { return nil }
func (p panicOp) Exprs() []algebra.Expr                         { return nil }
func (p panicOp) Attrs() ([]string, bool)                       { return nil, false }

// poisonQuery compiles a valid query, then replaces its plan set with the
// panicking op under the given plan name.
func poisonQuery(t *testing.T, msg any) *Query {
	t.Helper()
	eng := runEngine(20)
	q, err := eng.Compile(`let $d1 := doc("bib.xml")
		for $t1 in $d1//book/title
		return <t>{ $t1 }</t>`)
	if err != nil {
		t.Fatal(err)
	}
	q.plans = []Plan{{Name: "poison", op: panicOp{msg: msg}}}
	return q
}

// requireInternal asserts err is the typed *InternalError with the
// expected payload.
func requireInternal(t *testing.T, err error, q *Query) *InternalError {
	t.Helper()
	if err == nil {
		t.Fatal("expected an error from the panicking plan, got nil")
	}
	if !errors.Is(err, ErrInternal) {
		t.Fatalf("error %v does not match ErrInternal", err)
	}
	var ie *InternalError
	if !errors.As(err, &ie) {
		t.Fatalf("error %T is not *InternalError", err)
	}
	if ie.Query != q.Text {
		t.Fatalf("InternalError.Query = %q, want the poison query text", ie.Query)
	}
	if ie.Plan != "poison" {
		t.Fatalf("InternalError.Plan = %q, want %q", ie.Plan, "poison")
	}
	if !strings.Contains(string(ie.Stack), "panicOp") {
		t.Fatalf("InternalError.Stack does not include the panic origin:\n%s", ie.Stack)
	}
	return ie
}

func TestNextRecoversEvaluatorPanic(t *testing.T) {
	q := poisonQuery(t, "boom")
	res, err := q.Run(context.Background())
	if err != nil {
		t.Fatalf("Run itself must not fail (evaluation is lazy): %v", err)
	}
	defer res.Close()
	if _, ok := res.Next(); ok {
		t.Fatal("Next returned an item from a panicking plan")
	}
	ie := requireInternal(t, res.Err(), q)
	if ie.Panic != "boom" {
		t.Fatalf("InternalError.Panic = %v, want boom", ie.Panic)
	}
	// The stream stays ended; the session is reusable only for Err/Close.
	if _, ok := res.Next(); ok {
		t.Fatal("Next yielded an item after the stream failed")
	}
	if err := res.Close(); !errors.Is(err, ErrInternal) {
		t.Fatalf("Close = %v, want the InternalError", err)
	}
}

func TestWriteXMLRecoversEvaluatorPanic(t *testing.T) {
	q := poisonQuery(t, errors.New("kaput"))
	res, err := q.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	defer res.Close()
	werr := res.WriteXML(io.Discard)
	ie := requireInternal(t, werr, q)
	// A panic(error) unwraps to its cause.
	var cause error
	if cause = errors.Unwrap(ie); cause == nil || cause.Error() != "kaput" {
		t.Fatalf("Unwrap = %v, want the panicked error", cause)
	}
}

func TestExecuteWrapperRecoversEvaluatorPanic(t *testing.T) {
	q := poisonQuery(t, 42)
	if _, _, err := q.Execute("poison"); !errors.Is(err, ErrInternal) {
		t.Fatalf("Execute = %v, want ErrInternal", err)
	}
}

func TestPreparedRunRecoversEvaluatorPanic(t *testing.T) {
	q := poisonQuery(t, "boom")
	p := &Prepared{q: q}
	res, err := p.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	defer res.Close()
	if err := res.WriteXML(io.Discard); !errors.Is(err, ErrInternal) {
		t.Fatalf("Prepared WriteXML = %v, want ErrInternal", err)
	}
}

// TestEngineSurvivesPoisonQuery is the process-level robustness property:
// after a poison query fails its run, the same engine keeps answering
// healthy queries.
func TestEngineSurvivesPoisonQuery(t *testing.T) {
	eng := runEngine(20)
	text := `let $d1 := doc("bib.xml")
		for $t1 in $d1//book/title
		return <t>{ $t1 }</t>`
	q, err := eng.Compile(text)
	if err != nil {
		t.Fatal(err)
	}
	want, _, err := q.Execute("")
	if err != nil {
		t.Fatal(err)
	}
	poison := poisonQuery(t, "boom")
	for i := 0; i < 3; i++ {
		if _, _, err := poison.Execute(""); !errors.Is(err, ErrInternal) {
			t.Fatalf("poison run %d: %v, want ErrInternal", i, err)
		}
		got, err := eng.Query(text)
		if err != nil {
			t.Fatalf("healthy query after poison run %d: %v", i, err)
		}
		if got != want {
			t.Fatalf("healthy query result changed after poison run %d", i)
		}
	}
}

// TestSeqStopsOnEvaluatorPanic pins the range-func adaptor: the loop ends
// instead of panicking, and Err carries the InternalError.
func TestSeqStopsOnEvaluatorPanic(t *testing.T) {
	q := poisonQuery(t, "boom")
	res, err := q.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	defer res.Close()
	n := 0
	for range res.Seq() {
		n++
	}
	if n != 0 {
		t.Fatalf("Seq yielded %d items from a panicking plan", n)
	}
	requireInternal(t, res.Err(), q)
}

// TestCompileRecoversPanic pins the compile boundary's recover backstop:
// a panic anywhere in parse/normalize/translate/rewrite surfaces as a
// typed *InternalError carrying the query text and stack, never as a
// process crash — and the engine stays usable afterwards.
func TestCompileRecoversPanic(t *testing.T) {
	eng := runEngine(20)
	compilePanicHook = func() { panic("injected compile panic") }
	defer func() { compilePanicHook = nil }()

	const text = `let $d1 := doc("bib.xml")
		for $t1 in $d1//book/title
		return <t>{ $t1 }</t>`
	q, err := eng.Compile(text)
	if q != nil || err == nil {
		t.Fatalf("Compile = (%v, %v), want (nil, *InternalError)", q, err)
	}
	if !errors.Is(err, ErrInternal) {
		t.Fatalf("error %v does not match ErrInternal", err)
	}
	var ie *InternalError
	if !errors.As(err, &ie) {
		t.Fatalf("error %T is not *InternalError", err)
	}
	if ie.Query != text {
		t.Fatalf("InternalError.Query = %q, want the compiled text", ie.Query)
	}
	if ie.Panic != "injected compile panic" {
		t.Fatalf("InternalError.Panic = %v", ie.Panic)
	}
	if !strings.Contains(string(ie.Stack), "compileState") {
		t.Fatalf("stack does not show the compile boundary:\n%s", ie.Stack)
	}

	// Prepare shares the boundary.
	if _, err := eng.Prepare(text); !errors.Is(err, ErrInternal) {
		t.Fatalf("Prepare error %v does not match ErrInternal", err)
	}

	// The engine must shrug the poison off entirely.
	compilePanicHook = nil
	p, err := eng.Prepare(text)
	if err != nil {
		t.Fatalf("engine unusable after compile panic: %v", err)
	}
	res, err := p.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	res.Close()
}
