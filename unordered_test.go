package nalquery

import (
	"sort"
	"strings"
	"testing"
)

// unorderedQ1 is the Sec. 5.1 grouping query wrapped in XQuery's
// unordered() function (Sec. 1): the result's order is irrelevant and the
// engine may answer with the unordered plan family.
const unorderedQ1 = `
unordered(
let $d1 := doc("bib.xml")
for $a1 in distinct-values($d1//author)
return
  <author>
    <name> { $a1 } </name>
    {
      let $d2 := doc("bib.xml")
      for $b2 in $d2/bib/book[$a1 = author]
      return $b2/title
    }
  </author>)`

// fragments splits a constructed result into its top-level element
// instances (for multiset comparison of unordered outputs).
func fragments(out, endTag string) []string {
	var fs []string
	for _, f := range strings.SplitAfter(out, endTag) {
		f = strings.TrimSpace(f)
		if f != "" {
			fs = append(fs, f)
		}
	}
	return fs
}

// TestUnorderedWrapperDetected: the unordered(FLWR) wrapper sets
// OrderIrrelevant and adds unordered plan alternatives.
func TestUnorderedWrapperDetected(t *testing.T) {
	eng := NewEngine()
	eng.LoadUseCaseDocuments(50, 2)
	q, err := eng.Compile(unorderedQ1)
	if err != nil {
		t.Fatal(err)
	}
	if !q.OrderIrrelevant {
		t.Fatalf("OrderIrrelevant = false, want true for unordered(FLWR)")
	}
	var unorderedPlans []string
	for _, p := range q.Plans() {
		if strings.HasPrefix(p.Name, "unordered ") {
			unorderedPlans = append(unorderedPlans, p.Name)
			found := false
			for _, a := range p.Applied {
				if a == "unordered-family" {
					found = true
				}
			}
			if !found {
				t.Errorf("plan %q lacks the unordered-family marker in Applied", p.Name)
			}
		}
	}
	if len(unorderedPlans) == 0 {
		t.Fatalf("no unordered plan alternatives offered; have %v", planNames(q))
	}
}

// TestUnorderedOutputsArePermutations: every unordered plan produces a
// permutation of its ordered counterpart's result elements, and each
// author's titles stay in document order inside the element.
func TestUnorderedOutputsArePermutations(t *testing.T) {
	eng := NewEngine()
	eng.LoadUseCaseDocuments(50, 3)
	q, err := eng.Compile(unorderedQ1)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range q.Plans() {
		if !strings.HasPrefix(p.Name, "unordered ") {
			continue
		}
		base := strings.TrimPrefix(p.Name, "unordered ")
		ordOut, _, err := q.Execute(base)
		if err != nil {
			t.Fatalf("ordered plan %q: %v", base, err)
		}
		unordOut, _, err := q.Execute(p.Name)
		if err != nil {
			t.Fatalf("unordered plan %q: %v", p.Name, err)
		}
		a := fragments(ordOut, "</author>")
		b := fragments(unordOut, "</author>")
		sort.Strings(a)
		sort.Strings(b)
		if len(a) != len(b) {
			t.Fatalf("plan %q: %d fragments vs %d in ordered plan", p.Name, len(b), len(a))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("plan %q: fragment multiset differs at %d:\n%s\nvs\n%s",
					p.Name, i, a[i], b[i])
			}
		}
	}
}

// TestUnorderedRejectedWithoutWrapper: without the wrapper no unordered
// alternatives appear.
func TestUnorderedRejectedWithoutWrapper(t *testing.T) {
	eng := NewEngine()
	eng.LoadUseCaseDocuments(20, 2)
	q, err := eng.Compile(QueryQ1Grouping)
	if err != nil {
		t.Fatal(err)
	}
	if q.OrderIrrelevant {
		t.Errorf("OrderIrrelevant = true for a plain FLWR query")
	}
	for _, p := range q.Plans() {
		if strings.HasPrefix(p.Name, "unordered ") {
			t.Errorf("unexpected unordered plan %q", p.Name)
		}
	}
}

// TestUnorderedDeterministicOutput: unordered plans are still deterministic
// (key order is a fixed total order) — repeated executions agree.
func TestUnorderedDeterministicOutput(t *testing.T) {
	eng := NewEngine()
	eng.LoadUseCaseDocuments(30, 2)
	q, err := eng.Compile(unorderedQ1)
	if err != nil {
		t.Fatal(err)
	}
	var name string
	for _, p := range q.Plans() {
		if strings.HasPrefix(p.Name, "unordered ") {
			name = p.Name
			break
		}
	}
	if name == "" {
		t.Skip("no unordered alternative for this catalog")
	}
	first, _, err := q.Execute(name)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		out, _, err := q.Execute(name)
		if err != nil {
			t.Fatal(err)
		}
		if out != first {
			t.Fatalf("unordered plan %q output differs between runs", name)
		}
	}
}
