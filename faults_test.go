package nalquery

// Fault-injection sweep over the resource-governance boundaries: for every
// paper query, every plan alternative and both engines, force a budget trip
// at each operator boundary the run actually crosses and assert the typed
// failure contract — a *ResourceError (never a raw panic, never a silent
// partial result), no goroutine leaks, and an engine that keeps answering
// the same query correctly afterwards. CI runs this file under -race.

import (
	"context"
	"errors"
	"io"
	"runtime"
	"strings"
	"testing"
	"time"
)

// pointRecorder is the discovery hook: it records every trip point the run
// consults (in first-consultation order, with per-point counts) and never
// trips.
type pointRecorder struct {
	order  []string
	counts map[string]int
}

func (r *pointRecorder) hook(point string) bool {
	if r.counts == nil {
		r.counts = map[string]int{}
	}
	if r.counts[point] == 0 {
		r.order = append(r.order, point)
	}
	r.counts[point]++
	return false
}

// tripAt forces a budget trip on the n-th consultation of one point,
// standing in for an allocation failure at exactly that boundary.
type tripAt struct {
	point string
	n     int
	seen  int
}

func (h *tripAt) hook(point string) bool {
	if point != h.point {
		return false
	}
	h.seen++
	return h.seen == h.n
}

// engineOpts returns the Run options selecting plan + engine.
func engineOpts(plan string, reference bool) []RunOption {
	opts := []RunOption{WithPlan(plan)}
	if reference {
		opts = append(opts, WithReferenceEngine())
	}
	return opts
}

// runToDiscard executes one full run through the WriteXML path and returns
// its error.
func runToDiscard(t *testing.T, q *Query, opts ...RunOption) error {
	t.Helper()
	res, err := q.Run(context.Background(), opts...)
	if err != nil {
		return err
	}
	defer res.Close()
	return res.WriteXML(io.Discard)
}

// requireResourceError asserts err is the typed *ResourceError tripped at
// the wanted operator boundary.
func requireResourceError(t *testing.T, err error, wantOp string) *ResourceError {
	t.Helper()
	if err == nil {
		t.Fatal("expected a resource error, got nil")
	}
	if !errors.Is(err, ErrResourceExhausted) {
		t.Fatalf("error %v does not match ErrResourceExhausted", err)
	}
	if errors.Is(err, ErrInternal) {
		t.Fatalf("resource trip leaked through as ErrInternal: %v", err)
	}
	var re *ResourceError
	if !errors.As(err, &re) {
		t.Fatalf("error %T is not *ResourceError", err)
	}
	if wantOp != "" && re.Op != wantOp {
		t.Fatalf("ResourceError.Op = %q, want %q", re.Op, wantOp)
	}
	return re
}

// waitGoroutines fails if the goroutine count does not settle back to the
// baseline: a trip mid-pipeline must unwind everything it started.
func waitGoroutines(t *testing.T, base int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		if n := runtime.NumGoroutine(); n <= base {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			t.Fatalf("goroutines leaked: %d > baseline %d\n%s",
				runtime.NumGoroutine(), base, buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestFaultSweepAllPaperPlans is the acceptance sweep: discover the trip
// points each (query, plan, engine) run crosses, then re-run tripping each
// point — first and a mid-stream consultation — and pin the typed error,
// the unchanged engine, and zero leaked goroutines.
func TestFaultSweepAllPaperPlans(t *testing.T) {
	eng := runEngine(20)
	base := runtime.NumGoroutine()
	for id, text := range PaperQueries {
		q, err := eng.Compile(text)
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		for _, p := range q.Plans() {
			for _, reference := range []bool{false, true} {
				label := id + "/" + p.Name
				if reference {
					label += "/reference"
				}
				opts := engineOpts(p.Name, reference)

				// Baseline: the plan runs clean without a budget.
				var want strings.Builder
				res, err := q.Run(context.Background(), opts...)
				if err != nil {
					t.Fatalf("%s: baseline Run: %v", label, err)
				}
				if err := res.WriteXML(&want); err != nil {
					t.Fatalf("%s: baseline run: %v", label, err)
				}
				res.Close()

				// Discovery: which boundaries does this run consult?
				rec := &pointRecorder{}
				if err := runToDiscard(t, q, append(opts, withFaultHook(rec.hook))...); err != nil {
					t.Fatalf("%s: discovery run: %v", label, err)
				}
				if len(rec.order) == 0 {
					t.Fatalf("%s: run consulted no trip points", label)
				}
				if rec.counts["scan"] == 0 || rec.counts["serialize"] == 0 {
					t.Fatalf("%s: scan/serialize boundaries not consulted: %v", label, rec.counts)
				}

				// The sweep: trip each consulted point, at its first
				// consultation and mid-stream.
				for _, point := range rec.order {
					for _, n := range []int{1, (rec.counts[point] + 1) / 2} {
						if n < 1 {
							n = 1
						}
						h := &tripAt{point: point, n: n}
						err := runToDiscard(t, q, append(opts, withFaultHook(h.hook))...)
						re := requireResourceError(t, err, point)
						if re.Query != q.Text || re.Plan != p.Name {
							t.Fatalf("%s: trip at %s[%d]: error names query %q plan %q",
								label, point, n, re.Query, re.Plan)
						}
					}
				}

				// The engine is unaffected: the same plan still answers
				// byte-identically.
				var got strings.Builder
				res, err = q.Run(context.Background(), opts...)
				if err != nil {
					t.Fatalf("%s: post-sweep Run: %v", label, err)
				}
				if err := res.WriteXML(&got); err != nil {
					t.Fatalf("%s: post-sweep run: %v", label, err)
				}
				res.Close()
				if got.String() != want.String() {
					t.Fatalf("%s: result changed after fault sweep", label)
				}
			}
		}
	}
	waitGoroutines(t, base)
}

// TestFaultTripSurfacesThroughNext pins the typed-consumption path: a trip
// mid-iteration ends the stream with the ResourceError on Err, and the
// session stays cleanly ended.
func TestFaultTripSurfacesThroughNext(t *testing.T) {
	eng := runEngine(20)
	q, err := eng.Compile(QueryQ1Grouping)
	if err != nil {
		t.Fatal(err)
	}
	h := &tripAt{point: "serialize", n: 3}
	res, err := q.Run(context.Background(), withFaultHook(h.hook))
	if err != nil {
		t.Fatalf("Run itself must not fail (evaluation is lazy): %v", err)
	}
	defer res.Close()
	n := 0
	for range res.Seq() {
		n++
	}
	requireResourceError(t, res.Err(), "serialize")
	if _, ok := res.Next(); ok {
		t.Fatal("Next yielded an item after the budget trip")
	}
	if err := res.Close(); !errors.Is(err, ErrResourceExhausted) {
		t.Fatalf("Close = %v, want the ResourceError", err)
	}
}

// TestWithMaxMemoryAborts drives a real byte budget: a grouping plan over
// the corpus cannot fit 4 KiB of materialized state, and the run fails with
// the typed error carrying the limit it crossed.
func TestWithMaxMemoryAborts(t *testing.T) {
	eng := runEngine(50)
	q, err := eng.Compile(QueryQ1Grouping)
	if err != nil {
		t.Fatal(err)
	}
	werr := runToDiscard(t, q, WithMaxMemory(4<<10))
	re := requireResourceError(t, werr, "")
	if re.MaxBytes != 4<<10 {
		t.Fatalf("ResourceError.MaxBytes = %d, want %d", re.MaxBytes, 4<<10)
	}
	if re.Bytes <= re.MaxBytes {
		t.Fatalf("ResourceError.Bytes = %d, not past the %d limit", re.Bytes, re.MaxBytes)
	}
}

// TestWithMaxTuplesAborts drives the tuple budget on both engines.
func TestWithMaxTuplesAborts(t *testing.T) {
	eng := runEngine(50)
	q, err := eng.Compile(QueryQ1Grouping)
	if err != nil {
		t.Fatal(err)
	}
	for _, reference := range []bool{false, true} {
		opts := []RunOption{WithMaxTuples(5)}
		if reference {
			opts = append(opts, WithReferenceEngine())
		}
		re := requireResourceError(t, runToDiscard(t, q, opts...), "")
		if re.MaxTuples != 5 || re.Tuples <= 5 {
			t.Fatalf("reference=%v: tuples %d / max %d", reference, re.Tuples, re.MaxTuples)
		}
	}
}

// TestBudgetWithinLimitIsInvisible: a generous budget changes nothing about
// the result, and the charge counters surface through Stats.
func TestBudgetWithinLimitIsInvisible(t *testing.T) {
	eng := runEngine(30)
	for id, text := range PaperQueries {
		q, err := eng.Compile(text)
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		want, _, err := q.Execute("")
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		var st Stats
		var got strings.Builder
		res, err := q.Run(context.Background(), WithMaxMemory(1<<30), WithStats(&st))
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if err := res.WriteXML(&got); err != nil {
			t.Fatalf("%s: budgeted run failed: %v", id, err)
		}
		res.Close()
		if got.String() != want {
			t.Fatalf("%s: budgeted result differs from unbudgeted", id)
		}
		if st.BudgetBytes <= 0 || st.BudgetTuples <= 0 {
			t.Fatalf("%s: budget counters not recorded: %+v", id, st)
		}
	}
}

// TestConcurrentBudgetIsolation: an over-budget run fails while concurrent
// in-budget runs of the same compiled query on the same engine succeed —
// the budget is per run, not per engine.
func TestConcurrentBudgetIsolation(t *testing.T) {
	eng := runEngine(50)
	q, err := eng.Compile(QueryQ1Grouping)
	if err != nil {
		t.Fatal(err)
	}
	want, _, err := q.Execute("")
	if err != nil {
		t.Fatal(err)
	}
	const workers = 8
	errs := make(chan error, workers)
	for i := 0; i < workers; i++ {
		budgeted := i%2 == 0
		go func() {
			res, err := q.Run(context.Background(), func() []RunOption {
				if budgeted {
					return []RunOption{WithMaxMemory(4 << 10)}
				}
				return nil
			}()...)
			if err != nil {
				errs <- err
				return
			}
			defer res.Close()
			var sb strings.Builder
			err = res.WriteXML(&sb)
			if budgeted {
				if !errors.Is(err, ErrResourceExhausted) {
					errs <- errors.New("budgeted run did not trip")
					return
				}
			} else if err != nil {
				errs <- err
				return
			} else if sb.String() != want {
				errs <- errors.New("in-budget run returned a wrong result")
				return
			}
			errs <- nil
		}()
	}
	for i := 0; i < workers; i++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
}
