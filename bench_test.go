// Package nalquery_test contains the benchmark harness that regenerates
// every table and figure of the paper's evaluation (Sec. 5 and Fig. 6).
//
// One benchmark family exists per paper table; within a family, sub-
// benchmarks are keyed by plan alternative, document size and (for Q1)
// authors-per-book. Run
//
//	go test -bench=. -benchmem
//
// for the default measurement points (document sizes 100 and 1000 for the
// quadratic nested plans, up to 10000 for the unnested plans — the nested
// plan at 10000 runs for several minutes, exactly as in the paper, and is
// available through cmd/nalbench -full). The absolute numbers differ from
// the paper's 2003 testbed; the reproduction target is the shape: who wins,
// by what factor, and how plans scale.
package nalquery_test

import (
	"fmt"
	"testing"

	nalquery "nalquery"
	"nalquery/internal/experiments"
)

// nestedSizeCap keeps the quadratic nested plans out of the largest
// measurement point during automated bench runs.
const nestedSizeCap = 1000

func benchExperiment(b *testing.B, id string, sizes []int, apbs []int) {
	exp, ok := experiments.Find(id)
	if !ok {
		b.Fatalf("unknown experiment %s", id)
	}
	if apbs == nil {
		apbs = []int{0}
	}
	for _, apb := range apbs {
		for _, size := range sizes {
			eng := experiments.NewEngine(exp, size, apb)
			q, err := eng.Compile(exp.Query)
			if err != nil {
				b.Fatalf("compile %s: %v", id, err)
			}
			for _, p := range q.Plans() {
				if p.Name == "nested" && size > nestedSizeCap {
					continue
				}
				name := fmt.Sprintf("plan=%s/size=%d", p.Name, size)
				if apb > 0 {
					name = fmt.Sprintf("plan=%s/apb=%d/size=%d", p.Name, apb, size)
				}
				plan := p
				b.Run(name, func(b *testing.B) {
					for i := 0; i < b.N; i++ {
						if _, _, err := q.Execute(plan.Name); err != nil {
							b.Fatal(err)
						}
					}
				})
			}
		}
	}
}

// BenchmarkQ1Grouping regenerates the Sec. 5.1 table (Query 1.1.9.4):
// nested vs. outer join (Eqv. 4) vs. grouping (Eqv. 5) vs. group Ξ, with 2,
// 5 and 10 authors per book.
func BenchmarkQ1Grouping(b *testing.B) {
	benchExperiment(b, "q1", []int{100, 1000, 10000}, []int{2, 5, 10})
}

// BenchmarkQ1DBLP regenerates the Sec. 5.1 DBLP paragraph: only the
// outer-join plan is admissible (authors without books violate Eqv. 5's
// condition).
func BenchmarkQ1DBLP(b *testing.B) {
	benchExperiment(b, "q1dblp", []int{100, 1000, 10000}, nil)
}

// BenchmarkQ2Aggregation regenerates the Sec. 5.2 table (Query 1.1.9.10):
// nested vs. grouping (Eqv. 3).
func BenchmarkQ2Aggregation(b *testing.B) {
	benchExperiment(b, "q2", []int{100, 1000, 10000}, nil)
}

// BenchmarkQ3Existential regenerates the Sec. 5.3 table (Query 1.1.9.5):
// nested vs. semijoin (Eqv. 6).
func BenchmarkQ3Existential(b *testing.B) {
	benchExperiment(b, "q3", []int{100, 1000, 10000}, nil)
}

// BenchmarkQ4ExistsFunction regenerates the Sec. 5.4 table: nested vs.
// semijoin (Eqv. 6) vs. single-scan grouping.
func BenchmarkQ4ExistsFunction(b *testing.B) {
	benchExperiment(b, "q4", []int{100, 1000, 10000}, nil)
}

// BenchmarkQ5Universal regenerates the Sec. 5.5 table: nested vs.
// anti-semijoin (Eqv. 7) vs. count grouping (Eqv. 9).
func BenchmarkQ5Universal(b *testing.B) {
	benchExperiment(b, "q5", []int{100, 1000, 10000}, nil)
}

// BenchmarkQ6HavingCount regenerates the Sec. 5.6 table (Query 1.4.4.14):
// nested vs. grouping (Eqv. 3).
func BenchmarkQ6HavingCount(b *testing.B) {
	benchExperiment(b, "q6", []int{100, 1000, 10000}, nil)
}

// BenchmarkFig6DocumentSizes regenerates Fig. 6: generation plus
// serialization of the six use-case documents at every measurement point
// (the reported metric is the serialized byte size; see cmd/nalbench -exp
// fig6 for the table itself).
func BenchmarkFig6DocumentSizes(b *testing.B) {
	for _, size := range []int{100, 1000} {
		b.Run(fmt.Sprintf("size=%d", size), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				experiments.Fig6([]int{size}, []int{2, 5, 10})
			}
		})
	}
}

// BenchmarkCompile measures the optimizer itself: parse + normalize +
// translate + unnesting for all plan alternatives of each paper query.
func BenchmarkCompile(b *testing.B) {
	eng := nalquery.NewEngine()
	eng.LoadUseCaseDocuments(100, 2)
	eng.LoadDBLPDocument(100)
	for id, text := range nalquery.PaperQueries {
		query := text
		b.Run(id, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := eng.Compile(query); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationHashVsScanGrouping compares the order-preserving hash
// implementation of binary grouping against the definitional scan.
func BenchmarkAblationHashVsScanGrouping(b *testing.B) {
	for _, size := range []int{100, 1000} {
		b.Run(fmt.Sprintf("size=%d", size), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				experiments.AblationHashVsScanGrouping([]int{size})
			}
		})
	}
}

// BenchmarkAblationGroupXi compares Γ + simple Ξ against the fused
// group-detecting Ξ (the paper's "saves a grouping operation").
func BenchmarkAblationGroupXi(b *testing.B) {
	for _, size := range []int{100, 1000} {
		b.Run(fmt.Sprintf("size=%d", size), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := experiments.AblationGroupXi([]int{size}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationPredicatePushdown compares the Q5 anti-semijoin with and
// without pushing ¬p′ into the inner operand (Sec. 5.5).
func BenchmarkAblationPredicatePushdown(b *testing.B) {
	for _, size := range []int{100, 1000} {
		b.Run(fmt.Sprintf("size=%d", size), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := experiments.AblationPushdown([]int{size}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationUnordered compares the order-preserving plans against
// the unordered operator family on unordered(Q1) (Sec. 1).
func BenchmarkAblationUnordered(b *testing.B) {
	for _, size := range []int{100, 1000} {
		b.Run(fmt.Sprintf("size=%d", size), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := experiments.AblationUnordered([]int{size}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationOrderPreservingJoin compares the three physical
// strategies for the order-preserving join (Sec. 2's implementation
// discussion): probe-order hash join, the paper's Grace-hash-join + sort,
// and the order-preserving hash join of Claussen et al. [6].
func BenchmarkAblationOrderPreservingJoin(b *testing.B) {
	for _, size := range []int{100, 1000} {
		b.Run(fmt.Sprintf("size=%d", size), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				experiments.AblationGraceJoin([]int{size})
			}
		})
	}
}
