package nalquery

import (
	"fmt"
	"strings"

	"nalquery/internal/algebra"
	"nalquery/internal/dom"
)

// CardRow is one operator of a plan with its estimated and measured output
// cardinality — the explain-analyze view of the cost model's quality.
type CardRow struct {
	// Depth is the operator's depth in the plan tree (0 = root).
	Depth int
	// Op is the operator's display form.
	Op string
	// Est is the cost model's estimated output cardinality.
	Est float64
	// Actual is the measured output cardinality, or -1 when the plan was
	// not executed (queries with unbound external variables).
	Actual int64
}

// ExplainCards walks the named plan ("" = lowest estimated cost) and
// reports, per operator, the cost model's estimated output cardinality next
// to the actual cardinality measured by executing the operator's subtree
// over the compile-time document snapshot. Queries with external variables
// report estimates only (Actual = -1): their plans cannot run unbound.
//
// Nested subscript plans are not expanded — they evaluate once per outer
// tuple, so a single actual-vs-estimated pair would be meaningless.
func (q *Query) ExplainCards(name string) ([]CardRow, error) {
	p, err := q.Plan(name)
	if err != nil {
		return nil, err
	}
	withActual := len(q.params) == 0
	var rows []CardRow
	var walk func(op algebra.Op, depth int)
	walk = func(op algebra.Op, depth int) {
		row := CardRow{Depth: depth, Op: op.String(),
			Est: q.model.Plan(op).Card, Actual: -1}
		if withActual {
			row.Actual = countRows(op, q.docs)
		}
		rows = append(rows, row)
		for _, c := range op.Children() {
			walk(c, depth+1)
		}
	}
	walk(p.op, 0)
	return rows, nil
}

// countRows executes an operator subtree and counts its output tuples.
func countRows(op algebra.Op, docs map[string]*dom.Document) int64 {
	ctx := algebra.NewCtx(docs)
	it := algebra.OpenIter(op, ctx, nil)
	defer it.Close()
	var n int64
	for {
		if _, ok := it.Next(); !ok {
			return n
		}
		n++
	}
}

// FormatCards renders ExplainCards rows as an indented table.
func FormatCards(rows []CardRow) string {
	var sb strings.Builder
	for _, r := range rows {
		actual := "-"
		if r.Actual >= 0 {
			actual = fmt.Sprintf("%d", r.Actual)
		}
		fmt.Fprintf(&sb, "%-60s est=%-10.0f actual=%s\n",
			strings.Repeat("  ", r.Depth)+r.Op, r.Est, actual)
	}
	return sb.String()
}
