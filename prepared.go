package nalquery

import (
	"context"
	"fmt"
	"math"

	"nalquery/internal/value"
)

// Prepared is a query compiled once for many parameterized executions: the
// compile-once/run-many surface of the engine. A query text may declare
// external variables —
//
//	declare variable $minyear external;
//	let $d1 := doc("bib.xml")
//	for $b1 in $d1//book
//	where $b1/@year > $minyear
//	return $b1/title
//
// — which Prepare compiles into typed parameter expressions: the whole
// parse→normalize→translate→unnest→cost pipeline runs exactly once, plan
// alternatives are chosen once, and each Run supplies bindings that only
// change the selection constants. A Prepared is immutable and safe for any
// number of concurrent Runs, each with its own bindings.
type Prepared struct {
	q *Query
}

// Prepare compiles a query containing external variables once, for repeated
// parameterized execution. It accepts the same options as Compile and, like
// Compile, snapshots the engine's documents and catalog — later Loads do
// not affect it. Queries without external variables prepare fine (Run then
// takes no Bind options).
func (e *Engine) Prepare(text string, opts ...CompileOption) (*Prepared, error) {
	q, err := e.Compile(text, opts...)
	if err != nil {
		return nil, err
	}
	return &Prepared{q: q}, nil
}

// Run starts one execution with per-run bindings and the usual Results
// session semantics, with zero recompilation:
//
//	res, err := p.Run(ctx, nalquery.Bind("minyear", 1993))
//
// Every declared external variable must be bound or Run returns a
// *BindError (ErrUnboundVariable); binding an undeclared name is a
// *BindError too (ErrUnknownVariable). Runs are independent and may
// execute concurrently from many goroutines.
func (p *Prepared) Run(ctx context.Context, opts ...RunOption) (*Results, error) {
	return p.q.Run(ctx, opts...)
}

// Query returns the underlying compiled query (plans, normalized form,
// deprecated Execute wrappers).
func (p *Prepared) Query() *Query { return p.q }

// Vars returns the declared external variable names in declaration order.
func (p *Prepared) Vars() []string { return p.q.Vars() }

// Plans returns the plan alternatives, from the nested baseline to the most
// optimized plan. The alternatives are fixed at Prepare: bindings never
// change the plan set.
func (p *Prepared) Plans() []Plan { return p.q.Plans() }

// Plan returns the alternative with the given name ("" selects the lowest
// estimated cost), with Query.Plan's error contract.
func (p *Prepared) Plan(name string) (Plan, error) { return p.q.Plan(name) }

// Bind supplies the value of the external variable $name for one Run. Go
// values map onto the engine's data model: bool, string, every integer
// kind, float32/float64, a result Value (e.g. pulled from a previous run's
// items), a []any of those as a sequence, and nil as the empty sequence.
// An unsupported type surfaces as a *BindError (ErrBindValue) from Run —
// never as a panic. Binding the same variable twice keeps the last value.
func Bind(name string, v any) RunOption {
	val, err := bindValue(v)
	return func(c *runConfig) {
		c.binds = append(c.binds, binding{name: name, v: val, err: err})
	}
}

// binding is one Bind argument, conversion already attempted (the error is
// reported by Run, keeping Bind's signature option-shaped).
type binding struct {
	name string
	v    value.Value
	err  error
}

// bindValue converts a Go value into the engine's data model.
func bindValue(v any) (value.Value, error) {
	switch w := v.(type) {
	case nil:
		return value.Null{}, nil
	case Value:
		if w.v == nil {
			return value.Null{}, nil
		}
		return w.v, nil
	case bool:
		return value.Bool(w), nil
	case string:
		return value.Str(w), nil
	case int:
		return value.Int(int64(w)), nil
	case int8:
		return value.Int(int64(w)), nil
	case int16:
		return value.Int(int64(w)), nil
	case int32:
		return value.Int(int64(w)), nil
	case int64:
		return value.Int(w), nil
	case uint:
		if uint64(w) > math.MaxInt64 {
			return nil, fmt.Errorf("uint value %d overflows the engine's integer range", w)
		}
		return value.Int(int64(w)), nil
	case uint8:
		return value.Int(int64(w)), nil
	case uint16:
		return value.Int(int64(w)), nil
	case uint32:
		return value.Int(int64(w)), nil
	case uint64:
		if w > math.MaxInt64 {
			return nil, fmt.Errorf("uint64 value %d overflows the engine's integer range", w)
		}
		return value.Int(int64(w)), nil
	case float32:
		return value.Float(float64(w)), nil
	case float64:
		return value.Float(w), nil
	case []any:
		seq := make(value.Seq, len(w))
		for i, m := range w {
			mv, err := bindValue(m)
			if err != nil {
				return nil, err
			}
			seq[i] = mv
		}
		return seq, nil
	default:
		return nil, fmt.Errorf("cannot bind Go value of type %T", v)
	}
}

// bindParams validates a run's Bind options against the query's declared
// external variables and resolves them into the positional binding table
// the engine reads (the slot order fixed at prepare time).
func (q *Query) bindParams(binds []binding) ([]value.Value, error) {
	if len(binds) == 0 && len(q.params) == 0 {
		return nil, nil
	}
	idx := make(map[string]int, len(q.params))
	for i, name := range q.params {
		idx[name] = i
	}
	params := make([]value.Value, len(q.params))
	bindErrs := make([]error, len(q.params))
	for _, b := range binds {
		i, ok := idx[b.name]
		if !ok {
			return nil, &BindError{Var: b.name, reason: ErrUnknownVariable,
				Detail: fmt.Sprintf("query declares %d external variable(s)", len(q.params))}
		}
		// Last bind of a name wins — including over an earlier conversion
		// error of the same name, so the error state tracks the value.
		params[i], bindErrs[i] = b.v, b.err
	}
	for i, name := range q.params {
		if bindErrs[i] != nil {
			return nil, &BindError{Var: name, reason: ErrBindValue, Detail: bindErrs[i].Error()}
		}
		if params[i] == nil {
			return nil, &BindError{Var: name, reason: ErrUnboundVariable}
		}
	}
	return params, nil
}
