package nalquery

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"strconv"
	"strings"
	"testing"

	"nalquery/internal/qgen"
)

// The generated-query differential oracle: every query the grammar generator
// produces and the compiler accepts must yield byte-identical output from
// every plan alternative, on both the slot engine and the reference (map)
// engine, whether consumed as serialized XML or as typed items. Any
// divergence or panic fails with a one-line reproducer (seed + index +
// query text) for triage; typed compile rejections are fine and counted.
//
// NALQUERY_QGEN_SEED and NALQUERY_QGEN_COUNT override the sweep's seed and
// size — the knobs `make fuzz-smoke` uses for the pinned CI sweep and a
// triager uses to replay a reported seed.

const (
	defaultSweepSeed  = 20240808
	defaultSweepCount = 250
)

func sweepParams(t *testing.T) (seed int64, count int) {
	seed, count = defaultSweepSeed, defaultSweepCount
	if testing.Short() {
		count = 40
	}
	if s := os.Getenv("NALQUERY_QGEN_SEED"); s != "" {
		v, err := strconv.ParseInt(s, 10, 64)
		if err != nil {
			t.Fatalf("NALQUERY_QGEN_SEED: %v", err)
		}
		seed = v
	}
	if s := os.Getenv("NALQUERY_QGEN_COUNT"); s != "" {
		v, err := strconv.Atoi(s)
		if err != nil {
			t.Fatalf("NALQUERY_QGEN_COUNT: %v", err)
		}
		count = v
	}
	return seed, count
}

// runToString executes one prepared query under the given options and
// returns its serialized output. Generous budgets guard the sweep against a
// pathological plan materializing without bound — on the small sweep
// documents no correct plan comes near them.
func sweepRun(p *Prepared, opts []RunOption) (string, error) {
	res, err := p.Run(context.Background(),
		append([]RunOption{WithMaxTuples(1 << 21), WithMaxMemory(512 << 20)}, opts...)...)
	if err != nil {
		return "", err
	}
	defer res.Close()
	var sb strings.Builder
	if err := res.WriteXML(&sb); err != nil {
		return "", err
	}
	return sb.String(), nil
}

// runTyped consumes the run item-by-item (the typed consumption path) and
// returns the concatenated XML of the items, which WriteXML documents as
// its own output contract.
func sweepRunTyped(p *Prepared, opts []RunOption) (string, error) {
	res, err := p.Run(context.Background(),
		append([]RunOption{WithMaxTuples(1 << 21), WithMaxMemory(512 << 20)}, opts...)...)
	if err != nil {
		return "", err
	}
	defer res.Close()
	var sb strings.Builder
	for item := range res.Seq() {
		sb.WriteString(item.XML())
	}
	return sb.String(), res.Err()
}

// TestDifferentialGeneratedQueries is the sweep `make fuzz-smoke` pins in
// CI: N generated queries, every plan alternative, both engines, both
// consumption modes.
func TestDifferentialGeneratedQueries(t *testing.T) {
	seed, count := sweepParams(t)
	size, apb := qgen.DocSizes()
	eng := NewEngine()
	eng.LoadUseCaseDocuments(size, apb)

	g := qgen.New(qgen.Config{Seed: seed, Externals: true})
	compiled, rejected := 0, 0
	for i := 0; i < count; i++ {
		q := g.Query()
		repro := fmt.Sprintf("seed=%d index=%d query=%q", seed, i, q.Text)
		p, err := eng.Prepare(q.Text)
		if err != nil {
			var pe *ParseError
			var te *TranslateError
			if !errors.As(err, &pe) && !errors.As(err, &te) {
				t.Fatalf("untyped compile rejection %T (%v)\n%s", err, err, repro)
			}
			rejected++
			continue
		}
		compiled++
		var binds []RunOption
		for name, v := range q.Binds {
			binds = append(binds, Bind(name, v))
		}
		var ref string
		for pi, plan := range p.Plans() {
			for _, eng := range []struct {
				name string
				opts []RunOption
			}{
				{"slot", append([]RunOption{WithPlan(plan.Name)}, binds...)},
				{"map", append([]RunOption{WithPlan(plan.Name), WithReferenceEngine()}, binds...)},
			} {
				out, err := sweepRun(p, eng.opts)
				if err != nil {
					t.Fatalf("plan %q on %s engine failed: %v\n%s", plan.Name, eng.name, err, repro)
				}
				if pi == 0 && eng.name == "slot" {
					ref = out
				} else if out != ref {
					t.Fatalf("divergence: plan %q on %s engine\n%s\nwant: %q\ngot:  %q",
						plan.Name, eng.name, repro, ref, out)
				}
			}
			typed, err := sweepRunTyped(p, append([]RunOption{WithPlan(plan.Name)}, binds...))
			if err != nil {
				t.Fatalf("plan %q typed consumption failed: %v\n%s", plan.Name, err, repro)
			}
			if typed != ref {
				t.Fatalf("divergence: plan %q typed consumption\n%s\nwant: %q\ngot:  %q",
					plan.Name, typed, ref, repro)
			}
		}
	}
	t.Logf("sweep: %d compiled and executed, %d rejected (typed)", compiled, rejected)
	if compiled < count/2 {
		t.Fatalf("only %d/%d generated queries compiled — the generator drifted outside the supported subset", compiled, count)
	}
}

// TestDifferentialMutatedQueries drives token-wise corruptions of generated
// queries through the compiler: whatever the mutation produced, the answer
// must be a clean compile or a typed rejection — never a panic (the compile
// backstop turns one into *InternalError, which fails here), never an
// untyped error.
func TestDifferentialMutatedQueries(t *testing.T) {
	seed, count := sweepParams(t)
	size, apb := qgen.DocSizes()
	eng := NewEngine()
	eng.LoadUseCaseDocuments(size, apb)

	g := qgen.New(qgen.Config{Seed: seed, Externals: true})
	rnd := rand.New(rand.NewSource(seed + 1))
	for i := 0; i < count; i++ {
		text := qgen.Mutate(rnd, g.Query().Text)
		repro := fmt.Sprintf("seed=%d index=%d mutated=%q", seed, i, text)
		q, err := eng.Compile(text)
		if err != nil {
			var pe *ParseError
			var te *TranslateError
			if !errors.As(err, &pe) && !errors.As(err, &te) {
				t.Fatalf("untyped rejection %T (%v)\n%s", err, err, repro)
			}
			continue
		}
		// The mutation happened to stay valid: run the best plan briefly so
		// the executor sees it too.
		plan, err := q.Plan("")
		if err != nil {
			continue
		}
		res, err := q.Run(context.Background(),
			WithPlan(plan.Name), WithMaxTuples(1<<18), WithMaxMemory(64<<20))
		if err != nil {
			if errors.Is(err, ErrInternal) {
				t.Fatalf("internal error: %v\n%s", err, repro)
			}
			continue
		}
		var sb strings.Builder
		if err := res.WriteXML(&sb); err != nil && errors.Is(err, ErrInternal) {
			t.Fatalf("internal error during run: %v\n%s", err, repro)
		}
		res.Close()
	}
}
