package nalquery_test

import (
	"fmt"
	"log"

	nalquery "nalquery"
)

const exampleBib = `<bib>
<book year="1994"><title>TCP/IP Illustrated</title>
  <author><last>Stevens</last><first>W.</first></author>
  <publisher>AW</publisher><price>65.95</price></book>
<book year="2000"><title>Data on the Web</title>
  <author><last>Abiteboul</last><first>S.</first></author>
  <author><last>Suciu</last><first>D.</first></author>
  <publisher>MK</publisher><price>39.95</price></book>
</bib>`

// ExampleEngine_Query runs a nested query one-shot with the most optimized
// plan.
func ExampleEngine_Query() {
	eng := nalquery.NewEngine()
	if err := eng.LoadXMLString("bib.xml", exampleBib); err != nil {
		log.Fatal(err)
	}
	out, err := eng.Query(`
let $d1 := doc("bib.xml")
for $a1 in distinct-values($d1//author)
return <a>{ $a1 }</a>`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(out)
	// Output: <a>StevensW.</a><a>AbiteboulS.</a><a>SuciuD.</a>
}

// ExampleQuery_Plans shows the plan alternatives the unnesting rewriter
// derives for a nested query.
func ExampleQuery_Plans() {
	eng := nalquery.NewEngine()
	if err := eng.LoadXMLString("bib.xml", exampleBib); err != nil {
		log.Fatal(err)
	}
	q, err := eng.Compile(`
let $d1 := doc("bib.xml")
for $a1 in distinct-values($d1//author)
return
  <author><name>{ $a1 }</name>
  { let $d2 := doc("bib.xml")
    for $b2 in $d2//book[$a1 = author]
    return $b2/title }
  </author>`)
	if err != nil {
		log.Fatal(err)
	}
	for _, p := range q.Plans() {
		fmt.Printf("%s %v\n", p.Name, p.Applied)
	}
	// Output:
	// nested []
	// outer join [Eqv.4]
	// grouping [Eqv.5]
	// group Ξ [Eqv.5 xi-fusion]
	// indexed outer join [Eqv.4 index-scan]
	// indexed grouping [Eqv.5 index-scan]
	// indexed group Ξ [Eqv.5 xi-fusion index-scan]
}

// ExampleQuery_Execute compares the nested baseline against an unnested
// plan: identical results, different scan counts.
func ExampleQuery_Execute() {
	eng := nalquery.NewEngine()
	if err := eng.LoadXMLString("bib.xml", exampleBib); err != nil {
		log.Fatal(err)
	}
	q, err := eng.Compile(`
let $d1 := doc("bib.xml")
for $t1 in $d1//book/title
where some $t2 in (let $d2 := doc("bib.xml")
                   for $b2 in $d2//book
                   where $b2/@year > 1999
                   for $t3 in $b2/title
                   return $t3)
      satisfies $t1 = $t2
return <recent>{ $t1 }</recent>`)
	if err != nil {
		log.Fatal(err)
	}
	nested, nestedStats, _ := q.Execute("nested")
	semi, semiStats, _ := q.Execute("semijoin")
	fmt.Println(nested == semi)
	fmt.Println(nestedStats.DocAccesses > semiStats.DocAccesses)
	fmt.Println(semi)
	// Output:
	// true
	// true
	// <recent><title>Data on the Web</title></recent>
}
