package nalquery

import (
	"context"
	"errors"
	"strings"
	"sync"
	"testing"

	"nalquery/internal/qgen"
)

// fuzzEngine is shared across fuzz iterations: document loading dominates
// per-call cost, and the engine is race-safe, so one instance serves every
// worker goroutine.
var fuzzEngine = sync.OnceValue(func() *Engine {
	eng := NewEngine()
	size, apb := qgen.DocSizes()
	eng.LoadUseCaseDocuments(size, apb)
	return eng
})

// compileSeeds covers the compile pipeline end to end: shapes the optimizer
// unnests (quantifiers, grouping, self-joins), shapes it rejects with typed
// errors, and inputs that historically panicked (deep nesting, absent
// optional fields, unbound variables).
var compileSeeds = []string{
	`for $b in doc("bib.xml")//book where $b/@year > 1993 return $b/title`,
	`for $a in distinct-values(doc("bib.xml")//author) return <n>{ $a }</n>`,
	`let $d := doc("users.xml") for $u in $d//usertuple where every $q in doc("prices.xml")//book/price satisfies $q = $u/rating return <hit>{ $u/userid }</hit>`,
	`for $i in distinct-values(doc("users.xml")//rating) where count(doc("users.xml")//usertuple[rating = $i]) >= 1 return <p>{ $i }</p>`,
	`for $a in doc("items.xml")//itemtuple/offered_by where some $b in doc("items.xml")//itemtuple/offered_by satisfies $a = $b return <j>{ $a }</j>`,
	`declare variable $lim external; for $b in doc("prices.xml")//book where $b/price < $lim return $b/title`,
	`for $x at $i in doc("bib.xml")//book order by $x/title return <r n="{$i}">{ $x/title }</r>`,
	`for $x in doc("no-such-doc.xml")//a return $x`,
	`for $x in $undeclared//a return $x`,
	`1 div 0`,
	"for $x in",
}

// FuzzCompile asserts panic-freedom and error typing across the whole
// compile pipeline (parse, normalize, translate, rewrite, plan) plus a
// budgeted execution of whatever compiles: rejections must be errors.As-able
// to a typed error, and neither compile nor run may surface ErrInternal
// (the recover backstops turn panics into it, so any hit here is a real,
// reproducible crash).
func FuzzCompile(f *testing.F) {
	for _, s := range compileSeeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, text string) {
		eng := fuzzEngine()
		q, err := eng.Compile(text)
		if err != nil {
			assertTypedCompileError(t, text, err)
			return
		}
		plan, err := q.Plan("")
		if err != nil {
			return
		}
		res, err := q.Run(context.Background(),
			WithPlan(plan.Name), WithMaxTuples(1<<16), WithMaxMemory(32<<20))
		if err != nil {
			if errors.Is(err, ErrInternal) {
				t.Fatalf("internal error from Run: %v (query=%q)", err, text)
			}
			return
		}
		var sb strings.Builder
		if err := res.WriteXML(&sb); err != nil && errors.Is(err, ErrInternal) {
			t.Fatalf("internal error during WriteXML: %v (query=%q)", err, text)
		}
		res.Close()
	})
}

func assertTypedCompileError(t *testing.T, text string, err error) {
	t.Helper()
	if errors.Is(err, ErrInternal) {
		var ie *InternalError
		if errors.As(err, &ie) {
			t.Fatalf("compile panicked: %v (query=%q)\n%s", ie.Panic, text, ie.Stack)
		}
		t.Fatalf("internal error from Compile: %v (query=%q)", err, text)
	}
	var pe *ParseError
	var te *TranslateError
	if !errors.As(err, &pe) && !errors.As(err, &te) {
		t.Fatalf("untyped compile rejection %T: %v (query=%q)", err, err, text)
	}
}
