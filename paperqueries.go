package nalquery

import (
	"nalquery/internal/xmlgen"
)

// The queries of the paper's evaluation (Sec. 5), lightly adapted exactly as
// the paper adapts the XQuery use-case queries: variables renamed, semantics
// retained. Two editorial fixes against the published text: root-level
// /book steps are written //book (the use-case documents have a bib root
// element), and Sec. 5.4's "let $b2 := $d1//book" is written as the for
// clause its own translation (Υb2) gives it.

// QueryQ1Grouping is Query 1.1.9.4: restructure bib.xml, grouping books by
// author (Sec. 5.1).
const QueryQ1Grouping = `
let $d1 := doc("bib.xml")
for $a1 in distinct-values($d1//author)
return
  <author>
    <name> { $a1 } </name>
    {
      let $d2 := doc("bib.xml")
      for $b2 in $d2//book[$a1 = author]
      return $b2/title
    }
  </author>`

// QueryQ1DBLP is the Sec. 5.1 variant over the DBLP-like document, where
// authors of articles and theses never author a book, so Eqv. 5 is
// inadmissible and only the outer-join plan may be used.
const QueryQ1DBLP = `
let $d1 := doc("dblp.xml")
for $a1 in distinct-values($d1//author)
return
  <author>
    <name> { $a1 } </name>
    {
      let $d2 := doc("dblp.xml")
      for $b2 in $d2//book[$a1 = author]
      return $b2/title
    }
  </author>`

// QueryQ2Aggregation is Query 1.1.9.10: minimal price per book title
// (Sec. 5.2).
const QueryQ2Aggregation = `
let $d1 := doc("prices.xml")
for $t1 in distinct-values($d1//book/title)
let $p1 := (let $d2 := doc("prices.xml")
            for $p2 in $d2//book[title = $t1]/price
            return decimal($p2))
return
  <minprice title="{ $t1 }">
    <price> { min($p1) } </price>
  </minprice>`

// QueryQ3Existential is Query 1.1.9.5: titles of books that have a review,
// via an existential quantifier (Sec. 5.3).
const QueryQ3Existential = `
let $d1 := document("bib.xml")
for $t1 in $d1//book/title
where some $t2 in (
        let $d3 := document("reviews.xml")
        for $t3 in $d3//entry/title
        return $t3 )
      satisfies $t1 = $t2
return
  <book-with-review>
    { $t1 }
  </book-with-review>`

// QueryQ4Exists is the Sec. 5.4 query: authors of books co-authored by
// Suciu, expressed through the exists function.
const QueryQ4Exists = `
let $d1 := doc("bib.xml")
for $b1 in $d1//book,
    $a1 in $b1/author
where exists(
        for $b2 in $d1//book,
            $a2 in $b2/author
        where contains($a2, "Suciu")
          and $b1 = $b2
        return $b2)
return
  <book>
    { $a1 }
  </book>`

// QueryQ5Universal is the Sec. 5.5 query: authors all of whose books were
// published after 1993.
const QueryQ5Universal = `
let $d1 := doc("bib.xml")
for $a1 in distinct-values($d1//author)
where every $b2 in doc("bib.xml")//book[author = $a1]
      satisfies $b2/@year > 1993
return
  <new-author>
    { $a1 }
  </new-author>`

// QueryQ6HavingCount is Query 1.4.4.14: items with at least three bids —
// aggregation in the where clause (Sec. 5.6).
const QueryQ6HavingCount = `
let $d1 := document("bids.xml")
for $i1 in distinct-values($d1//itemno)
where count($d1//bidtuple[itemno = $i1]) >= 3
return
  <popular-item>
    { $i1 }
  </popular-item>`

// PaperQueries maps experiment ids to query texts.
var PaperQueries = map[string]string{
	"q1":     QueryQ1Grouping,
	"q1dblp": QueryQ1DBLP,
	"q2":     QueryQ2Aggregation,
	"q3":     QueryQ3Existential,
	"q4":     QueryQ4Exists,
	"q5":     QueryQ5Universal,
	"q6":     QueryQ6HavingCount,
}

// LoadUseCaseDocuments generates and registers the synthetic use-case
// documents for the given size (number of books / bids) and authors-per-book
// setting, mirroring the paper's measurement points.
func (e *Engine) LoadUseCaseDocuments(size, authorsPerBook int) {
	cfg := xmlgen.DefaultConfig(size)
	cfg.AuthorsPerBook = authorsPerBook
	e.LoadDocument(xmlgen.Bib(cfg))
	e.LoadDocument(xmlgen.Reviews(cfg))
	e.LoadDocument(xmlgen.Prices(cfg))
	e.LoadDocument(xmlgen.Users(cfg))
	e.LoadDocument(xmlgen.Items(cfg))
	e.LoadDocument(xmlgen.Bids(cfg))
}

// LoadDBLPDocument generates and registers the DBLP-like document with the
// given number of publications.
func (e *Engine) LoadDBLPDocument(publications int) {
	e.LoadDocument(xmlgen.DBLP(xmlgen.DBLPConfig{Seed: 42, Publications: publications}))
}
