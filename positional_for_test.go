package nalquery

import (
	"strings"
	"testing"
)

// Tests for XQuery's positional for binding "for $x at $i in e" — a
// construct that only makes sense in the ordered context: $i is the 1-based
// position of $x within the range sequence, which the engine's
// order-preserving Υ operator assigns directly.

func posEngine(t *testing.T) *Engine {
	t.Helper()
	eng := NewEngine()
	if err := eng.LoadXMLString("bib.xml", `<bib>
		<book><title>alpha</title></book>
		<book><title>beta</title></book>
		<book><title>gamma</title></book>
		<book><title>delta</title></book>
	</bib>`); err != nil {
		t.Fatal(err)
	}
	return eng
}

func squash(s string) string { return strings.Join(strings.Fields(s), "") }

// TestPositionalForBinding: positions count the range sequence, 1-based,
// in document order.
func TestPositionalForBinding(t *testing.T) {
	eng := posEngine(t)
	out, err := eng.Query(`
let $d := doc("bib.xml")
for $b at $i in $d//book
return <r>{ $i }:{ string($b/title) }</r>`)
	if err != nil {
		t.Fatal(err)
	}
	want := "<r>1:alpha</r><r>2:beta</r><r>3:gamma</r><r>4:delta</r>"
	if squash(out) != want {
		t.Errorf("got %q, want %q", squash(out), want)
	}
}

// TestPositionalForBeforeWhere: per XQuery, $i is the position in the
// range, assigned before the where clause filters.
func TestPositionalForBeforeWhere(t *testing.T) {
	eng := posEngine(t)
	out, err := eng.Query(`
let $d := doc("bib.xml")
for $b at $i in $d//book
where $i > 2
return <r>{ $i }</r>`)
	if err != nil {
		t.Fatal(err)
	}
	want := "<r>3</r><r>4</r>"
	if squash(out) != want {
		t.Errorf("got %q, want %q", squash(out), want)
	}
}

// TestPositionalForInPredicate: the positional variable joins into
// value predicates, e.g. selecting every other item.
func TestPositionalForEveryOther(t *testing.T) {
	eng := posEngine(t)
	out, err := eng.Query(`
let $d := doc("bib.xml")
for $b at $i in $d//book
where ($i mod 2) = 1
return <r>{ string($b/title) }</r>`)
	if err != nil {
		t.Fatal(err)
	}
	want := "<r>alpha</r><r>gamma</r>"
	if squash(out) != want {
		t.Errorf("got %q, want %q", squash(out), want)
	}
}

// TestPositionalForBothEngines: the iterator engine assigns the same
// positions.
func TestPositionalForBothEngines(t *testing.T) {
	eng := posEngine(t)
	q, err := eng.Compile(`
let $d := doc("bib.xml")
for $b at $i in $d//book
return <r>{ $i }</r>`)
	if err != nil {
		t.Fatal(err)
	}
	mat, _, err := q.Execute("")
	if err != nil {
		t.Fatal(err)
	}
	str, _, err := q.ExecuteStreaming("")
	if err != nil {
		t.Fatal(err)
	}
	if mat != str {
		t.Errorf("materialized %q != streaming %q", mat, str)
	}
}

// TestPositionalForResetsPerOuterTuple: in a nested iteration the position
// restarts for every outer binding.
func TestPositionalForResetsPerOuterTuple(t *testing.T) {
	eng := NewEngine()
	if err := eng.LoadXMLString("g.xml", `<g>
		<grp><v>a</v><v>b</v></grp>
		<grp><v>c</v></grp>
	</g>`); err != nil {
		t.Fatal(err)
	}
	out, err := eng.Query(`
let $d := doc("g.xml")
for $g in $d//grp
for $v at $i in $g/v
return <r>{ $i }:{ string($v) }</r>`)
	if err != nil {
		t.Fatal(err)
	}
	want := "<r>1:a</r><r>2:b</r><r>1:c</r>"
	if squash(out) != want {
		t.Errorf("got %q, want %q", squash(out), want)
	}
}
