package nalquery

// The public surface of the statistics & index subsystem: per-document
// analyzer summaries (the server's GET /documents/{uri}/stats payload),
// the engine-level analyzer-run and index-hit counters (/statusz), and the
// IndexCatalog adapter the planner's index substitution resolves through.
// See docs/PLANNING.md for how the pieces fit.

import (
	"nalquery/internal/core"
	"nalquery/internal/index"
	"nalquery/internal/stats"
	"nalquery/internal/xpath"
)

// PathStatistics is the measured profile of one absolute document path.
type PathStatistics struct {
	// Path is the absolute root-to-node path ("/bib/book", "/bib/book/@year").
	Path string `json:"path"`
	// Count is the number of nodes at this path.
	Count int64 `json:"count"`
	// AvgFanout is the average number of element children per node.
	AvgFanout float64 `json:"avg_fanout,omitempty"`
	// Simple reports leaf-only content; only simple paths carry the value
	// statistics below and a value index.
	Simple bool `json:"simple,omitempty"`
	// Distinct counts distinct string values (simple paths only).
	Distinct int64 `json:"distinct,omitempty"`
	// Min and Max are the lexicographic value extremes.
	Min string `json:"min,omitempty"`
	Max string `json:"max,omitempty"`
	// Numeric reports that every value parses as a number.
	Numeric bool `json:"numeric,omitempty"`
}

// DocumentStatistics is the analyzer's summary of one loaded document.
type DocumentStatistics struct {
	URI      string           `json:"uri"`
	Elements int64            `json:"elements"`
	Paths    []PathStatistics `json:"paths"`
}

// DocumentStats returns the measured statistics of a loaded document (ok is
// false for unknown URIs). The analyzer runs once per load: the summary is
// computed when the document enters the engine and invalidated — like the
// plan cache — when a state transition replaces it.
func (e *Engine) DocumentStats(uri string) (*DocumentStatistics, bool) {
	aux := e.snapshot().aux[uri]
	if aux == nil {
		return nil, false
	}
	ds := aux.Stats
	out := &DocumentStatistics{URI: ds.URI, Elements: ds.Elements,
		Paths: make([]PathStatistics, 0, len(ds.Paths))}
	for _, p := range ds.Paths {
		out.Paths = append(out.Paths, PathStatistics{
			Path: p.Path, Count: p.Count, AvgFanout: p.AvgFanout,
			Simple: p.Simple, Distinct: p.Distinct, Min: p.Min, Max: p.Max,
			Numeric: p.AllNumeric,
		})
	}
	return out, true
}

// AnalyzerRuns reports how many document analyses this engine has run (one
// per loaded or replaced document).
func (e *Engine) AnalyzerRuns() int64 { return e.analyzerRuns.Load() }

// IndexHits reports the cumulative number of index-scan resolutions across
// finished runs of queries compiled by this engine.
func (e *Engine) IndexHits() int64 { return e.indexHits.Load() }

// snapshotStats projects the sidecar map onto the analyzer statistics the
// cost model consumes.
func snapshotStats(aux map[string]*index.DocIndexes) map[string]*stats.DocStats {
	if len(aux) == 0 {
		return nil
	}
	out := make(map[string]*stats.DocStats, len(aux))
	for uri, x := range aux {
		out[uri] = x.Stats
	}
	return out
}

// indexCat adapts one snapshot's sidecar to the planner's IndexCatalog.
type indexCat struct {
	aux map[string]*index.DocIndexes
}

func (c indexCat) ScanIndex(uri string, p xpath.Path) (core.ScanInfo, bool) {
	x := c.aux[uri]
	if x == nil {
		return core.ScanInfo{}, false
	}
	si, ok := x.Scan(p)
	if !ok {
		return core.ScanInfo{}, false
	}
	return core.ScanInfo{Index: si.Index, Path: si.Path, Card: si.Card}, true
}

func (c indexCat) ValueIndex(uri string, base, rel xpath.Path) (core.ValueInfo, bool) {
	x := c.aux[uri]
	if x == nil {
		return core.ValueInfo{}, false
	}
	vi, ok := x.Value(base, rel)
	if !ok {
		return core.ValueInfo{}, false
	}
	return core.ValueInfo{Index: vi.Index, Path: vi.Path, Depth: vi.Depth,
		Card: vi.Card, ScanCard: vi.ScanCard}, true
}
