package nalquery

import (
	"strings"
	"testing"
)

// Multi-variable quantifiers: "some $x in e1, $y in e2 satisfies p"
// desugars into nested single-variable quantifiers.

func quantEngine(t *testing.T) *Engine {
	t.Helper()
	eng := NewEngine()
	if err := eng.LoadXMLString("m.xml", `<m>
		<pair><a>1</a><a>2</a><b>2</b><b>4</b></pair>
		<pair><a>5</a><b>1</b></pair>
		<pair><a>3</a><b>3</b></pair>
	</m>`); err != nil {
		t.Fatal(err)
	}
	return eng
}

// TestSomeMultiVar: pairs with some a equal to some b.
func TestSomeMultiVar(t *testing.T) {
	eng := quantEngine(t)
	out, err := eng.Query(`
let $d := doc("m.xml")
for $p in $d//pair
where some $x in $p/a, $y in $p/b satisfies decimal($x) = decimal($y)
return <hit>{ string($p/a[1]) }</hit>`)
	if err != nil {
		t.Fatal(err)
	}
	want := "<hit>1</hit><hit>3</hit>"
	if squash(out) != want {
		t.Errorf("got %q, want %q", squash(out), want)
	}
}

// TestEveryMultiVar: pairs where every a is less than every b.
func TestEveryMultiVar(t *testing.T) {
	eng := quantEngine(t)
	out, err := eng.Query(`
let $d := doc("m.xml")
for $p in $d//pair
where every $x in $p/a, $y in $p/b satisfies decimal($x) < decimal($y)
return <hit>{ string($p/a[1]) }</hit>`)
	if err != nil {
		t.Fatal(err)
	}
	// pair 1: a={1,2}, b={2,4}: 2<2 fails → no. pair 2: 5<1 fails → no.
	// pair 3: 3<3 fails → no. Empty result.
	if strings.TrimSpace(out) != "" {
		t.Errorf("got %q, want empty", out)
	}
}

// TestEveryMultiVarVacuous: empty ranges make every vacuously true.
func TestEveryMultiVarVacuous(t *testing.T) {
	eng := NewEngine()
	if err := eng.LoadXMLString("v.xml", `<m><pair><a>1</a></pair></m>`); err != nil {
		t.Fatal(err)
	}
	out, err := eng.Query(`
let $d := doc("v.xml")
for $p in $d//pair
where every $x in $p/a, $y in $p/b satisfies decimal($x) = decimal($y)
return <hit>ok</hit>`)
	if err != nil {
		t.Fatal(err)
	}
	if squash(out) != "<hit>ok</hit>" {
		t.Errorf("got %q, want vacuous truth (no b elements)", out)
	}
}

// TestSomeMultiVarDependentRange: the second range may reference the first
// variable.
func TestSomeMultiVarDependentRange(t *testing.T) {
	eng := NewEngine()
	if err := eng.LoadXMLString("d.xml", `<r>
		<g><x><y>7</y></x></g>
		<g><x><y>1</y></x></g>
	</r>`); err != nil {
		t.Fatal(err)
	}
	out, err := eng.Query(`
let $d := doc("d.xml")
for $g in $d//g
where some $x in $g/x, $y in $x/y satisfies decimal($y) > 5
return <hit/>`)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Count(out, "<hit>") != 1 {
		t.Errorf("got %q, want exactly one hit", out)
	}
}
