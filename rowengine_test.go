package nalquery

import (
	"strings"
	"testing"

	"nalquery/internal/algebra"
	"nalquery/internal/dom"
	"nalquery/internal/value"
	"nalquery/internal/xmlgen"
	"nalquery/internal/xpath"
)

// bagKeys renders a tuple sequence as a DeepKey multiset for bag-equality
// diagnostics.
func bagKeys(ts value.TupleSeq) map[string]int {
	out := make(map[string]int, len(ts))
	for _, t := range ts {
		out[value.DeepKey(value.TupleSeq{t})]++
	}
	return out
}

// TestSlotEngineMatchesMapEngine is the schema-resolver property test: for
// every plan of every paper query, slot-based execution (RunIter over the
// row engine) and map-based execution (the definitional evaluator) produce
// sequence-equal results — and in particular bag-equal ones (value.DeepKey
// multisets) — with identical Ξ output.
func TestSlotEngineMatchesMapEngine(t *testing.T) {
	e := tinyEngine(t)
	e.LoadDBLPDocument(40)
	for id, text := range PaperQueries {
		for _, wrap := range []string{"", "unordered"} {
			q := text
			name := id
			if wrap != "" {
				if !strings.HasPrefix(strings.TrimSpace(text), "let") {
					continue
				}
				q = "unordered(" + text + ")"
				name = id + "+unordered"
			}
			cq, err := e.Compile(q)
			if err != nil {
				if wrap != "" {
					continue // not every paper query parses under the wrapper
				}
				t.Fatalf("%s: %v", name, err)
			}
			for _, p := range cq.Plans() {
				ctxM := algebra.NewCtx(e.snapshot().docs)
				want := p.op.Eval(ctxM, nil)
				ctxR := algebra.NewCtx(e.snapshot().docs)
				got := algebra.RunIter(p.op, ctxR, nil)

				if !value.TupleSeqEqual(want, got) {
					t.Errorf("%s/%s: slot result differs from map result\nmap:  %.200s\nslot: %.200s",
						name, p.Name, want, got)
				}
				if !value.TupleSeqEqualBag(want, got) {
					t.Errorf("%s/%s: slot result not bag-equal to map result\nmap bag:  %v\nslot bag: %v",
						name, p.Name, bagKeys(want), bagKeys(got))
				}
				if ctxM.OutString() != ctxR.OutString() {
					t.Errorf("%s/%s: Ξ output differs\nmap:  %.200q\nslot: %.200q",
						name, p.Name, ctxM.OutString(), ctxR.OutString())
				}
			}
		}
	}
}

// TestPaperPlansResolveNatively guards the perf story: every plan of every
// paper query must pass the schema-resolution pass, so execution never
// silently degrades to the map engine.
func TestPaperPlansResolveNatively(t *testing.T) {
	e := tinyEngine(t)
	e.LoadDBLPDocument(40)
	for id, text := range PaperQueries {
		q, err := e.Compile(text)
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		for _, p := range q.Plans() {
			sc, ok := algebra.ResolveSchema(p.op)
			if !ok {
				t.Errorf("%s/%s: schema does not resolve", id, p.Name)
				continue
			}
			if !sc.Native {
				t.Errorf("%s/%s: top operator is not slot-native (%s)", id, p.Name, p.op.String())
			}
		}
	}
}

// TestPaperPlansMapFree pins the RowSeq data model: no plan of any paper
// query — including its unordered variants — materializes a single map
// tuple on the slot engine's data path. Group payloads, e[a] bindings and
// nested-block results all travel as slot rows; Stats.MapTuples counts any
// conversion back to the map-tuple model (uncompiled sequence functions,
// conversion-shim traffic) and must stay zero.
func TestPaperPlansMapFree(t *testing.T) {
	e := tinyEngine(t)
	e.LoadDBLPDocument(40)
	for id, text := range PaperQueries {
		for _, wrap := range []string{"", "unordered"} {
			q := text
			name := id
			if wrap != "" {
				if !strings.HasPrefix(strings.TrimSpace(text), "let") {
					continue
				}
				q = "unordered(" + text + ")"
				name = id + "+unordered"
			}
			cq, err := e.Compile(q)
			if err != nil {
				if wrap != "" {
					continue // not every paper query parses under the wrapper
				}
				t.Fatalf("%s: %v", name, err)
			}
			for _, p := range cq.Plans() {
				ctx := algebra.NewCtx(e.snapshot().docs)
				algebra.DrainIter(p.op, ctx, nil)
				if ctx.Stats.MapTuples != 0 {
					t.Errorf("%s/%s: %d map tuples materialized on the slot engine's data path",
						name, p.Name, ctx.Stats.MapTuples)
				}
			}
		}
	}
}

// assertFullyNative walks a plan and requires every operator to resolve
// slot-natively, then executes it and requires that the conversion shim
// never fired — the pin that no plan containing a partitioned operator
// (GraceJoin, OPHashJoin, the unordered family) degrades to map-tuple
// execution.
func assertFullyNative(t *testing.T, name string, op algebra.Op, docs map[string]*dom.Document) {
	t.Helper()
	var walk func(o algebra.Op)
	walk = func(o algebra.Op) {
		sc, ok := algebra.ResolveSchema(o)
		if !ok {
			t.Errorf("%s: %s does not resolve", name, o.String())
			return
		}
		if !sc.Native {
			t.Errorf("%s: %s is not slot-native", name, o.String())
		}
		for _, c := range o.Children() {
			walk(c)
		}
	}
	walk(op)
	ctx := algebra.NewCtx(docs)
	algebra.DrainIter(op, ctx, nil)
	if ctx.Stats.ShimOps != 0 {
		t.Errorf("%s: %d operators executed behind the conversion shim", name, ctx.Stats.ShimOps)
	}
}

// TestPartitionedPlansResolveNatively pins the partitioned operator
// family's native execution: every unordered plan alternative of every
// paper query, and the Grace+Sort / Claussen OPHJ strategies of the join
// workload, run without a single conversion-shim operator.
func TestPartitionedPlansResolveNatively(t *testing.T) {
	e := tinyEngine(t)
	checked := 0
	for id, text := range PaperQueries {
		if !strings.HasPrefix(strings.TrimSpace(text), "let") {
			continue
		}
		q, err := e.Compile("unordered(" + text + ")")
		if err != nil {
			continue // not every paper query parses under the wrapper
		}
		for _, p := range q.Plans() {
			if !strings.HasPrefix(p.Name, "unordered ") {
				continue
			}
			assertFullyNative(t, id+"/"+p.Name, p.op, e.snapshot().docs)
			checked++
		}
	}
	if checked == 0 {
		t.Fatalf("no unordered paper-query plans were checked")
	}

	// The paper's own join strategies: Grace hash join + order-restoring
	// sort, and the order-preserving hash join of Claussen et al.
	cfg := xmlgen.DefaultConfig(40)
	docs := map[string]*dom.Document{
		"bids.xml":  xmlgen.Bids(cfg),
		"items.xml": xmlgen.Items(cfg),
	}
	bids := algebra.Map{
		In: algebra.UnnestMap{
			In:   algebra.Map{In: algebra.Singleton{}, Attr: "d1", E: algebra.Doc{URI: "bids.xml"}},
			Attr: "b",
			E:    algebra.PathOf{Input: algebra.Var{Name: "d1"}, Path: xpath.MustParse("//bidtuple")},
		},
		Attr: "i1",
		E:    algebra.PathOf{Input: algebra.Var{Name: "b"}, Path: xpath.MustParse("itemno")},
	}
	items := algebra.Map{
		In: algebra.UnnestMap{
			In:   algebra.Map{In: algebra.Singleton{}, Attr: "d2", E: algebra.Doc{URI: "items.xml"}},
			Attr: "it",
			E:    algebra.PathOf{Input: algebra.Var{Name: "d2"}, Path: xpath.MustParse("//itemtuple")},
		},
		Attr: "i2",
		E:    algebra.PathOf{Input: algebra.Var{Name: "it"}, Path: xpath.MustParse("itemno")},
	}
	grace := algebra.ProjectDrop{
		In: algebra.Sort{
			In: algebra.GraceJoin{
				L:      algebra.AttachSeq{In: bids, Attr: "#l"},
				R:      algebra.AttachSeq{In: items, Attr: "#r"},
				LAttrs: []string{"i1"}, RAttrs: []string{"i2"},
			},
			By: []string{"#l", "#r"},
		},
		Names: []string{"#l", "#r"},
	}
	claussen := algebra.OPHashJoin{L: bids, R: items, LAttrs: []string{"i1"}, RAttrs: []string{"i2"}}
	assertFullyNative(t, "joins/grace+sort", grace, docs)
	assertFullyNative(t, "joins/claussen-ophj", claussen, docs)
}
