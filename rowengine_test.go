package nalquery

import (
	"strings"
	"testing"

	"nalquery/internal/algebra"
	"nalquery/internal/value"
)

// bagKeys renders a tuple sequence as a DeepKey multiset for bag-equality
// diagnostics.
func bagKeys(ts value.TupleSeq) map[string]int {
	out := make(map[string]int, len(ts))
	for _, t := range ts {
		out[value.DeepKey(value.TupleSeq{t})]++
	}
	return out
}

// TestSlotEngineMatchesMapEngine is the schema-resolver property test: for
// every plan of every paper query, slot-based execution (RunIter over the
// row engine) and map-based execution (the definitional evaluator) produce
// sequence-equal results — and in particular bag-equal ones (value.DeepKey
// multisets) — with identical Ξ output.
func TestSlotEngineMatchesMapEngine(t *testing.T) {
	e := tinyEngine(t)
	e.LoadDBLPDocument(40)
	for id, text := range PaperQueries {
		for _, wrap := range []string{"", "unordered"} {
			q := text
			name := id
			if wrap != "" {
				if !strings.HasPrefix(strings.TrimSpace(text), "let") {
					continue
				}
				q = "unordered(" + text + ")"
				name = id + "+unordered"
			}
			cq, err := e.Compile(q)
			if err != nil {
				if wrap != "" {
					continue // not every paper query parses under the wrapper
				}
				t.Fatalf("%s: %v", name, err)
			}
			for _, p := range cq.Plans() {
				ctxM := algebra.NewCtx(e.docs)
				want := p.op.Eval(ctxM, nil)
				ctxR := algebra.NewCtx(e.docs)
				got := algebra.RunIter(p.op, ctxR, nil)

				if !value.TupleSeqEqual(want, got) {
					t.Errorf("%s/%s: slot result differs from map result\nmap:  %.200s\nslot: %.200s",
						name, p.Name, want, got)
				}
				if !value.TupleSeqEqualBag(want, got) {
					t.Errorf("%s/%s: slot result not bag-equal to map result\nmap bag:  %v\nslot bag: %v",
						name, p.Name, bagKeys(want), bagKeys(got))
				}
				if ctxM.OutString() != ctxR.OutString() {
					t.Errorf("%s/%s: Ξ output differs\nmap:  %.200q\nslot: %.200q",
						name, p.Name, ctxM.OutString(), ctxR.OutString())
				}
			}
		}
	}
}

// TestPaperPlansResolveNatively guards the perf story: every plan of every
// paper query must pass the schema-resolution pass, so execution never
// silently degrades to the map engine.
func TestPaperPlansResolveNatively(t *testing.T) {
	e := tinyEngine(t)
	e.LoadDBLPDocument(40)
	for id, text := range PaperQueries {
		q, err := e.Compile(text)
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		for _, p := range q.Plans() {
			sc, ok := algebra.ResolveSchema(p.op)
			if !ok {
				t.Errorf("%s/%s: schema does not resolve", id, p.Name)
				continue
			}
			if !sc.Native {
				t.Errorf("%s/%s: top operator is not slot-native (%s)", id, p.Name, p.op.String())
			}
		}
	}
}
