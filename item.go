package nalquery

import (
	"strings"

	"nalquery/internal/algebra"
	"nalquery/internal/value"
)

// ValueKind discriminates the typed views a result Value offers.
type ValueKind uint8

// Value kinds: the empty sequence, the four atomic types, document nodes
// and (possibly nested) sequences.
const (
	KindEmpty ValueKind = iota
	KindBool
	KindInt
	KindFloat
	KindString
	KindNode
	KindSequence
)

func (k ValueKind) String() string {
	switch k {
	case KindEmpty:
		return "empty"
	case KindBool:
		return "bool"
	case KindInt:
		return "int"
	case KindFloat:
		return "float"
	case KindString:
		return "string"
	case KindNode:
		return "node"
	case KindSequence:
		return "sequence"
	default:
		return "unknown"
	}
}

// Item is one element of a query's result-construction stream: either a
// literal markup fragment of an element constructor (e.g. "<t>" or "</t>")
// or the typed value of an embedded expression. Serializing the items of a
// run in order — Results.WriteXML does exactly that — yields the same
// bytes as the string-building Execute API; consuming Value items directly
// skips serialization altogether.
type Item struct {
	markup string
	v      value.Value
	isVal  bool
}

// IsValue reports whether the item carries a typed value (as opposed to a
// literal markup fragment).
func (it Item) IsValue() bool { return it.isVal }

// Markup returns the literal markup fragment, or "" for value items.
func (it Item) Markup() string {
	if it.isVal {
		return ""
	}
	return it.markup
}

// Value returns the typed value view of the item. Markup items view as the
// empty value.
func (it Item) Value() Value {
	if !it.isVal {
		return Value{}
	}
	return Value{v: it.v}
}

// XML returns the serialized form of the item — the exact bytes the item
// contributes to the query's constructed output.
func (it Item) XML() string {
	if !it.isVal {
		return it.markup
	}
	var sb strings.Builder
	it.writeTo(&sb)
	return sb.String()
}

// String returns the serialized form (same as XML), so items print
// naturally.
func (it Item) String() string { return it.XML() }

// writeTo streams the item's serialized form into sw using the engine's
// result-construction serializer, guaranteeing byte equality with the
// serialize-while-executing path.
func (it Item) writeTo(sw algebra.StringWriter) {
	if !it.isVal {
		sw.WriteString(it.markup)
		return
	}
	algebra.WriteValue(sw, it.v)
}

// Value is the exported typed view over the engine's data model: the empty
// sequence, atomic items (bool, int, float, string), document nodes, and
// sequences of those.
type Value struct{ v value.Value }

// Kind discriminates the value. Zero-length sequences report KindEmpty:
// XQuery does not distinguish the empty sequence from "no value".
func (v Value) Kind() ValueKind {
	switch w := v.v.(type) {
	case nil, value.Null:
		return KindEmpty
	case value.Bool:
		return KindBool
	case value.Int:
		return KindInt
	case value.Float:
		return KindFloat
	case value.Str:
		return KindString
	case value.NodeVal:
		if w.Node == nil {
			return KindEmpty
		}
		return KindNode
	case value.Seq:
		if len(w) == 0 {
			return KindEmpty
		}
		return KindSequence
	case value.TupleSeq:
		if len(w) == 0 {
			return KindEmpty
		}
		return KindSequence
	case value.RowSeq:
		if w.Len() == 0 {
			return KindEmpty
		}
		return KindSequence
	default:
		return KindEmpty
	}
}

// String returns the XPath-style string value: atomic items literally,
// nodes their concatenated descendant text, sequences the space-joined
// string values of their members, and the empty sequence "".
func (v Value) String() string {
	switch w := v.v.(type) {
	case nil, value.Null:
		return ""
	case value.NodeVal:
		if w.Node == nil {
			return ""
		}
		return w.Node.StringValue()
	case value.Seq, value.TupleSeq, value.RowSeq:
		members := v.Items()
		parts := make([]string, len(members))
		for i, m := range members {
			parts[i] = m.String()
		}
		return strings.Join(parts, " ")
	default:
		return v.v.String()
	}
}

// XML returns the serialized form of the value, exactly as it would appear
// in the query's constructed output.
func (v Value) XML() string {
	var sb strings.Builder
	algebra.WriteValue(&sb, v.v)
	return sb.String()
}

// Bool returns the boolean item, reporting ok=false for any other kind.
func (v Value) Bool() (b, ok bool) {
	if w, isb := v.v.(value.Bool); isb {
		return bool(w), true
	}
	return false, false
}

// Int returns the integer item (widening is not attempted), reporting
// ok=false for any other kind.
func (v Value) Int() (int64, bool) {
	if w, isi := v.v.(value.Int); isi {
		return int64(w), true
	}
	return 0, false
}

// Float returns the numeric item as float64 — Float directly, Int widened
// — reporting ok=false for non-numeric kinds.
func (v Value) Float() (float64, bool) {
	switch w := v.v.(type) {
	case value.Float:
		return float64(w), true
	case value.Int:
		return float64(w), true
	}
	return 0, false
}

// NodeName returns the element or attribute name of a node value, and ""
// for every other kind (or unnamed node kinds like text).
func (v Value) NodeName() string {
	if w, isn := v.v.(value.NodeVal); isn && w.Node != nil {
		return w.Node.Name
	}
	return ""
}

// Items returns the members of the value viewed as a sequence, in the
// order serialization visits them: sequences yield their items, nested
// tuple sequences yield each tuple's values, a scalar yields itself as a
// one-element sequence, and the empty sequence yields nil.
func (v Value) Items() []Value {
	switch w := v.v.(type) {
	case nil, value.Null:
		return nil
	case value.NodeVal:
		if w.Node == nil {
			return nil
		}
		return []Value{v}
	case value.Seq:
		out := make([]Value, len(w))
		for i, m := range w {
			out[i] = Value{v: m}
		}
		return out
	case value.TupleSeq:
		var out []Value
		for _, t := range w {
			t.EachValue(func(m value.Value) { out = append(out, Value{v: m}) })
		}
		return out
	case value.RowSeq:
		var out []Value
		for i := 0; i < w.Len(); i++ {
			w.EachValue(i, func(m value.Value) { out = append(out, Value{v: m}) })
		}
		return out
	default:
		return []Value{v}
	}
}
