package nalquery

import (
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"
)

// End-to-end tests for the order by extension: parse → normalize →
// translate (χ sort keys → stable Sort → Π̄) → execute.

const orderByPricesQ = `
let $d1 := doc("prices.xml")
for $b1 in $d1//book
let $p1 := $b1/price
order by decimal($p1) descending
return <p>{ decimal($p1) }</p>`

var priceRe = regexp.MustCompile(`<p>([0-9.]+)</p>`)

func extractPrices(t *testing.T, out string) []float64 {
	t.Helper()
	var ps []float64
	for _, m := range priceRe.FindAllStringSubmatch(out, -1) {
		f, err := strconv.ParseFloat(m[1], 64)
		if err != nil {
			t.Fatalf("bad price %q: %v", m[1], err)
		}
		ps = append(ps, f)
	}
	return ps
}

// TestOrderByDescendingEndToEnd: prices come out in descending order, on
// every plan alternative.
func TestOrderByDescendingEndToEnd(t *testing.T) {
	eng := NewEngine()
	eng.LoadUseCaseDocuments(60, 2)
	q, err := eng.Compile(orderByPricesQ)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range q.Plans() {
		out, _, err := q.Execute(p.Name)
		if err != nil {
			t.Fatalf("plan %q: %v", p.Name, err)
		}
		ps := extractPrices(t, out)
		if len(ps) == 0 {
			t.Fatalf("plan %q: no prices in output", p.Name)
		}
		if !sort.SliceIsSorted(ps, func(i, j int) bool { return ps[i] > ps[j] }) {
			t.Errorf("plan %q: prices not descending: %v", p.Name, ps)
		}
	}
}

// TestOrderByAscendingDefault: without a modifier the order is ascending.
func TestOrderByAscendingDefault(t *testing.T) {
	eng := NewEngine()
	eng.LoadUseCaseDocuments(40, 2)
	q, err := eng.Compile(strings.Replace(orderByPricesQ, " descending", "", 1))
	if err != nil {
		t.Fatal(err)
	}
	out, _, err := q.Execute("")
	if err != nil {
		t.Fatal(err)
	}
	ps := extractPrices(t, out)
	if !sort.Float64sAreSorted(ps) {
		t.Errorf("prices not ascending: %v", ps)
	}
}

// TestOrderByStableKeepsDocumentOrder: tuples with equal keys stay in
// document order (the sort is stable). Sorting every book by a constant key
// must reproduce the unsorted document order exactly.
func TestOrderByStableKeepsDocumentOrder(t *testing.T) {
	eng := NewEngine()
	eng.LoadUseCaseDocuments(30, 2)
	withSort := `
let $d1 := doc("prices.xml")
for $b1 in $d1//book
let $p1 := $b1/price
stable order by "same"
return <p>{ decimal($p1) }</p>`
	without := `
let $d1 := doc("prices.xml")
for $b1 in $d1//book
let $p1 := $b1/price
return <p>{ decimal($p1) }</p>`
	q1, err := eng.Compile(withSort)
	if err != nil {
		t.Fatal(err)
	}
	q2, err := eng.Compile(without)
	if err != nil {
		t.Fatal(err)
	}
	o1, _, err := q1.Execute("")
	if err != nil {
		t.Fatal(err)
	}
	o2, _, err := q2.Execute("")
	if err != nil {
		t.Fatal(err)
	}
	if o1 != o2 {
		t.Errorf("constant-key stable sort changed the document order")
	}
}

// TestOrderByBothEngines: the iterator engine produces the same sorted
// output (Sort materializes through the fallback path).
func TestOrderByBothEngines(t *testing.T) {
	eng := NewEngine()
	eng.LoadUseCaseDocuments(40, 2)
	q, err := eng.Compile(orderByPricesQ)
	if err != nil {
		t.Fatal(err)
	}
	mat, _, err := q.Execute("")
	if err != nil {
		t.Fatal(err)
	}
	str, _, err := q.ExecuteStreaming("")
	if err != nil {
		t.Fatal(err)
	}
	if mat != str {
		t.Errorf("iterator engine output differs from materialized output")
	}
}

// TestOrderByMultiKey: secondary key breaks ties of the primary key.
func TestOrderByMultiKey(t *testing.T) {
	eng := NewEngine()
	eng.LoadXMLString("s.xml", `<s>
		<r><a>1</a><b>2</b></r>
		<r><a>2</a><b>9</b></r>
		<r><a>1</a><b>1</b></r>
		<r><a>2</a><b>3</b></r>
	</s>`)
	q, err := eng.Compile(`
let $d := doc("s.xml")
for $r in $d//r
order by decimal($r/a), decimal($r/b) descending
return <v>{ decimal($r/a) }-{ decimal($r/b) }</v>`)
	if err != nil {
		t.Fatal(err)
	}
	out, _, err := q.Execute("")
	if err != nil {
		t.Fatal(err)
	}
	want := "<v>1-2</v><v>1-1</v><v>2-9</v><v>2-3</v>"
	if strings.Join(strings.Fields(out), "") != strings.Join(strings.Fields(want), "") {
		t.Errorf("got %q, want %q", out, want)
	}
}
