package nalquery

import (
	"bufio"
	"bytes"
	"context"
	"io"
	"iter"
	"runtime/debug"
	"strings"

	"nalquery/internal/algebra"
	"nalquery/internal/value"
)

// RunOption configures one Run of a compiled Query.
type RunOption func(*runConfig)

type runConfig struct {
	plan      string
	reference bool
	stats     *Stats
	binds     []binding
	params    []value.Value // resolved binding table, indexed by parameter slot
	maxBytes  int64
	maxTuples int64
	// faultHook, when set, forces a budget trip at a chosen operator
	// boundary — the deterministic allocation-failure stand-in the fault
	// sweep tests drive (see WithFaultHook in faults_test.go).
	faultHook func(point string) bool
}

// WithPlan selects the plan alternative to run by its paper row label
// ("nested", "grouping", "group Ξ", …). The default — and WithPlan("") —
// is the alternative with the lowest estimated cost.
func WithPlan(name string) RunOption {
	return func(c *runConfig) { c.plan = name }
}

// WithReferenceEngine runs the plan on the definitional materializing
// evaluator over map-based tuples — the executable semantics the slot
// engine is differential-tested against. The whole result is computed
// eagerly on first consumption; items then stream from memory.
func WithReferenceEngine() RunOption {
	return func(c *runConfig) { c.reference = true }
}

// WithStats records the run's final execution counters into st when the
// result stream is exhausted, cancelled, or closed.
func WithStats(st *Stats) RunOption {
	return func(c *runConfig) { c.stats = st }
}

// WithMaxMemory bounds the estimated bytes this run may materialize across
// its pipeline breakers (hash builds, sort buffers, group payloads, dedup
// tables) and its serialized output. Crossing the bound aborts the run with
// a *ResourceError (errors.Is ErrResourceExhausted); the engine and other
// runs are unaffected. n <= 0 means unlimited — the default, which costs
// one nil check per materialized row. The bound is an engine-side estimate
// of materialized state, not a process RSS limit.
func WithMaxMemory(n int64) RunOption {
	return func(c *runConfig) { c.maxBytes = n }
}

// WithMaxTuples bounds the tuples this run may materialize (scans and
// breaker buffers combined). Crossing the bound aborts the run with a
// *ResourceError. n <= 0 means unlimited.
func WithMaxTuples(n int64) RunOption {
	return func(c *runConfig) { c.maxTuples = n }
}

// withFaultHook installs the fault-injection hook consulted at every
// operator boundary; returning true forces a budget trip there. Unexported:
// the deterministic failure harness is test infrastructure, not API.
func withFaultHook(h func(point string) bool) RunOption {
	return func(c *runConfig) { c.faultHook = h }
}

// Run starts one execution of the query and returns its Results session.
// Runs are independent: a compiled Query may be run any number of times,
// from any number of goroutines, concurrently — execution state lives in
// the Results, and the engine snapshot taken at Compile is immutable.
//
// The context cancels the run: scans and pipeline breakers inside the
// engine poll ctx and terminate the pipeline early; the cancellation
// surfaces as Results.Err after the stream ends.
//
// Opening is lazy. The first Next/Seq call fixes the session into typed
// item consumption; calling WriteXML first instead serializes straight
// into the writer with no per-item overhead (the Execute compatibility
// path). Run itself only selects the plan and resolves bindings, so an
// unknown plan name surfaces here as *UnknownPlanError (ErrNoPlan for a
// planless query), and a missing, unknown or ill-typed Bind of an external
// variable as *BindError.
//
// Run and the Results consumption methods are a panic-recovery boundary:
// an evaluator panic never escapes to the caller — it surfaces as a typed
// *InternalError (errors.Is-matchable against ErrInternal) carrying the
// query text and the captured stack, so a serving process survives a
// poison query.
func (q *Query) Run(ctx context.Context, opts ...RunOption) (*Results, error) {
	var cfg runConfig
	for _, o := range opts {
		o(&cfg)
	}
	return q.run(ctx, cfg)
}

// run is the shared session constructor behind Run and the deprecated
// Execute wrappers (which bypass the options slice on the hot path). Like
// the Results consumption methods it is a panic-recovery boundary: any
// panic below it surfaces as a typed *InternalError, never as a crash.
func (q *Query) run(ctx context.Context, cfg runConfig) (res *Results, err error) {
	defer func() {
		if p := recover(); p != nil {
			if rt, ok := p.(*algebra.ResourceTrip); ok {
				res, err = nil, resourceError(q.Text, cfg.plan, rt)
				return
			}
			res, err = nil, &InternalError{Query: q.Text, Plan: cfg.plan, Panic: p, Stack: debug.Stack()}
		}
	}()
	if ctx == nil {
		ctx = context.Background()
	}
	p, err := q.Plan(cfg.plan)
	if err != nil {
		return nil, err
	}
	cfg.params, err = q.bindParams(cfg.binds)
	if err != nil {
		return nil, err
	}
	return &Results{q: q, plan: p, ctx: ctx, cfg: cfg}, nil
}

// Results is one running query session: a pull iterator over the typed
// result items the plan's Ξ result-construction operators emit. It is not
// safe for concurrent use by multiple goroutines (run the Query again
// instead — that is safe).
type Results struct {
	q    *Query
	plan Plan
	ctx  context.Context
	cfg  runConfig

	actx   *algebra.Ctx
	pump   *algebra.Pump
	queue  itemQueue
	qpos   int
	opened  bool
	done    bool // the pump is exhausted (trailing queue items may remain)
	closed  bool
	counted bool // engine-level counters accumulated (first end-of-stream wins)
	err     error
}

// itemQueue buffers the items emitted between two pump steps; it is the
// algebra.ResultSink of a typed-consumption session.
type itemQueue struct{ items []Item }

func (s *itemQueue) EmitLit(lit string) {
	s.items = append(s.items, Item{markup: lit})
}

func (s *itemQueue) EmitValue(v value.Value) {
	s.items = append(s.items, Item{v: v, isVal: true})
}

// Plan returns the plan alternative this session runs.
func (r *Results) Plan() Plan { return r.plan }

// newAlgebraCtx builds the per-run evaluation context. The reference
// engine mirrors the historical ExecuteReference setup (no cardinality
// estimator — its hash sizing heuristics are part of what the slot engine
// is differential-tested against).
func (r *Results) newAlgebraCtx(out algebra.StringWriter) *algebra.Ctx {
	ctx := algebra.NewCtxWriter(r.q.docs, out)
	if !r.cfg.reference {
		ctx.Cards = r.q.model
	}
	ctx.Params = r.cfg.params
	ctx.SetDone(r.ctx.Done())
	if r.cfg.maxBytes > 0 || r.cfg.maxTuples > 0 || r.cfg.faultHook != nil {
		b := algebra.NewBudget(r.cfg.maxBytes, r.cfg.maxTuples)
		b.SetFaultHook(r.cfg.faultHook)
		ctx.Budget = b
	}
	return ctx
}

// openTyped fixes the session into typed item consumption.
func (r *Results) openTyped() {
	r.opened = true
	r.actx = r.newAlgebraCtx(nil)
	r.actx.Sink = &r.queue
	if r.cfg.reference {
		// The reference evaluator materializes; all items queue up front.
		r.plan.op.Eval(r.actx, nil)
		r.done = true
		return
	}
	r.pump = algebra.OpenPump(r.plan.op, r.actx, nil)
}

// internalError wraps a recovered evaluator panic into the session's typed
// *InternalError. It must be called from the recovering deferred function,
// where the stack still includes the panic origin.
func (r *Results) internalError(p any) *InternalError {
	return &InternalError{Query: r.q.Text, Plan: r.plan.Name, Panic: p, Stack: debug.Stack()}
}

// runError converts a recovered evaluator panic into the session's typed
// error. A budget trip — the engine's one sanctioned panic, raised because
// the iterator protocol has no error channel — becomes a *ResourceError;
// anything else is a genuine evaluator bug and becomes *InternalError.
func (r *Results) runError(p any) error {
	if rt, ok := p.(*algebra.ResourceTrip); ok {
		return resourceError(r.q.Text, r.plan.Name, rt)
	}
	return r.internalError(p)
}

func resourceError(query, plan string, rt *algebra.ResourceTrip) *ResourceError {
	return &ResourceError{Query: query, Plan: plan, Op: rt.Op,
		Bytes: rt.Bytes, Tuples: rt.Tuples,
		MaxBytes: rt.MaxBytes, MaxTuples: rt.MaxTuples}
}

// Next returns the next result item; ok is false when the stream ends —
// because the plan is exhausted, the context was cancelled (check Err), a
// panicking evaluator was recovered into an *InternalError (check Err), or
// the session was closed.
func (r *Results) Next() (item Item, ok bool) {
	defer func() {
		if p := recover(); p != nil {
			r.fail(r.runError(p))
			item, ok = Item{}, false
		}
	}()
	if r.closed || r.err != nil {
		return Item{}, false
	}
	if !r.opened {
		if err := context.Cause(r.ctx); err != nil {
			r.fail(err)
			return Item{}, false
		}
		r.openTyped()
	}
	for r.qpos >= len(r.queue.items) {
		if err := context.Cause(r.ctx); err != nil {
			r.fail(err)
			return Item{}, false
		}
		if r.done {
			r.finish()
			return Item{}, false
		}
		r.queue.items = r.queue.items[:0]
		r.qpos = 0
		if !r.pump.Step() {
			r.done = true
		}
	}
	item = r.queue.items[r.qpos]
	r.qpos++
	return item, true
}

// Seq adapts the session to a range-over-func iterator:
//
//	for item := range res.Seq() { ... }
//
// Breaking out of the range leaves the session open (Close releases it);
// check Err afterwards for cancellation.
func (r *Results) Seq() iter.Seq[Item] {
	return func(yield func(Item) bool) {
		for {
			item, ok := r.Next()
			if !ok {
				return
			}
			if !yield(item) {
				return
			}
		}
	}
}

// WriteXML serializes the remaining result items into w and ends the
// session. Called before any Next/Seq consumption it streams the whole
// run straight into the writer — memory stays bounded by the plan's
// pipeline-breaker state, not the output size — and the bytes equal the
// concatenated XML() of the items a typed consumption would have yielded.
// The error is the context's cancellation cause, a write error, or nil.
func (r *Results) WriteXML(w io.Writer) error {
	if r.closed {
		return r.err
	}
	if !r.opened {
		return r.drainTo(w)
	}
	sw, flush := writerSink(w)
	for {
		item, ok := r.Next()
		if !ok {
			break
		}
		item.writeTo(sw)
	}
	if ferr := flush(); ferr != nil && r.err == nil {
		r.err = ferr
	}
	return r.err
}

// drainTo is the serialize-while-executing fast path: no sink, no item
// queue — the exact execution profile of the historical Execute/ExecuteTo.
// An evaluator panic is recovered into the session's *InternalError.
func (r *Results) drainTo(w io.Writer) error {
	r.opened = true
	sw, flush := writerSink(w)
	r.actx = r.newAlgebraCtx(sw)
	perr := func() (perr error) {
		defer func() {
			if p := recover(); p != nil {
				perr = r.runError(p)
			}
		}()
		if r.cfg.reference {
			r.plan.op.Eval(r.actx, nil)
		} else {
			algebra.DrainIter(r.plan.op, r.actx, nil)
		}
		return nil
	}()
	r.done = true
	if perr != nil {
		r.fail(perr)
	} else if err := context.Cause(r.ctx); err != nil {
		r.fail(err)
	} else {
		r.finish()
	}
	if ferr := flush(); ferr != nil && r.err == nil {
		r.err = ferr
	}
	return r.err
}

// writerSink views w as the engine's output sink. The engine's writes are
// fire-and-forget (see algebra.StringWriter), so only writers that cannot
// fail — the in-memory builders and io.Discard — are used directly, and a
// caller-provided bufio.Writer keeps its own buffer (its sticky error
// surfaces through flush). Everything else, files included, is buffered
// here with the buffer's sticky write error surfaced by flush.
func writerSink(w io.Writer) (sw algebra.StringWriter, flush func() error) {
	switch s := w.(type) {
	case *strings.Builder:
		return s, func() error { return nil }
	case *bytes.Buffer:
		return s, func() error { return nil }
	case *bufio.Writer:
		return s, s.Flush
	}
	if w == io.Discard {
		return io.Discard.(algebra.StringWriter), func() error { return nil }
	}
	bw := bufio.NewWriter(w)
	return bw, bw.Flush
}

// Err returns the error that ended the stream early: the context's
// cancellation cause or a WriteXML write error. It is nil while the stream
// is live and after a clean exhaustion or Close.
func (r *Results) Err() error { return r.err }

// Stats returns a snapshot of the run's execution counters so far.
func (r *Results) Stats() Stats {
	if r.actx == nil {
		return Stats{}
	}
	return statsOf(r.actx)
}

// Close releases the session's iterator state. Closing mid-stream is the
// supported way to abandon a run early; Close is idempotent and returns
// Err.
func (r *Results) Close() error {
	if r.closed {
		return r.err
	}
	r.closed = true
	r.recordStats()
	r.releasePump()
	r.queue.items = nil
	return r.err
}

// fail ends the stream with err.
func (r *Results) fail(err error) {
	if r.err == nil {
		r.err = err
	}
	r.recordStats()
	r.releasePump()
}

// finish ends the stream cleanly.
func (r *Results) finish() {
	r.recordStats()
	r.releasePump()
}

// releasePump closes the iterator tree. A plan whose evaluation panicked
// may hold half-open iterator state, so Close itself runs under the
// recovery boundary too: a panic during release is converted (or, after an
// earlier failure, subsumed) instead of escaping through fail/Close.
func (r *Results) releasePump() {
	if r.pump == nil {
		return
	}
	p := r.pump
	r.pump = nil
	defer func() {
		if v := recover(); v != nil && r.err == nil {
			r.err = r.runError(v)
		}
	}()
	p.Close()
}

// recordStats publishes the final counters into the WithStats target. The
// first end-of-stream event wins; later Close calls must not re-copy (the
// algebra context is shared with nothing, but the caller may reuse the
// Stats struct).
func (r *Results) recordStats() {
	if r.actx != nil && !r.counted {
		// Engine-level accumulation (once per session): index hits feed the
		// compiling engine's cumulative counter for /statusz.
		r.counted = true
		if r.q.idxHits != nil && r.actx.Stats.IndexScans > 0 {
			r.q.idxHits.Add(r.actx.Stats.IndexScans)
		}
	}
	if r.cfg.stats != nil && r.actx != nil {
		*r.cfg.stats = statsOf(r.actx)
		r.cfg.stats = nil
	}
}
