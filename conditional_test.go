package nalquery

import (
	"strings"
	"testing"
)

// End-to-end tests for the conditional expression if (…) then … else ….

func condEngine(t *testing.T) *Engine {
	t.Helper()
	eng := NewEngine()
	if err := eng.LoadXMLString("bib.xml", `<bib>
		<book year="1991"><title>old</title><price>10</price></book>
		<book year="2001"><title>new</title><price>50</price></book>
	</bib>`); err != nil {
		t.Fatal(err)
	}
	return eng
}

// TestConditionalInReturn: branch selection by effective boolean value.
func TestConditionalInReturn(t *testing.T) {
	eng := condEngine(t)
	out, err := eng.Query(`
let $d := doc("bib.xml")
for $b in $d//book
return <c>{ if (decimal($b/price) > 20) then "pricey" else "cheap" }</c>`)
	if err != nil {
		t.Fatal(err)
	}
	want := "<c>cheap</c><c>pricey</c>"
	if squash(out) != want {
		t.Errorf("got %q, want %q", squash(out), want)
	}
}

// TestConditionalMissingElse: the extension default is the empty sequence,
// which prints as nothing.
func TestConditionalMissingElse(t *testing.T) {
	eng := condEngine(t)
	out, err := eng.Query(`
let $d := doc("bib.xml")
for $b in $d//book
return <c>{ if (decimal($b/price) > 20) then string($b/title) }</c>`)
	if err != nil {
		t.Fatal(err)
	}
	want := "<c></c><c>new</c>"
	if squash(out) != want {
		t.Errorf("got %q, want %q", squash(out), want)
	}
}

// TestConditionalInWhere: conditionals compose inside where predicates.
func TestConditionalInWhere(t *testing.T) {
	eng := condEngine(t)
	out, err := eng.Query(`
let $d := doc("bib.xml")
for $b in $d//book
where if ($b/@year > 2000) then true() else false()
return $b/title`)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "new") || strings.Contains(out, "old") {
		t.Errorf("conditional where filtered wrongly: %q", out)
	}
}

// TestConditionalNested: conditionals nest in both branches.
func TestConditionalNested(t *testing.T) {
	eng := condEngine(t)
	out, err := eng.Query(`
let $d := doc("bib.xml")
for $b in $d//book
return <c>{ if (decimal($b/price) > 100) then "lux"
            else if (decimal($b/price) > 20) then "mid" else "low" }</c>`)
	if err != nil {
		t.Fatal(err)
	}
	want := "<c>low</c><c>mid</c>"
	if squash(out) != want {
		t.Errorf("got %q, want %q", squash(out), want)
	}
}

// TestIfElementName: an element named "if" in a path is not mistaken for a
// conditional.
func TestIfElementName(t *testing.T) {
	eng := NewEngine()
	if err := eng.LoadXMLString("c.xml", `<r><if>x</if></r>`); err != nil {
		t.Fatal(err)
	}
	out, err := eng.Query(`
let $d := doc("c.xml")
for $i in $d//if
return <v>{ string($i) }</v>`)
	if err != nil {
		t.Fatal(err)
	}
	if squash(out) != "<v>x</v>" {
		t.Errorf("got %q, want <v>x</v>", squash(out))
	}
}
