package nalquery

import (
	"strings"
	"testing"
)

// TestStreamingMatchesMaterialized runs every plan of every paper query
// through the slot-based iterator engine and the definitional materializing
// evaluator and requires byte-identical output.
func TestStreamingMatchesMaterialized(t *testing.T) {
	e := tinyEngine(t)
	e.LoadDBLPDocument(40)
	for id, text := range PaperQueries {
		q, err := e.Compile(text)
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		for _, p := range q.Plans() {
			mat, _, err := q.ExecuteReference(p.Name)
			if err != nil {
				t.Fatalf("%s/%s: %v", id, p.Name, err)
			}
			str, _, err := q.ExecuteStreaming(p.Name)
			if err != nil {
				t.Fatalf("%s/%s streaming: %v", id, p.Name, err)
			}
			if mat != str {
				t.Errorf("%s/%s: streaming output differs\nmaterialized: %.120s\nstreaming:    %.120s",
					id, p.Name, mat, str)
			}
		}
	}
}

func TestStreamingUnknownPlan(t *testing.T) {
	e := tinyEngine(t)
	q, err := e.Compile(QueryQ3Existential)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := q.ExecuteStreaming("nope"); err == nil {
		t.Fatalf("unknown plan must error")
	}
}

// TestArithmeticEndToEnd exercises the arithmetic extension through the
// full pipeline: a price threshold computed with div.
func TestArithmeticEndToEnd(t *testing.T) {
	e := tinyEngine(t)
	q, err := e.Compile(`
let $d := doc("bib.xml")
for $b in $d//book
let $p := $b/price
where decimal($p) * 2 > 100 and decimal($p) - 1 < 128
return <x>{ $b/title }</x>`)
	if err != nil {
		t.Fatal(err)
	}
	out, _, err := q.Execute("")
	if err != nil {
		t.Fatal(err)
	}
	// Prices: 65.95, 65.95, 39.95, 129.95 → ×2 > 100 keeps the 65.95s and
	// 129.95; −1 < 128 removes 129.95 (128.95 ≥ 128).
	want := "<x><title>TCP/IP Illustrated</title></x><x><title>Advanced Unix</title></x>"
	if out != want {
		t.Fatalf("arithmetic query:\ngot:  %s\nwant: %s", out, want)
	}
}

// TestCostModelPicksUnnested asserts the cost-based default plan choice.
func TestCostModelPicksUnnested(t *testing.T) {
	e := NewEngine()
	e.LoadUseCaseDocuments(200, 2)
	for id, text := range PaperQueries {
		if strings.Contains(id, "dblp") {
			continue
		}
		q, err := e.Compile(text)
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		best, err := q.Plan("")
		if err != nil {
			t.Fatal(err)
		}
		if best.Name == "nested" {
			t.Errorf("%s: cost model chose the nested plan (cost %g)", id, best.EstimatedCost)
		}
		nested, err := q.Plan("nested")
		if err != nil {
			t.Fatal(err)
		}
		if nested.EstimatedCost <= best.EstimatedCost {
			t.Errorf("%s: nested cost %g must exceed best cost %g",
				id, nested.EstimatedCost, best.EstimatedCost)
		}
	}
}
