// nalsh is an interactive shell for the nalquery engine: type XQuery
// queries terminated by ';' and inspect the plan alternatives, applied
// unnesting equivalences, execution statistics and results.
//
// Commands (one per line, starting with '\'):
//
//	\load URI FILE    load an XML document from FILE under URI
//	\gen SIZE [APB]   load the six use-case documents (Fig. 5 DTDs) at SIZE
//	                  elements (APB = authors per book, default 2)
//	\dblp SIZE        load the DBLP-like heterogeneous document
//	\docs             list loaded documents
//	\plans            show the plan alternatives of the last query
//	\explain [NAME]   print the operator tree of a plan of the last query
//	\plan NAME        execute a specific plan of the last query
//	\quit             exit
package main

import (
	"bufio"
	"context"
	"fmt"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"time"

	nalquery "nalquery"
)

func main() {
	eng := nalquery.NewEngine()
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var buf strings.Builder
	var last *nalquery.Query

	fmt.Println("nalquery shell — terminate queries with ';', \\quit to exit")
	prompt(buf.Len() > 0)
	for sc.Scan() {
		line := sc.Text()
		trimmed := strings.TrimSpace(line)
		if buf.Len() == 0 && strings.HasPrefix(trimmed, `\`) {
			if !command(eng, &last, trimmed) {
				return
			}
			prompt(false)
			continue
		}
		buf.WriteString(line)
		buf.WriteByte('\n')
		if strings.Contains(line, ";") {
			text := strings.TrimSuffix(strings.TrimSpace(buf.String()), ";")
			buf.Reset()
			runQuery(eng, &last, text)
		}
		prompt(buf.Len() > 0)
	}
}

func prompt(continuation bool) {
	if continuation {
		fmt.Print("   ...> ")
	} else {
		fmt.Print("nal> ")
	}
}

// command executes one backslash command; it returns false on \quit.
func command(eng *nalquery.Engine, last **nalquery.Query, line string) bool {
	fields := strings.Fields(line)
	switch fields[0] {
	case `\quit`, `\q`:
		return false
	case `\load`:
		if len(fields) != 3 {
			fmt.Println("usage: \\load URI FILE")
			return true
		}
		f, err := os.Open(fields[2])
		if err != nil {
			fmt.Println("error:", err)
			return true
		}
		defer f.Close()
		if err := eng.LoadXML(fields[1], f); err != nil {
			fmt.Println("error:", err)
			return true
		}
		fmt.Printf("loaded %s\n", fields[1])
	case `\gen`:
		if len(fields) < 2 {
			fmt.Println("usage: \\gen SIZE [AUTHORS_PER_BOOK]")
			return true
		}
		size, err := strconv.Atoi(fields[1])
		if err != nil {
			fmt.Println("error:", err)
			return true
		}
		apb := 2
		if len(fields) > 2 {
			if apb, err = strconv.Atoi(fields[2]); err != nil {
				fmt.Println("error:", err)
				return true
			}
		}
		eng.LoadUseCaseDocuments(size, apb)
		fmt.Printf("generated use-case documents at size %d (%d authors/book)\n", size, apb)
	case `\dblp`:
		if len(fields) != 2 {
			fmt.Println("usage: \\dblp SIZE")
			return true
		}
		size, err := strconv.Atoi(fields[1])
		if err != nil {
			fmt.Println("error:", err)
			return true
		}
		eng.LoadDBLPDocument(size)
		fmt.Printf("generated dblp.xml at size %d\n", size)
	case `\docs`:
		for _, uri := range eng.DocumentURIs() {
			fmt.Println(" ", uri)
		}
	case `\plans`:
		if *last == nil {
			fmt.Println("no query compiled yet")
			return true
		}
		for _, p := range (*last).Plans() {
			applied := ""
			if len(p.Applied) > 0 {
				applied = "  [" + strings.Join(p.Applied, ", ") + "]"
			}
			fmt.Printf("  %-18s cost=%.0f%s\n", p.Name, p.EstimatedCost, applied)
		}
	case `\explain`:
		if *last == nil {
			fmt.Println("no query compiled yet")
			return true
		}
		name := ""
		if len(fields) > 1 {
			name = strings.Join(fields[1:], " ")
		}
		p, err := (*last).Plan(name)
		if err != nil {
			fmt.Println("error:", err)
			return true
		}
		fmt.Printf("plan %s:\n%s\n", p.Name, p.Explain())
	case `\plan`:
		if *last == nil {
			fmt.Println("no query compiled yet")
			return true
		}
		if len(fields) < 2 {
			fmt.Println("usage: \\plan NAME")
			return true
		}
		execute(*last, strings.Join(fields[1:], " "))
	default:
		fmt.Printf("unknown command %s\n", fields[0])
	}
	return true
}

func runQuery(eng *nalquery.Engine, last **nalquery.Query, text string) {
	q, err := eng.Compile(text)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	*last = q
	fmt.Printf("compiled; %d plan alternatives (\\plans to list)\n", len(q.Plans()))
	execute(q, "")
}

func execute(q *nalquery.Query, name string) {
	// Stream the result to stdout item by item instead of materializing the
	// whole output string; Ctrl-C cancels a long-running plan mid-stream.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	var stats nalquery.Stats
	t0 := time.Now()
	res, err := q.Run(ctx, nalquery.WithPlan(name), nalquery.WithStats(&stats))
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	w := bufio.NewWriter(os.Stdout)
	if err := res.WriteXML(w); err != nil {
		w.Flush()
		fmt.Println("\nerror:", err)
		return
	}
	fmt.Fprintln(w)
	if err := w.Flush(); err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Printf("-- plan %s, %s, doc-scans=%d, nested-evals=%d\n",
		res.Plan().Name, time.Since(t0).Round(time.Microsecond), stats.DocAccesses, stats.NestedEvals)
}
