// nalsh is an interactive shell for the nalquery engine: type XQuery
// queries terminated by ';' and inspect the plan alternatives, applied
// unnesting equivalences, execution statistics and results.
//
// Commands (one per line, starting with '\'):
//
//	\load URI FILE    load an XML document from FILE under URI
//	\gen SIZE [APB]   load the six use-case documents (Fig. 5 DTDs) at SIZE
//	                  elements (APB = authors per book, default 2)
//	\dblp SIZE        load the DBLP-like heterogeneous document
//	\docs             list loaded documents
//	\set NAME VALUE   bind the external variable $NAME for later queries
//	                  (VALUE parses as integer, then float, then string;
//	                  bare \set lists the current bindings)
//	\unset NAME       remove a binding
//	\timeout DUR      cancel runs exceeding DUR (e.g. 2s; 0 or "off" clears;
//	                  bare \timeout shows the current deadline)
//	\limit BYTES      abort runs past this memory budget (e.g. 64k, 16m;
//	                  0 or "off" clears; bare \limit shows the current limit)
//	\plans            show the plan alternatives of the last query
//	\explain [NAME]   print the operator tree of a plan of the last query
//	\plan NAME        execute a specific plan of the last query
//	\quit             exit
//
// Queries are compiled through the prepared path: a query declaring
// external variables ("declare variable $x external;") picks its bindings
// from the \set table at each execution, with zero recompilation when
// re-running plans of the last query.
package main

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"os"
	"os/signal"
	"sort"
	"strconv"
	"strings"
	"time"

	nalquery "nalquery"
	"nalquery/internal/cli"
)

// shell is the interactive session state: the engine, the last prepared
// query, and the \set binding table external variables draw from.
type shell struct {
	eng     *nalquery.Engine
	last    *nalquery.Prepared
	vars    map[string]any
	timeout time.Duration // per-run deadline set by \timeout; 0 = none
	limit   int64         // per-run memory budget set by \limit; 0 = none
}

func main() {
	sh := &shell{eng: nalquery.NewEngine(), vars: map[string]any{}}
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var buf strings.Builder

	fmt.Println("nalquery shell — terminate queries with ';', \\quit to exit")
	prompt(buf.Len() > 0)
	for sc.Scan() {
		line := sc.Text()
		trimmed := strings.TrimSpace(line)
		if buf.Len() == 0 && strings.HasPrefix(trimmed, `\`) {
			if !sh.command(trimmed) {
				return
			}
			prompt(false)
			continue
		}
		buf.WriteString(line)
		buf.WriteByte('\n')
		if strings.Contains(stripProlog(buf.String()), ";") {
			text := strings.TrimSuffix(strings.TrimSpace(buf.String()), ";")
			buf.Reset()
			sh.runQuery(text)
		}
		prompt(buf.Len() > 0)
	}
}

func prompt(continuation bool) {
	if continuation {
		fmt.Print("   ...> ")
	} else {
		fmt.Print("nal> ")
	}
}

// command executes one backslash command; it returns false on \quit.
func (sh *shell) command(line string) bool {
	eng, last := sh.eng, &sh.last
	fields := strings.Fields(line)
	switch fields[0] {
	case `\quit`, `\q`:
		return false
	case `\load`:
		if len(fields) != 3 {
			fmt.Println("usage: \\load URI FILE")
			return true
		}
		f, err := os.Open(fields[2])
		if err != nil {
			fmt.Println("error:", err)
			return true
		}
		defer f.Close()
		if err := eng.LoadXML(fields[1], f); err != nil {
			fmt.Println("error:", err)
			return true
		}
		fmt.Printf("loaded %s\n", fields[1])
	case `\set`:
		switch len(fields) {
		case 1:
			if len(sh.vars) == 0 {
				fmt.Println("no variables set")
				return true
			}
			names := make([]string, 0, len(sh.vars))
			for n := range sh.vars {
				names = append(names, n)
			}
			sort.Strings(names)
			for _, n := range names {
				fmt.Printf("  $%s = %v\n", n, sh.vars[n])
			}
		case 2:
			fmt.Println("usage: \\set NAME VALUE (bare \\set lists bindings)")
		default:
			name := strings.TrimPrefix(fields[1], "$")
			sh.vars[name] = cli.ParseVarValue(strings.Join(fields[2:], " "))
			fmt.Printf("$%s = %v\n", name, sh.vars[name])
		}
	case `\unset`:
		if len(fields) != 2 {
			fmt.Println("usage: \\unset NAME")
			return true
		}
		delete(sh.vars, strings.TrimPrefix(fields[1], "$"))
	case `\timeout`:
		switch {
		case len(fields) == 1:
			if sh.timeout == 0 {
				fmt.Println("no timeout set")
			} else {
				fmt.Printf("timeout = %v\n", sh.timeout)
			}
		case fields[1] == "off" || fields[1] == "0":
			sh.timeout = 0
			fmt.Println("timeout cleared")
		default:
			d, err := time.ParseDuration(fields[1])
			if err != nil || d < 0 {
				fmt.Println("usage: \\timeout DURATION (e.g. 2s, 500ms; 0 or off clears)")
				return true
			}
			sh.timeout = d
			fmt.Printf("timeout = %v\n", d)
		}
	case `\limit`:
		switch {
		case len(fields) == 1:
			if sh.limit == 0 {
				fmt.Println("no memory limit set")
			} else {
				fmt.Printf("limit = %d bytes\n", sh.limit)
			}
		case fields[1] == "off" || fields[1] == "0":
			sh.limit = 0
			fmt.Println("memory limit cleared")
		default:
			n, err := cli.ParseBytes(fields[1])
			if err != nil {
				fmt.Println("usage: \\limit BYTES (e.g. 65536, 64k, 16m; 0 or off clears)")
				return true
			}
			sh.limit = n
			fmt.Printf("limit = %d bytes\n", n)
		}
	case `\gen`:
		if len(fields) < 2 {
			fmt.Println("usage: \\gen SIZE [AUTHORS_PER_BOOK]")
			return true
		}
		size, err := strconv.Atoi(fields[1])
		if err != nil {
			fmt.Println("error:", err)
			return true
		}
		apb := 2
		if len(fields) > 2 {
			if apb, err = strconv.Atoi(fields[2]); err != nil {
				fmt.Println("error:", err)
				return true
			}
		}
		eng.LoadUseCaseDocuments(size, apb)
		fmt.Printf("generated use-case documents at size %d (%d authors/book)\n", size, apb)
	case `\dblp`:
		if len(fields) != 2 {
			fmt.Println("usage: \\dblp SIZE")
			return true
		}
		size, err := strconv.Atoi(fields[1])
		if err != nil {
			fmt.Println("error:", err)
			return true
		}
		eng.LoadDBLPDocument(size)
		fmt.Printf("generated dblp.xml at size %d\n", size)
	case `\docs`:
		for _, uri := range eng.DocumentURIs() {
			fmt.Println(" ", uri)
		}
	case `\plans`:
		if *last == nil {
			fmt.Println("no query compiled yet")
			return true
		}
		for _, p := range (*last).Plans() {
			applied := ""
			if len(p.Applied) > 0 {
				applied = "  [" + strings.Join(p.Applied, ", ") + "]"
			}
			fmt.Printf("  %-18s cost=%.0f%s\n", p.Name, p.EstimatedCost, applied)
		}
	case `\explain`:
		if *last == nil {
			fmt.Println("no query compiled yet")
			return true
		}
		name := ""
		if len(fields) > 1 {
			name = strings.Join(fields[1:], " ")
		}
		p, err := (*last).Plan(name)
		if err != nil {
			fmt.Println("error:", err)
			return true
		}
		fmt.Printf("plan %s:\n%s\n", p.Name, p.Explain())
	case `\plan`:
		if *last == nil {
			fmt.Println("no query compiled yet")
			return true
		}
		if len(fields) < 2 {
			fmt.Println("usage: \\plan NAME")
			return true
		}
		sh.execute(*last, strings.Join(fields[1:], " "))
	default:
		fmt.Printf("unknown command %s\n", fields[0])
	}
	return true
}

// stripProlog drops leading "declare variable $x external;" declarations
// so their terminating ';' does not end the query buffer early — only a
// ';' after the body completes a query.
func stripProlog(s string) string {
	for {
		t := strings.TrimSpace(s)
		if !strings.HasPrefix(t, "declare") {
			return t
		}
		i := strings.Index(t, ";")
		if i < 0 {
			return t
		}
		s = t[i+1:]
	}
}

func (sh *shell) runQuery(text string) {
	p, err := sh.eng.Prepare(text)
	if err != nil {
		fmt.Println("error:", err)
		var pe *nalquery.ParseError
		if errors.As(err, &pe) {
			if caret := cli.Caret(text, pe.Line, pe.Col); caret != "" {
				fmt.Println(caret)
			}
		}
		return
	}
	sh.last = p
	fmt.Printf("compiled; %d plan alternatives (\\plans to list)\n", len(p.Plans()))
	if vars := p.Vars(); len(vars) > 0 {
		fmt.Printf("external variables: $%s (\\set NAME VALUE to bind)\n", strings.Join(vars, ", $"))
	}
	sh.execute(p, "")
}

func (sh *shell) execute(q *nalquery.Prepared, name string) {
	// Stream the result to stdout item by item instead of materializing the
	// whole output string; Ctrl-C cancels a long-running plan mid-stream.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	if sh.timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, sh.timeout)
		defer cancel()
	}
	var stats nalquery.Stats
	t0 := time.Now()
	opts := []nalquery.RunOption{nalquery.WithPlan(name), nalquery.WithStats(&stats)}
	if sh.limit > 0 {
		opts = append(opts, nalquery.WithMaxMemory(sh.limit))
	}
	for _, v := range q.Vars() {
		if val, ok := sh.vars[v]; ok {
			opts = append(opts, nalquery.Bind(v, val))
		}
	}
	res, err := q.Run(ctx, opts...)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	w := bufio.NewWriter(os.Stdout)
	if err := res.WriteXML(w); err != nil {
		w.Flush()
		fmt.Println("\nerror:", err)
		return
	}
	fmt.Fprintln(w)
	if err := w.Flush(); err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Printf("-- plan %s, %s, doc-scans=%d, nested-evals=%d\n",
		res.Plan().Name, time.Since(t0).Round(time.Microsecond), stats.DocAccesses, stats.NestedEvals)
}
