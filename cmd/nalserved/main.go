// Command nalserved serves XQuery traffic over HTTP on the prepared-query
// core, built to degrade gracefully instead of collapsing: bounded
// admission (in-flight cap + wait queue, 429/Retry-After beyond), per-
// request deadlines riding the engine's context cancellation, panic
// isolation (a poison query answers 500, the process keeps serving), and
// SIGTERM draining (stop admitting, finish in-flight runs within the drain
// budget, cancel stragglers).
//
// Usage:
//
//	nalserved -addr :8080 -gen 1000                   # synthetic corpus
//	nalserved -doc bib.xml=path/to/bib.xml [-doc ...] # loaded documents
//	nalserved -prepare recent=query.xq                # named statements
//	nalserved -max-inflight 8 -max-queue 32 -timeout 5s -max-timeout 30s
//
// Endpoints (see docs/SERVER.md for the full contract):
//
//	POST /query                 run the body as XQuery (?plan=, ?timeout=,
//	                            ?var=name=value, ?format=xml|json)
//	PUT  /prepared/{name}       register a named prepared statement
//	POST /prepared/{name}       run it (?var=name=value, ...)
//	GET  /prepared              list statements
//	POST /documents/{uri}       load the XML body as document {uri}
//	GET  /documents             list documents
//	POST /gen?size=N&apb=M      load the synthetic use-case corpus
//	GET  /healthz /readyz /statusz
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	nalquery "nalquery"
	"nalquery/internal/cli"
	"nalquery/internal/server"
	"nalquery/internal/store"
)

type repeatFlags []string

func (d *repeatFlags) String() string     { return strings.Join(*d, ",") }
func (d *repeatFlags) Set(v string) error { *d = append(*d, v); return nil }

func main() {
	var docs, prepares repeatFlags
	var (
		addr        = flag.String("addr", ":8080", "listen address")
		gen         = flag.Int("gen", 0, "generate the synthetic use-case corpus at this size")
		apb         = flag.Int("authors", 2, "authors per book for -gen")
		maxInFlight = flag.Int("max-inflight", 0, "concurrent query runs (default GOMAXPROCS)")
		maxQueue    = flag.Int("max-queue", 0, "requests queued beyond the in-flight cap (default 4x; -1 = no queue)")
		timeout     = flag.Duration("timeout", 10*time.Second, "default per-request run deadline")
		maxTimeout  = flag.Duration("max-timeout", 60*time.Second, "cap on client-requested deadlines")
		drain       = flag.Duration("drain-timeout", 10*time.Second, "graceful-shutdown budget before in-flight runs are cancelled")
		retryAfter  = flag.Duration("retry-after", time.Second, "Retry-After hint on 429 responses")
		maxBody     = flag.Int64("max-body", 16<<20, "request body cap in bytes")
		maxMemory   = flag.String("max-memory", "0", "default per-run memory budget (bytes, k/m/g suffix; 0 = unlimited)")
		maxMemCap   = flag.String("max-memory-cap", "1g", "cap on client-requested memory budgets")
		debug       = flag.Bool("debug", false, "mount the /debug endpoints (panic probe)")
	)
	flag.Var(&docs, "doc", "uri=path document registration (repeatable; .nalb store files supported)")
	flag.Var(&prepares, "prepare", "name=file named prepared statement (repeatable)")
	flag.Parse()

	logger := log.New(os.Stderr, "nalserved: ", log.LstdFlags|log.Lmsgprefix)

	defMem, err := cli.ParseBytes(*maxMemory)
	if err != nil {
		logger.Fatalf("-max-memory: %v", err)
	}
	memCap, err := cli.ParseBytes(*maxMemCap)
	if err != nil {
		logger.Fatalf("-max-memory-cap: %v", err)
	}

	eng := nalquery.NewEngine()
	if *gen > 0 {
		eng.LoadUseCaseDocuments(*gen, *apb)
		eng.LoadDBLPDocument(*gen)
		logger.Printf("generated use-case corpus at size %d (%d authors/book)", *gen, *apb)
	}
	for _, d := range docs {
		uri, path, ok := strings.Cut(d, "=")
		if !ok {
			logger.Fatalf("-doc needs uri=path, got %q", d)
		}
		if err := loadDoc(eng, uri, path); err != nil {
			logger.Fatalf("load %s: %v", d, err)
		}
		logger.Printf("loaded %s from %s", uri, path)
	}

	srv := server.New(eng, server.Config{
		MaxInFlight:      *maxInFlight,
		MaxQueue:         *maxQueue,
		DefaultTimeout:   *timeout,
		MaxTimeout:       *maxTimeout,
		DrainTimeout:     *drain,
		RetryAfter:       *retryAfter,
		MaxBodyBytes:     *maxBody,
		DefaultMaxMemory: defMem,
		MaxMemoryCap:     memCap,
		Debug:            *debug,
	}, logger)

	for _, p := range prepares {
		name, path, ok := strings.Cut(p, "=")
		if !ok {
			logger.Fatalf("-prepare needs name=file, got %q", p)
		}
		text, err := os.ReadFile(path)
		if err != nil {
			logger.Fatalf("prepare %s: %v", name, err)
		}
		if err := srv.RegisterPrepared(name, string(text)); err != nil {
			logger.Fatalf("prepare %s: %v", name, err)
		}
		logger.Printf("prepared statement %q from %s", name, path)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		logger.Fatalf("listen: %v", err)
	}
	hs := &http.Server{Handler: srv.Handler()}
	serveErr := make(chan error, 1)
	go func() { serveErr <- hs.Serve(ln) }()
	logger.Printf("serving on http://%s (inflight=%d queue=%d timeout=%v)",
		ln.Addr(), srv.Stat().MaxInFlight, srv.Stat().MaxQueue, *timeout)

	// SIGTERM/SIGINT begins the drain sequence: stop admitting, finish
	// in-flight runs within the budget, cancel stragglers, then close the
	// listener. A second signal aborts immediately.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	select {
	case err := <-serveErr:
		logger.Fatalf("serve: %v", err)
	case <-ctx.Done():
	}
	stop()
	logger.Printf("signal received, draining")
	shutCtx, cancel := context.WithTimeout(context.Background(), *drain+5*time.Second)
	defer cancel()
	if err := srv.Drain(shutCtx); err != nil {
		logger.Printf("drain: cancelled stragglers: %v", err)
	}
	if err := hs.Shutdown(shutCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		logger.Printf("shutdown: %v", err)
	}
	logger.Printf("bye")
}

// loadDoc registers one -doc flag: a .nalb binary store file or XML.
func loadDoc(eng *nalquery.Engine, uri, path string) error {
	if strings.HasSuffix(path, ".nalb") {
		doc, err := store.LoadFile(path)
		if err != nil {
			return err
		}
		doc.URI = uri
		eng.LoadDocument(doc)
		return nil
	}
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return eng.LoadXML(uri, f)
}
