// Command nalload load-tests a running nalserved, measuring latency
// percentiles and throughput under increasing concurrency — including
// overload steps that demonstrate graceful degradation (prompt 429 shedding
// instead of collapse).
//
// Usage:
//
//	nalload -addr http://127.0.0.1:8080 -concurrency 1,4,16,64 -duration 3s
//	nalload -q 'let $d := doc("bib.xml") ...' -plan nested -timeout 2s
//	nalload -json > load.json
//
// For each concurrency step, C workers issue back-to-back POST /query
// requests for the step duration. The report shows queries/sec of
// successful runs, p50/p95/p99/max latency, and the shed (429), timeout
// (504) and error counts — under overload the shed column grows while
// successful-run p99 stays bounded by the server's deadline: that curve is
// the service's robustness story.
//
// With -wait the tool first polls /readyz until the server is up (used by
// `make load-smoke` to avoid start-up races).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

// defaultQuery streams book titles from the synthetic corpus a
// `nalserved -gen N` deployment always carries.
const defaultQuery = `
let $d1 := doc("bib.xml")
for $t1 in $d1//book/title
return <t>{ $t1 }</t>`

func main() {
	var (
		addr     = flag.String("addr", "http://127.0.0.1:8080", "base URL of the nalserved instance")
		queryStr = flag.String("q", "", "inline XQuery text (default: a title scan over the -gen corpus)")
		queryF   = flag.String("query", "", "file containing the XQuery")
		plan     = flag.String("plan", "", "plan alternative (?plan=)")
		timeout  = flag.Duration("timeout", 0, "per-request deadline sent to the server (?timeout=)")
		maxMem   = flag.String("max-memory", "", "per-request memory budget sent to the server (?max-memory=)")
		steps    = flag.String("concurrency", "1,4,16,64", "comma-separated concurrency steps")
		duration = flag.Duration("duration", 3*time.Second, "measurement duration per step")
		warmup   = flag.Duration("warmup", 500*time.Millisecond, "warmup before the first step")
		wait     = flag.Duration("wait", 0, "poll /readyz for up to this long before starting")
		jsonOut  = flag.Bool("json", false, "emit the report as JSON on stdout")
	)
	flag.Parse()

	query := *queryStr
	if *queryF != "" {
		b, err := os.ReadFile(*queryF)
		if err != nil {
			fail(err)
		}
		query = string(b)
	}
	if query == "" {
		query = defaultQuery
	}

	target := strings.TrimSuffix(*addr, "/") + "/query"
	sep := "?"
	if *plan != "" {
		target += sep + "plan=" + *plan
		sep = "&"
	}
	if *timeout > 0 {
		target += sep + "timeout=" + timeout.String()
		sep = "&"
	}
	if *maxMem != "" {
		target += sep + "max-memory=" + *maxMem
	}

	var concs []int
	for _, s := range strings.Split(*steps, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(s))
		if err != nil || n < 1 {
			fail(fmt.Errorf("bad concurrency step %q", s))
		}
		concs = append(concs, n)
	}

	client := &http.Client{}
	if *wait > 0 {
		if err := waitReady(client, strings.TrimSuffix(*addr, "/")+"/readyz", *wait); err != nil {
			fail(err)
		}
	}
	if *warmup > 0 {
		runStep(client, target, query, 1, *warmup)
	}

	var report []stepResult
	for _, c := range concs {
		report = append(report, runStep(client, target, query, c, *duration))
	}

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		enc.Encode(report)
		return
	}
	fmt.Printf("%6s %8s %8s %8s %8s %8s %6s %6s %6s   %9s %9s %9s %9s\n",
		"conc", "reqs", "ok", "shed", "timeout", "resrc", "5xx", "4xx", "neterr", "qps", "p50", "p95", "p99")
	for _, r := range report {
		fmt.Printf("%6d %8d %8d %8d %8d %8d %6d %6d %6d   %9.1f %9s %9s %9s\n",
			r.Concurrency, r.Requests, r.OK, r.Shed, r.Timeout, r.Resource, r.Err5xx, r.Err4xx, r.NetErr,
			r.QPS, fmtDur(r.P50), fmtDur(r.P95), fmtDur(r.P99))
	}
}

// stepResult is one concurrency step of the report. Latencies cover
// successful (200) runs only; shed requests are counted, not timed — their
// promptness shows up as the step's request total staying high.
type stepResult struct {
	Concurrency int           `json:"concurrency"`
	Requests    int           `json:"requests"`
	OK          int           `json:"ok"`
	Shed        int           `json:"shed"`
	Timeout     int           `json:"timeout"`
	Resource    int           `json:"resource"`
	Err4xx      int           `json:"err_4xx"`
	Err5xx      int           `json:"err_5xx"`
	NetErr      int           `json:"net_err"`
	QPS         float64       `json:"qps"`
	P50         time.Duration `json:"p50_ns"`
	P95         time.Duration `json:"p95_ns"`
	P99         time.Duration `json:"p99_ns"`
	Max         time.Duration `json:"max_ns"`
}

// runStep drives C workers against the target for the step duration.
func runStep(client *http.Client, target, query string, conc int, d time.Duration) stepResult {
	type obs struct {
		code    int
		latency time.Duration
		netErr  bool
	}
	var mu sync.Mutex
	var all []obs
	deadline := time.Now().Add(d)
	var wg sync.WaitGroup
	for w := 0; w < conc; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var local []obs
			for time.Now().Before(deadline) {
				t0 := time.Now()
				resp, err := client.Post(target, "application/xquery", strings.NewReader(query))
				if err != nil {
					local = append(local, obs{netErr: true})
					continue
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				local = append(local, obs{code: resp.StatusCode, latency: time.Since(t0)})
			}
			mu.Lock()
			all = append(all, local...)
			mu.Unlock()
		}()
	}
	wg.Wait()

	r := stepResult{Concurrency: conc, Requests: len(all)}
	var okLat []time.Duration
	for _, o := range all {
		switch {
		case o.netErr:
			r.NetErr++
		case o.code == http.StatusOK:
			r.OK++
			okLat = append(okLat, o.latency)
		case o.code == http.StatusTooManyRequests:
			r.Shed++
		case o.code == http.StatusGatewayTimeout:
			r.Timeout++
		case o.code == http.StatusRequestEntityTooLarge:
			r.Resource++
		case o.code >= 500:
			r.Err5xx++
		default:
			r.Err4xx++
		}
	}
	r.QPS = float64(r.OK) / d.Seconds()
	if len(okLat) > 0 {
		sort.Slice(okLat, func(i, j int) bool { return okLat[i] < okLat[j] })
		r.P50 = percentile(okLat, 50)
		r.P95 = percentile(okLat, 95)
		r.P99 = percentile(okLat, 99)
		r.Max = okLat[len(okLat)-1]
	}
	return r
}

// percentile reads the p-th percentile from a sorted latency slice.
func percentile(sorted []time.Duration, p int) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	idx := (len(sorted)*p + 99) / 100
	if idx > 0 {
		idx--
	}
	return sorted[idx]
}

func fmtDur(d time.Duration) string {
	if d == 0 {
		return "-"
	}
	return d.Round(100 * time.Microsecond).String()
}

// waitReady polls /readyz until it answers 200 or the budget expires.
func waitReady(client *http.Client, url string, budget time.Duration) error {
	deadline := time.Now().Add(budget)
	for {
		resp, err := client.Get(url)
		if err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return nil
			}
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("server at %s not ready after %v (last: %v)", url, budget, err)
		}
		time.Sleep(100 * time.Millisecond)
	}
}

func fail(err error) {
	fmt.Fprintf(os.Stderr, "nalload: %v\n", err)
	os.Exit(1)
}
