// Command nalexplain shows the compilation pipeline of a query: the
// normalized source form (Sec. 3), every plan alternative the unnesting
// rewriter produces (Sec. 4) and the equivalences it applied.
//
// Usage:
//
//	nalexplain -q 'let $d := doc("bib.xml") ...'
//	nalexplain -query query.xq
//	nalexplain -paper q1          # one of the paper's queries
//	nalexplain -paper q1 -cards   # estimated vs actual cardinality per operator
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	nalquery "nalquery"
)

func main() {
	var (
		queryFile = flag.String("query", "", "file containing the XQuery")
		queryText = flag.String("q", "", "inline XQuery text")
		paper     = flag.String("paper", "", "one of the paper's queries: q1, q1dblp, q2..q6")
		dot       = flag.String("dot", "", "emit the named plan (or the cheapest for \"best\") as Graphviz dot instead of text")
		cards     = flag.Bool("cards", false, "print estimated vs actual cardinality per operator (loads the use-case corpus and executes each subtree)")
		size      = flag.Int("size", 100, "use-case corpus size for -cards")
	)
	flag.Parse()

	text := *queryText
	if *queryFile != "" {
		b, err := os.ReadFile(*queryFile)
		if err != nil {
			fail(err)
		}
		text = string(b)
	}
	if *paper != "" {
		t, ok := nalquery.PaperQueries[*paper]
		if !ok {
			fmt.Fprintf(os.Stderr, "nalexplain: unknown paper query %q\n", *paper)
			os.Exit(2)
		}
		text = t
	}
	if text == "" {
		fmt.Fprintln(os.Stderr, "nalexplain: no query given (use -query, -q or -paper)")
		os.Exit(2)
	}

	eng := nalquery.NewEngine()
	if *cards {
		// Actual cardinalities need documents to run against.
		eng.LoadUseCaseDocuments(*size, 2)
	}
	q, err := eng.Compile(text)
	if err != nil {
		fail(err)
	}

	if *cards {
		for _, p := range q.Plans() {
			rows, err := q.ExplainCards(p.Name)
			if err != nil {
				fail(err)
			}
			fmt.Printf("== plan: %s (est vs actual cardinality) ==\n", p.Name)
			fmt.Print(nalquery.FormatCards(rows))
			fmt.Println()
		}
		return
	}

	if *dot != "" {
		name := *dot
		if name == "best" {
			name = ""
		}
		p, err := q.Plan(name)
		if err != nil {
			fail(err)
		}
		fmt.Print(p.ExplainDot())
		return
	}

	fmt.Println("== query ==")
	fmt.Println(strings.TrimSpace(text))
	fmt.Println()
	fmt.Println("== normalized (Sec. 3) ==")
	fmt.Println(q.Normalized)
	fmt.Println()
	for _, p := range q.Plans() {
		applied := ""
		if len(p.Applied) > 0 {
			applied = " [" + strings.Join(p.Applied, ", ") + "]"
		}
		fmt.Printf("== plan: %s%s ==\n", p.Name, applied)
		fmt.Print(p.Explain())
		fmt.Println()
	}
}

func fail(err error) {
	fmt.Fprintf(os.Stderr, "nalexplain: %v\n", err)
	os.Exit(1)
}
