// Command nalvet is nalquery's project-specific static analysis suite:
// a go/analysis multichecker that mechanically enforces the engine's
// cross-file invariants (operator dispatch completeness, the panic
// discipline, the budget charge map, MustParse confinement, scan-loop
// cancellation polling). See docs/ANALYSIS.md.
//
// It runs two ways:
//
//	go vet -vettool=$(pwd)/bin/nalvet ./...   # as a vet tool
//	nalvet ./...                              # standalone (re-execs go vet)
//	nalvet -json ./...                        # machine-readable findings
//
// Standalone mode simply re-invokes "go vet -vettool=<self>" on the given
// package patterns, so both paths run the identical unitchecker protocol
// (including cross-package facts for opcomplete).
package main

import (
	"fmt"
	"os"
	"os/exec"
	"strings"

	"golang.org/x/tools/go/analysis/unitchecker"

	"nalquery/internal/analysis"
)

func main() {
	// Under "go vet -vettool" the go command invokes this binary with a
	// *.cfg argument (the unitchecker protocol) or protocol flags like
	// -V=full and -flags. Anything else is a human invocation: re-exec
	// through go vet so package loading, facts and caching all work.
	if standaloneInvocation(os.Args[1:]) {
		os.Exit(standalone(os.Args[1:]))
	}
	unitchecker.Main(analysis.All()...)
}

// standaloneInvocation reports whether the arguments look like a human
// running nalvet directly on package patterns, rather than the go
// command driving the unitchecker protocol.
func standaloneInvocation(args []string) bool {
	if len(args) == 0 {
		return false // let unitchecker print its usage
	}
	for _, a := range args {
		if strings.HasSuffix(a, ".cfg") || strings.HasPrefix(a, "-V") ||
			a == "-flags" || a == "--flags" {
			return false
		}
	}
	return true
}

func standalone(args []string) int {
	self, err := os.Executable()
	if err != nil {
		fmt.Fprintf(os.Stderr, "nalvet: cannot locate own binary: %v\n", err)
		return 2
	}
	cmd := exec.Command("go", append([]string{"vet", "-vettool=" + self}, args...)...)
	cmd.Stdout = os.Stdout
	cmd.Stderr = os.Stderr
	cmd.Stdin = os.Stdin
	if err := cmd.Run(); err != nil {
		if ee, ok := err.(*exec.ExitError); ok {
			return ee.ExitCode()
		}
		fmt.Fprintf(os.Stderr, "nalvet: %v\n", err)
		return 2
	}
	return 0
}
