// Command nalrun executes an XQuery against XML documents.
//
// Usage:
//
//	nalrun -doc bib.xml=path/to/bib.xml [-doc ...] -query query.xq [-plan grouping] [-stats]
//	nalrun -gen 1000 -q 'let $d := doc("bib.xml") ...'
//	nalrun -gen 1000 -var minyear=1993 -q 'declare variable $minyear external; ...'
//	nalrun -gen 5000 -timeout 2s -query heavy.xq
//
// Documents are registered under the URI given before '='; queries reference
// them via doc("uri"). With -gen N, the six synthetic use-case documents of
// the paper are generated at size N instead of being loaded from disk.
// External variables of the query ("declare variable $x external;") are
// bound with repeatable -var name=value flags; values parse as integer,
// then float, then string (surrounding quotes stripped).
package main

import (
	"bufio"
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"time"

	nalquery "nalquery"
	"nalquery/internal/cli"
	"nalquery/internal/store"
)

type docFlags []string

func (d *docFlags) String() string     { return strings.Join(*d, ",") }
func (d *docFlags) Set(v string) error { *d = append(*d, v); return nil }

func main() {
	var docs docFlags
	var vars docFlags
	var (
		queryFile = flag.String("query", "", "file containing the XQuery")
		queryText = flag.String("q", "", "inline XQuery text")
		plan      = flag.String("plan", "", "plan alternative to execute (default: most optimized; 'nested' for the baseline)")
		gen       = flag.Int("gen", 0, "generate the synthetic use-case documents at this size instead of loading files")
		apb       = flag.Int("authors", 2, "authors per book for -gen")
		stats     = flag.Bool("stats", false, "print execution statistics to stderr")
		timeout   = flag.Duration("timeout", 0, "cancel the run after this long (0 = no deadline)")
		maxMemory = flag.String("max-memory", "0", "abort the run past this memory budget (bytes, k/m/g suffix; 0 = unlimited)")
	)
	flag.Var(&docs, "doc", "uri=path document registration (repeatable)")
	flag.Var(&vars, "var", "name=value binding for an external variable (repeatable)")
	flag.Parse()

	text := *queryText
	if *queryFile != "" {
		b, err := os.ReadFile(*queryFile)
		if err != nil {
			fail(err)
		}
		text = string(b)
	}
	if text == "" {
		fmt.Fprintln(os.Stderr, "nalrun: no query given (use -query FILE or -q TEXT)")
		os.Exit(2)
	}

	eng := nalquery.NewEngine()
	if *gen > 0 {
		eng.LoadUseCaseDocuments(*gen, *apb)
		eng.LoadDBLPDocument(*gen)
	}
	for _, d := range docs {
		uri, path, ok := strings.Cut(d, "=")
		if !ok {
			fmt.Fprintf(os.Stderr, "nalrun: -doc needs uri=path, got %q\n", d)
			os.Exit(2)
		}
		if strings.HasSuffix(path, ".nalb") {
			doc, err := store.LoadFile(path)
			if err != nil {
				fail(err)
			}
			doc.URI = uri
			eng.LoadDocument(doc)
			continue
		}
		f, err := os.Open(path)
		if err != nil {
			fail(err)
		}
		if err := eng.LoadXML(uri, f); err != nil {
			fail(err)
		}
		f.Close()
	}

	// The prepared path: compile once, bind the -var values per run. A
	// query without external variables prepares identically.
	prep, err := eng.Prepare(text)
	if err != nil {
		var pe *nalquery.ParseError
		if errors.As(err, &pe) {
			if caret := cli.Caret(text, pe.Line, pe.Col); caret != "" {
				fmt.Fprintf(os.Stderr, "nalrun: %v\n%s\n", err, caret)
				os.Exit(1)
			}
		}
		fail(err)
	}
	opts := []nalquery.RunOption{nalquery.WithPlan(*plan)}
	if budget, err := cli.ParseBytes(*maxMemory); err != nil {
		fmt.Fprintf(os.Stderr, "nalrun: -max-memory: %v\n", err)
		os.Exit(2)
	} else if budget > 0 {
		opts = append(opts, nalquery.WithMaxMemory(budget))
	}
	for _, v := range vars {
		name, val, ok := strings.Cut(v, "=")
		if !ok {
			fmt.Fprintf(os.Stderr, "nalrun: -var needs name=value, got %q\n", v)
			os.Exit(2)
		}
		opts = append(opts, nalquery.Bind(strings.TrimPrefix(name, "$"), cli.ParseVarValue(val)))
	}
	// Stream the result to stdout instead of materializing it: memory stays
	// bounded by the plan's pipeline-breaker state, and Ctrl-C cancels the
	// run mid-stream through the context.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	var st nalquery.Stats
	t0 := time.Now()
	res, err := prep.Run(ctx, append(opts, nalquery.WithStats(&st))...)
	if err != nil {
		fail(err)
	}
	w := bufio.NewWriter(os.Stdout)
	if err := res.WriteXML(w); err != nil {
		fail(err)
	}
	fmt.Fprintln(w)
	if err := w.Flush(); err != nil {
		fail(err)
	}
	elapsed := time.Since(t0)
	if *stats {
		p := res.Plan()
		fmt.Fprintf(os.Stderr, "plan: %s  time: %v  doc-accesses: %d  nested-evals: %d  tuples: %d\n",
			p.Name, elapsed, st.DocAccesses, st.NestedEvals, st.Tuples)
	}
}

func fail(err error) {
	fmt.Fprintf(os.Stderr, "nalrun: %v\n", err)
	os.Exit(1)
}
