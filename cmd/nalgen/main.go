// Command nalgen generates the synthetic XML documents of the paper's
// evaluation (the ToXgene substitute) and writes them to a directory.
//
// Usage:
//
//	nalgen -size 1000 -authors 5 -out ./data
//	nalgen -preset 100k -dblp -out ./data    # size presets 10k / 100k / 1m
//	nalgen -size 10000 -binary -out ./data   # .nalb store files with stats
//	nalgen -size 10000 -zipf 1.5 -out ./data # zipfian-skewed key draws
//	nalgen -queries 50 -qseed 7 -out ./data  # plus a generated query mix
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"

	"nalquery/internal/dom"
	"nalquery/internal/qgen"
	"nalquery/internal/stats"
	"nalquery/internal/store"
	"nalquery/internal/xmlgen"
)

// presets maps the named measurement scales to document sizes.
var presets = map[string]int{"10k": 10_000, "100k": 100_000, "1m": 1_000_000}

func main() {
	var (
		size    = flag.Int("size", 1000, "number of books / bids")
		preset  = flag.String("preset", "", "size preset: 10k, 100k or 1m (overrides -size)")
		authors = flag.Int("authors", 2, "authors per book (2, 5 or 10 in the paper)")
		seed    = flag.Int64("seed", 42, "random seed")
		zipf    = flag.Float64("zipf", 0, "zipfian exponent (> 1) for skewed key draws; 0 = uniform")
		dblp    = flag.Bool("dblp", false, "also generate the DBLP-like document")
		binFmt  = flag.Bool("binary", false, "write the binary store format (.nalb, with measured statistics) instead of XML")
		queries = flag.Int("queries", 0, "also emit this many generated queries (queries.xq)")
		qseed   = flag.Int64("qseed", 1, "seed for the generated query mix")
		outDir  = flag.String("out", ".", "output directory")
	)
	flag.Parse()

	if *preset != "" {
		n, ok := presets[*preset]
		if !ok {
			fail(fmt.Errorf("unknown preset %q (want 10k, 100k or 1m)", *preset))
		}
		*size = n
	}
	cfg := xmlgen.DefaultConfig(*size)
	cfg.AuthorsPerBook = *authors
	cfg.Seed = *seed
	cfg.Zipf = *zipf

	docs := []*dom.Document{
		xmlgen.Bib(cfg), xmlgen.Reviews(cfg), xmlgen.Prices(cfg),
		xmlgen.Users(cfg), xmlgen.Items(cfg), xmlgen.Bids(cfg),
	}
	if *dblp {
		docs = append(docs, xmlgen.DBLP(xmlgen.DBLPConfig{Seed: *seed, Publications: *size}))
	}
	if err := os.MkdirAll(*outDir, 0o755); err != nil {
		fail(err)
	}
	for _, d := range docs {
		path := filepath.Join(*outDir, d.URI)
		if *binFmt {
			path += ".nalb"
			// NALB2: the analyzer's statistics ride along, so a load skips
			// the measuring walk.
			if err := store.SaveFileStats(path, d, stats.Analyze(d)); err != nil {
				fail(err)
			}
		} else {
			f, err := os.Create(path)
			if err != nil {
				fail(err)
			}
			if err := dom.WriteXML(f, d.RootElement()); err != nil {
				fail(err)
			}
			if err := f.Close(); err != nil {
				fail(err)
			}
		}
		info, _ := os.Stat(path)
		fmt.Printf("%-20s %8d bytes\n", filepath.Base(path), info.Size())
	}
	if *queries > 0 {
		if err := writeQueryMix(*outDir, *queries, *qseed); err != nil {
			fail(err)
		}
	}
}

// writeQueryMix emits a deterministic generated query mix against the
// use-case documents — a ready-made workload for nalrun/nalserved smoke
// runs or for replaying a fuzz seed outside the test harness. Queries are
// separated by a %%% line so shells and scripts can split them; each is
// prefixed with its index and generator seed for triage.
func writeQueryMix(outDir string, n int, seed int64) error {
	path := filepath.Join(outDir, "queries.xq")
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	g := qgen.New(qgen.Config{Seed: seed, Externals: true})
	for i := 0; i < n; i++ {
		q := g.Query()
		fmt.Fprintf(f, "(: query %d, qseed %d :)\n%s\n", i, seed, q.Text)
		if len(q.Binds) > 0 {
			names := make([]string, 0, len(q.Binds))
			for name := range q.Binds {
				names = append(names, name)
			}
			sort.Strings(names)
			fmt.Fprintf(f, "(: binds:")
			for _, name := range names {
				fmt.Fprintf(f, " $%s=%v", name, q.Binds[name])
			}
			fmt.Fprintf(f, " :)\n")
		}
		if i != n-1 {
			fmt.Fprintln(f, "%%%")
		}
	}
	if err := f.Close(); err != nil {
		return err
	}
	info, _ := os.Stat(path)
	fmt.Printf("%-20s %8d bytes (%d queries, qseed %d)\n", filepath.Base(path), info.Size(), n, seed)
	return nil
}

func fail(err error) {
	fmt.Fprintf(os.Stderr, "nalgen: %v\n", err)
	os.Exit(1)
}
