// Command nalgen generates the synthetic XML documents of the paper's
// evaluation (the ToXgene substitute) and writes them to a directory.
//
// Usage:
//
//	nalgen -size 1000 -authors 5 -out ./data
//	nalgen -size 10000 -dblp -out ./data
//	nalgen -size 10000 -binary -out ./data   # compact .nalb store files
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"nalquery/internal/dom"
	"nalquery/internal/store"
	"nalquery/internal/xmlgen"
)

func main() {
	var (
		size    = flag.Int("size", 1000, "number of books / bids")
		authors = flag.Int("authors", 2, "authors per book (2, 5 or 10 in the paper)")
		seed    = flag.Int64("seed", 42, "random seed")
		dblp    = flag.Bool("dblp", false, "also generate the DBLP-like document")
		binFmt  = flag.Bool("binary", false, "write the binary store format (.nalb) instead of XML")
		outDir  = flag.String("out", ".", "output directory")
	)
	flag.Parse()

	cfg := xmlgen.DefaultConfig(*size)
	cfg.AuthorsPerBook = *authors
	cfg.Seed = *seed

	docs := []*dom.Document{
		xmlgen.Bib(cfg), xmlgen.Reviews(cfg), xmlgen.Prices(cfg),
		xmlgen.Users(cfg), xmlgen.Items(cfg), xmlgen.Bids(cfg),
	}
	if *dblp {
		docs = append(docs, xmlgen.DBLP(xmlgen.DBLPConfig{Seed: *seed, Publications: *size}))
	}
	if err := os.MkdirAll(*outDir, 0o755); err != nil {
		fail(err)
	}
	for _, d := range docs {
		path := filepath.Join(*outDir, d.URI)
		if *binFmt {
			path += ".nalb"
			if err := store.SaveFile(path, d); err != nil {
				fail(err)
			}
		} else {
			f, err := os.Create(path)
			if err != nil {
				fail(err)
			}
			if err := dom.WriteXML(f, d.RootElement()); err != nil {
				fail(err)
			}
			if err := f.Close(); err != nil {
				fail(err)
			}
		}
		info, _ := os.Stat(path)
		fmt.Printf("%-20s %8d bytes\n", filepath.Base(path), info.Size())
	}
}

func fail(err error) {
	fmt.Fprintf(os.Stderr, "nalgen: %v\n", err)
	os.Exit(1)
}
