// Command nalbench regenerates the paper's evaluation tables (Sec. 5) and
// the document-size figure (Fig. 6).
//
// Usage:
//
//	nalbench                        # all experiments, default sizes, nested capped at 1000
//	nalbench -exp q1                # one experiment
//	nalbench -exp fig6              # the document-size figure
//	nalbench -exp ablations         # the ablation experiments
//	nalbench -sizes 100,1000        # override measurement points
//	nalbench -full                  # run the nested plans at every size
//	                                # (the nested plan needs minutes at 10000,
//	                                #  like the paper's own numbers)
//	nalbench -repeat 3              # average over repetitions
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"nalquery/internal/experiments"
)

func main() {
	var (
		expID  = flag.String("exp", "all", "experiment id (q1, q1dblp, q2..q6, fig6, ablations, all)")
		sizes  = flag.String("sizes", "", "comma-separated document sizes (default: the paper's 100,1000,10000)")
		full   = flag.Bool("full", false, "run the quadratic nested plans at every size")
		repeat = flag.Int("repeat", 1, "average over this many runs")
	)
	flag.Parse()

	opts := experiments.Options{Repeat: *repeat}
	if !*full {
		opts.MaxNestedSize = 1000
	}
	if *sizes != "" {
		for _, s := range strings.Split(*sizes, ",") {
			n, err := strconv.Atoi(strings.TrimSpace(s))
			if err != nil {
				fmt.Fprintf(os.Stderr, "nalbench: bad size %q\n", s)
				os.Exit(2)
			}
			opts.Sizes = append(opts.Sizes, n)
		}
	}

	switch *expID {
	case "fig6":
		experiments.PrintFig6(os.Stdout, experiments.Fig6(opts.Sizes, nil))
		return
	case "ablations":
		runAblations(opts)
		return
	case "all":
		experiments.PrintFig6(os.Stdout, experiments.Fig6(opts.Sizes, nil))
		for _, exp := range experiments.All() {
			runOne(exp, opts)
		}
		runAblations(opts)
		return
	default:
		exp, ok := experiments.Find(*expID)
		if !ok {
			fmt.Fprintf(os.Stderr, "nalbench: unknown experiment %q\n", *expID)
			os.Exit(2)
		}
		runOne(exp, opts)
	}
}

func runOne(exp experiments.Experiment, opts experiments.Options) {
	ms, err := experiments.Run(exp, opts)
	if err != nil {
		fmt.Fprintf(os.Stderr, "nalbench: %v\n", err)
		os.Exit(1)
	}
	experiments.PrintTable(os.Stdout, exp, ms)
}

func runAblations(opts experiments.Options) {
	sizes := opts.Sizes
	if len(sizes) == 0 {
		sizes = []int{100, 1000}
	}
	var all []experiments.AblationResult
	all = append(all, experiments.AblationHashVsScanGrouping(sizes)...)
	all = append(all, experiments.AblationGraceJoin(sizes)...)
	if rs, err := experiments.AblationIterVsMaterialized(sizes); err == nil {
		all = append(all, rs...)
	} else {
		fmt.Fprintf(os.Stderr, "nalbench: ablation iterator: %v\n", err)
	}
	if rs, err := experiments.AblationUnordered(sizes); err == nil {
		all = append(all, rs...)
	} else {
		fmt.Fprintf(os.Stderr, "nalbench: ablation unordered: %v\n", err)
	}
	if rs, err := experiments.AblationGroupXi(sizes); err == nil {
		all = append(all, rs...)
	} else {
		fmt.Fprintf(os.Stderr, "nalbench: ablation group-xi: %v\n", err)
	}
	if rs, err := experiments.AblationPushdown(sizes); err == nil {
		all = append(all, rs...)
	} else {
		fmt.Fprintf(os.Stderr, "nalbench: ablation pushdown: %v\n", err)
	}
	experiments.PrintAblations(os.Stdout, all)
}
