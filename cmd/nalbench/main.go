// Command nalbench regenerates the paper's evaluation tables (Sec. 5) and
// the document-size figure (Fig. 6).
//
// Usage:
//
//	nalbench                        # all experiments, default sizes, nested capped at 1000
//	nalbench -exp q1                # one experiment
//	nalbench -exp fig6              # the document-size figure
//	nalbench -exp ablations         # the ablation experiments
//	nalbench -sizes 100,1000        # override measurement points
//	nalbench -full                  # run the nested plans at every size
//	                                # (the nested plan needs minutes at 10000,
//	                                #  like the paper's own numbers)
//	nalbench -repeat 3              # average over repetitions
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"strconv"
	"strings"
	"testing"

	"nalquery/internal/experiments"
)

func main() {
	var (
		expID     = flag.String("exp", "all", "experiment id (q1, q1dblp, q2..q6, joins, unorderedq1, grouping, resultiter, prepared, server, resource, index, fig6, ablations, all)")
		sizes     = flag.String("sizes", "", "comma-separated document sizes (default: the paper's 100,1000,10000)")
		full      = flag.Bool("full", false, "run the quadratic nested plans at every size")
		repeat    = flag.Int("repeat", 1, "average over this many runs")
		jsonOut   = flag.Bool("json", false, "emit machine-readable per-benchmark results (ns/op, B/op, allocs/op)")
		jsonFile  = flag.String("jsonfile", "BENCH_results.json", "output path for -json")
		diffBase  = flag.String("diff", "", "compare -jsonfile against this baseline BENCH json (e.g. saved from git show HEAD:BENCH_results.json) instead of measuring")
		threshold = flag.Float64("threshold", 10, "allowed allocs/op regression percentage for -diff")
		bThresh   = flag.Float64("bthreshold", 15, "allowed B/op regression percentage for -diff")
	)
	flag.Parse()

	if *diffBase != "" {
		if err := runDiff(*diffBase, *jsonFile, *threshold, *bThresh); err != nil {
			fmt.Fprintf(os.Stderr, "nalbench: %v\n", err)
			os.Exit(1)
		}
		return
	}

	opts := experiments.Options{Repeat: *repeat}
	if !*full {
		opts.MaxNestedSize = 1000
	}
	if *sizes != "" {
		for _, s := range strings.Split(*sizes, ",") {
			n, err := strconv.Atoi(strings.TrimSpace(s))
			if err != nil {
				fmt.Fprintf(os.Stderr, "nalbench: bad size %q\n", s)
				os.Exit(2)
			}
			opts.Sizes = append(opts.Sizes, n)
		}
	}

	if *jsonOut {
		if err := runJSON(*jsonFile, *expID, opts); err != nil {
			fmt.Fprintf(os.Stderr, "nalbench: %v\n", err)
			os.Exit(1)
		}
		return
	}

	switch *expID {
	case "fig6":
		experiments.PrintFig6(os.Stdout, experiments.Fig6(opts.Sizes, nil))
		return
	case "ablations":
		runAblations(opts)
		return
	case "all":
		experiments.PrintFig6(os.Stdout, experiments.Fig6(opts.Sizes, nil))
		for _, exp := range experiments.All() {
			runOne(exp, opts)
		}
		runAblations(opts)
		return
	default:
		exp, ok := experiments.Find(*expID)
		if !ok {
			fmt.Fprintf(os.Stderr, "nalbench: unknown experiment %q\n", *expID)
			os.Exit(2)
		}
		runOne(exp, opts)
	}
}

// benchRecord is one machine-readable measurement of the -json mode: the
// perf trajectory file (BENCH_*.json) tracked across PRs.
type benchRecord struct {
	Experiment  string `json:"experiment"`
	Plan        string `json:"plan"`
	Size        int    `json:"size"`
	APB         int    `json:"apb,omitempty"`
	Runs        int    `json:"runs"`
	NsPerOp     int64  `json:"ns_per_op"`
	BytesPerOp  int64  `json:"b_per_op"`
	AllocsPerOp int64  `json:"allocs_per_op"`
}

// runJSON measures every plan of the selected experiments with
// testing.Benchmark and writes the records as JSON.
func runJSON(path, expID string, opts experiments.Options) error {
	exps := experiments.All()
	switch expID {
	case "all":
	case "joins", "unorderedq1", "grouping", "resultiter", "prepared", "server", "resource", "index":
		exps = nil // physical-operator / API-surface family only
	default:
		exp, ok := experiments.Find(expID)
		if !ok {
			// fig6 and the ablations have no per-plan Execute benchmarks.
			return fmt.Errorf("-json measures query plans only (q1, q1dblp, q2..q6, joins, unorderedq1, grouping, resultiter, prepared, server, resource, index, all); %q has no plan benchmarks", expID)
		}
		exps = []experiments.Experiment{exp}
	}
	sizes := opts.Sizes
	if len(sizes) == 0 {
		// Unlike the text tables, -json defaults to the two sizes that keep
		// a full sweep in CI range; say so instead of silently shrinking the
		// coverage the -sizes help text promises.
		sizes = []int{100, 1000}
		fmt.Fprintf(os.Stderr, "nalbench: -json default sizes %v (pass -sizes to override, e.g. -sizes 100,1000,10000)\n", sizes)
	}
	// testing.Benchmark self-calibrates its iteration count, and varying
	// experiments are measured at a single authors-per-book point.
	if opts.Repeat > 1 {
		fmt.Fprintln(os.Stderr, "nalbench: -json ignores -repeat (testing.Benchmark picks iteration counts)")
	}
	fmt.Fprintln(os.Stderr, "nalbench: -json measures authors-per-book=2 for varying experiments")
	var recs []benchRecord
	for _, exp := range exps {
		for _, size := range sizes {
			apb := 0
			if exp.VaryAuthors {
				apb = 2
			}
			eng := experiments.NewEngine(exp, size, apb)
			q, err := eng.Compile(exp.Query)
			if err != nil {
				return fmt.Errorf("%s: %w", exp.ID, err)
			}
			for _, p := range q.Plans() {
				if p.Name == "nested" && opts.MaxNestedSize > 0 && size > opts.MaxNestedSize {
					continue
				}
				plan := p.Name
				r := testing.Benchmark(func(b *testing.B) {
					b.ReportAllocs()
					for i := 0; i < b.N; i++ {
						if _, _, err := q.Execute(plan); err != nil {
							b.Fatal(err)
						}
					}
				})
				recs = append(recs, benchRecord{
					Experiment: exp.ID, Plan: plan, Size: size, APB: apb,
					Runs: r.N, NsPerOp: r.NsPerOp(),
					BytesPerOp: r.AllocedBytesPerOp(), AllocsPerOp: r.AllocsPerOp(),
				})
				fmt.Fprintf(os.Stderr, "%s/plan=%s/size=%d: %d ns/op %d B/op %d allocs/op\n",
					exp.ID, plan, size, r.NsPerOp(), r.AllocedBytesPerOp(), r.AllocsPerOp())
			}
		}
	}
	// The join/unordered family: the partitioned physical operators the
	// paper's measurements run on (Grace+sort, Claussen OPHJ) plus the
	// unordered plan alternatives of Q1.
	var targets []experiments.BenchTarget
	if expID == "all" || expID == "joins" {
		targets = append(targets, experiments.JoinBenchTargets(sizes)...)
	}
	if expID == "all" || expID == "unorderedq1" {
		ts, err := experiments.UnorderedBenchTargets(sizes)
		if err != nil {
			return fmt.Errorf("unorderedq1: %w", err)
		}
		targets = append(targets, ts...)
	}
	// The grouping family: Γ payload construction, the Γ→µ roundtrip and
	// the quantifier plan alternatives — the nested-data workloads the
	// RowSeq representation exists for.
	if expID == "all" || expID == "grouping" {
		ts, err := experiments.GroupingBenchTargets(sizes)
		if err != nil {
			return fmt.Errorf("grouping: %w", err)
		}
		targets = append(targets, ts...)
	}
	// The resultiter family: the public Run/Results consumption modes —
	// serialization, typed items, and the cancellation-guard overhead.
	if expID == "all" || expID == "resultiter" {
		ts, err := experiments.ResultIterBenchTargets(sizes)
		if err != nil {
			return fmt.Errorf("resultiter: %w", err)
		}
		targets = append(targets, ts...)
	}
	// The prepared family: compile-per-run vs prepare-once-run-many with
	// external-variable bindings vs the plan-cached convenience path.
	if expID == "all" || expID == "prepared" {
		ts, err := experiments.PreparedBenchTargets(sizes)
		if err != nil {
			return fmt.Errorf("prepared: %w", err)
		}
		targets = append(targets, ts...)
	}
	// The server family: the HTTP serving pipeline (handler + admission +
	// deadline plumbing + streaming) over ad-hoc and prepared requests.
	if expID == "all" || expID == "server" {
		ts, err := experiments.ServerBenchTargets(sizes)
		if err != nil {
			return fmt.Errorf("server: %w", err)
		}
		targets = append(targets, ts...)
	}
	// The resource family: the per-run budget accounting — the disabled
	// default (must stay within noise of the unbudgeted trajectory) vs a
	// generous live budget charging every materialization point.
	if expID == "all" || expID == "resource" {
		ts, err := experiments.ResourceBenchTargets(sizes)
		if err != nil {
			return fmt.Errorf("resource: %w", err)
		}
		targets = append(targets, ts...)
	}
	// The index family: the selective-scan workload the statistics/index
	// subsystem exists for — full scan vs value-index probe vs the measured
	// cost model's automatic choice.
	if expID == "all" || expID == "index" {
		ts, err := experiments.IndexBenchTargets(sizes)
		if err != nil {
			return fmt.Errorf("index: %w", err)
		}
		targets = append(targets, ts...)
	}
	for _, tg := range targets {
		run := tg.Run
		r := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if err := run(); err != nil {
					b.Fatal(err)
				}
			}
		})
		recs = append(recs, benchRecord{
			Experiment: tg.Experiment, Plan: tg.Plan, Size: tg.Size,
			Runs: r.N, NsPerOp: r.NsPerOp(),
			BytesPerOp: r.AllocedBytesPerOp(), AllocsPerOp: r.AllocsPerOp(),
		})
		fmt.Fprintf(os.Stderr, "%s/plan=%s/size=%d: %d ns/op %d B/op %d allocs/op\n",
			tg.Experiment, tg.Plan, tg.Size, r.NsPerOp(), r.AllocedBytesPerOp(), r.AllocsPerOp())
	}
	data, err := json.MarshalIndent(recs, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	return os.WriteFile(path, data, 0o644)
}

// runDiff compares a baseline BENCH json (typically the committed
// trajectory, saved from git show) against the current one and fails when
// allocs/op or B/op regress beyond their threshold percentages on any
// measured plan. ns/op changes are reported but not gated: wall-clock is
// too noisy across machines, the allocation profile is not.
func runDiff(basePath, newPath string, threshold, bThreshold float64) error {
	load := func(path string) ([]benchRecord, error) {
		data, err := os.ReadFile(path)
		if err != nil {
			return nil, err
		}
		var recs []benchRecord
		if err := json.Unmarshal(data, &recs); err != nil {
			return nil, fmt.Errorf("%s: %w", path, err)
		}
		return recs, nil
	}
	base, err := load(basePath)
	if err != nil {
		return err
	}
	cur, err := load(newPath)
	if err != nil {
		return err
	}
	key := func(r benchRecord) string {
		return fmt.Sprintf("%s/%s/size=%d/apb=%d", r.Experiment, r.Plan, r.Size, r.APB)
	}
	baseBy := make(map[string]benchRecord, len(base))
	for _, r := range base {
		baseBy[key(r)] = r
	}
	// pct reports the percentage change; a regression from an
	// allocation-free baseline has no finite percentage and is always
	// beyond threshold.
	pct := func(old, new int64) float64 {
		if old == 0 {
			if new > 0 {
				return math.Inf(1)
			}
			return 0
		}
		return 100 * float64(new-old) / float64(old)
	}
	var failures []string
	fmt.Printf("%-52s %12s %12s %12s\n", "benchmark", "Δallocs/op", "ΔB/op", "Δns/op")
	for _, r := range cur {
		b, ok := baseBy[key(r)]
		if !ok {
			fmt.Printf("%-52s %12s %12s %12s\n", key(r), "new", "new", "new")
			continue
		}
		delete(baseBy, key(r))
		da := pct(b.AllocsPerOp, r.AllocsPerOp)
		db := pct(b.BytesPerOp, r.BytesPerOp)
		dn := pct(b.NsPerOp, r.NsPerOp)
		fmt.Printf("%-52s %+11.1f%% %+11.1f%% %+11.1f%%\n", key(r), da, db, dn)
		if da > threshold {
			failures = append(failures,
				fmt.Sprintf("%s: allocs/op %d → %d (%+.1f%% > %.1f%%)",
					key(r), b.AllocsPerOp, r.AllocsPerOp, da, threshold))
		}
		if db > bThreshold {
			failures = append(failures,
				fmt.Sprintf("%s: B/op %d → %d (%+.1f%% > %.1f%%)",
					key(r), b.BytesPerOp, r.BytesPerOp, db, bThreshold))
		}
	}
	// A benchmark that vanished from the trajectory is a failure too: a
	// truncated results file (e.g. a partial -exp regeneration) must not
	// pass for a full one.
	for k := range baseBy {
		fmt.Printf("%-52s %12s %12s %12s\n", k, "gone", "gone", "gone")
		failures = append(failures, fmt.Sprintf("%s: missing from %s", k, newPath))
	}
	if len(failures) > 0 {
		return fmt.Errorf("benchmark trajectory regressions (threshold %.1f%%):\n  %s",
			threshold, strings.Join(failures, "\n  "))
	}
	return nil
}

func runOne(exp experiments.Experiment, opts experiments.Options) {
	ms, err := experiments.Run(exp, opts)
	if err != nil {
		fmt.Fprintf(os.Stderr, "nalbench: %v\n", err)
		os.Exit(1)
	}
	experiments.PrintTable(os.Stdout, exp, ms)
}

func runAblations(opts experiments.Options) {
	sizes := opts.Sizes
	if len(sizes) == 0 {
		sizes = []int{100, 1000}
	}
	var all []experiments.AblationResult
	all = append(all, experiments.AblationHashVsScanGrouping(sizes)...)
	all = append(all, experiments.AblationGraceJoin(sizes)...)
	if rs, err := experiments.AblationIterVsMaterialized(sizes); err == nil {
		all = append(all, rs...)
	} else {
		fmt.Fprintf(os.Stderr, "nalbench: ablation iterator: %v\n", err)
	}
	if rs, err := experiments.AblationUnordered(sizes); err == nil {
		all = append(all, rs...)
	} else {
		fmt.Fprintf(os.Stderr, "nalbench: ablation unordered: %v\n", err)
	}
	if rs, err := experiments.AblationGroupXi(sizes); err == nil {
		all = append(all, rs...)
	} else {
		fmt.Fprintf(os.Stderr, "nalbench: ablation group-xi: %v\n", err)
	}
	if rs, err := experiments.AblationPushdown(sizes); err == nil {
		all = append(all, rs...)
	} else {
		fmt.Fprintf(os.Stderr, "nalbench: ablation pushdown: %v\n", err)
	}
	experiments.PrintAblations(os.Stdout, all)
}
