package nalquery

import (
	"strings"
	"testing"
)

// tinyBib is a hand-checkable bibliography.
const tinyBib = `<bib>
<book year="1994"><title>TCP/IP Illustrated</title>
  <author><last>Stevens</last><first>W.</first></author>
  <publisher>Addison-Wesley</publisher><price>65.95</price></book>
<book year="1992"><title>Advanced Unix</title>
  <author><last>Stevens</last><first>W.</first></author>
  <publisher>Addison-Wesley</publisher><price>65.95</price></book>
<book year="2000"><title>Data on the Web</title>
  <author><last>Abiteboul</last><first>S.</first></author>
  <author><last>Buneman</last><first>P.</first></author>
  <author><last>Suciu</last><first>D.</first></author>
  <publisher>Morgan Kaufmann</publisher><price>39.95</price></book>
<book year="1999"><title>Economics of Technology</title>
  <editor><last>Gerbarg</last><first>D.</first></editor>
  <publisher>Kluwer</publisher><price>129.95</price></book>
</bib>`

const tinyReviews = `<reviews>
<entry><title>Data on the Web</title><price>34.95</price><review>good</review></entry>
<entry><title>TCP/IP Illustrated</title><price>65.95</price><review>fine</review></entry>
<entry><title>Unknown Book</title><price>9.95</price><review>meh</review></entry>
</reviews>`

const tinyPrices = `<prices>
<book><title>TCP/IP Illustrated</title><source>a.example.com</source><price>65.95</price></book>
<book><title>TCP/IP Illustrated</title><source>b.example.com</source><price>63.50</price></book>
<book><title>Advanced Unix</title><source>a.example.com</source><price>65.95</price></book>
<book><title>Data on the Web</title><source>b.example.com</source><price>34.95</price></book>
<book><title>Data on the Web</title><source>a.example.com</source><price>39.95</price></book>
</prices>`

const tinyBids = `<bids>
<bidtuple><userid>U01</userid><itemno>1001</itemno><bid>35</bid><biddate>1999-01-01</biddate></bidtuple>
<bidtuple><userid>U02</userid><itemno>1002</itemno><bid>40</bid><biddate>1999-01-02</biddate></bidtuple>
<bidtuple><userid>U01</userid><itemno>1001</itemno><bid>45</bid><biddate>1999-01-03</biddate></bidtuple>
<bidtuple><userid>U03</userid><itemno>1001</itemno><bid>55</bid><biddate>1999-01-04</biddate></bidtuple>
<bidtuple><userid>U02</userid><itemno>1003</itemno><bid>60</bid><biddate>1999-01-05</biddate></bidtuple>
<bidtuple><userid>U03</userid><itemno>1002</itemno><bid>65</bid><biddate>1999-01-06</biddate></bidtuple>
<bidtuple><userid>U01</userid><itemno>1002</itemno><bid>70</bid><biddate>1999-01-07</biddate></bidtuple>
</bids>`

func tinyEngine(t *testing.T) *Engine {
	t.Helper()
	e := NewEngine()
	for uri, s := range map[string]string{
		"bib.xml": tinyBib, "reviews.xml": tinyReviews,
		"prices.xml": tinyPrices, "bids.xml": tinyBids,
	} {
		if err := e.LoadXMLString(uri, s); err != nil {
			t.Fatalf("load %s: %v", uri, err)
		}
	}
	return e
}

// planNames extracts the alternative names of a compiled query.
func planNames(q *Query) []string {
	var out []string
	for _, p := range q.Plans() {
		out = append(out, p.Name)
	}
	return out
}

// runAll executes every plan alternative and checks that the results are
// byte-identical, returning the common result.
func runAll(t *testing.T, e *Engine, query string) (string, *Query) {
	t.Helper()
	q, err := e.Compile(query)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	var ref string
	for i, p := range q.Plans() {
		out, _, err := q.Execute(p.Name)
		if err != nil {
			t.Fatalf("execute %s: %v", p.Name, err)
		}
		if i == 0 {
			ref = out
			continue
		}
		if out != ref {
			t.Errorf("plan %q result differs from nested plan\nnested: %s\n%s: %s\nplan:\n%s",
				p.Name, ref, p.Name, out, p.Explain())
		}
	}
	return ref, q
}

func TestQ1GroupingPlansAndResult(t *testing.T) {
	e := tinyEngine(t)
	out, q := runAll(t, e, QueryQ1Grouping)

	names := strings.Join(planNames(q), ",")
	for _, want := range []string{"nested", "outer join", "grouping", "group Ξ"} {
		if !strings.Contains(names, want) {
			t.Errorf("missing plan alternative %q (have %s)", want, names)
		}
	}
	// Stevens authored two books; titles must appear in document order.
	if !strings.Contains(out, "<author><name>StevensW.</name><title>TCP/IP Illustrated</title><title>Advanced Unix</title></author>") {
		t.Errorf("Q1 result missing grouped Stevens entry:\n%s", out)
	}
	if !strings.Contains(out, "<name>SuciuD.</name><title>Data on the Web</title>") {
		t.Errorf("Q1 result missing Suciu entry:\n%s", out)
	}
}

func TestQ2AggregationPlansAndResult(t *testing.T) {
	e := tinyEngine(t)
	out, q := runAll(t, e, QueryQ2Aggregation)
	names := strings.Join(planNames(q), ",")
	if !strings.Contains(names, "grouping") {
		t.Errorf("Q2 should have a grouping plan (Eqv. 3), have %s", names)
	}
	if !strings.Contains(out, `<minprice title="TCP/IP Illustrated"><price>63.5</price></minprice>`) {
		t.Errorf("Q2 wrong minprice for TCP/IP Illustrated:\n%s", out)
	}
	if !strings.Contains(out, `<minprice title="Data on the Web"><price>34.95</price></minprice>`) {
		t.Errorf("Q2 wrong minprice for Data on the Web:\n%s", out)
	}
}

func TestQ3ExistentialPlansAndResult(t *testing.T) {
	e := tinyEngine(t)
	out, q := runAll(t, e, QueryQ3Existential)
	names := strings.Join(planNames(q), ",")
	if !strings.Contains(names, "semijoin") {
		t.Errorf("Q3 should have a semijoin plan (Eqv. 6), have %s", names)
	}
	want := "<book-with-review><title>TCP/IP Illustrated</title></book-with-review>" +
		"<book-with-review><title>Data on the Web</title></book-with-review>"
	if out != want {
		t.Errorf("Q3 result mismatch:\ngot:  %s\nwant: %s", out, want)
	}
}

func TestQ4ExistsPlansAndResult(t *testing.T) {
	e := tinyEngine(t)
	out, q := runAll(t, e, QueryQ4Exists)
	names := strings.Join(planNames(q), ",")
	if !strings.Contains(names, "semijoin") {
		t.Errorf("Q4 should have a semijoin plan, have %s", names)
	}
	if !strings.Contains(names, "grouping") {
		t.Errorf("Q4 should have a single-scan grouping plan, have %s", names)
	}
	// Only "Data on the Web" has Suciu as co-author; all three of its
	// authors are returned, in document order.
	want := "<book><author><last>Abiteboul</last><first>S.</first></author></book>" +
		"<book><author><last>Buneman</last><first>P.</first></author></book>" +
		"<book><author><last>Suciu</last><first>D.</first></author></book>"
	if out != want {
		t.Errorf("Q4 result mismatch:\ngot:  %s\nwant: %s", out, want)
	}
}

func TestQ5UniversalPlansAndResult(t *testing.T) {
	e := tinyEngine(t)
	out, q := runAll(t, e, QueryQ5Universal)
	names := strings.Join(planNames(q), ",")
	if !strings.Contains(names, "anti-semijoin") {
		t.Errorf("Q5 should have an anti-semijoin plan (Eqv. 7), have %s", names)
	}
	if !strings.Contains(names, "grouping") {
		t.Errorf("Q5 should have a count-grouping plan (Eqv. 9), have %s", names)
	}
	// Stevens has a 1992 book — excluded. The Web authors (2000) qualify.
	if strings.Contains(out, "Stevens") {
		t.Errorf("Q5 must exclude Stevens (book from 1992):\n%s", out)
	}
	for _, a := range []string{"AbiteboulS.", "BunemanP.", "SuciuD."} {
		if !strings.Contains(out, "<new-author>"+a+"</new-author>") {
			t.Errorf("Q5 missing author %s:\n%s", a, out)
		}
	}
}

func TestQ6HavingCountPlansAndResult(t *testing.T) {
	e := tinyEngine(t)
	out, q := runAll(t, e, QueryQ6HavingCount)
	names := strings.Join(planNames(q), ",")
	if !strings.Contains(names, "grouping") {
		t.Errorf("Q6 should have a grouping plan (Eqv. 3), have %s", names)
	}
	// Item 1001 has 3 bids, 1002 has 3, 1003 has 1.
	want := "<popular-item>1001</popular-item><popular-item>1002</popular-item>"
	if out != want {
		t.Errorf("Q6 result mismatch:\ngot:  %s\nwant: %s", out, want)
	}
}

func TestQ1DBLPOnlyOuterJoin(t *testing.T) {
	e := NewEngine()
	e.LoadDBLPDocument(60)
	out, q := runAll(t, e, QueryQ1DBLP)
	for _, p := range q.Plans() {
		if p.Name == "grouping" || p.Name == "group Ξ" {
			t.Errorf("Eqv. 5 must be inadmissible on DBLP (authors without books); got plan %q", p.Name)
		}
	}
	if !strings.Contains(strings.Join(planNames(q), ","), "outer join") {
		t.Errorf("DBLP query should still have the outer-join plan, have %v", planNames(q))
	}
	// Authors without a book must still appear, with an empty title list.
	if !strings.Contains(out, "</name></author>") {
		t.Errorf("expected at least one author without books in DBLP result")
	}
}

func TestStatsShowScanSavings(t *testing.T) {
	e := NewEngine()
	e.LoadUseCaseDocuments(50, 2)
	q, err := e.Compile(QueryQ2Aggregation)
	if err != nil {
		t.Fatal(err)
	}
	_, nestedStats, err := q.Execute("nested")
	if err != nil {
		t.Fatal(err)
	}
	_, groupStats, err := q.Execute("grouping")
	if err != nil {
		t.Fatal(err)
	}
	if nestedStats.DocAccesses <= groupStats.DocAccesses {
		t.Errorf("nested plan should access the document more often: nested=%d grouping=%d",
			nestedStats.DocAccesses, groupStats.DocAccesses)
	}
	if groupStats.NestedEvals != 0 {
		t.Errorf("grouping plan must not evaluate nested expressions, got %d", groupStats.NestedEvals)
	}
}
