module nalquery

go 1.22
