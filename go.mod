module nalquery

go 1.23
