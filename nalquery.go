// Package nalquery is an order-preserving XQuery processing library
// reproducing May, Helmer and Moerkotte, "Nested Queries and Quantifiers in
// an Ordered Context" (ICDE 2004).
//
// The library parses a subset of XQuery (FLWR expressions, existential and
// universal quantifiers, aggregates, element constructors), translates it
// into NAL — an order-preserving nested algebra — and unnests nested
// algebraic expressions using the paper's equivalences (Fig. 4, Eqvs. 1–9).
// Every query compiles into a set of plan alternatives (nested, outer join,
// grouping, group Ξ, semijoin, anti-semijoin, …) that all produce identical,
// order-correct results but differ — often by orders of magnitude — in cost.
//
// # Quick start
//
//	eng := nalquery.NewEngine()
//	eng.LoadXMLString("bib.xml", `<bib>...</bib>`)
//	q, _ := eng.Compile(`
//	    let $d1 := doc("bib.xml")
//	    for $t1 in $d1//book/title
//	    return <t>{ $t1 }</t>`)
//	res, _ := q.Run(ctx)          // most optimized plan
//	defer res.Close()
//	for item := range res.Seq() { // typed, streaming result items
//	    ...
//	}
//
// A compiled Query is immutable and safe for any number of concurrent Run
// sessions; each Results is a pull iterator over typed items that can be
// cancelled through its context, closed early, or serialized with
// Results.WriteXML. See docs/API.md for the full surface and the migration
// table from the deprecated Execute family.
package nalquery

import (
	"context"
	"errors"
	"io"
	"sort"
	"strings"

	"nalquery/internal/algebra"
	"nalquery/internal/core"
	"nalquery/internal/cost"
	"nalquery/internal/dom"
	"nalquery/internal/normalize"
	"nalquery/internal/schema"
	"nalquery/internal/store"
	"nalquery/internal/translate"
	"nalquery/internal/xquery"
)

// Engine holds documents and schema facts and compiles queries. Loading and
// compiling are not synchronized — load documents first, then compile;
// compiled queries snapshot the document set and may Run concurrently while
// the engine keeps loading for future compilations.
type Engine struct {
	docs map[string]*dom.Document
	cat  *schema.Catalog
}

// NewEngine creates an Engine pre-loaded with the DTD facts of the paper's
// use-case documents (Fig. 5). Additional facts can be registered through
// Catalog().
func NewEngine() *Engine {
	return &Engine{docs: map[string]*dom.Document{}, cat: schema.UseCases()}
}

// LoadXML parses and registers a document under the given URI.
func (e *Engine) LoadXML(uri string, r io.Reader) error {
	d, err := dom.Parse(r, uri)
	if err != nil {
		return err
	}
	e.docs[uri] = d
	return nil
}

// LoadXMLString parses and registers a document from a string.
func (e *Engine) LoadXMLString(uri, s string) error {
	return e.LoadXML(uri, strings.NewReader(s))
}

// LoadDocument registers an already-built document (e.g. from the synthetic
// generators of internal/xmlgen).
func (e *Engine) LoadDocument(d *dom.Document) {
	e.docs[d.URI] = d
}

// LoadStoreFile loads a document from a binary store file (the .nalb format
// of internal/store) and registers it under the given URI.
func (e *Engine) LoadStoreFile(uri, path string) error {
	d, err := store.LoadFile(path)
	if err != nil {
		return err
	}
	d.URI = uri
	e.docs[uri] = d
	return nil
}

// Document returns a registered document, or nil.
func (e *Engine) Document(uri string) *dom.Document { return e.docs[uri] }

// DocumentURIs lists the URIs of the registered documents, sorted.
func (e *Engine) DocumentURIs() []string {
	uris := make([]string, 0, len(e.docs))
	for uri := range e.docs {
		uris = append(uris, uri)
	}
	sort.Strings(uris)
	return uris
}

// Catalog exposes the schema-fact catalog used to verify the side conditions
// of the condition-bearing equivalences (3, 5, 8, 9).
func (e *Engine) Catalog() *schema.Catalog { return e.cat }

// Stats reports execution counters of one plan run.
type Stats struct {
	// DocAccesses counts doc()/document() evaluations — each is a fresh
	// traversal of a stored document (the paper's "scans").
	DocAccesses int64
	// NestedEvals counts evaluations of nested algebraic expressions
	// (nested-loop iterations).
	NestedEvals int64
	// Tuples counts tuples produced by scan operators.
	Tuples int64
	// MapTuples counts map tuples materialized on the slot engine's data
	// path (group payloads converted for uncompiled sequence functions,
	// conversion-shim traffic). Fully native execution reports 0.
	MapTuples int64
}

// Plan is one compiled plan alternative.
type Plan struct {
	// Name is the paper's row label: "nested", "outer join", "grouping",
	// "group Ξ", "semijoin", "anti-semijoin", "binary grouping".
	Name string
	// Applied lists the unnesting equivalences used to derive the plan.
	Applied []string
	// EstimatedCost is the cost model's estimate over the loaded documents'
	// statistics. Lower is better; nested plans carry the quadratic term.
	EstimatedCost float64

	op algebra.Op
}

// Explain renders the plan's operator tree.
func (p Plan) Explain() string { return algebra.Explain(p.op) }

// ExplainDot renders the plan's operator tree in Graphviz dot syntax;
// nested algebraic expressions appear as dashed edges.
func (p Plan) ExplainDot() string { return algebra.ExplainDot(p.op) }

// Query is a compiled query with its plan alternatives. A Query is
// immutable: it carries a snapshot of the engine's documents and catalog
// taken at Compile, so any number of Run sessions may execute concurrently
// (per-run state lives in each Results).
type Query struct {
	// Text is the original query.
	Text string
	// Normalized is the normalized source form (Sec. 3).
	Normalized string
	// OrderIrrelevant reports that the query was wrapped in XQuery's
	// unordered() function (Sec. 1): the result may be produced in any
	// order, and plan alternatives using the unordered operator family are
	// offered in addition to the order-preserving ones.
	OrderIrrelevant bool

	docs  map[string]*dom.Document // immutable snapshot taken at Compile
	model *cost.Model
	plans []Plan
}

func statsOf(ctx *algebra.Ctx) Stats {
	return Stats{
		DocAccesses: ctx.Stats.DocAccesses,
		NestedEvals: ctx.Stats.NestedEvals,
		Tuples:      ctx.Stats.Tuples,
		MapTuples:   ctx.Stats.MapTuples,
	}
}

// CompileOption configures one Compile call.
type CompileOption func(*compileConfig)

type compileConfig struct {
	cat   *schema.Catalog
	model *cost.Model
}

// WithCatalog compiles against the given schema-fact catalog instead of the
// engine's, e.g. to verify the condition-bearing equivalences under
// alternative DTD facts without mutating the shared engine.
func WithCatalog(cat *schema.Catalog) CompileOption {
	return func(c *compileConfig) { c.cat = cat }
}

// WithCostModel supplies a pre-built statistics model instead of gathering
// element counts from the engine's documents — e.g. to reuse one model
// across many Compile calls over the same corpus, or to rank plans under
// synthetic statistics.
func WithCostModel(m *cost.Model) CompileOption {
	return func(c *compileConfig) { c.model = m }
}

// Compile parses, normalizes, translates and unnests a query, producing all
// plan alternatives. The returned Query snapshots the engine's current
// document set and catalog; later Load calls do not affect it. Syntax
// errors are *ParseError values carrying the source line.
func (e *Engine) Compile(text string, opts ...CompileOption) (*Query, error) {
	var cfg compileConfig
	for _, o := range opts {
		o(&cfg)
	}
	cat := cfg.cat
	if cat == nil {
		cat = e.cat
	}
	ast, err := xquery.ParseQuery(text)
	if err != nil {
		var pe *xquery.ParseError
		if errors.As(err, &pe) {
			return nil, &ParseError{Line: pe.Line, Msg: pe.Msg}
		}
		return nil, err
	}
	// A top-level unordered(FLWR) wrapper releases the order requirement
	// (Sec. 1). The wrapper is stripped before normalization; the flag
	// admits the unordered plan family below.
	orderIrrelevant := false
	if c, ok := ast.(xquery.Call); ok && c.Fn == "unordered" && len(c.Args) == 1 {
		if f, isFLWR := c.Args[0].(xquery.FLWR); isFLWR {
			ast = f
			orderIrrelevant = true
		}
	}
	norm := normalize.NormalizeWithCatalog(ast, cat)
	res, err := translate.Translate(norm, cat)
	if err != nil {
		return nil, err
	}
	rw := core.NewRewriter(res, cat)
	alts := rw.Alternatives(res.Plan)
	// The immutable per-query snapshot: concurrent Run sessions read these
	// maps; the engine may keep loading documents for future compilations.
	docs := make(map[string]*dom.Document, len(e.docs))
	for uri, d := range e.docs {
		docs[uri] = d
	}
	model := cfg.model
	if model == nil {
		model = cost.NewModel(docs)
	}
	q := &Query{Text: text, Normalized: norm.String(), docs: docs, model: model, OrderIrrelevant: orderIrrelevant}
	for _, a := range alts {
		est := model.Plan(a.Op)
		q.plans = append(q.plans, Plan{
			Name: a.Name, Applied: a.Applied, EstimatedCost: est.Cost, op: a.Op,
		})
	}
	if orderIrrelevant {
		// Offer the unordered counterpart of every unnested alternative.
		for _, a := range alts {
			if a.Name == "nested" {
				continue
			}
			u, changed := core.ToUnordered(a.Op)
			if !changed || !core.Validate(u) {
				continue
			}
			est := model.Plan(u)
			q.plans = append(q.plans, Plan{
				Name:          "unordered " + a.Name,
				Applied:       append(append([]string{}, a.Applied...), "unordered-family"),
				EstimatedCost: est.Cost,
				op:            u,
			})
		}
	}
	return q, nil
}

// Plans returns the plan alternatives, from the nested baseline to the most
// optimized plan.
func (q *Query) Plans() []Plan { return q.plans }

// Plan returns the alternative with the given name; the empty name selects
// the plan with the lowest estimated cost. A query without alternatives
// returns ErrNoPlan; an unmatched name returns an *UnknownPlanError
// (errors.Is-matchable against ErrUnknownPlan).
func (q *Query) Plan(name string) (Plan, error) {
	if len(q.plans) == 0 {
		return Plan{}, ErrNoPlan
	}
	if name == "" {
		best := q.plans[0]
		for _, p := range q.plans[1:] {
			if p.EstimatedCost < best.EstimatedCost {
				best = p
			}
		}
		return best, nil
	}
	for _, p := range q.plans {
		if p.Name == name {
			return p, nil
		}
	}
	names := make([]string, len(q.plans))
	for i, p := range q.plans {
		names[i] = p.Name
	}
	return Plan{}, &UnknownPlanError{Name: name, Have: names}
}

// Execute runs the named plan ("" = most optimized) and returns the
// constructed result string plus execution statistics.
//
// Deprecated: Execute is a compatibility wrapper over Run — prefer
// q.Run(ctx, WithPlan(name)) and consume the Results (typed items via
// Next/Seq, or serialized via WriteXML), which adds streaming, concurrency
// and cancellation.
func (q *Query) Execute(name string) (string, Stats, error) {
	var st Stats
	res, err := q.run(context.Background(), runConfig{plan: name, stats: &st})
	if err != nil {
		return "", Stats{}, err
	}
	var sb strings.Builder
	if err := res.WriteXML(&sb); err != nil {
		return "", Stats{}, err
	}
	return sb.String(), st, nil
}

// ExecuteReference runs the named plan ("" = most optimized) on the
// definitional materializing evaluator over map-based tuples — the
// executable semantics the slot engine is differential-tested against.
//
// Deprecated: use q.Run(ctx, WithReferenceEngine(), WithPlan(name)).
func (q *Query) ExecuteReference(name string) (string, Stats, error) {
	var st Stats
	res, err := q.run(context.Background(), runConfig{plan: name, reference: true, stats: &st})
	if err != nil {
		return "", Stats{}, err
	}
	var sb strings.Builder
	if err := res.WriteXML(&sb); err != nil {
		return "", Stats{}, err
	}
	return sb.String(), st, nil
}

// ExecuteStreaming runs the named plan ("" = lowest estimated cost) through
// the pull-based iterator engine (open-next-close, the physical execution
// model of the engine the paper evaluates on).
//
// Deprecated: identical to Execute; prefer Run.
func (q *Query) ExecuteStreaming(name string) (string, Stats, error) {
	return q.Execute(name)
}

// ExecuteTo runs the named plan ("" = most optimized) through the pull-based
// iterator engine, streaming the constructed result into w instead of
// building it in memory. Combined with the streaming Ξ operators, memory
// stays bounded by the plan's pipeline-breaker state, not the output size.
//
// Deprecated: use q.Run(ctx, WithPlan(name)) followed by
// Results.WriteXML(w), which adds cancellation.
func (q *Query) ExecuteTo(w io.Writer, name string) (Stats, error) {
	var st Stats
	res, err := q.run(context.Background(), runConfig{plan: name, stats: &st})
	if err != nil {
		return Stats{}, err
	}
	if err := res.WriteXML(w); err != nil {
		return Stats{}, err
	}
	return st, nil
}

// Query is the one-shot convenience API: compile and execute with the most
// optimized plan.
func (e *Engine) Query(text string) (string, error) {
	q, err := e.Compile(text)
	if err != nil {
		return "", err
	}
	out, _, err := q.Execute("")
	return out, err
}
