// Package nalquery is an order-preserving XQuery processing library
// reproducing May, Helmer and Moerkotte, "Nested Queries and Quantifiers in
// an Ordered Context" (ICDE 2004).
//
// The library parses a subset of XQuery (FLWR expressions, existential and
// universal quantifiers, aggregates, element constructors), translates it
// into NAL — an order-preserving nested algebra — and unnests nested
// algebraic expressions using the paper's equivalences (Fig. 4, Eqvs. 1–9).
// Every query compiles into a set of plan alternatives (nested, outer join,
// grouping, group Ξ, semijoin, anti-semijoin, …) that all produce identical,
// order-correct results but differ — often by orders of magnitude — in cost.
//
// # Quick start
//
//	eng := nalquery.NewEngine()
//	eng.LoadXMLString("bib.xml", `<bib>...</bib>`)
//	q, _ := eng.Compile(`
//	    let $d1 := doc("bib.xml")
//	    for $t1 in $d1//book/title
//	    return <t>{ $t1 }</t>`)
//	res, _ := q.Run(ctx)          // most optimized plan
//	defer res.Close()
//	for item := range res.Seq() { // typed, streaming result items
//	    ...
//	}
//
// A compiled Query is immutable and safe for any number of concurrent Run
// sessions; each Results is a pull iterator over typed items that can be
// cancelled through its context, closed early, or serialized with
// Results.WriteXML.
//
// # Prepared queries
//
// A serving loop compiles once and runs many times: declare external
// variables in the query prolog, Prepare it, and Bind values per run —
// zero recompilation, identical results to compiling the literal text:
//
//	p, _ := eng.Prepare(`
//	    declare variable $minyear external;
//	    let $d1 := doc("bib.xml")
//	    for $b1 in $d1//book
//	    where $b1/@year > $minyear
//	    return $b1/title`)
//	res, _ := p.Run(ctx, nalquery.Bind("minyear", 1993))
//
// The engine core is race-safe: documents live behind copy-on-write
// snapshots, so LoadXML may race Prepare, Query and any number of Runs.
// The convenience paths Engine.Query and Engine.RunText go through a
// bounded LRU plan cache keyed by query text and catalog generation, so
// repeated traffic is compile-once there too. See docs/API.md for the full
// surface and the migration table from the deprecated Execute family.
package nalquery

import (
	"context"
	"errors"
	"io"
	"runtime/debug"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"nalquery/internal/algebra"
	"nalquery/internal/core"
	"nalquery/internal/cost"
	"nalquery/internal/dom"
	"nalquery/internal/index"
	"nalquery/internal/normalize"
	"nalquery/internal/schema"
	"nalquery/internal/stats"
	"nalquery/internal/store"
	"nalquery/internal/translate"
	"nalquery/internal/xquery"
)

// engineState is one immutable snapshot of an Engine's documents and schema
// catalog. Writers never mutate a published state: they clone, apply, and
// swap the pointer (copy-on-write), so readers — Compile, Prepare, the plan
// cache, concurrent Runs — work from a consistent snapshot without locks.
type engineState struct {
	docs map[string]*dom.Document
	// aux is the per-document analyzer/index sidecar (measured statistics
	// plus structural and value indexes), keyed like docs and reconciled on
	// every state transition: computed when a document is loaded or
	// replaced, carried over unchanged otherwise. Like docs it is immutable
	// after publication.
	aux map[string]*index.DocIndexes
	cat *schema.Catalog
	// gen counts state transitions; it keys the plan cache, so a document
	// load or catalog edit invalidates cached plans for the old state.
	gen uint64
}

// Engine holds documents and schema facts and compiles queries. The engine
// core is safe for concurrent use: loading documents may race Compile,
// Prepare, Query, RunText and any number of Runs — each compilation works
// from the copy-on-write snapshot current when it started, and compiled
// queries keep their snapshot for their whole lifetime.
type Engine struct {
	mu    sync.Mutex // serializes writers; readers load the state pointer
	state atomic.Pointer[engineState]

	cache    planCache
	compiles atomic.Int64 // full compile passes, pinned by the zero-recompile tests

	// analyzerRuns counts document analyses (one per loaded or replaced
	// document); indexHits accumulates IndexScan resolutions across every
	// finished Run of queries compiled by this engine. Both surface on the
	// server's /statusz.
	analyzerRuns atomic.Int64
	indexHits    atomic.Int64
}

// NewEngine creates an Engine pre-loaded with the DTD facts of the paper's
// use-case documents (Fig. 5). Additional facts can be registered through
// Catalog().
func NewEngine() *Engine {
	e := &Engine{}
	e.state.Store(&engineState{docs: map[string]*dom.Document{},
		aux: map[string]*index.DocIndexes{}, cat: schema.UseCases()})
	e.cache.cap = DefaultPlanCacheSize
	return e
}

// snapshot returns the current immutable state.
func (e *Engine) snapshot() *engineState { return e.state.Load() }

// mutate applies one state transition under the writer lock: clone the
// current snapshot's document map, let mut edit the clone, publish the next
// generation. The catalog pointer is carried over unless mut replaces it.
func (e *Engine) mutate(mut func(st *engineState)) { e.mutateWith(mut, nil) }

// mutateWith is mutate with pre-measured statistics for specific URIs (a
// persisted NALB2 record loaded alongside the document): the sidecar
// reconcile then skips re-measuring those documents.
func (e *Engine) mutateWith(mut func(st *engineState), pre map[string]*stats.DocStats) {
	e.mu.Lock()
	defer e.mu.Unlock()
	cur := e.state.Load()
	next := &engineState{
		docs: make(map[string]*dom.Document, len(cur.docs)+1),
		aux:  make(map[string]*index.DocIndexes, len(cur.docs)+1),
		cat:  cur.cat,
		gen:  cur.gen + 1,
	}
	for uri, d := range cur.docs {
		next.docs[uri] = d
	}
	mut(next)
	// Reconcile the analyzer/index sidecar with the edited document map: a
	// document object already analyzed keeps its sidecar, a new or replaced
	// one is analyzed and indexed here (one walk), a dropped one loses its
	// entry. Stats and indexes therefore invalidate exactly like the plan
	// cache: any transition that changes a document replaces them.
	for uri, d := range next.docs {
		if cur.docs[uri] == d && cur.aux[uri] != nil {
			next.aux[uri] = cur.aux[uri]
			continue
		}
		next.aux[uri] = index.BuildWith(d, pre[uri])
		e.analyzerRuns.Add(1)
	}
	e.state.Store(next)
}

// LoadXML parses and registers a document under the given URI.
func (e *Engine) LoadXML(uri string, r io.Reader) error {
	d, err := dom.Parse(r, uri)
	if err != nil {
		return err
	}
	e.mutate(func(st *engineState) { st.docs[uri] = d })
	return nil
}

// LoadXMLString parses and registers a document from a string.
func (e *Engine) LoadXMLString(uri, s string) error {
	return e.LoadXML(uri, strings.NewReader(s))
}

// LoadDocument registers an already-built document (e.g. from the synthetic
// generators of internal/xmlgen).
func (e *Engine) LoadDocument(d *dom.Document) {
	e.mutate(func(st *engineState) { st.docs[d.URI] = d })
}

// LoadStoreFile loads a document from a binary store file (the .nalb format
// of internal/store) and registers it under the given URI. A version-2 file
// carries the analyzer's statistics; they are adopted instead of re-measured.
func (e *Engine) LoadStoreFile(uri, path string) error {
	d, ds, err := store.LoadFileStats(path)
	if err != nil {
		return err
	}
	d.URI = uri
	var pre map[string]*stats.DocStats
	if ds != nil {
		ds.URI = uri
		pre = map[string]*stats.DocStats{uri: ds}
	}
	e.mutateWith(func(st *engineState) { st.docs[uri] = d }, pre)
	return nil
}

// Document returns a registered document, or nil.
func (e *Engine) Document(uri string) *dom.Document { return e.snapshot().docs[uri] }

// DocumentURIs lists the URIs of the registered documents, sorted.
func (e *Engine) DocumentURIs() []string {
	docs := e.snapshot().docs
	uris := make([]string, 0, len(docs))
	for uri := range docs {
		uris = append(uris, uri)
	}
	sort.Strings(uris)
	return uris
}

// Catalog returns the current schema-fact catalog used to verify the side
// conditions of the condition-bearing equivalences (3, 5, 8, 9). Fact
// lookups through it (Has, SingletonPath, SameNodeSet, …) are cheap and
// safe alongside concurrent compilations. Beware that Doc is get-or-create:
// on an unregistered URI it mutates the live snapshot, as does registering
// facts through the handle — fine for single-threaded setup (the
// historical pattern), but it may race concurrent compilations and does
// not invalidate cached plans. Use EditCatalog for the race-safe,
// cache-coherent edit path.
func (e *Engine) Catalog() *schema.Catalog { return e.snapshot().cat }

// EditCatalog applies edit to a copy-on-write clone of the catalog and
// installs the clone as the engine's current catalog. In-flight
// compilations keep reading the old snapshot (edits may race Prepare, Query
// and Runs cleanly), and the generation moves, so the plan cache drops
// plans derived under the old facts.
func (e *Engine) EditCatalog(edit func(*schema.Catalog)) {
	e.mutate(func(st *engineState) {
		st.cat = st.cat.Clone()
		edit(st.cat)
	})
}

// Stats reports execution counters of one plan run.
type Stats struct {
	// DocAccesses counts doc()/document() evaluations — each is a fresh
	// traversal of a stored document (the paper's "scans").
	DocAccesses int64
	// NestedEvals counts evaluations of nested algebraic expressions
	// (nested-loop iterations).
	NestedEvals int64
	// Tuples counts tuples produced by scan operators.
	Tuples int64
	// IndexScans counts scans answered from a structural or value index
	// (one per IndexScan open) instead of a document traversal. Plans
	// without substituted index scans report 0.
	IndexScans int64
	// MapTuples counts map tuples materialized on the slot engine's data
	// path (group payloads converted for uncompiled sequence functions,
	// conversion-shim traffic). Fully native execution reports 0.
	MapTuples int64
	// BudgetBytes and BudgetTuples are the run's resource-budget charge
	// counters (see WithMaxMemory/WithMaxTuples). Both are 0 when the run
	// carries no budget — accounting is then disabled entirely.
	BudgetBytes  int64
	BudgetTuples int64
}

// Plan is one compiled plan alternative.
type Plan struct {
	// Name is the paper's row label: "nested", "outer join", "grouping",
	// "group Ξ", "semijoin", "anti-semijoin", "binary grouping".
	Name string
	// Applied lists the unnesting equivalences used to derive the plan.
	Applied []string
	// EstimatedCost is the cost model's estimate over the loaded documents'
	// statistics. Lower is better; nested plans carry the quadratic term.
	EstimatedCost float64

	op algebra.Op
}

// Explain renders the plan's operator tree.
func (p Plan) Explain() string { return algebra.Explain(p.op) }

// ExplainDot renders the plan's operator tree in Graphviz dot syntax;
// nested algebraic expressions appear as dashed edges.
func (p Plan) ExplainDot() string { return algebra.ExplainDot(p.op) }

// Query is a compiled query with its plan alternatives. A Query is
// immutable: it carries a snapshot of the engine's documents and catalog
// taken at Compile, so any number of Run sessions may execute concurrently
// (per-run state lives in each Results).
type Query struct {
	// Text is the original query.
	Text string
	// Normalized is the normalized source form (Sec. 3).
	Normalized string
	// OrderIrrelevant reports that the query was wrapped in XQuery's
	// unordered() function (Sec. 1): the result may be produced in any
	// order, and plan alternatives using the unordered operator family are
	// offered in addition to the order-preserving ones.
	OrderIrrelevant bool

	docs   map[string]*dom.Document // immutable snapshot taken at Compile
	model  *cost.Model
	plans  []Plan
	params []string // external variable names, in parameter-slot order
	// idxHits, when non-nil, receives each finished run's IndexScans count
	// (the compiling engine's cumulative index-hit counter).
	idxHits *atomic.Int64
}

// Vars returns the names of the query's external variables
// ("declare variable $x external;") in declaration order. Every one of them
// must be bound with Bind on each Run.
func (q *Query) Vars() []string {
	return append([]string(nil), q.params...)
}

func statsOf(ctx *algebra.Ctx) Stats {
	st := Stats{
		DocAccesses: ctx.Stats.DocAccesses,
		NestedEvals: ctx.Stats.NestedEvals,
		Tuples:      ctx.Stats.Tuples,
		IndexScans:  ctx.Stats.IndexScans,
		MapTuples:   ctx.Stats.MapTuples,
	}
	if b := ctx.Budget; b != nil {
		st.BudgetBytes = b.Bytes()
		st.BudgetTuples = b.Tuples()
	}
	return st
}

// CompileOption configures one Compile call.
type CompileOption func(*compileConfig)

type compileConfig struct {
	cat   *schema.Catalog
	model *cost.Model
}

// WithCatalog compiles against the given schema-fact catalog instead of the
// engine's, e.g. to verify the condition-bearing equivalences under
// alternative DTD facts without mutating the shared engine.
func WithCatalog(cat *schema.Catalog) CompileOption {
	return func(c *compileConfig) { c.cat = cat }
}

// WithCostModel supplies a pre-built statistics model instead of gathering
// element counts from the engine's documents — e.g. to reuse one model
// across many Compile calls over the same corpus, or to rank plans under
// synthetic statistics.
func WithCostModel(m *cost.Model) CompileOption {
	return func(c *compileConfig) { c.model = m }
}

// Compile parses, normalizes, translates and unnests a query, producing all
// plan alternatives. The returned Query snapshots the engine's current
// document set and catalog; later Load calls do not affect it. Syntax
// errors are *ParseError values carrying the source line. A query may
// declare external variables ("declare variable $x external;"); they
// compile into typed parameter expressions bound per Run — Prepare is the
// intent-bearing wrapper for that compile-once/run-many use.
func (e *Engine) Compile(text string, opts ...CompileOption) (*Query, error) {
	var cfg compileConfig
	for _, o := range opts {
		o(&cfg)
	}
	return e.compileState(e.snapshot(), text, cfg)
}

// compilePanicHook, when non-nil, runs at the top of every compile — the
// injection point for the backstop's own regression test (the same idiom as
// runConfig.faultHook on the execution side).
var compilePanicHook func()

// compileState runs the full compilation pipeline against one immutable
// engine snapshot. Like Run, it is a panic boundary: a panicking
// normalizer/translator/rewriter fails its own compile with a typed
// *InternalError instead of taking the process down.
func (e *Engine) compileState(st *engineState, text string, cfg compileConfig) (q *Query, err error) {
	defer func() {
		if p := recover(); p != nil {
			q, err = nil, &InternalError{Query: text, Panic: p, Stack: debug.Stack()}
		}
	}()
	e.compiles.Add(1)
	if compilePanicHook != nil {
		compilePanicHook()
	}
	cat := cfg.cat
	if cat == nil {
		cat = st.cat
	}
	mod, err := xquery.ParseModule(text)
	if err != nil {
		var pe *xquery.ParseError
		if errors.As(err, &pe) {
			return nil, &ParseError{Line: pe.Line, Col: pe.Col, Msg: pe.Msg}
		}
		return nil, err
	}
	ast := mod.Body
	// External variables get their parameter slots in declaration order;
	// translation compiles references to them into algebra.Param reads of
	// the per-run binding table.
	var params map[string]int
	if len(mod.Externals) > 0 {
		params = make(map[string]int, len(mod.Externals))
		for i, name := range mod.Externals {
			params[name] = i
		}
	}
	// A top-level unordered(FLWR) wrapper releases the order requirement
	// (Sec. 1). The wrapper is stripped before normalization; the flag
	// admits the unordered plan family below.
	orderIrrelevant := false
	if c, ok := ast.(xquery.Call); ok && c.Fn == "unordered" && len(c.Args) == 1 {
		if f, isFLWR := c.Args[0].(xquery.FLWR); isFLWR {
			ast = f
			orderIrrelevant = true
		}
	}
	norm := normalize.NormalizeWithCatalog(ast, cat)
	res, err := translate.TranslateParams(norm, cat, params)
	if err != nil {
		var te *translate.Error
		if errors.As(err, &te) {
			return nil, &TranslateError{Msg: te.Msg}
		}
		return nil, err
	}
	rw := core.NewRewriter(res, cat)
	alts := rw.Alternatives(res.Plan)
	// The per-query snapshot: the state's document map is copy-on-write and
	// never mutated after publication, so the query references it directly —
	// concurrent Run sessions read it while the engine keeps loading into
	// future snapshots.
	docs := st.docs
	model := cfg.model
	if model == nil {
		// The default model consumes the snapshot's measured statistics —
		// plan choice driven by data properties, not constants. A caller's
		// WithCostModel (e.g. cost.NewModel for the textbook defaults)
		// replaces it wholesale.
		model = cost.NewModelStats(docs, snapshotStats(st.aux))
	}
	q = &Query{Text: text, Normalized: norm.String(), docs: docs, model: model,
		OrderIrrelevant: orderIrrelevant, params: mod.Externals, idxHits: &e.indexHits}
	for _, a := range alts {
		est := model.Plan(a.Op)
		q.plans = append(q.plans, Plan{
			Name: a.Name, Applied: a.Applied, EstimatedCost: est.Cost, op: a.Op,
		})
	}
	if orderIrrelevant {
		// Offer the unordered counterpart of every unnested alternative.
		for _, a := range alts {
			if a.Name == "nested" {
				continue
			}
			u, changed := core.ToUnordered(a.Op)
			if !changed || !core.Validate(u) {
				continue
			}
			est := model.Plan(u)
			q.plans = append(q.plans, Plan{
				Name:          "unordered " + a.Name,
				Applied:       append(append([]string{}, a.Applied...), "unordered-family"),
				EstimatedCost: est.Cost,
				op:            u,
			})
		}
	}
	// Offer an index-substituted counterpart of every alternative whose
	// document scans resolve onto the snapshot's indexes. The base plans
	// stay on offer: with measured statistics the probe prices cheap and an
	// indexed plan wins the empty-name selection; under constants-only
	// models it prices pessimistically and the base plans keep winning.
	if len(st.aux) > 0 {
		icat := indexCat{aux: st.aux}
		for _, a := range alts {
			sub, changed := core.SubstituteIndexes(a.Op, icat)
			if !changed || !core.Validate(sub) {
				continue
			}
			est := model.Plan(sub)
			q.plans = append(q.plans, Plan{
				Name:          "indexed " + a.Name,
				Applied:       append(append([]string{}, a.Applied...), "index-scan"),
				EstimatedCost: est.Cost,
				op:            sub,
			})
		}
	}
	return q, nil
}

// Plans returns the plan alternatives, from the nested baseline to the most
// optimized plan.
func (q *Query) Plans() []Plan { return q.plans }

// Plan returns the alternative with the given name; the empty name selects
// the plan with the lowest estimated cost. A query without alternatives
// returns ErrNoPlan; an unmatched name returns an *UnknownPlanError
// (errors.Is-matchable against ErrUnknownPlan).
func (q *Query) Plan(name string) (Plan, error) {
	if len(q.plans) == 0 {
		return Plan{}, ErrNoPlan
	}
	if name == "" {
		best := q.plans[0]
		for _, p := range q.plans[1:] {
			if p.EstimatedCost < best.EstimatedCost {
				best = p
			}
		}
		return best, nil
	}
	for _, p := range q.plans {
		if p.Name == name {
			return p, nil
		}
	}
	names := make([]string, len(q.plans))
	for i, p := range q.plans {
		names[i] = p.Name
	}
	return Plan{}, &UnknownPlanError{Name: name, Have: names}
}

// Execute runs the named plan ("" = most optimized) and returns the
// constructed result string plus execution statistics.
//
// Deprecated: Execute is a compatibility wrapper over Run — prefer
// q.Run(ctx, WithPlan(name)) and consume the Results (typed items via
// Next/Seq, or serialized via WriteXML), which adds streaming, concurrency
// and cancellation.
func (q *Query) Execute(name string) (string, Stats, error) {
	var st Stats
	res, err := q.run(context.Background(), runConfig{plan: name, stats: &st})
	if err != nil {
		return "", Stats{}, err
	}
	var sb strings.Builder
	if err := res.WriteXML(&sb); err != nil {
		return "", Stats{}, err
	}
	return sb.String(), st, nil
}

// ExecuteReference runs the named plan ("" = most optimized) on the
// definitional materializing evaluator over map-based tuples — the
// executable semantics the slot engine is differential-tested against.
//
// Deprecated: use q.Run(ctx, WithReferenceEngine(), WithPlan(name)).
func (q *Query) ExecuteReference(name string) (string, Stats, error) {
	var st Stats
	res, err := q.run(context.Background(), runConfig{plan: name, reference: true, stats: &st})
	if err != nil {
		return "", Stats{}, err
	}
	var sb strings.Builder
	if err := res.WriteXML(&sb); err != nil {
		return "", Stats{}, err
	}
	return sb.String(), st, nil
}

// ExecuteStreaming runs the named plan ("" = lowest estimated cost) through
// the pull-based iterator engine (open-next-close, the physical execution
// model of the engine the paper evaluates on).
//
// Deprecated: identical to Execute; prefer Run.
func (q *Query) ExecuteStreaming(name string) (string, Stats, error) {
	return q.Execute(name)
}

// ExecuteTo runs the named plan ("" = most optimized) through the pull-based
// iterator engine, streaming the constructed result into w instead of
// building it in memory. Combined with the streaming Ξ operators, memory
// stays bounded by the plan's pipeline-breaker state, not the output size.
//
// Deprecated: use q.Run(ctx, WithPlan(name)) followed by
// Results.WriteXML(w), which adds cancellation.
func (q *Query) ExecuteTo(w io.Writer, name string) (Stats, error) {
	var st Stats
	res, err := q.run(context.Background(), runConfig{plan: name, stats: &st})
	if err != nil {
		return Stats{}, err
	}
	if err := res.WriteXML(w); err != nil {
		return Stats{}, err
	}
	return st, nil
}

// cachedCompile resolves text through the bounded LRU plan cache, keyed by
// the query text and the catalog/document generation of the current
// snapshot: repeated traffic for the same text compiles once per engine
// state, and any Load or Catalog edit invalidates by moving the generation.
func (e *Engine) cachedCompile(text string) (*Query, error) {
	st := e.snapshot()
	if q, ok := e.cache.get(text, st.gen); ok {
		return q, nil
	}
	q, err := e.compileState(st, text, compileConfig{})
	if err != nil {
		return nil, err
	}
	e.cache.put(text, st.gen, q)
	return q, nil
}

// Query is the one-shot convenience API: compile and execute with the most
// optimized plan. Compilation goes through the engine's plan cache, so
// repeated calls with the same text under an unchanged document set and
// catalog pay for parsing, unnesting and costing only once.
func (e *Engine) Query(text string) (string, error) {
	q, err := e.cachedCompile(text)
	if err != nil {
		return "", err
	}
	out, _, err := q.Execute("")
	return out, err
}

// RunText compiles text through the plan cache and starts one Run session
// with the given options — the convenience twin of Prepare for callers that
// hold query text per request: under repeated traffic the compile amortizes
// exactly like a Prepared, including external-variable queries (pass Bind
// options). The Results session has the usual semantics (typed items,
// WriteXML, cancellation through ctx).
func (e *Engine) RunText(ctx context.Context, text string, opts ...RunOption) (*Results, error) {
	q, err := e.cachedCompile(text)
	if err != nil {
		return nil, err
	}
	return q.Run(ctx, opts...)
}
