// Package nalquery is an order-preserving XQuery processing library
// reproducing May, Helmer and Moerkotte, "Nested Queries and Quantifiers in
// an Ordered Context" (ICDE 2004).
//
// The library parses a subset of XQuery (FLWR expressions, existential and
// universal quantifiers, aggregates, element constructors), translates it
// into NAL — an order-preserving nested algebra — and unnests nested
// algebraic expressions using the paper's equivalences (Fig. 4, Eqvs. 1–9).
// Every query compiles into a set of plan alternatives (nested, outer join,
// grouping, group Ξ, semijoin, anti-semijoin, …) that all produce identical,
// order-correct results but differ — often by orders of magnitude — in cost.
//
// # Quick start
//
//	eng := nalquery.NewEngine()
//	eng.LoadXMLString("bib.xml", `<bib>...</bib>`)
//	q, _ := eng.Compile(`
//	    let $d1 := doc("bib.xml")
//	    for $t1 in $d1//book/title
//	    return <t>{ $t1 }</t>`)
//	out, stats, _ := q.Execute("")   // "" = most optimized plan
package nalquery

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strings"

	"nalquery/internal/algebra"
	"nalquery/internal/core"
	"nalquery/internal/cost"
	"nalquery/internal/dom"
	"nalquery/internal/normalize"
	"nalquery/internal/schema"
	"nalquery/internal/store"
	"nalquery/internal/translate"
	"nalquery/internal/xquery"
)

// Engine holds documents and schema facts and compiles queries.
type Engine struct {
	docs map[string]*dom.Document
	cat  *schema.Catalog
}

// NewEngine creates an Engine pre-loaded with the DTD facts of the paper's
// use-case documents (Fig. 5). Additional facts can be registered through
// Catalog().
func NewEngine() *Engine {
	return &Engine{docs: map[string]*dom.Document{}, cat: schema.UseCases()}
}

// LoadXML parses and registers a document under the given URI.
func (e *Engine) LoadXML(uri string, r io.Reader) error {
	d, err := dom.Parse(r, uri)
	if err != nil {
		return err
	}
	e.docs[uri] = d
	return nil
}

// LoadXMLString parses and registers a document from a string.
func (e *Engine) LoadXMLString(uri, s string) error {
	return e.LoadXML(uri, strings.NewReader(s))
}

// LoadDocument registers an already-built document (e.g. from the synthetic
// generators of internal/xmlgen).
func (e *Engine) LoadDocument(d *dom.Document) {
	e.docs[d.URI] = d
}

// LoadStoreFile loads a document from a binary store file (the .nalb format
// of internal/store) and registers it under the given URI.
func (e *Engine) LoadStoreFile(uri, path string) error {
	d, err := store.LoadFile(path)
	if err != nil {
		return err
	}
	d.URI = uri
	e.docs[uri] = d
	return nil
}

// Document returns a registered document, or nil.
func (e *Engine) Document(uri string) *dom.Document { return e.docs[uri] }

// DocumentURIs lists the URIs of the registered documents, sorted.
func (e *Engine) DocumentURIs() []string {
	uris := make([]string, 0, len(e.docs))
	for uri := range e.docs {
		uris = append(uris, uri)
	}
	sort.Strings(uris)
	return uris
}

// Catalog exposes the schema-fact catalog used to verify the side conditions
// of the condition-bearing equivalences (3, 5, 8, 9).
func (e *Engine) Catalog() *schema.Catalog { return e.cat }

// Stats reports execution counters of one plan run.
type Stats struct {
	// DocAccesses counts doc()/document() evaluations — each is a fresh
	// traversal of a stored document (the paper's "scans").
	DocAccesses int64
	// NestedEvals counts evaluations of nested algebraic expressions
	// (nested-loop iterations).
	NestedEvals int64
	// Tuples counts tuples produced by scan operators.
	Tuples int64
	// MapTuples counts map tuples materialized on the slot engine's data
	// path (group payloads converted for uncompiled sequence functions,
	// conversion-shim traffic). Fully native execution reports 0.
	MapTuples int64
}

// Plan is one compiled plan alternative.
type Plan struct {
	// Name is the paper's row label: "nested", "outer join", "grouping",
	// "group Ξ", "semijoin", "anti-semijoin", "binary grouping".
	Name string
	// Applied lists the unnesting equivalences used to derive the plan.
	Applied []string
	// EstimatedCost is the cost model's estimate over the loaded documents'
	// statistics. Lower is better; nested plans carry the quadratic term.
	EstimatedCost float64

	op algebra.Op
}

// Explain renders the plan's operator tree.
func (p Plan) Explain() string { return algebra.Explain(p.op) }

// ExplainDot renders the plan's operator tree in Graphviz dot syntax;
// nested algebraic expressions appear as dashed edges.
func (p Plan) ExplainDot() string { return algebra.ExplainDot(p.op) }

// Query is a compiled query with its plan alternatives.
type Query struct {
	// Text is the original query.
	Text string
	// Normalized is the normalized source form (Sec. 3).
	Normalized string
	// OrderIrrelevant reports that the query was wrapped in XQuery's
	// unordered() function (Sec. 1): the result may be produced in any
	// order, and plan alternatives using the unordered operator family are
	// offered in addition to the order-preserving ones.
	OrderIrrelevant bool

	engine *Engine
	model  *cost.Model
	plans  []Plan
}

// newCtx creates the evaluation context of one plan run, with the compile
// time cost model wired in so pipeline breakers pre-size their hash tables
// from the cardinality estimates.
func (q *Query) newCtx() *algebra.Ctx {
	ctx := algebra.NewCtx(q.engine.docs)
	ctx.Cards = q.model
	return ctx
}

func statsOf(ctx *algebra.Ctx) Stats {
	return Stats{
		DocAccesses: ctx.Stats.DocAccesses,
		NestedEvals: ctx.Stats.NestedEvals,
		Tuples:      ctx.Stats.Tuples,
		MapTuples:   ctx.Stats.MapTuples,
	}
}

// Compile parses, normalizes, translates and unnests a query, producing all
// plan alternatives.
func (e *Engine) Compile(text string) (*Query, error) {
	ast, err := xquery.ParseQuery(text)
	if err != nil {
		return nil, err
	}
	// A top-level unordered(FLWR) wrapper releases the order requirement
	// (Sec. 1). The wrapper is stripped before normalization; the flag
	// admits the unordered plan family below.
	orderIrrelevant := false
	if c, ok := ast.(xquery.Call); ok && c.Fn == "unordered" && len(c.Args) == 1 {
		if f, isFLWR := c.Args[0].(xquery.FLWR); isFLWR {
			ast = f
			orderIrrelevant = true
		}
	}
	norm := normalize.NormalizeWithCatalog(ast, e.cat)
	res, err := translate.Translate(norm, e.cat)
	if err != nil {
		return nil, err
	}
	rw := core.NewRewriter(res, e.cat)
	alts := rw.Alternatives(res.Plan)
	model := cost.NewModel(e.docs)
	q := &Query{Text: text, Normalized: norm.String(), engine: e, model: model, OrderIrrelevant: orderIrrelevant}
	for _, a := range alts {
		est := model.Plan(a.Op)
		q.plans = append(q.plans, Plan{
			Name: a.Name, Applied: a.Applied, EstimatedCost: est.Cost, op: a.Op,
		})
	}
	if orderIrrelevant {
		// Offer the unordered counterpart of every unnested alternative.
		for _, a := range alts {
			if a.Name == "nested" {
				continue
			}
			u, changed := core.ToUnordered(a.Op)
			if !changed || !core.Validate(u) {
				continue
			}
			est := model.Plan(u)
			q.plans = append(q.plans, Plan{
				Name:          "unordered " + a.Name,
				Applied:       append(append([]string{}, a.Applied...), "unordered-family"),
				EstimatedCost: est.Cost,
				op:            u,
			})
		}
	}
	return q, nil
}

// Plans returns the plan alternatives, from the nested baseline to the most
// optimized plan.
func (q *Query) Plans() []Plan { return q.plans }

// Plan returns the alternative with the given name; the empty name selects
// the plan with the lowest estimated cost.
func (q *Query) Plan(name string) (Plan, error) {
	if name == "" {
		best := q.plans[0]
		for _, p := range q.plans[1:] {
			if p.EstimatedCost < best.EstimatedCost {
				best = p
			}
		}
		return best, nil
	}
	for _, p := range q.plans {
		if p.Name == name {
			return p, nil
		}
	}
	var names []string
	for _, p := range q.plans {
		names = append(names, p.Name)
	}
	return Plan{}, fmt.Errorf("nalquery: no plan %q (have %s)", name, strings.Join(names, ", "))
}

// Execute runs the named plan ("" = most optimized) and returns the
// constructed result string plus execution statistics. Execution goes
// through the slot-based iterator engine: the schema-resolution pass
// compiles attribute names to slots at plan time, so no per-tuple map is
// built (see docs/EXECUTION.md). Plans whose schema does not resolve fall
// back to the map-based engine transparently.
func (q *Query) Execute(name string) (string, Stats, error) {
	return q.ExecuteStreaming(name)
}

// ExecuteReference runs the named plan ("" = most optimized) on the
// definitional materializing evaluator over map-based tuples — the
// executable semantics the slot engine is differential-tested against.
func (q *Query) ExecuteReference(name string) (string, Stats, error) {
	p, err := q.Plan(name)
	if err != nil {
		return "", Stats{}, err
	}
	ctx := algebra.NewCtx(q.engine.docs)
	p.op.Eval(ctx, nil)
	return ctx.OutString(), statsOf(ctx), nil
}

// ExecuteStreaming runs the named plan ("" = lowest estimated cost) through
// the pull-based iterator engine (open-next-close, the physical execution
// model of the engine the paper evaluates on). The constructed result is
// identical to Execute's; pipeline-breaking operators materialize only the
// state their algorithm requires.
func (q *Query) ExecuteStreaming(name string) (string, Stats, error) {
	p, err := q.Plan(name)
	if err != nil {
		return "", Stats{}, err
	}
	ctx := q.newCtx()
	algebra.DrainIter(p.op, ctx, nil)
	return ctx.OutString(), statsOf(ctx), nil
}

// ExecuteTo runs the named plan ("" = most optimized) through the pull-based
// iterator engine, streaming the constructed result into w instead of
// building it in memory. Combined with the streaming Ξ operators, memory
// stays bounded by the plan's pipeline-breaker state, not the output size.
func (q *Query) ExecuteTo(w io.Writer, name string) (Stats, error) {
	p, err := q.Plan(name)
	if err != nil {
		return Stats{}, err
	}
	bw := bufio.NewWriter(w)
	ctx := algebra.NewCtxWriter(q.engine.docs, bw)
	ctx.Cards = q.model
	algebra.DrainIter(p.op, ctx, nil)
	if err := bw.Flush(); err != nil {
		return Stats{}, err
	}
	return statsOf(ctx), nil
}

// Query is the one-shot convenience API: compile and execute with the most
// optimized plan.
func (e *Engine) Query(text string) (string, error) {
	q, err := e.Compile(text)
	if err != nil {
		return "", err
	}
	out, _, err := q.Execute("")
	return out, err
}
