package nalquery

import (
	"errors"
	"strings"
	"testing"
)

// TestCompileErrorTaxonomy pins the compile-path error contract family by
// family: every rejection from parse, normalize, or translate must be
// errors.As-able to exactly one public typed error — *ParseError with a
// valid source position for syntax, *TranslateError (matching ErrTranslate)
// for well-formed queries outside the supported subset. Callers switch on
// these types (the HTTP layer maps them to status codes, the CLIs to caret
// diagnostics), so an untyped rejection is an API break.
func TestCompileErrorTaxonomy(t *testing.T) {
	eng := NewEngine()
	eng.LoadUseCaseDocuments(2, 2)

	cases := []struct {
		name  string
		query string
		kind  string // "parse" or "translate"
	}{
		// --- parse family: malformed surface syntax ---
		{"empty input", ``, "parse"},
		{"truncated flwr", `for $x in`, "parse"},
		{"missing return", `for $x in doc("bib.xml")//book`, "parse"},
		{"bad keyword", `for $x inn doc("bib.xml")//book return $x`, "parse"},
		{"unterminated string", `let $s := "oops`, "parse"},
		{"unterminated constructor", `for $x in doc("b")//a return <t>{ $x }`, "parse"},
		{"mismatched tags", `for $x in doc("b")//a return <t>{ $x }</u>`, "parse"},
		{"trailing input", `for $x in doc("b")//a return $x satisfies`, "parse"},
		{"duplicate external", `declare variable $v external; declare variable $v external; for $x in doc("b")//a return $x`, "parse"},
		{"missing step name", `for $x in doc("b")// return $x`, "parse"},
		{"paren bomb", strings.Repeat("(", 50000), "parse"},
		{"flwr bomb", strings.Repeat("for $x in ", 10000) + "$y", "parse"},
		{"binary junk", "\x00\xff\x01\x02", "parse"},

		// --- translate family: parses, but outside the algebra's subset ---
		{"bare arithmetic", `1 + 1`, "translate"},
		{"bare conditional", `if (1) then 2 else 3`, "translate"},
		{"bare path", `/bib/book`, "translate"},
		{"bare string", `"hello"`, "translate"},
		{"bare quantifier", `some $x in doc("b")//a satisfies $x = 1`, "translate"},
	}

	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := eng.Compile(tc.query)
			if err == nil {
				t.Fatalf("compile accepted %q", tc.query)
			}
			var pe *ParseError
			var te *TranslateError
			switch tc.kind {
			case "parse":
				if !errors.As(err, &pe) {
					t.Fatalf("want *ParseError, got %T: %v", err, err)
				}
				if pe.Line < 1 || pe.Col < 1 {
					t.Fatalf("invalid error position %d:%d", pe.Line, pe.Col)
				}
				if errors.As(err, &te) {
					t.Fatalf("error matches both parse and translate: %v", err)
				}
			case "translate":
				if !errors.As(err, &te) {
					t.Fatalf("want *TranslateError, got %T: %v", err, err)
				}
				if !errors.Is(err, ErrTranslate) {
					t.Fatalf("*TranslateError not Is-matchable to ErrTranslate: %v", err)
				}
				if errors.As(err, &pe) {
					t.Fatalf("error matches both parse and translate: %v", err)
				}
			}
			if errors.Is(err, ErrInternal) {
				t.Fatalf("rejection leaked ErrInternal: %v", err)
			}
		})
	}
}
