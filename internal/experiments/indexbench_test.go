package experiments

import (
	"os"
	"strconv"
	"testing"
	"time"

	nalquery "nalquery"
)

// TestIndexBenchTargets: the family resolves an indexed alternative and
// every target runs.
func TestIndexBenchTargets(t *testing.T) {
	targets, err := IndexBenchTargets([]int{60})
	if err != nil {
		t.Fatalf("targets: %v", err)
	}
	if len(targets) != 3 {
		t.Fatalf("%d targets, want full-scan/index-scan/auto", len(targets))
	}
	for _, tg := range targets {
		if err := tg.Run(); err != nil {
			t.Fatalf("%s/%s: %v", tg.Experiment, tg.Plan, err)
		}
	}
}

// TestIndexSpeedupSelective pins the subsystem's payoff on the selective
// workload: the index-scan plan touches ≥10× fewer tuples than the full
// scan and is faster wall-clock (best of 3, with a conservative floor —
// the CI-noise-safe bound; at NALQUERY_INDEX_SPEEDUP_SIZE=100000 the
// measured speedup is ≥10×, see docs/PLANNING.md).
func TestIndexSpeedupSelective(t *testing.T) {
	size := 10000
	if s := os.Getenv("NALQUERY_INDEX_SPEEDUP_SIZE"); s != "" {
		n, err := strconv.Atoi(s)
		if err != nil {
			t.Fatalf("NALQUERY_INDEX_SPEEDUP_SIZE: %v", err)
		}
		size = n
	}
	eng := nalquery.NewEngine()
	eng.LoadUseCaseDocuments(size, 2)
	q, err := eng.Compile(IndexQuerySelective)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	best := func(plan string) (time.Duration, int64) {
		var elapsed time.Duration
		var tuples int64
		for i := 0; i < 3; i++ {
			t0 := time.Now()
			_, st, err := q.Execute(plan)
			if err != nil {
				t.Fatalf("%s: %v", plan, err)
			}
			if d := time.Since(t0); elapsed == 0 || d < elapsed {
				elapsed = d
			}
			tuples = st.Tuples
		}
		return elapsed, tuples
	}
	full, fullTuples := best("nested")
	idx, idxTuples := best("indexed nested")
	t.Logf("size %d: full %v (%d tuples), indexed %v (%d tuples)",
		size, full, fullTuples, idx, idxTuples)
	if idxTuples*10 > fullTuples {
		t.Fatalf("tuple ratio %d/%d < 10x", fullTuples, idxTuples)
	}
	if idx*2 > full {
		t.Fatalf("index scan %v not even 2x faster than full scan %v", idx, full)
	}
}
