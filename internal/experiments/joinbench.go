package experiments

import (
	"strings"

	nalquery "nalquery"
	"nalquery/internal/algebra"
	"nalquery/internal/dom"
	"nalquery/internal/value"
	"nalquery/internal/xmlgen"
	"nalquery/internal/xpath"
)

// The join/unordered benchmark family extends the -json perf trajectory
// beyond the paper's tables with the partitioned physical operators the
// paper's own measurements run on: the Grace hash join plus
// order-restoring sort (its stated implementation), the order-preserving
// hash join of Claussen et al. [6] (its intended implementation), and the
// unordered operator family admitted by XQuery's unordered() wrapper.
// These are exactly the plans whose per-tuple cost the slot engine must
// keep comparable across PRs.

// NamedPlan is one physical plan alternative of a benchmark workload.
type NamedPlan struct {
	Name string
	Op   algebra.Op
}

// JoinFamilyDocs builds the bids/items documents of the order-preserving
// join workload at one size.
func JoinFamilyDocs(size int) map[string]*dom.Document {
	cfg := xmlgen.DefaultConfig(size)
	return map[string]*dom.Document{
		"bids.xml":  xmlgen.Bids(cfg),
		"items.xml": xmlgen.Items(cfg),
	}
}

// joinFamilyInputs returns the bids and items scan subplans of the join
// workload (join bids with items on itemno).
func joinFamilyInputs() (bids, items algebra.Op) {
	bids = algebra.Map{
		In: algebra.UnnestMap{
			In:   algebra.Map{In: algebra.Singleton{}, Attr: "d1", E: algebra.Doc{URI: "bids.xml"}},
			Attr: "b",
			E:    algebra.PathOf{Input: algebra.Var{Name: "d1"}, Path: xpath.MustParse("//bidtuple")},
		},
		Attr: "i1",
		E:    algebra.PathOf{Input: algebra.Var{Name: "b"}, Path: xpath.MustParse("itemno")},
	}
	items = algebra.Map{
		In: algebra.UnnestMap{
			In:   algebra.Map{In: algebra.Singleton{}, Attr: "d2", E: algebra.Doc{URI: "items.xml"}},
			Attr: "it",
			E:    algebra.PathOf{Input: algebra.Var{Name: "d2"}, Path: xpath.MustParse("//itemtuple")},
		},
		Attr: "i2",
		E:    algebra.PathOf{Input: algebra.Var{Name: "it"}, Path: xpath.MustParse("itemno")},
	}
	return bids, items
}

// JoinFamilyPlans returns the three physical strategies for the
// order-preserving join of the workload: the probe-order hash join this
// library defaults to, the paper's actual implementation (Grace hash join
// + sort restoring order), and the order-preserving hash join of Claussen
// et al. [6].
func JoinFamilyPlans() []NamedPlan {
	bids, items := joinFamilyInputs()
	direct := algebra.Join{L: bids, R: items,
		Pred: algebra.CmpExpr{L: algebra.Var{Name: "i1"}, R: algebra.Var{Name: "i2"}, Op: value.CmpEq}}
	grace := algebra.ProjectDrop{
		In: algebra.Sort{
			In: algebra.GraceJoin{
				L:      algebra.AttachSeq{In: bids, Attr: "#l"},
				R:      algebra.AttachSeq{In: items, Attr: "#r"},
				LAttrs: []string{"i1"}, RAttrs: []string{"i2"},
			},
			By: []string{"#l", "#r"},
		},
		Names: []string{"#l", "#r"},
	}
	claussen := algebra.OPHashJoin{L: bids, R: items,
		LAttrs: []string{"i1"}, RAttrs: []string{"i2"}}
	return []NamedPlan{
		{Name: "probe-order-hash", Op: direct},
		{Name: "grace+sort", Op: grace},
		{Name: "claussen-ophj", Op: claussen},
	}
}

// BenchTarget is one measured unit of the -json trajectory beyond the
// paper-table experiments.
type BenchTarget struct {
	Experiment string
	Plan       string
	Size       int
	Run        func() error
}

// JoinBenchTargets returns the join-family plans as benchmark targets,
// executed through the iterator engine exactly like a query plan.
func JoinBenchTargets(sizes []int) []BenchTarget {
	var out []BenchTarget
	for _, size := range sizes {
		docs := JoinFamilyDocs(size)
		for _, p := range JoinFamilyPlans() {
			op := p.Op
			out = append(out, BenchTarget{
				Experiment: "joins", Plan: p.Name, Size: size,
				Run: func() error {
					algebra.DrainIter(op, algebra.NewCtx(docs), nil)
					return nil
				},
			})
		}
	}
	return out
}

// UnorderedBenchTargets returns the unordered plan alternatives of the Q1
// grouping query wrapped in unordered() as benchmark targets.
func UnorderedBenchTargets(sizes []int) ([]BenchTarget, error) {
	var out []BenchTarget
	unorderedQ1 := "unordered(" + nalquery.QueryQ1Grouping + ")"
	for _, size := range sizes {
		eng := nalquery.NewEngine()
		eng.LoadUseCaseDocuments(size, 2)
		q, err := eng.Compile(unorderedQ1)
		if err != nil {
			return nil, err
		}
		for _, p := range q.Plans() {
			if !strings.HasPrefix(p.Name, "unordered ") {
				continue
			}
			name := p.Name
			query := q
			out = append(out, BenchTarget{
				Experiment: "unorderedq1", Plan: name, Size: size,
				Run: func() error {
					_, _, err := query.Execute(name)
					return err
				},
			})
		}
	}
	return out, nil
}
