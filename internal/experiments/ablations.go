package experiments

import (
	"fmt"
	"io"
	"time"

	nalquery "nalquery"
	"nalquery/internal/algebra"
	"nalquery/internal/core"
	"nalquery/internal/dom"
	"nalquery/internal/normalize"
	"nalquery/internal/schema"
	"nalquery/internal/translate"
	"nalquery/internal/value"
	"nalquery/internal/xmlgen"
	"nalquery/internal/xpath"
	"nalquery/internal/xquery"
)

// The ablation experiments isolate the design choices DESIGN.md calls out:
// the order-preserving hash implementation of the grouping operators vs.
// their definitional scan, the group-detecting Ξ vs. Γ + simple Ξ, and the
// Sec. 5.5 residual pushdown into the anti-join's inner operand.

// AblationResult is one ablation measurement.
type AblationResult struct {
	Name    string
	Variant string
	Size    int
	Elapsed time.Duration
}

// AblationHashVsScanGrouping compares the probe-order-preserving hash
// implementation of the binary grouping operator against the definitional
// scan (Sec. 2's recursive definition evaluates σ over e2 per e1 tuple).
func AblationHashVsScanGrouping(sizes []int) []AblationResult {
	var out []AblationResult
	for _, size := range sizes {
		cfg := xmlgen.DefaultConfig(size)
		bids := xmlgen.Bids(cfg)
		docs := map[string]*dom.Document{"bids.xml": bids}

		base := func() algebra.Op {
			return algebra.UnnestMap{
				In:   algebra.Map{In: algebra.Singleton{}, Attr: "d", E: algebra.Doc{URI: "bids.xml"}},
				Attr: "i2",
				E:    algebra.PathOf{Input: algebra.Var{Name: "d"}, Path: xpath.MustParse("//bidtuple/itemno")},
			}
		}
		e1 := algebra.UnnestMap{
			In:   algebra.Map{In: algebra.Singleton{}, Attr: "d1", E: algebra.Doc{URI: "bids.xml"}},
			Attr: "i1",
			E: algebra.Call{Fn: "distinct-values",
				Args: []algebra.Expr{algebra.PathOf{Input: algebra.Var{Name: "d1"}, Path: xpath.MustParse("//itemno")}}},
		}
		for _, forceScan := range []bool{false, true} {
			plan := algebra.GroupBinary{
				L: e1, R: base(), G: "c",
				LAttrs: []string{"i1"}, RAttrs: []string{"i2"},
				Theta: value.CmpEq, F: algebra.SFCount{}, ForceScan: forceScan,
			}
			plan.Eval(algebra.NewCtx(docs), nil) // warm-up
			t0 := time.Now()
			plan.Eval(algebra.NewCtx(docs), nil)
			variant := "hash"
			if forceScan {
				variant = "scan"
			}
			out = append(out, AblationResult{Name: "binary-grouping", Variant: variant,
				Size: size, Elapsed: time.Since(t0)})
		}
	}
	return out
}

// AblationGroupXi compares the Q1 "grouping" plan (Γ materializing the
// sequence-valued attribute, then simple Ξ) against the fused
// group-detecting Ξ plan — the paper's "saves a grouping operation" claim —
// and against the paper's literal implementation of the latter: a stable
// sort on the group attributes followed by the boundary-detecting
// streaming Ξ ("this condition can be met by a stable(!) sort", Sec. 2).
func AblationGroupXi(sizes []int) ([]AblationResult, error) {
	var out []AblationResult
	cat := schema.UseCases()
	ast, err := xquery.ParseQuery(nalquery.QueryQ1Grouping)
	if err != nil {
		return nil, err
	}
	res, err := translate.Translate(normalize.NormalizeWithCatalog(ast, cat), cat)
	if err != nil {
		return nil, err
	}
	rw := core.NewRewriter(res, cat)
	xiPlan, _ := rw.Rewrite(res.Plan, core.StrategyGroupXi)
	sortStream := sortStreamVariant(xiPlan)
	for _, size := range sizes {
		eng := nalquery.NewEngine()
		eng.LoadUseCaseDocuments(size, 5)
		q, err := eng.Compile(nalquery.QueryQ1Grouping)
		if err != nil {
			return nil, err
		}
		for _, plan := range []string{"grouping", "group Ξ"} {
			t0 := time.Now()
			if _, _, err := q.Execute(plan); err != nil {
				return nil, err
			}
			out = append(out, AblationResult{Name: "group-xi", Variant: plan,
				Size: size, Elapsed: time.Since(t0)})
		}
		if sortStream != nil {
			cfg := xmlgen.DefaultConfig(size)
			cfg.AuthorsPerBook = 5
			docs := map[string]*dom.Document{"bib.xml": xmlgen.Bib(cfg)}
			t0 := time.Now()
			sortStream.Eval(algebra.NewCtx(docs), nil)
			out = append(out, AblationResult{Name: "group-xi", Variant: "sort+stream Ξ",
				Size: size, Elapsed: time.Since(t0)})
		}
	}
	return out, nil
}

// sortStreamVariant rewrites a group-Ξ plan (XiGroup at the root) into the
// paper's stable-sort + boundary-detecting streaming Ξ pipeline. It returns
// nil when the plan has a different shape.
func sortStreamVariant(plan algebra.Op) algebra.Op {
	xg, ok := plan.(algebra.XiGroup)
	if !ok {
		return nil
	}
	return algebra.XiGroupStream{
		In: algebra.Sort{In: xg.In, By: xg.By},
		By: xg.By, S1: xg.S1, S2: xg.S2, S3: xg.S3,
	}
}

// AblationPushdown compares the Q5 anti-semijoin with and without pushing
// the negated satisfies predicate into the inner operand (Sec. 5.5:
// "we can push the second part of the join predicate into its second
// operand").
func AblationPushdown(sizes []int) ([]AblationResult, error) {
	var out []AblationResult
	cat := schema.UseCases()
	ast, err := xquery.ParseQuery(nalquery.QueryQ5Universal)
	if err != nil {
		return nil, err
	}
	res, err := translate.Translate(normalize.NormalizeWithCatalog(ast, cat), cat)
	if err != nil {
		return nil, err
	}
	for _, size := range sizes {
		cfg := xmlgen.DefaultConfig(size)
		docs := map[string]*dom.Document{"bib.xml": xmlgen.Bib(cfg)}
		for _, noPush := range []bool{false, true} {
			rw := core.NewRewriter(res, cat)
			rw.SetNoPushdown(noPush)
			plan, _ := rw.Rewrite(res.Plan, core.StrategyGeneral)
			t0 := time.Now()
			plan.Eval(algebra.NewCtx(docs), nil)
			variant := "pushdown"
			if noPush {
				variant = "no-pushdown"
			}
			out = append(out, AblationResult{Name: "antijoin-pushdown", Variant: variant,
				Size: size, Elapsed: time.Since(t0)})
		}
	}
	return out, nil
}

// AblationGraceJoin compares three physical strategies for the
// order-preserving join (Sec. 2's implementation discussion): the
// probe-order hash join this library defaults to, the paper's actual
// implementation (Grace hash join + sort restoring order), and the
// order-preserving hash join of Claussen et al. [6] (partitioned join +
// P-way order-restoring merge — "sorting (almost) for free"). Workload:
// join bids with items on itemno.
func AblationGraceJoin(sizes []int) []AblationResult {
	var out []AblationResult
	for _, size := range sizes {
		docs := JoinFamilyDocs(size)
		for _, v := range JoinFamilyPlans() {
			v.Op.Eval(algebra.NewCtx(docs), nil) // warm-up
			t0 := time.Now()
			v.Op.Eval(algebra.NewCtx(docs), nil)
			out = append(out, AblationResult{Name: "order-preserving-join", Variant: v.Name,
				Size: size, Elapsed: time.Since(t0)})
		}
	}
	return out
}

// AblationUnordered compares the order-preserving plans against the
// unordered operator family on the Q1 grouping query wrapped in XQuery's
// unordered() function (Sec. 1: when order is irrelevant, the
// object-oriented unnesting setting applies and the physical operators
// need not preserve probe order).
func AblationUnordered(sizes []int) ([]AblationResult, error) {
	var out []AblationResult
	unorderedQ1 := "unordered(" + nalquery.QueryQ1Grouping + ")"
	for _, size := range sizes {
		eng := nalquery.NewEngine()
		eng.LoadUseCaseDocuments(size, 5)
		q, err := eng.Compile(unorderedQ1)
		if err != nil {
			return nil, err
		}
		for _, p := range q.Plans() {
			if p.Name == "nested" {
				continue
			}
			if _, _, err := q.Execute(p.Name); err != nil { // warm-up
				return nil, err
			}
			t0 := time.Now()
			if _, _, err := q.Execute(p.Name); err != nil {
				return nil, err
			}
			out = append(out, AblationResult{Name: "unordered-family", Variant: p.Name,
				Size: size, Elapsed: time.Since(t0)})
		}
	}
	return out, nil
}

// AblationIterVsMaterialized compares the pull-based iterator engine
// against materialized evaluation on the Q1 grouping plan.
func AblationIterVsMaterialized(sizes []int) ([]AblationResult, error) {
	var out []AblationResult
	cat := schema.UseCases()
	ast, err := xquery.ParseQuery(nalquery.QueryQ1Grouping)
	if err != nil {
		return nil, err
	}
	res, err := translate.Translate(normalize.NormalizeWithCatalog(ast, cat), cat)
	if err != nil {
		return nil, err
	}
	rw := core.NewRewriter(res, cat)
	plan, _ := rw.Rewrite(res.Plan, core.StrategyGrouping)
	for _, size := range sizes {
		cfg := xmlgen.DefaultConfig(size)
		cfg.AuthorsPerBook = 5
		docs := map[string]*dom.Document{"bib.xml": xmlgen.Bib(cfg)}
		t0 := time.Now()
		plan.Eval(algebra.NewCtx(docs), nil)
		out = append(out, AblationResult{Name: "engine", Variant: "materialized",
			Size: size, Elapsed: time.Since(t0)})
		t0 = time.Now()
		algebra.DrainIter(plan, algebra.NewCtx(docs), nil)
		out = append(out, AblationResult{Name: "engine", Variant: "iterator",
			Size: size, Elapsed: time.Since(t0)})
	}
	return out, nil
}

// PrintAblations renders ablation results.
func PrintAblations(w io.Writer, rs []AblationResult) {
	fmt.Fprintln(w, "ablations")
	fmt.Fprintf(w, "%-24s%-18s%8s%14s\n", "ablation", "variant", "size", "time")
	for _, r := range rs {
		fmt.Fprintf(w, "%-24s%-18s%8d%14s\n", r.Name, r.Variant, r.Size, fmtDur(r.Elapsed))
	}
	fmt.Fprintln(w)
}
