package experiments

import (
	"context"
	"io"

	nalquery "nalquery"
)

// The prepared benchmark family pins the compile-once/run-many story of
// the Prepare/Bind surface: the same parameterized selection executed by
// (a) compiling the query text on every request — the cost profile the
// seed API forced on a serving loop, (b) preparing once and running many
// times with per-run bindings, and (c) the cached convenience path
// (Engine.Query with literal text), whose plan cache should amortize to
// within a lookup of the prepared path.

// preparedBenchQuery is the parameterized workload: a selective parametric
// predicate over the bib corpus, cheap enough that compilation cost is
// visible next to execution.
const preparedBenchQuery = `
declare variable $minyear external;
let $d1 := doc("bib.xml")
for $b1 in $d1//book
where $b1/@year > $minyear
return $b1/title`

// preparedBenchLiteral is the same query with the binding inlined — the
// text a caller without external variables would submit per request.
const preparedBenchLiteral = `
let $d1 := doc("bib.xml")
for $b1 in $d1//book
where $b1/@year > 1995
return $b1/title`

// PreparedBenchTargets measures compile-per-run vs prepare-once-run-many
// vs the cached Engine.Query convenience path at each size.
func PreparedBenchTargets(sizes []int) ([]BenchTarget, error) {
	var out []BenchTarget
	for _, size := range sizes {
		eng := nalquery.NewEngine()
		eng.LoadUseCaseDocuments(size, 2)
		prep, err := eng.Prepare(preparedBenchQuery)
		if err != nil {
			return nil, err
		}
		// Exercise the cached path once so the steady-state measurement
		// below sees the serving-loop profile, not the first-miss compile.
		if _, err := eng.Query(preparedBenchLiteral); err != nil {
			return nil, err
		}
		out = append(out,
			BenchTarget{
				Experiment: "prepared", Plan: "compile-per-run", Size: size,
				Run: func() error {
					p, err := eng.Prepare(preparedBenchQuery)
					if err != nil {
						return err
					}
					return drainPrepared(p, 1995)
				},
			},
			BenchTarget{
				Experiment: "prepared", Plan: "prepare-once", Size: size,
				Run: func() error {
					return drainPrepared(prep, 1995)
				},
			},
			BenchTarget{
				Experiment: "prepared", Plan: "cached-query", Size: size,
				Run: func() error {
					res, err := eng.RunText(context.Background(), preparedBenchLiteral)
					if err != nil {
						return err
					}
					if err := res.WriteXML(io.Discard); err != nil {
						return err
					}
					return res.Close()
				},
			},
		)
	}
	return out, nil
}

func drainPrepared(p *nalquery.Prepared, minyear int) error {
	res, err := p.Run(context.Background(), nalquery.Bind("minyear", minyear))
	if err != nil {
		return err
	}
	if err := res.WriteXML(io.Discard); err != nil {
		return err
	}
	return res.Close()
}
