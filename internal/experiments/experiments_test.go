package experiments

import (
	"sort"
	"strings"
	"testing"

	nalquery "nalquery"
	"nalquery/internal/algebra"
	"nalquery/internal/core"
	"nalquery/internal/dom"
	"nalquery/internal/normalize"
	"nalquery/internal/schema"
	"nalquery/internal/translate"
	"nalquery/internal/xmlgen"
	"nalquery/internal/xquery"
)

func TestAllExperimentsRunSmall(t *testing.T) {
	for _, exp := range All() {
		ms, err := Run(exp, Options{Sizes: []int{60}})
		if err != nil {
			t.Fatalf("%s: %v", exp.ID, err)
		}
		if len(ms) < 2 {
			t.Fatalf("%s: expected several plans, got %d", exp.ID, len(ms))
		}
		// The nested plan must be present and must not be the fastest label
		// set; every plan produced output of identical length.
		var nested, best Measurement
		for _, m := range ms {
			if m.Plan == "nested" {
				nested = m
			}
			best = m
			if m.Output == 0 && exp.ID != "q4" {
				t.Errorf("%s/%s produced no output", exp.ID, m.Plan)
			}
		}
		if nested.Plan == "" {
			t.Fatalf("%s: no nested plan", exp.ID)
		}
		if nested.Output != best.Output {
			t.Errorf("%s: output size differs: nested=%d %s=%d", exp.ID, nested.Output, best.Plan, best.Output)
		}
		if nested.Stats.NestedEvals == 0 {
			t.Errorf("%s: nested plan must perform nested-loop iterations", exp.ID)
		}
		if best.Plan != "nested" && best.Stats.NestedEvals != 0 {
			t.Errorf("%s: unnested plan %s performed nested evaluations", exp.ID, best.Plan)
		}
	}
}

func TestNestedSizeCap(t *testing.T) {
	exp, _ := Find("q6")
	ms, err := Run(exp, Options{Sizes: []int{50, 120}, MaxNestedSize: 60})
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range ms {
		if m.Plan == "nested" && m.Size > 60 {
			t.Fatalf("nested plan must be capped at 60, ran at %d", m.Size)
		}
	}
}

func TestFindUnknown(t *testing.T) {
	if _, ok := Find("nope"); ok {
		t.Fatalf("Find must reject unknown ids")
	}
	if exp, ok := Find("q3"); !ok || exp.ID != "q3" {
		t.Fatalf("Find q3 failed")
	}
}

func TestPrintTable(t *testing.T) {
	exp, _ := Find("q6")
	ms, err := Run(exp, Options{Sizes: []int{40}})
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	PrintTable(&sb, exp, ms)
	out := sb.String()
	for _, want := range []string{"q6", "nested", "grouping", "Plan"} {
		if !strings.Contains(out, want) {
			t.Errorf("table missing %q:\n%s", want, out)
		}
	}
}

func TestFig6(t *testing.T) {
	rows := Fig6([]int{50}, []int{2, 5})
	if len(rows) != 7 { // 2 bib rows + 5 other documents
		t.Fatalf("fig6 rows: %d", len(rows))
	}
	var bib2, bib5 int
	for _, r := range rows {
		if r.Bytes == 0 {
			t.Errorf("empty document %s", r.File)
		}
		if r.File == "bib.xml" && r.APB == 2 {
			bib2 = r.Bytes
		}
		if r.File == "bib.xml" && r.APB == 5 {
			bib5 = r.Bytes
		}
	}
	if bib5 <= bib2 {
		t.Errorf("more authors per book must grow the document: %d vs %d", bib2, bib5)
	}
	var sb strings.Builder
	PrintFig6(&sb, rows)
	if !strings.Contains(sb.String(), "bib.xml") {
		t.Errorf("fig6 print:\n%s", sb.String())
	}
}

func TestAblations(t *testing.T) {
	rs := AblationHashVsScanGrouping([]int{200})
	if len(rs) != 2 {
		t.Fatalf("hash-vs-scan rows: %d", len(rs))
	}
	gx, err := AblationGroupXi([]int{60})
	if err != nil || len(gx) != 3 {
		t.Fatalf("group-xi: %v %d (want grouping, group Ξ and sort+stream Ξ rows)", err, len(gx))
	}
	pd, err := AblationPushdown([]int{60})
	if err != nil || len(pd) != 2 {
		t.Fatalf("pushdown: %v %d", err, len(pd))
	}
	var sb strings.Builder
	PrintAblations(&sb, append(append(rs, gx...), pd...))
	if !strings.Contains(sb.String(), "binary-grouping") {
		t.Errorf("ablation print:\n%s", sb.String())
	}
}

// TestSortStreamXiPermutation: the paper's sort + streaming-Ξ pipeline
// produces the same author elements as the hash-bucket group-Ξ plan, as a
// multiset (the sort reorders authors, which the paper accepts: "the order
// is destroyed on authors"), and each author's titles stay in document
// order.
func TestSortStreamXiPermutation(t *testing.T) {
	cat := schema.UseCases()
	ast, err := xquery.ParseQuery(nalquery.QueryQ1Grouping)
	if err != nil {
		t.Fatal(err)
	}
	res, err := translate.Translate(normalize.NormalizeWithCatalog(ast, cat), cat)
	if err != nil {
		t.Fatal(err)
	}
	rw := core.NewRewriter(res, cat)
	xiPlan, _ := rw.Rewrite(res.Plan, core.StrategyGroupXi)
	stream := sortStreamVariant(xiPlan)
	if stream == nil {
		t.Fatal("group-Ξ plan does not have XiGroup at the root")
	}
	cfg := xmlgen.DefaultConfig(50)
	cfg.AuthorsPerBook = 3
	docs := map[string]*dom.Document{"bib.xml": xmlgen.Bib(cfg)}

	ctx1 := algebra.NewCtx(docs)
	xiPlan.Eval(ctx1, nil)
	ctx2 := algebra.NewCtx(docs)
	stream.Eval(ctx2, nil)

	split := func(s string) []string {
		var out []string
		for _, f := range strings.SplitAfter(s, "</author>") {
			if f = strings.TrimSpace(f); f != "" {
				out = append(out, f)
			}
		}
		sort.Strings(out)
		return out
	}
	a, b := split(ctx1.OutString()), split(ctx2.OutString())
	if len(a) == 0 || len(a) != len(b) {
		t.Fatalf("fragment counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("fragment %d differs:\n%s\nvs\n%s", i, a[i], b[i])
		}
	}
}
