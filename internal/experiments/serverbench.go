package experiments

import (
	"fmt"
	"io"
	"log"
	"net/http"
	"net/http/httptest"
	"strings"

	nalquery "nalquery"
	"nalquery/internal/server"
)

// The server benchmark family measures the full HTTP serving stack —
// handler dispatch, admission control, deadline plumbing, engine run and
// response streaming — without sockets, via the in-process handler. Two
// shapes bracket the serving cost: ad-hoc text on /query (plan-cache hit
// per request) and a named statement on /prepared/{name} (bind-and-run,
// the steady-state serving-loop profile).

// serverBenchQuery streams titles from the bib corpus: cheap enough that
// the per-request HTTP and admission overhead is visible in the profile.
const serverBenchQuery = `
let $d1 := doc("bib.xml")
for $t1 in $d1//book/title
return <t>{ $t1 }</t>`

// ServerBenchTargets measures the HTTP serving pipeline at each size.
func ServerBenchTargets(sizes []int) ([]BenchTarget, error) {
	var out []BenchTarget
	for _, size := range sizes {
		eng := nalquery.NewEngine()
		eng.LoadUseCaseDocuments(size, 2)
		srv := server.New(eng, server.Config{MaxInFlight: 8, MaxQueue: 64}, log.New(io.Discard, "", 0))
		if err := srv.RegisterPrepared("titles", serverBenchQuery); err != nil {
			return nil, err
		}
		h := srv.Handler()
		do := func(target, body string) error {
			req := httptest.NewRequest(http.MethodPost, target, strings.NewReader(body))
			rec := httptest.NewRecorder()
			h.ServeHTTP(rec, req)
			if rec.Code != http.StatusOK {
				return fmt.Errorf("status %d: %s", rec.Code, rec.Body.String())
			}
			return nil
		}
		out = append(out,
			BenchTarget{
				Experiment: "server", Plan: "http-query", Size: size,
				Run: func() error { return do("/query", serverBenchQuery) },
			},
			BenchTarget{
				Experiment: "server", Plan: "http-prepared", Size: size,
				Run: func() error { return do("/prepared/titles", "") },
			},
		)
	}
	return out, nil
}
