package experiments

import (
	"context"
	"io"

	nalquery "nalquery"
)

// The resource benchmark family pins the cost of per-run resource
// governance on the breaker-heavy Q1 grouping workload: the default
// no-budget path (one nil check per materialization point — this plan must
// stay within noise of the resultiter/writexml baseline, which is how the
// -diff gate catches the disabled budget growing a real cost) and the same
// run with a generous budget attached (accounting live at every breaker
// drain, dedup insert and Ξ emission, never tripping).

// ResourceBenchTargets measures the budget-disabled and budget-enabled
// serialization paths over the Q1 grouping workload at each size.
func ResourceBenchTargets(sizes []int) ([]BenchTarget, error) {
	var out []BenchTarget
	for _, size := range sizes {
		eng := nalquery.NewEngine()
		eng.LoadUseCaseDocuments(size, 2)
		q, err := eng.Compile(nalquery.QueryQ1Grouping)
		if err != nil {
			return nil, err
		}
		run := func(opts ...nalquery.RunOption) error {
			res, err := q.Run(context.Background(), opts...)
			if err != nil {
				return err
			}
			if err := res.WriteXML(io.Discard); err != nil {
				return err
			}
			return res.Close()
		}
		out = append(out,
			BenchTarget{
				Experiment: "resource", Plan: "no-budget", Size: size,
				Run: func() error { return run() },
			},
			BenchTarget{
				Experiment: "resource", Plan: "budgeted", Size: size,
				Run: func() error { return run(nalquery.WithMaxMemory(1 << 30)) },
			},
		)
	}
	return out, nil
}
