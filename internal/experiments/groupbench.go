package experiments

import (
	nalquery "nalquery"
	"nalquery/internal/algebra"
	"nalquery/internal/value"
)

// The grouping benchmark family pins the cost of the nested data model —
// the RowSeq group payloads that Γ builds and µ consumes — the way the
// joins family pins the partitioned operators. It measures the Γ→µ
// roundtrip (payload construction plus unnesting, the allocation profile
// of every grouping plan alternative), unary against binary grouping over
// the same workload, and the quantifier plan alternatives of the paper's
// existential/universal queries.

// GroupingFamilyPlans returns the algebraic grouping workloads over the
// bids/items documents: unary Γ (group bids by item), binary Γ (nest-join
// items with their bids), and the Γ→µ roundtrip that rebuilds the flat
// sequence from the groups.
func GroupingFamilyPlans() []NamedPlan {
	bids, items := joinFamilyInputs()
	unary := algebra.GroupUnary{In: bids, G: "g", By: []string{"i1"},
		Theta: value.CmpEq, F: algebra.SFIdent{}}
	binary := algebra.GroupBinary{L: items, R: bids, G: "g",
		LAttrs: []string{"i2"}, RAttrs: []string{"i1"},
		Theta: value.CmpEq, F: algebra.SFIdent{}}
	roundtrip := algebra.Unnest{In: unary, Attr: "g"}
	return []NamedPlan{
		{Name: "unary-gamma", Op: unary},
		{Name: "binary-gamma", Op: binary},
		{Name: "gamma-mu-roundtrip", Op: roundtrip},
	}
}

// GroupingBenchTargets returns the grouping family as benchmark targets:
// the algebraic Γ/µ workloads plus the quantifier plan alternatives of the
// existential (Q4) and universal (Q5) paper queries.
func GroupingBenchTargets(sizes []int) ([]BenchTarget, error) {
	var out []BenchTarget
	for _, size := range sizes {
		docs := JoinFamilyDocs(size)
		for _, p := range GroupingFamilyPlans() {
			op := p.Op
			out = append(out, BenchTarget{
				Experiment: "grouping", Plan: p.Name, Size: size,
				Run: func() error {
					algebra.DrainIter(op, algebra.NewCtx(docs), nil)
					return nil
				},
			})
		}
		// The quantifier plans: the unnested alternatives the equivalences
		// derive from ∃/∀ (the nested baseline is covered — and capped — by
		// the per-query tables).
		for _, qp := range []struct{ query, plan, label string }{
			{nalquery.QueryQ4Exists, "semijoin", "quantifier-exists-semijoin"},
			{nalquery.QueryQ5Universal, "anti-semijoin", "quantifier-forall-antisemijoin"},
		} {
			eng := nalquery.NewEngine()
			eng.LoadUseCaseDocuments(size, 2)
			q, err := eng.Compile(qp.query)
			if err != nil {
				return nil, err
			}
			query, plan := q, qp.plan
			out = append(out, BenchTarget{
				Experiment: "grouping", Plan: qp.label, Size: size,
				Run: func() error {
					_, _, err := query.Execute(plan)
					return err
				},
			})
		}
	}
	return out, nil
}
