package experiments

import (
	"strings"
	"testing"
)

// Row-shape tests for the ablation families added beyond the paper's
// tables.

// TestAblationGraceJoinRows: three physical join strategies per size.
func TestAblationGraceJoinRows(t *testing.T) {
	rs := AblationGraceJoin([]int{60})
	if len(rs) != 3 {
		t.Fatalf("got %d rows, want 3 (probe-order, grace+sort, claussen)", len(rs))
	}
	variants := map[string]bool{}
	for _, r := range rs {
		variants[r.Variant] = true
		if r.Elapsed <= 0 {
			t.Errorf("variant %s: non-positive elapsed time", r.Variant)
		}
	}
	for _, want := range []string{"probe-order-hash", "grace+sort", "claussen-ophj"} {
		if !variants[want] {
			t.Errorf("missing variant %q; have %v", want, variants)
		}
	}
}

// TestAblationUnorderedRows: the unordered family runs both the ordered and
// unordered variants of every unnested Q1 plan.
func TestAblationUnorderedRows(t *testing.T) {
	rs, err := AblationUnordered([]int{40})
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) < 4 {
		t.Fatalf("got %d rows, want at least ordered+unordered pairs", len(rs))
	}
	unordered := 0
	for _, r := range rs {
		if r.Variant == "nested" {
			t.Errorf("nested must be excluded from the unordered ablation")
		}
		if strings.HasPrefix(r.Variant, "unordered ") {
			unordered++
		}
	}
	if unordered == 0 {
		t.Errorf("no unordered variants measured: %+v", rs)
	}
}

// TestAblationPrintIncludesNewFamilies: the printer renders the new rows.
func TestAblationPrintIncludesNewFamilies(t *testing.T) {
	rs := AblationGraceJoin([]int{40})
	rs2, err := AblationUnordered([]int{40})
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	PrintAblations(&sb, append(rs, rs2...))
	out := sb.String()
	for _, want := range []string{"order-preserving-join", "claussen-ophj", "unordered-family"} {
		if !strings.Contains(out, want) {
			t.Errorf("printout missing %q:\n%s", want, out)
		}
	}
}
