package experiments

import (
	"fmt"
	"strings"

	nalquery "nalquery"
)

// The index benchmark family pins the payoff of the statistics/index
// subsystem on the selective workload it exists for: one bib.xml year out
// of many. Three trajectories per size — the full-scan base plan, the
// index-substituted alternative (a value-index probe), and the automatic
// choice (which the measured cost model must land on the index plan; the
// -diff gate catches both a slowed probe and an automatic choice drifting
// back onto the scan's allocation profile).

// IndexQuerySelective is the selective scan the value index answers with a
// probe: books of a single year.
const IndexQuerySelective = `
let $d := doc("bib.xml")
for $b in $d//book
where $b/@year = 1999
return $b/title`

// IndexBenchTargets measures the full-scan, index-scan, and auto-chosen
// plans of the selective query at each size.
func IndexBenchTargets(sizes []int) ([]BenchTarget, error) {
	var out []BenchTarget
	for _, size := range sizes {
		eng := nalquery.NewEngine()
		eng.LoadUseCaseDocuments(size, 2)
		q, err := eng.Compile(IndexQuerySelective)
		if err != nil {
			return nil, err
		}
		indexed := ""
		for _, p := range q.Plans() {
			if strings.HasPrefix(p.Name, "indexed ") {
				indexed = p.Name
				break
			}
		}
		if indexed == "" {
			return nil, fmt.Errorf("index: no indexed plan alternative for the selective query")
		}
		base := strings.TrimPrefix(indexed, "indexed ")
		exec := func(plan string) func() error {
			return func() error {
				_, _, err := q.Execute(plan)
				return err
			}
		}
		out = append(out,
			BenchTarget{Experiment: "index", Plan: "full-scan", Size: size, Run: exec(base)},
			BenchTarget{Experiment: "index", Plan: "index-scan", Size: size, Run: exec(indexed)},
			BenchTarget{Experiment: "index", Plan: "auto", Size: size, Run: exec("")},
		)
	}
	return out, nil
}
