package experiments

import "testing"

// TestExperimentsSlotVsReference runs every plan of every experiment on the
// slot-based engine (Execute) and the map-based reference evaluator
// (ExecuteReference) and requires byte-identical constructed output — the
// harness-level counterpart of the algebra's row/map differential tests.
func TestExperimentsSlotVsReference(t *testing.T) {
	for _, exp := range All() {
		eng := NewEngine(exp, 30, 2)
		q, err := eng.Compile(exp.Query)
		if err != nil {
			t.Fatalf("%s: %v", exp.ID, err)
		}
		for _, p := range q.Plans() {
			ref, _, err := q.ExecuteReference(p.Name)
			if err != nil {
				t.Fatalf("%s/%s reference: %v", exp.ID, p.Name, err)
			}
			got, _, err := q.Execute(p.Name)
			if err != nil {
				t.Fatalf("%s/%s: %v", exp.ID, p.Name, err)
			}
			if ref != got {
				t.Errorf("%s/%s: slot output differs from reference\nref:  %.160s\nslot: %.160s",
					exp.ID, p.Name, ref, got)
			}
		}
	}
}
