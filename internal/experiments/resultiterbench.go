package experiments

import (
	"context"
	"io"

	nalquery "nalquery"
)

// The resultiter benchmark family pins the cost of the public Results
// surface the way the joins family pins the partitioned operators: full
// serialization through Results.WriteXML (the path behind the deprecated
// Execute), typed item consumption (Next loop, no serialization), and the
// serialization path under a live cancellable context — the overhead of
// the engine's cancellation guards, which must stay within noise of the
// uncancellable run.

// ResultIterBenchTargets measures the Run/Results consumption modes over
// the Q1 grouping workload at each size.
func ResultIterBenchTargets(sizes []int) ([]BenchTarget, error) {
	var out []BenchTarget
	for _, size := range sizes {
		eng := nalquery.NewEngine()
		eng.LoadUseCaseDocuments(size, 2)
		q, err := eng.Compile(nalquery.QueryQ1Grouping)
		if err != nil {
			return nil, err
		}
		out = append(out,
			BenchTarget{
				Experiment: "resultiter", Plan: "writexml", Size: size,
				Run: func() error {
					res, err := q.Run(context.Background())
					if err != nil {
						return err
					}
					if err := res.WriteXML(io.Discard); err != nil {
						return err
					}
					return res.Close()
				},
			},
			BenchTarget{
				Experiment: "resultiter", Plan: "typed-items", Size: size,
				Run: func() error {
					res, err := q.Run(context.Background())
					if err != nil {
						return err
					}
					for {
						if _, ok := res.Next(); !ok {
							break
						}
					}
					if err := res.Err(); err != nil {
						return err
					}
					return res.Close()
				},
			},
			BenchTarget{
				Experiment: "resultiter", Plan: "cancellable-writexml", Size: size,
				Run: func() error {
					ctx, cancel := context.WithCancel(context.Background())
					defer cancel()
					res, err := q.Run(ctx)
					if err != nil {
						return err
					}
					if err := res.WriteXML(io.Discard); err != nil {
						return err
					}
					return res.Close()
				},
			},
		)
	}
	return out, nil
}
