// Package experiments regenerates every table and figure of the paper's
// evaluation (Sec. 5 and Fig. 6). Each experiment builds the synthetic
// documents of the corresponding measurement point, compiles the paper's
// query, executes every plan alternative and reports wall-clock time plus
// the scan counters (document accesses and nested-loop iterations) that
// explain the paper's analysis.
package experiments

import (
	"fmt"
	"io"
	"sort"
	"time"

	nalquery "nalquery"
	"nalquery/internal/dom"
	"nalquery/internal/xmlgen"
)

// Experiment describes one evaluation table of the paper.
type Experiment struct {
	// ID is the short id used by the bench harness (q1, q1dblp, q2 ... q6).
	ID string
	// Title cites the paper's section and query.
	Title string
	// Query is the XQuery text.
	Query string
	// VaryAuthors is true for Q1, which varies authors-per-book (2, 5, 10).
	VaryAuthors bool
	// DBLP is true for the DBLP-like document experiment.
	DBLP bool
	// DefaultSizes are the paper's measurement points.
	DefaultSizes []int
}

// All returns the experiments in paper order.
func All() []Experiment {
	return []Experiment{
		{ID: "q1", Title: "Sec. 5.1, Query 1.1.9.4 (Grouping)", Query: nalquery.QueryQ1Grouping,
			VaryAuthors: true, DefaultSizes: []int{100, 1000, 10000}},
		{ID: "q1dblp", Title: "Sec. 5.1, DBLP document (Eqv. 5 inadmissible)", Query: nalquery.QueryQ1DBLP,
			DBLP: true, DefaultSizes: []int{100, 1000, 10000}},
		{ID: "q2", Title: "Sec. 5.2, Query 1.1.9.10 (Aggregation)", Query: nalquery.QueryQ2Aggregation,
			DefaultSizes: []int{100, 1000, 10000}},
		{ID: "q3", Title: "Sec. 5.3, Query 1.1.9.5 (Existential Quantification I)", Query: nalquery.QueryQ3Existential,
			DefaultSizes: []int{100, 1000, 10000}},
		{ID: "q4", Title: "Sec. 5.4, Existential Quantification II (exists)", Query: nalquery.QueryQ4Exists,
			DefaultSizes: []int{100, 1000, 10000}},
		{ID: "q5", Title: "Sec. 5.5, Universal Quantification", Query: nalquery.QueryQ5Universal,
			DefaultSizes: []int{100, 1000, 10000}},
		{ID: "q6", Title: "Sec. 5.6, Query 1.4.4.14 (Aggregation in the Where Clause)", Query: nalquery.QueryQ6HavingCount,
			DefaultSizes: []int{100, 1000, 10000}},
	}
}

// Find returns the experiment with the given id.
func Find(id string) (Experiment, bool) {
	for _, e := range All() {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

// Measurement is one (plan, size, authors-per-book) timing.
type Measurement struct {
	Exp     string
	Plan    string
	Size    int
	APB     int // authors per book; 0 when not varied
	Elapsed time.Duration
	Stats   nalquery.Stats
	Output  int // bytes of constructed result
}

// Options control a run.
type Options struct {
	// Sizes overrides the experiment's default measurement points.
	Sizes []int
	// MaxNestedSize caps the document size at which the quadratic nested
	// plan is still executed (it needs ~8 minutes at 10000 books — the
	// paper's own nested numbers are in the hundreds of seconds). 0 means
	// no cap.
	MaxNestedSize int
	// AuthorsPerBook overrides the varied group sizes for Q1.
	AuthorsPerBook []int
	// Repeat averages over this many runs (default 1).
	Repeat int
}

func (o Options) repeat() int {
	if o.Repeat < 1 {
		return 1
	}
	return o.Repeat
}

// NewEngine builds an engine loaded with the documents of one measurement
// point of the experiment.
func NewEngine(exp Experiment, size, apb int) *nalquery.Engine {
	e := nalquery.NewEngine()
	if exp.DBLP {
		e.LoadDBLPDocument(size)
		return e
	}
	if apb == 0 {
		apb = 2
	}
	e.LoadUseCaseDocuments(size, apb)
	return e
}

// Run executes one experiment and returns its measurements.
func Run(exp Experiment, opts Options) ([]Measurement, error) {
	sizes := opts.Sizes
	if len(sizes) == 0 {
		sizes = exp.DefaultSizes
	}
	apbs := []int{0}
	if exp.VaryAuthors {
		apbs = opts.AuthorsPerBook
		if len(apbs) == 0 {
			apbs = []int{2, 5, 10}
		}
	}
	var out []Measurement
	for _, apb := range apbs {
		for _, size := range sizes {
			eng := NewEngine(exp, size, apb)
			q, err := eng.Compile(exp.Query)
			if err != nil {
				return nil, fmt.Errorf("%s: %w", exp.ID, err)
			}
			for _, p := range q.Plans() {
				if p.Name == "nested" && opts.MaxNestedSize > 0 && size > opts.MaxNestedSize {
					continue
				}
				var total time.Duration
				var stats nalquery.Stats
				var outLen int
				for r := 0; r < opts.repeat(); r++ {
					t0 := time.Now()
					res, st, err := q.Execute(p.Name)
					if err != nil {
						return nil, fmt.Errorf("%s/%s: %w", exp.ID, p.Name, err)
					}
					total += time.Since(t0)
					stats = st
					outLen = len(res)
				}
				out = append(out, Measurement{
					Exp: exp.ID, Plan: p.Name, Size: size, APB: apb,
					Elapsed: total / time.Duration(opts.repeat()),
					Stats:   stats, Output: outLen,
				})
			}
		}
	}
	return out, nil
}

// PrintTable renders measurements in the layout of the paper's evaluation
// tables: one row per plan (and per authors-per-book setting for Q1), one
// column per document size.
func PrintTable(w io.Writer, exp Experiment, ms []Measurement) {
	fmt.Fprintf(w, "%s — %s\n", exp.ID, exp.Title)

	sizeSet := map[int]bool{}
	type rowKey struct {
		plan string
		apb  int
	}
	rows := map[rowKey]map[int]Measurement{}
	var order []rowKey
	for _, m := range ms {
		sizeSet[m.Size] = true
		k := rowKey{m.Plan, m.APB}
		if _, ok := rows[k]; !ok {
			rows[k] = map[int]Measurement{}
			order = append(order, k)
		}
		rows[k][m.Size] = m
	}
	var sizes []int
	for s := range sizeSet {
		sizes = append(sizes, s)
	}
	sort.Ints(sizes)

	fmt.Fprintf(w, "%-16s", "Plan")
	if exp.VaryAuthors {
		fmt.Fprintf(w, "%-10s", "auth/book")
	}
	for _, s := range sizes {
		fmt.Fprintf(w, "%12d", s)
	}
	fmt.Fprintf(w, "%14s\n", "scans@max")
	for _, k := range order {
		fmt.Fprintf(w, "%-16s", k.plan)
		if exp.VaryAuthors {
			fmt.Fprintf(w, "%-10d", k.apb)
		}
		var last Measurement
		for _, s := range sizes {
			m, ok := rows[k][s]
			if !ok {
				fmt.Fprintf(w, "%12s", "—")
				continue
			}
			fmt.Fprintf(w, "%12s", fmtDur(m.Elapsed))
			last = m
		}
		fmt.Fprintf(w, "%14d\n", last.Stats.DocAccesses)
	}
	fmt.Fprintln(w)
}

func fmtDur(d time.Duration) string {
	switch {
	case d >= time.Second:
		return fmt.Sprintf("%.2fs", d.Seconds())
	case d >= time.Millisecond:
		return fmt.Sprintf("%.2fms", float64(d.Microseconds())/1000)
	default:
		return fmt.Sprintf("%dµs", d.Microseconds())
	}
}

// Fig6Row is one row of the document-size table (Fig. 6).
type Fig6Row struct {
	File  string
	Size  int // element count parameter
	APB   int // authors per book for bib.xml, 0 otherwise
	Bytes int
}

// Fig6 regenerates the document-size figure: the serialized size of every
// use-case document at each measurement point.
func Fig6(sizes []int, apbs []int) []Fig6Row {
	if len(sizes) == 0 {
		sizes = []int{100, 1000, 10000}
	}
	if len(apbs) == 0 {
		apbs = []int{2, 5, 10}
	}
	var rows []Fig6Row
	for _, size := range sizes {
		for _, apb := range apbs {
			cfg := xmlgen.DefaultConfig(size)
			cfg.AuthorsPerBook = apb
			rows = append(rows, Fig6Row{File: "bib.xml", Size: size, APB: apb,
				Bytes: len(dom.XMLString(xmlgen.Bib(cfg).RootElement()))})
		}
		cfg := xmlgen.DefaultConfig(size)
		for _, gen := range []struct {
			name string
			doc  *dom.Document
		}{
			{"prices.xml", xmlgen.Prices(cfg)},
			{"reviews.xml", xmlgen.Reviews(cfg)},
			{"bids.xml", xmlgen.Bids(cfg)},
			{"items.xml", xmlgen.Items(cfg)},
			{"users.xml", xmlgen.Users(cfg)},
		} {
			rows = append(rows, Fig6Row{File: gen.name, Size: size,
				Bytes: len(dom.XMLString(gen.doc.RootElement()))})
		}
	}
	return rows
}

// PrintFig6 renders the document-size table.
func PrintFig6(w io.Writer, rows []Fig6Row) {
	fmt.Fprintln(w, "fig6 — Fig. 6 (size of the input documents)")
	fmt.Fprintf(w, "%-14s%-8s%-10s%12s\n", "file", "size", "auth/book", "bytes")
	for _, r := range rows {
		apb := "-"
		if r.APB > 0 {
			apb = fmt.Sprintf("%d", r.APB)
		}
		fmt.Fprintf(w, "%-14s%-8d%-10s%12d\n", r.File, r.Size, apb, r.Bytes)
	}
	fmt.Fprintln(w)
}
