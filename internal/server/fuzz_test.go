package server

import (
	"encoding/json"
	"io"
	"log"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"sync"
	"testing"

	nalquery "nalquery"
)

// fuzzHandler is one in-process handler shared by the HTTP fuzz pass: the
// server is race-safe and stateless across requests, so every iteration can
// hit the same instance without cross-talk.
var fuzzHandler = sync.OnceValue(func() http.Handler {
	eng := nalquery.NewEngine()
	eng.LoadUseCaseDocuments(4, 2)
	srv := New(eng, Config{MaxBodyBytes: 1 << 16, SpillBytes: 1 << 12}, log.New(io.Discard, "", 0))
	return srv.Handler()
})

// wellFormedResponse asserts the server's response contract on any single
// request: a 2xx stream, or a JSON error envelope with a non-empty kind.
// Anything else — HTML error pages, empty bodies on errors, a 500 from a
// handler panic — is a robustness bug.
func wellFormedResponse(t *testing.T, rec *httptest.ResponseRecorder, desc string) {
	t.Helper()
	code := rec.Code
	if code >= 200 && code < 300 {
		return
	}
	if (code == http.StatusNotFound || code == http.StatusMethodNotAllowed) &&
		!strings.Contains(rec.Header().Get("Content-Type"), "json") {
		// Unrouted paths/methods are answered by net/http's mux, not by us.
		return
	}
	var eb errorBody
	if err := json.Unmarshal(rec.Body.Bytes(), &eb); err != nil {
		t.Fatalf("%s: status %d with non-JSON error body %q: %v", desc, code, rec.Body.String(), err)
	}
	if eb.Kind == "" {
		t.Fatalf("%s: status %d error envelope missing kind: %q", desc, code, rec.Body.String())
	}
	if code == http.StatusInternalServerError && eb.Kind == "panic" {
		t.Fatalf("%s: handler panicked: %q", desc, rec.Body.String())
	}
}

// TestMalformedRequestSweep drives malformed bodies, headers, and query
// parameters at every endpoint. It is the deterministic, always-on subset
// of FuzzHTTPQuery.
func TestMalformedRequestSweep(t *testing.T) {
	h := fuzzHandler()
	cases := []struct {
		name    string
		method  string
		target  string
		body    string
		headers map[string]string
	}{
		{name: "empty body", method: "POST", target: "/query", body: ""},
		{name: "whitespace body", method: "POST", target: "/query", body: "   \n\t "},
		{name: "binary body", method: "POST", target: "/query", body: "\x00\xff\xfe\x01PK\x03\x04"},
		{name: "truncated query", method: "POST", target: "/query", body: "for $x in"},
		{name: "unterminated string", method: "POST", target: "/query", body: `let $s := "oops`},
		{name: "deep nesting", method: "POST", target: "/query", body: strings.Repeat("(", 10000)},
		{name: "huge body", method: "POST", target: "/query", body: strings.Repeat("x", 1<<17)},
		{name: "bad timeout header", method: "POST", target: "/query", body: "1",
			headers: map[string]string{"X-Nalquery-Timeout": "not-a-duration"}},
		{name: "negative timeout", method: "POST", target: "/query?timeout=-5s", body: "1"},
		{name: "bad memory header", method: "POST", target: "/query", body: "1",
			headers: map[string]string{"X-Nalquery-Max-Memory": "lots"}},
		{name: "bad var", method: "POST", target: "/query?var=oops", body: "1"},
		{name: "var with empty name", method: "POST", target: "/query?var==3", body: "1"},
		{name: "unknown plan", method: "POST", target: "/query?plan=%00",
			body: `for $b in doc("bib.xml")//book return $b/title`},
		{name: "unknown format", method: "POST", target: "/query?format=yaml",
			body: `for $b in doc("bib.xml")//book return $b/title`},
		{name: "escaped junk in format", method: "POST", target: "/query?format=%22%3E%3Cscript%3E",
			body: `for $b in doc("bib.xml")//book return $b/title`},
		{name: "query on prepared path", method: "POST", target: "/prepared/%2e%2e%2f%2e%2e", body: "1"},
		{name: "put bad prepared", method: "PUT", target: "/prepared/x", body: "for $x in"},
		{name: "delete missing prepared", method: "DELETE", target: "/prepared/ghost", body: ""},
		{name: "run missing prepared", method: "POST", target: "/prepared/ghost", body: ""},
		{name: "bad document body", method: "POST", target: "/documents/d.xml", body: "<unclosed"},
		{name: "document with null uri", method: "POST", target: "/documents/%00", body: "<a/>"},
		{name: "gen bad size", method: "POST", target: "/gen?size=banana", body: ""},
		{name: "gen negative size", method: "POST", target: "/gen?size=-4", body: ""},
		{name: "wrong method", method: "PATCH", target: "/query", body: "1"},
		{name: "unrouted path", method: "GET", target: "/nope", body: ""},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			req := httptest.NewRequest(tc.method, tc.target, strings.NewReader(tc.body))
			for k, v := range tc.headers {
				req.Header.Set(k, v)
			}
			rec := httptest.NewRecorder()
			h.ServeHTTP(rec, req)
			wellFormedResponse(t, rec, tc.name)
		})
	}
}

// FuzzHTTPQuery fuzzes the ad-hoc query endpoint over body, query
// parameters, and the two request-scoped headers at once: whatever the
// combination, the server must answer a 2xx stream or a JSON error
// envelope — never panic, never an unrouted half-response.
func FuzzHTTPQuery(f *testing.F) {
	f.Add(`for $b in doc("bib.xml")//book return $b/title`, "plan=nested&format=xml", "2s", "1m")
	f.Add("", "", "", "")
	f.Add("for $x in", "var=x=1&var=y", "not-a-duration", "lots")
	f.Add("\x00", "format=json", "-1ns", "-5")
	f.Add(`let $s := "`, "plan=%00&timeout=banana", "", "9999999999999g")
	f.Fuzz(func(t *testing.T, body, rawQuery, timeout, maxMemory string) {
		// Re-encode through url.Values: the fuzzed string keeps its
		// parameter structure where it has one, but becomes a legal
		// request-target either way (httptest.NewRequest panics on raw
		// spaces or control bytes in the target — a harness limit, not a
		// server property; the server only ever sees parsed URLs).
		if vals, err := url.ParseQuery(rawQuery); err == nil {
			rawQuery = vals.Encode()
		} else {
			rawQuery = url.Values{"q": {rawQuery}}.Encode()
		}
		req := httptest.NewRequest("POST", "/query?"+rawQuery, strings.NewReader(body))
		if timeout != "" {
			req.Header.Set("X-Nalquery-Timeout", timeout)
		}
		if maxMemory != "" {
			req.Header.Set("X-Nalquery-Max-Memory", maxMemory)
		}
		rec := httptest.NewRecorder()
		fuzzHandler().ServeHTTP(rec, req)
		wellFormedResponse(t, rec, "POST /query")
	})
}
