package server

// Black-box end-to-end tests of the query service: everything goes through
// a real HTTP listener (httptest.NewServer) against the public handler —
// the robustness contract of nalserved, pinned under -race by CI.

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	nalquery "nalquery"
)

// slowQuery is the paper's Q1 whose "nested" plan is quadratic: at corpus
// size 200 it runs for ~150ms+, long enough to hold admission slots while
// a burst arrives; at 500 it runs for ~1s+, long enough that a tight
// deadline always expires first.
const slowQuery = nalquery.QueryQ1Grouping

// titlesQuery is a cheap streaming query over the same corpus.
const titlesQuery = `
let $d1 := doc("bib.xml")
for $t1 in $d1//book/title
return <t>{ $t1 }</t>`

func newTestServer(t *testing.T, size int, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	eng := nalquery.NewEngine()
	eng.LoadUseCaseDocuments(size, 2)
	srv := New(eng, cfg, log.New(io.Discard, "", 0))
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return srv, ts
}

// post sends a query and returns status, body and the response header.
func post(t *testing.T, url, body string) (int, string, http.Header) {
	t.Helper()
	resp, err := http.Post(url, "application/xquery", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read body: %v", err)
	}
	return resp.StatusCode, string(b), resp.Header
}

// errKind decodes the JSON error envelope's kind.
func errKind(t *testing.T, body string) string {
	t.Helper()
	var e struct {
		Kind string `json:"kind"`
	}
	if err := json.Unmarshal([]byte(body), &e); err != nil {
		t.Fatalf("error body is not the JSON envelope: %q (%v)", body, err)
	}
	return e.Kind
}

func TestQueryEndToEnd(t *testing.T) {
	srv, ts := newTestServer(t, 50, Config{})
	code, body, hdr := post(t, ts.URL+"/query", titlesQuery)
	if code != http.StatusOK {
		t.Fatalf("status %d, body %s", code, body)
	}
	if ct := hdr.Get("Content-Type"); !strings.HasPrefix(ct, "application/xml") {
		t.Fatalf("content-type %q", ct)
	}
	want, err := srv.Engine().Query(titlesQuery)
	if err != nil {
		t.Fatal(err)
	}
	if body != want {
		t.Fatalf("HTTP result differs from the library result:\nhttp: %.120s\nlib:  %.120s", body, want)
	}
	// Repeated traffic hits the plan cache; the result stays identical.
	if code2, body2, _ := post(t, ts.URL+"/query", titlesQuery); code2 != 200 || body2 != want {
		t.Fatalf("second run: status %d", code2)
	}
}

func TestQueryNDJSONFormat(t *testing.T) {
	_, ts := newTestServer(t, 30, Config{})
	code, body, hdr := post(t, ts.URL+"/query?format=json", titlesQuery)
	if code != http.StatusOK {
		t.Fatalf("status %d, body %s", code, body)
	}
	if ct := hdr.Get("Content-Type"); !strings.HasPrefix(ct, "application/x-ndjson") {
		t.Fatalf("content-type %q", ct)
	}
	var markup, values int
	var xml strings.Builder
	sc := bufio.NewScanner(strings.NewReader(body))
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		var item struct {
			Kind, XML, Error string
		}
		if err := json.Unmarshal(sc.Bytes(), &item); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
		}
		switch item.Kind {
		case "markup":
			markup++
		case "value":
			values++
		case "error":
			t.Fatalf("stream ended with error line: %s", item.Error)
		}
		xml.WriteString(item.XML)
	}
	if markup == 0 || values == 0 {
		t.Fatalf("expected both markup and value items, got %d/%d", markup, values)
	}
	codeX, bodyX, _ := post(t, ts.URL+"/query", titlesQuery)
	if codeX != 200 || xml.String() != bodyX {
		t.Fatalf("concatenated NDJSON XML differs from the XML response")
	}
}

func TestBadRequestsAnswerTyped(t *testing.T) {
	_, ts := newTestServer(t, 30, Config{})
	cases := []struct {
		name, url, body string
		wantCode        int
		wantKind        string
	}{
		{"parse error", "/query", "for $x in ((( return $x", 400, "parse"},
		{"empty body", "/query", "   ", 400, "request"},
		{"unknown plan", "/query?plan=warp-drive", titlesQuery, 400, "plan"},
		{"bad timeout", "/query?timeout=fast", titlesQuery, 400, "request"},
		{"bad format", "/query?format=yaml", titlesQuery, 400, "request"},
		{"unknown var", "/query?var=nope=1", titlesQuery, 400, "bind"},
	}
	for _, c := range cases {
		code, body, _ := post(t, ts.URL+c.url, c.body)
		if code != c.wantCode || errKind(t, body) != c.wantKind {
			t.Errorf("%s: got %d/%s, want %d/%s (body %s)",
				c.name, code, errKind(t, body), c.wantCode, c.wantKind, body)
		}
	}
}

func TestPreparedStatements(t *testing.T) {
	_, ts := newTestServer(t, 50, Config{})
	stmt := `declare variable $minyear external;
let $d1 := doc("bib.xml")
for $b1 in $d1//book
where $b1/@year > $minyear
return $b1/title`

	req, _ := http.NewRequest(http.MethodPut, ts.URL+"/prepared/recent", strings.NewReader(stmt))
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	var reg struct {
		Name string   `json:"name"`
		Vars []string `json:"vars"`
	}
	json.NewDecoder(resp.Body).Decode(&reg)
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated || len(reg.Vars) != 1 || reg.Vars[0] != "minyear" {
		t.Fatalf("register: %d %+v", resp.StatusCode, reg)
	}

	code, body, _ := post(t, ts.URL+"/prepared/recent?var=minyear=1993", "")
	if code != http.StatusOK {
		t.Fatalf("run: %d %s", code, body)
	}
	// A missing binding is a 400 bind error, not a crash.
	code, body, _ = post(t, ts.URL+"/prepared/recent", "")
	if code != 400 || errKind(t, body) != "bind" {
		t.Fatalf("unbound run: %d %s", code, body)
	}
	// Unknown statement name.
	code, body, _ = post(t, ts.URL+"/prepared/ghost", "")
	if code != http.StatusNotFound {
		t.Fatalf("ghost statement: %d %s", code, body)
	}
}

func TestDocumentUpload(t *testing.T) {
	_, ts := newTestServer(t, 10, Config{})
	code, body, _ := post(t, ts.URL+"/documents/mine.xml",
		`<shelf><book><title>One</title></book><book><title>Two</title></book></shelf>`)
	if code != http.StatusCreated {
		t.Fatalf("upload: %d %s", code, body)
	}
	q := `let $d := doc("mine.xml") for $t in $d//title return <t>{ $t }</t>`
	code, body, _ = post(t, ts.URL+"/query", q)
	if code != 200 || !strings.Contains(body, "Two") {
		t.Fatalf("query over uploaded doc: %d %s", code, body)
	}
	// Malformed XML answers 400, not a crash.
	code, body, _ = post(t, ts.URL+"/documents/broken.xml", `<a><b></a>`)
	if code != 400 {
		t.Fatalf("broken upload: %d %s", code, body)
	}
}

// TestDeadlineExpiredRun pins deadline propagation into the engine: a
// quadratic plan with a tight deadline answers 504 with a typed timeout
// body — and the slot is returned (a follow-up query succeeds).
func TestDeadlineExpiredRun(t *testing.T) {
	srv, ts := newTestServer(t, 500, Config{MaxInFlight: 1, MaxQueue: -1})
	code, body, _ := post(t, ts.URL+"/query?plan=nested&timeout=50ms", slowQuery)
	if code != http.StatusGatewayTimeout || errKind(t, body) != "timeout" {
		t.Fatalf("deadline run: %d %s", code, body)
	}
	if got := srv.Stat().Timeouts; got != 1 {
		t.Fatalf("timeouts counter = %d, want 1", got)
	}
	// The slot freed: the same server immediately serves a healthy query.
	code, _, _ = post(t, ts.URL+"/query", titlesQuery)
	if code != 200 {
		t.Fatalf("query after timeout: %d", code)
	}
}

// TestDeadlineHeader drives the deadline through X-Nalquery-Timeout and a
// pre-expired wait (deadline shorter than any run) through the admission
// path.
func TestDeadlineHeader(t *testing.T) {
	_, ts := newTestServer(t, 500, Config{})
	req, _ := http.NewRequest(http.MethodPost, ts.URL+"/query?plan=nested", strings.NewReader(slowQuery))
	req.Header.Set("X-Nalquery-Timeout", "50ms")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	b, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusGatewayTimeout || errKind(t, string(b)) != "timeout" {
		t.Fatalf("header deadline: %d %s", resp.StatusCode, b)
	}
}

// TestOverloadBurst is the acceptance scenario: at in-flight cap N with
// queue N, a burst of 4N concurrent quadratic queries produces zero
// crashes, prompt 429s with Retry-After for every shed request, successful
// results for every admitted one, and balanced counters afterwards.
func TestOverloadBurst(t *testing.T) {
	const capN, queueN = 3, 3
	const burst = 4 * capN
	srv, ts := newTestServer(t, 200, Config{MaxInFlight: capN, MaxQueue: queueN})

	start := make(chan struct{})
	type outcome struct {
		code    int
		kind    string
		latency time.Duration
		retry   string
	}
	results := make(chan outcome, burst)
	var wg sync.WaitGroup
	for i := 0; i < burst; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			t0 := time.Now()
			resp, err := http.Post(ts.URL+"/query?plan=nested&timeout=30s", "application/xquery",
				strings.NewReader(slowQuery))
			if err != nil {
				results <- outcome{code: -1}
				return
			}
			b, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			o := outcome{code: resp.StatusCode, latency: time.Since(t0),
				retry: resp.Header.Get("Retry-After")}
			if resp.StatusCode != http.StatusOK {
				o.kind = errKind(t, string(b))
			}
			results <- o
		}()
	}
	close(start)
	wg.Wait()
	close(results)

	var ok, shed int
	var shedMax, okMin time.Duration
	okMin = time.Hour
	for o := range results {
		switch o.code {
		case http.StatusOK:
			ok++
			if o.latency < okMin {
				okMin = o.latency
			}
		case http.StatusTooManyRequests:
			shed++
			if o.kind != "shed" {
				t.Errorf("429 with kind %q, want shed", o.kind)
			}
			if o.retry == "" {
				t.Error("429 without Retry-After")
			}
			if o.latency > shedMax {
				shedMax = o.latency
			}
		default:
			t.Errorf("unexpected response %d (kind %s)", o.code, o.kind)
		}
	}
	// Admitted = slots + queue; everything else shed.
	if ok < capN+queueN || ok+shed != burst {
		t.Fatalf("burst outcome: %d ok, %d shed of %d", ok, shed, burst)
	}
	if shed == 0 {
		t.Fatalf("no request was shed by a 4x-cap burst")
	}
	// Shedding is prompt: a 429 never waits for a slot, so it returns well
	// before the fastest admitted run (which executes a quadratic plan).
	if shedMax >= okMin {
		t.Errorf("shed latency %v not prompt (fastest admitted run %v)", shedMax, okMin)
	}
	cnt := srv.Stat().Admission
	if cnt.Active != 0 || cnt.Queued != 0 {
		t.Fatalf("slots leaked after burst: %+v", cnt)
	}
	if cnt.Admitted != int64(ok) || cnt.Shed != int64(shed) {
		t.Fatalf("counters %+v disagree with outcomes (%d ok, %d shed)", cnt, ok, shed)
	}
	// The process is healthy after the storm.
	if code, _, _ := post(t, ts.URL+"/query", titlesQuery); code != 200 {
		t.Fatalf("query after burst: %d", code)
	}
}

// TestPanicIsolation is the poison-query property end to end: a request
// that panics inside the service answers 500 while the server keeps
// serving /healthz and real queries.
func TestPanicIsolation(t *testing.T) {
	srv, ts := newTestServer(t, 30, Config{Debug: true})
	code, body, _ := post(t, ts.URL+"/debug/panic", "")
	if code != http.StatusInternalServerError || errKind(t, body) != "internal" {
		t.Fatalf("panic probe: %d %s", code, body)
	}
	for i := 0; i < 3; i++ {
		resp, err := http.Get(ts.URL + "/healthz")
		if err != nil || resp.StatusCode != 200 {
			t.Fatalf("healthz after panic: %v %v", resp, err)
		}
		resp.Body.Close()
	}
	if code, _, _ := post(t, ts.URL+"/query", titlesQuery); code != 200 {
		t.Fatalf("query after panic: %d", code)
	}
	st := srv.Stat()
	if st.HandlerPanics != 1 {
		t.Fatalf("handler_panics = %d, want 1", st.HandlerPanics)
	}
	if st.Admission.Active != 0 {
		t.Fatalf("panic leaked an admission slot: %+v", st.Admission)
	}
}

// TestDrainGraceful pins the SIGTERM sequence: in-flight runs finish,
// readiness flips, new work is refused, health stays up.
func TestDrainGraceful(t *testing.T) {
	const capN = 3
	srv, ts := newTestServer(t, 200, Config{MaxInFlight: capN, MaxQueue: 0, DrainTimeout: 30 * time.Second})

	codes := make(chan int, capN)
	for i := 0; i < capN; i++ {
		go func() {
			code, _, _ := post(t, ts.URL+"/query?plan=nested&timeout=30s", slowQuery)
			codes <- code
		}()
	}
	// Wait until all three hold slots.
	for deadline := time.Now().Add(10 * time.Second); srv.Stat().Admission.Active < capN; {
		if time.Now().After(deadline) {
			t.Fatalf("runs never became active: %+v", srv.Stat().Admission)
		}
		time.Sleep(time.Millisecond)
	}

	drained := make(chan error, 1)
	go func() { drained <- srv.Drain(t.Context()) }()
	// Readiness flips promptly while draining.
	for deadline := time.Now().Add(5 * time.Second); ; {
		resp, err := http.Get(ts.URL + "/readyz")
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode == http.StatusServiceUnavailable {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("readyz never flipped to 503")
		}
		time.Sleep(time.Millisecond)
	}
	// New queries are refused while draining; health stays up.
	if code, body, _ := post(t, ts.URL+"/query", titlesQuery); code != http.StatusServiceUnavailable || errKind(t, body) != "draining" {
		t.Fatalf("query during drain: %d %s", code, body)
	}
	if resp, err := http.Get(ts.URL + "/healthz"); err != nil || resp.StatusCode != 200 {
		t.Fatalf("healthz during drain: %v %v", resp, err)
	} else {
		resp.Body.Close()
	}
	// The in-flight runs complete successfully within the budget.
	for i := 0; i < capN; i++ {
		if code := <-codes; code != http.StatusOK {
			t.Fatalf("in-flight run during drain: %d", code)
		}
	}
	if err := <-drained; err != nil {
		t.Fatalf("Drain = %v, want clean drain", err)
	}
}

// TestDrainCancelsStragglers pins the budget-expiry path: a run longer
// than the drain budget is cancelled through its context and answers a
// typed draining error instead of hanging shutdown.
func TestDrainCancelsStragglers(t *testing.T) {
	srv, ts := newTestServer(t, 1000, Config{MaxInFlight: 1, MaxQueue: 0, DrainTimeout: 100 * time.Millisecond})
	done := make(chan outcomePair, 1)
	go func() {
		code, body, _ := post(t, ts.URL+"/query?plan=nested&timeout=60s", slowQuery)
		done <- outcomePair{code, body}
	}()
	for deadline := time.Now().Add(10 * time.Second); srv.Stat().Admission.Active == 0; {
		if time.Now().After(deadline) {
			t.Fatal("run never became active")
		}
		time.Sleep(time.Millisecond)
	}
	if err := srv.Drain(t.Context()); err == nil {
		t.Fatal("Drain = nil, want budget-expired error")
	}
	o := <-done
	if o.code != http.StatusServiceUnavailable || errKind(t, o.body) != "draining" {
		t.Fatalf("cancelled straggler: %d %s", o.code, o.body)
	}
	if srv.Stat().Admission.Active != 0 {
		t.Fatalf("straggler kept its slot: %+v", srv.Stat().Admission)
	}
}

type outcomePair struct {
	code int
	body string
}

// --- resource governance ---

// TestResourceBudgetAnswers413 pins the pre-commit resource path: a
// memory-hungry grouping plan under a tight ?max-memory= budget answers a
// clean 413 with kind "resource", the statusz counter moves, and the
// engine keeps serving.
func TestResourceBudgetAnswers413(t *testing.T) {
	srv, ts := newTestServer(t, 200, Config{})
	code, body, _ := post(t, ts.URL+"/query?max-memory=4k", slowQuery)
	if code != http.StatusRequestEntityTooLarge || errKind(t, body) != "resource" {
		t.Fatalf("over-budget run: %d %s", code, body)
	}
	if got := srv.Stat().ResourceExhausted; got != 1 {
		t.Fatalf("resource_exhausted counter = %d, want 1", got)
	}
	// The identical query without a budget succeeds on the same engine.
	if code, body, _ := post(t, ts.URL+"/query", slowQuery); code != 200 {
		t.Fatalf("unbudgeted run after trip: %d %s", code, body)
	}
}

// TestResourceBudgetHeaderCapped drives the budget through the
// X-Nalquery-Max-Memory header and pins the server-side cap: a client
// asking for 1 GiB against a 4 KiB cap still trips.
func TestResourceBudgetHeaderCapped(t *testing.T) {
	_, ts := newTestServer(t, 200, Config{MaxMemoryCap: 4 << 10})
	req, _ := http.NewRequest(http.MethodPost, ts.URL+"/query", strings.NewReader(slowQuery))
	req.Header.Set("X-Nalquery-Max-Memory", "1g")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	b, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge || errKind(t, string(b)) != "resource" {
		t.Fatalf("capped header budget: %d %s", resp.StatusCode, b)
	}
	// A malformed budget is a 400 request error.
	code, body, _ := post(t, ts.URL+"/query?max-memory=lots", titlesQuery)
	if code != 400 || errKind(t, body) != "request" {
		t.Fatalf("bad budget: %d %s", code, body)
	}
}

// TestResourceDefaultBudget pins Config.DefaultMaxMemory: with a default
// budget configured, a client sending nothing gets governed.
func TestResourceDefaultBudget(t *testing.T) {
	_, ts := newTestServer(t, 200, Config{DefaultMaxMemory: 4 << 10})
	code, body, _ := post(t, ts.URL+"/query", slowQuery)
	if code != http.StatusRequestEntityTooLarge || errKind(t, body) != "resource" {
		t.Fatalf("default budget: %d %s", code, body)
	}
	// A cheap query fits the same default budget.
	if code, body, _ := post(t, ts.URL+"/query", `let $d1 := doc("bib.xml") return <n>{ count($d1//book) }</n>`); code != 200 {
		t.Fatalf("cheap query under default budget: %d %s", code, body)
	}
}

// TestResourceTripAfterXMLCommit pins the committed-stream contract: when
// the budget trips after the spill buffer committed a 200, the connection
// is aborted so the client observes truncation instead of a silently short
// success.
func TestResourceTripAfterXMLCommit(t *testing.T) {
	srv, ts := newTestServer(t, 3000, Config{SpillBytes: 1 << 10})
	resp, err := http.Post(ts.URL+"/query?max-memory=64k", "application/xquery",
		strings.NewReader(titlesQuery))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d, want a committed 200 before the trip", resp.StatusCode)
	}
	if _, err := io.ReadAll(resp.Body); err == nil {
		t.Fatal("committed over-budget stream ended without a transport error")
	}
	if got := srv.Stat().ResourceExhausted; got != 1 {
		t.Fatalf("resource_exhausted counter = %d, want 1", got)
	}
}

// TestResourceTripAfterNDJSONCommit pins the NDJSON contract: a committed
// ?format=json stream ends with a terminal {"kind":"error"} line typed
// "resource" instead of silent truncation.
func TestResourceTripAfterNDJSONCommit(t *testing.T) {
	_, ts := newTestServer(t, 3000, Config{SpillBytes: 1 << 10})
	code, body, _ := post(t, ts.URL+"/query?format=json&max-memory=64k", titlesQuery)
	if code != http.StatusOK {
		t.Fatalf("status %d, want a committed 200 before the trip", code)
	}
	lines := strings.Split(strings.TrimSpace(body), "\n")
	if len(lines) < 2 {
		t.Fatalf("stream too short to have committed: %d lines", len(lines))
	}
	var last struct {
		Kind, Type, Error string
	}
	if err := json.Unmarshal([]byte(lines[len(lines)-1]), &last); err != nil {
		t.Fatalf("bad terminal line %q: %v", lines[len(lines)-1], err)
	}
	if last.Kind != "error" || last.Type != "resource" || last.Error == "" {
		t.Fatalf("terminal line %+v, want kind=error type=resource", last)
	}
}

// TestResourceConcurrentIsolation is the acceptance scenario: over-budget
// requests answer 413 while concurrent in-budget requests on the same
// engine stream their full results, under -race.
func TestResourceConcurrentIsolation(t *testing.T) {
	srv, ts := newTestServer(t, 200, Config{})
	want, err := srv.Engine().Query(titlesQuery)
	if err != nil {
		t.Fatal(err)
	}
	const pairs = 4
	var wg sync.WaitGroup
	errs := make(chan error, 2*pairs)
	for i := 0; i < pairs; i++ {
		wg.Add(2)
		go func() {
			defer wg.Done()
			code, body, _ := post(t, ts.URL+"/query?max-memory=4k", slowQuery)
			if code != http.StatusRequestEntityTooLarge || errKind(t, body) != "resource" {
				errs <- fmt.Errorf("budgeted request: %d %.100s", code, body)
			}
		}()
		go func() {
			defer wg.Done()
			code, body, _ := post(t, ts.URL+"/query", titlesQuery)
			if code != 200 || body != want {
				errs <- fmt.Errorf("in-budget request: %d", code)
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if got := srv.Stat().ResourceExhausted; got != pairs {
		t.Fatalf("resource_exhausted = %d, want %d", got, pairs)
	}
}

// TestRequestBodyBounds pins the body caps: an oversized query body and an
// oversized document upload both answer 413 with kind "too-large".
func TestRequestBodyBounds(t *testing.T) {
	_, ts := newTestServer(t, 10, Config{MaxBodyBytes: 256})
	big := strings.Repeat(" ", 300) + titlesQuery
	code, body, _ := post(t, ts.URL+"/query", big)
	if code != http.StatusRequestEntityTooLarge || errKind(t, body) != "too-large" {
		t.Fatalf("oversized query body: %d %s", code, body)
	}
	doc := "<r>" + strings.Repeat("<x>pad</x>", 40) + "</r>"
	code, body, _ = post(t, ts.URL+"/documents/big.xml", doc)
	if code != http.StatusRequestEntityTooLarge || errKind(t, body) != "too-large" {
		t.Fatalf("oversized document: %d %s", code, body)
	}
	// In-bounds bodies still work.
	if code, _, _ := post(t, ts.URL+"/query", titlesQuery); code != 200 {
		t.Fatalf("in-bounds query after 413s: %d", code)
	}
}

// TestLargeResultStreams pins the spill boundary: a result bigger than
// SpillBytes commits to streaming and arrives complete.
func TestLargeResultStreams(t *testing.T) {
	srv, ts := newTestServer(t, 3000, Config{SpillBytes: 8 << 10})
	code, body, _ := post(t, ts.URL+"/query", titlesQuery)
	if code != 200 {
		t.Fatalf("status %d", code)
	}
	if len(body) <= 8<<10 {
		t.Fatalf("result too small (%d bytes) to exercise the spill commit", len(body))
	}
	want, err := srv.Engine().Query(titlesQuery)
	if err != nil {
		t.Fatal(err)
	}
	if body != want {
		t.Fatalf("streamed body differs from library result (%d vs %d bytes)", len(body), len(want))
	}
}
