package server

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	nalquery "nalquery"
	"nalquery/internal/admission"
)

func TestConfigDefaults(t *testing.T) {
	c := Config{}.withDefaults()
	if c.MaxInFlight < 1 || c.MaxQueue != 4*c.MaxInFlight {
		t.Fatalf("defaults: %+v", c)
	}
	if c.DefaultTimeout <= 0 || c.MaxTimeout < c.DefaultTimeout || c.SpillBytes <= 0 {
		t.Fatalf("defaults: %+v", c)
	}
	// A default timeout above the cap is clamped to it.
	c = Config{DefaultTimeout: time.Hour, MaxTimeout: time.Minute}.withDefaults()
	if c.DefaultTimeout != time.Minute {
		t.Fatalf("DefaultTimeout not clamped: %v", c.DefaultTimeout)
	}
	// MaxQueue: negative means "no queue", zero means the default.
	if c := (Config{MaxQueue: -1}).withDefaults(); c.MaxQueue != 0 {
		t.Fatalf("negative MaxQueue = %d, want 0", c.MaxQueue)
	}
}

func TestRequestTimeoutResolution(t *testing.T) {
	s := New(nalquery.NewEngine(), Config{DefaultTimeout: 5 * time.Second, MaxTimeout: 10 * time.Second}, nil)
	cases := []struct {
		header, param string
		want          time.Duration
		wantErr       bool
	}{
		{"", "", 5 * time.Second, false},
		{"250ms", "", 250 * time.Millisecond, false},
		{"", "2s", 2 * time.Second, false},
		{"1s", "2s", 2 * time.Second, false}, // the query param wins
		{"", "99h", 10 * time.Second, false}, // capped server-side
		{"", "-1s", 0, true},
		{"soon", "", 0, true},
	}
	for _, c := range cases {
		url := "/query"
		if c.param != "" {
			url += "?timeout=" + c.param
		}
		r := httptest.NewRequest(http.MethodPost, url, nil)
		if c.header != "" {
			r.Header.Set("X-Nalquery-Timeout", c.header)
		}
		got, err := s.requestTimeout(r)
		if (err != nil) != c.wantErr || (err == nil && got != c.want) {
			t.Errorf("header=%q param=%q: got %v/%v, want %v (err %v)",
				c.header, c.param, got, err, c.want, c.wantErr)
		}
	}
}

func TestErrorStatusMapping(t *testing.T) {
	cases := []struct {
		err        error
		wantStatus int
		wantKind   string
	}{
		{&nalquery.InternalError{Panic: "x"}, 500, "internal"},
		{&nalquery.ParseError{Line: 1, Msg: "bad"}, 400, "parse"},
		{nalquery.ErrNoPlan, 400, "plan"},
		{admission.ErrShed, 429, "shed"},
		{admission.ErrDraining, 503, "draining"},
		{context.DeadlineExceeded, 504, "timeout"},
		{context.Canceled, 503, "cancelled"},
		{errors.New("mystery"), 500, "error"},
	}
	for _, c := range cases {
		status, kind := errorStatus(c.err)
		if status != c.wantStatus || kind != c.wantKind {
			t.Errorf("errorStatus(%v) = %d/%s, want %d/%s", c.err, status, kind, c.wantStatus, c.wantKind)
		}
	}
}

func TestSpillWriterCommitBoundary(t *testing.T) {
	rec := httptest.NewRecorder()
	sp := &spillWriter{w: rec, limit: 10, status: 200, contentType: "text/plain"}
	sp.Write([]byte("12345"))
	if sp.committed {
		t.Fatal("committed below the threshold")
	}
	if rec.Body.Len() != 0 {
		t.Fatal("bytes leaked to the response before commit")
	}
	sp.Write([]byte("67890X")) // crosses the threshold
	if !sp.committed {
		t.Fatal("did not commit at the threshold")
	}
	sp.Write([]byte("tail"))
	sp.finish()
	if got := rec.Body.String(); got != "1234567890Xtail" {
		t.Fatalf("streamed body %q", got)
	}
	if got := rec.Header().Get("Content-Type"); got != "text/plain" {
		t.Fatalf("content-type %q", got)
	}

	// A small response commits only at finish, in one piece.
	rec = httptest.NewRecorder()
	sp = &spillWriter{w: rec, limit: 100, status: 201, contentType: "text/plain"}
	sp.Write([]byte("tiny"))
	sp.finish()
	if rec.Code != 201 || rec.Body.String() != "tiny" {
		t.Fatalf("small response: %d %q", rec.Code, rec.Body.String())
	}
}

func TestRunOptionsVarParsing(t *testing.T) {
	r := httptest.NewRequest(http.MethodPost, "/query?var=a=1&var=$b=x&plan=nested", nil)
	opts, err := runOptions(r)
	if err != nil || len(opts) != 3 {
		t.Fatalf("opts = %d, err %v", len(opts), err)
	}
	r = httptest.NewRequest(http.MethodPost, "/query?var=novalue", nil)
	if _, err := runOptions(r); err == nil {
		t.Fatal("malformed var accepted")
	}
}
