package server

// In-process benchmarks of the serving stack (handler + admission +
// deadline plumbing, no sockets). `make bench-smoke` runs them once as the
// harness-rot gate; the `server` family of nalbench -json measures the
// same shapes into the perf trajectory.

import (
	"io"
	"log"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	nalquery "nalquery"
)

const benchQuery = `
let $d1 := doc("bib.xml")
for $t1 in $d1//book/title
return <t>{ $t1 }</t>`

func benchServer(b *testing.B, size int) *Server {
	b.Helper()
	eng := nalquery.NewEngine()
	eng.LoadUseCaseDocuments(size, 2)
	s := New(eng, Config{MaxInFlight: 8, MaxQueue: 64}, log.New(io.Discard, "", 0))
	if err := s.RegisterPrepared("titles", benchQuery); err != nil {
		b.Fatal(err)
	}
	return s
}

func doBenchRequest(b *testing.B, h http.Handler, target, body string) {
	b.Helper()
	req := httptest.NewRequest(http.MethodPost, target, strings.NewReader(body))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		b.Fatalf("status %d: %s", rec.Code, rec.Body.String())
	}
}

func BenchmarkHTTPQuery(b *testing.B) {
	s := benchServer(b, 100)
	h := s.Handler()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		doBenchRequest(b, h, "/query", benchQuery)
	}
}

func BenchmarkHTTPPrepared(b *testing.B) {
	s := benchServer(b, 100)
	h := s.Handler()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		doBenchRequest(b, h, "/prepared/titles", "")
	}
}
