package server

import (
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
)

// get fetches a URL and returns status and body.
func get(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read body: %v", err)
	}
	return resp.StatusCode, string(b)
}

// TestDocumentStatsEndpoint pins GET /documents/{uri}/stats: the analyzer's
// measured per-path statistics of an uploaded document, refreshed when the
// document is replaced.
func TestDocumentStatsEndpoint(t *testing.T) {
	_, ts := newTestServer(t, 10, Config{})
	code, body, _ := post(t, ts.URL+"/documents/mine.xml",
		`<shelf><book><title>One</title></book><book><title>Two</title></book></shelf>`)
	if code != http.StatusCreated {
		t.Fatalf("upload: %d %s", code, body)
	}

	code, body = get(t, ts.URL+"/documents/mine.xml/stats")
	if code != 200 {
		t.Fatalf("stats: %d %s", code, body)
	}
	var ds struct {
		URI      string `json:"uri"`
		Elements int64  `json:"elements"`
		Paths    []struct {
			Path     string `json:"path"`
			Count    int64  `json:"count"`
			Simple   bool   `json:"simple"`
			Distinct int64  `json:"distinct"`
			Min      string `json:"min"`
			Max      string `json:"max"`
		} `json:"paths"`
	}
	if err := json.Unmarshal([]byte(body), &ds); err != nil {
		t.Fatalf("stats body is not JSON: %q (%v)", body, err)
	}
	if ds.URI != "mine.xml" || ds.Elements != 5 {
		t.Fatalf("uri/elements = %q/%d, want mine.xml/5", ds.URI, ds.Elements)
	}
	byPath := map[string]int64{}
	var title *struct {
		simple   bool
		distinct int64
		min, max string
	}
	for _, p := range ds.Paths {
		byPath[p.Path] = p.Count
		if p.Path == "/shelf/book/title" {
			title = &struct {
				simple   bool
				distinct int64
				min, max string
			}{p.Simple, p.Distinct, p.Min, p.Max}
		}
	}
	if byPath["/shelf/book"] != 2 || byPath["/shelf/book/title"] != 2 {
		t.Fatalf("path counts wrong: %v", byPath)
	}
	if title == nil || !title.simple || title.distinct != 2 || title.min != "One" || title.max != "Two" {
		t.Fatalf("title value stats wrong: %+v", title)
	}

	// Replacing the document refreshes the measurement.
	post(t, ts.URL+"/documents/mine.xml", `<shelf><book><title>Only</title></book></shelf>`)
	code, body = get(t, ts.URL+"/documents/mine.xml/stats")
	if code != 200 || !strings.Contains(body, `"elements": 3`) {
		t.Fatalf("stats after replace: %d %s", code, body)
	}

	// Unknown document and a bare /documents/{uri} GET answer 404.
	if code, _ = get(t, ts.URL+"/documents/nope.xml/stats"); code != 404 {
		t.Fatalf("unknown doc stats: %d", code)
	}
	if code, _ = get(t, ts.URL+"/documents/mine.xml"); code != 404 {
		t.Fatalf("bare document GET: %d", code)
	}
}

// TestStatuszIndexCounters pins the /statusz analyzer and index counters:
// loading documents runs the analyzer, and executing an index-substituted
// plan bumps index_hits.
func TestStatuszIndexCounters(t *testing.T) {
	_, ts := newTestServer(t, 50, Config{})

	var st struct {
		AnalyzerRuns int64 `json:"analyzer_runs"`
		IndexHits    int64 `json:"index_hits"`
	}
	code, body := get(t, ts.URL+"/statusz")
	if code != 200 {
		t.Fatalf("statusz: %d %s", code, body)
	}
	if err := json.Unmarshal([]byte(body), &st); err != nil {
		t.Fatalf("statusz body: %v", err)
	}
	if st.AnalyzerRuns == 0 {
		t.Fatalf("analyzer_runs = 0 after loading the use-case corpus")
	}
	if st.IndexHits != 0 {
		t.Fatalf("index_hits = %d before any query", st.IndexHits)
	}

	q := `let $d := doc("bib.xml")
for $b in $d//book
where $b/@year = 1999
return $b/title`
	code, body, _ = post(t, ts.URL+"/query?plan=indexed+nested", q)
	if code != 200 {
		t.Fatalf("indexed query: %d %s", code, body)
	}
	_, body = get(t, ts.URL+"/statusz")
	if err := json.Unmarshal([]byte(body), &st); err != nil {
		t.Fatalf("statusz body: %v", err)
	}
	if st.IndexHits == 0 {
		t.Fatalf("index_hits still 0 after running an index-scan plan")
	}
}
