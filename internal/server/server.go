// Package server implements nalserved's HTTP query service on the
// prepared-query core, with robustness as the design axis:
//
//   - admission control: a bounded in-flight-run semaphore plus a bounded
//     wait queue (internal/admission); with the queue full the server
//     sheds load with 429/Retry-After instead of collapsing, and exposes
//     the shed/queued/active counters on /statusz.
//   - deadline propagation: per-request timeouts (X-Nalquery-Timeout
//     header or ?timeout=, capped server-side) ride the engine's context
//     cancellation plumbing, so a slow query costs one slot for a bounded
//     time.
//   - panic isolation: the library converts evaluator panics into typed
//     *nalquery.InternalError at the Run/Results boundary; a recover
//     middleware backstops handler bugs. Either way one poison request
//     answers 500 while the process keeps serving.
//   - graceful lifecycle: /healthz + /readyz, and a Drain sequence (stop
//     admitting, finish in-flight runs within the drain budget, cancel
//     stragglers) driven by SIGTERM in cmd/nalserved.
//
// Responses stream through a spill buffer: a run that fails early still
// gets a proper error status and body, while large results switch to
// streaming instead of buffering whole.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log"
	"net/http"
	"runtime/debug"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	nalquery "nalquery"
	"nalquery/internal/admission"
	"nalquery/internal/cli"
)

// Server is the HTTP query service. Construct with New; all exported
// methods and the Handler are safe for concurrent use.
type Server struct {
	cfg Config
	eng *nalquery.Engine
	adm *admission.Controller
	log *log.Logger

	mu       sync.Mutex
	prepared map[string]*nalquery.Prepared

	// baseCtx parents every admitted run; cancelRuns fires it when the
	// drain budget expires, cancelling stragglers through the engine's
	// context plumbing.
	baseCtx    context.Context
	cancelRuns context.CancelCauseFunc

	ready    atomic.Bool
	started  time.Time
	panics   atomic.Int64 // handler panics caught by the recover middleware
	internal atomic.Int64 // evaluator panics surfaced as *InternalError
	timeouts atomic.Int64 // runs ended by deadline expiry
	resource atomic.Int64 // runs ended by resource-budget exhaustion
}

// New builds a Server over an engine (documents already loaded or loaded
// later through the API). logger may be nil for log.Default().
func New(eng *nalquery.Engine, cfg Config, logger *log.Logger) *Server {
	cfg = cfg.withDefaults()
	if logger == nil {
		logger = log.Default()
	}
	ctx, cancel := context.WithCancelCause(context.Background())
	s := &Server{
		cfg:        cfg,
		eng:        eng,
		adm:        admission.New(cfg.MaxInFlight, cfg.MaxQueue),
		log:        logger,
		prepared:   map[string]*nalquery.Prepared{},
		baseCtx:    ctx,
		cancelRuns: cancel,
		started:    time.Now(),
	}
	s.ready.Store(true)
	return s
}

// Engine returns the underlying engine (for setup code in cmd/nalserved
// and the benchmarks).
func (s *Server) Engine() *nalquery.Engine { return s.eng }

// RegisterPrepared compiles text as a named prepared statement, replacing
// any previous statement of that name.
func (s *Server) RegisterPrepared(name, text string) error {
	p, err := s.eng.Prepare(text)
	if err != nil {
		return err
	}
	s.mu.Lock()
	s.prepared[name] = p
	s.mu.Unlock()
	return nil
}

// lookupPrepared returns the named statement, or nil.
func (s *Server) lookupPrepared(name string) *nalquery.Prepared {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.prepared[name]
}

// Handler returns the service's HTTP handler tree, wrapped in the
// panic-recovery middleware.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /readyz", s.handleReadyz)
	mux.HandleFunc("GET /statusz", s.handleStatusz)
	mux.HandleFunc("POST /query", s.handleQuery)
	mux.HandleFunc("GET /prepared", s.handlePreparedList)
	mux.HandleFunc("PUT /prepared/{name}", s.handlePreparedPut)
	mux.HandleFunc("DELETE /prepared/{name}", s.handlePreparedDelete)
	mux.HandleFunc("POST /prepared/{name}", s.handlePreparedRun)
	mux.HandleFunc("GET /documents", s.handleDocumentsList)
	mux.HandleFunc("GET /documents/{uri...}", s.handleDocumentStats)
	mux.HandleFunc("POST /documents/{uri...}", s.handleDocumentPut)
	mux.HandleFunc("POST /gen", s.handleGen)
	if s.cfg.Debug {
		mux.HandleFunc("POST /debug/panic", s.handleDebugPanic)
	}
	return s.recoverPanics(mux)
}

// recoverPanics is the outermost robustness boundary: a panic in any
// handler — including the deliberate /debug/panic probe — answers 500 and
// leaves the process serving. http.ErrAbortHandler passes through (it is
// the sanctioned way to abort a committed response).
func (s *Server) recoverPanics(h http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		defer func() {
			if p := recover(); p != nil {
				if p == http.ErrAbortHandler {
					panic(p)
				}
				s.panics.Add(1)
				s.log.Printf("panic serving %s %s: %v\n%s", r.Method, r.URL.Path, p, debug.Stack())
				// Best effort: if the response is already committed this
				// header write is a no-op and the client sees truncation.
				writeError(w, http.StatusInternalServerError, "internal",
					fmt.Sprintf("internal error: %v", p))
			}
		}()
		h.ServeHTTP(w, r)
	})
}

// --- health & status ---

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	io.WriteString(w, "ok\n")
}

func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	if !s.ready.Load() {
		w.WriteHeader(http.StatusServiceUnavailable)
		io.WriteString(w, "draining\n")
		return
	}
	io.WriteString(w, "ready\n")
}

// Status is the machine-readable operational snapshot served at /statusz.
type Status struct {
	UptimeSeconds     float64            `json:"uptime_seconds"`
	Ready             bool               `json:"ready"`
	MaxInFlight       int                `json:"max_in_flight"`
	MaxQueue          int                `json:"max_queue"`
	Admission         admission.Counters `json:"admission"`
	HandlerPanics     int64              `json:"handler_panics"`
	InternalErrors    int64              `json:"internal_errors"`
	Timeouts          int64              `json:"timeouts"`
	ResourceExhausted int64              `json:"resource_exhausted"`
	Documents         int                `json:"documents"`
	Prepared          int                `json:"prepared"`
	AnalyzerRuns      int64              `json:"analyzer_runs"`
	IndexHits         int64              `json:"index_hits"`
}

// Stat returns the current operational snapshot (the /statusz payload).
func (s *Server) Stat() Status {
	s.mu.Lock()
	nprep := len(s.prepared)
	s.mu.Unlock()
	maxIF, maxQ := s.adm.Capacity()
	return Status{
		UptimeSeconds:     time.Since(s.started).Seconds(),
		Ready:             s.ready.Load(),
		MaxInFlight:       maxIF,
		MaxQueue:          maxQ,
		Admission:         s.adm.Counters(),
		HandlerPanics:     s.panics.Load(),
		InternalErrors:    s.internal.Load(),
		Timeouts:          s.timeouts.Load(),
		ResourceExhausted: s.resource.Load(),
		Documents:         len(s.eng.DocumentURIs()),
		Prepared:          nprep,
		AnalyzerRuns:      s.eng.AnalyzerRuns(),
		IndexHits:         s.eng.IndexHits(),
	}
}

func (s *Server) handleStatusz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(s.Stat())
}

// --- documents ---

func (s *Server) handleDocumentsList(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(s.eng.DocumentURIs())
}

// handleDocumentStats serves GET /documents/{uri}/stats: the analyzer's
// measured per-path statistics of a loaded document. (The trailing /stats is
// part of the wildcard because ServeMux patterns cannot follow a "..."
// segment with more literals.)
func (s *Server) handleDocumentStats(w http.ResponseWriter, r *http.Request) {
	p := r.PathValue("uri")
	uri, ok := strings.CutSuffix(p, "/stats")
	if !ok || uri == "" {
		writeError(w, http.StatusNotFound, "request", "want GET /documents/{uri}/stats")
		return
	}
	ds, ok := s.eng.DocumentStats(uri)
	if !ok {
		writeError(w, http.StatusNotFound, "request", fmt.Sprintf("no document %q", uri))
		return
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(ds)
}

func (s *Server) handleDocumentPut(w http.ResponseWriter, r *http.Request) {
	uri := r.PathValue("uri")
	if uri == "" {
		writeError(w, http.StatusBadRequest, "request", "missing document uri")
		return
	}
	body := http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	if err := s.eng.LoadXML(uri, body); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			writeError(w, http.StatusRequestEntityTooLarge, "too-large",
				fmt.Sprintf("document exceeds %d bytes", tooBig.Limit))
			return
		}
		writeError(w, http.StatusBadRequest, "parse", fmt.Sprintf("parse %s: %v", uri, err))
		return
	}
	w.WriteHeader(http.StatusCreated)
	fmt.Fprintf(w, "loaded %s\n", uri)
}

// handleGen loads the synthetic use-case corpus (plus the DBLP-like
// document) at ?size=N&apb=M — the load-test fixture endpoint.
func (s *Server) handleGen(w http.ResponseWriter, r *http.Request) {
	size := intParam(r, "size", 1000)
	apb := intParam(r, "apb", 2)
	if size < 1 || size > 1_000_000 {
		writeError(w, http.StatusBadRequest, "request", "size out of range [1, 1000000]")
		return
	}
	s.eng.LoadUseCaseDocuments(size, apb)
	s.eng.LoadDBLPDocument(size)
	fmt.Fprintf(w, "generated use-case corpus at size %d (%d authors/book)\n", size, apb)
}

// --- prepared statements ---

func (s *Server) handlePreparedList(w http.ResponseWriter, r *http.Request) {
	type row struct {
		Name string   `json:"name"`
		Vars []string `json:"vars"`
	}
	s.mu.Lock()
	rows := make([]row, 0, len(s.prepared))
	for name, p := range s.prepared {
		rows = append(rows, row{Name: name, Vars: p.Vars()})
	}
	s.mu.Unlock()
	sort.Slice(rows, func(i, j int) bool { return rows[i].Name < rows[j].Name })
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(rows)
}

func (s *Server) handlePreparedPut(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	text, ok := s.readBody(w, r)
	if !ok {
		return
	}
	if err := s.RegisterPrepared(name, text); err != nil {
		status, kind := errorStatus(err)
		writeError(w, status, kind, err.Error())
		return
	}
	p := s.lookupPrepared(name)
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusCreated)
	json.NewEncoder(w).Encode(map[string]any{"name": name, "vars": p.Vars()})
}

func (s *Server) handlePreparedDelete(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	s.mu.Lock()
	_, existed := s.prepared[name]
	delete(s.prepared, name)
	s.mu.Unlock()
	if !existed {
		writeError(w, http.StatusNotFound, "request", fmt.Sprintf("no prepared statement %q", name))
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

func (s *Server) handlePreparedRun(w http.ResponseWriter, r *http.Request) {
	p := s.lookupPrepared(r.PathValue("name"))
	if p == nil {
		writeError(w, http.StatusNotFound, "request",
			fmt.Sprintf("no prepared statement %q (PUT /prepared/%s to register)", r.PathValue("name"), r.PathValue("name")))
		return
	}
	s.serveRun(w, r, func(ctx context.Context, opts []nalquery.RunOption) (*nalquery.Results, error) {
		return p.Run(ctx, opts...)
	})
}

// --- ad-hoc queries ---

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	text, ok := s.readBody(w, r)
	if !ok {
		return
	}
	if strings.TrimSpace(text) == "" {
		writeError(w, http.StatusBadRequest, "request", "empty query body")
		return
	}
	// RunText goes through the engine's LRU plan cache: repeated traffic
	// for the same text compiles once per engine state.
	s.serveRun(w, r, func(ctx context.Context, opts []nalquery.RunOption) (*nalquery.Results, error) {
		return s.eng.RunText(ctx, text, opts...)
	})
}

// handleDebugPanic runs the full admission + deadline + response pipeline
// and then panics inside the handler — the e2e probe proving one poison
// request cannot take the process down. Mounted only with Config.Debug.
func (s *Server) handleDebugPanic(w http.ResponseWriter, r *http.Request) {
	s.serveRun(w, r, func(ctx context.Context, opts []nalquery.RunOption) (*nalquery.Results, error) {
		panic("debug panic probe")
	})
}

// --- the admitted run pipeline ---

// start abstracts what runs once a slot is held: an ad-hoc RunText, a
// prepared Run, or the debug probe.
type startFunc func(ctx context.Context, opts []nalquery.RunOption) (*nalquery.Results, error)

// serveRun is the shared pipeline of every query-running endpoint:
// resolve the request deadline, pass admission control, start the run,
// stream the result. Admission covers the whole run — the slot is held
// until the response is written — and the deadline covers queue wait plus
// execution.
func (s *Server) serveRun(w http.ResponseWriter, r *http.Request, start startFunc) {
	d, err := s.requestTimeout(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, "request", err.Error())
		return
	}
	budget, err := s.requestBudget(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, "request", err.Error())
		return
	}
	// The run context: client disconnect, per-request deadline, and the
	// server-wide cancel-on-drain all end it.
	ctx, cancel := context.WithCancelCause(r.Context())
	defer cancel(nil)
	stopDrain := context.AfterFunc(s.baseCtx, func() { cancel(context.Cause(s.baseCtx)) })
	defer stopDrain()
	ctx, cancelT := context.WithTimeoutCause(ctx, d, context.DeadlineExceeded)
	defer cancelT()

	release, err := s.adm.Acquire(ctx)
	if err != nil {
		s.writeAdmissionError(w, err)
		return
	}
	defer release()

	opts, err := runOptions(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, "request", err.Error())
		return
	}
	if budget > 0 {
		opts = append(opts, nalquery.WithMaxMemory(budget))
	}
	res, err := start(ctx, opts)
	if err != nil {
		s.countRunError(err)
		status, kind := errorStatus(err)
		writeError(w, status, kind, err.Error())
		return
	}
	defer res.Close()
	s.streamResults(w, r, res)
}

// writeAdmissionError maps an admission rejection onto its HTTP shape.
func (s *Server) writeAdmissionError(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, admission.ErrShed):
		w.Header().Set("Retry-After", fmt.Sprintf("%d", int(s.cfg.RetryAfter.Seconds()+0.5)))
		writeError(w, http.StatusTooManyRequests, "shed",
			"server overloaded: in-flight and queue capacity exhausted")
	case errors.Is(err, admission.ErrDraining):
		writeError(w, http.StatusServiceUnavailable, "draining", "server is draining")
	case errors.Is(err, context.DeadlineExceeded):
		s.timeouts.Add(1)
		writeError(w, http.StatusGatewayTimeout, "timeout", "deadline expired while queued for admission")
	default:
		writeError(w, http.StatusServiceUnavailable, "request", err.Error())
	}
}

// countRunError feeds the /statusz failure counters.
func (s *Server) countRunError(err error) {
	switch {
	case errors.Is(err, nalquery.ErrInternal):
		s.internal.Add(1)
	case errors.Is(err, context.DeadlineExceeded):
		s.timeouts.Add(1)
	case errors.Is(err, nalquery.ErrResourceExhausted):
		s.resource.Add(1)
	}
}

// requestTimeout resolves the per-request deadline: the X-Nalquery-Timeout
// header or ?timeout= parameter (Go duration syntax), default
// cfg.DefaultTimeout, capped at cfg.MaxTimeout.
func (s *Server) requestTimeout(r *http.Request) (time.Duration, error) {
	raw := r.Header.Get("X-Nalquery-Timeout")
	if q := r.URL.Query().Get("timeout"); q != "" {
		raw = q
	}
	if raw == "" {
		return s.cfg.DefaultTimeout, nil
	}
	d, err := time.ParseDuration(raw)
	if err != nil {
		return 0, fmt.Errorf("bad timeout %q (want Go duration, e.g. 500ms): %v", raw, err)
	}
	if d <= 0 {
		return 0, fmt.Errorf("bad timeout %q: must be positive", raw)
	}
	if d > s.cfg.MaxTimeout {
		d = s.cfg.MaxTimeout
	}
	return d, nil
}

// requestBudget resolves the per-run memory budget: the
// X-Nalquery-Max-Memory header or ?max-memory= parameter (bytes with
// optional k/m/g suffix), default cfg.DefaultMaxMemory, capped at
// cfg.MaxMemoryCap. Zero means no budget.
func (s *Server) requestBudget(r *http.Request) (int64, error) {
	raw := r.Header.Get("X-Nalquery-Max-Memory")
	if q := r.URL.Query().Get("max-memory"); q != "" {
		raw = q
	}
	if raw == "" {
		return s.cfg.DefaultMaxMemory, nil
	}
	n, err := cli.ParseBytes(raw)
	if err != nil {
		return 0, fmt.Errorf("bad max-memory %q (want bytes, e.g. 64k, 16m): %v", raw, err)
	}
	if n > s.cfg.MaxMemoryCap {
		n = s.cfg.MaxMemoryCap
	}
	return n, nil
}

// runOptions builds the Run options of a request: ?plan= selects the plan
// alternative, repeated ?var=name=value parameters bind external
// variables (values parse integer, then float, then string — the CLI
// rule).
func runOptions(r *http.Request) ([]nalquery.RunOption, error) {
	q := r.URL.Query()
	var opts []nalquery.RunOption
	if plan := q.Get("plan"); plan != "" {
		opts = append(opts, nalquery.WithPlan(plan))
	}
	for _, v := range q["var"] {
		name, val, ok := strings.Cut(v, "=")
		if !ok {
			return nil, fmt.Errorf("bad var %q (want name=value)", v)
		}
		opts = append(opts, nalquery.Bind(strings.TrimPrefix(name, "$"), cli.ParseVarValue(val)))
	}
	return opts, nil
}

// intParam reads an integer query parameter with a default.
func intParam(r *http.Request, name string, def int) int {
	v := r.URL.Query().Get(name)
	if v == "" {
		return def
	}
	n, err := strconv.Atoi(v)
	if err != nil {
		return def
	}
	return n
}

// readBody reads the request body under the size cap, answering the error
// itself when it fails.
func (s *Server) readBody(w http.ResponseWriter, r *http.Request) (string, bool) {
	b, err := io.ReadAll(http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes))
	if err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			writeError(w, http.StatusRequestEntityTooLarge, "too-large",
				fmt.Sprintf("body exceeds %d bytes", tooBig.Limit))
		} else {
			writeError(w, http.StatusBadRequest, "request", err.Error())
		}
		return "", false
	}
	return string(b), true
}

// --- lifecycle ---

// BeginDrain flips readiness off and stops admitting runs. Idempotent.
func (s *Server) BeginDrain() {
	if s.ready.Swap(false) {
		s.log.Printf("drain: stopped admitting (active=%d queued=%d)",
			s.adm.Counters().Active, s.adm.Counters().Queued)
	}
	s.adm.Drain()
}

// Drain performs the graceful-shutdown sequence: stop admitting, wait for
// in-flight runs to finish within the drain budget, then cancel the
// stragglers through the engine's context plumbing and wait briefly for
// them to unwind. It returns nil when the server drained cleanly and the
// budget-expiry cause otherwise. ctx bounds the whole call on top of the
// configured budget.
func (s *Server) Drain(ctx context.Context) error {
	s.BeginDrain()
	budget, cancel := context.WithTimeout(ctx, s.cfg.DrainTimeout)
	defer cancel()
	err := s.adm.Wait(budget)
	if err == nil {
		s.log.Printf("drain: idle, shutting down cleanly")
		return nil
	}
	s.log.Printf("drain: budget expired with %d run(s) in flight, cancelling",
		s.adm.Counters().Active)
	s.cancelRuns(fmt.Errorf("server draining: %w", admission.ErrDraining))
	// Cancelled runs unwind at the next scan poll; give them a moment so
	// the process exits with released state, but never hang shutdown.
	grace, gcancel := context.WithTimeout(ctx, 2*time.Second)
	defer gcancel()
	s.adm.Wait(grace)
	return err
}
