package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"net/http"

	nalquery "nalquery"
	"nalquery/internal/admission"
)

// errorBody is the JSON error envelope of every non-2xx answer. Kind is a
// stable machine-checkable discriminator ("parse", "translate", "bind",
// "plan", "timeout", "shed", "draining", "internal", "request", "resource",
// "too-large", "cancelled", "error").
type errorBody struct {
	Error string `json:"error"`
	Kind  string `json:"kind"`
}

// writeError answers one JSON error body. It must only be called before
// the response is committed (on a committed stream the header write is a
// no-op and the payload would corrupt the stream — stream enders handle
// that case themselves).
func writeError(w http.ResponseWriter, status int, kind, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("X-Content-Type-Options", "nosniff")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(errorBody{Error: msg, Kind: kind})
}

// errorStatus maps the library's and the admission layer's typed errors
// onto HTTP status codes and error kinds.
func errorStatus(err error) (status int, kind string) {
	var pe *nalquery.ParseError
	var be *nalquery.BindError
	switch {
	case errors.Is(err, nalquery.ErrResourceExhausted):
		return http.StatusRequestEntityTooLarge, "resource"
	case errors.Is(err, nalquery.ErrInternal):
		return http.StatusInternalServerError, "internal"
	case errors.As(err, &pe):
		return http.StatusBadRequest, "parse"
	case errors.Is(err, nalquery.ErrTranslate):
		return http.StatusBadRequest, "translate"
	case errors.As(err, &be):
		return http.StatusBadRequest, "bind"
	case errors.Is(err, nalquery.ErrUnknownPlan), errors.Is(err, nalquery.ErrNoPlan):
		return http.StatusBadRequest, "plan"
	case errors.Is(err, admission.ErrShed):
		return http.StatusTooManyRequests, "shed"
	case errors.Is(err, admission.ErrDraining):
		return http.StatusServiceUnavailable, "draining"
	case errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout, "timeout"
	case errors.Is(err, context.Canceled):
		return http.StatusServiceUnavailable, "cancelled"
	default:
		return http.StatusInternalServerError, "error"
	}
}

// spillWriter defers the response status until either the run produced
// `limit` bytes (commit to 200 and stream from then on) or it finished.
// A run that fails before the threshold can therefore still answer with a
// proper error status and body; a larger result streams without ever
// buffering whole.
type spillWriter struct {
	w           http.ResponseWriter
	limit       int
	status      int
	contentType string

	buf       bytes.Buffer
	committed bool
}

func (sp *spillWriter) Write(p []byte) (int, error) {
	if sp.committed {
		return sp.w.Write(p)
	}
	sp.buf.Write(p)
	if sp.buf.Len() >= sp.limit {
		sp.commit()
	}
	return len(p), nil
}

// commit writes the header and the buffered prefix; later writes stream.
func (sp *spillWriter) commit() {
	sp.committed = true
	sp.w.Header().Set("Content-Type", sp.contentType)
	sp.w.WriteHeader(sp.status)
	sp.w.Write(sp.buf.Bytes())
	sp.buf.Reset()
}

// finish flushes a small (never-committed) response in one piece.
func (sp *spillWriter) finish() {
	if !sp.committed {
		sp.commit()
	}
	if f, ok := sp.w.(http.Flusher); ok {
		f.Flush()
	}
}

// streamResults writes a run's result in the requested format. The
// response status depends on how the run ends, which the spill buffer
// makes possible without materializing large results.
func (s *Server) streamResults(w http.ResponseWriter, r *http.Request, res *nalquery.Results) {
	switch format := r.URL.Query().Get("format"); format {
	case "", "xml":
		s.streamXML(w, res)
	case "json":
		s.streamNDJSON(w, res)
	default:
		writeError(w, http.StatusBadRequest, "request",
			"unknown format "+format+" (want xml or json)")
	}
}

// streamXML serializes the run as the query's constructed XML document.
// A failure before the spill threshold answers with the mapped error
// status; after commitment the connection is aborted so the client
// reliably observes truncation instead of a silently short 200.
func (s *Server) streamXML(w http.ResponseWriter, res *nalquery.Results) {
	sp := &spillWriter{w: w, limit: s.cfg.SpillBytes, status: http.StatusOK,
		contentType: "application/xml; charset=utf-8"}
	err := res.WriteXML(sp)
	if err != nil {
		s.countRunError(err)
		if !sp.committed {
			status, kind := errorStatus(err)
			writeError(w, status, kind, err.Error())
			return
		}
		s.log.Printf("aborting committed stream: %v", err)
		panic(http.ErrAbortHandler)
	}
	sp.finish()
}

// jsonItem is one NDJSON line of a ?format=json response: a literal
// markup fragment or a typed value with its serialized form. A run that
// fails mid-stream ends with a final {"error","kind"} line instead of
// silent truncation.
type jsonItem struct {
	Kind  string `json:"kind"` // "markup" or "value"
	Type  string `json:"type,omitempty"`
	Value string `json:"value,omitempty"`
	XML   string `json:"xml"`
	Error string `json:"error,omitempty"`
}

func (s *Server) streamNDJSON(w http.ResponseWriter, res *nalquery.Results) {
	sp := &spillWriter{w: w, limit: s.cfg.SpillBytes, status: http.StatusOK,
		contentType: "application/x-ndjson"}
	enc := json.NewEncoder(sp)
	for item := range res.Seq() {
		line := jsonItem{Kind: "markup", XML: item.XML()}
		if item.IsValue() {
			v := item.Value()
			line = jsonItem{Kind: "value", Type: v.Kind().String(), Value: v.String(), XML: item.XML()}
		}
		enc.Encode(line)
	}
	if err := res.Err(); err != nil {
		s.countRunError(err)
		if !sp.committed {
			status, kind := errorStatus(err)
			writeError(w, status, kind, err.Error())
			return
		}
		_, kind := errorStatus(err)
		enc.Encode(jsonItem{Kind: "error", Error: err.Error(), Type: kind})
	}
	sp.finish()
}
