package server

import (
	"runtime"
	"time"
)

// Config are the robustness knobs of the query service. The zero value is
// usable: New applies the defaults below, chosen so a default deployment
// degrades gracefully instead of collapsing under overload.
type Config struct {
	// MaxInFlight bounds concurrent query runs (default: GOMAXPROCS).
	// Everything beyond it waits in the bounded queue.
	MaxInFlight int
	// MaxQueue bounds requests waiting for a slot (default: 4×MaxInFlight;
	// negative = no queue, shed as soon as all slots are busy). A request
	// arriving with the queue full is shed with 429/Retry-After.
	MaxQueue int
	// DefaultTimeout is the per-request run deadline applied when the
	// client sends none (default: 10s). It covers queue wait + execution.
	DefaultTimeout time.Duration
	// MaxTimeout caps client-requested deadlines (default: 60s): a slow
	// query can cost one slot for at most this long.
	MaxTimeout time.Duration
	// DrainTimeout is the graceful-shutdown budget (default: 10s): after
	// it, still-running queries are cancelled through their contexts.
	DrainTimeout time.Duration
	// RetryAfter is the client backoff hint sent with 429 responses
	// (default: 1s).
	RetryAfter time.Duration
	// MaxBodyBytes caps request bodies — query texts and document uploads
	// (default: 16 MiB).
	MaxBodyBytes int64
	// SpillBytes is the response-buffer threshold (default: 64 KiB). A run
	// failing before producing this much output still gets a proper error
	// status and JSON body; beyond it the response commits to streaming, so
	// large results never buffer whole.
	SpillBytes int
	// DefaultMaxMemory is the per-run memory budget applied when the client
	// sends none (default: 0 = unlimited). An over-budget run answers 413
	// with kind "resource" while the engine keeps serving.
	DefaultMaxMemory int64
	// MaxMemoryCap caps client-requested budgets (X-Nalquery-Max-Memory
	// header or ?max-memory=), the way MaxTimeout caps deadlines
	// (default: 1 GiB).
	MaxMemoryCap int64
	// Debug mounts the /debug endpoints (the panic probe used by the e2e
	// suite to prove panic isolation end to end).
	Debug bool
}

// withDefaults fills unset fields.
func (c Config) withDefaults() Config {
	if c.MaxInFlight <= 0 {
		c.MaxInFlight = runtime.GOMAXPROCS(0)
	}
	if c.MaxQueue < 0 {
		c.MaxQueue = 0
	} else if c.MaxQueue == 0 {
		c.MaxQueue = 4 * c.MaxInFlight
	}
	if c.DefaultTimeout <= 0 {
		c.DefaultTimeout = 10 * time.Second
	}
	if c.MaxTimeout <= 0 {
		c.MaxTimeout = 60 * time.Second
	}
	if c.DefaultTimeout > c.MaxTimeout {
		c.DefaultTimeout = c.MaxTimeout
	}
	if c.DrainTimeout <= 0 {
		c.DrainTimeout = 10 * time.Second
	}
	if c.RetryAfter <= 0 {
		c.RetryAfter = time.Second
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 16 << 20
	}
	if c.SpillBytes <= 0 {
		c.SpillBytes = 64 << 10
	}
	if c.MaxMemoryCap <= 0 {
		c.MaxMemoryCap = 1 << 30
	}
	if c.DefaultMaxMemory > c.MaxMemoryCap {
		c.DefaultMaxMemory = c.MaxMemoryCap
	}
	return c
}
