// Package budgetcharge checks the resource-governance charge map: every
// budget charge and fault-injection site in the engine must name its
// operator boundary with a stable trip-point label.
//
// The fault-injection sweep (faults_test.go) discovers each run's
// consulted trip points through the Budget hook and keys forced failures
// on the label, and ResourceError surfaces the label to users — so labels
// must be (a) declared Trip* string constants, never ad-hoc literals or
// computed strings, and (b) pairwise distinct. The only other accepted
// label argument is a forwarded parameter inside the charge plumbing
// itself (drainRows/drainRowsInto/Charge*/Fault/trip), whose own call
// sites are checked in turn.
package budgetcharge

import (
	"fmt"
	"go/ast"
	"go/constant"
	"go/types"
	"strings"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"
)

// Analyzer is the budgetcharge analyzer.
var Analyzer = &analysis.Analyzer{
	Name:     "budgetcharge",
	Doc:      "require every budget charge/fault site to carry a unique, stable Trip* label",
	Run:      run,
	Requires: []*analysis.Analyzer{inspect.Analyzer},
}

var pkgs = "nalquery/internal/algebra"

func init() {
	Analyzer.Flags.StringVar(&pkgs, "pkgs", pkgs,
		"comma-separated import paths of the packages carrying the charge map")
}

// labelArg maps a charge/fault callee name to the index of its trip-point
// label argument.
var labelArg = map[string]int{
	"drainRowsInto": 1,
	"drainRows":     1,
	"charge":        0,
	"ChargeRow":     0,
	"ChargeTuple":   0,
	"ChargeTuples":  0,
	"ChargeBytes":   0,
	"Fault":         0,
	"trip":          0,
}

// forwarders are the charge-plumbing functions allowed to pass their own
// label parameter through to an inner charge call.
var forwarders = map[string]bool{
	"drainRowsInto": true,
	"drainRows":     true,
	"charge":        true,
	"ChargeRow":     true,
	"ChargeTuple":   true,
	"ChargeTuples":  true,
	"ChargeBytes":   true,
	"Fault":         true,
	"trip":          true,
}

func run(pass *analysis.Pass) (any, error) {
	if !inScope(pass.Pkg.Path()) {
		return nil, nil
	}

	checkLabelUniqueness(pass)

	ins := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)
	ins.WithStack([]ast.Node{(*ast.CallExpr)(nil)}, func(n ast.Node, push bool, stack []ast.Node) bool {
		if !push {
			return true
		}
		call := n.(*ast.CallExpr)
		name := calleeName(call)
		idx, ok := labelArg[name]
		if !ok || len(call.Args) <= idx {
			return true
		}
		if strings.HasSuffix(pass.Fset.Position(call.Pos()).Filename, "_test.go") {
			return true
		}
		arg := call.Args[idx]
		if ok, why := validLabel(pass, arg, stack); !ok {
			pass.Reportf(arg.Pos(),
				"budgetcharge: %s label must be a declared Trip* constant so the fault-injection charge map stays stable (%s)",
				name, why)
		}
		return true
	})
	return nil, nil
}

// validLabel accepts a reference to a Trip* string constant, or a
// forwarded string parameter when the enclosing function is itself part
// of the charge plumbing.
func validLabel(pass *analysis.Pass, arg ast.Expr, stack []ast.Node) (bool, string) {
	var id *ast.Ident
	switch e := arg.(type) {
	case *ast.Ident:
		id = e
	case *ast.SelectorExpr:
		id = e.Sel
	default:
		return false, "got a non-identifier expression"
	}
	switch obj := pass.TypesInfo.Uses[id].(type) {
	case *types.Const:
		if !strings.HasPrefix(obj.Name(), "Trip") {
			return false, fmt.Sprintf("constant %s does not follow the Trip* naming scheme", obj.Name())
		}
		return true, ""
	case *types.Var:
		fn := enclosingFuncName(stack)
		if forwarders[fn] && isParamOf(pass, obj, stack) {
			return true, ""
		}
		return false, fmt.Sprintf("variable %s is not a forwarded label parameter of the charge plumbing", obj.Name())
	default:
		return false, "label does not resolve to a constant"
	}
}

func isParamOf(pass *analysis.Pass, v *types.Var, stack []ast.Node) bool {
	for i := len(stack) - 1; i >= 0; i-- {
		var ft *ast.FuncType
		switch f := stack[i].(type) {
		case *ast.FuncDecl:
			ft = f.Type
		case *ast.FuncLit:
			ft = f.Type
		default:
			continue
		}
		for _, field := range ft.Params.List {
			for _, pname := range field.Names {
				if pass.TypesInfo.Defs[pname] == v {
					return true
				}
			}
		}
		return false
	}
	return false
}

func enclosingFuncName(stack []ast.Node) string {
	for i := len(stack) - 1; i >= 0; i-- {
		if fd, ok := stack[i].(*ast.FuncDecl); ok {
			return fd.Name.Name
		}
	}
	return ""
}

// checkLabelUniqueness reports Trip* string constants sharing a value:
// the fault sweep and ResourceError reporting cannot tell such
// boundaries apart.
func checkLabelUniqueness(pass *analysis.Pass) {
	seen := map[string]*types.Const{}
	scope := pass.Pkg.Scope()
	for _, name := range scope.Names() {
		c, ok := scope.Lookup(name).(*types.Const)
		if !ok || !strings.HasPrefix(name, "Trip") {
			continue
		}
		if c.Val().Kind() != constant.String {
			continue
		}
		if strings.HasSuffix(pass.Fset.Position(c.Pos()).Filename, "_test.go") {
			continue
		}
		v := constant.StringVal(c.Val())
		if prev, dup := seen[v]; dup {
			pass.Reportf(c.Pos(),
				"budgetcharge: trip-point label %q of %s duplicates %s — labels must be unique across the charge map",
				v, name, prev.Name())
			continue
		}
		seen[v] = c
	}
}

func calleeName(call *ast.CallExpr) string {
	switch f := call.Fun.(type) {
	case *ast.Ident:
		return f.Name
	case *ast.SelectorExpr:
		return f.Sel.Name
	}
	return ""
}

func inScope(path string) bool {
	for _, p := range strings.Split(pkgs, ",") {
		if strings.TrimSpace(p) == path {
			return true
		}
	}
	return false
}
