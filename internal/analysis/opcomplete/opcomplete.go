// Package opcomplete mechanizes the engine's cross-file operator
// invariant: every concrete algebra.Op type must be handled by every
// dispatch surface that claims completeness over the operator algebra.
//
// The invariant used to live in convention only. Adding GroupSelf (PR 8)
// meant touching the algebra types, ResolveSchema, the rowiter dispatch,
// the cost model and both plan walkers in lockstep — and forgetting one
// surface failed slowly, in a differential sweep, instead of fast, in
// lint. opcomplete makes the lockstep mechanical:
//
//   - The package that owns the Op interface (-oppkg, default
//     nalquery/internal/algebra) exports the full set of concrete Op
//     implementations as a package fact.
//   - Any type switch over Op annotated with a marker comment
//
//     //nal:opswitch <surface> [exempt=TypeA,TypeB]
//
//     on the line directly above the switch statement is checked for
//     completeness against that set. Missing cases are reported by
//     operator name; exemptions must be real, unhandled operator types
//     (a stale exemption is itself a finding).
//   - The -require flag (pkg:surfaceA+surfaceB,pkg2:surfaceC) pins which
//     surfaces must exist in which packages, so deleting a marker comment
//     (or a whole dispatch function) is also a lint failure.
package opcomplete

import (
	"fmt"
	"go/ast"
	"go/types"
	"regexp"
	"sort"
	"strings"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"
)

// Analyzer is the opcomplete analyzer.
var Analyzer = &analysis.Analyzer{
	Name:      "opcomplete",
	Doc:       "check that every concrete algebra.Op is handled by every annotated dispatch surface (//nal:opswitch)",
	Run:       run,
	Requires:  []*analysis.Analyzer{inspect.Analyzer},
	FactTypes: []analysis.Fact{(*OpsFact)(nil)},
}

var (
	opPkg       = "nalquery/internal/algebra"
	opIfaceName = "Op"
	require     = "nalquery/internal/algebra:rowiter+schema," +
		"nalquery/internal/cost:cost," +
		"nalquery/internal/core:rewrite+sec2"
)

func init() {
	Analyzer.Flags.StringVar(&opPkg, "oppkg", opPkg,
		"import path of the package that declares the Op interface")
	Analyzer.Flags.StringVar(&opIfaceName, "opiface", opIfaceName,
		"name of the operator interface type inside oppkg")
	Analyzer.Flags.StringVar(&require, "require", require,
		"required surfaces per package, as pkg:surfaceA+surfaceB,pkg2:surfaceC")
}

// OpsFact is the package fact exported by the Op-owning package: the
// sorted names of every concrete type implementing the Op interface.
type OpsFact struct{ Ops []string }

// AFact marks OpsFact as an analysis.Fact.
func (*OpsFact) AFact() {}

func (f *OpsFact) String() string { return "ops(" + strings.Join(f.Ops, ",") + ")" }

// markerRe matches the //nal:opswitch annotation.
var markerRe = regexp.MustCompile(`^//nal:opswitch\s+([A-Za-z0-9_.-]+)(?:\s+exempt=([A-Za-z0-9_,]+))?\s*$`)

type marker struct {
	surface string
	exempt  []string
	used    bool
	pos     ast.Node
}

func run(pass *analysis.Pass) (any, error) {
	reqSurfaces := requiredSurfaces(pass.Pkg.Path())

	// Locate the Op-owning package: ourselves, or one of our imports.
	var opsPkg *types.Package
	if pass.Pkg.Path() == opPkg {
		opsPkg = pass.Pkg
	} else {
		for _, imp := range pass.Pkg.Imports() {
			if imp.Path() == opPkg {
				opsPkg = imp
				break
			}
		}
	}
	if opsPkg == nil {
		// A package that must host dispatch surfaces necessarily imports
		// the algebra; not importing it at all is already a finding.
		if len(reqSurfaces) > 0 && len(pass.Files) > 0 {
			pass.Reportf(pass.Files[0].Pos(),
				"opcomplete: package %s must host op dispatch surfaces %v but does not import %s",
				pass.Pkg.Path(), reqSurfaces, opPkg)
		}
		return nil, nil
	}

	ifaceObj := opsPkg.Scope().Lookup(opIfaceName)
	if ifaceObj == nil {
		return nil, fmt.Errorf("opcomplete: interface %s not found in %s", opIfaceName, opPkg)
	}
	iface, ok := ifaceObj.Type().Underlying().(*types.Interface)
	if !ok {
		return nil, fmt.Errorf("opcomplete: %s.%s is not an interface", opPkg, opIfaceName)
	}

	var ops []string
	if pass.Pkg.Path() == opPkg {
		ops = concreteOps(pass, iface)
		pass.ExportPackageFact(&OpsFact{Ops: ops})
	} else {
		var f OpsFact
		if !pass.ImportPackageFact(opsPkg, &f) {
			// The fact is produced whenever the Op-owning package is
			// analyzed; its absence means opcomplete did not run there
			// (e.g. a narrowed invocation), so there is nothing sound to
			// check against.
			return nil, nil
		}
		ops = f.Ops
	}

	markers := collectMarkers(pass)
	seen := map[string]bool{}

	ins := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)
	ins.Preorder([]ast.Node{(*ast.TypeSwitchStmt)(nil)}, func(n ast.Node) {
		ts := n.(*ast.TypeSwitchStmt)
		pos := pass.Fset.Position(ts.Pos())
		m := markers[markerKey{pos.Filename, pos.Line - 1}]
		if m == nil {
			return
		}
		m.used = true
		if !isOpSwitch(pass, ts, ifaceObj) {
			pass.Reportf(ts.Pos(),
				"opcomplete: surface %q is annotated //nal:opswitch but does not switch on %s.%s",
				m.surface, opsPkg.Name(), opIfaceName)
			return
		}
		if seen[m.surface] {
			pass.Reportf(ts.Pos(), "opcomplete: duplicate op switch surface %q in package %s",
				m.surface, pass.Pkg.Path())
		}
		seen[m.surface] = true
		checkSwitch(pass, ts, m, ops)
	})

	// Unused markers (annotation not directly above a type switch) are
	// invariants that silently stopped being enforced — report them.
	for _, m := range markers {
		if !m.used {
			pass.Reportf(m.pos.Pos(),
				"opcomplete: //nal:opswitch %s annotation is not attached to a type switch (it must sit on the line directly above one)",
				m.surface)
		}
	}

	for _, s := range reqSurfaces {
		if !seen[s] {
			pass.Reportf(pass.Files[0].Pos(),
				"opcomplete: package %s must contain an op dispatch surface %q (//nal:opswitch %s), but none was found",
				pass.Pkg.Path(), s, s)
		}
	}
	return nil, nil
}

// concreteOps enumerates the non-test concrete named types of the current
// package that implement the operator interface.
func concreteOps(pass *analysis.Pass, iface *types.Interface) []string {
	var ops []string
	scope := pass.Pkg.Scope()
	for _, name := range scope.Names() {
		tn, ok := scope.Lookup(name).(*types.TypeName)
		if !ok || tn.IsAlias() {
			continue
		}
		// Fixture operators declared in _test.go files are not part of
		// the algebra.
		if strings.HasSuffix(pass.Fset.Position(tn.Pos()).Filename, "_test.go") {
			continue
		}
		t := tn.Type()
		if types.IsInterface(t) {
			continue
		}
		if types.Implements(t, iface) || types.Implements(types.NewPointer(t), iface) {
			ops = append(ops, name)
		}
	}
	sort.Strings(ops)
	return ops
}

type markerKey struct {
	file string
	line int
}

func collectMarkers(pass *analysis.Pass) map[markerKey]*marker {
	out := map[markerKey]*marker{}
	for _, f := range pass.Files {
		fname := pass.Fset.Position(f.Pos()).Filename
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				sub := markerRe.FindStringSubmatch(c.Text)
				if sub == nil {
					continue
				}
				m := &marker{surface: sub[1], pos: c}
				if sub[2] != "" {
					m.exempt = strings.Split(sub[2], ",")
				}
				out[markerKey{fname, pass.Fset.Position(c.Pos()).Line}] = m
			}
		}
	}
	return out
}

// isOpSwitch reports whether the type switch's tag expression has the
// operator interface type.
func isOpSwitch(pass *analysis.Pass, ts *ast.TypeSwitchStmt, ifaceObj types.Object) bool {
	var x ast.Expr
	switch a := ts.Assign.(type) {
	case *ast.AssignStmt:
		if ta, ok := a.Rhs[0].(*ast.TypeAssertExpr); ok {
			x = ta.X
		}
	case *ast.ExprStmt:
		if ta, ok := a.X.(*ast.TypeAssertExpr); ok {
			x = ta.X
		}
	}
	if x == nil {
		return false
	}
	t := pass.TypesInfo.Types[x].Type
	return t != nil && types.Identical(t, ifaceObj.Type())
}

func checkSwitch(pass *analysis.Pass, ts *ast.TypeSwitchStmt, m *marker, ops []string) {
	handled := map[string]bool{}
	for _, stmt := range ts.Body.List {
		cc, ok := stmt.(*ast.CaseClause)
		if !ok {
			continue
		}
		for _, te := range cc.List {
			t := pass.TypesInfo.Types[te].Type
			if t == nil {
				continue
			}
			if p, ok := t.(*types.Pointer); ok {
				t = p.Elem()
			}
			named, ok := t.(*types.Named)
			if !ok {
				continue
			}
			obj := named.Obj()
			if obj.Pkg() != nil && obj.Pkg().Path() == opPkg {
				handled[obj.Name()] = true
			}
		}
	}

	known := map[string]bool{}
	for _, op := range ops {
		known[op] = true
	}
	exempt := map[string]bool{}
	for _, e := range m.exempt {
		exempt[e] = true
		if !known[e] {
			pass.Reportf(ts.Pos(),
				"opcomplete: surface %q exempts %s, which is not a concrete %s implementation",
				m.surface, e, opIfaceName)
		} else if handled[e] {
			pass.Reportf(ts.Pos(),
				"opcomplete: surface %q exempts %s but the switch handles it (stale exemption)",
				m.surface, e)
		}
	}

	var missing []string
	for _, op := range ops {
		if !handled[op] && !exempt[op] {
			missing = append(missing, op)
		}
	}
	if len(missing) > 0 {
		pass.Reportf(ts.Pos(),
			"opcomplete: op switch surface %q is missing cases for: %s",
			m.surface, strings.Join(missing, ", "))
	}
}

func requiredSurfaces(pkgPath string) []string {
	for _, ent := range strings.Split(require, ",") {
		ent = strings.TrimSpace(ent)
		if ent == "" {
			continue
		}
		i := strings.LastIndex(ent, ":")
		if i < 0 || ent[:i] != pkgPath {
			continue
		}
		return strings.Split(ent[i+1:], "+")
	}
	return nil
}
