// Package analysis hosts nalquery's project-specific static analyzers —
// the nalvet suite. Each analyzer mechanizes one cross-file invariant of
// the engine that was previously enforced only by convention and
// after-the-fact tests; see docs/ANALYSIS.md for the catalogue and the
// annotation grammar.
package analysis

import (
	"golang.org/x/tools/go/analysis"

	"nalquery/internal/analysis/budgetcharge"
	"nalquery/internal/analysis/ctxpoll"
	"nalquery/internal/analysis/mustparse"
	"nalquery/internal/analysis/opcomplete"
	"nalquery/internal/analysis/panicdiscipline"
)

// All returns every nalvet analyzer, in stable order.
func All() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		opcomplete.Analyzer,
		panicdiscipline.Analyzer,
		budgetcharge.Analyzer,
		mustparse.Analyzer,
		ctxpoll.Analyzer,
	}
}
