// Package ctxpoll enforces the engine's cancellation contract at its
// scan producers: any function that charges tuples under the TripScan
// label (the Υ/IndexScan tuple-producing loops) must also poll
// cancellation — a Cancelled() call inside a loop of the same function.
//
// Scan producers are where unbounded work originates; every other
// operator consumes what a scan produced. A scan loop that charges the
// budget but never polls Cancelled() keeps a cancelled or deadline-
// expired run burning CPU until its next pipeline breaker, which is
// exactly the degradation mode the per-request deadline tier (PR 6) and
// budget tier (PR 7) exist to prevent.
package ctxpoll

import (
	"go/ast"
	"strings"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"
)

// Analyzer is the ctxpoll analyzer.
var Analyzer = &analysis.Analyzer{
	Name:     "ctxpoll",
	Doc:      "require tuple-producing scan loops (TripScan charge sites) to poll cancellation in-loop",
	Run:      run,
	Requires: []*analysis.Analyzer{inspect.Analyzer},
}

var (
	scanLabel = "TripScan"
	pollName  = "Cancelled"
)

func init() {
	Analyzer.Flags.StringVar(&scanLabel, "label", scanLabel,
		"trip-point label that marks a scan-producer charge site")
	Analyzer.Flags.StringVar(&pollName, "poll", pollName,
		"name of the cancellation poll method")
}

func run(pass *analysis.Pass) (any, error) {
	// Cache the poll check per enclosing function node.
	polled := map[ast.Node]bool{}

	ins := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)
	ins.WithStack([]ast.Node{(*ast.CallExpr)(nil)}, func(n ast.Node, push bool, stack []ast.Node) bool {
		if !push {
			return true
		}
		call := n.(*ast.CallExpr)
		if len(call.Args) == 0 || !isScanLabel(call.Args[0]) {
			return true
		}
		if strings.HasSuffix(pass.Fset.Position(call.Pos()).Filename, "_test.go") {
			return true
		}
		fn := enclosingFunc(stack)
		if fn == nil {
			return true
		}
		ok, cached := polled[fn]
		if !cached {
			ok = hasLoopPoll(fn)
			polled[fn] = ok
		}
		if !ok {
			pass.Reportf(call.Pos(),
				"ctxpoll: scan loop charges %s but its function never polls %s() inside a loop — a cancelled run would keep scanning until the next pipeline breaker",
				scanLabel, pollName)
		}
		return true
	})
	return nil, nil
}

func isScanLabel(arg ast.Expr) bool {
	switch e := arg.(type) {
	case *ast.Ident:
		return e.Name == scanLabel
	case *ast.SelectorExpr:
		return e.Sel.Name == scanLabel
	}
	return false
}

func enclosingFunc(stack []ast.Node) ast.Node {
	for i := len(stack) - 1; i >= 0; i-- {
		switch stack[i].(type) {
		case *ast.FuncDecl, *ast.FuncLit:
			return stack[i]
		}
	}
	return nil
}

// hasLoopPoll reports whether fn contains a for/range statement whose
// body calls the cancellation poll. Nested function literals are their
// own scan contexts and do not satisfy the enclosing function's poll
// obligation.
func hasLoopPoll(fn ast.Node) bool {
	var body *ast.BlockStmt
	switch f := fn.(type) {
	case *ast.FuncDecl:
		body = f.Body
	case *ast.FuncLit:
		body = f.Body
	}
	if body == nil {
		return false
	}
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch l := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.ForStmt:
			if loopPolls(l.Body) {
				found = true
			}
		case *ast.RangeStmt:
			if loopPolls(l.Body) {
				found = true
			}
		}
		return !found
	})
	return found
}

func loopPolls(body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		switch f := call.Fun.(type) {
		case *ast.Ident:
			found = found || f.Name == pollName
		case *ast.SelectorExpr:
			found = found || f.Sel.Name == pollName
		}
		return !found
	})
	return found
}
