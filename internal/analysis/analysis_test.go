package analysis_test

import (
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"nalquery/internal/analysis/vettest"
)

// metaFlags point opcomplete at the fixture's miniature algebra and pin
// its five dispatch surfaces, mirroring the real -require default.
var metaFlags = []string{
	"-opcomplete.oppkg=fixture/engine",
	"-opcomplete.require=fixture/engine:rowiter+schema,fixture/planner:cost+rewrite+sec2",
}

func TestOpcompleteCleanOnCompleteSurfaces(t *testing.T) {
	vettest.RunAndCheck(t, "testdata/opcomplete/meta", metaFlags...)
}

func TestOpcompleteViolations(t *testing.T) {
	vettest.RunAndCheck(t, "testdata/opcomplete/bad",
		"-opcomplete.oppkg=fixture/engine",
		"-opcomplete.require=fixture/engine:dispatch+ghost",
	)
}

// TestOpcompleteCatchesRemovedOperator is the meta-test of the issue's
// acceptance criteria: delete one operator's case clause from a copy of
// every dispatch surface and assert opcomplete names each broken surface.
func TestOpcompleteCatchesRemovedOperator(t *testing.T) {
	dir := vettest.CopyFixture(t, "testdata/opcomplete/meta")

	// Strip every "case GroupSelf:"/"case engine.GroupSelf:" clause (the
	// case line plus its single return statement) from both fixture files.
	caseRe := regexp.MustCompile(`(?m)^\tcase (?:engine\.)?GroupSelf:\n\t\treturn [^\n]+\n`)
	for _, rel := range []string{"engine/engine.go", "planner/planner.go"} {
		path := filepath.Join(dir, rel)
		src, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		mutated := caseRe.ReplaceAll(src, nil)
		if string(mutated) == string(src) {
			t.Fatalf("mutation did not remove any GroupSelf case from %s", rel)
		}
		if err := os.WriteFile(path, mutated, 0o644); err != nil {
			t.Fatal(err)
		}
	}

	diags := vettest.Run(t, dir, metaFlags...)

	surfaces := map[string]bool{}
	for _, d := range diags {
		if d.Analyzer != "opcomplete" {
			t.Errorf("unexpected %s finding after mutation: %s", d.Analyzer, d)
			continue
		}
		if !strings.Contains(d.Message, "GroupSelf") {
			t.Errorf("opcomplete finding does not name the removed operator: %s", d)
			continue
		}
		m := regexp.MustCompile(`surface "([a-z0-9]+)"`).FindStringSubmatch(d.Message)
		if m == nil {
			t.Errorf("opcomplete finding does not name its surface: %s", d)
			continue
		}
		if surfaces[m[1]] {
			t.Errorf("surface %q reported twice", m[1])
		}
		surfaces[m[1]] = true
	}
	for _, want := range []string{"rowiter", "schema", "cost", "rewrite", "sec2"} {
		if !surfaces[want] {
			t.Errorf("removing the GroupSelf case was not reported for surface %q (diags: %v)", want, diags)
		}
	}
	if len(diags) != 5 {
		t.Errorf("want exactly 5 findings (one per surface), got %d: %v", len(diags), diags)
	}
}

func TestPanicDiscipline(t *testing.T) {
	vettest.RunAndCheck(t, "testdata/panicdiscipline",
		"-panicdiscipline.pkgs=fixture/engine")
}

func TestBudgetCharge(t *testing.T) {
	vettest.RunAndCheck(t, "testdata/budgetcharge",
		"-budgetcharge.pkgs=fixture/engine")
}

func TestMustParse(t *testing.T) {
	vettest.RunAndCheck(t, "testdata/mustparse",
		"-mustparse.allowpkgs=fixture/experiments")
}

func TestCtxPoll(t *testing.T) {
	vettest.RunAndCheck(t, "testdata/ctxpoll")
}
