// Package vettest is the fixture harness for the nalvet analyzers.
//
// golang.org/x/tools/go/analysis/analysistest needs go/packages, which
// the offline toolchain does not ship; this harness instead exercises the
// exact production path: it builds cmd/nalvet once, copies a fixture tree
// into a throwaway module, runs "go vet -vettool=nalvet -json" over it,
// and checks the JSON findings against analysistest-style expectations —
// comments of the form
//
//	// want "regexp" "another regexp"
//
// anchored to the line they sit on. Unmatched expectations and unexpected
// findings both fail the test, so fixtures prove each analyzer fires on
// seeded violations and stays silent on compliant code.
package vettest

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"sync"
	"testing"
)

// Diag is one finding parsed from go vet's JSON output.
type Diag struct {
	Analyzer string
	File     string // relative to the fixture module root
	Line     int
	Message  string
}

func (d Diag) String() string {
	return fmt.Sprintf("%s:%d: [%s] %s", d.File, d.Line, d.Analyzer, d.Message)
}

var (
	buildOnce sync.Once
	toolPath  string
	buildErr  error
)

// Tool builds cmd/nalvet once per test process and returns its path.
func Tool(t *testing.T) string {
	t.Helper()
	buildOnce.Do(func() {
		root, err := repoRoot()
		if err != nil {
			buildErr = err
			return
		}
		dir, err := os.MkdirTemp("", "nalvet-tool-")
		if err != nil {
			buildErr = err
			return
		}
		toolPath = filepath.Join(dir, "nalvet")
		cmd := exec.Command("go", "build", "-o", toolPath, "nalquery/cmd/nalvet")
		cmd.Dir = root
		if out, err := cmd.CombinedOutput(); err != nil {
			buildErr = fmt.Errorf("building nalvet: %v\n%s", err, out)
		}
	})
	if buildErr != nil {
		t.Fatal(buildErr)
	}
	return toolPath
}

func repoRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		b, err := os.ReadFile(filepath.Join(dir, "go.mod"))
		if err == nil && bytes.HasPrefix(bytes.TrimSpace(b), []byte("module nalquery")) {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("vettest: repo root (module nalquery) not found above %s", dir)
		}
		dir = parent
	}
}

// CopyFixture copies the fixture tree at src into a fresh throwaway
// module under t.TempDir and returns the module root.
func CopyFixture(t *testing.T, src string) string {
	t.Helper()
	dst := t.TempDir()
	if err := copyTree(src, dst); err != nil {
		t.Fatalf("copying fixture %s: %v", src, err)
	}
	mod := filepath.Join(dst, "go.mod")
	if _, err := os.Stat(mod); os.IsNotExist(err) {
		if err := os.WriteFile(mod, []byte("module fixture\n\ngo 1.23\n"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dst
}

func copyTree(src, dst string) error {
	return filepath.Walk(src, func(path string, info os.FileInfo, err error) error {
		if err != nil {
			return err
		}
		rel, err := filepath.Rel(src, path)
		if err != nil {
			return err
		}
		target := filepath.Join(dst, rel)
		if info.IsDir() {
			return os.MkdirAll(target, 0o755)
		}
		b, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		return os.WriteFile(target, b, 0o644)
	})
}

// Run executes nalvet over the fixture module and returns its findings.
// Build failures of the fixture itself are fatal.
func Run(t *testing.T, moduleDir string, flags ...string) []Diag {
	t.Helper()
	tool := Tool(t)
	args := append([]string{"vet", "-vettool=" + tool, "-json"}, flags...)
	args = append(args, "./...")
	cmd := exec.Command("go", args...)
	cmd.Dir = moduleDir
	cmd.Env = append(os.Environ(), "GOWORK=off", "GOFLAGS=")
	out, _ := cmd.CombinedOutput()
	diags, err := parseJSON(out)
	if err != nil {
		t.Fatalf("go vet output not parseable: %v\noutput:\n%s", err, out)
	}
	for i := range diags {
		if rel, err := filepath.Rel(moduleDir, diags[i].File); err == nil && !strings.HasPrefix(rel, "..") {
			diags[i].File = rel
		}
	}
	return diags
}

// parseJSON decodes go vet -json output: '#' comment lines interleaved
// with one JSON object per package, keyed package → analyzer → findings.
func parseJSON(out []byte) ([]Diag, error) {
	var clean bytes.Buffer
	for _, line := range bytes.Split(out, []byte("\n")) {
		if bytes.HasPrefix(bytes.TrimSpace(line), []byte("#")) {
			continue
		}
		clean.Write(line)
		clean.WriteByte('\n')
	}
	var diags []Diag
	dec := json.NewDecoder(&clean)
	for dec.More() {
		var obj map[string]map[string][]struct {
			Posn    string `json:"posn"`
			Message string `json:"message"`
		}
		if err := dec.Decode(&obj); err != nil {
			return nil, err
		}
		for _, byAnalyzer := range obj {
			for analyzer, findings := range byAnalyzer {
				for _, f := range findings {
					file, line := splitPosn(f.Posn)
					diags = append(diags, Diag{Analyzer: analyzer, File: file, Line: line, Message: f.Message})
				}
			}
		}
	}
	return diags, nil
}

func splitPosn(posn string) (string, int) {
	parts := strings.Split(posn, ":")
	if len(parts) < 2 {
		return posn, 0
	}
	// file:line:col — the file part may contain no further colons on
	// the platforms we run on.
	line, _ := strconv.Atoi(parts[len(parts)-2])
	return strings.Join(parts[:len(parts)-2], ":"), line
}

// want anchors to its own line; want-below anchors to the line beneath
// it (for findings reported at a comment that cannot itself carry a
// trailing want, like a malformed //nal: annotation).
var wantRe = regexp.MustCompile(`//\s*want(-below)?\s+(.*)$`)
var wantArgRe = regexp.MustCompile(`"((?:[^"\\]|\\.)*)"`)

type expectation struct {
	file string
	line int
	re   *regexp.Regexp
	raw  string
}

// Check compares findings against the fixture's // want expectations.
func Check(t *testing.T, moduleDir string, diags []Diag) {
	t.Helper()
	var wants []expectation
	err := filepath.Walk(moduleDir, func(path string, info os.FileInfo, err error) error {
		if err != nil || info.IsDir() || !strings.HasSuffix(path, ".go") {
			return err
		}
		rel, _ := filepath.Rel(moduleDir, path)
		b, rerr := os.ReadFile(path)
		if rerr != nil {
			return rerr
		}
		for i, line := range strings.Split(string(b), "\n") {
			m := wantRe.FindStringSubmatch(line)
			if m == nil {
				continue
			}
			wantLine := i + 1
			if m[1] == "-below" {
				wantLine++
			}
			for _, arg := range wantArgRe.FindAllStringSubmatch(m[2], -1) {
				re, cerr := regexp.Compile(arg[1])
				if cerr != nil {
					return fmt.Errorf("%s:%d: bad want pattern %q: %v", rel, i+1, arg[1], cerr)
				}
				wants = append(wants, expectation{file: rel, line: wantLine, re: re, raw: arg[1]})
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}

	matched := make([]bool, len(diags))
	for _, w := range wants {
		found := false
		for i, d := range diags {
			if matched[i] || d.File != w.file || d.Line != w.line {
				continue
			}
			if w.re.MatchString(d.Message) {
				matched[i] = true
				found = true
				break
			}
		}
		if !found {
			t.Errorf("missing expected finding at %s:%d matching %q", w.file, w.line, w.raw)
		}
	}
	for i, d := range diags {
		if !matched[i] {
			t.Errorf("unexpected finding: %s", d)
		}
	}
}

// RunAndCheck is the common fixture flow: copy, vet, compare.
func RunAndCheck(t *testing.T, fixture string, flags ...string) {
	t.Helper()
	dir := CopyFixture(t, fixture)
	Check(t, dir, Run(t, dir, flags...))
}
