// Package panicdiscipline enforces the engine's recover-at-boundary
// contract: inside the engine packages the one sanctioned panic is the
// resource-budget trip (a *ResourceTrip payload, recovered into a typed
// error at the public Run/Results boundary). Every other panic must
// either be removed or carry an explicit justification:
//
//	//nal:allow-panic <reason>
//
// on the line directly above (or trailing the line of) the panic call.
// An annotation without a reason is itself a finding — the reason is the
// review record for why the recover contract cannot erode through this
// site.
//
// Test files are exempt: the contract protects production input paths.
package panicdiscipline

import (
	"go/ast"
	"go/types"
	"regexp"
	"strings"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"
)

// Analyzer is the panicdiscipline analyzer.
var Analyzer = &analysis.Analyzer{
	Name:     "panicdiscipline",
	Doc:      "forbid raw panic in engine packages outside the sanctioned ResourceTrip site unless annotated //nal:allow-panic <reason>",
	Run:      run,
	Requires: []*analysis.Analyzer{inspect.Analyzer},
}

var (
	pkgs = "nalquery," +
		"nalquery/internal/algebra," +
		"nalquery/internal/core," +
		"nalquery/internal/value," +
		"nalquery/internal/xpath," +
		"nalquery/internal/dom," +
		"nalquery/internal/xquery"
	tripType = "ResourceTrip"
)

func init() {
	Analyzer.Flags.StringVar(&pkgs, "pkgs", pkgs,
		"comma-separated import paths of the engine packages the discipline applies to")
	Analyzer.Flags.StringVar(&tripType, "triptype", tripType,
		"name of the sanctioned panic payload type")
}

var allowRe = regexp.MustCompile(`^//nal:allow-panic(?:\s+(.*\S))?\s*$`)

func run(pass *analysis.Pass) (any, error) {
	if !inScope(pass.Pkg.Path()) {
		return nil, nil
	}

	// file → line → reason ("" = annotation present but reason missing).
	allows := map[string]map[int]string{}
	for _, f := range pass.Files {
		fname := pass.Fset.Position(f.Pos()).Filename
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				sub := allowRe.FindStringSubmatch(c.Text)
				if sub == nil {
					continue
				}
				if allows[fname] == nil {
					allows[fname] = map[int]string{}
				}
				allows[fname][pass.Fset.Position(c.Pos()).Line] = sub[1]
			}
		}
	}

	ins := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)
	ins.Preorder([]ast.Node{(*ast.CallExpr)(nil)}, func(n ast.Node) {
		call := n.(*ast.CallExpr)
		id, ok := call.Fun.(*ast.Ident)
		if !ok || id.Name != "panic" {
			return
		}
		if _, ok := pass.TypesInfo.Uses[id].(*types.Builtin); !ok {
			return
		}
		pos := pass.Fset.Position(call.Pos())
		if strings.HasSuffix(pos.Filename, "_test.go") {
			return
		}
		if len(call.Args) == 1 && isTripPayload(pass, call.Args[0]) {
			return
		}
		if lines, ok := allows[pos.Filename]; ok {
			if reason, ok := annotationFor(lines, pos.Line); ok {
				if reason == "" {
					pass.Reportf(call.Pos(),
						"panicdiscipline: //nal:allow-panic annotation needs a reason (//nal:allow-panic <why this cannot erode the recover contract>)")
				}
				return
			}
		}
		pass.Reportf(call.Pos(),
			"panicdiscipline: raw panic in engine package %s — the engine's one sanctioned panic is the *%s budget trip; return an error, or annotate //nal:allow-panic <reason>",
			pass.Pkg.Path(), tripType)
	})
	return nil, nil
}

// annotationFor accepts an annotation on the panic's own line (trailing
// comment) or on the line directly above it.
func annotationFor(lines map[int]string, line int) (string, bool) {
	if r, ok := lines[line]; ok {
		return r, true
	}
	if r, ok := lines[line-1]; ok {
		return r, true
	}
	return "", false
}

func isTripPayload(pass *analysis.Pass, arg ast.Expr) bool {
	t := pass.TypesInfo.Types[arg].Type
	if t == nil {
		return false
	}
	p, ok := t.(*types.Pointer)
	if !ok {
		return false
	}
	named, ok := p.Elem().(*types.Named)
	return ok && named.Obj().Name() == tripType
}

func inScope(path string) bool {
	for _, p := range strings.Split(pkgs, ",") {
		if strings.TrimSpace(p) == path {
			return true
		}
	}
	return false
}
