// Package mustparse makes PR 8's manual MustParse audit permanent.
//
// MustParse/MustParseString panic on malformed input, so the
// panic-freedom contract of the public boundaries (Engine.Compile,
// Prepare, the HTTP handlers: arbitrary input yields a typed error)
// requires them to never sit on a production input path. The rule:
//
//   - calls in _test.go files are allowed (test inputs are authored);
//   - calls in the allowed experiment packages (-allowpkgs, default
//     nalquery/internal/experiments) are allowed only with a
//     compile-time-constant string argument;
//   - every other call site is a finding.
package mustparse

import (
	"go/ast"
	"go/constant"
	"strings"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"
)

// Analyzer is the mustparse analyzer.
var Analyzer = &analysis.Analyzer{
	Name:     "mustparse",
	Doc:      "confine MustParse/MustParseString to _test.go files and experiment packages with constant-string arguments",
	Run:      run,
	Requires: []*analysis.Analyzer{inspect.Analyzer},
}

var (
	allowPkgs = "nalquery/internal/experiments"
	funcs     = "MustParse,MustParseString"
)

func init() {
	Analyzer.Flags.StringVar(&allowPkgs, "allowpkgs", allowPkgs,
		"comma-separated import paths allowed to call MustParse outside tests (constant args only)")
	Analyzer.Flags.StringVar(&funcs, "funcs", funcs,
		"comma-separated names of the panicking parse helpers")
}

func run(pass *analysis.Pass) (any, error) {
	names := map[string]bool{}
	for _, f := range strings.Split(funcs, ",") {
		names[strings.TrimSpace(f)] = true
	}

	ins := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)
	ins.Preorder([]ast.Node{(*ast.CallExpr)(nil)}, func(n ast.Node) {
		call := n.(*ast.CallExpr)
		name := calleeName(call)
		if !names[name] {
			return
		}
		pos := pass.Fset.Position(call.Pos())
		if strings.HasSuffix(pos.Filename, "_test.go") {
			return
		}
		if !allowed(pass.Pkg.Path()) {
			pass.Reportf(call.Pos(),
				"mustparse: %s panics on malformed input and is confined to _test.go files and %s — parse with the error-returning form instead",
				name, allowPkgs)
			return
		}
		if len(call.Args) == 0 {
			return
		}
		tv := pass.TypesInfo.Types[call.Args[0]]
		if tv.Value == nil || tv.Value.Kind() != constant.String {
			pass.Reportf(call.Args[0].Pos(),
				"mustparse: %s outside tests requires a compile-time constant string argument (the panic-freedom audit must be decidable statically)",
				name)
		}
	})
	return nil, nil
}

func allowed(path string) bool {
	for _, p := range strings.Split(allowPkgs, ",") {
		if strings.TrimSpace(p) == path {
			return true
		}
	}
	return false
}

func calleeName(call *ast.CallExpr) string {
	switch f := call.Fun.(type) {
	case *ast.Ident:
		return f.Name
	case *ast.SelectorExpr:
		return f.Sel.Name
	}
	return ""
}
