// Package engine seeds the panicdiscipline cases: the sanctioned
// ResourceTrip panic, annotated panics (above and trailing), a raw
// panic, and an annotation with no reason.
package engine

// ResourceTrip is the sanctioned panic payload.
type ResourceTrip struct{ Op string }

func sanctioned() {
	panic(&ResourceTrip{Op: "sort"})
}

func raw() {
	panic("boom") // want "raw panic in engine package"
}

func annotatedAbove() {
	//nal:allow-panic unreachable by construction: callers validate first
	panic("unreachable")
}

func annotatedTrailing() {
	panic("unreachable") //nal:allow-panic invariant checked at the boundary
}

func missingReason() {
	//nal:allow-panic
	panic("unreachable") // want "annotation needs a reason"
}

func use() {
	defer func() { _ = recover() }()
	sanctioned()
	raw()
	annotatedAbove()
	annotatedTrailing()
	missingReason()
}
