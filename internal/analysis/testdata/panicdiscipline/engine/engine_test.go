package engine

import "testing"

// Test files are outside the discipline: raw panics are fine here.
func TestPanicAllowed(t *testing.T) {
	defer func() { _ = recover() }()
	panic("test-only panic, no finding expected")
}
