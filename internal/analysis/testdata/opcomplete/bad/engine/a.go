// Package engine seeds one of each opcomplete violation class: a switch
// missing an operator case, an unknown exemption, a stale exemption, a
// marker on a non-Op switch, a floating marker, and a required surface
// that does not exist (the "ghost" surface demanded via -require).
package engine // want "must contain an op dispatch surface \"ghost\""

// Op is the operator interface.
type Op interface {
	Children() []Op
}

// Scan is a leaf operator.
type Scan struct{}

// Children implements Op.
func (Scan) Children() []Op { return nil }

// Filter is a unary operator.
type Filter struct{ In Op }

// Children implements Op.
func (f Filter) Children() []Op { return []Op{f.In} }

// Sort is a unary operator the dispatch handles despite its exemption.
type Sort struct{ In Op }

// Children implements Op.
func (s Sort) Children() []Op { return []Op{s.In} }

// Dispatch exempts a type it handles (Sort), exempts a type that is not
// an operator (Bogus), and forgets Filter entirely.
func Dispatch(op Op) int {
	//nal:opswitch dispatch exempt=Sort,Bogus
	switch op.(type) { // want "exempts Bogus, which is not a concrete Op implementation" "exempts Sort but the switch handles it" "missing cases for: Filter"
	case Scan:
		return 1
	case Sort:
		return 2
	}
	return 0
}

// NotOp carries a marker on a switch whose tag is not the Op interface.
func NotOp(x interface{}) int {
	//nal:opswitch wrongtag
	switch x.(type) { // want "annotated //nal:opswitch but does not switch on engine.Op"
	case int:
		return 1
	}
	return 0
}

// A marker with no type switch on the next line is a silently-dropped
// invariant and must be reported at the annotation itself.

// want-below "annotation is not attached to a type switch"
//nal:opswitch floating
var orphan = 0

func init() { _ = orphan }
