// Package planner consumes fixture/engine's Op set across a package
// boundary, mirroring how cost and core consume internal/algebra: the
// three surfaces here can only be checked through the OpsFact exported
// by the engine package, so this fixture proves fact flow works under
// the unitchecker protocol.
package planner

import "fixture/engine"

// Cost mirrors the cost-model dispatch surface.
func Cost(op engine.Op) int {
	//nal:opswitch cost
	switch op.(type) {
	case engine.Scan:
		return 1
	case engine.Filter:
		return 2
	case engine.GroupSelf:
		return 3
	}
	return 0
}

// Rewrite mirrors the logical-rewrite walker: Scan is a leaf the walker
// never descends into, so it is exempted rather than handled.
func Rewrite(op engine.Op) engine.Op {
	//nal:opswitch rewrite exempt=Scan
	switch w := op.(type) {
	case engine.Filter:
		return w
	case engine.GroupSelf:
		return w
	}
	return op
}

// Rebuild mirrors the simplifier's rebuildChildren surface.
func Rebuild(op engine.Op) engine.Op {
	//nal:opswitch sec2
	switch w := op.(type) {
	case engine.Scan:
		return w
	case engine.Filter:
		return w
	case engine.GroupSelf:
		return w
	}
	return op
}
