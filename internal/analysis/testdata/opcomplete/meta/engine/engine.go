// Package engine is a miniature of the real operator algebra: an Op
// interface, three concrete implementations, and two in-package dispatch
// surfaces (mirroring rowiter and schema). The meta-test mutates copies
// of this tree to prove opcomplete catches a deleted case on every
// surface; unmutated it must be finding-free.
package engine

// Op is the operator interface the analyzer enumerates implementations of.
type Op interface {
	Children() []Op
}

// Scan is a leaf operator.
type Scan struct{}

// Children implements Op.
func (Scan) Children() []Op { return nil }

// Filter is a unary operator.
type Filter struct{ In Op }

// Children implements Op.
func (f Filter) Children() []Op { return []Op{f.In} }

// GroupSelf is a unary operator; the meta-test deletes its cases.
type GroupSelf struct{ In Op }

// Children implements Op.
func (g GroupSelf) Children() []Op { return []Op{g.In} }

// Open mirrors the rowiter dispatch surface.
func Open(op Op) int {
	//nal:opswitch rowiter
	switch op.(type) {
	case Scan:
		return 1
	case Filter:
		return 2
	case GroupSelf:
		return 3
	}
	return 0
}

// Schema mirrors the ResolveSchema dispatch surface.
func Schema(op Op) int {
	//nal:opswitch schema
	switch op.(type) {
	case Scan:
		return 10
	case Filter:
		return 20
	case GroupSelf:
		return 30
	}
	return 0
}
