// Package experiments is an allowed package: MustParse is fine with a
// compile-time constant string, a finding otherwise.
package experiments

import "fixture/parser"

// ConstantPath is the sanctioned experiment-harness shape.
func ConstantPath() int {
	return parser.MustParse("bidtuple/itemno")
}

// DynamicPath feeds runtime data into the panicking form.
func DynamicPath(path string) int {
	return parser.MustParse(path) // want "compile-time constant string"
}
