// Package app is a production package: MustParse is forbidden here even
// with a constant argument.
package app

import "fixture/parser"

// Use sits on a production path.
func Use() int {
	return parser.MustParse("books/title") // want "confined to _test.go"
}
