package app

import (
	"fixture/parser"
	"testing"
)

// Test files may call MustParse freely, even with dynamic arguments.
func TestMustParseAllowed(t *testing.T) {
	path := "books/title"
	if parser.MustParse(path) == 0 {
		t.Fatal("unexpected")
	}
}
