// Package parser declares the panicking parse helper the mustparse
// fixture confines.
package parser

// MustParse parses a path and panics on error.
func MustParse(s string) int {
	if s == "" {
		panic("parser: empty path")
	}
	return len(s)
}
