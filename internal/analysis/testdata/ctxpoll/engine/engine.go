// Package engine seeds the ctxpoll cases: a scan loop that polls, one
// that never polls, one that polls only outside the loop, and one whose
// only poll is buried in a nested closure.
package engine

// TripScan marks the tuple-producing charge sites.
const TripScan = "scan"

// Ctx is the miniature budget context.
type Ctx struct{}

// ChargeTuple charges one produced tuple.
func (c *Ctx) ChargeTuple(point string, n int) { _, _ = point, n }

// Cancelled reports whether the run was cancelled.
func (c *Ctx) Cancelled() bool { return false }

func good(c *Ctx, items []int) {
	for range items {
		if c.Cancelled() {
			break
		}
		c.ChargeTuple(TripScan, 1)
	}
}

func bad(c *Ctx, items []int) {
	for range items {
		c.ChargeTuple(TripScan, 1) // want "never polls Cancelled"
	}
}

func pollOutsideLoop(c *Ctx, items []int) {
	if c.Cancelled() {
		return
	}
	for range items {
		c.ChargeTuple(TripScan, 1) // want "never polls Cancelled"
	}
}

func pollInClosure(c *Ctx, items []int) {
	for range items {
		probe := func() bool { return c.Cancelled() }
		_ = probe
		c.ChargeTuple(TripScan, 1) // want "never polls Cancelled"
	}
}

func use(c *Ctx) {
	good(c, nil)
	bad(c, nil)
	pollOutsideLoop(c, nil)
	pollInClosure(c, nil)
}
