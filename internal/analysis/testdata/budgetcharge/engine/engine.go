// Package engine seeds the budgetcharge cases: a compliant charge map,
// a duplicate Trip* label, an ad-hoc string literal, a non-forwarded
// variable, and a constant outside the Trip* naming scheme.
package engine

// Trip-point labels. TripZdup duplicates TripBuild's value; scope names
// iterate sorted, so the duplicate is reported at the later name.
const (
	TripBuild = "build"
	TripSort  = "sort"
	TripZdup  = "build" // want "duplicates TripBuild"
)

const adHoc = "adhoc"

// Ctx is the miniature charge plumbing.
type Ctx struct{}

func (c *Ctx) charge(point string, n int) { _, _ = point, n }

// ChargeRow forwards its label parameter into charge — sanctioned.
func (c *Ctx) ChargeRow(point string) { c.charge(point, 1) }

// Fault is a leaf charge site.
func (c *Ctx) Fault(point string) { _ = point }

func drainRowsInto(c *Ctx, point string, rows []int) []int {
	c.charge(point, len(rows))
	return rows
}

func good(c *Ctx) {
	c.ChargeRow(TripBuild)
	drainRowsInto(c, TripSort, nil)
}

func badLiteral(c *Ctx) {
	c.charge("adhoc", 1) // want "got a non-identifier expression"
}

func badVar(c *Ctx, label string) {
	c.Fault(label) // want "not a forwarded label parameter"
}

func badConst(c *Ctx) {
	c.charge(adHoc, 1) // want "does not follow the Trip"
}

func use(c *Ctx) {
	good(c)
	badLiteral(c)
	badVar(c, TripSort)
	badConst(c)
}
