// Package index implements the structural and value indexes of the store
// tier: for every absolute path of a document, the ordered list of its nodes
// (structural index), and for simple-content paths additionally a hash map
// from the leaf's typed value key to its nodes (value index). Both are built
// in the same single walk that measures the document's statistics
// (stats.AnalyzeVisit), so Build returns the DocStats alongside.
//
// The planner substitutes an algebra.IndexScan for a full Υ-scan (plus a
// selection, for value probes) when a query path resolves onto indexed
// paths — see internal/core's SubstituteIndexes. Probe semantics are exact:
// value keys use value.KeyOf, whose equality classes coincide with
// value.CompareAtomic equality, so an equality probe returns precisely the
// nodes a scan-and-filter would keep; ordered comparisons fall back to a
// linear pass over the path's node list with the same GeneralCompare the
// σ predicate would run.
package index

import (
	"nalquery/internal/dom"
	"nalquery/internal/stats"
	"nalquery/internal/value"
	"nalquery/internal/xpath"
)

// PathIndex indexes the nodes at one absolute path.
type PathIndex struct {
	// Path is the absolute path ("/bib/book", "/bib/book/@year").
	Path string
	// Nodes lists the path's nodes in document order.
	Nodes []*dom.Node
	// HasValues reports that the value layer below is populated (simple
	// content only — see stats.PathStats.Simple).
	HasValues bool

	eq map[value.HashKey][]*dom.Node
}

// ScanAll implements algebra.NodeIndex: the full node list, document order.
func (x *PathIndex) ScanAll() []*dom.Node { return x.Nodes }

// ProbeEq implements algebra.NodeIndex: the nodes whose atomized value
// equals the given atomic key (exact — KeyOf equality coincides with
// CompareAtomic equality). ok is false when the path has no value layer.
func (x *PathIndex) ProbeEq(key value.Value) ([]*dom.Node, bool) {
	if !x.HasValues {
		return nil, false
	}
	return x.eq[value.KeyOf(key)], true
}

// ProbeCmp implements algebra.NodeIndex: the nodes whose value compares true
// against the atomic key under op — a linear pass over the path's nodes with
// the same comparison a scan-and-filter would run, avoiding only the tree
// traversal. ok is false when the path has no value layer.
func (x *PathIndex) ProbeCmp(op value.CmpOp, key value.Value) ([]*dom.Node, bool) {
	if !x.HasValues {
		return nil, false
	}
	var out []*dom.Node
	for _, n := range x.Nodes {
		if value.GeneralCompare(value.NodeVal{Node: n}, key, op) {
			out = append(out, n)
		}
	}
	return out, true
}

// merged is the union of several path indexes: the NodeIndex a structural
// scan over a multi-path expression (e.g. //title across chapters and books)
// resolves to. It has no value layer.
type merged struct{ nodes []*dom.Node }

func (m *merged) ScanAll() []*dom.Node                                 { return m.nodes }
func (m *merged) ProbeEq(value.Value) ([]*dom.Node, bool)              { return nil, false }
func (m *merged) ProbeCmp(value.CmpOp, value.Value) ([]*dom.Node, bool) { return nil, false }

// DocIndexes holds every path index of one document plus the statistics
// measured by the same walk.
type DocIndexes struct {
	URI    string
	ByPath map[string]*PathIndex
	Stats  *stats.DocStats
}

// builder collects nodes per path during the stats walk.
type builder struct {
	x *DocIndexes
}

func (b *builder) visit(path string, n *dom.Node) {
	px := b.x.ByPath[path]
	if px == nil {
		px = &PathIndex{Path: path}
		b.x.ByPath[path] = px
	}
	px.Nodes = append(px.Nodes, n)
}

func (b *builder) VisitElem(path string, n *dom.Node) { b.visit(path, n) }
func (b *builder) VisitAttr(path string, n *dom.Node) { b.visit(path, n) }

// Build walks a document once, measuring its statistics and building the
// structural index of every path plus the value index of every simple path.
func Build(d *dom.Document) *DocIndexes { return BuildWith(d, nil) }

// BuildWith is Build with optionally pre-measured statistics (a persisted
// NALB2 record): when given, the walk only collects index nodes and the
// measuring pass is skipped.
func BuildWith(d *dom.Document, st *stats.DocStats) *DocIndexes {
	x := &DocIndexes{URI: d.URI, ByPath: map[string]*PathIndex{}}
	b := &builder{x: x}
	if st != nil {
		x.Stats = st
		stats.Walk(d, b)
	} else {
		x.Stats = stats.AnalyzeVisit(d, b)
	}
	for path, px := range x.ByPath {
		ps := x.Stats.Path(path)
		if ps == nil || !ps.Simple {
			continue
		}
		px.HasValues = true
		px.eq = make(map[value.HashKey][]*dom.Node, ps.Distinct)
		for _, n := range px.Nodes {
			k := value.KeyOf(value.Str(n.StringValue()))
			px.eq[k] = append(px.eq[k], n)
		}
	}
	return x
}

// ScanInfo describes the index resolution of a structural scan.
type ScanInfo struct {
	// Index yields the expression's nodes in document order.
	Index interface {
		ScanAll() []*dom.Node
		ProbeEq(key value.Value) ([]*dom.Node, bool)
		ProbeCmp(op value.CmpOp, key value.Value) ([]*dom.Node, bool)
	}
	// Path is the display form of the resolved absolute path(s).
	Path string
	// Card is the measured node count.
	Card float64
}

// Scan resolves a path expression (from the document root) onto the
// structural indexes: the returned index enumerates exactly the nodes
// xpath.Path.Eval would select, in document order. ok is false when the
// expression cannot be resolved from the path set (positional predicates)
// or reaches no measured path.
func (x *DocIndexes) Scan(p xpath.Path) (ScanInfo, bool) {
	paths, ok := x.Stats.ResolvePaths(p)
	if !ok || len(paths) == 0 {
		return ScanInfo{}, false
	}
	if len(paths) == 1 {
		px := x.ByPath[paths[0]]
		return ScanInfo{Index: px, Path: px.Path, Card: float64(len(px.Nodes))}, true
	}
	// Multiple paths: union in document order. Absolute paths partition the
	// nodes, so a k-way append+sort dedupes nothing — every node appears
	// exactly once.
	var nodes []*dom.Node
	display := paths[0]
	for i, ap := range paths {
		nodes = append(nodes, x.ByPath[ap].Nodes...)
		if i > 0 {
			display += "|" + ap
		}
	}
	dom.SortDocOrder(nodes)
	return ScanInfo{Index: &merged{nodes: nodes}, Path: display, Card: float64(len(nodes))}, true
}

// ValueInfo describes the index resolution of a value probe.
type ValueInfo struct {
	// Index is the value index at the leaf path.
	Index interface {
		ScanAll() []*dom.Node
		ProbeEq(key value.Value) ([]*dom.Node, bool)
		ProbeCmp(op value.CmpOp, key value.Value) ([]*dom.Node, bool)
	}
	// Path is the resolved absolute leaf path.
	Path string
	// Depth is the number of parent hops from an indexed leaf node up to
	// the node the scan binds (len of the predicate's relative path).
	Depth int
	// Card is the expected number of bound nodes an equality probe keeps
	// (count/distinct, at least 1).
	Card float64
	// ScanCard is the measured count of nodes at the base path.
	ScanCard float64
}

// Value resolves a value predicate base/rel (σ with a comparison on the
// rel path of the nodes the base path binds) onto a value index. The
// combined path must resolve onto exactly one measured leaf path with a
// value layer, and every rel step must consume exactly one level (child or
// attribute axis) so the parent-hop depth is fixed. ok is false otherwise.
func (x *DocIndexes) Value(base, rel xpath.Path) (ValueInfo, bool) {
	for _, st := range rel.Steps {
		if st.Axis == xpath.AxisDescendant || st.Pos != 0 {
			return ValueInfo{}, false
		}
	}
	combined := xpath.Path{Steps: append(append([]xpath.Step{}, base.Steps...), rel.Steps...)}
	paths, ok := x.Stats.ResolvePaths(combined)
	if !ok || len(paths) != 1 {
		return ValueInfo{}, false
	}
	px := x.ByPath[paths[0]]
	if !px.HasValues {
		return ValueInfo{}, false
	}
	ps := x.Stats.Path(paths[0])
	card := float64(ps.Count)
	if ps.Distinct > 0 {
		card = float64(ps.Count) / float64(ps.Distinct)
	}
	if card < 1 {
		card = 1
	}
	scanCard := card
	if basePaths, ok := x.Stats.ResolvePaths(base); ok {
		scanCard = 0
		for _, bp := range basePaths {
			if bps := x.Stats.Path(bp); bps != nil {
				scanCard += float64(bps.Count)
			}
		}
	}
	return ValueInfo{Index: px, Path: px.Path, Depth: len(rel.Steps),
		Card: card, ScanCard: scanCard}, true
}
