package index

import (
	"strings"
	"testing"

	"nalquery/internal/dom"
	"nalquery/internal/value"
	"nalquery/internal/xpath"
)

const testDoc = `<lib>
  <shelf><book year="1999"><title>t1</title><note><title>n</title></note></book></shelf>
  <shelf><book year="2001"><title>t2</title></book><journal><title>t1</title></journal></shelf>
  <title>top</title>
</lib>`

func parse(t *testing.T, s string) *dom.Document {
	t.Helper()
	d, err := dom.Parse(strings.NewReader(s), "test.xml")
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return d
}

// TestScanAgainstEval: for a corpus of path expressions, Scan enumerates
// exactly the nodes xpath.Path.Eval selects from the root, in the same
// (document) order.
func TestScanAgainstEval(t *testing.T) {
	d := parse(t, testDoc)
	x := Build(d)
	exprs := []string{
		"/lib", "/lib/shelf", "/lib/shelf/book", "/lib/shelf/book/@year",
		"//title", "//book/title", "/lib//title", "//book//title",
		"/lib/*", "//*", "//shelf/*/title",
	}
	for _, e := range exprs {
		p := xpath.MustParse(e)
		si, ok := x.Scan(p)
		if !ok {
			t.Fatalf("%s: no scan resolution", e)
		}
		want := p.Eval(value.NodeVal{Node: d.Root})
		got := si.Index.ScanAll()
		if len(got) != len(want) {
			t.Fatalf("%s: %d nodes, Eval selects %d", e, len(got), len(want))
		}
		for i, n := range got {
			if want[i].(value.NodeVal).Node != n {
				t.Fatalf("%s: node %d differs", e, i)
			}
		}
		if si.Card != float64(len(got)) {
			t.Fatalf("%s: card %v for %d nodes", e, si.Card, len(got))
		}
	}
	// Unresolvable shapes: positional predicate, unknown path.
	if _, ok := x.Scan(xpath.MustParse("/lib/shelf[1]")); ok {
		t.Fatalf("positional scan must not resolve")
	}
	if _, ok := x.Scan(xpath.MustParse("//missing")); ok {
		t.Fatalf("empty path set must not resolve")
	}
}

// TestProbeEqAgainstFilter: an equality probe returns exactly the nodes a
// scan-and-compare keeps.
func TestProbeEqAgainstFilter(t *testing.T) {
	d := parse(t, testDoc)
	x := Build(d)
	si, ok := x.Scan(xpath.MustParse("//book/title"))
	if !ok {
		t.Fatalf("no scan for //book/title")
	}
	for _, key := range []value.Value{value.Str("t1"), value.Str("t2"), value.Str("zzz")} {
		got, ok := si.Index.ProbeEq(key)
		if !ok {
			t.Fatalf("title path should carry a value index")
		}
		var want []*dom.Node
		for _, n := range si.Index.ScanAll() {
			if value.GeneralCompare(value.NodeVal{Node: n}, key, value.CmpEq) {
				want = append(want, n)
			}
		}
		if len(got) != len(want) {
			t.Fatalf("probe %v: %d nodes, filter keeps %d", key, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("probe %v: node %d differs", key, i)
			}
		}
	}
}

// TestProbeEqNumeric: KeyOf normalizes numeric strings, so probing the
// indexed "1999" with the number 1999 hits — matching GeneralCompare, which
// compares them numerically.
func TestProbeEqNumeric(t *testing.T) {
	x := Build(parse(t, testDoc))
	si, _ := x.Scan(xpath.MustParse("//book/@year"))
	got, ok := si.Index.ProbeEq(value.Int(1999))
	if !ok || len(got) != 1 {
		t.Fatalf("numeric probe: %d nodes, ok=%v", len(got), ok)
	}
}

// TestProbeCmpAgainstFilter: ordered probes equal the linear filter.
func TestProbeCmpAgainstFilter(t *testing.T) {
	x := Build(parse(t, testDoc))
	si, _ := x.Scan(xpath.MustParse("//book/@year"))
	got, ok := si.Index.ProbeCmp(value.CmpGt, value.Int(2000))
	if !ok || len(got) != 1 {
		t.Fatalf("year > 2000: %d nodes, ok=%v", len(got), ok)
	}
}

// TestMergedHasNoValueLayer: multi-path scans cannot answer value probes.
func TestMergedHasNoValueLayer(t *testing.T) {
	x := Build(parse(t, testDoc))
	si, ok := x.Scan(xpath.MustParse("//title")) // 4 distinct absolute paths
	if !ok {
		t.Fatalf("no scan for //title")
	}
	if !strings.Contains(si.Path, "|") {
		t.Fatalf("expected a merged multi-path display, got %q", si.Path)
	}
	if _, ok := si.Index.ProbeEq(value.Str("t1")); ok {
		t.Fatalf("merged index must refuse value probes")
	}
}

// TestValueResolution: base //book with rel @year resolves onto the
// /lib/shelf/book/@year value index at depth 1.
func TestValueResolution(t *testing.T) {
	x := Build(parse(t, testDoc))
	vi, ok := x.Value(xpath.MustParse("//book"), xpath.MustParse("@year"))
	if !ok {
		t.Fatalf("no value resolution for //book + @year")
	}
	if vi.Path != "/lib/shelf/book/@year" || vi.Depth != 1 {
		t.Fatalf("path/depth = %q/%d", vi.Path, vi.Depth)
	}
	if vi.ScanCard != 2 {
		t.Fatalf("scan card = %v, want 2 books", vi.ScanCard)
	}

	// A descendant step in rel has no fixed parent-hop depth.
	descRel := xpath.Path{Steps: []xpath.Step{{Axis: xpath.AxisDescendant, Name: "title"}}}
	if _, ok := x.Value(xpath.MustParse("//shelf"), descRel); ok {
		t.Fatalf("descendant rel must not resolve")
	}
	// A rel reaching multiple absolute paths must not resolve.
	if _, ok := x.Value(xpath.MustParse("/lib/shelf"), xpath.MustParse("*/title")); ok {
		t.Fatalf("multi-path combined rel must not resolve")
	}
	// A structural leaf path carries no value index.
	if _, ok := x.Value(xpath.MustParse("/lib"), xpath.MustParse("shelf")); ok {
		t.Fatalf("structural path must not value-resolve")
	}
}

// TestBuildWithPersistedStats: BuildWith over persisted statistics produces
// the same indexes as a full Build.
func TestBuildWithPersistedStats(t *testing.T) {
	d := parse(t, testDoc)
	full := Build(d)
	re := BuildWith(d, full.Stats)
	if len(re.ByPath) != len(full.ByPath) {
		t.Fatalf("path sets differ: %d vs %d", len(re.ByPath), len(full.ByPath))
	}
	for p, px := range full.ByPath {
		qx := re.ByPath[p]
		if qx == nil || len(qx.Nodes) != len(px.Nodes) || qx.HasValues != px.HasValues {
			t.Fatalf("index at %s differs", p)
		}
	}
	if re.Stats != full.Stats {
		t.Fatalf("persisted stats must be adopted, not recomputed")
	}
}
