package xpath

import (
	"testing"

	"nalquery/internal/dom"
	"nalquery/internal/value"
)

const sample = `<bib>
<book year="1994"><title>T1</title>
  <author><last>L1</last><first>F1</first></author></book>
<book year="2000"><title>T2</title>
  <author><last>L2</last><first>F2</first></author>
  <author><last>L3</last><first>F3</first></author></book>
</bib>`

func doc(t *testing.T) value.Value {
	t.Helper()
	d := dom.MustParseString(sample, "bib.xml")
	return value.NodeVal{Node: d.Root}
}

func names(v value.Seq) []string {
	var out []string
	for _, item := range v {
		n := item.(value.NodeVal).Node
		out = append(out, n.Name)
	}
	return out
}

func vals(v value.Seq) []string {
	var out []string
	for _, item := range v {
		out = append(out, item.(value.NodeVal).Node.StringValue())
	}
	return out
}

func TestParseAndString(t *testing.T) {
	cases := map[string]string{
		"book/title":      "book/title",
		"//book/title":    "//book/title",
		"//book/@year":    "//book/@year",
		"book//author":    "book//author",
		"@year":           "@year",
		"*":               "*",
		"//*":             "//*",
		"bidtuple/itemno": "bidtuple/itemno",
		"/book":           "book",
	}
	for in, want := range cases {
		p, err := Parse(in)
		if err != nil {
			t.Errorf("Parse(%q): %v", in, err)
			continue
		}
		if got := p.String(); got != want {
			t.Errorf("Parse(%q).String() = %q, want %q", in, got, want)
		}
	}
}

func TestParseErrors(t *testing.T) {
	for _, bad := range []string{"", "//", "a/", "a//", "a/[x]", "a b"} {
		if _, err := Parse(bad); err == nil {
			t.Errorf("Parse(%q) must fail", bad)
		}
	}
}

func TestDescendantStep(t *testing.T) {
	out := MustParse("//author").Eval(doc(t))
	if len(out) != 3 {
		t.Fatalf("//author: %d", len(out))
	}
	if got := vals(out); got[0] != "L1F1" || got[2] != "L3F3" {
		t.Fatalf("//author values: %v", got)
	}
}

func TestChildChain(t *testing.T) {
	d := dom.MustParseString(sample, "bib.xml")
	root := value.NodeVal{Node: d.RootElement()}
	out := MustParse("book/title").Eval(root)
	if got := vals(out); len(got) != 2 || got[0] != "T1" || got[1] != "T2" {
		t.Fatalf("book/title: %v", got)
	}
}

func TestMixedDescendantChild(t *testing.T) {
	out := MustParse("//book/title").Eval(doc(t))
	if got := vals(out); len(got) != 2 || got[0] != "T1" {
		t.Fatalf("//book/title: %v", got)
	}
}

func TestAttributeStep(t *testing.T) {
	out := MustParse("//book/@year").Eval(doc(t))
	if got := vals(out); len(got) != 2 || got[0] != "1994" || got[1] != "2000" {
		t.Fatalf("@year: %v", got)
	}
}

func TestWildcard(t *testing.T) {
	d := dom.MustParseString(sample, "bib.xml")
	book := value.NodeVal{Node: d.RootElement().FirstChildElement("book")}
	out := MustParse("*").Eval(book)
	if got := names(out); len(got) != 2 || got[0] != "title" || got[1] != "author" {
		t.Fatalf("* children: %v", got)
	}
}

func TestDuplicateFreeDocOrder(t *testing.T) {
	// A descendant step over overlapping contexts must not duplicate.
	d := dom.MustParseString(`<r><a><a><x/></a></a></r>`, "dup.xml")
	ctx := value.NodeVal{Node: d.Root}
	out := MustParse("//a//x").Eval(ctx)
	if len(out) != 1 {
		t.Fatalf("//a//x must be duplicate-free, got %d", len(out))
	}
}

func TestEmptyContexts(t *testing.T) {
	if out := MustParse("//a").Eval(value.Null{}); len(out) != 0 {
		t.Fatalf("path over NULL context: %v", out)
	}
	if out := MustParse("//missing").Eval(doc(t)); len(out) != 0 {
		t.Fatalf("missing elements: %v", out)
	}
}

func TestSequenceContext(t *testing.T) {
	d := dom.MustParseString(sample, "bib.xml")
	var books value.Seq
	for _, b := range d.RootElement().ChildElements("book") {
		books = append(books, value.NodeVal{Node: b})
	}
	out := MustParse("author/last").Eval(books)
	if got := vals(out); len(got) != 3 || got[0] != "L1" {
		t.Fatalf("seq context: %v", got)
	}
}
