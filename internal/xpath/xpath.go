// Package xpath implements the path-expression subset the paper's queries
// use: child steps (/), descendant-or-self steps (//) and attribute steps
// (@name), with name tests. Evaluation returns nodes in document order
// without duplicates.
//
// Trailing predicates like book[author = $a1] are handled at the XQuery AST
// level: the normalizer of Sec. 3 moves them into where clauses before
// translation, so the algebra only ever sees plain axis paths. The paper
// declares optimized XPath translation orthogonal (Sec. 2), and so do we.
package xpath

import (
	"fmt"
	"strconv"
	"strings"

	"nalquery/internal/dom"
	"nalquery/internal/value"
)

// Axis selects the node set relative to a context node.
type Axis uint8

// Axes.
const (
	AxisChild Axis = iota
	AxisDescendant
	AxisAttribute
)

// String returns the XPath spelling of the axis.
func (a Axis) String() string {
	switch a {
	case AxisChild:
		return "child"
	case AxisDescendant:
		return "descendant"
	case AxisAttribute:
		return "attribute"
	default:
		return fmt.Sprintf("axis(%d)", uint8(a))
	}
}

// PosLast selects the last node of each context node's step result
// (spelled [last()]).
const PosLast = -1

// Step is a single location step: an axis plus a name test. The empty name
// (spelled "*") matches every element or attribute. Pos, when non-zero,
// applies a positional predicate to the step: Pos = n keeps the n-th node
// (1-based) of the nodes the step selects from each context node, PosLast
// keeps the last one. Per XPath, the predicate applies within each context
// node's result list, not to the concatenated sequence.
type Step struct {
	Axis Axis
	Name string
	Pos  int
}

// Path is a relative path: a sequence of steps applied to a context
// sequence.
type Path struct {
	Steps []Step
}

// String renders the path in XPath syntax (descendant steps as //).
func (p Path) String() string {
	var sb strings.Builder
	for i, s := range p.Steps {
		switch s.Axis {
		case AxisDescendant:
			sb.WriteString("//")
		case AxisChild:
			if i > 0 {
				sb.WriteString("/")
			}
		case AxisAttribute:
			if i > 0 {
				sb.WriteString("/")
			}
			sb.WriteString("@")
		}
		if s.Name == "" {
			sb.WriteString("*")
		} else {
			sb.WriteString(s.Name)
		}
		switch {
		case s.Pos == PosLast:
			sb.WriteString("[last()]")
		case s.Pos > 0:
			fmt.Fprintf(&sb, "[%d]", s.Pos)
		}
	}
	return sb.String()
}

// Parse parses a relative path such as "book/title", "//book/@year" or
// "bidtuple/itemno". A leading "/" is treated as a child step from the
// context (the context item supplied by the caller is the document or
// element the path is relative to); a leading "//" is a descendant step.
func Parse(s string) (Path, error) {
	var p Path
	rest := s
	axis := AxisChild
	if strings.HasPrefix(rest, "//") {
		axis = AxisDescendant
		rest = rest[2:]
	} else if strings.HasPrefix(rest, "/") {
		rest = rest[1:]
	}
	for rest != "" {
		var name string
		// Find end of this step.
		end := len(rest)
		nextAxis := AxisChild
		advance := 0
		if i := strings.IndexByte(rest, '/'); i >= 0 {
			end = i
			advance = 1
			nextAxis = AxisChild
			if strings.HasPrefix(rest[i:], "//") {
				advance = 2
				nextAxis = AxisDescendant
			}
		}
		name = rest[:end]
		stepAxis := axis
		if strings.HasPrefix(name, "@") {
			stepAxis = AxisAttribute
			name = name[1:]
		}
		// Positional predicate suffix: name[3] or name[last()].
		pos := 0
		if i := strings.IndexByte(name, '['); i >= 0 {
			if !strings.HasSuffix(name, "]") {
				return Path{}, fmt.Errorf("xpath: unterminated predicate in %q", s)
			}
			inner := name[i+1 : len(name)-1]
			name = name[:i]
			if inner == "last()" {
				pos = PosLast
			} else {
				n, err := strconv.Atoi(inner)
				if err != nil || n < 1 {
					return Path{}, fmt.Errorf("xpath: unsupported predicate [%s] in %q (only positional predicates reach the path layer; value predicates are normalized into where clauses)", inner, s)
				}
				pos = n
			}
			if stepAxis == AxisAttribute {
				return Path{}, fmt.Errorf("xpath: positional predicate on attribute step in %q", s)
			}
		}
		if name == "" {
			return Path{}, fmt.Errorf("xpath: empty step in %q", s)
		}
		if name == "*" {
			name = ""
		}
		if !validName(name) {
			return Path{}, fmt.Errorf("xpath: invalid name test %q in %q", name, s)
		}
		p.Steps = append(p.Steps, Step{Axis: stepAxis, Name: name, Pos: pos})
		if end == len(rest) {
			break
		}
		rest = rest[end+advance:]
		axis = nextAxis
		if rest == "" {
			return Path{}, fmt.Errorf("xpath: trailing slash in %q", s)
		}
	}
	if len(p.Steps) == 0 {
		return Path{}, fmt.Errorf("xpath: empty path %q", s)
	}
	return p, nil
}

// MustParse parses a path and panics on error. For tests, examples, and
// the experiment harnesses' constant path strings ONLY — user input must
// go through Parse so the error surfaces typed.
func MustParse(s string) Path {
	p, err := Parse(s)
	if err != nil {
		//nal:allow-panic Must* contract on constant test/experiment paths; user input goes through Parse (mustparse confines callers)
		panic(err)
	}
	return p
}

func validName(s string) bool {
	if s == "" {
		return true // wildcard
	}
	for i, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r == '_':
		case r >= '0' && r <= '9', r == '-', r == '.':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// Eval applies the path to a context value (a node, a node sequence, or
// NULL) and returns the resulting nodes in document order without
// duplicates.
func (p Path) Eval(ctx value.Value) value.Seq {
	cur := contextNodes(ctx)
	for _, st := range p.Steps {
		cur = applyStep(cur, st)
	}
	return value.NodeSeq(cur)
}

func contextNodes(v value.Value) []*dom.Node {
	switch w := v.(type) {
	case nil, value.Null:
		return nil
	case value.NodeVal:
		if w.Node == nil {
			return nil
		}
		return []*dom.Node{w.Node}
	case value.Seq:
		var out []*dom.Node
		for _, item := range w {
			out = append(out, contextNodes(item)...)
		}
		return out
	default:
		return nil
	}
}

func applyStep(ctx []*dom.Node, st Step) []*dom.Node {
	// Single context node — the common shape on the per-tuple path ($b/author
	// applied to one book): the selection is already in document order and
	// duplicate-free, so it goes out without the merge copy and without
	// SortDocOrder.
	if len(ctx) == 1 {
		return applyPos(selectAxis(ctx[0], st), st)
	}
	var out []*dom.Node
	for _, n := range ctx {
		// Positional predicates apply within each context node's selection
		// (XPath semantics), before the global merge.
		out = append(out, applyPos(selectAxis(n, st), st)...)
	}
	return dedupeDocOrder(out)
}

// selectAxis returns one context node's selection for a step, exactly sized
// on the child axis (a counting pass is cheaper than append growth).
func selectAxis(n *dom.Node, st Step) []*dom.Node {
	switch st.Axis {
	case AxisChild:
		cnt := 0
		for _, c := range n.Children {
			if c.Kind == dom.KindElement && (st.Name == "" || c.Name == st.Name) {
				cnt++
			}
		}
		if cnt == 0 {
			return nil
		}
		sel := make([]*dom.Node, 0, cnt)
		for _, c := range n.Children {
			if c.Kind == dom.KindElement && (st.Name == "" || c.Name == st.Name) {
				sel = append(sel, c)
			}
		}
		return sel
	case AxisDescendant:
		return n.Descendants(st.Name, nil)
	case AxisAttribute:
		if st.Name == "" {
			return append([]*dom.Node(nil), n.Attrs...)
		} else if a := n.Attr(st.Name); a != nil {
			return []*dom.Node{a}
		}
	}
	return nil
}

func applyPos(sel []*dom.Node, st Step) []*dom.Node {
	switch {
	case st.Pos == PosLast:
		if len(sel) > 0 {
			return sel[len(sel)-1:]
		}
	case st.Pos > 0:
		if st.Pos <= len(sel) {
			return sel[st.Pos-1 : st.Pos]
		}
		return nil
	}
	return sel
}

// dedupeDocOrder sorts into document order and removes duplicate handles.
// Contexts produced by upstream steps are already in document order, but
// descendant steps over overlapping contexts can produce duplicates; the
// XPath data model requires a duplicate-free, document-ordered result.
func dedupeDocOrder(nodes []*dom.Node) []*dom.Node {
	if len(nodes) < 2 {
		return nodes
	}
	dom.SortDocOrder(nodes)
	out := nodes[:1]
	for _, n := range nodes[1:] {
		if n != out[len(out)-1] {
			out = append(out, n)
		}
	}
	return out
}
