package xpath

import (
	"strings"
	"testing"

	"nalquery/internal/dom"
	"nalquery/internal/value"
)

const posDoc = `<bib>
	<book><title>t1</title><author>a1</author><author>a2</author></book>
	<book><title>t2</title><author>a3</author></book>
	<book><title>t3</title><author>a4</author><author>a5</author><author>a6</author></book>
</bib>`

func parseDoc(t *testing.T, s string) *dom.Document {
	t.Helper()
	d, err := dom.Parse(strings.NewReader(s), "test.xml")
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func evalStrings(t *testing.T, d *dom.Document, path string) []string {
	t.Helper()
	p, err := Parse(path)
	if err != nil {
		t.Fatalf("parse %q: %v", path, err)
	}
	out := p.Eval(value.NodeVal{Node: d.Root})
	var ss []string
	for _, v := range out {
		ss = append(ss, value.AtomizeSingle(v).String())
	}
	return ss
}

// TestPositionalFirst: [1] selects the first node per context node, not of
// the whole sequence.
func TestPositionalFirst(t *testing.T) {
	d := parseDoc(t, posDoc)
	got := evalStrings(t, d, "//book/author[1]")
	want := []string{"a1", "a3", "a4"}
	if strings.Join(got, ",") != strings.Join(want, ",") {
		t.Errorf("author[1] = %v, want %v", got, want)
	}
}

// TestPositionalLast: [last()] selects the last node per context node.
func TestPositionalLast(t *testing.T) {
	d := parseDoc(t, posDoc)
	got := evalStrings(t, d, "//book/author[last()]")
	want := []string{"a2", "a3", "a6"}
	if strings.Join(got, ",") != strings.Join(want, ",") {
		t.Errorf("author[last()] = %v, want %v", got, want)
	}
}

// TestPositionalOutOfRange: positions beyond the selection yield nothing
// for that context node.
func TestPositionalOutOfRange(t *testing.T) {
	d := parseDoc(t, posDoc)
	got := evalStrings(t, d, "//book/author[3]")
	want := []string{"a6"}
	if strings.Join(got, ",") != strings.Join(want, ",") {
		t.Errorf("author[3] = %v, want %v", got, want)
	}
}

// TestPositionalOnPathStep: positional predicate on an interior step.
func TestPositionalOnPathStep(t *testing.T) {
	d := parseDoc(t, posDoc)
	got := evalStrings(t, d, "//book[2]/title")
	want := []string{"t2"}
	if strings.Join(got, ",") != strings.Join(want, ",") {
		t.Errorf("book[2]/title = %v, want %v", got, want)
	}
}

// TestPositionalParseErrors: unsupported predicates are rejected with a
// helpful message; attribute steps take no positional predicate.
func TestPositionalParseErrors(t *testing.T) {
	for _, bad := range []string{
		"book[0]", "book[-1]", "book[x]", "book[1", "book/@year[1]",
	} {
		if _, err := Parse(bad); err == nil {
			t.Errorf("Parse(%q): no error", bad)
		}
	}
}

// TestPositionalRoundTrip: String() renders the predicate back.
func TestPositionalRoundTrip(t *testing.T) {
	for _, s := range []string{"//book/author[1]", "//book[2]/title", "book/author[last()]"} {
		p, err := Parse(s)
		if err != nil {
			t.Fatalf("parse %q: %v", s, err)
		}
		if p.String() != s {
			t.Errorf("round trip %q → %q", s, p.String())
		}
	}
}

// TestPositionalDescendant: positions apply per context node on descendant
// steps too.
func TestPositionalDescendant(t *testing.T) {
	d := parseDoc(t, posDoc)
	got := evalStrings(t, d, "//author[1]")
	// One context node (the root), so [1] picks the globally first author.
	want := []string{"a1"}
	if strings.Join(got, ",") != strings.Join(want, ",") {
		t.Errorf("//author[1] = %v, want %v", got, want)
	}
}
