package dom

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

// Serializer/parser round-trip property over random documents: parsing the
// serialization reproduces the same tree (names, text, attributes,
// document-order ranks).

func randDoc(rng *rand.Rand) *Document {
	b := NewBuilder("rand.xml")
	var build func(depth int)
	names := []string{"a", "b", "c", "item", "x1"}
	build = func(depth int) {
		n := rng.Intn(4)
		if depth > 3 {
			n = 0
		}
		lastWasText := false
		for i := 0; i < n; i++ {
			switch rng.Intn(3) {
			case 0:
				// Adjacent text siblings would merge on reparse; emit text
				// only after an element (or at the start).
				if lastWasText {
					continue
				}
				b.Text("t" + string(rune('a'+rng.Intn(26))))
				lastWasText = true
			default:
				lastWasText = false
				name := names[rng.Intn(len(names))]
				b.Begin(name)
				if rng.Intn(3) == 0 {
					b.Attrib("k", "v"+string(rune('0'+rng.Intn(10))))
				}
				build(depth + 1)
				b.End()
			}
		}
	}
	b.Begin("root")
	build(0)
	b.End()
	return b.Done()
}

func sameTree(a, b *Node) bool {
	if a.Kind != b.Kind || a.Name != b.Name || a.Data != b.Data {
		return false
	}
	if len(a.Children) != len(b.Children) || len(a.Attrs) != len(b.Attrs) {
		return false
	}
	for i := range a.Attrs {
		if a.Attrs[i].Name != b.Attrs[i].Name || a.Attrs[i].Data != b.Attrs[i].Data {
			return false
		}
	}
	for i := range a.Children {
		if !sameTree(a.Children[i], b.Children[i]) {
			return false
		}
	}
	return true
}

// TestSerializeParseRoundTrip: WriteXML → Parse reproduces the tree.
func TestSerializeParseRoundTrip(t *testing.T) {
	cfg := &quick.Config{MaxCount: 200}
	if testing.Short() {
		cfg.MaxCount = 40
	}
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		doc := randDoc(rng)
		var sb strings.Builder
		if err := WriteXML(&sb, doc.Root); err != nil {
			return false
		}
		back, err := Parse(strings.NewReader(sb.String()), "rand.xml")
		if err != nil {
			return false
		}
		return sameTree(doc.Root, back.Root)
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Error(err)
	}
}

// TestRoundTripPreservesOrderRanks: document-order ranks are strictly
// increasing in a preorder walk after a round trip.
func TestRoundTripPreservesOrderRanks(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	doc := randDoc(rng)
	var sb strings.Builder
	if err := WriteXML(&sb, doc.Root); err != nil {
		t.Fatal(err)
	}
	back, err := Parse(strings.NewReader(sb.String()), "rand.xml")
	if err != nil {
		t.Fatal(err)
	}
	last := -1
	var walk func(n *Node) bool
	walk = func(n *Node) bool {
		if n.Order <= last {
			return false
		}
		last = n.Order
		for _, c := range n.Children {
			if !walk(c) {
				return false
			}
		}
		return true
	}
	if !walk(back.Root) {
		t.Errorf("document-order ranks not strictly increasing after round trip")
	}
}
