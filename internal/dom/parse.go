package dom

import (
	"encoding/xml"
	"fmt"
	"io"
	"strings"
)

// Parse reads an XML document from r and builds the ordered node tree.
// Whitespace-only text between elements is dropped (the use-case DTDs are
// element-content DTDs where such whitespace is insignificant).
func Parse(r io.Reader, uri string) (*Document, error) {
	dec := xml.NewDecoder(r)
	b := NewBuilder(uri)
	depth := 0
	for {
		tok, err := dec.Token()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("dom: parse %s: %w", uri, err)
		}
		switch t := tok.(type) {
		case xml.StartElement:
			b.Begin(t.Name.Local)
			for _, a := range t.Attr {
				if a.Name.Space == "xmlns" || a.Name.Local == "xmlns" {
					continue
				}
				b.Attrib(a.Name.Local, a.Value)
			}
			depth++
		case xml.EndElement:
			b.End()
			depth--
		case xml.CharData:
			s := string(t)
			if strings.TrimSpace(s) == "" {
				continue
			}
			if depth > 0 {
				b.Text(s)
			}
		case xml.Comment, xml.ProcInst, xml.Directive:
			// Ignored: not part of the paper's data model.
		}
	}
	if depth != 0 {
		return nil, fmt.Errorf("dom: parse %s: unbalanced document", uri)
	}
	return b.Done(), nil
}

// ParseString parses an XML document from a string.
func ParseString(s, uri string) (*Document, error) {
	return Parse(strings.NewReader(s), uri)
}

// MustParseString parses a document and panics on error. For tests and
// examples.
func MustParseString(s, uri string) *Document {
	d, err := ParseString(s, uri)
	if err != nil {
		//nal:allow-panic Must* contract on authored test/example input; production parsing goes through Parse/ParseString (mustparse confines callers)
		panic(err)
	}
	return d
}

// WriteXML serializes the subtree rooted at n to w without insignificant
// whitespace. Attribute values and text are escaped.
func WriteXML(w io.Writer, n *Node) error {
	sw := &stickyWriter{w: w}
	writeNode(sw, n)
	return sw.err
}

// XMLString serializes the subtree rooted at n to a string.
func XMLString(n *Node) string {
	var sb strings.Builder
	_ = WriteXML(&sb, n)
	return sb.String()
}

type stickyWriter struct {
	w   io.Writer
	err error
}

func (s *stickyWriter) str(v string) {
	if s.err == nil {
		_, s.err = io.WriteString(s.w, v)
	}
}

func writeNode(w *stickyWriter, n *Node) {
	switch n.Kind {
	case KindDocument:
		for _, c := range n.Children {
			writeNode(w, c)
		}
	case KindText:
		w.str(EscapeText(n.Data))
	case KindAttribute:
		w.str(n.Name)
		w.str(`="`)
		w.str(EscapeAttr(n.Data))
		w.str(`"`)
	case KindElement:
		w.str("<")
		w.str(n.Name)
		for _, a := range n.Attrs {
			w.str(" ")
			writeNode(w, a)
		}
		if len(n.Children) == 0 {
			w.str("/>")
			return
		}
		w.str(">")
		for _, c := range n.Children {
			writeNode(w, c)
		}
		w.str("</")
		w.str(n.Name)
		w.str(">")
	}
}

// EscapeText escapes character data for element content.
func EscapeText(s string) string {
	if !strings.ContainsAny(s, "&<>") {
		return s
	}
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;")
	return r.Replace(s)
}

// EscapeAttr escapes character data for attribute values.
func EscapeAttr(s string) string {
	if !strings.ContainsAny(s, `&<>"`) {
		return s
	}
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;", `"`, "&quot;")
	return r.Replace(s)
}
