// Package dom implements the ordered XML data model used as the storage
// substrate of the reproduction. It corresponds to the role the Natix store
// plays in the paper: documents are trees of nodes, every node has a stable
// document-order rank, and algebra operators reference nodes through
// lightweight handles (*Node pointers).
//
// The model is deliberately small: documents, elements, attributes and text.
// This is everything the XQuery use-case documents of the paper require.
package dom

import (
	"fmt"
	"sort"
	"strings"
	"sync/atomic"
)

// Kind identifies the node kind.
type Kind uint8

// Node kinds.
const (
	KindDocument Kind = iota
	KindElement
	KindAttribute
	KindText
)

// String returns the XPath-style name of the node kind.
func (k Kind) String() string {
	switch k {
	case KindDocument:
		return "document"
	case KindElement:
		return "element"
	case KindAttribute:
		return "attribute"
	case KindText:
		return "text"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// Node is a single node of an XML tree. Nodes are created through a Builder
// or the Parse functions and are immutable afterwards; algebra evaluation
// never mutates documents.
type Node struct {
	Kind     Kind
	Name     string  // element and attribute name; empty for text and document
	Data     string  // text content or attribute value
	Parent   *Node   // nil for the document node
	Children []*Node // element and text children, in order
	Attrs    []*Node // attribute nodes, in declaration order

	// Order is the document-order rank of the node. It is unique within a
	// document and monotone in a pre-order traversal (attributes rank after
	// their owner element and before its children, matching the XPath data
	// model closely enough for the paper's queries).
	Order int

	doc *Document

	// strVal caches StringValue for element nodes: documents are immutable
	// once loaded, and atomization hits the same nodes once per comparison,
	// sort key and hash key of every plan operator. Atomic so that
	// concurrent query executions over a shared engine stay race-free (the
	// computed value is identical either way).
	strVal atomic.Pointer[string]
}

// Document is a parsed or generated XML document.
type Document struct {
	// URI is the name the document was registered under (e.g. "bib.xml").
	URI string
	// Root is the document node; its single element child is the root element.
	Root *Node

	nodes int
}

// Doc returns the document a node belongs to.
func (n *Node) Doc() *Document { return n.doc }

// NumNodes reports how many nodes the document contains (including the
// document node itself).
func (d *Document) NumNodes() int { return d.nodes }

// RootElement returns the root element of the document, or nil if the
// document is empty.
func (d *Document) RootElement() *Node {
	for _, c := range d.Root.Children {
		if c.Kind == KindElement {
			return c
		}
	}
	return nil
}

// StringValue returns the string value of a node following the XPath data
// model: the concatenation of all descendant text for documents and elements,
// the value for attributes and text nodes.
func (n *Node) StringValue() string {
	switch n.Kind {
	case KindAttribute, KindText:
		return n.Data
	default:
		if p := n.strVal.Load(); p != nil {
			return *p
		}
		var sb strings.Builder
		n.appendText(&sb)
		s := sb.String()
		n.strVal.Store(&s)
		return s
	}
}

func (n *Node) appendText(sb *strings.Builder) {
	if n.Kind == KindText {
		sb.WriteString(n.Data)
		return
	}
	for _, c := range n.Children {
		c.appendText(sb)
	}
}

// Attr returns the attribute node with the given name, or nil.
func (n *Node) Attr(name string) *Node {
	for _, a := range n.Attrs {
		if a.Name == name {
			return a
		}
	}
	return nil
}

// ChildElements returns the element children with the given name in document
// order. The empty name matches every element child.
func (n *Node) ChildElements(name string) []*Node {
	var out []*Node
	for _, c := range n.Children {
		if c.Kind == KindElement && (name == "" || c.Name == name) {
			out = append(out, c)
		}
	}
	return out
}

// FirstChildElement returns the first element child with the given name, or
// nil if there is none.
func (n *Node) FirstChildElement(name string) *Node {
	for _, c := range n.Children {
		if c.Kind == KindElement && (name == "" || c.Name == name) {
			return c
		}
	}
	return nil
}

// Descendants appends to dst all descendant elements (not including n) with
// the given name, in document order, and returns the extended slice. The
// empty name matches every element.
func (n *Node) Descendants(name string, dst []*Node) []*Node {
	for _, c := range n.Children {
		if c.Kind == KindElement {
			if name == "" || c.Name == name {
				dst = append(dst, c)
			}
			dst = c.Descendants(name, dst)
		}
	}
	return dst
}

// CompareOrder compares two nodes by document order. Nodes from different
// documents are ordered by document URI (an arbitrary but stable global
// order).
func CompareOrder(a, b *Node) int {
	if a.doc != b.doc {
		switch {
		case a.doc.URI < b.doc.URI:
			return -1
		case a.doc.URI > b.doc.URI:
			return 1
		default:
			return 0
		}
	}
	switch {
	case a.Order < b.Order:
		return -1
	case a.Order > b.Order:
		return 1
	default:
		return 0
	}
}

// SortDocOrder sorts nodes into document order in place, keeping duplicates.
func SortDocOrder(nodes []*Node) {
	sort.SliceStable(nodes, func(i, j int) bool { return CompareOrder(nodes[i], nodes[j]) < 0 })
}

// Builder constructs documents programmatically. It is used by the synthetic
// document generators and by tests.
type Builder struct {
	doc   *Document
	stack []*Node
}

// NewBuilder starts a new document with the given URI.
func NewBuilder(uri string) *Builder {
	root := &Node{Kind: KindDocument}
	doc := &Document{URI: uri, Root: root}
	root.doc = doc
	return &Builder{doc: doc, stack: []*Node{root}}
}

func (b *Builder) top() *Node { return b.stack[len(b.stack)-1] }

// Begin opens a new element under the current node.
func (b *Builder) Begin(name string) *Builder {
	n := &Node{Kind: KindElement, Name: name, Parent: b.top(), doc: b.doc}
	b.top().Children = append(b.top().Children, n)
	b.stack = append(b.stack, n)
	return b
}

// Attrib adds an attribute to the currently open element.
func (b *Builder) Attrib(name, value string) *Builder {
	n := b.top()
	if n.Kind != KindElement {
		//nal:allow-panic builder misuse is a programmer error; the store/parse decoders emit Begin before Attrib by construction and error out before reaching an unbalanced state
		panic("dom: Attrib outside of element")
	}
	a := &Node{Kind: KindAttribute, Name: name, Data: value, Parent: n, doc: b.doc}
	n.Attrs = append(n.Attrs, a)
	return b
}

// Text adds a text node under the current node.
func (b *Builder) Text(data string) *Builder {
	n := &Node{Kind: KindText, Data: data, Parent: b.top(), doc: b.doc}
	b.top().Children = append(b.top().Children, n)
	return b
}

// End closes the current element.
func (b *Builder) End() *Builder {
	if len(b.stack) == 1 {
		//nal:allow-panic builder misuse is a programmer error; decoders keep Begin/End balanced by construction
		panic("dom: End without matching Begin")
	}
	b.stack = b.stack[:len(b.stack)-1]
	return b
}

// Element is shorthand for Begin(name).Text(text).End().
func (b *Builder) Element(name, text string) *Builder {
	return b.Begin(name).Text(text).End()
}

// Done finalizes the document: it assigns document-order ranks and returns
// the document. The builder must be balanced (every Begin matched by an End).
func (b *Builder) Done() *Document {
	if len(b.stack) != 1 {
		//nal:allow-panic builder misuse is a programmer error; load paths check decoder errors before calling Done
		panic(fmt.Sprintf("dom: Done with %d unclosed elements", len(b.stack)-1))
	}
	order := 0
	var walk func(n *Node)
	walk = func(n *Node) {
		n.Order = order
		order++
		for _, a := range n.Attrs {
			a.Order = order
			order++
		}
		for _, c := range n.Children {
			walk(c)
		}
	}
	walk(b.doc.Root)
	b.doc.nodes = order
	return b.doc
}
