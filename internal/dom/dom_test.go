package dom

import (
	"strings"
	"testing"
)

const sample = `<bib>
  <book year="1994">
    <title>T1</title>
    <author><last>L1</last><first>F1</first></author>
    <price>65.95</price>
  </book>
  <book year="2000">
    <title>T2</title>
    <author><last>L2</last><first>F2</first></author>
    <author><last>L3</last><first>F3</first></author>
    <price>39.95</price>
  </book>
</bib>`

func TestParseBasics(t *testing.T) {
	d, err := ParseString(sample, "bib.xml")
	if err != nil {
		t.Fatal(err)
	}
	root := d.RootElement()
	if root == nil || root.Name != "bib" {
		t.Fatalf("root element: %v", root)
	}
	books := root.ChildElements("book")
	if len(books) != 2 {
		t.Fatalf("books: %d", len(books))
	}
	if got := books[0].Attr("year").Data; got != "1994" {
		t.Fatalf("year attr: %q", got)
	}
	if books[1].Attr("missing") != nil {
		t.Fatalf("missing attr must be nil")
	}
}

func TestStringValue(t *testing.T) {
	d := MustParseString(sample, "bib.xml")
	book := d.RootElement().FirstChildElement("book")
	author := book.FirstChildElement("author")
	if got := author.StringValue(); got != "L1F1" {
		t.Fatalf("string value: %q", got)
	}
	if got := book.FirstChildElement("title").StringValue(); got != "T1" {
		t.Fatalf("title: %q", got)
	}
	if got := book.Attr("year").StringValue(); got != "1994" {
		t.Fatalf("attr string value: %q", got)
	}
}

func TestDescendantsDocOrder(t *testing.T) {
	d := MustParseString(sample, "bib.xml")
	var all []*Node
	all = d.Root.Descendants("author", all)
	if len(all) != 3 {
		t.Fatalf("authors: %d", len(all))
	}
	for i := 1; i < len(all); i++ {
		if CompareOrder(all[i-1], all[i]) >= 0 {
			t.Fatalf("descendants not in document order")
		}
	}
	// Wildcard matches every element.
	var any []*Node
	any = d.Root.Descendants("", any)
	// bib + 2 book + 2 title + 3 author + 3 last + 3 first + 2 price = 16.
	if len(any) != 16 {
		t.Fatalf("all elements: %d", len(any))
	}
}

func TestDocumentOrderRanks(t *testing.T) {
	d := MustParseString(`<r><a x="1"><b/></a><c/></r>`, "t.xml")
	r := d.RootElement()
	a := r.ChildElements("a")[0]
	b := a.ChildElements("b")[0]
	c := r.ChildElements("c")[0]
	x := a.Attr("x")
	// Pre-order with attributes after their element.
	if !(r.Order < a.Order && a.Order < x.Order && x.Order < b.Order && b.Order < c.Order) {
		t.Fatalf("order ranks wrong: r=%d a=%d x=%d b=%d c=%d",
			r.Order, a.Order, x.Order, b.Order, c.Order)
	}
	if d.NumNodes() != 6 { // document + 4 elements + 1 attribute
		t.Fatalf("node count %d", d.NumNodes())
	}
}

func TestSortDocOrder(t *testing.T) {
	d := MustParseString(sample, "bib.xml")
	var authors []*Node
	authors = d.Root.Descendants("author", authors)
	shuffled := []*Node{authors[2], authors[0], authors[1], authors[0]}
	SortDocOrder(shuffled)
	if shuffled[0] != authors[0] || shuffled[1] != authors[0] || shuffled[3] != authors[2] {
		t.Fatalf("sort by document order failed")
	}
}

func TestBuilderRoundTrip(t *testing.T) {
	b := NewBuilder("x.xml")
	b.Begin("r").Attrib("k", "v")
	b.Element("a", "1")
	b.Begin("b").Text("two").End()
	b.End()
	d := b.Done()
	got := XMLString(d.RootElement())
	want := `<r k="v"><a>1</a><b>two</b></r>`
	if got != want {
		t.Fatalf("round trip: %q != %q", got, want)
	}
	// Re-parse and serialize again: stable.
	d2 := MustParseString(got, "x.xml")
	if XMLString(d2.RootElement()) != want {
		t.Fatalf("re-parse not stable")
	}
}

func TestEscaping(t *testing.T) {
	b := NewBuilder("esc.xml")
	b.Begin("r").Attrib("a", `x<&">`).Text(`y<&>`).End()
	got := XMLString(b.Done().RootElement())
	want := `<r a="x&lt;&amp;&quot;&gt;">y&lt;&amp;&gt;</r>`
	if got != want {
		t.Fatalf("escaping: %q", got)
	}
	// Parse back restores the original data.
	d := MustParseString(got, "esc.xml")
	if d.RootElement().Attr("a").Data != `x<&">` {
		t.Fatalf("attr unescape: %q", d.RootElement().Attr("a").Data)
	}
	if d.RootElement().StringValue() != `y<&>` {
		t.Fatalf("text unescape: %q", d.RootElement().StringValue())
	}
}

func TestParseErrors(t *testing.T) {
	if _, err := ParseString(`<a><b></a>`, "bad.xml"); err == nil {
		t.Fatalf("mismatched tags must fail")
	}
	if _, err := ParseString(``, "empty.xml"); err != nil {
		t.Fatalf("empty document parses to empty tree: %v", err)
	}
}

func TestWhitespaceDropped(t *testing.T) {
	d := MustParseString("<r>\n  <a>x</a>\n</r>", "ws.xml")
	r := d.RootElement()
	if len(r.Children) != 1 {
		t.Fatalf("whitespace-only text must be dropped, children=%d", len(r.Children))
	}
}

func TestEmptyElementSerialization(t *testing.T) {
	d := MustParseString(`<r><e/></r>`, "t.xml")
	if got := XMLString(d.RootElement()); got != `<r><e/></r>` {
		t.Fatalf("empty element: %q", got)
	}
}

func TestCompareOrderAcrossDocuments(t *testing.T) {
	a := MustParseString(`<a/>`, "a.xml")
	b := MustParseString(`<b/>`, "b.xml")
	if CompareOrder(a.Root, b.Root) >= 0 || CompareOrder(b.Root, a.Root) <= 0 {
		t.Fatalf("cross-document order must follow URIs")
	}
}

func TestWriteXMLToWriter(t *testing.T) {
	d := MustParseString(sample, "bib.xml")
	var sb strings.Builder
	if err := WriteXML(&sb, d.RootElement()); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(sb.String(), `<bib><book year="1994">`) {
		t.Fatalf("serialized prefix: %q", sb.String()[:40])
	}
}
