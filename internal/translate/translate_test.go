package translate

import (
	"strings"
	"testing"

	"nalquery/internal/algebra"
	"nalquery/internal/dom"
	"nalquery/internal/normalize"
	"nalquery/internal/schema"
	"nalquery/internal/value"
	"nalquery/internal/xquery"
)

func compile(t *testing.T, src string) *Result {
	t.Helper()
	ast, err := xquery.ParseQuery(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	res, err := Translate(normalize.NormalizeWithCatalog(ast, schema.UseCases()), schema.UseCases())
	if err != nil {
		t.Fatalf("translate: %v", err)
	}
	return res
}

func run(t *testing.T, res *Result, docs map[string]*dom.Document) (string, value.TupleSeq) {
	t.Helper()
	ctx := algebra.NewCtx(docs)
	out := res.Plan.Eval(ctx, nil)
	return ctx.OutString(), out
}

const miniBib = `<bib>
<book year="1994"><title>T1</title>
 <author><last>A</last><first>a</first></author>
 <publisher>P</publisher><price>10.00</price></book>
<book year="2000"><title>T2</title>
 <author><last>B</last><first>b</first></author>
 <author><last>A</last><first>a</first></author>
 <publisher>P</publisher><price>12.00</price></book>
</bib>`

func miniDocs(t *testing.T) map[string]*dom.Document {
	t.Helper()
	return map[string]*dom.Document{
		"bib.xml": dom.MustParseString(miniBib, "bib.xml"),
	}
}

func TestForBecomesUnnestMap(t *testing.T) {
	res := compile(t, `let $d := doc("bib.xml") for $b in $d//book return $b/title`)
	plan := algebra.Explain(res.Plan)
	if !strings.Contains(plan, "Υ[b:") {
		t.Fatalf("for must become Υ:\n%s", plan)
	}
	if !strings.Contains(plan, `χ[d:doc("bib.xml")]`) {
		t.Fatalf("let doc must become χ:\n%s", plan)
	}
	if !strings.Contains(plan, "Ξ[") {
		t.Fatalf("return must become Ξ:\n%s", plan)
	}
}

func TestWhereBecomesSelect(t *testing.T) {
	res := compile(t, `let $d := doc("bib.xml") for $b in $d//book where $b/@year > 1999 return $b/title`)
	out, _ := run(t, res, miniDocs(t))
	if out != "<title>T2</title>" {
		t.Fatalf("σ result: %q", out)
	}
}

func TestDistinctValuesProvenance(t *testing.T) {
	res := compile(t, `let $d := doc("bib.xml") for $a in distinct-values($d//author) return $a`)
	p := res.Prov["a"]
	if !p.Distinct || !p.DupFree {
		t.Fatalf("distinct-values provenance: %+v", p)
	}
	if p.URI != "bib.xml" || p.Chain != "//author" {
		t.Fatalf("chain: %+v", p)
	}
}

func TestSingletonPathStaysScalar(t *testing.T) {
	// title is a singleton child of book per the DTD: bound via plain χ.
	res := compile(t, `let $d := doc("bib.xml") for $b in $d//book let $t := $b/title return $t`)
	if res.Prov["t"].IsSeq {
		t.Fatalf("singleton path must not be sequence-bound: %+v", res.Prov["t"])
	}
	if res.Prov["t"].Chain != "//book/title" {
		t.Fatalf("chain: %+v", res.Prov["t"])
	}
}

func TestMultiPathBecomesSequenceAttr(t *testing.T) {
	// author is not singleton: bound via e[a'].
	res := compile(t, `let $d := doc("bib.xml") for $b in $d//book let $a := $b/author where $x = $a return $b`)
	p := res.Prov["a"]
	if !p.IsSeq || p.ItemAttr != "a'" {
		t.Fatalf("author must be sequence-bound: %+v", p)
	}
	// The comparison must have become a membership predicate.
	if !strings.Contains(algebra.Explain(res.Plan), "∈") {
		t.Fatalf("x = a must translate to ∈:\n%s", algebra.Explain(res.Plan))
	}
}

func TestNestedLetBecomesNestedApply(t *testing.T) {
	res := compile(t, `
let $d1 := doc("bib.xml")
for $a1 in distinct-values($d1//author)
return <a>{ let $d2 := doc("bib.xml")
            for $b2 in $d2//book[$a1 = author]
            return $b2/title }</a>`)
	plan := algebra.Explain(res.Plan)
	if !strings.Contains(plan, "nested:") {
		t.Fatalf("nested query must appear as nested algebra:\n%s", plan)
	}
	if !strings.Contains(plan, "Π") {
		t.Fatalf("f must be a projection:\n%s", plan)
	}
}

func TestAggregateTranslation(t *testing.T) {
	res := compile(t, `
let $d := doc("bib.xml")
for $t in distinct-values($d//book/title)
let $c := count(let $d2 := doc("bib.xml")
                for $b2 in $d2//book
                let $t2 := $b2/title
                where $t2 = $t
                return $t2)
where $c >= 1
return <t>{ $t }</t>`)
	out, _ := run(t, res, miniDocs(t))
	if out != "<t>T1</t><t>T2</t>" {
		t.Fatalf("count aggregate: %q", out)
	}
}

func TestQuantifierTranslation(t *testing.T) {
	res := compile(t, `
let $d := doc("bib.xml")
for $t in $d//book/title
where some $t2 in (let $d2 := doc("bib.xml")
                   for $b in $d2//book
                   where $b/@year > 1999
                   for $t3 in $b/title
                   return $t3)
      satisfies $t = $t2
return <m>{ $t }</m>`)
	plan := algebra.Explain(res.Plan)
	if !strings.Contains(plan, "∃") {
		t.Fatalf("some must become ∃:\n%s", plan)
	}
	out, _ := run(t, res, miniDocs(t))
	if out != "<m><title>T2</title></m>" {
		t.Fatalf("∃ result: %q", out)
	}
}

func TestUniversalTranslation(t *testing.T) {
	res := compile(t, `
let $d := doc("bib.xml")
for $a in distinct-values($d//author)
where every $b in doc("bib.xml")//book[author = $a]
      satisfies $b/@year > 1995
return <n>{ $a }</n>`)
	plan := algebra.Explain(res.Plan)
	if !strings.Contains(plan, "∀") {
		t.Fatalf("every must become ∀:\n%s", plan)
	}
	out, _ := run(t, res, miniDocs(t))
	// Author "Bb" only has the 2000 book; "Aa" also wrote the 1994 one.
	if out != "<n>Bb</n>" {
		t.Fatalf("∀ result: %q", out)
	}
}

func TestConstructorCommands(t *testing.T) {
	res := compile(t, `
let $d := doc("bib.xml")
for $b in $d//book
let $t := $b/title
return <entry year="{ $b/@year }"><t>{ $t }</t></entry>`)
	out, _ := run(t, res, miniDocs(t))
	want := `<entry year="1994"><t><title>T1</title></t></entry>` +
		`<entry year="2000"><t><title>T2</title></t></entry>`
	if out != want {
		t.Fatalf("constructor:\ngot:  %s\nwant: %s", out, want)
	}
}

func TestAttributeOrderPreserved(t *testing.T) {
	// Results must come in document order: the essence of the ordered
	// context.
	res := compile(t, `let $d := doc("bib.xml") for $a in $d//author return <x>{ $a/last }</x>`)
	out, _ := run(t, res, miniDocs(t))
	want := "<x><last>A</last></x><x><last>B</last></x><x><last>A</last></x>"
	if out != want {
		t.Fatalf("order:\ngot:  %s\nwant: %s", out, want)
	}
}

func TestUnknownDocumentYieldsEmpty(t *testing.T) {
	res := compile(t, `let $d := doc("missing.xml") for $b in $d//book return $b`)
	out, ts := run(t, res, miniDocs(t))
	if out != "" || len(ts) != 0 {
		t.Fatalf("missing document must produce empty result, got %q", out)
	}
}

func TestTranslateErrors(t *testing.T) {
	bad := []string{
		// Non-literal doc argument.
		`let $d := doc($x) for $b in $d//book return $b`,
	}
	for _, src := range bad {
		ast, err := xquery.ParseQuery(src)
		if err != nil {
			t.Fatalf("parse: %v", err)
		}
		if _, err := Translate(normalize.NormalizeWithCatalog(ast, schema.UseCases()), schema.UseCases()); err == nil {
			t.Errorf("expected translate error for %q", src)
		}
	}
}

func TestNilCatalogIsSafe(t *testing.T) {
	ast, err := xquery.ParseQuery(`let $d := doc("bib.xml") for $b in $d//book let $t := $b/title return $t`)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Translate(normalize.NormalizeWithCatalog(ast, schema.UseCases()), nil)
	if err != nil {
		t.Fatal(err)
	}
	// Without facts, paths are conservatively sequence-bound.
	if !res.Prov["t"].IsSeq {
		t.Fatalf("nil catalog must be conservative: %+v", res.Prov["t"])
	}
}
