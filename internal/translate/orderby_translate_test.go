package translate

import (
	"testing"

	"nalquery/internal/algebra"
	"nalquery/internal/normalize"
	"nalquery/internal/schema"
	"nalquery/internal/xquery"
)

// Translation-shape tests for the frontend extensions: order by becomes
// Π̄(Sort(χ…)), positional for-bindings become Υ with a PosAttr, and
// conditionals become CondExpr.

func translateQ(t *testing.T, q string) algebra.Op {
	t.Helper()
	ast, err := xquery.ParseQuery(q)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Translate(normalize.NormalizeWithCatalog(ast, schema.UseCases()), schema.UseCases())
	if err != nil {
		t.Fatal(err)
	}
	return res.Plan
}

func findOp(root algebra.Op, pred func(algebra.Op) bool) algebra.Op {
	var found algebra.Op
	var walk func(o algebra.Op)
	walk = func(o algebra.Op) {
		if found != nil {
			return
		}
		if pred(o) {
			found = o
			return
		}
		for _, c := range o.Children() {
			walk(c)
		}
	}
	walk(root)
	return found
}

// TestOrderByTranslation: order by produces a stable Sort over χ-bound key
// attributes, dropped afterwards.
func TestOrderByTranslation(t *testing.T) {
	plan := translateQ(t, `
let $d := doc("prices.xml")
for $b in $d//book
order by decimal($b/price) descending, string($b/title)
return $b/title`)
	sortOp := findOp(plan, func(o algebra.Op) bool { _, ok := o.(algebra.Sort); return ok })
	if sortOp == nil {
		t.Fatalf("no Sort operator in plan:\n%s", algebra.Explain(plan))
	}
	s := sortOp.(algebra.Sort)
	if len(s.By) != 2 || len(s.Dirs) != 2 {
		t.Fatalf("Sort keys/dirs: %v %v, want 2 each", s.By, s.Dirs)
	}
	if !s.Dirs[0] || s.Dirs[1] {
		t.Errorf("Dirs = %v, want [descending, ascending]", s.Dirs)
	}
	drop := findOp(plan, func(o algebra.Op) bool {
		d, ok := o.(algebra.ProjectDrop)
		return ok && len(d.Names) == 2
	})
	if drop == nil {
		t.Errorf("sort-key attributes not dropped after the Sort")
	}
	// The sort keys must be bound by χ operators below the Sort.
	maps := 0
	var count func(o algebra.Op)
	count = func(o algebra.Op) {
		if m, ok := o.(algebra.Map); ok {
			for _, k := range s.By {
				if m.Attr == k {
					maps++
				}
			}
		}
		for _, c := range o.Children() {
			count(c)
		}
	}
	count(plan)
	if maps != 2 {
		t.Errorf("found %d χ-bound sort keys, want 2", maps)
	}
}

// TestPositionalForTranslation: "at $i" sets Υ's PosAttr.
func TestPositionalForTranslation(t *testing.T) {
	plan := translateQ(t, `
let $d := doc("bib.xml")
for $b at $i in $d//book
return $b/title`)
	um := findOp(plan, func(o algebra.Op) bool {
		u, ok := o.(algebra.UnnestMap)
		return ok && u.PosAttr != ""
	})
	if um == nil {
		t.Fatalf("no Υ with PosAttr in plan:\n%s", algebra.Explain(plan))
	}
	if um.(algebra.UnnestMap).PosAttr != "i" {
		t.Errorf("PosAttr = %q, want \"i\"", um.(algebra.UnnestMap).PosAttr)
	}
}

// TestConditionalTranslation: if/then/else becomes CondExpr inside the
// selection predicate.
func TestConditionalTranslation(t *testing.T) {
	plan := translateQ(t, `
let $d := doc("bib.xml")
for $b in $d//book
where if ($b/@year > 2000) then true() else false()
return $b/title`)
	sel := findOp(plan, func(o algebra.Op) bool {
		s, ok := o.(algebra.Select)
		if !ok {
			return false
		}
		_, isCond := s.Pred.(algebra.CondExpr)
		return isCond
	})
	if sel == nil {
		t.Fatalf("no σ with CondExpr predicate in plan:\n%s", algebra.Explain(plan))
	}
}
