// Package translate implements the translation of normalized XQuery ASTs
// into the NAL algebra — the two mutually recursive T functions of Fig. 3:
//
//	for  clauses become unnest-map operators (Υ),
//	let  clauses become map operators (χ), with nested queries translated
//	     into nested algebraic expressions f(σ...(e2)),
//	where clauses become selections (σ),
//	return clauses become result construction (Ξ),
//	quantifiers become ∃/∀ predicates over nested algebraic ranges.
//
// The translator also records the provenance of every variable (document
// URI, element chain, distinctness) — the information the unnesting rewriter
// needs to verify the schema-dependent side conditions of Eqvs. 3, 5, 8
// and 9.
package translate

import (
	"fmt"
	"strings"

	"nalquery/internal/algebra"
	"nalquery/internal/schema"
	"nalquery/internal/value"
	"nalquery/internal/xpath"
	"nalquery/internal/xquery"
)

// Error reports a query the translator rejects: a shape outside the
// supported XQuery subset, or one the normalizer should have rewritten but
// did not. Every rejection from this package is an *Error — callers
// (the public compile boundary) rely on errors.As never failing — so a
// non-Error escaping translation indicates a translator bug, not a bad
// query.
type Error struct {
	// Msg describes the rejection.
	Msg string
	// Cause is the underlying error when the rejection wraps one (e.g. an
	// XPath syntax error inside a path expression); nil otherwise.
	Cause error
}

func (e *Error) Error() string { return "translate: " + e.Msg }

// Unwrap exposes the wrapped cause to errors.Is/As chains.
func (e *Error) Unwrap() error { return e.Cause }

// errf builds a typed translation rejection.
func errf(format string, args ...any) error {
	return &Error{Msg: fmt.Sprintf(format, args...)}
}

// Prov describes where a variable's values come from.
type Prov struct {
	// URI is the source document, "" when unknown.
	URI string
	// Chain is the element chain from the document root, e.g. "//book/author"
	// or "//book/@year"; "" for the document node itself or when unknown.
	Chain string
	// Distinct is true when the values passed through distinct-values / ΠD
	// (value-level duplicate freeness).
	Distinct bool
	// DupFree is true when the bound items are duplicate-free as nodes
	// (every path expression "returns a duplicate-free sequence by
	// definition", Sec. 5.4). Value-level duplicates may still occur.
	DupFree bool
	// IsDoc is true for variables bound to a document root.
	IsDoc bool
	// IsSeq is true for sequence-valued attributes created via e[a]
	// (BindTuples); ItemAttr is the inner tuple attribute (the primed name).
	IsSeq    bool
	ItemAttr string
}

// Result is the output of a translation.
type Result struct {
	Plan algebra.Op
	// Prov maps attribute names to their provenance.
	Prov map[string]Prov
}

// Translator translates normalized queries.
type Translator struct {
	cat  *schema.Catalog
	prov map[string]Prov
	// params maps external variable names to parameter slots; bound tracks
	// the clause bindings currently in scope (unlike prov, which
	// accumulates across the whole query for the rewriter's side-condition
	// checks), so externals are shadowed exactly while a same-named binding
	// is in scope.
	params map[string]int
	bound  map[string]bool
}

// New creates a Translator using the given schema catalog (may be nil; then
// all paths are treated as potentially sequence-valued, which is always
// safe).
func New(cat *schema.Catalog) *Translator {
	return &Translator{cat: cat, prov: map[string]Prov{}, bound: map[string]bool{}}
}

// Translate translates a normalized query into an algebra plan.
func Translate(q xquery.Expr, cat *schema.Catalog) (*Result, error) {
	return TranslateParams(q, cat, nil)
}

// TranslateParams translates a normalized query whose free variables named
// in params are external: references to them become typed algebra.Param
// expressions reading the per-run binding table at the given slot index,
// instead of tuple-attribute reads. A clause binding of the same name
// shadows the parameter from that point on, matching XQuery scoping.
func TranslateParams(q xquery.Expr, cat *schema.Catalog, params map[string]int) (*Result, error) {
	tr := New(cat)
	tr.params = params
	f, ok := q.(xquery.FLWR)
	if !ok {
		return nil, errf("top-level expression must be a FLWR expression, got %T", q)
	}
	plan, err := tr.flwrPipeline(f.Clauses, algebra.Singleton{})
	if err != nil {
		return nil, err
	}
	top, err := tr.returnOp(plan, f.Return)
	if err != nil {
		return nil, err
	}
	return &Result{Plan: top, Prov: tr.prov}, nil
}

// flwrPipeline translates the clause list of a FLWR expression, Fig. 3's
// binary T function.
func (tr *Translator) flwrPipeline(clauses []xquery.Clause, in algebra.Op) (algebra.Op, error) {
	plan := in
	for _, c := range clauses {
		switch cl := c.(type) {
		case xquery.ForClause:
			for _, b := range cl.Bindings {
				e, p, err := tr.rangeExpr(b.E)
				if err != nil {
					return nil, err
				}
				tr.bind(b.Var, p)
				if b.Pos != "" {
					tr.bind(b.Pos, Prov{})
				}
				plan = algebra.UnnestMap{In: plan, Attr: b.Var, E: e, PosAttr: b.Pos}
			}
		case xquery.LetClause:
			for _, b := range cl.Bindings {
				e, p, err := tr.letExpr(b.Var, b.E)
				if err != nil {
					return nil, err
				}
				tr.bind(b.Var, p)
				plan = algebra.Map{In: plan, Attr: b.Var, E: e}
			}
		case xquery.WhereClause:
			pred, err := tr.expr(cl.Cond)
			if err != nil {
				return nil, err
			}
			plan = algebra.Select{In: plan, Pred: pred}
		case xquery.OrderByClause:
			// Extension beyond Fig. 3 (the paper skips order by): bind each
			// ordering key to a fresh sort attribute, sort stably, drop the
			// sort attributes afterwards.
			var keys []string
			var dirs []bool
			for _, s := range cl.Specs {
				e, err := tr.expr(s.Key)
				if err != nil {
					return nil, err
				}
				attr := fmt.Sprintf("#ob%d", len(tr.prov))
				tr.bind(attr, Prov{})
				plan = algebra.Map{In: plan, Attr: attr, E: e}
				keys = append(keys, attr)
				dirs = append(dirs, s.Descending)
			}
			plan = algebra.ProjectDrop{
				In:    algebra.Sort{In: plan, By: keys, Dirs: dirs},
				Names: keys,
			}
		}
	}
	return plan, nil
}

// rangeExpr translates a for-binding range into an item-sequence expression
// plus the provenance of the bound items.
func (tr *Translator) rangeExpr(e xquery.Expr) (algebra.Expr, Prov, error) {
	switch w := e.(type) {
	case xquery.Path:
		ex, err := tr.pathExpr(w)
		if err != nil {
			return nil, Prov{}, err
		}
		p := tr.pathProv(w)
		p.DupFree = true
		return ex, p, nil
	case xquery.Call:
		if w.Fn == "distinct-values" && len(w.Args) == 1 {
			arg, err := tr.expr(w.Args[0])
			if err != nil {
				return nil, Prov{}, err
			}
			p := Prov{}
			if pa, ok := w.Args[0].(xquery.Path); ok {
				p = tr.pathProv(pa)
			}
			p.Distinct = true
			p.DupFree = true
			return algebra.Call{Fn: "distinct-values", Args: []algebra.Expr{arg}}, p, nil
		}
		ex, err := tr.expr(e)
		return ex, Prov{}, err
	case xquery.VarRef:
		if idx, ok := tr.paramIdx(w.Name); ok {
			return algebra.Param{Name: w.Name, Idx: idx}, Prov{}, nil
		}
		return algebra.Var{Name: w.Name}, tr.prov[w.Name], nil
	default:
		ex, err := tr.expr(e)
		return ex, Prov{}, err
	}
}

// bind records one clause binding: provenance accumulates for the
// rewriter, and the name enters the current shadowing scope.
func (tr *Translator) bind(name string, p Prov) {
	tr.prov[name] = p
	tr.bound[name] = true
}

// paramIdx resolves a variable reference to its external-parameter slot.
// Clause bindings currently in scope (for/let variables, positional and
// quantifier variables, sort attributes) shadow a same-named external.
func (tr *Translator) paramIdx(name string) (int, bool) {
	if len(tr.params) == 0 || tr.bound[name] {
		return 0, false
	}
	idx, ok := tr.params[name]
	return idx, ok
}

// scope opens a shadowing scope; calling the returned function ends it,
// dropping bindings made inside. Nested FLWR blocks and quantifiers
// restore on exit so a binding that shadows an external variable stops
// shadowing where its XQuery scope ends — a reference after the scope
// resolves to the external again, not to an unbound tuple attribute.
func (tr *Translator) scope() func() {
	saved := make(map[string]bool, len(tr.bound))
	for k := range tr.bound {
		saved[k] = true
	}
	return func() { tr.bound = saved }
}

// letExpr translates a let-binding. Nested FLWR expressions become nested
// algebraic applications f(plan); non-singleton paths are bound as
// sequence-valued attributes via e[a′].
func (tr *Translator) letExpr(varName string, e xquery.Expr) (algebra.Expr, Prov, error) {
	switch w := e.(type) {
	case xquery.FLWR:
		na, p, err := tr.nestedQuery(w, algebra.SFIdent{})
		return na, p, err
	case xquery.Call:
		if fn := aggName(w.Fn); fn != "" && len(w.Args) == 1 {
			if inner, ok := w.Args[0].(xquery.FLWR); ok {
				return tr.nestedAgg(inner, fn)
			}
		}
		if w.Fn == "doc" || w.Fn == "document" {
			uri, err := docURI(w)
			if err != nil {
				return nil, Prov{}, err
			}
			return algebra.Doc{URI: uri}, Prov{URI: uri, IsDoc: true}, nil
		}
		ex, err := tr.expr(e)
		return ex, Prov{}, err
	case xquery.Path:
		ex, err := tr.pathExpr(w)
		if err != nil {
			return nil, Prov{}, err
		}
		p := tr.pathProv(w)
		if tr.singletonPath(w) {
			// Singleton results need no e[a] tuple construction (Sec. 3:
			// "in case the result of some ei is a singleton, we do not need
			// to do so and will not either").
			return ex, p, nil
		}
		item := varName + "'"
		p.IsSeq = true
		p.ItemAttr = item
		return algebra.BindTuples{E: ex, Attr: item}, p, nil
	default:
		ex, err := tr.expr(e)
		return ex, Prov{}, err
	}
}

// nestedQuery translates a nested FLWR into f(plan) where the return clause
// determines the projection and f wraps it.
func (tr *Translator) nestedQuery(f xquery.FLWR, _ algebra.SeqFunc) (algebra.Expr, Prov, error) {
	rv, ok := f.Return.(xquery.VarRef)
	if !ok {
		return nil, Prov{}, errf("nested query must return a variable after normalization, got %s", f.Return)
	}
	defer tr.scope()()
	plan, err := tr.flwrPipeline(f.Clauses, algebra.Singleton{})
	if err != nil {
		return nil, Prov{}, err
	}
	p := tr.prov[rv.Name]
	p.IsSeq = true
	p.ItemAttr = rv.Name
	return algebra.NestedApply{F: algebra.SFProject{Attrs: []string{rv.Name}}, Plan: plan}, p, nil
}

// nestedAgg translates agg( FLWR ) into (agg∘Πrv)(plan).
func (tr *Translator) nestedAgg(f xquery.FLWR, fn string) (algebra.Expr, Prov, error) {
	rv, ok := f.Return.(xquery.VarRef)
	if !ok {
		return nil, Prov{}, errf("aggregated nested query must return a variable, got %s", f.Return)
	}
	defer tr.scope()()
	plan, err := tr.flwrPipeline(f.Clauses, algebra.Singleton{})
	if err != nil {
		return nil, Prov{}, err
	}
	var sf algebra.SeqFunc
	if fn == "count" {
		sf = algebra.SFCount{}
	} else {
		sf = algebra.SFAgg{Fn: fn, Attr: rv.Name}
	}
	return algebra.NestedApply{F: sf, Plan: plan}, Prov{}, nil
}

func aggName(fn string) string {
	switch fn {
	case "count", "min", "max", "sum", "avg":
		return fn
	}
	return ""
}

func docURI(c xquery.Call) (string, error) {
	if len(c.Args) != 1 {
		return "", errf("%s() expects one argument", c.Fn)
	}
	s, ok := c.Args[0].(xquery.StrLit)
	if !ok {
		return "", errf("%s() expects a string literal", c.Fn)
	}
	return s.V, nil
}

// expr translates a scalar expression (Fig. 3's unary T function).
func (tr *Translator) expr(e xquery.Expr) (algebra.Expr, error) {
	switch w := e.(type) {
	case xquery.VarRef:
		if idx, ok := tr.paramIdx(w.Name); ok {
			return algebra.Param{Name: w.Name, Idx: idx}, nil
		}
		return algebra.Var{Name: w.Name}, nil
	case xquery.StrLit:
		return algebra.ConstVal{V: value.Str(w.V)}, nil
	case xquery.NumLit:
		if w.V == float64(int64(w.V)) {
			return algebra.ConstVal{V: value.Int(int64(w.V))}, nil
		}
		return algebra.ConstVal{V: value.Float(w.V)}, nil
	case xquery.Path:
		return tr.pathExpr(w)
	case xquery.Cmp:
		return tr.cmp(w)
	case xquery.Arith:
		l, err := tr.expr(w.L)
		if err != nil {
			return nil, err
		}
		r, err := tr.expr(w.R)
		if err != nil {
			return nil, err
		}
		return algebra.ArithExpr{L: l, R: r, Op: w.Op}, nil
	case xquery.And:
		l, err := tr.expr(w.L)
		if err != nil {
			return nil, err
		}
		r, err := tr.expr(w.R)
		if err != nil {
			return nil, err
		}
		return algebra.AndExpr{L: l, R: r}, nil
	case xquery.Or:
		l, err := tr.expr(w.L)
		if err != nil {
			return nil, err
		}
		r, err := tr.expr(w.R)
		if err != nil {
			return nil, err
		}
		return algebra.OrExpr{L: l, R: r}, nil
	case xquery.Cond:
		cond, err := tr.expr(w.If)
		if err != nil {
			return nil, err
		}
		thenE, err := tr.expr(w.Then)
		if err != nil {
			return nil, err
		}
		elseE, err := tr.expr(w.Else)
		if err != nil {
			return nil, err
		}
		return algebra.CondExpr{If: cond, Then: thenE, Else: elseE}, nil
	case xquery.EmptySeq:
		return algebra.ConstVal{V: value.Null{}}, nil
	case xquery.Call:
		return tr.call(w)
	case xquery.Quant:
		return tr.quant(w)
	case xquery.FLWR:
		na, _, err := tr.nestedQuery(w, algebra.SFIdent{})
		return na, err
	default:
		return nil, errf("unsupported expression %T (%s)", e, e)
	}
}

func (tr *Translator) call(c xquery.Call) (algebra.Expr, error) {
	switch c.Fn {
	case "doc", "document":
		uri, err := docURI(c)
		if err != nil {
			return nil, err
		}
		return algebra.Doc{URI: uri}, nil
	case "not":
		if len(c.Args) == 1 {
			a, err := tr.expr(c.Args[0])
			if err != nil {
				return nil, err
			}
			return algebra.NotExpr{E: a}, nil
		}
	}
	if fn := aggName(c.Fn); fn != "" && len(c.Args) == 1 {
		if inner, ok := c.Args[0].(xquery.FLWR); ok {
			na, _, err := tr.nestedAgg(inner, fn)
			return na, err
		}
	}
	args := make([]algebra.Expr, len(c.Args))
	for i, a := range c.Args {
		ea, err := tr.expr(a)
		if err != nil {
			return nil, err
		}
		args[i] = ea
	}
	return algebra.Call{Fn: c.Fn, Args: args}, nil
}

// cmp translates a general comparison. Equality against a sequence-valued
// attribute becomes the membership predicate ∈ (Sec. 5.1: "we have to
// translate $a1 = $a2 into a1 ∈ a2").
func (tr *Translator) cmp(c xquery.Cmp) (algebra.Expr, error) {
	l, err := tr.expr(c.L)
	if err != nil {
		return nil, err
	}
	r, err := tr.expr(c.R)
	if err != nil {
		return nil, err
	}
	if c.Op == value.CmpEq {
		lSeq := tr.isSeqVar(c.L)
		rSeq := tr.isSeqVar(c.R)
		switch {
		case rSeq && !lSeq:
			return algebra.InExpr{Item: l, Seq: r}, nil
		case lSeq && !rSeq:
			return algebra.InExpr{Item: r, Seq: l}, nil
		}
	}
	return algebra.CmpExpr{L: l, R: r, Op: c.Op}, nil
}

func (tr *Translator) isSeqVar(e xquery.Expr) bool {
	v, ok := e.(xquery.VarRef)
	if !ok {
		return false
	}
	return tr.prov[v.Name].IsSeq
}

// quant translates a quantified expression into an ∃/∀ predicate over a
// nested algebraic range.
func (tr *Translator) quant(q xquery.Quant) (algebra.Expr, error) {
	rng, ok := q.Range.(xquery.FLWR)
	if !ok {
		return nil, errf("quantifier range must be a FLWR expression after normalization")
	}
	rv, ok := rng.Return.(xquery.VarRef)
	if !ok {
		return nil, errf("quantifier range must return a variable")
	}
	// The range bindings and the quantifier variable scope over the
	// satisfies predicate only.
	defer tr.scope()()
	plan, err := tr.flwrPipeline(rng.Clauses, algebra.Singleton{})
	if err != nil {
		return nil, err
	}
	rangeOp := algebra.Project{In: plan, Names: []string{rv.Name}}
	// The quantifier variable inherits the provenance of the range items.
	tr.bind(q.Var, tr.prov[rv.Name])
	pred, err := tr.expr(q.Sat)
	if err != nil {
		return nil, err
	}
	if q.Every {
		return algebra.ForallQ{Var: q.Var, RangeAttr: rv.Name, Range: rangeOp, Pred: pred}, nil
	}
	return algebra.ExistsQ{Var: q.Var, RangeAttr: rv.Name, Range: rangeOp, Pred: pred}, nil
}

// pathExpr translates a predicate-free path.
func (tr *Translator) pathExpr(p xquery.Path) (algebra.Expr, error) {
	base, err := tr.expr(p.Base)
	if err != nil {
		return nil, err
	}
	var sb strings.Builder
	for _, s := range p.Steps {
		if s.Descendant {
			sb.WriteString("//")
		} else if sb.Len() > 0 {
			sb.WriteString("/")
		}
		if s.Attribute {
			sb.WriteString("@")
		}
		sb.WriteString(s.Name)
		if s.Pred != nil {
			// Positional predicates ([n], [last()]) are part of the path;
			// value predicates must have been moved into where clauses by
			// the Sec. 3 normalization.
			switch w := s.Pred.(type) {
			case xquery.NumLit:
				fmt.Fprintf(&sb, "[%d]", int(w.V))
			case xquery.Call:
				if w.Fn != "last" || len(w.Args) != 0 {
					return nil, errf("residual path predicate %s (normalizer should have removed it)", s.Pred)
				}
				sb.WriteString("[last()]")
			default:
				return nil, errf("residual path predicate %s (normalizer should have removed it)", s.Pred)
			}
		}
	}
	xp, err := xpath.Parse(sb.String())
	if err != nil {
		return nil, &Error{Msg: err.Error(), Cause: err}
	}
	return algebra.PathOf{Input: base, Path: xp}, nil
}

// pathProv derives the provenance chain of a path expression.
func (tr *Translator) pathProv(p xquery.Path) Prov {
	var base Prov
	switch b := p.Base.(type) {
	case xquery.VarRef:
		base = tr.prov[b.Name]
	case xquery.Call:
		if b.Fn == "doc" || b.Fn == "document" {
			if uri, err := docURI(b); err == nil {
				base = Prov{URI: uri, IsDoc: true}
			}
		}
	}
	if base.URI == "" {
		return Prov{}
	}
	chain := base.Chain
	for _, s := range p.Steps {
		switch {
		case s.Attribute:
			chain += "/@" + s.Name
		case s.Descendant:
			chain += "//" + s.Name
		default:
			chain += "/" + s.Name
		}
	}
	return Prov{URI: base.URI, Chain: chain}
}

// singletonPath reports whether a path is known (via DTD facts) to select at
// most one node per context item. Paths with descendant steps or unknown
// context are conservatively non-singleton.
func (tr *Translator) singletonPath(p xquery.Path) bool {
	if tr.cat == nil {
		return false
	}
	v, ok := p.Base.(xquery.VarRef)
	if !ok {
		return false
	}
	base := tr.prov[v.Name]
	if base.URI == "" || base.Chain == "" || base.IsSeq || base.Distinct {
		return false
	}
	ctx := lastElem(base.Chain)
	if ctx == "" {
		return false
	}
	var rel []string
	for _, s := range p.Steps {
		if s.Descendant {
			return false
		}
		if s.Attribute {
			rel = append(rel, "@"+s.Name)
		} else {
			rel = append(rel, s.Name)
		}
	}
	return tr.cat.SingletonPath(base.URI, ctx, strings.Join(rel, "/"))
}

func lastElem(chain string) string {
	parts := strings.Split(strings.TrimPrefix(chain, "/"), "/")
	for i := len(parts) - 1; i >= 0; i-- {
		s := parts[i]
		if s == "" || strings.HasPrefix(s, "@") {
			continue
		}
		return s
	}
	return ""
}

// returnOp translates the return clause into a Ξ operator, flattening
// element constructors into a command list via the C function of Sec. 3.
func (tr *Translator) returnOp(in algebra.Op, ret xquery.Expr) (algebra.Op, error) {
	switch w := ret.(type) {
	case xquery.ElemCtor:
		cmds, err := tr.ctorCommands(w)
		if err != nil {
			return nil, err
		}
		return algebra.XiSimple{In: in, Cmds: cmds}, nil
	default:
		e, err := tr.expr(ret)
		if err != nil {
			return nil, err
		}
		return algebra.XiSimple{In: in, Cmds: []algebra.Command{algebra.ExprCmd(e)}}, nil
	}
}

func (tr *Translator) ctorCommands(c xquery.ElemCtor) ([]algebra.Command, error) {
	var cmds []algebra.Command
	lit := &strings.Builder{}
	flush := func() {
		if lit.Len() > 0 {
			cmds = append(cmds, algebra.LitCmd(lit.String()))
			lit.Reset()
		}
	}
	lit.WriteString("<" + c.Name)
	for _, a := range c.Attrs {
		lit.WriteString(" " + a.Name + `="`)
		for _, ct := range a.Content {
			if ct.IsLit {
				lit.WriteString(ct.Text)
				continue
			}
			e, err := tr.expr(ct.E)
			if err != nil {
				return nil, err
			}
			flush()
			cmds = append(cmds, algebra.ExprCmd(e))
		}
		lit.WriteString(`"`)
	}
	lit.WriteString(">")
	for _, ct := range c.Content {
		if ct.IsLit {
			lit.WriteString(ct.Text)
			continue
		}
		if inner, ok := ct.E.(xquery.ElemCtor); ok {
			sub, err := tr.ctorCommands(inner)
			if err != nil {
				return nil, err
			}
			for _, sc := range sub {
				if sc.IsLit {
					lit.WriteString(sc.Lit)
				} else {
					flush()
					cmds = append(cmds, sc)
				}
			}
			continue
		}
		e, err := tr.expr(ct.E)
		if err != nil {
			return nil, err
		}
		flush()
		cmds = append(cmds, algebra.ExprCmd(e))
	}
	lit.WriteString("</" + c.Name + ">")
	flush()
	return cmds, nil
}
