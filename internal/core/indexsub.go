package core

import (
	"nalquery/internal/algebra"
	"nalquery/internal/value"
	"nalquery/internal/xpath"
)

// This file is the planner's index substitution: with a statistics/index
// catalog at hand (the engine snapshot's per-document indexes), full-scan
// shapes rewrite into algebra.IndexScan —
//
//	Υ[b:path](…doc-bound…)            ⇒  IdxScan[b:path]            (structural)
//	σ[b/rel cmp k](Υ[b:path](…))      ⇒  IdxScan[b:path/rel cmp k]  (value probe)
//
// The value form consumes exactly the matched conjunct; remaining conjuncts
// keep their σ above the scan. Both forms preserve document order (the
// index lists are doc-ordered) and therefore the plan's output, which the
// differential gate pins on every paper query and the generated-query
// corpus. Substitution produces additional plan alternatives — the base
// plans stay on offer, and the cost model decides (measured statistics make
// the probe cheap; the default constants price it pessimistically).

// ScanInfo is an index catalog's answer for a structural scan.
type ScanInfo struct {
	Index algebra.NodeIndex
	// Path is the resolved absolute path (display form).
	Path string
	// Card is the measured node count.
	Card float64
}

// ValueInfo is an index catalog's answer for a value probe.
type ValueInfo struct {
	Index algebra.NodeIndex
	// Path is the resolved absolute leaf path.
	Path string
	// Depth is the parent-hop count from indexed leaf to bound node.
	Depth int
	// Card is the expected equality-probe result count (count/distinct).
	Card float64
	// ScanCard is the measured count of nodes the unprobed scan binds.
	ScanCard float64
}

// IndexCatalog resolves document paths onto available indexes. Implemented
// by the engine over its snapshot's per-document index set; nil disables
// substitution.
type IndexCatalog interface {
	// ScanIndex resolves a root-relative path of the given document onto a
	// structural index covering exactly the nodes the path selects.
	ScanIndex(uri string, p xpath.Path) (ScanInfo, bool)
	// ValueIndex resolves a value predicate — rel applied to the nodes the
	// base path binds — onto a value index at the combined leaf path.
	ValueIndex(uri string, base, rel xpath.Path) (ValueInfo, bool)
}

// SubstituteIndexes rewrites index-answerable scans of a plan into
// IndexScan operators, bottom-up. Operator subscripts (nested algebraic
// expressions) are left untouched: their scans see free outer variables,
// which the per-open index resolution cannot bind. The reported flag is
// true when at least one scan was substituted.
func SubstituteIndexes(op algebra.Op, cat IndexCatalog) (algebra.Op, bool) {
	if cat == nil {
		return op, false
	}
	changedAny := false
	var conv func(algebra.Op) (algebra.Op, bool)
	conv = func(o algebra.Op) (algebra.Op, bool) {
		// Top-down: the σ-over-Υ value form must see the pristine Υ before
		// the recursion would turn it into a structural scan.
		out, changed := swapIndexed(o, cat)
		if changed {
			changedAny = true
		}
		out, childChanged := rebuildChildren(out, conv)
		return out, changed || childChanged
	}
	out, _ := conv(op)
	return out, changedAny
}

// swapIndexed substitutes at one node (whose children are already
// processed).
func swapIndexed(op algebra.Op, cat IndexCatalog) (algebra.Op, bool) {
	switch w := op.(type) {
	case algebra.Select:
		um, ok := w.In.(algebra.UnnestMap)
		if !ok {
			return op, false
		}
		uri, base, ok := scanShape(um)
		if !ok {
			return op, false
		}
		cs := conjuncts(w.Pred)
		for i, c := range cs {
			rel, cmp, key, ok := matchProbe(c, um.Attr)
			if !ok || cmp == value.CmpNe {
				continue
			}
			vi, ok := cat.ValueIndex(uri, base, rel)
			if !ok {
				continue
			}
			est := vi.Card
			if cmp != value.CmpEq {
				// Ordered comparisons probe by a linear pass; assume the
				// textbook third of the scan qualifies.
				est = vi.ScanCard / 3
			}
			scan := algebra.IndexScan{In: um.In, Attr: um.Attr, URI: uri,
				Path: vi.Path, Index: vi.Index, Depth: vi.Depth,
				Cmp: cmp, Key: key, EstCard: est}
			rest := append(append([]algebra.Expr{}, cs[:i]...), cs[i+1:]...)
			if len(rest) == 0 {
				return scan, true
			}
			return algebra.Select{In: scan, Pred: andChain(rest)}, true
		}
		// No probe-able conjunct: a structural substitution below the σ
		// already happened in the child pass if applicable.
		return op, false

	case algebra.UnnestMap:
		uri, p, ok := scanShape(w)
		if !ok {
			return op, false
		}
		si, ok := cat.ScanIndex(uri, p)
		if !ok {
			return op, false
		}
		return algebra.IndexScan{In: w.In, Attr: w.Attr, URI: uri,
			Path: si.Path, Index: si.Index, EstCard: si.Card}, true
	}
	return op, false
}

// scanShape recognizes a document-rooted Υ: no positional attribute, the
// subscript a plain path over a variable bound to a constant doc() below
// (or doc() itself).
func scanShape(um algebra.UnnestMap) (uri string, p xpath.Path, ok bool) {
	if um.PosAttr != "" {
		return "", xpath.Path{}, false
	}
	po, isPath := um.E.(algebra.PathOf)
	if !isPath {
		return "", xpath.Path{}, false
	}
	switch in := po.Input.(type) {
	case algebra.Doc:
		return in.URI, po.Path, true
	case algebra.Var:
		uri, ok := docBinder(um.In, in.Name)
		return uri, po.Path, ok
	}
	return "", xpath.Path{}, false
}

// docBinder walks down a single-input operator chain looking for the
// binder of name. Only a Map of a constant doc() qualifies: its value is
// identical for every input tuple, so resolving the index once per open is
// exact. The walk is conservative — any other binder of name, or any
// operator shape it does not recognize, fails the substitution.
func docBinder(op algebra.Op, name string) (string, bool) {
	for {
		switch w := op.(type) {
		case algebra.Map:
			if w.Attr == name {
				d, ok := w.E.(algebra.Doc)
				return d.URI, ok
			}
			op = w.In
		case algebra.UnnestMap:
			if w.Attr == name || w.PosAttr == name {
				return "", false
			}
			op = w.In
		case algebra.IndexScan:
			if w.Attr == name {
				return "", false
			}
			op = w.In
		case algebra.AttachSeq:
			if w.Attr == name {
				return "", false
			}
			op = w.In
		case algebra.Select:
			op = w.In
		case algebra.Project:
			op = w.In
		case algebra.ProjectDrop:
			op = w.In
		case algebra.Sort:
			op = w.In
		case algebra.Singleton:
			return "", false
		default:
			return "", false
		}
	}
}

// conjuncts flattens an ∧ tree.
func conjuncts(e algebra.Expr) []algebra.Expr {
	if a, ok := e.(algebra.AndExpr); ok {
		return append(conjuncts(a.L), conjuncts(a.R)...)
	}
	return []algebra.Expr{e}
}

// andChain rebuilds a left-deep ∧ chain.
func andChain(cs []algebra.Expr) algebra.Expr {
	out := cs[0]
	for _, c := range cs[1:] {
		out = algebra.AndExpr{L: out, R: c}
	}
	return out
}

// matchProbe recognizes one probe-able conjunct: a comparison between a
// plain path over the scan variable and a constant or external parameter
// (either side; a swapped comparison flips the operator).
func matchProbe(c algebra.Expr, b string) (rel xpath.Path, op value.CmpOp, key algebra.Expr, ok bool) {
	cmp, isCmp := c.(algebra.CmpExpr)
	if !isCmp {
		return
	}
	if r, rok := relPathOf(cmp.L, b); rok && constKey(cmp.R) {
		return r, cmp.Op, cmp.R, true
	}
	if r, rok := relPathOf(cmp.R, b); rok && constKey(cmp.L) {
		return r, flipCmp(cmp.Op), cmp.L, true
	}
	return
}

// relPathOf matches $b (empty path) or $b/rel.
func relPathOf(e algebra.Expr, b string) (xpath.Path, bool) {
	switch w := e.(type) {
	case algebra.Var:
		if w.Name == b {
			return xpath.Path{}, true
		}
	case algebra.PathOf:
		if v, ok := w.Input.(algebra.Var); ok && v.Name == b {
			return w.Path, true
		}
	}
	return xpath.Path{}, false
}

// constKey reports a key expression with no free tuple variables.
func constKey(e algebra.Expr) bool {
	switch e.(type) {
	case algebra.ConstVal, algebra.Param:
		return true
	}
	return false
}
