package core

import (
	"math/rand"
	"testing"

	"nalquery/internal/algebra"
	"nalquery/internal/value"
)

// Property-based tests for the Sec. 2 "familiar equivalences": both sides of
// every listed rule are constructed literally and compared over random
// ordered inputs, and the Simplify pass is checked to preserve plan results
// on composite plans.

func predOn(attr string, c int64, op value.CmpOp) algebra.Expr {
	return algebra.CmpExpr{L: algebra.Var{Name: attr}, R: algebra.ConstVal{V: value.Int(c)}, Op: op}
}

// TestSec2SelectCommute: σp1(σp2(e)) = σp2(σp1(e)).
func TestSec2SelectCommute(t *testing.T) {
	check(t, "σσ-commute", func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		e := randSeq(rng, []string{"A", "B"}, 8, 4)
		p1 := predOn("A", int64(rng.Intn(4)), randTheta(rng))
		p2 := predOn("B", int64(rng.Intn(4)), randTheta(rng))
		lhs := algebra.Select{In: algebra.Select{In: e, Pred: p2}, Pred: p1}
		rhs := algebra.Select{In: algebra.Select{In: e, Pred: p1}, Pred: p2}
		return value.TupleSeqEqual(evalOp(lhs), evalOp(rhs))
	})
}

// TestSec2SelectPushCross: σp(e1 × e2) = σp(e1) × e2 and = e1 × σp(e2).
func TestSec2SelectPushCross(t *testing.T) {
	check(t, "σ-push-×", func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		e1 := randSeq(rng, []string{"A1"}, 6, 4)
		e2 := randSeq(rng, []string{"A2"}, 6, 4)
		pL := predOn("A1", int64(rng.Intn(4)), randTheta(rng))
		pR := predOn("A2", int64(rng.Intn(4)), randTheta(rng))
		lhsL := algebra.Select{In: algebra.Cross{L: e1, R: e2}, Pred: pL}
		rhsL := algebra.Cross{L: algebra.Select{In: e1, Pred: pL}, R: e2}
		lhsR := algebra.Select{In: algebra.Cross{L: e1, R: e2}, Pred: pR}
		rhsR := algebra.Cross{L: e1, R: algebra.Select{In: e2, Pred: pR}}
		return value.TupleSeqEqual(evalOp(lhsL), evalOp(rhsL)) &&
			value.TupleSeqEqual(evalOp(lhsR), evalOp(rhsR))
	})
}

// TestSec2SelectPushJoin: σp1(e1 ⋈p2 e2) = σp1(e1) ⋈p2 e2 and
// = e1 ⋈p2 σp1(e2).
func TestSec2SelectPushJoin(t *testing.T) {
	check(t, "σ-push-⋈", func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		e1 := randSeq(rng, []string{"A1", "C"}, 6, 4)
		e2 := randSeq(rng, []string{"A2", "B"}, 6, 4)
		join := corrPred(value.CmpEq)
		pL := predOn("C", int64(rng.Intn(4)), randTheta(rng))
		pR := predOn("B", int64(rng.Intn(4)), randTheta(rng))
		lhsL := algebra.Select{In: algebra.Join{L: e1, R: e2, Pred: join}, Pred: pL}
		rhsL := algebra.Join{L: algebra.Select{In: e1, Pred: pL}, R: e2, Pred: join}
		lhsR := algebra.Select{In: algebra.Join{L: e1, R: e2, Pred: join}, Pred: pR}
		rhsR := algebra.Join{L: e1, R: algebra.Select{In: e2, Pred: pR}, Pred: join}
		return value.TupleSeqEqual(evalOp(lhsL), evalOp(rhsL)) &&
			value.TupleSeqEqual(evalOp(lhsR), evalOp(rhsR))
	})
}

// TestSec2SelectPushSemiAnti: σp1(e1 ⋉p2 e2) = σp1(e1) ⋉p2 e2, and the same
// for the anti-join ▷ (the companion rule the pass also uses).
func TestSec2SelectPushSemiAnti(t *testing.T) {
	check(t, "σ-push-⋉/▷", func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		e1 := randSeq(rng, []string{"A1", "C"}, 6, 4)
		e2 := randSeq(rng, []string{"A2"}, 6, 4)
		join := corrPred(value.CmpEq)
		p := predOn("C", int64(rng.Intn(4)), randTheta(rng))
		lhsS := algebra.Select{In: algebra.SemiJoin{L: e1, R: e2, Pred: join}, Pred: p}
		rhsS := algebra.SemiJoin{L: algebra.Select{In: e1, Pred: p}, R: e2, Pred: join}
		lhsA := algebra.Select{In: algebra.AntiJoin{L: e1, R: e2, Pred: join}, Pred: p}
		rhsA := algebra.AntiJoin{L: algebra.Select{In: e1, Pred: p}, R: e2, Pred: join}
		return value.TupleSeqEqual(evalOp(lhsS), evalOp(rhsS)) &&
			value.TupleSeqEqual(evalOp(lhsA), evalOp(rhsA))
	})
}

// TestSec2SelectPushOuter: σp1(e1 ⟕g:e p2 e2) = σp1(e1) ⟕g:e p2 e2.
func TestSec2SelectPushOuter(t *testing.T) {
	check(t, "σ-push-⟕", func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		e1 := randSeq(rng, []string{"A1", "C"}, 6, 4)
		e2 := randSeq(rng, []string{"A2", "g"}, 6, 4)
		join := corrPred(value.CmpEq)
		p := predOn("C", int64(rng.Intn(4)), randTheta(rng))
		oj := func(l algebra.Op) algebra.Op {
			return algebra.OuterJoin{L: l, R: e2, Pred: join, G: "g", Default: algebra.SFCount{}}
		}
		lhs := algebra.Select{In: oj(e1), Pred: p}
		rhs := oj(algebra.Select{In: e1, Pred: p})
		return value.TupleSeqEqual(evalOp(lhs), evalOp(rhs))
	})
}

// TestSec2CrossAssoc: e1 × (e2 × e3) = (e1 × e2) × e3.
func TestSec2CrossAssoc(t *testing.T) {
	check(t, "×-assoc", func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		e1 := randSeq(rng, []string{"A1"}, 4, 3)
		e2 := randSeq(rng, []string{"A2"}, 4, 3)
		e3 := randSeq(rng, []string{"A3"}, 4, 3)
		lhs := algebra.Cross{L: e1, R: algebra.Cross{L: e2, R: e3}}
		rhs := algebra.Cross{L: algebra.Cross{L: e1, R: e2}, R: e3}
		return value.TupleSeqEqual(evalOp(lhs), evalOp(rhs))
	})
}

// TestSec2JoinAssoc: e1 ⋈p1 (e2 ⋈p2 e3) = (e1 ⋈p1 e2) ⋈p2 e3 when p1 does
// not reference A(e3) and p2 does not reference A(e1).
func TestSec2JoinAssoc(t *testing.T) {
	check(t, "⋈-assoc", func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		e1 := randSeq(rng, []string{"A1"}, 5, 3)
		e2 := randSeq(rng, []string{"A2"}, 5, 3)
		e3 := randSeq(rng, []string{"A3"}, 5, 3)
		p1 := algebra.CmpExpr{L: algebra.Var{Name: "A1"}, R: algebra.Var{Name: "A2"}, Op: value.CmpEq}
		p2 := algebra.CmpExpr{L: algebra.Var{Name: "A2"}, R: algebra.Var{Name: "A3"}, Op: value.CmpEq}
		lhs := algebra.Join{L: e1, R: algebra.Join{L: e2, R: e3, Pred: p2}, Pred: p1}
		rhs := algebra.Join{L: algebra.Join{L: e1, R: e2, Pred: p1}, R: e3, Pred: p2}
		return value.TupleSeqEqual(evalOp(lhs), evalOp(rhs))
	})
}

// randComposite builds a random plan over three leaf inputs out of the
// operators the Simplify pass rewrites, with selections stacked on top so
// pushdown opportunities arise.
func randComposite(rng *rand.Rand) algebra.Op {
	e1 := randSeq(rng, []string{"A1", "C"}, 5, 3)
	e2 := randSeq(rng, []string{"A2", "B"}, 5, 3)
	e3 := randSeq(rng, []string{"A3"}, 4, 3)
	p1 := algebra.CmpExpr{L: algebra.Var{Name: "A1"}, R: algebra.Var{Name: "A2"}, Op: value.CmpEq}
	p2 := algebra.CmpExpr{L: algebra.Var{Name: "A2"}, R: algebra.Var{Name: "A3"}, Op: value.CmpEq}
	var base algebra.Op
	switch rng.Intn(4) {
	case 0:
		base = algebra.Join{L: e1, R: algebra.Join{L: e2, R: e3, Pred: p2}, Pred: p1}
	case 1:
		base = algebra.Cross{L: e1, R: algebra.Cross{L: e2, R: e3}}
	case 2:
		base = algebra.SemiJoin{L: algebra.Join{L: e1, R: e2, Pred: p1}, R: e3, Pred: p2}
	default:
		base = algebra.OuterJoin{L: algebra.Cross{L: e1, R: e2}, R: e3, Pred: p2,
			G: "A3", Default: algebra.SFCount{}}
	}
	// Stack one to three selections with mixed-side conjuncts.
	preds := []algebra.Expr{
		predOn("C", int64(rng.Intn(3)), randTheta(rng)),
		predOn("B", int64(rng.Intn(3)), randTheta(rng)),
		algebra.AndExpr{
			L: predOn("A1", int64(rng.Intn(3)), randTheta(rng)),
			R: predOn("A2", int64(rng.Intn(3)), randTheta(rng)),
		},
	}
	n := 1 + rng.Intn(3)
	for i := 0; i < n; i++ {
		base = algebra.Select{In: base, Pred: preds[rng.Intn(len(preds))]}
	}
	return base
}

// TestSimplifyPreservesResults: the full Simplify pass never changes the
// result of a plan, ordered comparison, across random composite plans.
func TestSimplifyPreservesResults(t *testing.T) {
	check(t, "Simplify-preserves", func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		plan := randComposite(rng)
		want := evalOp(plan)
		simplified, _ := Simplify(plan)
		return value.TupleSeqEqual(want, evalOp(simplified))
	})
}

// TestSimplifySinksSelections: after Simplify, no selection remains directly
// above a cross product or join when all its conjuncts were pushable.
func TestSimplifySinksSelections(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	e1 := randSeq(rng, []string{"A1", "C"}, 5, 3)
	e2 := randSeq(rng, []string{"A2", "B"}, 5, 3)
	join := corrPred(value.CmpEq)
	plan := algebra.Select{
		In: algebra.Select{
			In:   algebra.Join{L: e1, R: e2, Pred: join},
			Pred: predOn("B", 1, value.CmpGe),
		},
		Pred: predOn("C", 2, value.CmpLe),
	}
	out, changed := Simplify(plan)
	if !changed {
		t.Fatalf("Simplify reported no change on a pushable plan")
	}
	j, ok := out.(algebra.Join)
	if !ok {
		t.Fatalf("top of simplified plan is %T, want Join", out)
	}
	if _, ok := j.L.(algebra.Select); !ok {
		t.Errorf("left input is %T, want Select pushed onto the left side", j.L)
	}
	if _, ok := j.R.(algebra.Select); !ok {
		t.Errorf("right input is %T, want Select pushed onto the right side", j.R)
	}
	if !value.TupleSeqEqual(evalOp(plan), evalOp(out)) {
		t.Errorf("simplified plan changed results")
	}
}

// TestSimplifyLeftDeep: right-deep product/join chains become left-deep.
func TestSimplifyLeftDeep(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	e1 := randSeq(rng, []string{"A1"}, 4, 3)
	e2 := randSeq(rng, []string{"A2"}, 4, 3)
	e3 := randSeq(rng, []string{"A3"}, 4, 3)
	plan := algebra.Cross{L: e1, R: algebra.Cross{L: e2, R: e3}}
	out, changed := Simplify(plan)
	if !changed {
		t.Fatalf("Simplify reported no change on a right-deep cross")
	}
	top, ok := out.(algebra.Cross)
	if !ok {
		t.Fatalf("top is %T, want Cross", out)
	}
	if _, ok := top.L.(algebra.Cross); !ok {
		t.Errorf("left input is %T, want the nested Cross rotated left", top.L)
	}
	if !value.TupleSeqEqual(evalOp(plan), evalOp(out)) {
		t.Errorf("rotation changed results")
	}
}

// TestSimplifyStuckConjunct: a conjunct referencing both sides stays above
// the join; pushable siblings still sink.
func TestSimplifyStuckConjunct(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	e1 := randSeq(rng, []string{"A1", "C"}, 6, 3)
	e2 := randSeq(rng, []string{"A2", "B"}, 6, 3)
	both := algebra.CmpExpr{L: algebra.Var{Name: "C"}, R: algebra.Var{Name: "B"}, Op: value.CmpLe}
	plan := algebra.Select{
		In:   algebra.Cross{L: e1, R: e2},
		Pred: algebra.AndExpr{L: predOn("C", 1, value.CmpGe), R: both},
	}
	out, changed := Simplify(plan)
	if !changed {
		t.Fatalf("Simplify reported no change")
	}
	sel, ok := out.(algebra.Select)
	if !ok {
		t.Fatalf("top is %T, want the stuck Select", out)
	}
	if _, ok := sel.In.(algebra.Cross); !ok {
		t.Fatalf("below stuck Select is %T, want Cross", sel.In)
	}
	if !value.TupleSeqEqual(evalOp(plan), evalOp(out)) {
		t.Errorf("pushdown changed results")
	}
}

// TestSimplifyIdempotent: Simplify(Simplify(p)) = Simplify(p).
func TestSimplifyIdempotent(t *testing.T) {
	check(t, "Simplify-idempotent", func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		plan := randComposite(rng)
		once, _ := Simplify(plan)
		twice, changed := Simplify(once)
		return !changed && algebra.Explain(once) == algebra.Explain(twice)
	})
}

// TestSimplifyUnknownAttrsNoPush: with unknown attribute sets on one side,
// nothing is pushed across it.
func TestSimplifyUnknownAttrsNoPush(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	e1 := randSeq(rng, []string{"A1"}, 4, 3)
	e2 := opaqueOp{inner: randSeq(rng, []string{"A2"}, 4, 3)}
	plan := algebra.Select{
		In:   algebra.Cross{L: e1, R: e2},
		Pred: predOn("A1", 1, value.CmpGe),
	}
	out, _ := Simplify(plan)
	if _, ok := out.(algebra.Select); !ok {
		t.Errorf("top is %T, want Select kept above the Cross (unknown schema)", out)
	}
	if !value.TupleSeqEqual(evalOp(plan), evalOp(out)) {
		t.Errorf("simplification changed results")
	}
}

// opaqueOp hides its schema (Attrs unknown) to exercise the conservative
// path of the pass.
type opaqueOp struct{ inner algebra.Op }

func (o opaqueOp) Eval(ctx *algebra.Ctx, env value.Tuple) value.TupleSeq {
	return o.inner.Eval(ctx, env)
}
func (o opaqueOp) String() string          { return "opaque" }
func (o opaqueOp) Children() []algebra.Op  { return nil }
func (o opaqueOp) Exprs() []algebra.Expr   { return nil }
func (o opaqueOp) Attrs() ([]string, bool) { return nil, false }
