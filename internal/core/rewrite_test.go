package core

import (
	"strings"
	"testing"

	"nalquery/internal/algebra"
	"nalquery/internal/dom"
	"nalquery/internal/normalize"
	"nalquery/internal/schema"
	"nalquery/internal/translate"
	"nalquery/internal/xquery"
)

func compileQuery(t *testing.T, src string) (*Rewriter, *translate.Result) {
	t.Helper()
	ast, err := xquery.ParseQuery(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	cat := schema.UseCases()
	res, err := translate.Translate(normalize.NormalizeWithCatalog(ast, cat), cat)
	if err != nil {
		t.Fatalf("translate: %v", err)
	}
	return NewRewriter(res, cat), res
}

func altNames(alts []PlanAlt) []string {
	var out []string
	for _, a := range alts {
		out = append(out, a.Name)
	}
	return out
}

func hasAlt(alts []PlanAlt, name string) bool {
	for _, a := range alts {
		if a.Name == name {
			return true
		}
	}
	return false
}

const q1Src = `
let $d1 := doc("bib.xml")
for $a1 in distinct-values($d1//author)
return <author><name>{ $a1 }</name>
  { let $d2 := doc("bib.xml")
    for $b2 in $d2//book[$a1 = author]
    return $b2/title }</author>`

func TestAlternativesQ1(t *testing.T) {
	rw, res := compileQuery(t, q1Src)
	alts := rw.Alternatives(res.Plan)
	for _, want := range []string{"nested", "outer join", "grouping", "group Ξ"} {
		if !hasAlt(alts, want) {
			t.Errorf("missing %q in %v", want, altNames(alts))
		}
	}
	// The grouping plan must be justified by Eqv. 5 (member correlation).
	for _, a := range alts {
		if a.Name == "grouping" && !contains(a.Applied, "Eqv.5") {
			t.Errorf("grouping plan applied %v, want Eqv.5", a.Applied)
		}
		if a.Name == "outer join" && !contains(a.Applied, "Eqv.4") {
			t.Errorf("outer join plan applied %v, want Eqv.4", a.Applied)
		}
	}
}

func TestEqv5RejectedOnDBLP(t *testing.T) {
	src := strings.ReplaceAll(q1Src, "bib.xml", "dblp.xml")
	rw, res := compileQuery(t, src)
	alts := rw.Alternatives(res.Plan)
	if hasAlt(alts, "grouping") || hasAlt(alts, "group Ξ") {
		t.Fatalf("Eqv.5 must be rejected on DBLP: %v", altNames(alts))
	}
	if !hasAlt(alts, "outer join") {
		t.Fatalf("outer join must remain admissible: %v", altNames(alts))
	}
}

func TestEqv3RequiresDistinct(t *testing.T) {
	// Same shape as Q6 but iterating raw itemnos (not distinct-values):
	// Eqv. 3 must not fire; Eqv. 2 (outer join) must.
	src := `
let $d1 := document("bids.xml")
for $i1 in $d1//itemno
let $c1 := count(let $d2 := document("bids.xml")
                 for $i2 in $d2//bidtuple/itemno
                 where $i1 = $i2
                 return $i2)
where $c1 >= 3
return <p>{ $i1 }</p>`
	rw, res := compileQuery(t, src)
	alts := rw.Alternatives(res.Plan)
	for _, a := range alts {
		if contains(a.Applied, "Eqv.3") {
			t.Fatalf("Eqv.3 requires a duplicate-free e1: %v", a.Applied)
		}
	}
	if !hasAlt(alts, "outer join") {
		t.Fatalf("Eqv.2 must still apply: %v", altNames(alts))
	}
}

func TestEqv3RequiresValueCoverage(t *testing.T) {
	// Correlating reviews titles with bib titles: different documents, so
	// e1 ≠ ΠD(ΠA2(e2)) and Eqv. 3 must not fire.
	src := `
let $d1 := document("reviews.xml")
for $t1 in distinct-values($d1//entry/title)
let $c1 := count(let $d2 := document("bib.xml")
                 for $t2 in $d2//book/title
                 where $t1 = $t2
                 return $t2)
where $c1 >= 1
return <t>{ $t1 }</t>`
	rw, res := compileQuery(t, src)
	alts := rw.Alternatives(res.Plan)
	for _, a := range alts {
		if contains(a.Applied, "Eqv.3") {
			t.Fatalf("Eqv.3 must not fire across documents: %v", a.Applied)
		}
	}
}

func TestEqv1FiresForThetaCorrelation(t *testing.T) {
	// A non-equality correlation: per item, count strictly cheaper bids.
	src := `
let $d1 := document("bids.xml")
for $a1 in distinct-values($d1//bid)
let $c1 := count(let $d2 := document("bids.xml")
                 for $b2 in $d2//bidtuple/bid
                 where $b2 < $a1
                 return $b2)
return <r n="{ $a1 }">{ $c1 }</r>`
	rw, res := compileQuery(t, src)
	// Under the general strategy only Eqv. 1 applies (Eqv. 2 requires '=');
	// under the grouping strategy Eqv. 3 also applies — the paper states it
	// for arbitrary θ, and e1 here is duplicate-free and value-covering.
	general, rulesGeneral := rw.Rewrite(res.Plan, StrategyGeneral)
	if !contains(rulesGeneral, "Eqv.1") || contains(rulesGeneral, "Eqv.2") {
		t.Fatalf("general strategy must use Eqv.1 for θ-correlations: %v", rulesGeneral)
	}
	if !strings.Contains(algebra.Explain(general), "Γ[") {
		t.Fatalf("Eqv.1 plan lacks binary Γ:\n%s", algebra.Explain(general))
	}
	_, rulesGrouping := rw.Rewrite(res.Plan, StrategyGrouping)
	if !contains(rulesGrouping, "Eqv.3") {
		t.Fatalf("grouping strategy must use Eqv.3 (θ general): %v", rulesGrouping)
	}
}

func TestEqv6And8ForQ4(t *testing.T) {
	src := `
let $d1 := doc("bib.xml")
for $b1 in $d1//book,
    $a1 in $b1/author
where exists(for $b2 in $d1//book, $a2 in $b2/author
             where contains($a2, "Suciu") and $b1 = $b2
             return $b2)
return <book>{ $a1 }</book>`
	rw, res := compileQuery(t, src)
	alts := rw.Alternatives(res.Plan)
	if !hasAlt(alts, "semijoin") || !hasAlt(alts, "grouping") {
		t.Fatalf("Q4 alternatives: %v", altNames(alts))
	}
	for _, a := range alts {
		if a.Name == "grouping" && !contains(a.Applied, "self-join-grouping") {
			t.Errorf("Q4 grouping must come from the self-join rewrite: %v", a.Applied)
		}
	}
}

func TestEqv7And9ForQ5(t *testing.T) {
	src := `
let $d1 := doc("bib.xml")
for $a1 in distinct-values($d1//author)
where every $b2 in doc("bib.xml")//book[author = $a1]
      satisfies $b2/@year > 1993
return <n>{ $a1 }</n>`
	rw, res := compileQuery(t, src)
	alts := rw.Alternatives(res.Plan)
	if !hasAlt(alts, "anti-semijoin") {
		t.Fatalf("missing anti-semijoin: %v", altNames(alts))
	}
	var grouping *PlanAlt
	for i := range alts {
		if alts[i].Name == "grouping" {
			grouping = &alts[i]
		}
	}
	if grouping == nil || !contains(grouping.Applied, "Eqv.9") {
		t.Fatalf("Q5 grouping must come from Eqv.9: %v", altNames(alts))
	}
	// The Eqv.9 plan filters on count = 0.
	if !strings.Contains(algebra.Explain(grouping.Op), "= 0") {
		t.Fatalf("Eqv.9 plan:\n%s", algebra.Explain(grouping.Op))
	}
}

func TestPushdownAblationKnob(t *testing.T) {
	src := `
let $d1 := doc("bib.xml")
for $a1 in distinct-values($d1//author)
where every $b2 in doc("bib.xml")//book[author = $a1]
      satisfies $b2/@year > 1993
return <n>{ $a1 }</n>`
	rw, res := compileQuery(t, src)
	withPush, rules1 := rw.Rewrite(res.Plan, StrategyGeneral)
	rw.SetNoPushdown(true)
	withoutPush, rules2 := rw.Rewrite(res.Plan, StrategyGeneral)
	if !contains(rules1, "pushdown") || contains(rules2, "pushdown") {
		t.Fatalf("pushdown knob broken: %v vs %v", rules1, rules2)
	}
	if algebra.Explain(withPush) == algebra.Explain(withoutPush) {
		t.Fatalf("pushdown must change the plan")
	}
}

func TestRewrittenPlansEvaluateIdentically(t *testing.T) {
	// Plan-level check on a document the root tests do not use.
	docSrc := `<bids>
<bidtuple><userid>U1</userid><itemno>7</itemno><bid>10</bid><biddate>d</biddate></bidtuple>
<bidtuple><userid>U2</userid><itemno>7</itemno><bid>20</bid><biddate>d</biddate></bidtuple>
<bidtuple><userid>U3</userid><itemno>9</itemno><bid>30</bid><biddate>d</biddate></bidtuple>
</bids>`
	docs := map[string]*dom.Document{"bids.xml": dom.MustParseString(docSrc, "bids.xml")}
	src := `
let $d1 := document("bids.xml")
for $i1 in distinct-values($d1//itemno)
let $c1 := count(let $d2 := document("bids.xml")
                 for $i2 in $d2//bidtuple/itemno
                 where $i1 = $i2
                 return $i2)
return <i n="{ $i1 }">{ $c1 }</i>`
	rw, res := compileQuery(t, src)
	alts := rw.Alternatives(res.Plan)
	if len(alts) < 3 {
		t.Fatalf("expected nested + outer join + grouping, got %v", altNames(alts))
	}
	var ref string
	for _, a := range alts {
		ctx := algebra.NewCtx(docs)
		a.Op.Eval(ctx, nil)
		if ref == "" {
			ref = ctx.OutString()
			if ref != `<i n="7">2</i><i n="9">1</i>` {
				t.Fatalf("nested result wrong: %s", ref)
			}
			continue
		}
		if ctx.OutString() != ref {
			t.Errorf("plan %s output %q != %q\n%s", a.Name, ctx.OutString(), ref, algebra.Explain(a.Op))
		}
	}
}

func TestValidateRejectsAttributeLoss(t *testing.T) {
	// A Ξ referencing an attribute its input does not provide.
	bad := algebra.XiSimple{
		In:   algebra.Project{In: algebra.Singleton{}, Names: []string{"x"}},
		Cmds: []algebra.Command{algebra.ExprCmd(algebra.Var{Name: "y"})},
	}
	if Validate(bad) {
		t.Fatalf("Validate must reject command over missing attribute")
	}
	good := algebra.XiSimple{
		In:   algebra.Project{In: algebra.Singleton{}, Names: []string{"x"}},
		Cmds: []algebra.Command{algebra.ExprCmd(algebra.Var{Name: "x"})},
	}
	if !Validate(good) {
		t.Fatalf("Validate must accept in-schema commands")
	}
}

func TestStrategyStrings(t *testing.T) {
	for s, want := range map[Strategy]string{
		StrategyNested: "nested", StrategyGeneral: "general",
		StrategyGrouping: "grouping", StrategyGroupXi: "group-xi",
	} {
		if s.String() != want {
			t.Errorf("Strategy(%d).String() = %q", s, s.String())
		}
	}
}

func contains(ss []string, s string) bool {
	for _, x := range ss {
		if x == s {
			return true
		}
	}
	return false
}
