package core

import (
	"math/rand"
	"testing"

	"nalquery/internal/algebra"
	"nalquery/internal/value"
)

// Plan-level properties of the ToUnordered conversion.

// TestToUnorderedBagPreserving: converting a composite ordered plan to the
// unordered family preserves the result bag.
func TestToUnorderedBagPreserving(t *testing.T) {
	check(t, "ToUnordered-bag", func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		e1 := randSeq(rng, []string{"A1", "C"}, 8, 3)
		e2 := randSeq(rng, []string{"A2", "B"}, 8, 3)
		eq := algebra.CmpExpr{L: algebra.Var{Name: "A1"}, R: algebra.Var{Name: "A2"}, Op: value.CmpEq}
		plans := []algebra.Op{
			algebra.Join{L: e1, R: e2, Pred: eq},
			algebra.SemiJoin{L: e1, R: e2, Pred: eq},
			algebra.AntiJoin{L: e1, R: e2, Pred: eq},
			algebra.GroupBinary{L: e1, R: e2, G: "g",
				LAttrs: []string{"A1"}, RAttrs: []string{"A2"}, Theta: value.CmpEq, F: algebra.SFCount{}},
			algebra.Select{
				In: algebra.SemiJoin{
					L:    algebra.GroupUnary{In: e1, G: "g", By: []string{"A1"}, Theta: value.CmpEq, F: algebra.SFCount{}},
					R:    e2,
					Pred: eq,
				},
				Pred: algebra.CmpExpr{L: algebra.Var{Name: "g"}, R: algebra.ConstVal{V: value.Int(0)}, Op: value.CmpGt},
			},
		}
		for _, plan := range plans {
			u, changed := ToUnordered(plan)
			if !changed {
				return false
			}
			want := evalOp(plan)
			got := evalOp(u)
			if !value.TupleSeqEqualBag(want, got) {
				return false
			}
		}
		return true
	})
}

// TestToUnorderedNoEquiKeysUntouched: predicates without extractable
// equality keys keep the ordered operator.
func TestToUnorderedNoEquiKeysUntouched(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	e1 := randSeq(rng, []string{"A1"}, 6, 3)
	e2 := randSeq(rng, []string{"A2"}, 6, 3)
	lt := algebra.CmpExpr{L: algebra.Var{Name: "A1"}, R: algebra.Var{Name: "A2"}, Op: value.CmpLt}
	plan := algebra.Join{L: e1, R: e2, Pred: lt}
	u, changed := ToUnordered(plan)
	if changed {
		t.Errorf("θ-join without equality keys was converted: %T", u)
	}
	if _, ok := u.(algebra.Join); !ok {
		t.Errorf("plan type changed to %T", u)
	}
}

// TestToUnorderedValidates: converted plans still pass attribute-safety
// validation.
func TestToUnorderedValidates(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	e1 := randSeq(rng, []string{"A1"}, 6, 3)
	e2 := randSeq(rng, []string{"A2", "B"}, 6, 3)
	eq := algebra.CmpExpr{L: algebra.Var{Name: "A1"}, R: algebra.Var{Name: "A2"}, Op: value.CmpEq}
	plan := algebra.XiSimple{
		In:   algebra.Join{L: e1, R: e2, Pred: eq},
		Cmds: []algebra.Command{algebra.LitCmd("<r>"), {E: algebra.Var{Name: "B"}}, algebra.LitCmd("</r>")},
	}
	u, changed := ToUnordered(plan)
	if !changed {
		t.Fatalf("join under Ξ not converted")
	}
	if !Validate(u) {
		t.Errorf("converted plan fails validation:\n%s", algebra.Explain(u))
	}
}
