package core

import (
	"nalquery/internal/algebra"
	"nalquery/internal/value"
)

// The functions in this file construct the right-hand sides of the
// equivalences. Each returns the rewritten operator and true, or (nil,
// false) when the pattern or its conditions do not hold.

// applyEqv1 unnests χ g:f(σ A1θA2 (e2)) (e1) into the binary grouping
// e1 Γ g;A1θA2;f e2 (Eqv. 1).
func (rw *Rewriter) applyEqv1(m algebra.Map) (algebra.Op, bool) {
	site, ok := matchMapNested(m)
	if !ok {
		return nil, false
	}
	corr, residual, ok := splitCorrelation(site.pred, site.e1, site.e2)
	if !ok || corr.member {
		return nil, false
	}
	if !disjointFree(site.e2, residual, site.e1, corr.a1) {
		return nil, false
	}
	e2 := site.e2
	if residual != nil {
		e2 = algebra.Select{In: e2, Pred: residual}
	}
	return algebra.GroupBinary{
		L: site.e1, R: e2, G: site.g,
		LAttrs: []string{corr.a1}, RAttrs: []string{corr.a2},
		Theta: corr.theta, F: site.f,
	}, true
}

// applyEqv2 unnests χ g:f(σ A1=A2 (e2)) (e1) into
// Π̄ A2 (e1 ⟕ g:f() A1=A2 (Γ g;=A2;f (e2))) (Eqv. 2).
func (rw *Rewriter) applyEqv2(m algebra.Map) (algebra.Op, bool) {
	site, ok := matchMapNested(m)
	if !ok {
		return nil, false
	}
	corr, residual, ok := splitCorrelation(site.pred, site.e1, site.e2)
	if !ok || corr.member || corr.theta != value.CmpEq {
		return nil, false
	}
	if !disjointFree(site.e2, residual, site.e1, corr.a1) {
		return nil, false
	}
	e2 := site.e2
	if residual != nil {
		e2 = algebra.Select{In: e2, Pred: residual}
	}
	grouped := algebra.GroupUnary{In: e2, G: site.g, By: []string{corr.a2},
		Theta: value.CmpEq, F: site.f}
	oj := algebra.OuterJoin{
		L: site.e1, R: grouped,
		Pred:    algebra.CmpExpr{L: algebra.Var{Name: corr.a1}, R: algebra.Var{Name: corr.a2}, Op: value.CmpEq},
		G:       site.g,
		Default: site.f,
	}
	return algebra.ProjectDrop{In: oj, Names: []string{corr.a2}}, true
}

// applyEqv3 unnests χ g:f(σ A1θA2 (e2)) (e1) into ΠA1:A2(Γ g;θA2;f (e2))
// when e1 = ΠD A1:A2(ΠA2(e2)) — verified through the provenance of a1/a2 and
// the DTD catalog (Eqv. 3).
func (rw *Rewriter) applyEqv3(m algebra.Map) (algebra.Op, bool) {
	site, ok := matchMapNested(m)
	if !ok {
		return nil, false
	}
	corr, residual, ok := splitCorrelation(site.pred, site.e1, site.e2)
	if !ok || corr.member {
		return nil, false
	}
	if !disjointFree(site.e2, residual, site.e1, corr.a1) {
		return nil, false
	}
	if !rw.distinct(corr.a1) || !rw.sameValueSet(corr.a1, corr.a2) {
		return nil, false
	}
	// Residual or embedded selections could remove a2 values entirely,
	// breaking e1 = ΠD(ΠA2(e2)); reject them.
	if residual != nil || hasSelection(site.e2) {
		return nil, false
	}
	grouped := algebra.GroupUnary{In: dropAbsentKeys(site.e2, corr.a2), G: site.g,
		By: []string{corr.a2}, Theta: corr.theta, F: site.f}
	return rw.renameGroupKey(grouped, corr.a1, corr.a2), true
}

// dropAbsentKeys wraps a grouping input in a selection that removes tuples
// whose key attribute is absent (the path matched nothing). The outer side
// e1 of Eqvs. 3, 8 and 9 draws its keys from the path's node set, which
// never contains the absent value, and A1 = A2 is false for an empty A2 —
// so such tuples can never match any outer key, but without the filter they
// would surface as a phantom group of their own whenever the keying element
// is optional (the //usertuple/rating? trap).
func dropAbsentKeys(e algebra.Op, key string) algebra.Op {
	return algebra.Select{In: e,
		Pred: algebra.Call{Fn: "exists", Args: []algebra.Expr{algebra.Var{Name: key}}}}
}

// applyEqv4 unnests χ g:f(σ A1∈a2 (e2)) (e1) into
// Π̄ A2 (e1 ⟕ g:f() A1=A2 Γ g;=A2;f (µD a2 (e2))) (Eqv. 4).
func (rw *Rewriter) applyEqv4(m algebra.Map) (algebra.Op, bool) {
	site, ok := matchMapNested(m)
	if !ok {
		return nil, false
	}
	corr, residual, ok := splitCorrelation(site.pred, site.e1, site.e2)
	if !ok || !corr.member {
		return nil, false
	}
	item := rw.Prov[corr.a2].ItemAttr
	if item == "" {
		return nil, false
	}
	if !fIndependentOf(site.f, corr.a2, item) {
		return nil, false
	}
	if !disjointFree(site.e2, residual, site.e1, corr.a1) {
		return nil, false
	}
	e2 := site.e2
	if residual != nil {
		e2 = algebra.Select{In: e2, Pred: residual}
	}
	unnested := algebra.UnnestDistinct{In: e2, Attr: corr.a2}
	grouped := algebra.GroupUnary{In: unnested, G: site.g, By: []string{item},
		Theta: value.CmpEq, F: site.f}
	oj := algebra.OuterJoin{
		L: site.e1, R: grouped,
		Pred:    algebra.CmpExpr{L: algebra.Var{Name: corr.a1}, R: algebra.Var{Name: item}, Op: value.CmpEq},
		G:       site.g,
		Default: site.f,
	}
	return algebra.ProjectDrop{In: oj, Names: []string{item}}, true
}

// applyEqv5 unnests χ g:f(σ A1∈a2 (e2)) (e1) into ΠA1:A2(Γ g;=A2;f (µD a2 (e2)))
// when e1 = ΠD A1:A2(ΠA2(µ a2 (e2))) (Eqv. 5) — the condition whose omission
// the paper points out in [31].
func (rw *Rewriter) applyEqv5(m algebra.Map) (algebra.Op, bool) {
	site, ok := matchMapNested(m)
	if !ok {
		return nil, false
	}
	corr, residual, ok := splitCorrelation(site.pred, site.e1, site.e2)
	if !ok || !corr.member {
		return nil, false
	}
	item := rw.Prov[corr.a2].ItemAttr
	if item == "" {
		return nil, false
	}
	if !fIndependentOf(site.f, corr.a2, item) {
		return nil, false
	}
	if !disjointFree(site.e2, residual, site.e1, corr.a1) {
		return nil, false
	}
	if residual != nil || hasSelection(site.e2) {
		return nil, false
	}
	if !rw.distinct(corr.a1) || !rw.sameValueSet(corr.a1, corr.a2) {
		return nil, false
	}
	unnested := algebra.UnnestDistinct{In: site.e2, Attr: corr.a2}
	grouped := algebra.GroupUnary{In: unnested, G: site.g, By: []string{item},
		Theta: value.CmpEq, F: site.f}
	return rw.renameGroupKey(grouped, corr.a1, item), true
}

// renameGroupKey renames the grouping key a2 back to a1 (the ΠA1:A2 of
// Eqvs. 3, 5, 8, 9). When a1's values were atomized (bound via
// distinct-values), the node-valued key is atomized to its string value so
// that the rewritten plan produces byte-identical results.
func (rw *Rewriter) renameGroupKey(in algebra.Op, a1, a2 string) algebra.Op {
	if rw.Prov[a1].Distinct && !rw.Prov[a2].Distinct {
		withA1 := algebra.Map{In: in, Attr: a1,
			E: algebra.Call{Fn: "string", Args: []algebra.Expr{algebra.Var{Name: a2}}}}
		return algebra.ProjectDrop{In: withA1, Names: []string{a2}}
	}
	return algebra.ProjectRename{In: in, Pairs: []algebra.Rename{{New: a1, Old: a2}}}
}

// quantSite is a matched σ ∃x∈(Πx′(σ...(e2))) p (e1) or the ∀ analogue.
type quantSite struct {
	e1        algebra.Op
	e2        algebra.Op
	x, xPrime string
	rangePred algebra.Expr // the selection inside the range (correlation), may be nil
	p         algebra.Expr // the satisfies predicate
	every     bool
}

func matchQuantSelect(s algebra.Select) (quantSite, bool) {
	var site quantSite
	switch q := s.Pred.(type) {
	case algebra.ExistsQ:
		site = quantSite{e1: s.In, x: q.Var, xPrime: q.RangeAttr, p: q.Pred}
		site.e2, site.rangePred = stripRange(q.Range, q.RangeAttr)
	case algebra.ForallQ:
		site = quantSite{e1: s.In, x: q.Var, xPrime: q.RangeAttr, p: q.Pred, every: true}
		site.e2, site.rangePred = stripRange(q.Range, q.RangeAttr)
	default:
		return quantSite{}, false
	}
	if site.e2 == nil {
		return quantSite{}, false
	}
	return site, true
}

// stripRange unwraps the Πx′(σ...(e2)) shape of a quantifier range. The
// correlation selections may sit anywhere in the unary spine below the
// projection (see extractCorrSelects).
func stripRange(rng algebra.Op, xPrime string) (algebra.Op, algebra.Expr) {
	proj, ok := rng.(algebra.Project)
	if !ok || len(proj.Names) != 1 || proj.Names[0] != xPrime {
		return nil, nil
	}
	e2, preds := extractCorrSelects(proj.In, freeAttrSet(proj.In))
	return e2, joinAndExpr(preds)
}

// freeAttrSet returns the free variables of a plan as a set — the attributes
// the enclosing expression provides.
func freeAttrSet(op algebra.Op) map[string]bool {
	m := map[string]bool{}
	for _, v := range algebra.FreeVarsOf(op) {
		m[v] = true
	}
	return m
}

// applyEqv6 unnests σ ∃x∈(Πx′(σ A1=A2 (e2))) p (e1) into
// e1 ⋉ A1=A2∧p′ e2 (Eqv. 6).
func (rw *Rewriter) applyEqv6(s algebra.Select) (algebra.Op, bool) {
	site, ok := matchQuantSelect(s)
	if !ok || site.every {
		return nil, false
	}
	pred := rw.quantJoinPred(site, false)
	if pred == nil {
		return nil, false
	}
	if !quantDisjoint(site) {
		return nil, false
	}
	return algebra.SemiJoin{L: site.e1, R: site.e2, Pred: pred}, true
}

// applyEqv7 unnests σ ∀x∈(Πx′(σ A1=A2 (e2))) p (e1) into
// e1 ▷ A1=A2∧¬p′ e2 (Eqv. 7).
func (rw *Rewriter) applyEqv7(s algebra.Select) (algebra.Op, bool) {
	site, ok := matchQuantSelect(s)
	if !ok || !site.every {
		return nil, false
	}
	pred := rw.quantJoinPred(site, true)
	if pred == nil {
		return nil, false
	}
	if !quantDisjoint(site) {
		return nil, false
	}
	return algebra.AntiJoin{L: site.e1, R: site.e2, Pred: pred}, true
}

// quantJoinPred builds the join predicate of Eqvs. 6 and 7: the range's
// correlation predicate conjoined with p′ (or ¬p′), where p′ results from p
// by replacing x by x′.
func (rw *Rewriter) quantJoinPred(site quantSite, negateP bool) algebra.Expr {
	var conj []algebra.Expr
	conj = append(conj, flattenAndExpr(site.rangePred)...)
	pPrime := substVar(site.p, site.x, site.xPrime)
	if negateP {
		pPrime = negateExpr(pPrime)
	}
	conj = append(conj, flattenAndExpr(pPrime)...)
	pred := joinAndExpr(conj)
	if pred == nil {
		// An unconditional semijoin keeps e1 tuples iff e2 is non-empty; an
		// unconditional antijoin with an always-false predicate keeps all of
		// e1. Represent "true" explicitly.
		pred = algebra.ConstVal{V: value.Bool(true)}
	}
	return pred
}

// quantDisjoint checks F(e2) ∩ A(e1) = ∅ modulo the correlation attributes
// of the range predicate.
func quantDisjoint(site quantSite) bool {
	e1Attrs := attrsOf(site.e1)
	e2Attrs := attrsOf(site.e2)
	fv := fvOfOp(site.e2)
	if site.rangePred != nil {
		site.rangePred.FreeVars(fv)
	}
	for v := range fv {
		if !e1Attrs[v] {
			continue
		}
		// e1 attributes may appear only inside comparison conjuncts of the
		// correlation predicate — they become the join predicate.
		if site.rangePred == nil || !varOnlyInCorr(site.rangePred, v, e1Attrs, e2Attrs) {
			return false
		}
	}
	return true
}

func varOnlyInCorr(pred algebra.Expr, v string, e1Attrs, e2Attrs map[string]bool) bool {
	for _, c := range flattenAndExpr(pred) {
		fv := map[string]bool{}
		c.FreeVars(fv)
		if !fv[v] {
			continue
		}
		if _, ok := asCorr(c, e1Attrs, e2Attrs); !ok {
			return false
		}
	}
	// The e2 subtree itself must not reference v.
	return true
}

// negateExpr builds ¬e, folding boolean constants and double negation.
func negateExpr(e algebra.Expr) algebra.Expr {
	switch w := e.(type) {
	case algebra.CmpExpr:
		// ¬(A θ B) may NOT be folded to A θ̄ B: general comparisons are
		// existential over sequences, so both A = B and A != B are false
		// when either operand is empty (or can disagree when one side has
		// several items). Only an explicit ¬ is the exact complement.
		return algebra.NotExpr{E: w}
	case algebra.NotExpr:
		return w.E
	case algebra.Call:
		if w.Fn == "true" && len(w.Args) == 0 {
			return algebra.ConstVal{V: value.Bool(false)}
		}
		if w.Fn == "false" && len(w.Args) == 0 {
			return algebra.ConstVal{V: value.Bool(true)}
		}
		return algebra.NotExpr{E: e}
	case algebra.ConstVal:
		if b, ok := w.V.(value.Bool); ok {
			return algebra.ConstVal{V: value.Bool(!bool(b))}
		}
		return algebra.NotExpr{E: e}
	default:
		return algebra.NotExpr{E: e}
	}
}

// substVar replaces free occurrences of Var{from} by Var{to}.
func substVar(e algebra.Expr, from, to string) algebra.Expr {
	switch w := e.(type) {
	case algebra.Var:
		if w.Name == from {
			return algebra.Var{Name: to}
		}
		return w
	case algebra.CmpExpr:
		return algebra.CmpExpr{L: substVar(w.L, from, to), R: substVar(w.R, from, to), Op: w.Op}
	case algebra.InExpr:
		return algebra.InExpr{Item: substVar(w.Item, from, to), Seq: substVar(w.Seq, from, to)}
	case algebra.AndExpr:
		return algebra.AndExpr{L: substVar(w.L, from, to), R: substVar(w.R, from, to)}
	case algebra.OrExpr:
		return algebra.OrExpr{L: substVar(w.L, from, to), R: substVar(w.R, from, to)}
	case algebra.NotExpr:
		return algebra.NotExpr{E: substVar(w.E, from, to)}
	case algebra.Call:
		args := make([]algebra.Expr, len(w.Args))
		for i, a := range w.Args {
			args[i] = substVar(a, from, to)
		}
		return algebra.Call{Fn: w.Fn, Args: args}
	case algebra.PathOf:
		return algebra.PathOf{Input: substVar(w.Input, from, to), Path: w.Path}
	case algebra.BindTuples:
		return algebra.BindTuples{E: substVar(w.E, from, to), Attr: w.Attr}
	default:
		return e
	}
}

// applyEqv8 rewrites ΠD(e1) ⋉ A1=A2 (σp(e2)) into
// σ c>0 (ΠA1:A2(Γ c;=A2;count∘σp (e2))) — saving the second scan of the
// shared document (Eqv. 8). The duplicate-freeness of e1 and the value-set
// condition are verified through provenance.
func (rw *Rewriter) applyEqv8(j algebra.SemiJoin) (algebra.Op, bool) {
	return rw.applyCountRewrite(j.L, j.R, j.Pred, false)
}

// applyEqv9 rewrites ΠD(e1) ▷ A1=A2 (σp(e2)) into
// σ c=0 (ΠA1:A2(Γ c;=A2;count∘σp (e2))) (Eqv. 9).
func (rw *Rewriter) applyEqv9(j algebra.AntiJoin) (algebra.Op, bool) {
	return rw.applyCountRewrite(j.L, j.R, j.Pred, true)
}

func (rw *Rewriter) applyCountRewrite(e1, e2 algebra.Op, pred algebra.Expr, anti bool) (algebra.Op, bool) {
	corr, residual, ok := splitCorrelation(pred, e1, e2)
	if !ok || corr.member || corr.theta != value.CmpEq {
		return nil, false
	}
	// ΠD(e1): e1 must be value-level duplicate-free on A1 and cover exactly
	// the A2 value set. Beyond A1, e1 may only carry document handles
	// (anything else would be lost by the rewrite).
	if !rw.distinct(corr.a1) || !rw.sameValueSet(corr.a1, corr.a2) {
		return nil, false
	}
	if hasSelection(e2) {
		return nil, false
	}
	if attrs, known := e1.Attrs(); known {
		for _, a := range attrs {
			if a != corr.a1 && !rw.Prov[a].IsDoc {
				return nil, false
			}
		}
	} else {
		return nil, false
	}
	var f algebra.SeqFunc = algebra.SFCount{}
	if residual != nil {
		f = algebra.SFFiltered{Pred: residual, Inner: algebra.SFCount{}}
	}
	cAttr := corr.a1 + "#count"
	grouped := algebra.GroupUnary{In: dropAbsentKeys(e2, corr.a2), G: cAttr,
		By: []string{corr.a2}, Theta: value.CmpEq, F: f}
	renamed := rw.renameGroupKey(grouped, corr.a1, corr.a2)
	op := value.CmpGt
	if anti {
		op = value.CmpEq
	}
	return algebra.Select{In: renamed,
		Pred: algebra.CmpExpr{L: algebra.Var{Name: cAttr}, R: algebra.ConstVal{V: value.Int(0)}, Op: op}}, true
}

// pushResidual pushes predicate conjuncts that reference only the inner
// operand into a selection on that operand (the Sec. 5.5 rewrite
// e1 ▷ a1=a3 ∧ y3≤1993 e3 ⇒ e1 ▷ a1=a3 σ y3≤1993 (e3)).
func pushResidual(l, r algebra.Op, pred algebra.Expr) (algebra.Expr, algebra.Op, bool) {
	rAttrs := attrsOf(r)
	if len(rAttrs) == 0 {
		return pred, r, false
	}
	var kept, pushed []algebra.Expr
	for _, c := range flattenAndExpr(pred) {
		fv := map[string]bool{}
		c.FreeVars(fv)
		all := true
		for v := range fv {
			if !rAttrs[v] {
				all = false
				break
			}
		}
		if all && len(fv) > 0 {
			pushed = append(pushed, c)
		} else {
			kept = append(kept, c)
		}
	}
	if len(pushed) == 0 {
		return pred, r, false
	}
	return joinAndExpr(kept), algebra.Select{In: r, Pred: joinAndExpr(pushed)}, true
}
