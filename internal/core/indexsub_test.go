package core

import (
	"testing"

	"nalquery/internal/algebra"
	"nalquery/internal/value"
	"nalquery/internal/xpath"
)

// fakeCatalog resolves every structural request and, when vals is set, every
// value request — with canned cardinalities. Substitution must be driven
// entirely by plan shape; the catalog only answers what the planner asks.
type fakeCatalog struct {
	vals bool
}

func (c *fakeCatalog) ScanIndex(uri string, p xpath.Path) (ScanInfo, bool) {
	return ScanInfo{Path: "/bib/book", Card: 30}, true
}

func (c *fakeCatalog) ValueIndex(uri string, base, rel xpath.Path) (ValueInfo, bool) {
	if !c.vals {
		return ValueInfo{}, false
	}
	return ValueInfo{Path: "/bib/book/@year", Depth: 1, Card: 2, ScanCard: 30}, true
}

// scanOf builds the document-rooted Υ the substitution recognizes:
// Υ[b://book](χ[d:doc("bib.xml")](□)).
func scanOf() algebra.UnnestMap {
	return algebra.UnnestMap{
		In:   algebra.Map{In: algebra.Singleton{}, Attr: "d", E: algebra.Doc{URI: "bib.xml"}},
		Attr: "b",
		E:    algebra.PathOf{Input: algebra.Var{Name: "d"}, Path: xpath.MustParse("//book")},
	}
}

func yearCmp(op value.CmpOp) algebra.Expr {
	return algebra.CmpExpr{
		L:  algebra.PathOf{Input: algebra.Var{Name: "b"}, Path: xpath.MustParse("@year")},
		R:  algebra.ConstVal{V: value.Int(1999)},
		Op: op,
	}
}

// TestSubstituteStructural: a bare document-rooted Υ becomes the structural
// IndexScan (Key == nil), keeping its input chain.
func TestSubstituteStructural(t *testing.T) {
	out, changed := SubstituteIndexes(scanOf(), &fakeCatalog{})
	if !changed {
		t.Fatalf("no substitution")
	}
	scan, ok := out.(algebra.IndexScan)
	if !ok {
		t.Fatalf("got %T, want IndexScan", out)
	}
	if scan.Key != nil || scan.Attr != "b" || scan.EstCard != 30 {
		t.Fatalf("structural scan malformed: %+v", scan)
	}
	if _, ok := scan.In.(algebra.Map); !ok {
		t.Fatalf("input chain lost: %T", scan.In)
	}
}

// TestSubstituteValueForm: σ[b/@year = 1999](Υ) becomes the value-probe
// IndexScan — the matched conjunct is consumed, the σ disappears. This is
// the top-down case: a bottom-up pass would turn the Υ into a structural
// scan first and the probe would never fire.
func TestSubstituteValueForm(t *testing.T) {
	pred := algebra.Select{In: scanOf(), Pred: yearCmp(value.CmpEq)}
	out, changed := SubstituteIndexes(pred, &fakeCatalog{vals: true})
	if !changed {
		t.Fatalf("no substitution")
	}
	scan, ok := out.(algebra.IndexScan)
	if !ok {
		t.Fatalf("got %T, want the probe to consume the σ", out)
	}
	if scan.Key == nil || scan.Cmp != value.CmpEq || scan.Depth != 1 || scan.EstCard != 2 {
		t.Fatalf("value scan malformed: %+v", scan)
	}
}

// TestSubstituteValueFormKeepsRest: only the probed conjunct is consumed;
// the remaining conjuncts keep their σ above the scan.
func TestSubstituteValueFormKeepsRest(t *testing.T) {
	rest := algebra.CmpExpr{
		L:  algebra.PathOf{Input: algebra.Var{Name: "b"}, Path: xpath.MustParse("title")},
		R:  algebra.ConstVal{V: value.Str("x")},
		Op: value.CmpNe,
	}
	sel := algebra.Select{In: scanOf(),
		Pred: algebra.AndExpr{L: yearCmp(value.CmpEq), R: rest}}
	out, _ := SubstituteIndexes(sel, &fakeCatalog{vals: true})
	top, ok := out.(algebra.Select)
	if !ok {
		t.Fatalf("got %T, want σ(rest) above the scan", out)
	}
	if _, ok := top.In.(algebra.IndexScan); !ok {
		t.Fatalf("σ input is %T, want IndexScan", top.In)
	}
	if _, ok := top.Pred.(algebra.CmpExpr); !ok {
		t.Fatalf("remaining predicate is %T, want the single leftover conjunct", top.Pred)
	}
}

// TestSubstituteValueBeatsStructural pins the ordering regression: when the
// catalog answers both forms, σ(Υ) must become the value probe — not a σ
// over a structural scan.
func TestSubstituteValueBeatsStructural(t *testing.T) {
	sel := algebra.Select{In: scanOf(), Pred: yearCmp(value.CmpEq)}
	out, _ := SubstituteIndexes(sel, &fakeCatalog{vals: true})
	if s, ok := out.(algebra.Select); ok {
		t.Fatalf("value probe lost to the structural child substitution: σ over %T", s.In)
	}
}

// TestSubstituteNeFallsBack: ≠ is never probed (∃-≠ is not the complement
// of ∃-=); the σ stays, with the Υ below it substituted structurally.
func TestSubstituteNeFallsBack(t *testing.T) {
	sel := algebra.Select{In: scanOf(), Pred: yearCmp(value.CmpNe)}
	out, changed := SubstituteIndexes(sel, &fakeCatalog{vals: true})
	top, ok := out.(algebra.Select)
	if !ok || !changed {
		t.Fatalf("got %T (changed=%v), want σ over a structural scan", out, changed)
	}
	scan, ok := top.In.(algebra.IndexScan)
	if !ok || scan.Key != nil {
		t.Fatalf("σ input: %+v", top.In)
	}
}

// TestSubstituteParamKey: an external parameter is a valid probe key — the
// plan is chosen once and holds for every binding.
func TestSubstituteParamKey(t *testing.T) {
	sel := algebra.Select{In: scanOf(), Pred: algebra.CmpExpr{
		L:  algebra.PathOf{Input: algebra.Var{Name: "b"}, Path: xpath.MustParse("@year")},
		R:  algebra.Param{Name: "y"},
		Op: value.CmpEq,
	}}
	out, _ := SubstituteIndexes(sel, &fakeCatalog{vals: true})
	scan, ok := out.(algebra.IndexScan)
	if !ok || scan.Key == nil {
		t.Fatalf("parameter probe not substituted: %T", out)
	}
}

// TestSubstituteFlippedComparison: key-on-the-left comparisons flip the
// operator (1999 < b/@year ⇒ probe with >).
func TestSubstituteFlippedComparison(t *testing.T) {
	sel := algebra.Select{In: scanOf(), Pred: algebra.CmpExpr{
		L:  algebra.ConstVal{V: value.Int(1999)},
		R:  algebra.PathOf{Input: algebra.Var{Name: "b"}, Path: xpath.MustParse("@year")},
		Op: value.CmpLt,
	}}
	out, _ := SubstituteIndexes(sel, &fakeCatalog{vals: true})
	scan, ok := out.(algebra.IndexScan)
	if !ok {
		t.Fatalf("flipped comparison not substituted: %T", out)
	}
	if scan.Cmp != value.CmpGt {
		t.Fatalf("cmp = %v, want flipped >", scan.Cmp)
	}
	// Ordered probes estimate a third of the scan.
	if scan.EstCard != 10 {
		t.Fatalf("est card = %v, want ScanCard/3", scan.EstCard)
	}
}

// TestSubstituteShadowedBinder: when the doc variable is rebound by a
// non-constant binder between the Υ and its χ[doc], nothing substitutes.
func TestSubstituteShadowedBinder(t *testing.T) {
	um := scanOf()
	// Shadow d with an unnest binding between the scan and the doc χ.
	um.In = algebra.UnnestMap{In: um.In, Attr: "d",
		E: algebra.ConstVal{V: value.Seq{value.Int(1)}}}
	out, changed := SubstituteIndexes(um, &fakeCatalog{vals: true})
	if changed {
		t.Fatalf("substituted through a shadowed binder: %v", out)
	}
}

// TestSubstitutePositionalScan: Υ with a position attribute cannot become an
// index scan (the index carries no positions).
func TestSubstitutePositionalScan(t *testing.T) {
	um := scanOf()
	um.PosAttr = "p"
	_, changed := SubstituteIndexes(um, &fakeCatalog{vals: true})
	if changed {
		t.Fatalf("positional Υ must not substitute")
	}
}

// TestSubstituteNilCatalog: no catalog, no change — and the plan is returned
// as-is.
func TestSubstituteNilCatalog(t *testing.T) {
	sel := algebra.Select{In: scanOf(), Pred: yearCmp(value.CmpEq)}
	out, changed := SubstituteIndexes(sel, nil)
	if changed {
		t.Fatalf("nil catalog substituted")
	}
	if _, ok := out.(algebra.Select); !ok {
		t.Fatalf("plan shape changed: %T", out)
	}
}
