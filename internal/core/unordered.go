package core

import (
	"nalquery/internal/algebra"
)

// ToUnordered converts a plan to the unordered operator family (Sec. 1: when
// the query is wrapped in XQuery's unordered() function, the result's order
// is irrelevant and the object-oriented unnesting setting of [9, 10]
// applies). Order-preserving joins and groupings whose predicates decompose
// into equality keys are replaced by their unordered counterparts, which
// emit output in key order — the natural order of a partitioned hash
// implementation. The reported flag is true when at least one operator was
// replaced.
//
// The conversion is applied only below the result-construction operator: Ξ
// consumes whatever order the unordered plan produces, which unordered()
// explicitly permits.
func ToUnordered(op algebra.Op) (algebra.Op, bool) {
	changedAny := false
	var conv func(algebra.Op) (algebra.Op, bool)
	conv = func(o algebra.Op) (algebra.Op, bool) {
		o, childChanged := rebuildChildren(o, conv)
		out, changed := swapUnordered(o)
		if changed {
			changedAny = true
		}
		return out, childChanged || changed
	}
	out, _ := conv(op)
	return out, changedAny
}

// swapUnordered replaces one order-preserving operator with its unordered
// counterpart when the operands' schemas admit key extraction.
func swapUnordered(op algebra.Op) (algebra.Op, bool) {
	switch w := op.(type) {
	case algebra.Join:
		lKeys, rKeys, residual, ok := algebra.SplitEquiJoin(w.Pred, w.L, w.R)
		if !ok {
			return op, false
		}
		return algebra.UnorderedJoin{L: w.L, R: w.R, LAttrs: lKeys, RAttrs: rKeys,
			Residual: residual}, true
	case algebra.SemiJoin:
		lKeys, rKeys, residual, ok := algebra.SplitEquiJoin(w.Pred, w.L, w.R)
		if !ok {
			return op, false
		}
		return algebra.UnorderedSemiJoin{L: w.L, R: w.R, LAttrs: lKeys, RAttrs: rKeys,
			Residual: residual}, true
	case algebra.AntiJoin:
		lKeys, rKeys, residual, ok := algebra.SplitEquiJoin(w.Pred, w.L, w.R)
		if !ok {
			return op, false
		}
		return algebra.UnorderedAntiJoin{L: w.L, R: w.R, LAttrs: lKeys, RAttrs: rKeys,
			Residual: residual}, true
	case algebra.OuterJoin:
		lKeys, rKeys, residual, ok := algebra.SplitEquiJoin(w.Pred, w.L, w.R)
		if !ok || residual != nil {
			// The unordered outer join carries no residual predicate; the
			// defaulting semantics of ⟕ with a residual is left to the
			// ordered operator.
			return op, false
		}
		return algebra.UnorderedOuterJoin{L: w.L, R: w.R, LAttrs: lKeys, RAttrs: rKeys,
			G: w.G, Default: w.Default}, true
	case algebra.GroupUnary:
		return algebra.UnorderedGroupUnary{In: w.In, G: w.G, By: w.By,
			Theta: w.Theta, F: w.F}, true
	case algebra.GroupBinary:
		if w.ForceScan {
			return op, false
		}
		return algebra.UnorderedGroupBinary{L: w.L, R: w.R, G: w.G,
			LAttrs: w.LAttrs, RAttrs: w.RAttrs, Theta: w.Theta, F: w.F}, true
	}
	return op, false
}
