package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"nalquery/internal/algebra"
	"nalquery/internal/value"
)

// Property-based tests: for every equivalence of Fig. 4 (plus Eqvs. 8/9),
// both sides are constructed literally from the paper's formulas over
// randomly generated ordered inputs and must evaluate to identical ordered
// results whenever the side conditions hold. This machine-checks the
// Appendix A proofs.

// constOp is a leaf operator over a constant tuple sequence.
type constOp struct {
	ts    value.TupleSeq
	attrs []string
}

func (c constOp) Eval(*algebra.Ctx, value.Tuple) value.TupleSeq { return c.ts }
func (c constOp) String() string                                { return "const" }
func (c constOp) Children() []algebra.Op                        { return nil }
func (c constOp) Exprs() []algebra.Expr                         { return nil }
func (c constOp) Attrs() ([]string, bool)                       { return c.attrs, true }

func randSeq(rng *rand.Rand, attrs []string, maxLen, keyRange int) constOp {
	n := rng.Intn(maxLen + 1)
	ts := make(value.TupleSeq, n)
	for i := range ts {
		t := value.Tuple{}
		for _, a := range attrs {
			t[a] = value.Int(int64(rng.Intn(keyRange)))
		}
		ts[i] = t
	}
	return constOp{ts: ts, attrs: attrs}
}

func evalOp(op algebra.Op) value.TupleSeq {
	return op.Eval(algebra.NewCtx(nil), nil)
}

var thetas = []value.CmpOp{value.CmpEq, value.CmpNe, value.CmpLt, value.CmpLe, value.CmpGt, value.CmpGe}

func randTheta(rng *rand.Rand) value.CmpOp { return thetas[rng.Intn(len(thetas))] }

func randF(rng *rand.Rand) algebra.SeqFunc {
	switch rng.Intn(3) {
	case 0:
		return algebra.SFCount{}
	case 1:
		return algebra.SFIdent{}
	default:
		return algebra.SFAgg{Fn: "sum", Attr: "B"}
	}
}

func corrPred(theta value.CmpOp) algebra.Expr {
	return algebra.CmpExpr{L: algebra.Var{Name: "A1"}, R: algebra.Var{Name: "A2"}, Op: theta}
}

func check(t *testing.T, name string, prop func(seed int64) bool) {
	t.Helper()
	cfg := &quick.Config{MaxCount: 300}
	if testing.Short() {
		cfg.MaxCount = 50
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Errorf("%s violated: %v", name, err)
	}
}

// TestEqv1Property: χ g:f(σ A1θA2 (e2)) (e1) = e1 Γ g;A1θA2;f e2.
func TestEqv1Property(t *testing.T) {
	check(t, "Eqv.1", func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		e1 := randSeq(rng, []string{"A1"}, 6, 4)
		e2 := randSeq(rng, []string{"A2", "B"}, 6, 4)
		theta := randTheta(rng)
		f := randF(rng)
		lhs := algebra.Map{In: e1, Attr: "g",
			E: algebra.NestedApply{F: f, Plan: algebra.Select{In: e2, Pred: corrPred(theta)}}}
		rhs := algebra.GroupBinary{L: e1, R: e2, G: "g",
			LAttrs: []string{"A1"}, RAttrs: []string{"A2"}, Theta: theta, F: f}
		return value.TupleSeqEqual(evalOp(lhs), evalOp(rhs))
	})
}

// TestEqv2Property: χ g:f(σ A1=A2 (e2)) (e1) =
// Π̄ A2 (e1 ⟕ g:f() A1=A2 (Γ g;=A2;f (e2))).
func TestEqv2Property(t *testing.T) {
	check(t, "Eqv.2", func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		e1 := randSeq(rng, []string{"A1"}, 6, 4)
		e2 := randSeq(rng, []string{"A2", "B"}, 6, 4)
		f := randF(rng)
		lhs := algebra.Map{In: e1, Attr: "g",
			E: algebra.NestedApply{F: f, Plan: algebra.Select{In: e2, Pred: corrPred(value.CmpEq)}}}
		grouped := algebra.GroupUnary{In: e2, G: "g", By: []string{"A2"}, Theta: value.CmpEq, F: f}
		rhs := algebra.ProjectDrop{
			In:    algebra.OuterJoin{L: e1, R: grouped, Pred: corrPred(value.CmpEq), G: "g", Default: f},
			Names: []string{"A2"},
		}
		return value.TupleSeqEqual(evalOp(lhs), evalOp(rhs))
	})
}

// TestEqv3Property: with e1 = ΠD A1:A2(ΠA2(e2)),
// χ g:f(σ A1θA2 (e2)) (e1) = ΠA1:A2(Γ g;θA2;f (e2)).
func TestEqv3Property(t *testing.T) {
	check(t, "Eqv.3", func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		e2 := randSeq(rng, []string{"A2", "B"}, 6, 4)
		e1 := algebra.ProjectDistinct{In: e2, Pairs: []algebra.Rename{{New: "A1", Old: "A2"}}}
		theta := randTheta(rng)
		f := randF(rng)
		lhs := algebra.Map{In: e1, Attr: "g",
			E: algebra.NestedApply{F: f, Plan: algebra.Select{In: e2, Pred: corrPred(theta)}}}
		rhs := algebra.ProjectRename{
			In:    algebra.GroupUnary{In: e2, G: "g", By: []string{"A2"}, Theta: theta, F: f},
			Pairs: []algebra.Rename{{New: "A1", Old: "A2"}},
		}
		return value.TupleSeqEqual(evalOp(lhs), evalOp(rhs))
	})
}

// nestE2 builds e2 with a sequence-valued attribute a2 (tuples [a2′: v]) and
// a payload attribute B, the input shape of Eqvs. 4 and 5.
func nestE2(rng *rand.Rand, maxLen, keyRange int) constOp {
	n := rng.Intn(maxLen + 1)
	ts := make(value.TupleSeq, n)
	for i := range ts {
		k := rng.Intn(3)
		seq := make(value.TupleSeq, k)
		for j := range seq {
			seq[j] = value.Tuple{"a2'": value.Int(int64(rng.Intn(keyRange)))}
		}
		ts[i] = value.Tuple{"a2": seq, "B": value.Int(int64(rng.Intn(10)))}
	}
	return constOp{ts: ts, attrs: []string{"B", "a2"}}
}

// fForMember picks f independent of a2/a2′ (the Eqv. 4/5 requirement).
func fForMember(rng *rand.Rand) algebra.SeqFunc {
	if rng.Intn(2) == 0 {
		return algebra.SFCount{}
	}
	return algebra.SFAgg{Fn: "sum", Attr: "B"}
}

// TestEqv4Property: χ g:f(σ A1∈a2 (e2)) (e1) =
// Π̄ A2 (e1 ⟕ g:f() A1=A2 Γ g;=A2;f (µD a2 (e2))).
func TestEqv4Property(t *testing.T) {
	check(t, "Eqv.4", func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		e1 := randSeq(rng, []string{"A1"}, 6, 4)
		e2 := nestE2(rng, 6, 4)
		f := fForMember(rng)
		lhs := algebra.Map{In: e1, Attr: "g",
			E: algebra.NestedApply{F: f, Plan: algebra.Select{In: e2,
				Pred: algebra.InExpr{Item: algebra.Var{Name: "A1"}, Seq: algebra.Var{Name: "a2"}}}}}
		grouped := algebra.GroupUnary{In: algebra.UnnestDistinct{In: e2, Attr: "a2"},
			G: "g", By: []string{"a2'"}, Theta: value.CmpEq, F: f}
		rhs := algebra.ProjectDrop{
			In: algebra.OuterJoin{L: e1, R: grouped,
				Pred:    algebra.CmpExpr{L: algebra.Var{Name: "A1"}, R: algebra.Var{Name: "a2'"}, Op: value.CmpEq},
				G:       "g",
				Default: f},
			Names: []string{"a2'"},
		}
		return value.TupleSeqEqual(evalOp(lhs), evalOp(rhs))
	})
}

// TestEqv5Property: with e1 = ΠD A1:A2(ΠA2(µ a2 (e2))),
// χ g:f(σ A1∈a2 (e2)) (e1) = ΠA1:A2(Γ g;=A2;f (µD a2 (e2))).
func TestEqv5Property(t *testing.T) {
	check(t, "Eqv.5", func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		e2 := nestE2(rng, 6, 4)
		// Drop tuples with empty a2 (µ would ⊥-pad them; the condition's µ
		// in the paper ranges over the actually occurring values).
		var nonEmpty value.TupleSeq
		for _, tp := range e2.ts {
			if len(tp["a2"].(value.TupleSeq)) > 0 {
				nonEmpty = append(nonEmpty, tp)
			}
		}
		e2 = constOp{ts: nonEmpty, attrs: e2.attrs}
		e1 := algebra.ProjectDistinct{
			In:    algebra.Unnest{In: e2, Attr: "a2", InnerAttrs: []string{"a2'"}},
			Pairs: []algebra.Rename{{New: "A1", Old: "a2'"}},
		}
		f := fForMember(rng)
		lhs := algebra.Map{In: e1, Attr: "g",
			E: algebra.NestedApply{F: f, Plan: algebra.Select{In: e2,
				Pred: algebra.InExpr{Item: algebra.Var{Name: "A1"}, Seq: algebra.Var{Name: "a2"}}}}}
		rhs := algebra.ProjectRename{
			In: algebra.GroupUnary{In: algebra.UnnestDistinct{In: e2, Attr: "a2"},
				G: "g", By: []string{"a2'"}, Theta: value.CmpEq, F: f},
			Pairs: []algebra.Rename{{New: "A1", Old: "a2'"}},
		}
		return value.TupleSeqEqual(evalOp(lhs), evalOp(rhs))
	})
}

// TestEqv6Property: σ ∃x∈(Πx′(σ A1=A2 (e2))) p (e1) = e1 ⋉ A1=A2∧p′ e2.
func TestEqv6Property(t *testing.T) {
	check(t, "Eqv.6", func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		e1 := randSeq(rng, []string{"A1"}, 6, 4)
		e2 := randSeq(rng, []string{"A2", "B"}, 6, 4)
		c := value.Int(int64(rng.Intn(4)))
		// p: x < c (over the quantifier variable).
		p := algebra.CmpExpr{L: algebra.Var{Name: "x"}, R: algebra.ConstVal{V: c}, Op: value.CmpLt}
		rangeOp := algebra.Project{
			In:    algebra.Select{In: e2, Pred: corrPred(value.CmpEq)},
			Names: []string{"A2"},
		}
		lhs := algebra.Select{In: e1,
			Pred: algebra.ExistsQ{Var: "x", RangeAttr: "A2", Range: rangeOp, Pred: p}}
		pPrime := algebra.CmpExpr{L: algebra.Var{Name: "A2"}, R: algebra.ConstVal{V: c}, Op: value.CmpLt}
		rhs := algebra.SemiJoin{L: e1, R: e2,
			Pred: algebra.AndExpr{L: corrPred(value.CmpEq), R: pPrime}}
		return value.TupleSeqEqual(evalOp(lhs), evalOp(rhs))
	})
}

// TestEqv7Property: σ ∀x∈(Πx′(σ A1=A2 (e2))) p (e1) = e1 ▷ A1=A2∧¬p′ e2.
func TestEqv7Property(t *testing.T) {
	check(t, "Eqv.7", func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		e1 := randSeq(rng, []string{"A1"}, 6, 4)
		e2 := randSeq(rng, []string{"A2", "B"}, 6, 4)
		c := value.Int(int64(rng.Intn(4)))
		p := algebra.CmpExpr{L: algebra.Var{Name: "x"}, R: algebra.ConstVal{V: c}, Op: value.CmpLt}
		rangeOp := algebra.Project{
			In:    algebra.Select{In: e2, Pred: corrPred(value.CmpEq)},
			Names: []string{"A2"},
		}
		lhs := algebra.Select{In: e1,
			Pred: algebra.ForallQ{Var: "x", RangeAttr: "A2", Range: rangeOp, Pred: p}}
		notPPrime := algebra.CmpExpr{L: algebra.Var{Name: "A2"}, R: algebra.ConstVal{V: c}, Op: value.CmpGe}
		rhs := algebra.AntiJoin{L: e1, R: e2,
			Pred: algebra.AndExpr{L: corrPred(value.CmpEq), R: notPPrime}}
		return value.TupleSeqEqual(evalOp(lhs), evalOp(rhs))
	})
}

// TestEqv8Property: ΠD(e1) ⋉ A1=A2 (σp(e2)) = σ c>0 (ΠA1:A2(Γ c;=A2;count∘σp (e2)))
// with ΠD(e1) = ΠD A1:A2(ΠA2(e2)).
func TestEqv8Property(t *testing.T) {
	check(t, "Eqv.8", func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		e2 := randSeq(rng, []string{"A2", "B"}, 8, 4)
		e1 := algebra.ProjectDistinct{In: e2, Pairs: []algebra.Rename{{New: "A1", Old: "A2"}}}
		c := value.Int(int64(rng.Intn(10)))
		p := algebra.CmpExpr{L: algebra.Var{Name: "B"}, R: algebra.ConstVal{V: c}, Op: value.CmpLt}
		lhs := algebra.SemiJoin{L: e1, R: algebra.Select{In: e2, Pred: p}, Pred: corrPred(value.CmpEq)}
		rhs := algebra.Select{
			In: algebra.ProjectRename{
				In: algebra.GroupUnary{In: e2, G: "c", By: []string{"A2"}, Theta: value.CmpEq,
					F: algebra.SFFiltered{Pred: p, Inner: algebra.SFCount{}}},
				Pairs: []algebra.Rename{{New: "A1", Old: "A2"}},
			},
			Pred: algebra.CmpExpr{L: algebra.Var{Name: "c"}, R: algebra.ConstVal{V: value.Int(0)}, Op: value.CmpGt},
		}
		lhsOut := evalOp(lhs)
		rhsOut := evalOp(rhs)
		// The RHS carries the extra count attribute c; compare on A1.
		return value.TupleSeqEqual(project(lhsOut, "A1"), project(rhsOut, "A1"))
	})
}

// TestEqv9Property: ΠD(e1) ▷ A1=A2 (σp(e2)) = σ c=0 (ΠA1:A2(Γ c;=A2;count∘σp (e2))).
func TestEqv9Property(t *testing.T) {
	check(t, "Eqv.9", func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		e2 := randSeq(rng, []string{"A2", "B"}, 8, 4)
		e1 := algebra.ProjectDistinct{In: e2, Pairs: []algebra.Rename{{New: "A1", Old: "A2"}}}
		c := value.Int(int64(rng.Intn(10)))
		p := algebra.CmpExpr{L: algebra.Var{Name: "B"}, R: algebra.ConstVal{V: c}, Op: value.CmpLt}
		lhs := algebra.AntiJoin{L: e1, R: algebra.Select{In: e2, Pred: p}, Pred: corrPred(value.CmpEq)}
		rhs := algebra.Select{
			In: algebra.ProjectRename{
				In: algebra.GroupUnary{In: e2, G: "c", By: []string{"A2"}, Theta: value.CmpEq,
					F: algebra.SFFiltered{Pred: p, Inner: algebra.SFCount{}}},
				Pairs: []algebra.Rename{{New: "A1", Old: "A2"}},
			},
			Pred: algebra.CmpExpr{L: algebra.Var{Name: "c"}, R: algebra.ConstVal{V: value.Int(0)}, Op: value.CmpEq},
		}
		return value.TupleSeqEqual(project(evalOp(lhs), "A1"), project(evalOp(rhs), "A1"))
	})
}

func project(ts value.TupleSeq, attrs ...string) value.TupleSeq {
	out := make(value.TupleSeq, len(ts))
	for i, t := range ts {
		out[i] = t.Project(attrs)
	}
	return out
}

// TestHashJoinMatchesNestedLoop: the order-preserving hash paths of the
// join family agree with the definitional nested-loop evaluation.
func TestHashJoinMatchesNestedLoop(t *testing.T) {
	check(t, "hash=nested-loop", func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		e1 := randSeq(rng, []string{"A1", "C"}, 8, 3)
		e2 := randSeq(rng, []string{"A2", "B"}, 8, 3)
		// Equality pair plus residual: hash path with residual filter.
		pred := algebra.AndExpr{
			L: corrPred(value.CmpEq),
			R: algebra.CmpExpr{L: algebra.Var{Name: "C"}, R: algebra.Var{Name: "B"}, Op: value.CmpLe},
		}
		// Nested-loop reference: σpred(e1 × e2).
		ref := evalOp(algebra.Select{In: algebra.Cross{L: e1, R: e2}, Pred: pred})
		join := evalOp(algebra.Join{L: e1, R: e2, Pred: pred})
		return value.TupleSeqEqual(ref, join)
	})
}
