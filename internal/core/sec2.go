package core

import (
	"nalquery/internal/algebra"
)

// This file implements the "familiar equivalences" the paper restates for
// the ordered context at the end of Sec. 2 as a plan-simplification pass:
//
//	σp1(σp2(e))        = σp2(σp1(e))                 (commutation)
//	σp(e1 × e2)        = σp(e1) × e2                  if F(p) ∩ A(e2) = ∅
//	σp(e1 × e2)        = e1 × σp(e2)                  if F(p) ∩ A(e1) = ∅
//	σp1(e1 ⋈p2 e2)     = σp1(e1) ⋈p2 e2              if F(p1) ∩ A(e2) = ∅
//	σp1(e1 ⋈p2 e2)     = e1 ⋈p2 σp1(e2)              if F(p1) ∩ A(e1) = ∅
//	σp1(e1 ⋉p2 e2)     = σp1(e1) ⋉p2 e2              if F(p1) ∩ A(e2) = ∅
//	σp1(e1 ⟕g:e p2 e2) = σp1(e1) ⟕g:e p2 e2          if F(p1) ∩ A(e2) = ∅
//	e1 × (e2 × e3)     = (e1 × e2) × e3               (associativity)
//	e1 ⋈p1 (e2 ⋈p2 e3) = (e1 ⋈p1 e2) ⋈p2 e3          (usual restrictions)
//
// The pass applies them left to right: selections sink towards the leaves
// (conjunct by conjunct — sound by the commutation rule) and product/join
// trees are canonicalized to left-deep form, the shape the hash-based join
// family evaluates with the least intermediate state. The anti-join ▷ admits
// the same left push as ⋉ (its output is also a subsequence of e1); the pass
// uses it and the property tests check it alongside the listed rules.
//
// In the ordered context neither × nor ⋈ is commutative, so no rule here
// swaps operands.

// Simplify applies the Sec. 2 equivalences until fixpoint. It returns the
// simplified plan and whether anything changed.
func Simplify(op algebra.Op) (algebra.Op, bool) {
	changedAny := false
	for i := 0; i < maxSimplifyRounds; i++ {
		out, changed := simplifyOnce(op)
		if !changed {
			return out, changedAny
		}
		changedAny = true
		op = out
	}
	return op, changedAny
}

// maxSimplifyRounds bounds the fixpoint iteration. Every round either sinks
// a selection conjunct or rotates one product/join; plans are finite, so the
// bound is a safety net, not a tuning knob.
const maxSimplifyRounds = 64

func simplifyOnce(op algebra.Op) (algebra.Op, bool) {
	op, changed := rebuildChildren(op, func(c algebra.Op) (algebra.Op, bool) {
		return simplifyOnce(c)
	})
	switch w := op.(type) {
	case algebra.Select:
		if out, ok := pushSelect(w); ok {
			return out, true
		}
	case algebra.Cross:
		if inner, ok := w.R.(algebra.Cross); ok {
			// e1 × (e2 × e3) = (e1 × e2) × e3.
			return algebra.Cross{L: algebra.Cross{L: w.L, R: inner.L}, R: inner.R}, true
		}
	case algebra.Join:
		if out, ok := reassocJoin(w); ok {
			return out, true
		}
	}
	return op, changed
}

// pushSelect sinks the conjuncts of a selection into the inputs of a binary
// operator below it, where the side conditions allow.
func pushSelect(s algebra.Select) (algebra.Op, bool) {
	conjuncts := splitConjuncts(s.Pred)
	in := s.In
	switch j := in.(type) {
	case algebra.Cross:
		left, right, stuck := classifyConjuncts(conjuncts, j.L, j.R, true)
		if left == nil && right == nil {
			return nil, false
		}
		var out algebra.Op = algebra.Cross{L: wrapSelect(j.L, left), R: wrapSelect(j.R, right)}
		return wrapSelect(out, stuck), true
	case algebra.Join:
		left, right, stuck := classifyConjuncts(conjuncts, j.L, j.R, true)
		if left == nil && right == nil {
			return nil, false
		}
		var out algebra.Op = algebra.Join{L: wrapSelect(j.L, left), R: wrapSelect(j.R, right), Pred: j.Pred}
		return wrapSelect(out, stuck), true
	case algebra.SemiJoin:
		left, _, stuck := classifyConjuncts(conjuncts, j.L, j.R, false)
		if left == nil {
			return nil, false
		}
		var out algebra.Op = algebra.SemiJoin{L: wrapSelect(j.L, left), R: j.R, Pred: j.Pred}
		return wrapSelect(out, stuck), true
	case algebra.AntiJoin:
		left, _, stuck := classifyConjuncts(conjuncts, j.L, j.R, false)
		if left == nil {
			return nil, false
		}
		var out algebra.Op = algebra.AntiJoin{L: wrapSelect(j.L, left), R: j.R, Pred: j.Pred}
		return wrapSelect(out, stuck), true
	case algebra.OuterJoin:
		left, _, stuck := classifyConjuncts(conjuncts, j.L, j.R, false)
		if left == nil {
			return nil, false
		}
		var out algebra.Op = algebra.OuterJoin{
			L: wrapSelect(j.L, left), R: j.R, Pred: j.Pred, G: j.G, Default: j.Default,
		}
		return wrapSelect(out, stuck), true
	}
	return nil, false
}

// classifyConjuncts partitions predicate conjuncts into those pushable into
// the left input (F(p) ∩ A(right) = ∅), those pushable into the right input
// (F(p) ∩ A(left) = ∅, only when pushRight holds), and the rest. Conjuncts
// referencing neither side (outer-environment predicates) go left — they
// filter earlier there. When an input's attribute set is unknown, nothing is
// pushed across it.
func classifyConjuncts(conjuncts []algebra.Expr, l, r algebra.Op, pushRight bool) (left, right, stuck []algebra.Expr) {
	lAttrs, lok := l.Attrs()
	rAttrs, rok := r.Attrs()
	if !lok || !rok {
		return nil, nil, conjuncts
	}
	lSet := toSet(lAttrs)
	rSet := toSet(rAttrs)
	for _, c := range conjuncts {
		fv := map[string]bool{}
		c.FreeVars(fv)
		switch {
		case disjoint(fv, rSet):
			left = append(left, c)
		case pushRight && disjoint(fv, lSet):
			right = append(right, c)
		default:
			stuck = append(stuck, c)
		}
	}
	return left, right, stuck
}

// reassocJoin rotates e1 ⋈p1 (e2 ⋈p2 e3) to (e1 ⋈p1 e2) ⋈p2 e3 under the
// usual restrictions: p1 must not reference A(e3) and p2 must not reference
// A(e1).
func reassocJoin(j algebra.Join) (algebra.Op, bool) {
	inner, ok := j.R.(algebra.Join)
	if !ok {
		return nil, false
	}
	a1, ok1 := j.L.Attrs()
	a3, ok3 := inner.R.Attrs()
	if !ok1 || !ok3 {
		return nil, false
	}
	fv1 := map[string]bool{}
	j.Pred.FreeVars(fv1)
	fv2 := map[string]bool{}
	inner.Pred.FreeVars(fv2)
	if !disjoint(fv1, toSet(a3)) || !disjoint(fv2, toSet(a1)) {
		return nil, false
	}
	return algebra.Join{
		L:    algebra.Join{L: j.L, R: inner.L, Pred: j.Pred},
		R:    inner.R,
		Pred: inner.Pred,
	}, true
}

// splitConjuncts flattens a conjunction into its conjuncts, including the
// predicates of directly stacked selections — sound by the commutation rule
// σp1(σp2(e)) = σp2(σp1(e)).
func splitConjuncts(p algebra.Expr) []algebra.Expr {
	if a, ok := p.(algebra.AndExpr); ok {
		return append(splitConjuncts(a.L), splitConjuncts(a.R)...)
	}
	return []algebra.Expr{p}
}

// wrapSelect places the conjuncts back on top of op as a single selection;
// with no conjuncts it returns op unchanged.
func wrapSelect(op algebra.Op, conjuncts []algebra.Expr) algebra.Op {
	if len(conjuncts) == 0 {
		return op
	}
	pred := conjuncts[0]
	for _, c := range conjuncts[1:] {
		pred = algebra.AndExpr{L: pred, R: c}
	}
	return algebra.Select{In: op, Pred: pred}
}

func toSet(attrs []string) map[string]bool {
	m := make(map[string]bool, len(attrs))
	for _, a := range attrs {
		m[a] = true
	}
	return m
}

func disjoint(a, b map[string]bool) bool {
	for k := range a {
		if b[k] {
			return false
		}
	}
	return true
}

// rebuildChildren applies f to every algebraic input of op and rebuilds the
// operator when any input changed. Operators are value types, so rebuilding
// is a field-wise copy.
func rebuildChildren(op algebra.Op, f func(algebra.Op) (algebra.Op, bool)) (algebra.Op, bool) {
	// The unordered family is introduced by ToUnordered strictly after
	// every rebuildChildren-based pass (Simplify, SubstituteIndexes) has
	// run on the ordered plan, and XiGroupStream only appears in
	// hand-built experiment plans; neither is ever traversed here.
	//nal:opswitch sec2 exempt=XiGroupStream,UnorderedJoin,UnorderedSemiJoin,UnorderedAntiJoin,UnorderedOuterJoin,UnorderedGroupUnary,UnorderedGroupBinary
	switch w := op.(type) {
	case algebra.Singleton:
		return w, false
	case algebra.Select:
		in, ch := f(w.In)
		return algebra.Select{In: in, Pred: w.Pred}, ch
	case algebra.Project:
		in, ch := f(w.In)
		return algebra.Project{In: in, Names: w.Names}, ch
	case algebra.ProjectDrop:
		in, ch := f(w.In)
		return algebra.ProjectDrop{In: in, Names: w.Names}, ch
	case algebra.ProjectRename:
		in, ch := f(w.In)
		return algebra.ProjectRename{In: in, Pairs: w.Pairs}, ch
	case algebra.ProjectDistinct:
		in, ch := f(w.In)
		return algebra.ProjectDistinct{In: in, Pairs: w.Pairs}, ch
	case algebra.Map:
		in, ch := f(w.In)
		return algebra.Map{In: in, Attr: w.Attr, E: w.E}, ch
	case algebra.UnnestMap:
		in, ch := f(w.In)
		return algebra.UnnestMap{In: in, Attr: w.Attr, E: w.E, PosAttr: w.PosAttr}, ch
	case algebra.Cross:
		l, ch1 := f(w.L)
		r, ch2 := f(w.R)
		return algebra.Cross{L: l, R: r}, ch1 || ch2
	case algebra.Join:
		l, ch1 := f(w.L)
		r, ch2 := f(w.R)
		return algebra.Join{L: l, R: r, Pred: w.Pred}, ch1 || ch2
	case algebra.SemiJoin:
		l, ch1 := f(w.L)
		r, ch2 := f(w.R)
		return algebra.SemiJoin{L: l, R: r, Pred: w.Pred}, ch1 || ch2
	case algebra.AntiJoin:
		l, ch1 := f(w.L)
		r, ch2 := f(w.R)
		return algebra.AntiJoin{L: l, R: r, Pred: w.Pred}, ch1 || ch2
	case algebra.OuterJoin:
		l, ch1 := f(w.L)
		r, ch2 := f(w.R)
		return algebra.OuterJoin{L: l, R: r, Pred: w.Pred, G: w.G, Default: w.Default}, ch1 || ch2
	case algebra.GroupUnary:
		in, ch := f(w.In)
		return algebra.GroupUnary{In: in, G: w.G, By: w.By, Theta: w.Theta, F: w.F}, ch
	case algebra.GroupSelf:
		in, ch := f(w.In)
		return algebra.GroupSelf{In: in, G: w.G, By: w.By, F: w.F}, ch
	case algebra.GroupBinary:
		l, ch1 := f(w.L)
		r, ch2 := f(w.R)
		return algebra.GroupBinary{L: l, R: r, G: w.G, LAttrs: w.LAttrs, RAttrs: w.RAttrs,
			Theta: w.Theta, F: w.F, ForceScan: w.ForceScan}, ch1 || ch2
	case algebra.Unnest:
		in, ch := f(w.In)
		return algebra.Unnest{In: in, Attr: w.Attr, InnerAttrs: w.InnerAttrs}, ch
	case algebra.UnnestDistinct:
		in, ch := f(w.In)
		return algebra.UnnestDistinct{In: in, Attr: w.Attr}, ch
	case algebra.XiSimple:
		in, ch := f(w.In)
		return algebra.XiSimple{In: in, Cmds: w.Cmds}, ch
	case algebra.XiGroup:
		in, ch := f(w.In)
		return algebra.XiGroup{In: in, By: w.By, S1: w.S1, S2: w.S2, S3: w.S3}, ch
	case algebra.Sort:
		in, ch := f(w.In)
		return algebra.Sort{In: in, By: w.By, Dirs: w.Dirs}, ch
	case algebra.AttachSeq:
		in, ch := f(w.In)
		return algebra.AttachSeq{In: in, Attr: w.Attr}, ch
	case algebra.IndexScan:
		in, ch := f(w.In)
		w.In = in
		return w, ch
	case algebra.GraceJoin:
		l, ch1 := f(w.L)
		r, ch2 := f(w.R)
		return algebra.GraceJoin{L: l, R: r, LAttrs: w.LAttrs, RAttrs: w.RAttrs, Residual: w.Residual}, ch1 || ch2
	case algebra.OPHashJoin:
		l, ch1 := f(w.L)
		r, ch2 := f(w.R)
		return algebra.OPHashJoin{L: l, R: r, LAttrs: w.LAttrs, RAttrs: w.RAttrs,
			Residual: w.Residual, Partitions: w.Partitions}, ch1 || ch2
	default:
		// Leaves (□, document scans, test fixtures) have no algebraic inputs.
		return op, false
	}
}
