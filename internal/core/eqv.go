// Package core implements the paper's primary contribution: the
// order-preserving unnesting equivalences of Fig. 4 (Eqvs. 1–7) and the
// scan-saving Eqvs. 8 and 9, together with their side-condition checks and
// the optimizer that enumerates plan alternatives for a translated query.
//
// All equivalences are applied left-to-right: the left-hand sides are the
// nested forms produced by translation (χ over f(σ...(e2)), σ over ∃/∀
// quantifier predicates); the right-hand sides are unnested operator trees.
package core

import (
	"nalquery/internal/algebra"
	"nalquery/internal/schema"
	"nalquery/internal/translate"
	"nalquery/internal/value"
)

// Rewriter applies the unnesting equivalences. It carries the variable
// provenance recorded during translation and the DTD catalog, which together
// decide the schema-dependent conditions (e1 = ΠD A1:A2(ΠA2(e2)) etc.).
type Rewriter struct {
	Prov map[string]translate.Prov
	Cat  *schema.Catalog

	noPushdown bool
}

// NewRewriter builds a rewriter from a translation result.
func NewRewriter(res *translate.Result, cat *schema.Catalog) *Rewriter {
	return &Rewriter{Prov: res.Prov, Cat: cat}
}

// chainOf returns the provenance (document URI and element chain) of an
// attribute's values.
func (rw *Rewriter) chainOf(attr string) (uri, chain string, ok bool) {
	p, found := rw.Prov[attr]
	if !found || p.URI == "" || p.Chain == "" {
		return "", "", false
	}
	return p.URI, p.Chain, true
}

// sameValueSet checks e1 = ΠD A1:A2(ΠA2(e2)) style conditions: the distinct
// values bound to a1 are exactly the distinct values reachable under a2.
func (rw *Rewriter) sameValueSet(a1, a2 string) bool {
	if rw.Cat == nil {
		return false
	}
	u1, c1, ok1 := rw.chainOf(a1)
	u2, c2, ok2 := rw.chainOf(a2)
	if !ok1 || !ok2 || u1 != u2 {
		return false
	}
	return rw.Cat.SameNodeSet(u1, c1, c2)
}

// distinct reports whether the attribute is value-level duplicate-free
// (bound via distinct-values / ΠD).
func (rw *Rewriter) distinct(attr string) bool { return rw.Prov[attr].Distinct }

// nestedSite is a matched left-hand side of Eqvs. 1–5:
// χ g:f(σ pred (e2)) (e1).
type nestedSite struct {
	e1   algebra.Op
	e2   algebra.Op
	g    string
	f    algebra.SeqFunc
	pred algebra.Expr
}

// matchMapNested matches the Map operator against the χ g:f(σ...(e2))
// pattern. The correlation selection need not sit at the top of the nested
// plan: selections commute with the map/unnest-map operators stacked above
// them (their predicates reference only attributes introduced below), so the
// matcher extracts every correlated selection from the unary operator spine
// and treats the remaining pipeline as e2.
func matchMapNested(m algebra.Map) (nestedSite, bool) {
	na, ok := m.E.(algebra.NestedApply)
	if !ok {
		return nestedSite{}, false
	}
	e1Attrs := attrsOf(m.In)
	e2, preds := extractCorrSelects(na.Plan, e1Attrs)
	if len(preds) == 0 {
		return nestedSite{}, false
	}
	return nestedSite{e1: m.In, e2: e2, g: m.Attr, f: na.F, pred: joinAndExpr(preds)}, true
}

// extractCorrSelects removes from the unary operator spine every selection
// whose predicate references an attribute of the outer expression (a free
// variable of the nested plan), returning the remaining plan and the
// collected predicates. Moving such a selection to the top of the spine is
// order- and multiset-preserving because the operators above it only extend
// tuples (χ, Υ) or filter on unrelated attributes.
func extractCorrSelects(op algebra.Op, outerAttrs map[string]bool) (algebra.Op, []algebra.Expr) {
	switch w := op.(type) {
	case algebra.Select:
		fv := map[string]bool{}
		w.Pred.FreeVars(fv)
		correlated := false
		for v := range fv {
			if outerAttrs[v] {
				correlated = true
				break
			}
		}
		in, preds := extractCorrSelects(w.In, outerAttrs)
		if correlated {
			return in, append(preds, flattenAndExpr(w.Pred)...)
		}
		return algebra.Select{In: in, Pred: w.Pred}, preds
	case algebra.Map:
		in, preds := extractCorrSelects(w.In, outerAttrs)
		return algebra.Map{In: in, Attr: w.Attr, E: w.E}, preds
	case algebra.UnnestMap:
		in, preds := extractCorrSelects(w.In, outerAttrs)
		return algebra.UnnestMap{In: in, Attr: w.Attr, E: w.E}, preds
	default:
		// Stop at projections and non-unary operators: moving a selection
		// above them is not generally attribute-safe.
		return op, nil
	}
}

// corrEq is a decomposed correlation predicate A1 θ A2 (or A1 ∈ a2).
type corrEq struct {
	a1     string // attribute of e1 (free in the nested expression)
	a2     string // attribute of e2 (or the sequence-valued attribute for ∈)
	theta  value.CmpOp
	member bool // true for the ∈ form of Eqvs. 4 and 5
}

// splitCorrelation decomposes the selection predicate of a nested site into
// the correlation comparison plus a residual predicate over e2 attributes
// only. a1 must be free in the nested plan (∈ A(e1)), a2 produced by e2.
func splitCorrelation(pred algebra.Expr, e1, e2 algebra.Op) (corrEq, algebra.Expr, bool) {
	e1Attrs := attrsOf(e1)
	e2Attrs := attrsOf(e2)
	conjuncts := flattenAndExpr(pred)
	var corr *corrEq
	var rest []algebra.Expr
	for _, c := range conjuncts {
		if corr == nil {
			if ce, ok := asCorr(c, e1Attrs, e2Attrs); ok {
				corr = &ce
				continue
			}
		}
		// Residual conjuncts may only reference e2 attributes.
		fv := map[string]bool{}
		c.FreeVars(fv)
		onlyE2 := true
		for v := range fv {
			if !e2Attrs[v] {
				onlyE2 = false
				break
			}
		}
		if !onlyE2 {
			return corrEq{}, nil, false
		}
		rest = append(rest, c)
	}
	if corr == nil {
		return corrEq{}, nil, false
	}
	return *corr, joinAndExpr(rest), true
}

func asCorr(c algebra.Expr, e1Attrs, e2Attrs map[string]bool) (corrEq, bool) {
	switch w := c.(type) {
	case algebra.CmpExpr:
		lv, lok := w.L.(algebra.Var)
		rv, rok := w.R.(algebra.Var)
		if !lok || !rok {
			return corrEq{}, false
		}
		switch {
		case e1Attrs[lv.Name] && e2Attrs[rv.Name]:
			return corrEq{a1: lv.Name, a2: rv.Name, theta: w.Op}, true
		case e2Attrs[lv.Name] && e1Attrs[rv.Name]:
			// swap: A2 θ A1 ⇔ A1 θ⁻¹ A2
			return corrEq{a1: rv.Name, a2: lv.Name, theta: flipCmp(w.Op)}, true
		}
	case algebra.InExpr:
		iv, iok := w.Item.(algebra.Var)
		sv, sok := w.Seq.(algebra.Var)
		if iok && sok && e1Attrs[iv.Name] && e2Attrs[sv.Name] {
			return corrEq{a1: iv.Name, a2: sv.Name, theta: value.CmpEq, member: true}, true
		}
	}
	return corrEq{}, false
}

func flipCmp(op value.CmpOp) value.CmpOp {
	switch op {
	case value.CmpLt:
		return value.CmpGt
	case value.CmpLe:
		return value.CmpGe
	case value.CmpGt:
		return value.CmpLt
	case value.CmpGe:
		return value.CmpLe
	default:
		return op
	}
}

func attrsOf(op algebra.Op) map[string]bool {
	m := map[string]bool{}
	if attrs, ok := op.Attrs(); ok {
		for _, a := range attrs {
			m[a] = true
		}
	}
	return m
}

func flattenAndExpr(e algebra.Expr) []algebra.Expr {
	if e == nil {
		return nil
	}
	if a, ok := e.(algebra.AndExpr); ok {
		return append(flattenAndExpr(a.L), flattenAndExpr(a.R)...)
	}
	if c, ok := e.(algebra.Call); ok && c.Fn == "true" && len(c.Args) == 0 {
		return nil
	}
	if cv, ok := e.(algebra.ConstVal); ok {
		if b, isB := cv.V.(value.Bool); isB && bool(b) {
			return nil
		}
	}
	return []algebra.Expr{e}
}

func joinAndExpr(es []algebra.Expr) algebra.Expr {
	if len(es) == 0 {
		return nil
	}
	out := es[0]
	for _, e := range es[1:] {
		out = algebra.AndExpr{L: out, R: e}
	}
	return out
}

// disjointFree checks F(e2) ∩ A(e1) = ∅ modulo the correlation attribute:
// the only e1 attribute the nested expression may reference is the
// correlation variable itself (which the rewrite replaces by the join).
func disjointFree(e2 algebra.Op, residual algebra.Expr, e1 algebra.Op, corrA1 string) bool {
	e1Attrs := attrsOf(e1)
	fv := map[string]bool{}
	for v := range fvOfOp(e2) {
		fv[v] = true
	}
	if residual != nil {
		residual.FreeVars(fv)
	}
	for v := range fv {
		if v == corrA1 {
			continue
		}
		if e1Attrs[v] {
			return false
		}
	}
	return true
}

func fvOfOp(op algebra.Op) map[string]bool {
	m := map[string]bool{}
	for _, v := range algebra.FreeVarsOf(op) {
		m[v] = true
	}
	return m
}

// fIndependentOf checks that f does not depend on the given attributes —
// the f(s) = f(Πa2(s)) = f(ΠA2(s)) requirement of Eqvs. 4 and 5.
func fIndependentOf(f algebra.SeqFunc, attrs ...string) bool {
	banned := map[string]bool{}
	for _, a := range attrs {
		banned[a] = true
	}
	switch w := f.(type) {
	case algebra.SFCount:
		return true
	case algebra.SFAgg:
		return !banned[w.Attr]
	case algebra.SFProject:
		for _, a := range w.Attrs {
			if banned[a] {
				return false
			}
		}
		return true
	case algebra.SFFiltered:
		fv := map[string]bool{}
		w.Pred.FreeVars(fv)
		for a := range banned {
			if fv[a] {
				return false
			}
		}
		return fIndependentOf(w.Inner, attrs...)
	default:
		// id and unknown functions depend on every attribute.
		return false
	}
}
