package core

import (
	"nalquery/internal/algebra"
	"nalquery/internal/value"
)

// applySelfJoinGrouping implements the single-scan "grouping" plan of
// Sec. 5.4: when a semijoin's two sides scan the same document through the
// same paths (e1 ≅ e2 up to attribute renaming), the semijoin
//
//	Ξ(e1 ⋉ b1=b2 ∧ p(e2-attrs) e2)
//
// is replaced by one grouping pass over e2 alone:
//
//	Ξ'(σ c>0 (Γself c;=b2;count∘σp (σ exists(b2) (e2))))
//
// where Ξ' renames the e1 attributes of the commands to their e2
// counterparts. (The paper's Eqv. 8 presentation prints e2 attributes for
// exactly this reason; the explicit renaming keeps the result identical to
// the semijoin plan.)
func (rw *Rewriter) applySelfJoinGrouping(x algebra.XiSimple) (algebra.Op, bool) {
	j, ok := x.In.(algebra.SemiJoin)
	if !ok {
		return nil, false
	}
	// A residual selection pushed onto the inner operand (Sec. 5.5 style)
	// is absorbed back into the filter function.
	var pushed []algebra.Expr
	inner := j.R
	for {
		sel, isSel := inner.(algebra.Select)
		if !isSel {
			break
		}
		pushed = append(pushed, flattenAndExpr(sel.Pred)...)
		inner = sel.In
	}
	j.R = inner
	corr, residual, ok := splitCorrelation(j.Pred, j.L, j.R)
	if !ok || corr.member || corr.theta != value.CmpEq {
		return nil, false
	}
	residual = joinAndExpr(append(flattenAndExpr(residual), pushed...))
	// Both sides must be pure scan pipelines (no filtering that could make
	// the streams diverge).
	if hasSelection(j.L) || hasSelection(j.R) {
		return nil, false
	}
	// Build the attribute correspondence e1 → e2 by provenance chain
	// equality; every non-document attribute of e1 must have exactly one
	// counterpart.
	mapping, ok := rw.matchPipelines(j.L, j.R, corr)
	if !ok {
		return nil, false
	}
	// The Ξ commands may reference only mapped attributes.
	var cmds []algebra.Command
	for _, c := range x.Cmds {
		if c.IsLit {
			cmds = append(cmds, c)
			continue
		}
		v, isVar := c.E.(algebra.Var)
		if !isVar {
			return nil, false
		}
		to, found := mapping[v.Name]
		if !found {
			return nil, false
		}
		cmds = append(cmds, algebra.ExprCmd(algebra.Var{Name: to}))
	}

	cAttr := corr.a2 + "#c"
	var f algebra.SeqFunc = algebra.SFCount{}
	if residual != nil {
		f = algebra.SFFiltered{Pred: residual, Inner: algebra.SFCount{}}
	}
	// Γself annotates each e2 tuple with the match count of its equality
	// group while keeping the input order — Γ followed by µ would emit
	// group-major, which breaks document order whenever equal key values
	// occur non-contiguously in e2 (the paper's Eqv. 8 assumes ΠD(e1)
	// precisely to sidestep this).
	grouped := algebra.GroupSelf{In: dropAbsentKeys(j.R, corr.a2), G: cAttr,
		By: []string{corr.a2}, F: f}
	filtered := algebra.Select{In: grouped,
		Pred: algebra.CmpExpr{L: algebra.Var{Name: cAttr}, R: algebra.ConstVal{V: value.Int(0)}, Op: value.CmpGt}}
	return algebra.XiSimple{In: filtered, Cmds: cmds}, true
}

// matchPipelines maps every non-document attribute of e1 to an e2 attribute
// with identical provenance (same document, same element chain). The
// correlation pair is part of the mapping.
func (rw *Rewriter) matchPipelines(e1, e2 algebra.Op, corr corrEq) (map[string]string, bool) {
	a1s, ok1 := e1.Attrs()
	a2s, ok2 := e2.Attrs()
	if !ok1 || !ok2 {
		return nil, false
	}
	mapping := map[string]string{corr.a1: corr.a2}
	used := map[string]bool{corr.a2: true}
	// Verify the correlation pair itself matches by chain.
	u1, c1, k1 := rw.chainOf(corr.a1)
	u2, c2, k2 := rw.chainOf(corr.a2)
	if !k1 || !k2 || u1 != u2 || c1 != c2 {
		return nil, false
	}
	for _, a := range a1s {
		if a == corr.a1 {
			continue
		}
		p := rw.Prov[a]
		if p.IsDoc {
			continue // document handles need no counterpart
		}
		ua, ca, known := rw.chainOf(a)
		if !known {
			return nil, false
		}
		found := ""
		for _, b := range a2s {
			if used[b] {
				continue
			}
			ub, cb, kb := rw.chainOf(b)
			if kb && ua == ub && ca == cb {
				found = b
				break
			}
		}
		if found == "" {
			return nil, false
		}
		used[found] = true
		mapping[a] = found
	}
	return mapping, true
}

func hasSelection(op algebra.Op) bool {
	if _, ok := op.(algebra.Select); ok {
		return true
	}
	for _, c := range op.Children() {
		if hasSelection(c) {
			return true
		}
	}
	return false
}

// applyXiFusion fuses Ξ over a renamed unary grouping with f = ΠA into the
// group-detecting Ξ operator (Sec. 5.1's final plan:
// s1;a2′;s2 Ξ s3 a2′;t2 (µD a2 (e2))), saving the materialization of the
// sequence-valued group attribute.
func (rw *Rewriter) applyXiFusion(x algebra.XiSimple) (algebra.Op, bool) {
	// Unwrap the group-key rename produced by renameGroupKey: either a plain
	// ΠA1:A2 or the atomizing χa1:string(a2) + Π̄a2 form.
	var a1, a2 string
	var keyExpr algebra.Expr // the command expression replacing a1
	var gu algebra.GroupUnary
	switch w := x.In.(type) {
	case algebra.ProjectRename:
		if len(w.Pairs) != 1 {
			return nil, false
		}
		g, ok := w.In.(algebra.GroupUnary)
		if !ok {
			return nil, false
		}
		gu = g
		a1, a2 = w.Pairs[0].New, w.Pairs[0].Old
		keyExpr = algebra.Var{Name: a2}
	case algebra.ProjectDrop:
		m, ok := w.In.(algebra.Map)
		if !ok {
			return nil, false
		}
		call, ok := m.E.(algebra.Call)
		if !ok || call.Fn != "string" || len(call.Args) != 1 {
			return nil, false
		}
		v, ok := call.Args[0].(algebra.Var)
		if !ok {
			return nil, false
		}
		g, ok := m.In.(algebra.GroupUnary)
		if !ok {
			return nil, false
		}
		gu = g
		a1, a2 = m.Attr, v.Name
		keyExpr = call
		if len(w.Names) != 1 || w.Names[0] != a2 {
			return nil, false
		}
	default:
		return nil, false
	}
	if gu.Theta != value.CmpEq || len(gu.By) != 1 {
		return nil, false
	}
	proj, ok := gu.F.(algebra.SFProject)
	if !ok || len(proj.Attrs) != 1 {
		return nil, false
	}
	if gu.By[0] != a2 {
		return nil, false
	}
	// Locate the single command printing the group attribute.
	gIdx := -1
	for i, c := range x.Cmds {
		if c.IsLit {
			continue
		}
		v, isVar := c.E.(algebra.Var)
		if !isVar {
			return nil, false
		}
		switch v.Name {
		case gu.G:
			if gIdx >= 0 {
				return nil, false // group attribute printed twice
			}
			gIdx = i
		case a1:
			// fine: renamed below
		default:
			return nil, false
		}
	}
	if gIdx < 0 {
		return nil, false
	}
	rename := func(cs []algebra.Command) []algebra.Command {
		out := make([]algebra.Command, 0, len(cs))
		for _, c := range cs {
			if !c.IsLit {
				if v, isVar := c.E.(algebra.Var); isVar && v.Name == a1 {
					c = algebra.ExprCmd(keyExpr)
				}
			}
			out = append(out, c)
		}
		return out
	}
	return algebra.XiGroup{
		In: gu.In,
		By: []string{a2},
		S1: rename(x.Cmds[:gIdx]),
		S2: []algebra.Command{algebra.ExprCmd(algebra.Var{Name: proj.Attrs[0]})},
		S3: rename(x.Cmds[gIdx+1:]),
	}, true
}
