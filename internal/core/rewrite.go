package core

import (
	"sort"
	"strings"

	"nalquery/internal/algebra"
	"nalquery/internal/value"
)

// Strategy selects which right-hand sides the rewriter prefers when several
// equivalences apply to the same nesting site.
type Strategy int

// Strategies, in increasing order of required side conditions.
const (
	// StrategyNested leaves the plan as translated (nested-loop evaluation).
	StrategyNested Strategy = iota
	// StrategyGeneral applies the equivalences that always hold: Eqv. 2/4
	// (left outer join with unary grouping) for χ sites and Eqv. 6/7
	// (semijoin / anti-semijoin) for quantifiers; Eqv. 1 (binary grouping)
	// for non-equality correlations.
	StrategyGeneral
	// StrategyGrouping additionally applies the condition-bearing rewrites:
	// Eqv. 3/5 (unary grouping replacing e1 entirely), Eqv. 8/9
	// (count-based selections saving a scan) and the self-join grouping of
	// Sec. 5.4.
	StrategyGrouping
	// StrategyGroupXi is StrategyGrouping plus Ξ fusion into the
	// group-detecting Ξ operator.
	StrategyGroupXi
)

// String names the strategy.
func (s Strategy) String() string {
	switch s {
	case StrategyNested:
		return "nested"
	case StrategyGeneral:
		return "general"
	case StrategyGrouping:
		return "grouping"
	case StrategyGroupXi:
		return "group-xi"
	default:
		return "unknown"
	}
}

// PlanAlt is one plan alternative for a query.
type PlanAlt struct {
	// Name follows the paper's table rows: "nested", "outer join",
	// "grouping", "group Ξ", "semijoin", "anti-semijoin".
	Name string
	// Strategy that produced the plan.
	Strategy Strategy
	// Op is the executable plan.
	Op algebra.Op
	// Applied lists the equivalences used, e.g. ["Eqv.4"].
	Applied []string
}

// NoPushdown disables the residual-pushdown micro-rewrite (Sec. 5.5's
// σ push into the anti-join's inner operand). Used by the ablation
// experiments only.
func (rw *Rewriter) SetNoPushdown(v bool) { rw.noPushdown = v }

// Rewrite applies the unnesting equivalences bottom-up under the given
// strategy and returns the rewritten plan plus the list of applied rules.
func (rw *Rewriter) Rewrite(plan algebra.Op, s Strategy) (algebra.Op, []string) {
	r := &rewritePass{rw: rw, strategy: s}
	out := r.op(plan)
	sort.Strings(r.applied)
	return out, r.applied
}

type rewritePass struct {
	rw       *Rewriter
	strategy Strategy
	applied  []string
}

func (r *rewritePass) note(rule string) {
	for _, a := range r.applied {
		if a == rule {
			return
		}
	}
	r.applied = append(r.applied, rule)
}

// op rewrites one operator bottom-up.
func (r *rewritePass) op(o algebra.Op) algebra.Op {
	if r.strategy == StrategyNested {
		return o
	}
	// The physical operators (index scans, the Grace/OPHash pair, the
	// unordered family, streamed Ξ-grouping) are introduced after — or at
	// the tail of — this pass and are never rewritten through; Singleton
	// is a leaf.
	//nal:opswitch rewrite exempt=Singleton,IndexScan,XiGroupStream,GraceJoin,OPHashJoin,UnorderedJoin,UnorderedSemiJoin,UnorderedAntiJoin,UnorderedOuterJoin,UnorderedGroupUnary,UnorderedGroupBinary
	switch w := o.(type) {
	case algebra.Map:
		w.In = r.op(w.In)
		return r.mapSite(w)
	case algebra.Select:
		w.In = r.op(w.In)
		return r.selectSite(w)
	case algebra.XiSimple:
		w.In = r.op(w.In)
		return r.xiSite(w)
	case algebra.XiGroup:
		w.In = r.op(w.In)
		return w
	case algebra.Project:
		w.In = r.op(w.In)
		return w
	case algebra.ProjectDrop:
		w.In = r.op(w.In)
		return w
	case algebra.ProjectRename:
		w.In = r.op(w.In)
		return w
	case algebra.ProjectDistinct:
		w.In = r.op(w.In)
		return w
	case algebra.UnnestMap:
		w.In = r.op(w.In)
		return w
	case algebra.Unnest:
		w.In = r.op(w.In)
		return w
	case algebra.UnnestDistinct:
		w.In = r.op(w.In)
		return w
	case algebra.Sort:
		// Order-by translation places Sort (under a ΠD̄ of the sort keys)
		// mid-plan; descending through it lets the unnesting equivalences
		// reach nested FLWRs below an order by. (Previously the walker
		// fell through to the default and silently left the whole subtree
		// nested — the class of omission opcomplete now rejects.)
		w.In = r.op(w.In)
		return w
	case algebra.AttachSeq:
		w.In = r.op(w.In)
		return w
	case algebra.GroupUnary:
		w.In = r.op(w.In)
		return w
	case algebra.GroupSelf:
		w.In = r.op(w.In)
		return w
	case algebra.GroupBinary:
		w.L = r.op(w.L)
		w.R = r.op(w.R)
		return w
	case algebra.Cross:
		w.L = r.op(w.L)
		w.R = r.op(w.R)
		return w
	case algebra.Join:
		w.L = r.op(w.L)
		w.R = r.op(w.R)
		return w
	case algebra.SemiJoin:
		w.L = r.op(w.L)
		w.R = r.op(w.R)
		return w
	case algebra.AntiJoin:
		w.L = r.op(w.L)
		w.R = r.op(w.R)
		return w
	case algebra.OuterJoin:
		w.L = r.op(w.L)
		w.R = r.op(w.R)
		return w
	default:
		return o
	}
}

// mapSite unnests a χ g:f(σ...(e2)) site.
func (r *rewritePass) mapSite(m algebra.Map) algebra.Op {
	site, ok := matchMapNested(m)
	if !ok {
		return m
	}
	// Rewrite inside the nested plan first (multi-level nesting).
	inner := r.op(site.e2)
	m.E = algebra.NestedApply{
		F:    m.E.(algebra.NestedApply).F,
		Plan: algebra.Select{In: inner, Pred: site.pred},
	}

	if r.strategy >= StrategyGrouping {
		if out, ok := r.rw.applyEqv5(m); ok {
			r.note("Eqv.5")
			return out
		}
		if out, ok := r.rw.applyEqv3(m); ok {
			r.note("Eqv.3")
			return out
		}
	}
	if out, ok := r.rw.applyEqv4(m); ok {
		r.note("Eqv.4")
		return out
	}
	if out, ok := r.rw.applyEqv2(m); ok {
		r.note("Eqv.2")
		return out
	}
	if out, ok := r.rw.applyEqv1(m); ok {
		r.note("Eqv.1")
		return out
	}
	return m
}

// selectSite unnests a quantifier selection.
func (r *rewritePass) selectSite(s algebra.Select) algebra.Op {
	// Rewrite inside the quantifier range first.
	switch q := s.Pred.(type) {
	case algebra.ExistsQ:
		q.Range = r.op(q.Range)
		s.Pred = q
	case algebra.ForallQ:
		q.Range = r.op(q.Range)
		s.Pred = q
	}

	if out, ok := r.rw.applyEqv6(s); ok {
		r.note("Eqv.6")
		return r.afterJoin(out)
	}
	if out, ok := r.rw.applyEqv7(s); ok {
		r.note("Eqv.7")
		return r.afterJoin(out)
	}
	return s
}

// afterJoin applies the post-join rewrites: residual pushdown (Sec. 5.5) and
// under StrategyGrouping the count rewrites Eqvs. 8/9.
func (r *rewritePass) afterJoin(o algebra.Op) algebra.Op {
	if r.strategy >= StrategyGrouping {
		switch j := o.(type) {
		case algebra.SemiJoin:
			if out, ok := r.rw.applyEqv8(j); ok {
				r.note("Eqv.8")
				return out
			}
		case algebra.AntiJoin:
			if out, ok := r.rw.applyEqv9(j); ok {
				r.note("Eqv.9")
				return out
			}
		}
	}
	if r.rw.noPushdown {
		return o
	}
	// Push inner-only conjuncts into the join's right operand.
	switch j := o.(type) {
	case algebra.SemiJoin:
		if kept, newR, ok := pushResidual(j.L, j.R, j.Pred); ok {
			if kept == nil {
				kept = algebra.ConstVal{V: value.Bool(true)}
			}
			r.note("pushdown")
			return algebra.SemiJoin{L: j.L, R: newR, Pred: kept}
		}
	case algebra.AntiJoin:
		if kept, newR, ok := pushResidual(j.L, j.R, j.Pred); ok {
			if kept == nil {
				kept = algebra.ConstVal{V: value.Bool(true)}
			}
			r.note("pushdown")
			return algebra.AntiJoin{L: j.L, R: newR, Pred: kept}
		}
	}
	return o
}

// xiSite applies the result-construction level rewrites: the self-join
// grouping of Sec. 5.4 and (under StrategyGroupXi) Ξ fusion.
func (r *rewritePass) xiSite(x algebra.XiSimple) algebra.Op {
	if r.strategy >= StrategyGrouping {
		if out, ok := r.rw.applySelfJoinGrouping(x); ok {
			r.note("self-join-grouping")
			x2, isXi := out.(algebra.XiSimple)
			if !isXi {
				return out
			}
			x = x2
		}
	}
	if r.strategy >= StrategyGroupXi {
		if out, ok := r.rw.applyXiFusion(x); ok {
			r.note("xi-fusion")
			return out
		}
	}
	return x
}

// Validate checks that every Ξ command of the plan references only
// attributes the plan provides (rewrites that replace e1 must not lose
// attributes the result construction needs).
func Validate(plan algebra.Op) bool {
	okAll := true
	var walk func(o algebra.Op)
	walk = func(o algebra.Op) {
		check := func(cs []algebra.Command, in algebra.Op) {
			inAttrs := attrsOf(in)
			if len(inAttrs) == 0 {
				return // unknown schema: cannot validate
			}
			for _, c := range cs {
				if c.IsLit {
					continue
				}
				fv := map[string]bool{}
				c.E.FreeVars(fv)
				for v := range fv {
					if !inAttrs[v] {
						okAll = false
					}
				}
			}
		}
		switch w := o.(type) {
		case algebra.XiSimple:
			check(w.Cmds, w.In)
		case algebra.XiGroup:
			check(w.S1, w.In)
			check(w.S2, w.In)
			check(w.S3, w.In)
		}
		for _, c := range o.Children() {
			walk(c)
		}
	}
	walk(plan)
	return okAll
}

// Alternatives enumerates the plan alternatives of the paper's tables for a
// translated plan: the nested plan plus one plan per applicable strategy.
// Alternatives that do not change the plan or fail validation are dropped.
func (rw *Rewriter) Alternatives(plan algebra.Op) []PlanAlt {
	alts := []PlanAlt{{Name: "nested", Strategy: StrategyNested, Op: plan}}
	seen := map[string]bool{algebra.Explain(plan): true}
	for _, s := range []Strategy{StrategyGeneral, StrategyGrouping, StrategyGroupXi} {
		out, applied := rw.Rewrite(plan, s)
		if simplified, changed := Simplify(out); changed && Validate(simplified) {
			out = simplified
			applied = append(applied, "sec2-pushdown")
		}
		key := algebra.Explain(out)
		if seen[key] || !Validate(out) {
			continue
		}
		seen[key] = true
		alts = append(alts, PlanAlt{Name: altName(s, applied), Strategy: s, Op: out, Applied: applied})
	}
	return alts
}

// altName derives the paper's row label from the applied equivalences.
func altName(s Strategy, applied []string) string {
	has := func(rule string) bool {
		for _, a := range applied {
			if a == rule {
				return true
			}
		}
		return false
	}
	switch {
	case s == StrategyGroupXi && has("xi-fusion"):
		return "group Ξ"
	case s >= StrategyGrouping && (has("Eqv.3") || has("Eqv.5") || has("Eqv.8") || has("Eqv.9") || has("self-join-grouping")):
		return "grouping"
	case has("Eqv.6"):
		return "semijoin"
	case has("Eqv.7"):
		return "anti-semijoin"
	case has("Eqv.2") || has("Eqv.4"):
		return "outer join"
	case has("Eqv.1"):
		return "binary grouping"
	default:
		return strings.ToLower(s.String())
	}
}
