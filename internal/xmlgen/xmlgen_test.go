package xmlgen

import (
	"strings"
	"testing"

	"nalquery/internal/dom"
)

func TestBibStructure(t *testing.T) {
	cfg := DefaultConfig(50)
	cfg.AuthorsPerBook = 3
	d := Bib(cfg)
	root := d.RootElement()
	if root.Name != "bib" {
		t.Fatalf("root: %s", root.Name)
	}
	books := root.ChildElements("book")
	if len(books) != 50 {
		t.Fatalf("books: %d", len(books))
	}
	for _, b := range books {
		if b.Attr("year") == nil {
			t.Fatalf("book without year attribute")
		}
		if b.FirstChildElement("title") == nil || b.FirstChildElement("publisher") == nil ||
			b.FirstChildElement("price") == nil {
			t.Fatalf("book missing required children")
		}
		authors := b.ChildElements("author")
		if len(authors) != 3 {
			t.Fatalf("authors per book: %d", len(authors))
		}
		seen := map[string]bool{}
		for _, a := range authors {
			v := a.StringValue()
			if seen[v] {
				t.Fatalf("duplicate author within one book: %s", v)
			}
			seen[v] = true
			if a.FirstChildElement("last") == nil || a.FirstChildElement("first") == nil {
				t.Fatalf("author missing last/first")
			}
		}
	}
}

func TestBibDeterministic(t *testing.T) {
	a := dom.XMLString(Bib(DefaultConfig(30)).RootElement())
	b := dom.XMLString(Bib(DefaultConfig(30)).RootElement())
	if a != b {
		t.Fatalf("generation must be deterministic")
	}
	c := Bib(Config{Seed: 7, Books: 30, AuthorsPerBook: 2})
	if dom.XMLString(c.RootElement()) == a {
		t.Fatalf("different seeds must differ")
	}
}

func TestEveryAuthorHasABook(t *testing.T) {
	// The round-robin assignment guarantees the Eqv. 5 condition on the
	// generated bib documents: every pool author occurs in some book.
	cfg := DefaultConfig(100)
	d := Bib(cfg)
	var authors []*dom.Node
	authors = d.Root.Descendants("author", authors)
	distinct := map[string]bool{}
	for _, a := range authors {
		distinct[a.StringValue()] = true
	}
	if len(distinct) != 100 {
		t.Fatalf("distinct authors: %d, want %d", len(distinct), 100)
	}
}

func TestReviewsOverlapTitles(t *testing.T) {
	cfg := DefaultConfig(100)
	r := Reviews(cfg)
	entries := r.RootElement().ChildElements("entry")
	if len(entries) != 100 {
		t.Fatalf("entries: %d", len(entries))
	}
	matched := 0
	for _, e := range entries {
		title := e.FirstChildElement("title").StringValue()
		if strings.HasPrefix(title, "Title ") {
			matched++
		}
	}
	if matched == 0 || matched == len(entries) {
		t.Fatalf("review titles must partially overlap bib titles: %d/%d", matched, len(entries))
	}
}

func TestPricesQuotes(t *testing.T) {
	cfg := DefaultConfig(40)
	p := Prices(cfg)
	books := p.RootElement().ChildElements("book")
	if len(books) < 40 {
		t.Fatalf("price quotes: %d", len(books))
	}
	perTitle := map[string]int{}
	for _, b := range books {
		perTitle[b.FirstChildElement("title").StringValue()]++
	}
	if len(perTitle) != 40 {
		t.Fatalf("distinct titles: %d", len(perTitle))
	}
	multi := 0
	for _, n := range perTitle {
		if n > 1 {
			multi++
		}
	}
	if multi == 0 {
		t.Fatalf("min() needs titles with several quotes")
	}
}

func TestBidsReferenceItems(t *testing.T) {
	cfg := DefaultConfig(200)
	items := Items(cfg)
	bids := Bids(cfg)
	valid := map[string]bool{}
	for _, it := range items.RootElement().ChildElements("itemtuple") {
		valid[it.FirstChildElement("itemno").StringValue()] = true
	}
	if len(valid) != 40 { // bids/5
		t.Fatalf("items: %d", len(valid))
	}
	popular := map[string]int{}
	for _, b := range bids.RootElement().ChildElements("bidtuple") {
		no := b.FirstChildElement("itemno").StringValue()
		if !valid[no] {
			t.Fatalf("bid references unknown item %s", no)
		}
		popular[no]++
	}
	// The skew must make count>=3 non-trivial.
	ge3 := 0
	for _, n := range popular {
		if n >= 3 {
			ge3++
		}
	}
	if ge3 == 0 || ge3 == len(popular) {
		t.Fatalf("bid skew degenerate: %d/%d items with >=3 bids", ge3, len(popular))
	}
}

func TestUsersStructure(t *testing.T) {
	cfg := DefaultConfig(100)
	u := Users(cfg)
	uts := u.RootElement().ChildElements("usertuple")
	if len(uts) != 10 {
		t.Fatalf("users: %d", len(uts))
	}
	for _, ut := range uts {
		if ut.FirstChildElement("userid") == nil || ut.FirstChildElement("name") == nil {
			t.Fatalf("usertuple incomplete")
		}
	}
}

func TestDBLPHasAuthorsWithoutBooks(t *testing.T) {
	d := DBLP(DBLPConfig{Seed: 1, Publications: 400})
	root := d.RootElement()
	bookAuthors := map[string]bool{}
	allAuthors := map[string]bool{}
	for _, pub := range root.ChildElements("") {
		for _, a := range pub.ChildElements("author") {
			allAuthors[a.StringValue()] = true
			if pub.Name == "book" {
				bookAuthors[a.StringValue()] = true
			}
		}
	}
	if len(allAuthors) <= len(bookAuthors) {
		t.Fatalf("DBLP must contain authors without books: all=%d book=%d",
			len(allAuthors), len(bookAuthors))
	}
}

func TestConfigNormalization(t *testing.T) {
	c := Config{Books: 10, Bids: 10}.normalize()
	if c.Items == 0 || c.Users == 0 || c.AuthorPool != 10 || c.AuthorsPerBook == 0 {
		t.Fatalf("normalize: %+v", c)
	}
	// Tiny configs must not divide to zero.
	c2 := Config{Books: 1, Bids: 1}.normalize()
	if c2.Items == 0 || c2.Users == 0 {
		t.Fatalf("tiny config: %+v", c2)
	}
}

func TestGeneratedDocumentsParseBack(t *testing.T) {
	cfg := DefaultConfig(20)
	for _, d := range []*dom.Document{Bib(cfg), Reviews(cfg), Prices(cfg), Users(cfg), Items(cfg), Bids(cfg)} {
		s := dom.XMLString(d.RootElement())
		if _, err := dom.ParseString(s, d.URI); err != nil {
			t.Errorf("%s does not re-parse: %v", d.URI, err)
		}
	}
}
