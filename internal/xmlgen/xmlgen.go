// Package xmlgen generates the synthetic XML documents of the paper's
// evaluation. It replaces ToXgene: documents follow the DTDs of the XQuery
// use-case document reproduced in Fig. 5 of the paper (use case XMP: bib,
// reviews, prices; use case R: users, items, bids) and a DBLP-like
// heterogeneous bibliography for the Sec. 5.1 large-document experiment.
//
// Generation is fully deterministic for a given configuration (seeded
// math/rand), so measurements and tests are reproducible.
package xmlgen

import (
	"fmt"
	"math/rand"

	"nalquery/internal/dom"
)

// Config controls document generation. The zero value is not useful; use
// DefaultConfig.
type Config struct {
	// Seed for the deterministic random source.
	Seed int64
	// Books is the number of book elements (bib.xml, prices.xml) and entry
	// elements (reviews.xml).
	Books int
	// AuthorsPerBook is the number of author elements per book (the paper
	// varies 2, 5, 10).
	AuthorsPerBook int
	// AuthorPool is the number of distinct authors. The paper's Q1 document
	// contains as many authors as books; 0 means Books.
	AuthorPool int
	// Bids is the number of bidtuple elements in bids.xml.
	Bids int
	// Items is the number of itemtuple elements; 0 means Bids/5 (the paper's
	// ratio in Sec. 5.6).
	Items int
	// Users is the number of usertuple elements; 0 means max(Bids/10, 1).
	Users int
	// ReviewFraction is the fraction (0..100) of bib titles that also have a
	// review entry; the remaining entries review unknown titles. 50 by
	// default.
	ReviewFraction int
	// Zipf, when > 1, skews key-valued draws (author picks in bib.xml, item
	// references in bids.xml) by a zipfian distribution with this exponent —
	// a few hot keys dominate, so value-index probe selectivities vary
	// wildly across keys. 0 keeps the uniform draws.
	Zipf float64
}

// DefaultConfig returns the configuration for one paper measurement point.
func DefaultConfig(size int) Config {
	return Config{
		Seed:           42,
		Books:          size,
		AuthorsPerBook: 2,
		Bids:           size,
		ReviewFraction: 50,
	}
}

func (c Config) normalize() Config {
	if c.AuthorPool == 0 {
		c.AuthorPool = c.Books
	}
	if c.Items == 0 {
		c.Items = c.Bids / 5
		if c.Items == 0 {
			c.Items = 1
		}
	}
	if c.Users == 0 {
		c.Users = c.Bids / 10
		if c.Users == 0 {
			c.Users = 1
		}
	}
	if c.AuthorsPerBook == 0 {
		c.AuthorsPerBook = 2
	}
	if c.ReviewFraction == 0 {
		c.ReviewFraction = 50
	}
	return c
}

func authorName(i int) (last, first string) {
	// A sprinkling of authors named Suciu keeps the Sec. 5.4 contains()
	// predicate selective but non-empty. First names stay unique, so full
	// author names remain distinct.
	if i%41 == 7 {
		return "Suciu", fmt.Sprintf("First%d", i)
	}
	return fmt.Sprintf("Last%d", i), fmt.Sprintf("First%d", i)
}

func bookTitle(i int) string { return fmt.Sprintf("Title %d", i) }

// zipfOf builds the zipfian source for an n-key draw, or nil for uniform.
func zipfOf(c Config, rng *rand.Rand, n int) *rand.Zipf {
	if c.Zipf <= 1 || n < 2 {
		return nil
	}
	return rand.NewZipf(rng, c.Zipf, 1, uint64(n-1))
}

// draw returns a random index in [0, n): uniform, or skewed toward low
// indexes when a zipfian source is given.
func draw(rng *rand.Rand, z *rand.Zipf, n int) int {
	if z != nil {
		return int(z.Uint64()) % n
	}
	return rng.Intn(n)
}

// Bib generates bib.xml: books with title, author+ (drawn from the author
// pool), publisher, price and a year attribute in [1990, 2003].
func Bib(c Config) *dom.Document {
	c = c.normalize()
	rng := rand.New(rand.NewSource(c.Seed))
	zipf := zipfOf(c, rng, c.AuthorPool)
	b := dom.NewBuilder("bib.xml")
	b.Begin("bib")
	for i := 0; i < c.Books; i++ {
		year := 1990 + rng.Intn(14)
		b.Begin("book").Attrib("year", fmt.Sprintf("%d", year))
		b.Element("title", bookTitle(i))
		// Every author pool member authors at least one book when the pool
		// is no larger than Books*AuthorsPerBook: assign round-robin plus
		// random extras, matching the paper's "books and authors" scaling.
		seen := map[int]bool{}
		for a := 0; a < c.AuthorsPerBook; a++ {
			var idx int
			if a == 0 {
				idx = i % c.AuthorPool
			} else {
				idx = draw(rng, zipf, c.AuthorPool)
			}
			for seen[idx] {
				idx = (idx + 1) % c.AuthorPool
			}
			seen[idx] = true
			last, first := authorName(idx)
			b.Begin("author")
			b.Element("last", last)
			b.Element("first", first)
			b.End()
		}
		b.Element("publisher", fmt.Sprintf("Publisher %d", rng.Intn(20)))
		b.Element("price", fmt.Sprintf("%d.%02d", 10+rng.Intn(90), rng.Intn(100)))
		b.End()
	}
	b.End()
	return b.Done()
}

// Reviews generates reviews.xml: entries with title, price and review text.
// ReviewFraction percent of the entries reference existing bib titles.
func Reviews(c Config) *dom.Document {
	c = c.normalize()
	rng := rand.New(rand.NewSource(c.Seed + 1))
	b := dom.NewBuilder("reviews.xml")
	b.Begin("reviews")
	for i := 0; i < c.Books; i++ {
		b.Begin("entry")
		if rng.Intn(100) < c.ReviewFraction {
			b.Element("title", bookTitle(rng.Intn(c.Books)))
		} else {
			b.Element("title", fmt.Sprintf("Unlisted Title %d", i))
		}
		b.Element("price", fmt.Sprintf("%d.%02d", 10+rng.Intn(90), rng.Intn(100)))
		b.Element("review", fmt.Sprintf("Review text %d: a thorough discussion.", i))
		b.End()
	}
	b.End()
	return b.Done()
}

// Prices generates prices.xml: books with title, source and price. Every bib
// title appears with one to three price quotes from different sources, so
// min-price grouping has non-trivial groups.
func Prices(c Config) *dom.Document {
	c = c.normalize()
	rng := rand.New(rand.NewSource(c.Seed + 2))
	b := dom.NewBuilder("prices.xml")
	b.Begin("prices")
	for i := 0; i < c.Books; i++ {
		quotes := 1 + rng.Intn(3)
		for q := 0; q < quotes; q++ {
			b.Begin("book")
			b.Element("title", bookTitle(i))
			b.Element("source", fmt.Sprintf("source%d.example.com", q))
			b.Element("price", fmt.Sprintf("%d.%02d", 10+rng.Intn(90), rng.Intn(100)))
			b.End()
		}
	}
	b.End()
	return b.Done()
}

// Users generates users.xml for use case R.
func Users(c Config) *dom.Document {
	c = c.normalize()
	rng := rand.New(rand.NewSource(c.Seed + 3))
	b := dom.NewBuilder("users.xml")
	b.Begin("users")
	for i := 0; i < c.Users; i++ {
		b.Begin("usertuple")
		b.Element("userid", fmt.Sprintf("U%02d", i))
		b.Element("name", fmt.Sprintf("User Name %d", i))
		if rng.Intn(2) == 0 {
			b.Element("rating", string(rune('A'+rng.Intn(5))))
		}
		b.End()
	}
	b.End()
	return b.Done()
}

// Items generates items.xml for use case R.
func Items(c Config) *dom.Document {
	c = c.normalize()
	rng := rand.New(rand.NewSource(c.Seed + 4))
	b := dom.NewBuilder("items.xml")
	b.Begin("items")
	for i := 0; i < c.Items; i++ {
		b.Begin("itemtuple")
		b.Element("itemno", fmt.Sprintf("%d", 1000+i))
		b.Element("description", fmt.Sprintf("Item description %d", i))
		b.Element("offered_by", fmt.Sprintf("U%02d", rng.Intn(c.Users)))
		if rng.Intn(2) == 0 {
			b.Element("startdate", fmt.Sprintf("1999-%02d-%02d", 1+rng.Intn(12), 1+rng.Intn(28)))
		}
		if rng.Intn(2) == 0 {
			b.Element("enddate", fmt.Sprintf("1999-%02d-%02d", 1+rng.Intn(12), 1+rng.Intn(28)))
		}
		if rng.Intn(3) == 0 {
			b.Element("reserveprice", fmt.Sprintf("%d", 10+rng.Intn(400)))
		}
		b.End()
	}
	b.End()
	return b.Done()
}

// Bids generates bids.xml for use case R. Bids reference the item numbers of
// Items(c); item popularity is skewed so that the count >= 3 predicate of
// Query 1.4.4.14 selects a non-trivial subset.
func Bids(c Config) *dom.Document {
	c = c.normalize()
	rng := rand.New(rand.NewSource(c.Seed + 5))
	zipf := zipfOf(c, rng, c.Items)
	b := dom.NewBuilder("bids.xml")
	b.Begin("bids")
	for i := 0; i < c.Bids; i++ {
		// Default skew: half the bids hit the first fifth of the items. A
		// configured zipfian exponent sharpens this into true hot keys.
		var item int
		switch {
		case zipf != nil:
			item = draw(rng, zipf, c.Items)
		case rng.Intn(2) == 0:
			item = rng.Intn(max(c.Items/5, 1))
		default:
			item = rng.Intn(c.Items)
		}
		b.Begin("bidtuple")
		b.Element("userid", fmt.Sprintf("U%02d", rng.Intn(c.Users)))
		b.Element("itemno", fmt.Sprintf("%d", 1000+item))
		b.Element("bid", fmt.Sprintf("%d", 10+rng.Intn(400)))
		b.Element("biddate", fmt.Sprintf("1999-%02d-%02d", 1+rng.Intn(12), 1+rng.Intn(28)))
		b.End()
	}
	b.End()
	return b.Done()
}

// DBLPConfig configures the DBLP-like heterogeneous bibliography of the
// Sec. 5.1 large-document experiment.
type DBLPConfig struct {
	Seed int64
	// Publications is the total number of publication elements.
	Publications int
	// BookFraction is the percentage of publications that are books; the
	// rest are articles and theses, whose authors may never author a book —
	// exactly the situation in which Eqv. 5's condition fails (Sec. 5.1).
	BookFraction int
	// AuthorPool is the number of distinct authors.
	AuthorPool int
}

// DBLP generates dblp.xml: a flat sequence of publications (book, article,
// inproceedings, phdthesis) each carrying author children, a title and a
// year. Authors of non-book publications need not author any book.
func DBLP(c DBLPConfig) *dom.Document {
	if c.Publications == 0 {
		c.Publications = 1000
	}
	if c.BookFraction == 0 {
		c.BookFraction = 20
	}
	if c.AuthorPool == 0 {
		c.AuthorPool = c.Publications / 2
	}
	if c.AuthorPool == 0 {
		c.AuthorPool = 1
	}
	rng := rand.New(rand.NewSource(c.Seed + 7))
	kinds := []string{"article", "inproceedings", "phdthesis"}
	b := dom.NewBuilder("dblp.xml")
	b.Begin("dblp")
	for i := 0; i < c.Publications; i++ {
		kind := "book"
		if rng.Intn(100) >= c.BookFraction {
			kind = kinds[rng.Intn(len(kinds))]
		}
		b.Begin(kind)
		authors := 1 + rng.Intn(3)
		for a := 0; a < authors; a++ {
			idx := rng.Intn(c.AuthorPool)
			last, first := authorName(idx)
			b.Begin("author")
			b.Element("last", last)
			b.Element("first", first)
			b.End()
		}
		b.Element("title", fmt.Sprintf("Publication %d", i))
		b.Element("year", fmt.Sprintf("%d", 1980+rng.Intn(24)))
		b.End()
	}
	b.End()
	return b.Done()
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
