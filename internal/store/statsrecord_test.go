package store

import (
	"bytes"
	"strings"
	"testing"

	"nalquery/internal/dom"
	"nalquery/internal/stats"
	"nalquery/internal/xmlgen"
)

// TestStatsRoundTrip: a version-2 image restores the document byte-exactly
// and the statistics field-exactly.
func TestStatsRoundTrip(t *testing.T) {
	d := xmlgen.Bib(xmlgen.DefaultConfig(50))
	st := stats.Analyze(d)
	var buf bytes.Buffer
	if err := SaveStats(&buf, d, st); err != nil {
		t.Fatalf("save: %v", err)
	}
	if !bytes.HasPrefix(buf.Bytes(), []byte("NALB2\n")) {
		t.Fatalf("stats image must carry the v2 magic, got %q", buf.Bytes()[:6])
	}
	out, ost, err := LoadStats(&buf)
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	if dom.XMLString(out.RootElement()) != dom.XMLString(d.RootElement()) {
		t.Fatalf("document round trip differs")
	}
	if ost == nil {
		t.Fatalf("v2 load returned no statistics")
	}
	if ost.Elements != st.Elements || len(ost.Paths) != len(st.Paths) {
		t.Fatalf("shape differs: %d/%d elements, %d/%d paths",
			ost.Elements, st.Elements, len(ost.Paths), len(st.Paths))
	}
	for i, want := range st.Paths {
		got := ost.Paths[i]
		if *got != *want {
			t.Fatalf("path %d differs:\n got %+v\nwant %+v", i, got, want)
		}
	}
}

// TestStatsBackwardCompat: version-1 images still load — with nil stats —
// through both Load and LoadStats, and nil stats on Save keep the v1 magic.
func TestStatsBackwardCompat(t *testing.T) {
	d := dom.MustParseString(`<bib><book year="1994"><title>T</title></book></bib>`, "bib.xml")
	var v1 bytes.Buffer
	if err := Save(&v1, d); err != nil {
		t.Fatalf("save: %v", err)
	}
	if !bytes.HasPrefix(v1.Bytes(), []byte("NALB1\n")) {
		t.Fatalf("nil-stats save must keep the v1 magic, got %q", v1.Bytes()[:6])
	}
	img := v1.Bytes()

	out, err := Load(bytes.NewReader(img))
	if err != nil || dom.XMLString(out.RootElement()) != dom.XMLString(d.RootElement()) {
		t.Fatalf("v1 Load: %v", err)
	}
	out, st, err := LoadStats(bytes.NewReader(img))
	if err != nil || out == nil {
		t.Fatalf("v1 LoadStats: %v", err)
	}
	if st != nil {
		t.Fatalf("v1 image must carry no statistics")
	}
}

// TestStatsLoadIgnoresTrailer: the plain Load entry point reads a v2 image
// without exposing the statistics.
func TestStatsLoadIgnoresTrailer(t *testing.T) {
	d := xmlgen.Users(xmlgen.DefaultConfig(20))
	var buf bytes.Buffer
	if err := SaveStats(&buf, d, stats.Analyze(d)); err != nil {
		t.Fatalf("save: %v", err)
	}
	out, err := Load(&buf)
	if err != nil || dom.XMLString(out.RootElement()) != dom.XMLString(d.RootElement()) {
		t.Fatalf("Load over v2 image: %v", err)
	}
}

// TestStatsTruncatedTrailer: chopping the stats trailer yields an error,
// never a panic.
func TestStatsTruncatedTrailer(t *testing.T) {
	d := xmlgen.Items(xmlgen.DefaultConfig(30))
	var buf bytes.Buffer
	if err := SaveStats(&buf, d, stats.Analyze(d)); err != nil {
		t.Fatalf("save: %v", err)
	}
	img := buf.Bytes()
	var v1 bytes.Buffer
	if err := Save(&v1, d); err != nil {
		t.Fatalf("save v1: %v", err)
	}
	docLen := v1.Len() // magic+doc bytes are identical apart from the magic
	for cut := docLen; cut < len(img); cut += (len(img)-docLen)/19 + 1 {
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("LoadStats panicked at cut %d: %v", cut, r)
				}
			}()
			if _, _, err := LoadStats(bytes.NewReader(img[:cut])); err == nil {
				t.Fatalf("truncated trailer at %d loaded without error", cut)
			}
		}()
	}
}

// TestStatsCorruptPathCount: an absurd declared path count errors instead of
// allocating.
func TestStatsCorruptPathCount(t *testing.T) {
	d := dom.MustParseString(`<a><b>x</b></a>`, "a.xml")
	var buf bytes.Buffer
	if err := SaveStats(&buf, d, stats.Analyze(d)); err != nil {
		t.Fatalf("save: %v", err)
	}
	img := buf.Bytes()
	// Rewrite the trailer: locate it by re-encoding the doc-only prefix.
	var v1 bytes.Buffer
	Save(&v1, d)
	docLen := v1.Len()
	corrupt := append([]byte{}, img[:docLen]...)
	// elements=1, then a huge uvarint path count.
	corrupt = append(corrupt, 0x01, 0xff, 0xff, 0xff, 0xff, 0x7f)
	_, _, err := LoadStats(bytes.NewReader(corrupt))
	if err == nil || !strings.Contains(err.Error(), "exceeds limit") {
		t.Fatalf("corrupt path count: err = %v", err)
	}
}
