package store

import (
	"bytes"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"testing/quick"

	"nalquery/internal/dom"
	"nalquery/internal/xmlgen"
)

func roundTrip(t *testing.T, d *dom.Document) *dom.Document {
	t.Helper()
	var buf bytes.Buffer
	if err := Save(&buf, d); err != nil {
		t.Fatalf("save: %v", err)
	}
	out, err := Load(&buf)
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	return out
}

func TestRoundTripSimple(t *testing.T) {
	d := dom.MustParseString(`<bib><book year="1994"><title>T &amp; x</title></book><b/></bib>`, "bib.xml")
	out := roundTrip(t, d)
	if out.URI != "bib.xml" {
		t.Fatalf("uri: %s", out.URI)
	}
	if dom.XMLString(out.RootElement()) != dom.XMLString(d.RootElement()) {
		t.Fatalf("serialization differs:\n%s\n%s",
			dom.XMLString(d.RootElement()), dom.XMLString(out.RootElement()))
	}
	if out.NumNodes() != d.NumNodes() {
		t.Fatalf("node counts: %d vs %d", out.NumNodes(), d.NumNodes())
	}
}

func TestRoundTripGeneratedDocs(t *testing.T) {
	cfg := xmlgen.DefaultConfig(50)
	for _, d := range []*dom.Document{
		xmlgen.Bib(cfg), xmlgen.Reviews(cfg), xmlgen.Prices(cfg),
		xmlgen.Users(cfg), xmlgen.Items(cfg), xmlgen.Bids(cfg),
		xmlgen.DBLP(xmlgen.DBLPConfig{Seed: 1, Publications: 50}),
	} {
		out := roundTrip(t, d)
		if dom.XMLString(out.RootElement()) != dom.XMLString(d.RootElement()) {
			t.Errorf("%s: round trip differs", d.URI)
		}
	}
}

// TestRoundTripProperty: random documents survive save/load byte-exactly.
func TestRoundTripProperty(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		b := dom.NewBuilder("rand.xml")
		b.Begin("root")
		var build func(depth int)
		build = func(depth int) {
			n := rng.Intn(4)
			for i := 0; i < n; i++ {
				switch {
				case depth < 4 && rng.Intn(2) == 0:
					b.Begin(randName(rng))
					if rng.Intn(2) == 0 {
						b.Attrib(randName(rng), randText(rng))
					}
					build(depth + 1)
					b.End()
				default:
					b.Text(randText(rng))
				}
			}
		}
		build(0)
		b.End()
		d := b.Done()

		var buf bytes.Buffer
		if err := Save(&buf, d); err != nil {
			return false
		}
		out, err := Load(&buf)
		if err != nil {
			return false
		}
		return dom.XMLString(out.RootElement()) == dom.XMLString(d.RootElement()) &&
			out.NumNodes() == d.NumNodes()
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func randName(rng *rand.Rand) string {
	names := []string{"a", "bk", "title", "x-y", "n_1"}
	return names[rng.Intn(len(names))]
}

func randText(rng *rand.Rand) string {
	chunks := []string{"hello", "wörld", "<esc>&", `"q"`, "42", " "}
	return chunks[rng.Intn(len(chunks))]
}

func TestDocumentOrderRebuilt(t *testing.T) {
	d := dom.MustParseString(`<r><a x="1"><b/></a><c/></r>`, "o.xml")
	out := roundTrip(t, d)
	var nodes []*dom.Node
	nodes = out.Root.Descendants("", nodes)
	for i := 1; i < len(nodes); i++ {
		if dom.CompareOrder(nodes[i-1], nodes[i]) >= 0 {
			t.Fatalf("document order not rebuilt")
		}
	}
}

func TestLoadErrors(t *testing.T) {
	cases := map[string][]byte{
		"empty":     {},
		"bad magic": []byte("NOPE!\nxxxx"),
		"truncated": append([]byte(magic), 0x05),
	}
	for name, data := range cases {
		if _, err := Load(bytes.NewReader(data)); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
	// Corrupt string length.
	var buf bytes.Buffer
	d := dom.MustParseString(`<a>x</a>`, "a.xml")
	if err := Save(&buf, d); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	data[len(magic)] = 0xFF // huge varint start for the uri length
	if _, err := Load(bytes.NewReader(data)); err == nil {
		t.Errorf("corrupt length must fail")
	}
}

func TestFileRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "bib.nalb")
	d := xmlgen.Bib(xmlgen.DefaultConfig(20))
	if err := SaveFile(path, d); err != nil {
		t.Fatal(err)
	}
	out, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if dom.XMLString(out.RootElement()) != dom.XMLString(d.RootElement()) {
		t.Fatalf("file round trip differs")
	}
	// Binary form is more compact than the XML serialization for these
	// documents (no close tags).
	info, _ := os.Stat(path)
	xmlLen := len(dom.XMLString(d.RootElement()))
	if info.Size() >= int64(xmlLen) {
		t.Logf("binary %d vs xml %d bytes", info.Size(), xmlLen)
	}
	if _, err := LoadFile(filepath.Join(dir, "missing.nalb")); err == nil {
		t.Fatalf("missing file must error")
	}
}

func TestMagicPrefixStable(t *testing.T) {
	var buf bytes.Buffer
	if err := Save(&buf, dom.MustParseString(`<a/>`, "a.xml")); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(buf.String(), magic) {
		t.Fatalf("magic prefix missing")
	}
}
