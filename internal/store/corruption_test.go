package store

import (
	"bytes"
	"math/rand"
	"testing"

	"nalquery/internal/xmlgen"
)

// Fault injection: a corrupted or truncated store image must never crash
// the loader — it either returns an error or (for corruptions that keep the
// format self-consistent, e.g. a flipped character inside a string) a
// well-formed document.

func savedImage(t *testing.T) []byte {
	t.Helper()
	cfg := xmlgen.DefaultConfig(50)
	doc := xmlgen.Bib(cfg)
	var buf bytes.Buffer
	if err := Save(&buf, doc); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func loadNoPanic(t *testing.T, img []byte, what string) {
	t.Helper()
	defer func() {
		if r := recover(); r != nil {
			t.Fatalf("Load panicked on %s: %v", what, r)
		}
	}()
	_, _ = Load(bytes.NewReader(img))
}

// TestLoadTruncatedImages: every prefix length must load without panicking.
func TestLoadTruncatedImages(t *testing.T) {
	img := savedImage(t)
	stride := len(img)/257 + 1
	for n := 0; n < len(img); n += stride {
		loadNoPanic(t, img[:n], "truncation")
	}
}

// TestLoadBitFlips: random single-byte corruptions must load or error, not
// panic.
func TestLoadBitFlips(t *testing.T) {
	img := savedImage(t)
	rng := rand.New(rand.NewSource(99))
	rounds := 500
	if testing.Short() {
		rounds = 50
	}
	for i := 0; i < rounds; i++ {
		mut := append([]byte{}, img...)
		pos := rng.Intn(len(mut))
		mut[pos] ^= byte(1 << rng.Intn(8))
		loadNoPanic(t, mut, "bit flip")
	}
}

// TestLoadRandomGarbage: arbitrary byte strings must be rejected cleanly.
func TestLoadRandomGarbage(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 200; i++ {
		garbage := make([]byte, rng.Intn(200))
		rng.Read(garbage)
		loadNoPanic(t, garbage, "garbage")
	}
}

// TestLoadHugeDeclaredLength: a corrupt length prefix must not trigger an
// enormous allocation or a hang; the decoder must notice the impossible
// size.
func TestLoadHugeDeclaredLength(t *testing.T) {
	img := savedImage(t)
	// Overwrite bytes shortly after the magic with maximal varint-ish
	// values at several offsets.
	for off := 8; off < 40 && off < len(img); off += 4 {
		mut := append([]byte{}, img...)
		for k := 0; k < 9 && off+k < len(mut); k++ {
			mut[off+k] = 0xFF
		}
		loadNoPanic(t, mut, "huge length")
	}
}
