// Package store implements binary persistence for documents — the stand-in
// for the paper's Natix store. Documents serialize into a compact pre-order
// record format that loads without re-parsing XML; document-order ranks are
// rebuilt on load.
//
// Format (all integers unsigned varints, strings length-prefixed):
//
//	magic "NALB1\n"
//	uri
//	node := kind name data nattrs attrs... nchildren children...
//
// Version 2 ("NALB2\n") appends the analyzer's measured statistics after the
// node tree, so a load skips the analysis walk:
//
//	elements npaths
//	path := name count fanoutBits firstOrder lastOrder flags
//	        [distinct min max [minBits maxBits]]
//
// flags bit 0 is Simple (the value block follows), bit 1 is AllNumeric (the
// numeric extremes follow). Floats serialize as IEEE-754 bits. Load accepts
// both versions — a version-1 file simply carries no statistics and the
// engine recomputes them. Unknown magics are rejected.
package store

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"os"

	"nalquery/internal/dom"
	"nalquery/internal/stats"
)

const (
	magic   = "NALB1\n"
	magicV2 = "NALB2\n"
)

// Stats flag bits.
const (
	flagSimple  = 1 << 0
	flagNumeric = 1 << 1
)

// maxPaths guards against corrupt path counts.
const maxPaths = 1 << 24

// maxString guards against corrupt length prefixes.
const maxString = 1 << 28

// Save writes a document in version-1 binary form (no statistics).
func Save(w io.Writer, d *dom.Document) error { return save(w, d, nil) }

// SaveStats writes a document in version-2 binary form with the analyzer's
// measured statistics appended, so loading skips the analysis walk. A nil
// st falls back to version 1.
func SaveStats(w io.Writer, d *dom.Document, st *stats.DocStats) error {
	return save(w, d, st)
}

func save(w io.Writer, d *dom.Document, st *stats.DocStats) error {
	bw := bufio.NewWriter(w)
	head := magic
	if st != nil {
		head = magicV2
	}
	if _, err := bw.WriteString(head); err != nil {
		return err
	}
	enc := encoder{w: bw}
	enc.str(d.URI)
	enc.node(d.Root)
	if st != nil {
		enc.stats(st)
	}
	if enc.err != nil {
		return enc.err
	}
	return bw.Flush()
}

// Load reads a document written by Save or SaveStats and rebuilds document
// order; any persisted statistics are skipped.
func Load(r io.Reader) (*dom.Document, error) {
	d, _, err := LoadStats(r)
	return d, err
}

// LoadStats reads a document and, for a version-2 file, the statistics
// persisted with it. Version-1 files return nil statistics: the caller
// recomputes them.
func LoadStats(r io.Reader) (*dom.Document, *stats.DocStats, error) {
	br := bufio.NewReader(r)
	head := make([]byte, len(magic))
	if _, err := io.ReadFull(br, head); err != nil {
		return nil, nil, fmt.Errorf("store: reading magic: %w", err)
	}
	v2 := string(head) == magicV2
	if string(head) != magic && !v2 {
		return nil, nil, fmt.Errorf("store: bad magic %q (not a nalquery binary document)", head)
	}
	dec := decoder{r: br}
	uri := dec.str()
	b := dom.NewBuilder(uri)
	// The root record must be a document node; its children recurse.
	kind := dec.u64()
	if dec.err != nil {
		return nil, nil, dec.err
	}
	if dom.Kind(kind) != dom.KindDocument {
		return nil, nil, fmt.Errorf("store: root record has kind %d, want document", kind)
	}
	dec.str() // name (empty)
	dec.str() // data (empty)
	nattrs := dec.u64()
	if nattrs != 0 {
		return nil, nil, fmt.Errorf("store: document node with attributes")
	}
	nchildren := dec.u64()
	for i := uint64(0); i < nchildren && dec.err == nil; i++ {
		dec.child(b)
	}
	if dec.err != nil {
		return nil, nil, dec.err
	}
	var st *stats.DocStats
	if v2 {
		st = dec.stats(uri)
		if dec.err != nil {
			return nil, nil, dec.err
		}
	}
	return b.Done(), st, nil
}

// SaveFile persists a document to a file.
func SaveFile(path string, d *dom.Document) error {
	return SaveFileStats(path, d, nil)
}

// SaveFileStats persists a document with its measured statistics (version 2;
// nil statistics fall back to version 1).
func SaveFileStats(path string, d *dom.Document, st *stats.DocStats) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := save(f, d, st); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// LoadFile loads a document from a file.
func LoadFile(path string) (*dom.Document, error) {
	d, _, err := LoadFileStats(path)
	return d, err
}

// LoadFileStats loads a document and any persisted statistics from a file.
func LoadFileStats(path string) (*dom.Document, *stats.DocStats, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	defer f.Close()
	return LoadStats(f)
}

type encoder struct {
	w   *bufio.Writer
	err error
	buf [binary.MaxVarintLen64]byte
}

func (e *encoder) u64(v uint64) {
	if e.err != nil {
		return
	}
	n := binary.PutUvarint(e.buf[:], v)
	_, e.err = e.w.Write(e.buf[:n])
}

func (e *encoder) str(s string) {
	e.u64(uint64(len(s)))
	if e.err == nil {
		_, e.err = e.w.WriteString(s)
	}
}

func (e *encoder) stats(st *stats.DocStats) {
	e.u64(uint64(st.Elements))
	e.u64(uint64(len(st.Paths)))
	for _, p := range st.Paths {
		e.str(p.Path)
		e.u64(uint64(p.Count))
		e.u64(math.Float64bits(p.AvgFanout))
		e.u64(uint64(p.FirstOrder))
		e.u64(uint64(p.LastOrder))
		var flags uint64
		if p.Simple {
			flags |= flagSimple
		}
		if p.AllNumeric {
			flags |= flagNumeric
		}
		e.u64(flags)
		if p.Simple {
			e.u64(uint64(p.Distinct))
			e.str(p.Min)
			e.str(p.Max)
			if p.AllNumeric {
				e.u64(math.Float64bits(p.MinNum))
				e.u64(math.Float64bits(p.MaxNum))
			}
		}
	}
}

func (e *encoder) node(n *dom.Node) {
	if e.err != nil {
		return
	}
	e.u64(uint64(n.Kind))
	e.str(n.Name)
	e.str(n.Data)
	e.u64(uint64(len(n.Attrs)))
	for _, a := range n.Attrs {
		e.str(a.Name)
		e.str(a.Data)
	}
	e.u64(uint64(len(n.Children)))
	for _, c := range n.Children {
		e.node(c)
	}
}

type decoder struct {
	r   *bufio.Reader
	err error
}

func (d *decoder) u64() uint64 {
	if d.err != nil {
		return 0
	}
	v, err := binary.ReadUvarint(d.r)
	if err != nil {
		d.err = fmt.Errorf("store: %w", err)
	}
	return v
}

func (d *decoder) str() string {
	n := d.u64()
	if d.err != nil {
		return ""
	}
	if n > maxString {
		d.err = fmt.Errorf("store: string length %d exceeds limit", n)
		return ""
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(d.r, buf); err != nil {
		d.err = fmt.Errorf("store: %w", err)
		return ""
	}
	return string(buf)
}

func (d *decoder) stats(uri string) *stats.DocStats {
	elements := d.u64()
	npaths := d.u64()
	if d.err != nil {
		return nil
	}
	if npaths > maxPaths {
		d.err = fmt.Errorf("store: path count %d exceeds limit", npaths)
		return nil
	}
	paths := make([]*stats.PathStats, 0, npaths)
	for i := uint64(0); i < npaths && d.err == nil; i++ {
		p := &stats.PathStats{Path: d.str()}
		p.Count = int64(d.u64())
		p.AvgFanout = math.Float64frombits(d.u64())
		p.FirstOrder = int(d.u64())
		p.LastOrder = int(d.u64())
		flags := d.u64()
		p.Simple = flags&flagSimple != 0
		p.AllNumeric = flags&flagNumeric != 0
		if p.Simple {
			p.Distinct = int64(d.u64())
			p.Min = d.str()
			p.Max = d.str()
			if p.AllNumeric {
				p.MinNum = math.Float64frombits(d.u64())
				p.MaxNum = math.Float64frombits(d.u64())
			}
		}
		paths = append(paths, p)
	}
	if d.err != nil {
		return nil
	}
	return stats.FromPaths(uri, int64(elements), paths)
}

// child decodes one element or text record into the builder.
func (d *decoder) child(b *dom.Builder) {
	kind := dom.Kind(d.u64())
	name := d.str()
	data := d.str()
	nattrs := d.u64()
	if d.err != nil {
		return
	}
	switch kind {
	case dom.KindElement:
		b.Begin(name)
		for i := uint64(0); i < nattrs && d.err == nil; i++ {
			an := d.str()
			av := d.str()
			if d.err == nil {
				b.Attrib(an, av)
			}
		}
		nchildren := d.u64()
		for i := uint64(0); i < nchildren && d.err == nil; i++ {
			d.child(b)
		}
		if d.err == nil {
			b.End()
		}
	case dom.KindText:
		if nattrs != 0 {
			d.err = fmt.Errorf("store: text node with attributes")
			return
		}
		if d.u64() != 0 { // children
			d.err = fmt.Errorf("store: text node with children")
			return
		}
		b.Text(data)
	default:
		d.err = fmt.Errorf("store: unexpected node kind %d", kind)
	}
}
