// Package store implements binary persistence for documents — the stand-in
// for the paper's Natix store. Documents serialize into a compact pre-order
// record format that loads without re-parsing XML; document-order ranks are
// rebuilt on load.
//
// Format (all integers unsigned varints, strings length-prefixed):
//
//	magic "NALB1\n"
//	uri
//	node := kind name data nattrs attrs... nchildren children...
//
// The format is versioned through the magic; Load rejects unknown versions.
package store

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"os"

	"nalquery/internal/dom"
)

const magic = "NALB1\n"

// maxString guards against corrupt length prefixes.
const maxString = 1 << 28

// Save writes a document in binary form.
func Save(w io.Writer, d *dom.Document) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(magic); err != nil {
		return err
	}
	enc := encoder{w: bw}
	enc.str(d.URI)
	enc.node(d.Root)
	if enc.err != nil {
		return enc.err
	}
	return bw.Flush()
}

// Load reads a document written by Save and rebuilds document order.
func Load(r io.Reader) (*dom.Document, error) {
	br := bufio.NewReader(r)
	head := make([]byte, len(magic))
	if _, err := io.ReadFull(br, head); err != nil {
		return nil, fmt.Errorf("store: reading magic: %w", err)
	}
	if string(head) != magic {
		return nil, fmt.Errorf("store: bad magic %q (not a nalquery binary document)", head)
	}
	dec := decoder{r: br}
	uri := dec.str()
	b := dom.NewBuilder(uri)
	// The root record must be a document node; its children recurse.
	kind := dec.u64()
	if dec.err != nil {
		return nil, dec.err
	}
	if dom.Kind(kind) != dom.KindDocument {
		return nil, fmt.Errorf("store: root record has kind %d, want document", kind)
	}
	dec.str() // name (empty)
	dec.str() // data (empty)
	nattrs := dec.u64()
	if nattrs != 0 {
		return nil, fmt.Errorf("store: document node with attributes")
	}
	nchildren := dec.u64()
	for i := uint64(0); i < nchildren && dec.err == nil; i++ {
		dec.child(b)
	}
	if dec.err != nil {
		return nil, dec.err
	}
	return b.Done(), nil
}

// SaveFile persists a document to a file.
func SaveFile(path string, d *dom.Document) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := Save(f, d); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// LoadFile loads a document from a file.
func LoadFile(path string) (*dom.Document, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Load(f)
}

type encoder struct {
	w   *bufio.Writer
	err error
	buf [binary.MaxVarintLen64]byte
}

func (e *encoder) u64(v uint64) {
	if e.err != nil {
		return
	}
	n := binary.PutUvarint(e.buf[:], v)
	_, e.err = e.w.Write(e.buf[:n])
}

func (e *encoder) str(s string) {
	e.u64(uint64(len(s)))
	if e.err == nil {
		_, e.err = e.w.WriteString(s)
	}
}

func (e *encoder) node(n *dom.Node) {
	if e.err != nil {
		return
	}
	e.u64(uint64(n.Kind))
	e.str(n.Name)
	e.str(n.Data)
	e.u64(uint64(len(n.Attrs)))
	for _, a := range n.Attrs {
		e.str(a.Name)
		e.str(a.Data)
	}
	e.u64(uint64(len(n.Children)))
	for _, c := range n.Children {
		e.node(c)
	}
}

type decoder struct {
	r   *bufio.Reader
	err error
}

func (d *decoder) u64() uint64 {
	if d.err != nil {
		return 0
	}
	v, err := binary.ReadUvarint(d.r)
	if err != nil {
		d.err = fmt.Errorf("store: %w", err)
	}
	return v
}

func (d *decoder) str() string {
	n := d.u64()
	if d.err != nil {
		return ""
	}
	if n > maxString {
		d.err = fmt.Errorf("store: string length %d exceeds limit", n)
		return ""
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(d.r, buf); err != nil {
		d.err = fmt.Errorf("store: %w", err)
		return ""
	}
	return string(buf)
}

// child decodes one element or text record into the builder.
func (d *decoder) child(b *dom.Builder) {
	kind := dom.Kind(d.u64())
	name := d.str()
	data := d.str()
	nattrs := d.u64()
	if d.err != nil {
		return
	}
	switch kind {
	case dom.KindElement:
		b.Begin(name)
		for i := uint64(0); i < nattrs && d.err == nil; i++ {
			an := d.str()
			av := d.str()
			if d.err == nil {
				b.Attrib(an, av)
			}
		}
		nchildren := d.u64()
		for i := uint64(0); i < nchildren && d.err == nil; i++ {
			d.child(b)
		}
		if d.err == nil {
			b.End()
		}
	case dom.KindText:
		if nattrs != 0 {
			d.err = fmt.Errorf("store: text node with attributes")
			return
		}
		if d.u64() != 0 { // children
			d.err = fmt.Errorf("store: text node with children")
			return
		}
		b.Text(data)
	default:
		d.err = fmt.Errorf("store: unexpected node kind %d", kind)
	}
}
