package xquery

import (
	"testing"
)

// Parser units for the frontend extensions: positional for-bindings,
// multi-variable quantifiers and conditionals.

// TestParsePositionalFor: "for $x at $i in e" fills Binding.Pos.
func TestParsePositionalFor(t *testing.T) {
	e, err := ParseQuery(`for $b at $i in doc("b.xml")//book return $b`)
	if err != nil {
		t.Fatal(err)
	}
	f := e.(FLWR)
	fc, ok := f.Clauses[0].(ForClause)
	if !ok {
		t.Fatalf("first clause is %T", f.Clauses[0])
	}
	if fc.Bindings[0].Var != "b" || fc.Bindings[0].Pos != "i" {
		t.Errorf("binding = %+v, want Var=b Pos=i", fc.Bindings[0])
	}
	if got := fc.clauseString(); got != `for $b at $i in doc("b.xml")//book` {
		t.Errorf("clauseString = %q", got)
	}
}

// TestParsePositionalForOnlyInFor: "at" is rejected in let bindings.
func TestParsePositionalForOnlyInFor(t *testing.T) {
	if _, err := ParseQuery(`let $b at $i := doc("b.xml") return $b`); err == nil {
		t.Errorf("no error for 'at' in a let binding")
	}
}

// TestParseMultiVarQuant: multiple in-bindings desugar into nested
// quantifiers, innermost last.
func TestParseMultiVarQuant(t *testing.T) {
	e, err := ParseQuery(`
for $p in doc("m.xml")//pair
where some $x in $p/a, $y in $p/b satisfies $x = $y
return $p`)
	if err != nil {
		t.Fatal(err)
	}
	f := e.(FLWR)
	var wc WhereClause
	for _, c := range f.Clauses {
		if w, ok := c.(WhereClause); ok {
			wc = w
		}
	}
	outer, ok := wc.Cond.(Quant)
	if !ok {
		t.Fatalf("where cond is %T, want Quant", wc.Cond)
	}
	if outer.Var != "x" || outer.Every {
		t.Errorf("outer quantifier = %+v, want some $x", outer)
	}
	inner, ok := outer.Sat.(Quant)
	if !ok {
		t.Fatalf("outer.Sat is %T, want nested Quant", outer.Sat)
	}
	if inner.Var != "y" || inner.Every {
		t.Errorf("inner quantifier = %+v, want some $y", inner)
	}
	if _, ok := inner.Sat.(Cmp); !ok {
		t.Errorf("innermost satisfies is %T, want Cmp", inner.Sat)
	}
}

// TestParseEveryMultiVar: the every keyword distributes over all bindings.
func TestParseEveryMultiVar(t *testing.T) {
	e, err := ParseQuery(`
for $p in doc("m.xml")//pair
where every $x in $p/a, $y in $p/b satisfies $x = $y
return $p`)
	if err != nil {
		t.Fatal(err)
	}
	f := e.(FLWR)
	var wc WhereClause
	for _, c := range f.Clauses {
		if w, ok := c.(WhereClause); ok {
			wc = w
		}
	}
	outer := wc.Cond.(Quant)
	inner := outer.Sat.(Quant)
	if !outer.Every || !inner.Every {
		t.Errorf("every must distribute: outer=%v inner=%v", outer.Every, inner.Every)
	}
}

// TestParseCond: if/then/else round-trips.
func TestParseCond(t *testing.T) {
	e, err := ParseQuery(`for $b in doc("b.xml")//book
return if ($b/@year > 2000) then "new" else "old"`)
	if err != nil {
		t.Fatal(err)
	}
	f := e.(FLWR)
	c, ok := f.Return.(Cond)
	if !ok {
		t.Fatalf("return is %T, want Cond", f.Return)
	}
	if got := c.String(); got != `if ($b/@year > 2000) then "new" else "old"` {
		t.Errorf("String = %q", got)
	}
}

// TestParseCondMissingElse: the else branch defaults to the empty
// sequence.
func TestParseCondMissingElse(t *testing.T) {
	e, err := ParseQuery(`for $b in doc("b.xml")//book return if ($b/@year > 2000) then "new"`)
	if err != nil {
		t.Fatal(err)
	}
	c := e.(FLWR).Return.(Cond)
	if _, ok := c.Else.(EmptySeq); !ok {
		t.Errorf("Else is %T, want EmptySeq", c.Else)
	}
}

// TestParseCondErrors: malformed conditionals are rejected.
func TestParseCondErrors(t *testing.T) {
	for _, q := range []string{
		`for $b in doc("b")//x return if $b then 1 else 2`,
		`for $b in doc("b")//x return if ($b) 1 else 2`,
	} {
		if _, err := ParseQuery(q); err == nil {
			t.Errorf("no error for %q", q)
		}
	}
}
