// Package xquery implements the XQuery-subset frontend: lexer, parser and
// abstract syntax tree for the FLWR expressions, quantifiers and constructors
// the paper's queries use.
package xquery

import (
	"fmt"
	"strconv"
	"strings"

	"nalquery/internal/value"
)

// Expr is an XQuery AST expression.
type Expr interface {
	// String renders the expression in (pretty-printed, single-line) XQuery
	// syntax.
	String() string
}

// Module is a parsed query module: the prolog's external-variable
// declarations plus the body expression. External variables
// ("declare variable $x external;") have no value at compile time — they
// are the parameters of a prepared query, bound per execution.
type Module struct {
	// Externals lists the declared external variable names in declaration
	// order (the order that fixes their parameter slots).
	Externals []string
	// Body is the query expression after the prolog.
	Body Expr
}

func (m *Module) String() string {
	var sb strings.Builder
	for _, v := range m.Externals {
		fmt.Fprintf(&sb, "declare variable $%s external; ", v)
	}
	sb.WriteString(m.Body.String())
	return sb.String()
}

// FLWR is a for-let-where-return expression.
type FLWR struct {
	Clauses []Clause
	Return  Expr
}

// Clause is one of ForClause, LetClause or WhereClause.
type Clause interface{ clauseString() string }

// Binding binds a variable to an expression. Pos, set only on for-clause
// bindings, names the positional variable of XQuery's
// "for $x at $pos in e" form.
type Binding struct {
	Var string
	Pos string
	E   Expr
}

// ForClause iterates variables over sequences.
type ForClause struct{ Bindings []Binding }

// LetClause binds variables to values.
type LetClause struct{ Bindings []Binding }

// WhereClause filters the binding tuples.
type WhereClause struct{ Cond Expr }

// OrderSpec is one ordering key of an order by clause.
type OrderSpec struct {
	Key        Expr
	Descending bool
}

// OrderByClause is the (stable) order by clause. The paper's translation
// (Fig. 3) deliberately skips order by — it concentrates on retaining the
// input order — so this clause is an extension: it translates into an
// explicit stable Sort operator over computed sort-key attributes.
type OrderByClause struct {
	Specs []OrderSpec
	// Stable records the "stable order by" spelling; the engine's sort is
	// always stable, so the flag is informational.
	Stable bool
}

func bindingsString(kw string, bs []Binding, sep string) string {
	parts := make([]string, len(bs))
	for i, b := range bs {
		if b.Pos != "" {
			parts[i] = fmt.Sprintf("$%s at $%s %s %s", b.Var, b.Pos, sep, b.E.String())
		} else {
			parts[i] = fmt.Sprintf("$%s %s %s", b.Var, sep, b.E.String())
		}
	}
	return kw + " " + strings.Join(parts, ", ")
}

func (c ForClause) clauseString() string   { return bindingsString("for", c.Bindings, "in") }
func (c LetClause) clauseString() string   { return bindingsString("let", c.Bindings, ":=") }
func (c WhereClause) clauseString() string { return "where " + c.Cond.String() }

func (c OrderByClause) clauseString() string {
	parts := make([]string, len(c.Specs))
	for i, s := range c.Specs {
		parts[i] = s.Key.String()
		if s.Descending {
			parts[i] += " descending"
		}
	}
	kw := "order by"
	if c.Stable {
		kw = "stable order by"
	}
	return kw + " " + strings.Join(parts, ", ")
}

func (f FLWR) String() string {
	var parts []string
	for _, c := range f.Clauses {
		parts = append(parts, c.clauseString())
	}
	parts = append(parts, "return "+f.Return.String())
	return strings.Join(parts, " ")
}

// Quant is a quantified expression: some/every $Var in Range satisfies Sat.
type Quant struct {
	Every bool
	Var   string
	Range Expr
	Sat   Expr
}

func (q Quant) String() string {
	kw := "some"
	if q.Every {
		kw = "every"
	}
	return fmt.Sprintf("%s $%s in %s satisfies %s", kw, q.Var, q.Range.String(), q.Sat.String())
}

// Cond is the conditional expression if (If) then Then else Else. XQuery
// requires the else branch; the parser accepts a missing one and fills in
// the empty sequence.
type Cond struct {
	If, Then, Else Expr
}

func (c Cond) String() string {
	return fmt.Sprintf("if (%s) then %s else %s", c.If.String(), c.Then.String(), c.Else.String())
}

// EmptySeq is the literal empty sequence ().
type EmptySeq struct{}

func (EmptySeq) String() string { return "()" }

// VarRef references a variable.
type VarRef struct{ Name string }

func (v VarRef) String() string { return "$" + v.Name }

// ContextRef is the implicit context item inside a path predicate
// (e.g. the "author" in book[author = $a1] is a path from the context).
type ContextRef struct{}

func (ContextRef) String() string { return "." }

// StrLit is a string literal.
type StrLit struct{ V string }

// String renders the literal in XQuery syntax: double-quoted, with embedded
// double quotes escaped by doubling (the parser's "" escape) — not Go %q,
// whose backslash escapes the XQuery parser would read literally.
func (s StrLit) String() string {
	return `"` + strings.ReplaceAll(s.V, `"`, `""`) + `"`
}

// NumLit is a numeric literal.
type NumLit struct{ V float64 }

// String renders the literal in plain decimal notation ('f', never
// scientific): the parser only reads digits and dots, so 1e+26 would not
// round-trip.
func (n NumLit) String() string {
	if n.V == float64(int64(n.V)) {
		return strconv.FormatInt(int64(n.V), 10)
	}
	return strconv.FormatFloat(n.V, 'f', -1, 64)
}

// Step is one XPath step of a path expression, optionally carrying a
// predicate (which the normalizer later moves into a where clause).
type Step struct {
	Descendant bool // true for //
	Attribute  bool // true for @name
	Name       string
	Pred       Expr // nil if none
}

func (s Step) String() string {
	var sb strings.Builder
	if s.Descendant {
		sb.WriteString("/")
	}
	sb.WriteString("/")
	if s.Attribute {
		sb.WriteString("@")
	}
	sb.WriteString(s.Name)
	if s.Pred != nil {
		sb.WriteString("[" + s.Pred.String() + "]")
	}
	return sb.String()
}

// Path applies location steps to a base expression.
type Path struct {
	Base  Expr
	Steps []Step
}

func (p Path) String() string {
	var sb strings.Builder
	sb.WriteString(parenCmp(p.Base))
	for _, s := range p.Steps {
		sb.WriteString(s.String())
	}
	return sb.String()
}

// Call is a function call.
type Call struct {
	Fn   string
	Args []Expr
}

func (c Call) String() string {
	parts := make([]string, len(c.Args))
	for i, a := range c.Args {
		parts[i] = a.String()
	}
	return fmt.Sprintf("%s(%s)", c.Fn, strings.Join(parts, ", "))
}

// Cmp is a general comparison.
type Cmp struct {
	L, R Expr
	Op   value.CmpOp
}

func (c Cmp) String() string {
	return fmt.Sprintf("%s %s %s", parenCmp(c.L), c.Op, parenCmp(c.R))
}

// parenCmp prints an operand of a comparison or arithmetic expression,
// parenthesizing nested comparisons: they only reach that position through
// explicit parentheses in the source, and reprinting them bare would
// re-associate on reparse ((0 > 0) * 0 is not 0 > (0 * 0)). The other
// binary forms (Arith, And, Or) self-parenthesize.
func parenCmp(e Expr) string {
	if _, ok := e.(Cmp); ok {
		return "(" + e.String() + ")"
	}
	return e.String()
}

// Arith is an arithmetic expression (+, -, *, div, mod).
type Arith struct {
	L, R Expr
	Op   byte // '+', '-', '*', '/', '%'
}

func (a Arith) String() string {
	op := string(a.Op)
	if a.Op == '/' {
		op = "div"
	}
	if a.Op == '%' {
		op = "mod"
	}
	return fmt.Sprintf("(%s %s %s)", parenCmp(a.L), op, parenCmp(a.R))
}

// And is logical conjunction.
type And struct{ L, R Expr }

func (a And) String() string { return fmt.Sprintf("(%s and %s)", a.L.String(), a.R.String()) }

// Or is logical disjunction.
type Or struct{ L, R Expr }

func (o Or) String() string { return fmt.Sprintf("(%s or %s)", o.L.String(), o.R.String()) }

// Content is a piece of element-constructor content: literal text or an
// enclosed expression ({ expr }).
type Content struct {
	Text  string
	E     Expr
	IsLit bool
}

func (c Content) String() string {
	if c.IsLit {
		return c.Text
	}
	return "{ " + c.E.String() + " }"
}

// AttrCtor is an attribute constructor inside an element constructor; its
// value may mix literal text and enclosed expressions.
type AttrCtor struct {
	Name    string
	Content []Content
}

// ElemCtor is a direct element constructor.
type ElemCtor struct {
	Name    string
	Attrs   []AttrCtor
	Content []Content
}

func (e ElemCtor) String() string {
	var sb strings.Builder
	sb.WriteString("<" + e.Name)
	for _, a := range e.Attrs {
		sb.WriteString(" " + a.Name + `="`)
		for _, c := range a.Content {
			sb.WriteString(c.String())
		}
		sb.WriteString(`"`)
	}
	sb.WriteString(">")
	for _, c := range e.Content {
		sb.WriteString(c.String())
	}
	sb.WriteString("</" + e.Name + ">")
	return sb.String()
}
