package xquery

import (
	"strings"
	"testing"

	"nalquery/internal/value"
)

func parse(t *testing.T, src string) Expr {
	t.Helper()
	e, err := ParseQuery(src)
	if err != nil {
		t.Fatalf("parse %q: %v", src, err)
	}
	return e
}

func TestParseSimpleFLWR(t *testing.T) {
	e := parse(t, `let $d := doc("bib.xml") for $b in $d//book where $b/@year > 1993 return $b/title`)
	f, ok := e.(FLWR)
	if !ok {
		t.Fatalf("not a FLWR: %T", e)
	}
	if len(f.Clauses) != 3 {
		t.Fatalf("clauses: %d", len(f.Clauses))
	}
	if _, ok := f.Clauses[0].(LetClause); !ok {
		t.Fatalf("first clause must be let")
	}
	if _, ok := f.Clauses[1].(ForClause); !ok {
		t.Fatalf("second clause must be for")
	}
	w, ok := f.Clauses[2].(WhereClause)
	if !ok {
		t.Fatalf("third clause must be where")
	}
	cmp, ok := w.Cond.(Cmp)
	if !ok || cmp.Op != value.CmpGt {
		t.Fatalf("where must be > comparison: %v", w.Cond)
	}
}

func TestParseMultiBinding(t *testing.T) {
	e := parse(t, `for $a in //x, $b in $a/y return $b`)
	f := e.(FLWR)
	fc := f.Clauses[0].(ForClause)
	if len(fc.Bindings) != 2 || fc.Bindings[0].Var != "a" || fc.Bindings[1].Var != "b" {
		t.Fatalf("bindings: %v", fc.Bindings)
	}
}

func TestParsePathPredicates(t *testing.T) {
	e := parse(t, `for $b in doc("bib.xml")//book[author = $a1]/title return $b`)
	f := e.(FLWR)
	p := f.Clauses[0].(ForClause).Bindings[0].E.(Path)
	if len(p.Steps) != 2 {
		t.Fatalf("steps: %d", len(p.Steps))
	}
	if p.Steps[0].Pred == nil {
		t.Fatalf("book step must carry predicate")
	}
	inner, ok := p.Steps[0].Pred.(Cmp)
	if !ok {
		t.Fatalf("predicate: %T", p.Steps[0].Pred)
	}
	// Bare "author" parses as a context-relative path.
	rel, ok := inner.L.(Path)
	if !ok {
		t.Fatalf("relative path: %T", inner.L)
	}
	if _, ok := rel.Base.(ContextRef); !ok {
		t.Fatalf("relative path base: %T", rel.Base)
	}
}

func TestParseQuantifiers(t *testing.T) {
	e := parse(t, `for $t in //title where some $r in //review satisfies $t = $r return $t`)
	f := e.(FLWR)
	q, ok := f.Clauses[1].(WhereClause).Cond.(Quant)
	if !ok || q.Every {
		t.Fatalf("some quantifier: %#v", f.Clauses[1])
	}
	e2 := parse(t, `for $t in //title where every $r in //review satisfies $t = $r return $t`)
	q2 := e2.(FLWR).Clauses[1].(WhereClause).Cond.(Quant)
	if !q2.Every {
		t.Fatalf("every quantifier not parsed")
	}
}

func TestParseConstructor(t *testing.T) {
	e := parse(t, `for $a in //author return <author><name> { $a } </name><n2/></author>`)
	f := e.(FLWR)
	c, ok := f.Return.(ElemCtor)
	if !ok {
		t.Fatalf("return: %T", f.Return)
	}
	if c.Name != "author" || len(c.Content) != 2 {
		t.Fatalf("ctor: %v", c)
	}
	name := c.Content[0].E.(ElemCtor)
	if len(name.Content) != 1 || name.Content[0].IsLit {
		t.Fatalf("boundary whitespace must be dropped: %v", name.Content)
	}
	if _, ok := name.Content[0].E.(VarRef); !ok {
		t.Fatalf("enclosed expr: %v", name.Content[0])
	}
	empty := c.Content[1].E.(ElemCtor)
	if empty.Name != "n2" || len(empty.Content) != 0 {
		t.Fatalf("empty element ctor: %v", empty)
	}
}

func TestParseAttributeConstructor(t *testing.T) {
	e := parse(t, `for $t in //title return <minprice title="{ $t }" fixed="x"><price>1</price></minprice>`)
	c := e.(FLWR).Return.(ElemCtor)
	if len(c.Attrs) != 2 {
		t.Fatalf("attrs: %d", len(c.Attrs))
	}
	if c.Attrs[0].Name != "title" || c.Attrs[0].Content[0].IsLit {
		t.Fatalf("title attr: %v", c.Attrs[0])
	}
	if !c.Attrs[1].Content[0].IsLit || c.Attrs[1].Content[0].Text != "x" {
		t.Fatalf("fixed attr: %v", c.Attrs[1])
	}
}

func TestParseCallsAndBooleans(t *testing.T) {
	e := parse(t, `for $i in distinct-values(//itemno) where count(//bid) >= 3 and contains($i, "x") or empty(//y) return $i`)
	f := e.(FLWR)
	cond := f.Clauses[1].(WhereClause).Cond
	or, ok := cond.(Or)
	if !ok {
		t.Fatalf("top must be or: %T", cond)
	}
	and, ok := or.L.(And)
	if !ok {
		t.Fatalf("left must be and: %T", or.L)
	}
	cmp := and.L.(Cmp)
	if cmp.Op != value.CmpGe {
		t.Fatalf("count >= 3: %v", cmp)
	}
	call := cmp.L.(Call)
	if call.Fn != "count" {
		t.Fatalf("call: %v", call)
	}
	dv := f.Clauses[0].(ForClause).Bindings[0].E.(Call)
	if dv.Fn != "distinct-values" {
		t.Fatalf("distinct-values: %v", dv)
	}
}

func TestParseComments(t *testing.T) {
	e := parse(t, `(: a comment (: nested :) :) for $x in //a return $x`)
	if _, ok := e.(FLWR); !ok {
		t.Fatalf("comment handling: %T", e)
	}
}

func TestParseLtVsConstructor(t *testing.T) {
	// '<' followed by a name char in operand position starts a constructor;
	// in operator position it is a comparison.
	e := parse(t, `for $b in //book where $b/@year < 1993 return <old>{ $b }</old>`)
	f := e.(FLWR)
	cmp := f.Clauses[1].(WhereClause).Cond.(Cmp)
	if cmp.Op != value.CmpLt {
		t.Fatalf("lt: %v", cmp)
	}
	if _, ok := f.Return.(ElemCtor); !ok {
		t.Fatalf("constructor after return: %T", f.Return)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		`for $x in return $x`,
		`for x in //a return $x`,
		`for $x in //a`,
		`let $x = doc("a" return $x`,
		`for $x in //a return <a>{$x}</b>`,
		`for $x in //a return $x extra`,
		`some $x in //a`,
		`for $x in //a where $x = return $x`,
	}
	for _, src := range bad {
		if _, err := ParseQuery(src); err == nil {
			t.Errorf("expected error for %q", src)
		}
	}
}

func TestStringRoundTrip(t *testing.T) {
	// The String form of a parsed query re-parses to the same String.
	srcs := []string{
		`let $d := doc("bib.xml") for $b in $d//book where $b/@year > 1993 return $b/title`,
		`for $t in //title where some $r in //review satisfies $t = $r return <x>{ $t }</x>`,
	}
	for _, src := range srcs {
		s1 := parse(t, src).String()
		s2 := parse(t, s1).String()
		if s1 != s2 {
			t.Errorf("String round trip:\n%s\n%s", s1, s2)
		}
	}
}

func TestParseNumbersAndStrings(t *testing.T) {
	e := parse(t, `for $x in //a where $x = 3.5 and $x != 'txt' return $x`)
	cond := e.(FLWR).Clauses[1].(WhereClause).Cond.(And)
	n := cond.L.(Cmp).R.(NumLit)
	if n.V != 3.5 {
		t.Fatalf("number: %v", n)
	}
	s := cond.R.(Cmp).R.(StrLit)
	if s.V != "txt" {
		t.Fatalf("string: %v", s)
	}
	if !strings.Contains(cond.R.(Cmp).Op.String(), "!=") {
		t.Fatalf("op: %v", cond.R.(Cmp).Op)
	}
}
