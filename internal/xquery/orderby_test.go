package xquery

import (
	"testing"
)

// findOrderBy extracts the first order by clause of a parsed FLWR.
func findOrderBy(t *testing.T, q string) OrderByClause {
	t.Helper()
	e, err := ParseQuery(q)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	f, ok := e.(FLWR)
	if !ok {
		t.Fatalf("top-level is %T, want FLWR", e)
	}
	for _, c := range f.Clauses {
		if ob, ok := c.(OrderByClause); ok {
			return ob
		}
	}
	t.Fatalf("no order by clause in %q", q)
	return OrderByClause{}
}

// TestParseOrderBySimple: a single ascending key.
func TestParseOrderBySimple(t *testing.T) {
	ob := findOrderBy(t, `for $b in doc("bib.xml")//book order by $b/title return $b`)
	if len(ob.Specs) != 1 || ob.Specs[0].Descending || ob.Stable {
		t.Errorf("got %+v, want one ascending non-stable key", ob)
	}
}

// TestParseOrderByDescending: the descending modifier.
func TestParseOrderByDescending(t *testing.T) {
	ob := findOrderBy(t, `for $b in doc("p.xml")//book order by decimal($b/price) descending return $b`)
	if len(ob.Specs) != 1 || !ob.Specs[0].Descending {
		t.Errorf("got %+v, want one descending key", ob)
	}
}

// TestParseOrderByMultipleKeys: comma-separated keys with mixed modifiers.
func TestParseOrderByMultipleKeys(t *testing.T) {
	ob := findOrderBy(t, `for $b in doc("p.xml")//book
		order by $b/author ascending, decimal($b/price) descending, $b/title
		return $b`)
	if len(ob.Specs) != 3 {
		t.Fatalf("got %d keys, want 3", len(ob.Specs))
	}
	wantDesc := []bool{false, true, false}
	for i, w := range wantDesc {
		if ob.Specs[i].Descending != w {
			t.Errorf("key %d descending = %v, want %v", i, ob.Specs[i].Descending, w)
		}
	}
}

// TestParseStableOrderBy: the stable spelling sets the flag.
func TestParseStableOrderBy(t *testing.T) {
	ob := findOrderBy(t, `for $b in doc("p.xml")//book stable order by $b/title return $b`)
	if !ob.Stable {
		t.Errorf("Stable = false, want true")
	}
}

// TestParseOrderByRoundTrip: the clause renders back to source syntax.
func TestParseOrderByRoundTrip(t *testing.T) {
	ob := findOrderBy(t, `for $b in doc("p.xml")//book order by $b/t descending, $b/u return $b`)
	s := ob.clauseString()
	if s != "order by $b/t descending, $b/u" {
		t.Errorf("clauseString = %q", s)
	}
}

// TestParseOrderElementName: "order" as an element name in a path must not
// be mistaken for the clause keyword.
func TestParseOrderElementName(t *testing.T) {
	e, err := ParseQuery(`for $o in doc("s.xml")//order where $o/total > 10 return $o`)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	f, ok := e.(FLWR)
	if !ok {
		t.Fatalf("top-level is %T, want FLWR", e)
	}
	for _, c := range f.Clauses {
		if _, ok := c.(OrderByClause); ok {
			t.Errorf("path element 'order' misparsed as order by clause")
		}
	}
}

// TestParseOrderByErrors: malformed clauses report errors.
func TestParseOrderByErrors(t *testing.T) {
	for _, q := range []string{
		`for $b in doc("p.xml")//book order $b/t return $b`,
		`for $b in doc("p.xml")//book order by return $b`,
	} {
		if _, err := ParseQuery(q); err == nil {
			t.Errorf("no error for %q", q)
		}
	}
}
