package xquery

import (
	"errors"
	"testing"
)

// fuzzSeeds spans the grammar: every clause kind, both quantifiers,
// positional vars, order by, constructors, prologs — plus the malformed
// shapes that historically broke the parser (unterminated strings, deep
// nesting, doubled quotes).
var fuzzSeeds = []string{
	`for $x in doc("bib.xml")//book return $x/title`,
	`for $x at $i in $d//book order by $x/title descending return <r n="{$i}">{ $x }</r>`,
	`let $d := doc("bib.xml") for $b in $d//book where $b/@year > 1993 return $b`,
	`for $a in distinct-values($d//author) where some $b in $d//book satisfies $b/author = $a return $a`,
	`for $u in $d//usertuple where every $i in $e//itemtuple satisfies $u/userid != $i/offered_by return $u/name`,
	`declare variable $min external; for $b in doc("bib.xml")//book where $b/price >= $min return $b/title`,
	`for $b in $d//book return <book year="{$b/@year}">{ $b/title, $b/author }</book>`,
	`if (count($d//book) > 0) then <some/> else <none/>`,
	`for $x in (1, 2, 3) return $x + 1`,
	`let $s := "it is ""quoted""" return $s`,
	`for $x in $d//book[price < 50][author] return $x`,
	"for $x in",
	`for $x in $d//a return <unclosed>{ $x }`,
	`let $s := "unterminated`,
	`((((((((((1))))))))))`,
	`for $x in $d//b where satisfies return $x`,
	"\x00\xff\xfe",
}

// FuzzParse asserts the parser's total-function contract on arbitrary
// input: never panic, and every rejection is a *ParseError carrying a
// valid 1-based source position.
func FuzzParse(f *testing.F) {
	for _, s := range fuzzSeeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		m, err := ParseModule(src)
		if err != nil {
			var pe *ParseError
			if !errors.As(err, &pe) {
				t.Fatalf("untyped parse error %T: %v (src=%q)", err, err, src)
			}
			if pe.Line < 1 || pe.Col < 1 {
				t.Fatalf("parse error with invalid position %d:%d (src=%q)", pe.Line, pe.Col, src)
			}
			return
		}
		if m == nil {
			t.Fatalf("nil module without error (src=%q)", src)
		}
	})
}

// FuzzRoundTrip asserts the printer/parser round-trip: whatever parses must
// reprint to a string that reparses, and the reprint must be a fixpoint
// (print ∘ parse ∘ print = print). This pins the printer against silently
// changing the meaning of accepted queries.
func FuzzRoundTrip(f *testing.F) {
	for _, s := range fuzzSeeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		m, err := ParseModule(src)
		if err != nil {
			return
		}
		printed := m.String()
		m2, err := ParseModule(printed)
		if err != nil {
			t.Fatalf("reprint does not reparse: %v\nsrc=%q\nprinted=%q", err, src, printed)
		}
		if again := m2.String(); again != printed {
			t.Fatalf("printer not a fixpoint:\nfirst=%q\nsecond=%q\nsrc=%q", printed, again, src)
		}
	})
}
