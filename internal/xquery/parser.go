package xquery

import (
	"fmt"
	"strconv"
	"strings"

	"nalquery/internal/value"
)

// ParseError is a syntax error with its source position.
type ParseError struct {
	// Line is the 1-based source line the parser stopped at.
	Line int
	// Col is the 1-based column (byte offset within the line) the parser
	// stopped at.
	Col int
	// Msg describes the syntax error.
	Msg string
}

func (e *ParseError) Error() string {
	return fmt.Sprintf("xquery: line %d:%d: %s", e.Line, e.Col, e.Msg)
}

// ParseQuery parses an XQuery-subset query into its AST. A prolog of
// external-variable declarations is accepted and discarded; use ParseModule
// to retain it.
func ParseQuery(src string) (Expr, error) {
	m, err := ParseModule(src)
	if err != nil {
		return nil, err
	}
	return m.Body, nil
}

// ParseModule parses a query module: an optional prolog of
// "declare variable $x external;" declarations followed by the query body.
func ParseModule(src string) (*Module, error) {
	p := &parser{src: src}
	m := &Module{}
	for p.peekDecl() {
		name, err := p.parseExternalDecl()
		if err != nil {
			return nil, err
		}
		for _, have := range m.Externals {
			if have == name {
				return nil, p.errf("external variable $%s declared twice", name)
			}
		}
		m.Externals = append(m.Externals, name)
	}
	e, err := p.parseExprSingle()
	if err != nil {
		return nil, err
	}
	p.skipWS()
	if p.pos < len(p.src) {
		return nil, p.errf("unexpected trailing input %q", p.remainder(20))
	}
	m.Body = e
	return m, nil
}

// peekDecl reports whether a prolog declaration starts at the cursor: the
// keyword "declare" followed by "variable" (which distinguishes it from a
// relative path over an element named declare).
func (p *parser) peekDecl() bool {
	if !p.peekKeyword("declare") {
		return false
	}
	save := p.pos
	p.takeKeyword("declare")
	ok := p.peekKeyword("variable")
	p.pos = save
	return ok
}

// parseExternalDecl parses one prolog declaration
// "declare variable $name external;". The cursor is at the keyword
// "declare"; only external variables are supported (initialized variables
// belong in a let clause).
func (p *parser) parseExternalDecl() (string, error) {
	p.takeKeyword("declare")
	if !p.takeKeyword("variable") {
		return "", p.errf("expected 'variable' after 'declare' (only external variable declarations are supported)")
	}
	if err := p.expectSym("$"); err != nil {
		return "", err
	}
	name := p.takeName()
	if name == "" {
		return "", p.errf("expected variable name after $")
	}
	if !p.takeKeyword("external") {
		return "", p.errf("expected 'external' in declaration of $%s (initialized variables belong in a let clause)", name)
	}
	if err := p.expectSym(";"); err != nil {
		return "", err
	}
	return name, nil
}

// MustParse parses a query and panics on error. For tests and examples
// with constant query strings ONLY — never call it on user input: the
// panic-freedom contract of the public boundaries (Engine.Compile,
// Prepare, the HTTP handlers) is that arbitrary input yields a typed
// *ParseError, and fuzzing enforces it (docs/FUZZING.md).
func MustParse(src string) Expr {
	e, err := ParseQuery(src)
	if err != nil {
		//nal:allow-panic Must* contract on constant test/experiment queries; user input goes through ParseQuery (mustparse confines callers)
		panic(err)
	}
	return e
}

// maxDepth bounds expression nesting. The parser (and every AST consumer
// after it: String, normalize, translate) recurses per nesting level, and a
// deep enough input — megabytes of "((((…" — exhausts the goroutine stack,
// which is a process-fatal error no recover can catch. The limit turns that
// into a typed *ParseError long before the stack is at risk; no legitimate
// query nests anywhere near this deep.
const maxDepth = 500

type parser struct {
	src   string
	pos   int
	depth int
}

func (p *parser) errf(format string, args ...interface{}) error {
	line := 1 + strings.Count(p.src[:p.pos], "\n")
	col := p.pos - strings.LastIndexByte(p.src[:p.pos], '\n')
	return &ParseError{Line: line, Col: col, Msg: fmt.Sprintf(format, args...)}
}

// enter guards one level of expression nesting; the returned func unwinds
// it. Callers must check err before recursing further.
func (p *parser) enter() (func(), error) {
	p.depth++
	if p.depth > maxDepth {
		return nil, p.errf("expression nested deeper than %d levels", maxDepth)
	}
	return func() { p.depth-- }, nil
}

func (p *parser) remainder(n int) string {
	r := p.src[p.pos:]
	if len(r) > n {
		r = r[:n] + "..."
	}
	return r
}

func (p *parser) skipWS() {
	for p.pos < len(p.src) {
		c := p.src[p.pos]
		if c == ' ' || c == '\t' || c == '\n' || c == '\r' {
			p.pos++
			continue
		}
		// XQuery comments (: ... :), possibly nested.
		if c == '(' && p.pos+1 < len(p.src) && p.src[p.pos+1] == ':' {
			depth := 0
			i := p.pos
			for i < len(p.src) {
				if strings.HasPrefix(p.src[i:], "(:") {
					depth++
					i += 2
				} else if strings.HasPrefix(p.src[i:], ":)") {
					depth--
					i += 2
					if depth == 0 {
						break
					}
				} else {
					i++
				}
			}
			p.pos = i
			continue
		}
		return
	}
}

func isNameStart(c byte) bool {
	return c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c == '_'
}

func isNameChar(c byte) bool {
	return isNameStart(c) || c >= '0' && c <= '9' || c == '-' || c == '.'
}

// peekName returns the NCName at the cursor without consuming it.
func (p *parser) peekName() string {
	p.skipWS()
	if p.pos >= len(p.src) || !isNameStart(p.src[p.pos]) {
		return ""
	}
	i := p.pos
	for i < len(p.src) && isNameChar(p.src[i]) {
		i++
	}
	return p.src[p.pos:i]
}

func (p *parser) takeName() string {
	n := p.peekName()
	p.pos += len(n)
	return n
}

// peekSym reports whether the given symbol is next (after whitespace).
func (p *parser) peekSym(sym string) bool {
	p.skipWS()
	return strings.HasPrefix(p.src[p.pos:], sym)
}

func (p *parser) takeSym(sym string) bool {
	if p.peekSym(sym) {
		p.pos += len(sym)
		return true
	}
	return false
}

func (p *parser) expectSym(sym string) error {
	if !p.takeSym(sym) {
		return p.errf("expected %q, found %q", sym, p.remainder(20))
	}
	return nil
}

// peekKeyword reports whether the next token is the given keyword (a name
// not continued by a name character).
func (p *parser) peekKeyword(kw string) bool {
	return p.peekName() == kw
}

func (p *parser) takeKeyword(kw string) bool {
	if p.peekKeyword(kw) {
		p.pos += len(kw)
		return true
	}
	return false
}

var reserved = map[string]bool{
	"for": true, "let": true, "where": true, "return": true, "in": true,
	"some": true, "every": true, "satisfies": true, "and": true, "or": true,
}

// parseExprSingle parses a full single expression (FLWR, quantifier or an
// operator expression). It counts one nesting level: every recursion into a
// subexpression passes through here or parseCtor, so the depth guard bounds
// the whole parse.
func (p *parser) parseExprSingle() (Expr, error) {
	leave, err := p.enter()
	if err != nil {
		return nil, err
	}
	defer leave()
	p.skipWS()
	switch {
	case p.peekKeyword("for"), p.peekKeyword("let"):
		return p.parseFLWR()
	case p.peekKeyword("some"), p.peekKeyword("every"):
		return p.parseQuant()
	case p.peekIf():
		return p.parseIf()
	default:
		return p.parseOr()
	}
}

// peekIf reports whether a conditional expression starts at the cursor:
// the keyword "if" immediately followed by "(" (which distinguishes it from
// an element named if in a path).
func (p *parser) peekIf() bool {
	if !p.peekKeyword("if") {
		return false
	}
	save := p.pos
	p.takeKeyword("if")
	ok := p.peekSym("(")
	p.pos = save
	return ok
}

// parseIf parses "if (cond) then e1 else e2". A missing else branch — an
// extension convenience — defaults to the empty sequence.
func (p *parser) parseIf() (Expr, error) {
	p.takeKeyword("if")
	if err := p.expectSym("("); err != nil {
		return nil, err
	}
	cond, err := p.parseExprSingle()
	if err != nil {
		return nil, err
	}
	if err := p.expectSym(")"); err != nil {
		return nil, err
	}
	if !p.takeKeyword("then") {
		return nil, p.errf("expected 'then', found %q", p.remainder(20))
	}
	thenE, err := p.parseExprSingle()
	if err != nil {
		return nil, err
	}
	var elseE Expr = EmptySeq{}
	if p.takeKeyword("else") {
		if elseE, err = p.parseExprSingle(); err != nil {
			return nil, err
		}
	}
	return Cond{If: cond, Then: thenE, Else: elseE}, nil
}

func (p *parser) parseFLWR() (Expr, error) {
	var f FLWR
	for {
		switch {
		case p.takeKeyword("for"):
			bs, err := p.parseBindings("in")
			if err != nil {
				return nil, err
			}
			f.Clauses = append(f.Clauses, ForClause{Bindings: bs})
		case p.takeKeyword("let"):
			bs, err := p.parseBindings(":=")
			if err != nil {
				return nil, err
			}
			f.Clauses = append(f.Clauses, LetClause{Bindings: bs})
		case p.takeKeyword("where"):
			cond, err := p.parseExprSingle()
			if err != nil {
				return nil, err
			}
			f.Clauses = append(f.Clauses, WhereClause{Cond: cond})
		case p.peekOrderBy():
			ob, err := p.parseOrderBy()
			if err != nil {
				return nil, err
			}
			f.Clauses = append(f.Clauses, ob)
		case p.takeKeyword("return"):
			ret, err := p.parseExprSingle()
			if err != nil {
				return nil, err
			}
			f.Return = ret
			return f, nil
		default:
			return nil, p.errf("expected for/let/where/return, found %q", p.remainder(20))
		}
	}
}

// peekOrderBy reports whether an (optionally stable) order by clause starts
// at the cursor, without consuming input.
func (p *parser) peekOrderBy() bool {
	if p.peekKeyword("order") {
		return true
	}
	if !p.peekKeyword("stable") {
		return false
	}
	// Look ahead past "stable" for "order".
	save := p.pos
	p.takeKeyword("stable")
	ok := p.peekKeyword("order")
	p.pos = save
	return ok
}

// parseOrderBy parses "[stable] order by key [ascending|descending]
// (, key [ascending|descending])*".
func (p *parser) parseOrderBy() (OrderByClause, error) {
	var ob OrderByClause
	if p.takeKeyword("stable") {
		ob.Stable = true
	}
	if !p.takeKeyword("order") {
		return ob, p.errf("expected 'order', found %q", p.remainder(20))
	}
	if !p.takeKeyword("by") {
		return ob, p.errf("expected 'by' after 'order', found %q", p.remainder(20))
	}
	for {
		key, err := p.parseExprSingle()
		if err != nil {
			return ob, err
		}
		spec := OrderSpec{Key: key}
		switch {
		case p.takeKeyword("descending"):
			spec.Descending = true
		case p.takeKeyword("ascending"):
		}
		ob.Specs = append(ob.Specs, spec)
		if !p.takeSym(",") {
			return ob, nil
		}
	}
}

func (p *parser) parseBindings(sep string) ([]Binding, error) {
	var out []Binding
	for {
		if err := p.expectSym("$"); err != nil {
			return nil, err
		}
		name := p.takeName()
		if name == "" {
			return nil, p.errf("expected variable name after $")
		}
		// Positional variable of a for binding: "for $x at $i in e".
		pos := ""
		if sep == "in" && p.takeKeyword("at") {
			if err := p.expectSym("$"); err != nil {
				return nil, err
			}
			pos = p.takeName()
			if pos == "" {
				return nil, p.errf("expected positional variable name after 'at $'")
			}
		}
		// Accept both ":=" and "=" for let (the paper's examples write
		// "for $i2 = ..." once; be forgiving for both separators).
		if !p.takeSym(sep) {
			alt := "="
			if sep == "=" {
				alt = ":="
			}
			if sep == "in" || !p.takeSym(alt) {
				return nil, p.errf("expected %q after $%s", sep, name)
			}
		}
		e, err := p.parseExprSingle()
		if err != nil {
			return nil, err
		}
		out = append(out, Binding{Var: name, Pos: pos, E: e})
		if !p.takeSym(",") {
			return out, nil
		}
	}
}

func (p *parser) parseQuant() (Expr, error) {
	every := false
	switch {
	case p.takeKeyword("some"):
	case p.takeKeyword("every"):
		every = true
	default:
		return nil, p.errf("expected some/every")
	}
	// XQuery allows several in-bindings: "some $x in e1, $y in e2
	// satisfies p". The parser desugars them into nested single-variable
	// quantifiers — some $x … (some $y … p) / every $x … (every $y … p) —
	// the form the translation and unnesting machinery handles.
	type qBinding struct {
		name string
		rng  Expr
	}
	var bindings []qBinding
	for {
		if err := p.expectSym("$"); err != nil {
			return nil, err
		}
		name := p.takeName()
		if name == "" {
			return nil, p.errf("expected variable name after $")
		}
		if !p.takeKeyword("in") {
			return nil, p.errf("expected 'in' in quantifier")
		}
		rng, err := p.parseOr() // range is an operand expression (often parenthesized FLWR or a path)
		if err != nil {
			return nil, err
		}
		bindings = append(bindings, qBinding{name: name, rng: rng})
		if !p.takeSym(",") {
			break
		}
	}
	if !p.takeKeyword("satisfies") {
		return nil, p.errf("expected 'satisfies' in quantifier")
	}
	sat, err := p.parseExprSingle()
	if err != nil {
		return nil, err
	}
	out := sat
	for i := len(bindings) - 1; i >= 0; i-- {
		out = Quant{Every: every, Var: bindings[i].name, Range: bindings[i].rng, Sat: out}
	}
	return out, nil
}

func (p *parser) parseOr() (Expr, error) {
	l, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.takeKeyword("or") {
		r, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		l = Or{L: l, R: r}
	}
	return l, nil
}

func (p *parser) parseAnd() (Expr, error) {
	l, err := p.parseCmp()
	if err != nil {
		return nil, err
	}
	for p.takeKeyword("and") {
		r, err := p.parseCmp()
		if err != nil {
			return nil, err
		}
		l = And{L: l, R: r}
	}
	return l, nil
}

func (p *parser) parseCmp() (Expr, error) {
	l, err := p.parseAdditive()
	if err != nil {
		return nil, err
	}
	p.skipWS()
	var op value.CmpOp
	switch {
	case p.takeSym("!="):
		op = value.CmpNe
	case p.takeSym("<="):
		op = value.CmpLe
	case p.takeSym(">="):
		op = value.CmpGe
	case p.takeSym("="):
		op = value.CmpEq
	case p.peekSym("<") && !p.startsCtor():
		p.pos++
		op = value.CmpLt
	case p.takeSym(">"):
		op = value.CmpGt
	default:
		return l, nil
	}
	r, err := p.parseAdditive()
	if err != nil {
		return nil, err
	}
	return Cmp{L: l, R: r, Op: op}, nil
}

func (p *parser) parseAdditive() (Expr, error) {
	l, err := p.parseMultiplicative()
	if err != nil {
		return nil, err
	}
	for {
		p.skipWS()
		var op byte
		switch {
		case p.takeSym("+"):
			op = '+'
		case p.takeSym("-"):
			op = '-'
		default:
			return l, nil
		}
		r, err := p.parseMultiplicative()
		if err != nil {
			return nil, err
		}
		l = Arith{L: l, R: r, Op: op}
	}
}

func (p *parser) parseMultiplicative() (Expr, error) {
	l, err := p.parsePath()
	if err != nil {
		return nil, err
	}
	for {
		p.skipWS()
		var op byte
		switch {
		case p.takeSym("*"):
			op = '*'
		case p.takeKeyword("div"):
			op = '/'
		case p.takeKeyword("mod"):
			op = '%'
		default:
			return l, nil
		}
		r, err := p.parsePath()
		if err != nil {
			return nil, err
		}
		l = Arith{L: l, R: r, Op: op}
	}
}

// startsCtor reports whether the cursor is at an element constructor
// (< immediately followed by a name start character).
func (p *parser) startsCtor() bool {
	p.skipWS()
	return p.pos+1 < len(p.src) && p.src[p.pos] == '<' && isNameStart(p.src[p.pos+1])
}

func (p *parser) parsePath() (Expr, error) {
	var base Expr
	p.skipWS()
	if p.peekSym("/") {
		// A leading / or // is a path from the context item.
		base = ContextRef{}
	} else {
		b, err := p.parsePrimary()
		if err != nil {
			return nil, err
		}
		base = b
	}
	var steps []Step
	for {
		desc := false
		switch {
		case p.takeSym("//"):
			desc = true
		case p.peekSym("/") && !p.peekSym("/>"):
			p.pos++
		default:
			if len(steps) == 0 {
				return base, nil
			}
			return Path{Base: base, Steps: steps}, nil
		}
		attr := p.takeSym("@")
		name := p.takeName()
		if name == "" {
			if !p.takeSym("*") {
				return nil, p.errf("expected step name after / or //")
			}
			name = "*" // wildcard step: matches any element/attribute name
		}
		st := Step{Descendant: desc, Attribute: attr, Name: name}
		if p.takeSym("[") {
			pred, err := p.parseExprSingle()
			if err != nil {
				return nil, err
			}
			if err := p.expectSym("]"); err != nil {
				return nil, err
			}
			st.Pred = pred
		}
		steps = append(steps, st)
	}
}

func (p *parser) parsePrimary() (Expr, error) {
	p.skipWS()
	if p.pos >= len(p.src) {
		return nil, p.errf("unexpected end of query")
	}
	c := p.src[p.pos]
	switch {
	case c == '$':
		p.pos++
		name := p.takeName()
		if name == "" {
			return nil, p.errf("expected variable name after $")
		}
		return VarRef{Name: name}, nil
	case c == '"' || c == '\'':
		return p.parseStringLit()
	case c >= '0' && c <= '9':
		return p.parseNumber()
	case c == '(':
		p.pos++
		if p.takeSym(")") {
			return EmptySeq{}, nil
		}
		e, err := p.parseExprSingle()
		if err != nil {
			return nil, err
		}
		if err := p.expectSym(")"); err != nil {
			return nil, err
		}
		return e, nil
	case c == '.':
		p.pos++
		return ContextRef{}, nil
	case c == '<':
		if p.startsCtor() {
			return p.parseCtor()
		}
		return nil, p.errf("unexpected '<'")
	case isNameStart(c):
		name := p.takeName()
		if reserved[name] {
			return nil, p.errf("unexpected keyword %q", name)
		}
		if p.takeSym("(") {
			var args []Expr
			if !p.takeSym(")") {
				for {
					a, err := p.parseExprSingle()
					if err != nil {
						return nil, err
					}
					args = append(args, a)
					if p.takeSym(")") {
						break
					}
					if err := p.expectSym(","); err != nil {
						return nil, err
					}
				}
			}
			return Call{Fn: name, Args: args}, nil
		}
		// A bare name is a relative child path from the context item.
		return Path{Base: ContextRef{}, Steps: []Step{{Name: name}}}, nil
	default:
		return nil, p.errf("unexpected character %q", string(c))
	}
}

// parseStringLit scans a string literal. A doubled delimiter inside the
// literal escapes it (XQuery's "" / '' escape), so every string value has a
// printable source form and parse/print round-trips.
func (p *parser) parseStringLit() (Expr, error) {
	quote := p.src[p.pos]
	p.pos++
	var sb strings.Builder
	for p.pos < len(p.src) {
		c := p.src[p.pos]
		if c == quote {
			if p.pos+1 < len(p.src) && p.src[p.pos+1] == quote {
				sb.WriteByte(quote)
				p.pos += 2
				continue
			}
			p.pos++
			return StrLit{V: sb.String()}, nil
		}
		sb.WriteByte(c)
		p.pos++
	}
	return nil, p.errf("unterminated string literal")
}

func (p *parser) parseNumber() (Expr, error) {
	start := p.pos
	for p.pos < len(p.src) && (p.src[p.pos] >= '0' && p.src[p.pos] <= '9' || p.src[p.pos] == '.') {
		p.pos++
	}
	f, err := strconv.ParseFloat(p.src[start:p.pos], 64)
	if err != nil {
		return nil, p.errf("bad number %q", p.src[start:p.pos])
	}
	return NumLit{V: f}, nil
}

// parseCtor parses a direct element constructor. The cursor is at '<'.
// Nested constructors recurse without passing through parseExprSingle, so
// the depth guard is applied here too.
func (p *parser) parseCtor() (Expr, error) {
	leave, err := p.enter()
	if err != nil {
		return nil, err
	}
	defer leave()
	p.pos++ // consume <
	name := p.takeName()
	if name == "" {
		return nil, p.errf("expected element name in constructor")
	}
	var ctor ElemCtor
	ctor.Name = name
	// Attributes.
	for {
		p.skipWS()
		if p.takeSym("/>") {
			return ctor, nil
		}
		if p.takeSym(">") {
			break
		}
		an := p.takeName()
		if an == "" {
			return nil, p.errf("expected attribute name in <%s>", name)
		}
		if err := p.expectSym("="); err != nil {
			return nil, err
		}
		p.skipWS()
		if p.pos >= len(p.src) || (p.src[p.pos] != '"' && p.src[p.pos] != '\'') {
			return nil, p.errf("expected quoted attribute value for %s", an)
		}
		quote := p.src[p.pos]
		p.pos++
		content, err := p.parseCtorText(string(quote), false)
		if err != nil {
			return nil, err
		}
		p.pos++ // closing quote
		ctor.Attrs = append(ctor.Attrs, AttrCtor{Name: an, Content: content})
	}
	// Content until matching end tag.
	for {
		content, err := p.parseCtorText("<", true)
		if err != nil {
			return nil, err
		}
		ctor.Content = append(ctor.Content, content...)
		if p.pos >= len(p.src) {
			return nil, p.errf("unterminated element <%s>", name)
		}
		// At '<'.
		if strings.HasPrefix(p.src[p.pos:], "</") {
			p.pos += 2
			end := p.takeName()
			// Be forgiving about a mismatched end tag only when it matches;
			// the paper's published Q5 text contains a typo (<new-author>
			// instead of </new-author>) that we do not replicate.
			if end != name {
				return nil, p.errf("end tag </%s> does not match <%s>", end, name)
			}
			p.skipWS()
			if err := p.expectSym(">"); err != nil {
				return nil, err
			}
			return ctor, nil
		}
		inner, err := p.parseCtor()
		if err != nil {
			return nil, err
		}
		ctor.Content = append(ctor.Content, Content{E: inner})
	}
}

// parseCtorText scans literal text mixed with enclosed expressions until the
// given stop character ('<' for element content, the quote for attribute
// values). dropWS drops whitespace-only literal chunks (boundary
// whitespace).
func (p *parser) parseCtorText(stop string, dropWS bool) ([]Content, error) {
	var out []Content
	var lit strings.Builder
	flush := func() {
		s := lit.String()
		lit.Reset()
		if s == "" {
			return
		}
		if dropWS && strings.TrimSpace(s) == "" {
			return
		}
		if dropWS {
			// Collapse boundary whitespace inside mixed content: trim text
			// adjacent to constructor boundaries.
			s = strings.TrimSpace(s)
			if s == "" {
				return
			}
		}
		out = append(out, Content{Text: s, IsLit: true})
	}
	for p.pos < len(p.src) {
		c := p.src[p.pos]
		if strings.HasPrefix(p.src[p.pos:], stop) {
			flush()
			return out, nil
		}
		if c == '{' {
			flush()
			p.pos++
			e, err := p.parseExprSingle()
			if err != nil {
				return nil, err
			}
			if err := p.expectSym("}"); err != nil {
				return nil, err
			}
			out = append(out, Content{E: e})
			continue
		}
		lit.WriteByte(c)
		p.pos++
	}
	return nil, p.errf("unterminated constructor content (looking for %q)", stop)
}
