package xquery

import (
	"math/rand"
	"strings"
	"testing"
)

// TestParserNeverPanics: the parser must reject malformed input with an
// error, never a panic. Inputs are random mutations of valid queries.
func TestParserNeverPanics(t *testing.T) {
	seeds := []string{
		`let $d := doc("bib.xml") for $b in $d//book where $b/@year > 1993 return <x>{ $b/title }</x>`,
		`for $a in distinct-values(//author) return <a>{ $a }</a>`,
		`for $t in //title where some $r in //review satisfies $t = $r return $t`,
		`for $i in //x where count(//y[z = $i]) >= 3 return $i`,
	}
	rng := rand.New(rand.NewSource(7))
	chars := []byte(`<>(){}[]$/"'=,.:;*+-@`)
	for _, seed := range seeds {
		for i := 0; i < 500; i++ {
			b := []byte(seed)
			// Apply 1-4 random mutations: delete, insert, or replace.
			for m := 0; m < 1+rng.Intn(4); m++ {
				if len(b) == 0 {
					break
				}
				pos := rng.Intn(len(b))
				switch rng.Intn(3) {
				case 0:
					b = append(b[:pos], b[pos+1:]...)
				case 1:
					b = append(b[:pos], append([]byte{chars[rng.Intn(len(chars))]}, b[pos:]...)...)
				default:
					b[pos] = chars[rng.Intn(len(chars))]
				}
			}
			func() {
				defer func() {
					if r := recover(); r != nil {
						t.Fatalf("parser panicked on %q: %v", string(b), r)
					}
				}()
				_, _ = ParseQuery(string(b))
			}()
		}
	}
}

// TestParserTruncations: every prefix of a valid query either parses or
// errors cleanly.
func TestParserTruncations(t *testing.T) {
	src := `let $d := doc("bib.xml") for $b in $d//book[author = $a] where some $x in //y satisfies $x = 1 return <e a="{ $b }">t{ $b/title }</e>`
	for i := 0; i <= len(src); i++ {
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("panic on prefix %q: %v", src[:i], r)
				}
			}()
			_, _ = ParseQuery(src[:i])
		}()
	}
}

// TestDeeplyNestedInput guards against stack abuse on pathological nesting.
func TestDeeplyNestedInput(t *testing.T) {
	depth := 2000
	src := strings.Repeat("(", depth) + "$x" + strings.Repeat(")", depth)
	if _, err := ParseQuery("for $x in //a where $y = " + src + " return $x"); err != nil {
		// An error is acceptable; a crash is not (reaching here means no
		// panic occurred).
		t.Logf("deep nesting rejected: %v", err)
	}
}
