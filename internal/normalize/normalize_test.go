package normalize

import (
	"strings"
	"testing"

	"nalquery/internal/schema"
	"nalquery/internal/xquery"
)

func norm(t *testing.T, src string) xquery.FLWR {
	t.Helper()
	ast, err := xquery.ParseQuery(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	out := NormalizeWithCatalog(ast, schema.UseCases())
	f, ok := out.(xquery.FLWR)
	if !ok {
		t.Fatalf("normalized form is %T", out)
	}
	return f
}

// clauseKinds summarizes the clause sequence as a string like "for,let,where".
func clauseKinds(f xquery.FLWR) string {
	var parts []string
	for _, c := range f.Clauses {
		switch c.(type) {
		case xquery.ForClause:
			parts = append(parts, "for")
		case xquery.LetClause:
			parts = append(parts, "let")
		case xquery.WhereClause:
			parts = append(parts, "where")
		}
	}
	return strings.Join(parts, ",")
}

func TestPredicateMovesToWhere(t *testing.T) {
	f := norm(t, `let $d := doc("bib.xml") for $b in $d//book[author = $x] return $b`)
	if !strings.Contains(clauseKinds(f), "where") {
		t.Fatalf("path predicate must move to where: %s (%s)", clauseKinds(f), f)
	}
	// No residual predicates in any path.
	if strings.Contains(f.String(), "[") {
		t.Fatalf("residual predicate: %s", f)
	}
}

func TestPredicateSplitKeepsTrailingSteps(t *testing.T) {
	f := norm(t, `let $d := doc("p.xml") for $p in $d//book[title = $t]/price return $p`)
	s := f.String()
	if !strings.Contains(s, "/price") {
		t.Fatalf("trailing step lost: %s", s)
	}
	if !strings.Contains(s, "/title") {
		t.Fatalf("predicate path must be hoisted into a let: %s", s)
	}
	if rv, ok := f.Return.(xquery.VarRef); !ok || rv.Name != "p" {
		t.Fatalf("return variable: %s", f.Return)
	}
}

func TestNestedFLWRMovesToLet(t *testing.T) {
	f := norm(t, `
let $d1 := doc("bib.xml")
for $a in distinct-values($d1//author)
return <author>{ for $b in $d1//book return $b/title }</author>`)
	// The constructor content must be a variable reference now.
	ctor := f.Return.(xquery.ElemCtor)
	if _, ok := ctor.Content[0].E.(xquery.VarRef); !ok {
		t.Fatalf("nested FLWR must move to a let: %s", f)
	}
	if !strings.Contains(clauseKinds(f), "let") {
		t.Fatalf("missing let clause: %s", clauseKinds(f))
	}
}

func TestNestedQueryReturnsVariable(t *testing.T) {
	f := norm(t, `
let $d1 := doc("bib.xml")
for $a in distinct-values($d1//author)
return <a>{ for $b in $d1//book return $b/title }</a>`)
	// Find the let-bound nested FLWR and check its return clause.
	for _, c := range f.Clauses {
		let, ok := c.(xquery.LetClause)
		if !ok {
			continue
		}
		for _, b := range let.Bindings {
			if inner, ok := b.E.(xquery.FLWR); ok {
				if _, isVar := inner.Return.(xquery.VarRef); !isVar {
					t.Fatalf("nested return must be a variable: %s", inner.Return)
				}
			}
		}
	}
}

func TestDocVarLocalization(t *testing.T) {
	f := norm(t, `
let $d1 := doc("bib.xml")
for $a in distinct-values($d1//author)
return <a>{ for $b in $d1//book return $b/title }</a>`)
	// The nested block must contain its own doc("bib.xml") binding.
	found := false
	for _, c := range f.Clauses {
		let, ok := c.(xquery.LetClause)
		if !ok {
			continue
		}
		for _, b := range let.Bindings {
			if inner, ok := b.E.(xquery.FLWR); ok {
				if strings.Contains(inner.String(), `doc("bib.xml")`) {
					found = true
				}
			}
		}
	}
	if !found {
		t.Fatalf("nested block lacks local doc() binding: %s", f)
	}
}

func TestAggregateHoistedFromWhere(t *testing.T) {
	f := norm(t, `
let $d := doc("bids.xml")
for $i in distinct-values($d//itemno)
where count($d//bidtuple[itemno = $i]) >= 3
return $i`)
	kinds := clauseKinds(f)
	if !strings.Contains(kinds, "let,where") {
		t.Fatalf("aggregate must be hoisted into a let before the where: %s\n%s", kinds, f)
	}
	// The where condition compares a variable now.
	var wc xquery.WhereClause
	for _, c := range f.Clauses {
		if w, ok := c.(xquery.WhereClause); ok {
			wc = w
		}
	}
	cmp, ok := wc.Cond.(xquery.Cmp)
	if !ok {
		t.Fatalf("where: %s", wc.Cond)
	}
	if _, ok := cmp.L.(xquery.VarRef); !ok {
		t.Fatalf("where left side must be the hoisted variable: %s", cmp.L)
	}
}

func TestExistsBecomesQuantifier(t *testing.T) {
	f := norm(t, `
let $d := doc("bib.xml")
for $b in $d//book
where exists(for $r in $d//review return $r)
return $b`)
	var q xquery.Quant
	for _, c := range f.Clauses {
		if w, ok := c.(xquery.WhereClause); ok {
			q, _ = w.Cond.(xquery.Quant)
		}
	}
	if q.Var == "" || q.Every {
		t.Fatalf("exists must become a some quantifier: %s", f)
	}
}

func TestEmptyBecomesUniversal(t *testing.T) {
	f := norm(t, `
let $d := doc("bib.xml")
for $b in $d//book
where empty(for $r in $d//review return $r)
return $b`)
	var q xquery.Quant
	for _, c := range f.Clauses {
		if w, ok := c.(xquery.WhereClause); ok {
			q, _ = w.Cond.(xquery.Quant)
		}
	}
	if !q.Every {
		t.Fatalf("empty must become an every quantifier with false(): %s", f)
	}
	if call, ok := q.Sat.(xquery.Call); !ok || call.Fn != "false" {
		t.Fatalf("empty satisfies must be false(): %s", q.Sat)
	}
}

func TestQuantifierRangeEmbedded(t *testing.T) {
	f := norm(t, `
let $d := doc("bib.xml")
for $t in $d//book/title
where some $t2 in doc("reviews.xml")//entry/title satisfies $t = $t2
return $t`)
	var q xquery.Quant
	for _, c := range f.Clauses {
		if w, ok := c.(xquery.WhereClause); ok {
			q, _ = w.Cond.(xquery.Quant)
		}
	}
	rng, ok := q.Range.(xquery.FLWR)
	if !ok {
		t.Fatalf("range must be embedded in a FLWR: %T", q.Range)
	}
	if _, ok := rng.Return.(xquery.VarRef); !ok {
		t.Fatalf("range must return a variable: %s", rng.Return)
	}
	// The correlation predicate moved into the range for the existential.
	if !strings.Contains(rng.String(), "where") {
		t.Fatalf("correlation must move into range: %s", rng)
	}
	if call, ok := q.Sat.(xquery.Call); !ok || call.Fn != "true" {
		t.Fatalf("satisfies must become true(): %s", q.Sat)
	}
}

func TestUniversalKeepsSatisfies(t *testing.T) {
	// For every, non-correlating satisfies conjuncts must NOT move into the
	// range (that would change semantics).
	f := norm(t, `
let $d := doc("bib.xml")
for $a in distinct-values($d//author)
where every $b in doc("bib.xml")//book[author = $a] satisfies $b/@year > 1993
return $a`)
	var q xquery.Quant
	for _, c := range f.Clauses {
		if w, ok := c.(xquery.WhereClause); ok {
			q, _ = w.Cond.(xquery.Quant)
		}
	}
	if !q.Every {
		t.Fatalf("must stay universal")
	}
	// After narrowing the satisfies references the quantifier variable.
	if !strings.Contains(q.Sat.String(), "$"+q.Var) {
		t.Fatalf("satisfies must reference the quantifier variable: %s", q.Sat)
	}
	if !strings.Contains(q.Sat.String(), "> 1993") {
		t.Fatalf("year predicate must remain in satisfies: %s", q.Sat)
	}
	// The range was narrowed to the year attribute.
	rng := q.Range.(xquery.FLWR)
	if !strings.Contains(rng.String(), "@year") {
		t.Fatalf("range must bind the year attribute: %s", rng)
	}
}

func TestLetPathBecomesForInQuantifierRange(t *testing.T) {
	f := norm(t, `
let $d := doc("bib.xml")
for $a in distinct-values($d//author)
where every $b in doc("bib.xml")//book[author = $a] satisfies $b/@year > 1993
return $a`)
	var q xquery.Quant
	for _, c := range f.Clauses {
		if w, ok := c.(xquery.WhereClause); ok {
			q, _ = w.Cond.(xquery.Quant)
		}
	}
	rng := q.Range.(xquery.FLWR)
	// The hoisted author path must be a for binding ("we unnest the authors
	// of the correlation predicate").
	forCount := 0
	for _, c := range rng.Clauses {
		if _, ok := c.(xquery.ForClause); ok {
			forCount++
		}
	}
	if forCount < 2 {
		t.Fatalf("author path must be unnested into a for: %s", rng)
	}
}

func TestAggLetFusion(t *testing.T) {
	f := norm(t, `
let $d1 := doc("prices.xml")
for $t1 in distinct-values($d1//book/title)
let $p1 := (let $d2 := doc("prices.xml")
            for $b2 in $d2//book
            return $b2/price)
return <m>{ min($p1) }</m>`)
	s := f.String()
	// $p1 must be fused away: min applied directly to the FLWR.
	if strings.Contains(s, "$p1") {
		t.Fatalf("single-use let must fuse into the aggregate: %s", s)
	}
	if !strings.Contains(s, "min(") {
		t.Fatalf("aggregate lost: %s", s)
	}
}

func TestFreshVariablesDoNotCollide(t *testing.T) {
	// Variables like b_1 pre-existing in the query must not collide with
	// generated names.
	f := norm(t, `
let $b_1 := doc("bib.xml")
for $b in $b_1//book[title = $x]
return $b`)
	s := f.String()
	if strings.Count(s, "$b_1 :=") > 1 {
		t.Fatalf("fresh variable collision: %s", s)
	}
}

func TestIdempotence(t *testing.T) {
	src := `
let $d1 := doc("bib.xml")
for $a1 in distinct-values($d1//author)
return
  <author><name>{ $a1 }</name>
  { let $d2 := doc("bib.xml")
    for $b2 in $d2//book[$a1 = author]
    return $b2/title }
  </author>`
	f1 := norm(t, src)
	ast2, err := xquery.ParseQuery(f1.String())
	if err != nil {
		t.Fatalf("re-parse normalized: %v\n%s", err, f1)
	}
	f2 := NormalizeWithCatalog(ast2, schema.UseCases())
	// Normalizing a normalized query must not change its structure (modulo
	// fresh variable numbering): same clause kinds.
	k1 := clauseKinds(f1)
	k2 := clauseKinds(f2.(xquery.FLWR))
	if k1 != k2 {
		t.Fatalf("normalization not idempotent: %s vs %s", k1, k2)
	}
}
