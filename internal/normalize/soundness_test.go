package normalize

import (
	"strings"
	"testing"

	"nalquery/internal/schema"
	"nalquery/internal/xquery"
)

// TestUniversalNarrowingRequiresRequiredAttr: narrowing an every-range to an
// attribute is only sound when the DTD guarantees the attribute exists on
// every range item (an item without it makes the original ∀ false but would
// vanish from the narrowed range).
func TestUniversalNarrowingRequiresRequiredAttr(t *testing.T) {
	src := `
let $d := doc("bib.xml")
for $a in distinct-values($d//author)
where every $b in doc("bib.xml")//book[author = $a] satisfies $b/@year > 1993
return $a`
	ast, err := xquery.ParseQuery(src)
	if err != nil {
		t.Fatal(err)
	}

	// With the use-case DTD (@year #REQUIRED): narrowing applies.
	withFacts := NormalizeWithCatalog(ast, schema.UseCases()).(xquery.FLWR)
	if !containsNarrowedRange(withFacts) {
		t.Fatalf("narrowing must apply with #REQUIRED fact:\n%s", withFacts)
	}

	// Without facts: the rewrite must be skipped (unsound in general).
	withoutFacts := Normalize(ast).(xquery.FLWR)
	if containsNarrowedRange(withoutFacts) {
		t.Fatalf("narrowing must be skipped without facts:\n%s", withoutFacts)
	}

	// With facts but the attribute declared optional: skipped too.
	optional := schema.NewCatalog()
	f := optional.Doc("bib.xml")
	f.Child("bib", "book", 0, -1)
	f.Child("book", "author", 0, -1)
	f.Attr("book", "year", false) // #IMPLIED
	withOptional := NormalizeWithCatalog(ast, optional).(xquery.FLWR)
	if containsNarrowedRange(withOptional) {
		t.Fatalf("narrowing must be skipped for optional attributes:\n%s", withOptional)
	}
}

// TestExistentialNarrowingAlwaysApplies: for some-quantifiers, narrowing is
// sound regardless of attribute facts.
func TestExistentialNarrowingAlwaysApplies(t *testing.T) {
	src := `
let $d := doc("bib.xml")
for $a in distinct-values($d//author)
where some $b in doc("bib.xml")//book[author = $a] satisfies $b/@year > 1999
return $a`
	ast, err := xquery.ParseQuery(src)
	if err != nil {
		t.Fatal(err)
	}
	f := Normalize(ast).(xquery.FLWR)
	if !containsNarrowedRange(f) {
		t.Fatalf("some-narrowing needs no facts:\n%s", f)
	}
}

// containsNarrowedRange reports whether any quantifier in the query's where
// clauses ranges over @year values (the narrowed form).
func containsNarrowedRange(f xquery.FLWR) bool {
	for _, c := range f.Clauses {
		w, ok := c.(xquery.WhereClause)
		if !ok {
			continue
		}
		q, ok := w.Cond.(xquery.Quant)
		if !ok {
			continue
		}
		rng, ok := q.Range.(xquery.FLWR)
		if !ok {
			continue
		}
		// Narrowed: the range binds @year values (for existentials the
		// comparison may additionally have moved into the range, leaving
		// satisfies as true()).
		if strings.Contains(rng.String(), "@year") {
			return true
		}
	}
	return false
}
