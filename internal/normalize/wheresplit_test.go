package normalize

import (
	"testing"

	"nalquery/internal/xquery"
)

// Tests for the conjunctive-where splitting that keeps quantifier
// conjuncts matchable by Eqvs. 6/7.

func whereClauses(t *testing.T, q string) []xquery.WhereClause {
	t.Helper()
	ast, err := xquery.ParseQuery(q)
	if err != nil {
		t.Fatal(err)
	}
	f, ok := Normalize(ast).(xquery.FLWR)
	if !ok {
		t.Fatalf("normalized top is not FLWR")
	}
	var out []xquery.WhereClause
	for _, c := range f.Clauses {
		if w, ok := c.(xquery.WhereClause); ok {
			out = append(out, w)
		}
	}
	return out
}

// TestWhereSplitQuantifierConjunction: a quantifier ∧ plain-predicate where
// splits into two clauses, plain first.
func TestWhereSplitQuantifierConjunction(t *testing.T) {
	ws := whereClauses(t, `
let $d := doc("bib.xml")
for $t in $d//book/title
where (some $x in $d//entry/title satisfies $t = $x) and starts-with(string($t), "A")
return $t`)
	if len(ws) != 2 {
		t.Fatalf("got %d where clauses, want 2 (split)", len(ws))
	}
	if _, isQuant := ws[0].Cond.(xquery.Quant); isQuant {
		t.Errorf("plain conjunct must come first; first clause is %T", ws[0].Cond)
	}
	if _, isQuant := ws[1].Cond.(xquery.Quant); !isQuant {
		t.Errorf("quantifier conjunct must come last; last clause is %T", ws[1].Cond)
	}
}

// TestWhereNoSplitWithoutQuantifier: plain conjunctions stay in one clause
// (the Sec. 2 pass handles sinking them).
func TestWhereNoSplitWithoutQuantifier(t *testing.T) {
	ws := whereClauses(t, `
let $d := doc("bib.xml")
for $b in $d//book
where $b/@year > 1990 and starts-with(string($b/title), "A")
return $b`)
	if len(ws) != 1 {
		t.Fatalf("got %d where clauses, want 1 (no quantifier, no split)", len(ws))
	}
}

// TestWhereSplitThreeConjuncts: several plain conjuncts each become their
// own clause when a quantifier forces the split.
func TestWhereSplitThreeConjuncts(t *testing.T) {
	ws := whereClauses(t, `
let $d := doc("bib.xml")
for $t in $d//book/title
where string-length(string($t)) > 2
  and (every $x in $d//entry/title satisfies $t = $x)
  and starts-with(string($t), "A")
return $t`)
	if len(ws) != 3 {
		t.Fatalf("got %d where clauses, want 3", len(ws))
	}
	quants := 0
	for _, w := range ws {
		if _, ok := w.Cond.(xquery.Quant); ok {
			quants++
		}
	}
	if quants != 1 {
		t.Errorf("got %d quantifier clauses, want 1", quants)
	}
	if _, ok := ws[len(ws)-1].Cond.(xquery.Quant); !ok {
		t.Errorf("quantifier clause must be last")
	}
}
