package normalize

import (
	"nalquery/internal/xquery"
)

// quant normalizes a quantified expression (Sec. 3 step 1: "we embed range
// expressions of quantifiers into new FLWR expressions", plus the rewrites
// of Sec. 5.5: unnest the correlation predicate and narrow the range
// variable).
func (n *Normalizer) quant(q xquery.Quant) xquery.Expr {
	rng := n.rangeToFLWR(n.expr(q.Range))
	sat := n.expr(q.Sat)

	// Under a quantifier, sequence multiplicity is irrelevant and XQuery's
	// range semantics iterates items: path-valued let bindings inside the
	// range become for bindings ("we unnest the authors of the correlation
	// predicate", Sec. 5.5).
	rng.Clauses = letPathsToFors(rng.Clauses)

	// Nested ranges get their own document bindings.
	rng = n.localizeDocVars(rng)

	rv, _ := rng.Return.(xquery.VarRef)

	// Range variable narrowing (Sec. 5.5: "since the year attribute is the
	// only information about books needed in the satisfies part of the
	// quantifier, we change the range variable"). If every use of the
	// quantifier variable in the satisfies clause is the same attribute step
	// $x/@a, bind that attribute inside the range and quantify over its
	// values.
	//
	// For existential quantifiers this is always sound: an item without the
	// attribute can never satisfy a comparison (general comparisons over the
	// empty sequence are false), and it contributes nothing after narrowing
	// either. For universal quantifiers an item without the attribute makes
	// the original ∀ false but would silently vanish from the narrowed
	// range, so the rewrite additionally requires the attribute to be
	// #REQUIRED in the DTD (true for the use-case book/@year).
	if rv.Name != "" {
		if p, ok := soleVarPath(sat, q.Var); ok && len(p.Steps) == 1 && p.Steps[0].Attribute {
			if !q.Every || n.attrRequired(rng, rv.Name, p.Steps[0].Name) {
				w := n.fresh(p.Steps[0].Name)
				rng.Clauses = append(rng.Clauses, xquery.LetClause{
					Bindings: []xquery.Binding{{Var: w, E: xquery.Path{Base: rv, Steps: p.Steps}}},
				})
				rng.Return = xquery.VarRef{Name: w}
				rv = xquery.VarRef{Name: w}
				sat = replaceVarPath(sat, q.Var, p.Steps)
			}
		}
	}

	// For existential quantifiers, conjuncts of the satisfies clause that
	// compare the quantifier variable itself move into the range's where
	// clause (Sec. 5.3: "We can move the correlation predicate into the
	// range expression"). ∃x∈D: c ∧ p ⟺ ∃x∈σc(D): p. This is unsound for
	// universal quantifiers and not applied there. Narrowing runs first, so
	// conjuncts exposed by it move too.
	if !q.Every && rv.Name != "" {
		conjuncts := splitAnd(sat)
		var kept []xquery.Expr
		var moved []xquery.Expr
		for _, c := range conjuncts {
			if cmpOnVar(c, q.Var) {
				moved = append(moved, subst(c, q.Var, rv))
			} else {
				kept = append(kept, c)
			}
		}
		if len(moved) > 0 {
			// Insert the moved predicate as a where clause before the final
			// return.
			rng.Clauses = append(rng.Clauses, xquery.WhereClause{Cond: joinAnd(moved)})
			sat = joinAnd(kept)
			if sat == nil {
				sat = xquery.Call{Fn: "true"}
			}
		}
	}

	return xquery.Quant{Every: q.Every, Var: q.Var, Range: rng, Sat: sat}
}

// attrRequired reports whether the attribute is #REQUIRED on the element
// the range variable ranges over, resolved through the range's for-binding
// chain back to a doc() call.
func (n *Normalizer) attrRequired(rng xquery.FLWR, rvName, attr string) bool {
	if n.cat == nil {
		return false
	}
	uri, elem := n.resolveRangeElem(rng, rvName, 0)
	if uri == "" || elem == "" || !n.cat.Has(uri) {
		return false
	}
	return n.cat.Doc(uri).RequiredAttr(elem, attr)
}

// resolveRangeElem traces a variable bound inside the range FLWR back to
// the document URI and element name it ranges over.
func (n *Normalizer) resolveRangeElem(rng xquery.FLWR, varName string, depth int) (uri, elem string) {
	if depth > 8 {
		return "", ""
	}
	for _, c := range rng.Clauses {
		var bindings []xquery.Binding
		switch cl := c.(type) {
		case xquery.ForClause:
			bindings = cl.Bindings
		case xquery.LetClause:
			bindings = cl.Bindings
		default:
			continue
		}
		for _, b := range bindings {
			if b.Var != varName {
				continue
			}
			p, ok := b.E.(xquery.Path)
			if !ok {
				return "", ""
			}
			// Resolve the path base to a document.
			switch base := p.Base.(type) {
			case xquery.Call:
				if base.Fn == "doc" || base.Fn == "document" {
					if len(base.Args) == 1 {
						if s, ok := base.Args[0].(xquery.StrLit); ok {
							uri = s.V
						}
					}
				}
			case xquery.VarRef:
				if call, isDoc := n.docVars[base.Name]; isDoc {
					if len(call.Args) == 1 {
						if s, ok := call.Args[0].(xquery.StrLit); ok {
							uri = s.V
						}
					}
				} else {
					// The base is itself range-bound: resolve recursively;
					// its element context is irrelevant here — the final
					// step name decides.
					uri, _ = n.resolveRangeElem(rng, base.Name, depth+1)
				}
			}
			for i := len(p.Steps) - 1; i >= 0; i-- {
				if !p.Steps[i].Attribute && p.Steps[i].Name != "" {
					elem = p.Steps[i].Name
					break
				}
			}
			return uri, elem
		}
	}
	return "", ""
}

// letPathsToFors converts let bindings over predicate-free paths into for
// bindings. This is only sound where tuple multiplicity does not matter —
// inside quantifier ranges — and matches XQuery's item-wise quantification.
func letPathsToFors(cs []xquery.Clause) []xquery.Clause {
	var out []xquery.Clause
	for _, c := range cs {
		let, ok := c.(xquery.LetClause)
		if !ok {
			out = append(out, c)
			continue
		}
		for _, b := range let.Bindings {
			if p, isPath := b.E.(xquery.Path); isPath && !hasPred(p) && !isAttrPath(p) {
				out = append(out, xquery.ForClause{Bindings: []xquery.Binding{b}})
			} else {
				out = append(out, xquery.LetClause{Bindings: []xquery.Binding{b}})
			}
		}
	}
	return out
}

// isAttrPath reports whether the path's final step is an attribute step
// (attributes are singletons; keeping them let-bound avoids needless
// unnesting).
func isAttrPath(p xquery.Path) bool {
	if len(p.Steps) == 0 {
		return false
	}
	return p.Steps[len(p.Steps)-1].Attribute
}

// rangeToFLWR embeds a quantifier range into a FLWR expression returning a
// variable.
func (n *Normalizer) rangeToFLWR(e xquery.Expr) xquery.FLWR {
	switch w := e.(type) {
	case xquery.FLWR:
		f := n.flwr(w)
		if _, ok := f.Return.(xquery.VarRef); !ok {
			rv := n.fresh("r")
			f.Clauses = append(f.Clauses, xquery.LetClause{
				Bindings: []xquery.Binding{{Var: rv, E: f.Return}},
			})
			f.Return = xquery.VarRef{Name: rv}
		}
		return f
	case xquery.Path:
		if hasPred(w) {
			return n.pathToFLWR(w)
		}
		v := n.fresh("r")
		return xquery.FLWR{
			Clauses: []xquery.Clause{xquery.ForClause{Bindings: []xquery.Binding{{Var: v, E: w}}}},
			Return:  xquery.VarRef{Name: v},
		}
	default:
		v := n.fresh("r")
		return xquery.FLWR{
			Clauses: []xquery.Clause{xquery.ForClause{Bindings: []xquery.Binding{{Var: v, E: e}}}},
			Return:  xquery.VarRef{Name: v},
		}
	}
}

func splitAnd(e xquery.Expr) []xquery.Expr {
	if a, ok := e.(xquery.And); ok {
		return append(splitAnd(a.L), splitAnd(a.R)...)
	}
	if c, ok := e.(xquery.Call); ok && c.Fn == "true" {
		return nil
	}
	return []xquery.Expr{e}
}

func joinAnd(es []xquery.Expr) xquery.Expr {
	if len(es) == 0 {
		return nil
	}
	out := es[0]
	for _, e := range es[1:] {
		out = xquery.And{L: out, R: e}
	}
	return out
}

// cmpOnVar reports whether the expression is a comparison with the bare
// variable $x on one side (the correlation-predicate shape).
func cmpOnVar(e xquery.Expr, x string) bool {
	c, ok := e.(xquery.Cmp)
	if !ok {
		return false
	}
	if v, ok := c.L.(xquery.VarRef); ok && v.Name == x {
		return !references(c.R, x)
	}
	if v, ok := c.R.(xquery.VarRef); ok && v.Name == x {
		return !references(c.L, x)
	}
	return false
}

// soleVarPath reports whether all references to $x in e have the shape
// $x/steps with one common step list, and returns that path.
func soleVarPath(e xquery.Expr, x string) (xquery.Path, bool) {
	var found *xquery.Path
	ok := true
	var walk func(e xquery.Expr)
	walk = func(e xquery.Expr) {
		switch w := e.(type) {
		case xquery.VarRef:
			if w.Name == x {
				ok = false
			}
		case xquery.Path:
			if v, isVar := w.Base.(xquery.VarRef); isVar && v.Name == x {
				if hasPred(w) {
					ok = false
					return
				}
				if found == nil {
					found = &w
				} else if pathStepsString(*found) != pathStepsString(w) {
					ok = false
				}
				return
			}
			walk(w.Base)
		case xquery.Cmp:
			walk(w.L)
			walk(w.R)
		case xquery.Cond:
			walk(w.If)
			walk(w.Then)
			walk(w.Else)
		case xquery.And:
			walk(w.L)
			walk(w.R)
		case xquery.Or:
			walk(w.L)
			walk(w.R)
		case xquery.Call:
			for _, a := range w.Args {
				walk(a)
			}
		}
	}
	walk(e)
	if !ok || found == nil {
		return xquery.Path{}, false
	}
	return *found, true
}

func pathStepsString(p xquery.Path) string {
	s := ""
	for _, st := range p.Steps {
		s += st.String()
	}
	return s
}

// replaceVarPath replaces every occurrence of $x/steps by $x.
func replaceVarPath(e xquery.Expr, x string, steps []xquery.Step) xquery.Expr {
	switch w := e.(type) {
	case xquery.Path:
		if v, isVar := w.Base.(xquery.VarRef); isVar && v.Name == x {
			return xquery.VarRef{Name: x}
		}
		return xquery.Path{Base: replaceVarPath(w.Base, x, steps), Steps: w.Steps}
	case xquery.Cmp:
		return xquery.Cmp{L: replaceVarPath(w.L, x, steps), R: replaceVarPath(w.R, x, steps), Op: w.Op}
	case xquery.Cond:
		return xquery.Cond{
			If:   replaceVarPath(w.If, x, steps),
			Then: replaceVarPath(w.Then, x, steps),
			Else: replaceVarPath(w.Else, x, steps),
		}
	case xquery.And:
		return xquery.And{L: replaceVarPath(w.L, x, steps), R: replaceVarPath(w.R, x, steps)}
	case xquery.Or:
		return xquery.Or{L: replaceVarPath(w.L, x, steps), R: replaceVarPath(w.R, x, steps)}
	case xquery.Call:
		args := make([]xquery.Expr, len(w.Args))
		for i, a := range w.Args {
			args[i] = replaceVarPath(a, x, steps)
		}
		return xquery.Call{Fn: w.Fn, Args: args}
	default:
		return e
	}
}
