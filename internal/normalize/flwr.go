package normalize

import (
	"sort"

	"nalquery/internal/xquery"
)

// flwr normalizes a FLWR expression.
func (n *Normalizer) flwr(f xquery.FLWR) xquery.FLWR {
	var out xquery.FLWR
	for _, c := range f.Clauses {
		switch cl := c.(type) {
		case xquery.ForClause:
			for _, b := range cl.Bindings {
				n.forBinding(&out, b)
			}
		case xquery.LetClause:
			for _, b := range cl.Bindings {
				e := n.letExpr(b.E)
				if call, ok := e.(xquery.Call); ok && (call.Fn == "doc" || call.Fn == "document") {
					n.docVars[b.Var] = call
				}
				out.Clauses = append(out.Clauses, xquery.LetClause{
					Bindings: []xquery.Binding{{Var: b.Var, E: e}},
				})
			}
		case xquery.WhereClause:
			cond := n.where(&out, cl.Cond)
			// Split a conjunctive where into one clause per conjunct
			// (sound by σp1(σp2(e)) = σp2(σp1(e)), Sec. 2): quantifier
			// conjuncts then sit alone in their selection, the shape
			// Eqvs. 6/7 match; plain conjuncts come first so they filter
			// below the quantifier's selection.
			plain, quants := splitWhereConjuncts(cond)
			for _, c := range plain {
				out.Clauses = append(out.Clauses, xquery.WhereClause{Cond: c})
			}
			for _, c := range quants {
				out.Clauses = append(out.Clauses, xquery.WhereClause{Cond: c})
			}
		case xquery.OrderByClause:
			specs := make([]xquery.OrderSpec, len(cl.Specs))
			for i, s := range cl.Specs {
				specs[i] = xquery.OrderSpec{Key: n.expr(s.Key), Descending: s.Descending}
			}
			out.Clauses = append(out.Clauses, xquery.OrderByClause{Specs: specs, Stable: cl.Stable})
		}
	}
	out.Return = n.returnClause(&out, f.Return)
	n.fuseAggLets(&out)
	return out
}

// splitWhereConjuncts flattens a top-level conjunction into its conjuncts,
// separating those containing quantifiers from plain predicates. A
// conjunction with no quantified conjunct is kept whole — one σ with a
// conjunctive predicate is the translation's usual shape and the Sec. 2
// pass can still sink its conjuncts individually.
func splitWhereConjuncts(cond xquery.Expr) (plain, quants []xquery.Expr) {
	var flatten func(e xquery.Expr) []xquery.Expr
	flatten = func(e xquery.Expr) []xquery.Expr {
		if a, ok := e.(xquery.And); ok {
			return append(flatten(a.L), flatten(a.R)...)
		}
		return []xquery.Expr{e}
	}
	conjuncts := flatten(cond)
	anyQuant := false
	for _, c := range conjuncts {
		if containsQuant(c) {
			anyQuant = true
		}
	}
	if !anyQuant || len(conjuncts) == 1 {
		return []xquery.Expr{cond}, nil
	}
	for _, c := range conjuncts {
		if containsQuant(c) {
			quants = append(quants, c)
		} else {
			plain = append(plain, c)
		}
	}
	return plain, quants
}

// containsQuant reports whether a quantified expression occurs in e at a
// position the Eqv. 6/7 matcher would see (the conjunct itself or its
// direct negation).
func containsQuant(e xquery.Expr) bool {
	switch w := e.(type) {
	case xquery.Quant:
		return true
	case xquery.Call:
		if w.Fn == "not" && len(w.Args) == 1 {
			return containsQuant(w.Args[0])
		}
	}
	return false
}

// forBinding appends the clauses of one for-binding, splitting path
// predicates and inlining nested FLWR ranges.
func (n *Normalizer) forBinding(out *xquery.FLWR, b xquery.Binding) {
	e := n.expr(b.E)
	if b.Pos != "" {
		// Positional bindings ("for $x at $i in e") keep their range
		// intact: splitting path predicates into where clauses or inlining
		// nested FLWR ranges would change the sequence whose positions $i
		// counts.
		out.Clauses = append(out.Clauses, xquery.ForClause{
			Bindings: []xquery.Binding{{Var: b.Var, Pos: b.Pos, E: e}},
		})
		return
	}
	if p, ok := e.(xquery.Path); ok && hasPred(p) {
		e = n.pathToFLWR(p)
	}
	if inner, ok := e.(xquery.FLWR); ok {
		// for $x in (for ... return $rv) — inline the inner clauses and
		// rename the returned variable to $x. Inner variables are fresh, so
		// renaming is capture-free.
		if rv, ok := inner.Return.(xquery.VarRef); ok {
			renamed := renameVarInClauses(inner.Clauses, rv.Name, b.Var)
			out.Clauses = append(out.Clauses, renamed...)
			return
		}
		// Inner return is not a variable: hoist it into a let first.
		rv := n.fresh("r")
		inner.Clauses = append(inner.Clauses, xquery.LetClause{
			Bindings: []xquery.Binding{{Var: rv, E: inner.Return}},
		})
		inner.Return = xquery.VarRef{Name: rv}
		renamed := renameVarInClauses(inner.Clauses, rv, b.Var)
		out.Clauses = append(out.Clauses, renamed...)
		return
	}
	out.Clauses = append(out.Clauses, xquery.ForClause{
		Bindings: []xquery.Binding{{Var: b.Var, E: e}},
	})
}

// renameVarInClauses renames a binding variable within a clause list.
func renameVarInClauses(cs []xquery.Clause, from, to string) []xquery.Clause {
	var out []xquery.Clause
	toRef := xquery.VarRef{Name: to}
	for _, c := range cs {
		switch cl := c.(type) {
		case xquery.ForClause:
			var bs []xquery.Binding
			for _, b := range cl.Bindings {
				nb := xquery.Binding{Var: b.Var, Pos: b.Pos, E: subst(b.E, from, toRef)}
				if b.Var == from {
					nb.Var = to
				}
				if b.Pos == from {
					nb.Pos = to
				}
				bs = append(bs, nb)
			}
			out = append(out, xquery.ForClause{Bindings: bs})
		case xquery.LetClause:
			var bs []xquery.Binding
			for _, b := range cl.Bindings {
				nb := xquery.Binding{Var: b.Var, E: subst(b.E, from, toRef)}
				if b.Var == from {
					nb.Var = to
				}
				bs = append(bs, nb)
			}
			out = append(out, xquery.LetClause{Bindings: bs})
		case xquery.WhereClause:
			out = append(out, xquery.WhereClause{Cond: subst(cl.Cond, from, toRef)})
		case xquery.OrderByClause:
			specs := make([]xquery.OrderSpec, len(cl.Specs))
			for i, s := range cl.Specs {
				specs[i] = xquery.OrderSpec{Key: subst(s.Key, from, toRef), Descending: s.Descending}
			}
			out = append(out, xquery.OrderByClause{Specs: specs, Stable: cl.Stable})
		}
	}
	return out
}

// letExpr normalizes the bound expression of a let clause. Nested query
// blocks get local copies of the document variables they reference — the
// translation of Sec. 5 gives every nested block its own χ d:doc operator.
func (n *Normalizer) letExpr(e xquery.Expr) xquery.Expr {
	e = n.expr(e)
	switch w := e.(type) {
	case xquery.Path:
		if hasPred(w) {
			return n.localizeDocVars(n.pathToFLWR(w))
		}
		return w
	case xquery.Call:
		if aggFns[w.Fn] && len(w.Args) == 1 {
			if p, ok := w.Args[0].(xquery.Path); ok && hasPred(p) {
				return xquery.Call{Fn: w.Fn, Args: []xquery.Expr{n.localizeDocVars(n.pathToFLWR(p))}}
			}
			if f, ok := w.Args[0].(xquery.FLWR); ok {
				return xquery.Call{Fn: w.Fn, Args: []xquery.Expr{n.localizeDocVars(f)}}
			}
		}
		return w
	case xquery.FLWR:
		return n.localizeDocVars(w)
	default:
		return e
	}
}

// localizeDocVars gives a nested FLWR its own let bindings for free
// variables that the enclosing query binds to doc()/document() calls. The
// document value is identical, so the rewrite is a no-op semantically, but
// it makes the nested algebraic expression self-contained (F(e2) ∩ A(e1)
// shrinks to the correlation variables, as the unnesting conditions
// require).
func (n *Normalizer) localizeDocVars(f xquery.FLWR) xquery.FLWR {
	free := map[string]bool{}
	collectFreeVars(f, free, map[string]bool{})
	var names []string
	for v := range free {
		if _, ok := n.docVars[v]; ok {
			names = append(names, v)
		}
	}
	if len(names) == 0 {
		return f
	}
	sort.Strings(names)
	var pre []xquery.Clause
	for _, v := range names {
		local := n.fresh(v)
		pre = append(pre, xquery.LetClause{
			Bindings: []xquery.Binding{{Var: local, E: n.docVars[v]}},
		})
		f.Clauses = renameVarInClauses(f.Clauses, v, local)
		f.Return = subst(f.Return, v, xquery.VarRef{Name: local})
	}
	f.Clauses = append(pre, f.Clauses...)
	return f
}

// where normalizes a where condition, hoisting aggregate subqueries into new
// let clauses and rewriting exists/empty into quantifiers. Each subtree is
// normalized exactly once (whereWalk dispatches; quant and expr handle their
// own recursion).
func (n *Normalizer) where(out *xquery.FLWR, cond xquery.Expr) xquery.Expr {
	return n.whereWalk(out, cond)
}

func (n *Normalizer) whereWalk(out *xquery.FLWR, e xquery.Expr) xquery.Expr {
	switch w := e.(type) {
	case xquery.And:
		return xquery.And{L: n.whereWalk(out, w.L), R: n.whereWalk(out, w.R)}
	case xquery.Or:
		return xquery.Or{L: n.whereWalk(out, w.L), R: n.whereWalk(out, w.R)}
	case xquery.Call:
		switch w.Fn {
		case "exists":
			if len(w.Args) == 1 {
				return n.quant(xquery.Quant{Var: n.fresh("q"), Range: w.Args[0],
					Sat: xquery.Call{Fn: "true"}})
			}
		case "empty":
			if len(w.Args) == 1 {
				return n.quant(xquery.Quant{Every: true, Var: n.fresh("q"), Range: w.Args[0],
					Sat: xquery.Call{Fn: "false"}})
			}
		case "not":
			if len(w.Args) == 1 {
				if inner, ok := w.Args[0].(xquery.Call); ok {
					switch inner.Fn {
					case "exists":
						return n.quant(xquery.Quant{Every: true, Var: n.fresh("q"),
							Range: inner.Args[0], Sat: xquery.Call{Fn: "false"}})
					case "empty":
						return n.quant(xquery.Quant{Var: n.fresh("q"),
							Range: inner.Args[0], Sat: xquery.Call{Fn: "true"}})
					}
				}
			}
		}
		return n.expr(w)
	case xquery.Quant:
		return n.quant(w)
	case xquery.Cmp:
		return xquery.Cmp{
			L:  n.hoistAgg(out, n.expr(w.L)),
			R:  n.hoistAgg(out, n.expr(w.R)),
			Op: w.Op,
		}
	default:
		return n.expr(e)
	}
}

// hoistAgg extracts aggregate calls over nested queries from a comparison
// operand into a preceding let clause (Sec. 5.6: "we extract the left
// argument of the general comparison, turn it into a let clause").
func (n *Normalizer) hoistAgg(out *xquery.FLWR, e xquery.Expr) xquery.Expr {
	call, ok := e.(xquery.Call)
	if !ok || !aggFns[call.Fn] || len(call.Args) != 1 {
		return e
	}
	arg := call.Args[0]
	if p, isPath := arg.(xquery.Path); isPath && hasPred(p) {
		arg = n.pathToFLWR(p)
	}
	if f, isFLWR := arg.(xquery.FLWR); isFLWR {
		arg = n.localizeDocVars(f)
	} else {
		return e
	}
	v := n.fresh("c")
	out.Clauses = append(out.Clauses, xquery.LetClause{
		Bindings: []xquery.Binding{{Var: v, E: xquery.Call{Fn: call.Fn, Args: []xquery.Expr{arg}}}},
	})
	return xquery.VarRef{Name: v}
}

// returnClause normalizes the return expression: nested queries inside
// constructors move into new let clauses ("Normalization of the query first
// moves the nested FLWR expression outside the return clause into a new let
// clause", Sec. 5.1).
func (n *Normalizer) returnClause(out *xquery.FLWR, ret xquery.Expr) xquery.Expr {
	switch w := ret.(type) {
	case xquery.ElemCtor:
		return n.ctor(out, w)
	case xquery.VarRef:
		return w
	case xquery.StrLit, xquery.NumLit:
		return w
	default:
		// Anything else is hoisted into a let so that nested query blocks
		// always return a plain variable (Sec. 5.1's normalization
		// introduces $t2 := $b2/title for exactly this reason).
		e := n.letExpr(w)
		v := n.fresh("t")
		out.Clauses = append(out.Clauses, xquery.LetClause{
			Bindings: []xquery.Binding{{Var: v, E: e}},
		})
		return xquery.VarRef{Name: v}
	}
}

func (n *Normalizer) ctor(out *xquery.FLWR, c xquery.ElemCtor) xquery.ElemCtor {
	nc := xquery.ElemCtor{Name: c.Name}
	for _, a := range c.Attrs {
		na := xquery.AttrCtor{Name: a.Name}
		for _, ct := range a.Content {
			na.Content = append(na.Content, n.content(out, ct))
		}
		nc.Attrs = append(nc.Attrs, na)
	}
	for _, ct := range c.Content {
		nc.Content = append(nc.Content, n.content(out, ct))
	}
	return nc
}

func (n *Normalizer) content(out *xquery.FLWR, ct xquery.Content) xquery.Content {
	if ct.IsLit {
		return ct
	}
	switch w := ct.E.(type) {
	case xquery.VarRef:
		return ct
	case xquery.ElemCtor:
		inner := n.ctor(out, w)
		return xquery.Content{E: inner}
	default:
		e := n.letExpr(w)
		switch e.(type) {
		case xquery.FLWR, xquery.Call, xquery.Path, xquery.Quant:
			v := n.fresh("t")
			out.Clauses = append(out.Clauses, xquery.LetClause{
				Bindings: []xquery.Binding{{Var: v, E: e}},
			})
			return xquery.Content{E: xquery.VarRef{Name: v}}
		default:
			return xquery.Content{E: e}
		}
	}
}

// fuseAggLets fuses `let $p := (FLWR)` with a single consuming
// `let $m := agg($p)` into `let $m := agg(FLWR)` — Sec. 5.2's normalized
// form, which exposes the χm:agg(σ...) pattern to the unnesting rewriter.
func (n *Normalizer) fuseAggLets(f *xquery.FLWR) {
	for i := 0; i < len(f.Clauses); i++ {
		let, ok := f.Clauses[i].(xquery.LetClause)
		if !ok || len(let.Bindings) != 1 {
			continue
		}
		b := let.Bindings[0]
		inner, isFLWR := b.E.(xquery.FLWR)
		if !isFLWR {
			continue
		}
		// Count uses and find the single aggregate consumer.
		uses := 0
		consumerClause, consumerBinding := -1, -1
		for j := i + 1; j < len(f.Clauses); j++ {
			switch cl := f.Clauses[j].(type) {
			case xquery.LetClause:
				for k, lb := range cl.Bindings {
					if references(lb.E, b.Var) {
						uses++
						if call, ok := lb.E.(xquery.Call); ok && aggFns[call.Fn] &&
							len(call.Args) == 1 {
							if v, ok := call.Args[0].(xquery.VarRef); ok && v.Name == b.Var {
								consumerClause, consumerBinding = j, k
							}
						}
					}
				}
			case xquery.ForClause:
				for _, fb := range cl.Bindings {
					if references(fb.E, b.Var) {
						uses += 2 // not fusable
					}
				}
			case xquery.WhereClause:
				if references(cl.Cond, b.Var) {
					uses += 2
				}
			case xquery.OrderByClause:
				for _, s := range cl.Specs {
					if references(s.Key, b.Var) {
						uses += 2 // not fusable
					}
				}
			}
		}
		if references(f.Return, b.Var) {
			uses += 2
		}
		if uses != 1 || consumerClause < 0 {
			continue
		}
		cl := f.Clauses[consumerClause].(xquery.LetClause)
		call := cl.Bindings[consumerBinding].E.(xquery.Call)
		cl.Bindings[consumerBinding].E = xquery.Call{Fn: call.Fn, Args: []xquery.Expr{inner}}
		f.Clauses[consumerClause] = cl
		// Drop the fused let.
		f.Clauses = append(f.Clauses[:i], f.Clauses[i+1:]...)
		i--
	}
}
