// Package normalize implements the source-level normalization step of
// Sec. 3 of the paper. It rewrites an XQuery AST so that the translation of
// Sec. 3 produces algebra expressions matching the left-hand sides of the
// unnesting equivalences:
//
//  1. range expressions of quantifiers are embedded into new FLWR
//     expressions,
//  2. complex expressions are broken up with new let-bound variables,
//  3. single-use let-bound nested queries are fused into the aggregates that
//     consume them,
//  4. predicates of XPath expressions are moved into where clauses.
//
// All rewrites preserve the query semantics; they only expose structure.
package normalize

import (
	"fmt"

	"nalquery/internal/schema"
	"nalquery/internal/xquery"
)

// Normalizer rewrites queries. It hands out globally fresh variable names.
type Normalizer struct {
	used map[string]bool
	next int
	// docVars tracks let variables bound to doc()/document() calls, so that
	// nested query blocks can receive their own local document bindings.
	docVars map[string]xquery.Call
	// cat supplies the DTD facts the soundness-restricted rewrites need
	// (e.g. narrowing a universal quantifier's range variable to an
	// attribute requires the attribute to be #REQUIRED). May be nil.
	cat *schema.Catalog
}

// New creates a Normalizer.
func New() *Normalizer {
	return &Normalizer{used: map[string]bool{}, docVars: map[string]xquery.Call{}}
}

// Normalize rewrites a parsed query without DTD facts; fact-dependent
// rewrites are skipped where they would be unsound.
func Normalize(e xquery.Expr) xquery.Expr {
	return NormalizeWithCatalog(e, nil)
}

// NormalizeWithCatalog rewrites a parsed query using DTD facts to justify
// the fact-dependent rewrites of Sec. 5.5.
func NormalizeWithCatalog(e xquery.Expr, cat *schema.Catalog) xquery.Expr {
	n := New()
	n.cat = cat
	collectVars(e, n.used)
	return n.expr(e)
}

func (n *Normalizer) fresh(hint string) string {
	for {
		n.next++
		name := fmt.Sprintf("%s_%d", hint, n.next)
		if !n.used[name] {
			n.used[name] = true
			return name
		}
	}
}

func collectVars(e xquery.Expr, dst map[string]bool) {
	switch w := e.(type) {
	case xquery.FLWR:
		for _, c := range w.Clauses {
			switch cl := c.(type) {
			case xquery.ForClause:
				for _, b := range cl.Bindings {
					dst[b.Var] = true
					if b.Pos != "" {
						dst[b.Pos] = true
					}
					collectVars(b.E, dst)
				}
			case xquery.LetClause:
				for _, b := range cl.Bindings {
					dst[b.Var] = true
					collectVars(b.E, dst)
				}
			case xquery.WhereClause:
				collectVars(cl.Cond, dst)
			case xquery.OrderByClause:
				for _, s := range cl.Specs {
					collectVars(s.Key, dst)
				}
			}
		}
		collectVars(w.Return, dst)
	case xquery.Quant:
		dst[w.Var] = true
		collectVars(w.Range, dst)
		collectVars(w.Sat, dst)
	case xquery.Path:
		collectVars(w.Base, dst)
		for _, s := range w.Steps {
			if s.Pred != nil {
				collectVars(s.Pred, dst)
			}
		}
	case xquery.Call:
		for _, a := range w.Args {
			collectVars(a, dst)
		}
	case xquery.Cmp:
		collectVars(w.L, dst)
		collectVars(w.R, dst)
	case xquery.Cond:
		collectVars(w.If, dst)
		collectVars(w.Then, dst)
		collectVars(w.Else, dst)
	case xquery.Arith:
		collectVars(w.L, dst)
		collectVars(w.R, dst)
	case xquery.And:
		collectVars(w.L, dst)
		collectVars(w.R, dst)
	case xquery.Or:
		collectVars(w.L, dst)
		collectVars(w.R, dst)
	case xquery.ElemCtor:
		for _, a := range w.Attrs {
			for _, c := range a.Content {
				if !c.IsLit {
					collectVars(c.E, dst)
				}
			}
		}
		for _, c := range w.Content {
			if !c.IsLit {
				collectVars(c.E, dst)
			}
		}
	}
}

// aggFns are the item-sequence functions whose FLWR arguments the normalizer
// keeps fused for translation into f(σ...(e)) form.
var aggFns = map[string]bool{
	"count": true, "min": true, "max": true, "sum": true, "avg": true,
}

func (n *Normalizer) expr(e xquery.Expr) xquery.Expr {
	switch w := e.(type) {
	case xquery.FLWR:
		return n.flwr(w)
	case xquery.Quant:
		return n.quant(w)
	case xquery.Cmp:
		return xquery.Cmp{L: n.expr(w.L), R: n.expr(w.R), Op: w.Op}
	case xquery.Cond:
		return xquery.Cond{If: n.expr(w.If), Then: n.expr(w.Then), Else: n.expr(w.Else)}
	case xquery.Arith:
		return xquery.Arith{L: n.expr(w.L), R: n.expr(w.R), Op: w.Op}
	case xquery.And:
		return xquery.And{L: n.expr(w.L), R: n.expr(w.R)}
	case xquery.Or:
		return xquery.Or{L: n.expr(w.L), R: n.expr(w.R)}
	case xquery.Call:
		args := make([]xquery.Expr, len(w.Args))
		for i, a := range w.Args {
			args[i] = n.expr(a)
		}
		return xquery.Call{Fn: w.Fn, Args: args}
	case xquery.Path:
		return n.path(w)
	default:
		return e
	}
}

// path normalizes the base of a path; step predicates are handled where the
// path is bound (for clauses) or used (pathToFLWR).
func (n *Normalizer) path(p xquery.Path) xquery.Path {
	out := xquery.Path{Base: n.expr(p.Base)}
	for _, s := range p.Steps {
		if s.Pred != nil {
			s.Pred = n.expr(s.Pred)
		}
		out.Steps = append(out.Steps, s)
	}
	return out
}

// hasPred reports whether any step of the path carries a predicate.
func hasPred(p xquery.Path) bool {
	for _, s := range p.Steps {
		if s.Pred != nil && !isPositionalPred(s.Pred) {
			return true
		}
	}
	return false
}

// isPositionalPred recognizes the positional path predicates [n] and
// [last()]. They select by position, not by value, so the Sec. 3 rewrite
// that moves predicates into where clauses must not touch them: the path
// layer evaluates them directly.
func isPositionalPred(e xquery.Expr) bool {
	switch w := e.(type) {
	case xquery.NumLit:
		return w.V >= 1 && w.V == float64(int(w.V))
	case xquery.Call:
		return w.Fn == "last" && len(w.Args) == 0
	}
	return false
}

// pathToFLWR embeds a path with predicates into a new FLWR expression:
// base[pred]/rest becomes
//
//	for $f in base (lets for pred paths) where pred' for/return over $f/rest.
func (n *Normalizer) pathToFLWR(p xquery.Path) xquery.FLWR {
	// Find the first step with a value predicate (positional predicates
	// stay in the path).
	k := -1
	for i, s := range p.Steps {
		if s.Pred != nil && !isPositionalPred(s.Pred) {
			k = i
			break
		}
	}
	f := n.fresh("b")
	base := xquery.Path{Base: p.Base, Steps: append([]xquery.Step{}, p.Steps[:k+1]...)}
	pred := base.Steps[k].Pred
	base.Steps[k].Pred = nil

	var clauses []xquery.Clause
	clauses = append(clauses, xquery.ForClause{Bindings: []xquery.Binding{{Var: f, E: base}}})

	// Hoist context-relative paths of the predicate into lets and rewrite
	// the predicate to reference the new variables.
	pred = substContext(pred, xquery.VarRef{Name: f})
	var lets []xquery.Binding
	pred = n.hoistPredPaths(pred, f, &lets)
	if len(lets) > 0 {
		clauses = append(clauses, xquery.LetClause{Bindings: lets})
	}
	clauses = append(clauses, xquery.WhereClause{Cond: pred})

	rest := p.Steps[k+1:]
	var ret xquery.Expr = xquery.VarRef{Name: f}
	if len(rest) > 0 {
		rv := n.fresh("p")
		restPath := xquery.Path{Base: xquery.VarRef{Name: f}, Steps: append([]xquery.Step{}, rest...)}
		if hasPred(restPath) {
			inner := n.pathToFLWR(restPath)
			clauses = append(clauses, xquery.ForClause{Bindings: []xquery.Binding{{Var: rv, E: inner}}})
		} else {
			clauses = append(clauses, xquery.ForClause{Bindings: []xquery.Binding{{Var: rv, E: restPath}}})
		}
		ret = xquery.VarRef{Name: rv}
	}
	return xquery.FLWR{Clauses: clauses, Return: ret}
}

// hoistPredPaths replaces every path rooted at the context variable inside a
// predicate by a fresh let-bound variable ("we break up complex expressions
// and introduce new variables for subexpressions").
func (n *Normalizer) hoistPredPaths(e xquery.Expr, ctxVar string, lets *[]xquery.Binding) xquery.Expr {
	switch w := e.(type) {
	case xquery.Path:
		if v, ok := w.Base.(xquery.VarRef); ok && v.Name == ctxVar && !hasPred(w) {
			hint := "w"
			if len(w.Steps) > 0 {
				hint = w.Steps[len(w.Steps)-1].Name
			}
			nv := n.fresh(hint)
			*lets = append(*lets, xquery.Binding{Var: nv, E: w})
			return xquery.VarRef{Name: nv}
		}
		return w
	case xquery.Cmp:
		return xquery.Cmp{L: n.hoistPredPaths(w.L, ctxVar, lets), R: n.hoistPredPaths(w.R, ctxVar, lets), Op: w.Op}
	case xquery.Cond:
		return xquery.Cond{
			If:   n.hoistPredPaths(w.If, ctxVar, lets),
			Then: n.hoistPredPaths(w.Then, ctxVar, lets),
			Else: n.hoistPredPaths(w.Else, ctxVar, lets),
		}
	case xquery.Arith:
		return xquery.Arith{L: n.hoistPredPaths(w.L, ctxVar, lets), R: n.hoistPredPaths(w.R, ctxVar, lets), Op: w.Op}
	case xquery.And:
		return xquery.And{L: n.hoistPredPaths(w.L, ctxVar, lets), R: n.hoistPredPaths(w.R, ctxVar, lets)}
	case xquery.Or:
		return xquery.Or{L: n.hoistPredPaths(w.L, ctxVar, lets), R: n.hoistPredPaths(w.R, ctxVar, lets)}
	case xquery.Call:
		args := make([]xquery.Expr, len(w.Args))
		for i, a := range w.Args {
			args[i] = n.hoistPredPaths(a, ctxVar, lets)
		}
		return xquery.Call{Fn: w.Fn, Args: args}
	default:
		return e
	}
}

// substContext replaces the implicit context item of a predicate by the
// given expression.
func substContext(e xquery.Expr, to xquery.Expr) xquery.Expr {
	switch w := e.(type) {
	case xquery.ContextRef:
		return to
	case xquery.Path:
		if _, ok := w.Base.(xquery.ContextRef); ok {
			return xquery.Path{Base: to, Steps: w.Steps}
		}
		return w
	case xquery.Cmp:
		return xquery.Cmp{L: substContext(w.L, to), R: substContext(w.R, to), Op: w.Op}
	case xquery.Cond:
		return xquery.Cond{If: substContext(w.If, to), Then: substContext(w.Then, to), Else: substContext(w.Else, to)}
	case xquery.Arith:
		return xquery.Arith{L: substContext(w.L, to), R: substContext(w.R, to), Op: w.Op}
	case xquery.And:
		return xquery.And{L: substContext(w.L, to), R: substContext(w.R, to)}
	case xquery.Or:
		return xquery.Or{L: substContext(w.L, to), R: substContext(w.R, to)}
	case xquery.Call:
		args := make([]xquery.Expr, len(w.Args))
		for i, a := range w.Args {
			args[i] = substContext(a, to)
		}
		return xquery.Call{Fn: w.Fn, Args: args}
	default:
		return e
	}
}

// subst replaces free occurrences of $from by the expression to.
func subst(e xquery.Expr, from string, to xquery.Expr) xquery.Expr {
	switch w := e.(type) {
	case xquery.VarRef:
		if w.Name == from {
			return to
		}
		return w
	case xquery.Path:
		return xquery.Path{Base: subst(w.Base, from, to), Steps: w.Steps}
	case xquery.Cmp:
		return xquery.Cmp{L: subst(w.L, from, to), R: subst(w.R, from, to), Op: w.Op}
	case xquery.Cond:
		return xquery.Cond{If: subst(w.If, from, to), Then: subst(w.Then, from, to), Else: subst(w.Else, from, to)}
	case xquery.Arith:
		return xquery.Arith{L: subst(w.L, from, to), R: subst(w.R, from, to), Op: w.Op}
	case xquery.And:
		return xquery.And{L: subst(w.L, from, to), R: subst(w.R, from, to)}
	case xquery.Or:
		return xquery.Or{L: subst(w.L, from, to), R: subst(w.R, from, to)}
	case xquery.Call:
		args := make([]xquery.Expr, len(w.Args))
		for i, a := range w.Args {
			args[i] = subst(a, from, to)
		}
		return xquery.Call{Fn: w.Fn, Args: args}
	case xquery.Quant:
		if w.Var == from {
			return w
		}
		return xquery.Quant{Every: w.Every, Var: w.Var, Range: subst(w.Range, from, to), Sat: subst(w.Sat, from, to)}
	default:
		return e
	}
}

// references reports whether $name occurs free in e.
func references(e xquery.Expr, name string) bool {
	vars := map[string]bool{}
	collectFreeVars(e, vars, map[string]bool{})
	return vars[name]
}

func collectFreeVars(e xquery.Expr, dst, bound map[string]bool) {
	switch w := e.(type) {
	case xquery.VarRef:
		if !bound[w.Name] {
			dst[w.Name] = true
		}
	case xquery.Path:
		collectFreeVars(w.Base, dst, bound)
		for _, s := range w.Steps {
			if s.Pred != nil {
				collectFreeVars(s.Pred, dst, bound)
			}
		}
	case xquery.Cmp:
		collectFreeVars(w.L, dst, bound)
		collectFreeVars(w.R, dst, bound)
	case xquery.Cond:
		collectFreeVars(w.If, dst, bound)
		collectFreeVars(w.Then, dst, bound)
		collectFreeVars(w.Else, dst, bound)
	case xquery.Arith:
		collectFreeVars(w.L, dst, bound)
		collectFreeVars(w.R, dst, bound)
	case xquery.And:
		collectFreeVars(w.L, dst, bound)
		collectFreeVars(w.R, dst, bound)
	case xquery.Or:
		collectFreeVars(w.L, dst, bound)
		collectFreeVars(w.R, dst, bound)
	case xquery.Call:
		for _, a := range w.Args {
			collectFreeVars(a, dst, bound)
		}
	case xquery.Quant:
		collectFreeVars(w.Range, dst, bound)
		b2 := copyBound(bound)
		b2[w.Var] = true
		collectFreeVars(w.Sat, dst, b2)
	case xquery.FLWR:
		b2 := copyBound(bound)
		for _, c := range w.Clauses {
			switch cl := c.(type) {
			case xquery.ForClause:
				for _, b := range cl.Bindings {
					collectFreeVars(b.E, dst, b2)
					b2[b.Var] = true
					if b.Pos != "" {
						b2[b.Pos] = true
					}
				}
			case xquery.LetClause:
				for _, b := range cl.Bindings {
					collectFreeVars(b.E, dst, b2)
					b2[b.Var] = true
				}
			case xquery.WhereClause:
				collectFreeVars(cl.Cond, dst, b2)
			case xquery.OrderByClause:
				for _, s := range cl.Specs {
					collectFreeVars(s.Key, dst, b2)
				}
			}
		}
		collectFreeVars(w.Return, dst, b2)
	case xquery.ElemCtor:
		for _, a := range w.Attrs {
			for _, c := range a.Content {
				if !c.IsLit {
					collectFreeVars(c.E, dst, bound)
				}
			}
		}
		for _, c := range w.Content {
			if !c.IsLit {
				collectFreeVars(c.E, dst, bound)
			}
		}
	}
}

func copyBound(m map[string]bool) map[string]bool {
	out := make(map[string]bool, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}
