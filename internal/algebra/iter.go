package algebra

import (
	"nalquery/internal/value"
)

// Iterator is the pull-based physical operator interface (open-next-close),
// the execution model of the Natix engine the paper evaluates on ("NAL is
// close to our physical algebra", Sec. 1). Streamable operators (σ, Π, χ,
// Υ, Ξ, joins on their probe side) pull one tuple at a time; pipeline
// breakers (grouping, µ over grouped input, the build side of a hash join)
// materialize exactly the state the algorithm requires.
type Iterator interface {
	// Next returns the next tuple of the sequence; ok is false at the end.
	Next() (t value.Tuple, ok bool)
	// Close releases resources. Close is idempotent.
	Close()
}

// OpenIter builds the iterator tree for a plan under the given context and
// free-variable environment. Plans whose schema resolves (see
// ResolveSchema) execute on the slot-based row engine of rowiter.go, with
// map tuples materialized only at this boundary; unresolvable plans run the
// legacy map-based iterators.
func OpenIter(op Op, ctx *Ctx, env value.Tuple) Iterator {
	// A resolvable but non-native root would only round-trip every tuple
	// map→row→map through the conversion shim; run it on the legacy engine
	// directly (its children still dispatch through OpenIter and go
	// slot-native where they can).
	if sc, ok := ResolveSchema(op); ok && sc.Native {
		return &rowTupleAdapter{in: openRowsSchema(op, sc, ctx, env)}
	}
	return openLegacy(op, ctx, env)
}

// rowTupleAdapter converts the row engine's output to map tuples at the
// iterator API boundary.
type rowTupleAdapter struct{ in RowIter }

func (a *rowTupleAdapter) Next() (value.Tuple, bool) {
	r, ok := a.in.Next()
	if !ok {
		return nil, false
	}
	return r.Tuple(), true
}

func (a *rowTupleAdapter) Close() { a.in.Close() }

// openLegacy builds the map-based iterator tree — the fallback engine for
// plans without a resolvable schema, and the executor behind the row
// engine's conversion shim.
func openLegacy(op Op, ctx *Ctx, env value.Tuple) Iterator {
	switch w := op.(type) {
	case Singleton:
		return &sliceIter{ts: value.TupleSeq{value.EmptyTuple()}}
	case Select:
		return &selectIter{in: OpenIter(w.In, ctx, env), pred: w.Pred, ctx: ctx, env: env}
	case Project:
		return &mapTupleIter{in: OpenIter(w.In, ctx, env), f: func(t value.Tuple) value.Tuple {
			return t.Project(w.Names)
		}}
	case ProjectDrop:
		return &mapTupleIter{in: OpenIter(w.In, ctx, env), f: func(t value.Tuple) value.Tuple {
			return t.Drop(w.Names)
		}}
	case ProjectRename:
		return &mapTupleIter{in: OpenIter(w.In, ctx, env), f: func(t value.Tuple) value.Tuple {
			return renameTuple(t, w.Pairs)
		}}
	case ProjectDistinct:
		return newDistinctIter(OpenIter(w.In, ctx, env), w.Pairs, ctx)
	case Map:
		return &mapTupleIter{in: OpenIter(w.In, ctx, env), f: func(t value.Tuple) value.Tuple {
			nt := t.Copy()
			nt[w.Attr] = w.E.Eval(ctx, env.Concat(t))
			return nt
		}}
	case UnnestMap:
		return &unnestMapIter{in: OpenIter(w.In, ctx, env), attr: w.Attr, posAttr: w.PosAttr,
			e: w.E, ctx: ctx, env: env}
	case XiSimple:
		return &xiIter{in: OpenIter(w.In, ctx, env), cmds: w.Cmds, ctx: ctx, env: env}
	case XiGroupStream:
		return &xiGroupStreamIter{op: w, in: OpenIter(w.In, ctx, env), ctx: ctx, env: env}
	case Unnest:
		return &unnestIter{op: w, in: OpenIter(w.In, ctx, env)}
	case Cross:
		return newCrossIter(w, ctx, env)
	case Join:
		return newJoinIter(w.L, w.R, w.Pred, ctx, env, joinModeInner, "", nil)
	case SemiJoin:
		return newJoinIter(w.L, w.R, w.Pred, ctx, env, joinModeSemi, "", nil)
	case AntiJoin:
		return newJoinIter(w.L, w.R, w.Pred, ctx, env, joinModeAnti, "", nil)
	case OuterJoin:
		return newJoinIter(w.L, w.R, w.Pred, ctx, env, joinModeOuter, w.G, w.Default)
	default:
		// Pipeline breakers without a streaming decomposition (Γ, µD,
		// group-detecting Ξ) materialize through the definitional
		// evaluator and stream their output.
		return &sliceIter{ts: op.Eval(ctx, env)}
	}
}

// RunIter drains a plan through the iterator engine and returns the
// materialized result (for comparison and for callers that need the whole
// sequence anyway). Side effects (Ξ output) happen while streaming.
func RunIter(op Op, ctx *Ctx, env value.Tuple) value.TupleSeq {
	it := OpenIter(op, ctx, env)
	defer it.Close()
	var out value.TupleSeq
	for {
		t, ok := it.Next()
		if !ok {
			return out
		}
		out = append(out, t)
	}
}

// DrainIter pulls a plan to completion discarding tuples — the execution
// mode of a top-level query, where the Ξ side effects are the result. On
// the row engine no map tuple is ever materialized. A cancellation signal
// wired into ctx (SetDone) terminates the drain early.
func DrainIter(op Op, ctx *Ctx, env value.Tuple) {
	p := OpenPump(op, ctx, env)
	defer p.Close()
	for p.Step() {
		if ctx.Cancelled() {
			return
		}
	}
}

// Pump is a running plan that advances one root tuple per Step. The Ξ side
// effects — serialized text on ctx.Out, or items on ctx.Sink — happen
// while stepping; Pump itself discards the tuples. It is the drive shaft
// of the public Results iterator: opening the pump may already emit items
// (pipeline breakers below the root Ξ materialize at open), each Step may
// emit zero or more.
type Pump struct {
	rit RowIter
	it  Iterator
}

// OpenPump opens the iterator tree of a plan for step-wise driving,
// choosing the slot-based row engine when the plan's schema resolves and
// the legacy map engine otherwise — the same dispatch as DrainIter.
func OpenPump(op Op, ctx *Ctx, env value.Tuple) *Pump {
	if sc, ok := ResolveSchema(op); ok && sc.Native {
		return &Pump{rit: openRowsSchema(op, sc, ctx, env)}
	}
	return &Pump{it: openLegacy(op, ctx, env)}
}

// Step advances the plan by one root tuple; false means the plan is
// exhausted (or the run was cancelled).
func (p *Pump) Step() bool {
	if p.rit != nil {
		_, ok := p.rit.Next()
		return ok
	}
	_, ok := p.it.Next()
	return ok
}

// Close releases the iterator state. Close is idempotent.
func (p *Pump) Close() {
	if p.rit != nil {
		p.rit.Close()
		p.rit = nil
	}
	if p.it != nil {
		p.it.Close()
		p.it = nil
	}
}

type sliceIter struct {
	ts  value.TupleSeq
	pos int
}

func (s *sliceIter) Next() (value.Tuple, bool) {
	if s.pos >= len(s.ts) {
		return nil, false
	}
	t := s.ts[s.pos]
	s.pos++
	return t, true
}

func (s *sliceIter) Close() { s.ts = nil }

type selectIter struct {
	in   Iterator
	pred Expr
	ctx  *Ctx
	env  value.Tuple
}

func (s *selectIter) Next() (value.Tuple, bool) {
	for {
		t, ok := s.in.Next()
		if !ok {
			return nil, false
		}
		if value.EffectiveBool(s.pred.Eval(s.ctx, s.env.Concat(t))) {
			return t, true
		}
	}
}

func (s *selectIter) Close() { s.in.Close() }

type mapTupleIter struct {
	in Iterator
	f  func(value.Tuple) value.Tuple
}

func (m *mapTupleIter) Next() (value.Tuple, bool) {
	t, ok := m.in.Next()
	if !ok {
		return nil, false
	}
	return m.f(t), true
}

func (m *mapTupleIter) Close() { m.in.Close() }

type distinctIter struct {
	in    Iterator
	pairs []Rename
	seen  map[string]bool
	ctx   *Ctx
}

func newDistinctIter(in Iterator, pairs []Rename, ctx *Ctx) *distinctIter {
	return &distinctIter{in: in, pairs: pairs, seen: map[string]bool{}, ctx: ctx}
}

func (d *distinctIter) Next() (value.Tuple, bool) {
	for {
		t, ok := d.in.Next()
		if !ok {
			return nil, false
		}
		nt := make(value.Tuple, len(d.pairs))
		key := ""
		for _, r := range d.pairs {
			v := t[r.Old]
			nt[r.New] = v
			key += value.Key(v) + "|"
		}
		if !d.seen[key] {
			d.ctx.charge(TripDedup, 0, dedupEntryBytes+int64(len(key)))
			d.seen[key] = true
			return nt, true
		}
	}
}

func (d *distinctIter) Close() { d.in.Close() }

// xiGroupStreamIter streams the boundary-detecting Ξ: it holds exactly one
// tuple of state (the previous one) and fires S1/S2/S3 as boundaries open
// and close — the pipelined implementation the paper's Sec. 2 describes.
type xiGroupStreamIter struct {
	op  XiGroupStream
	in  Iterator
	ctx *Ctx
	env value.Tuple

	prev   value.Tuple
	closed bool
}

func (x *xiGroupStreamIter) Next() (value.Tuple, bool) {
	t, ok := x.in.Next()
	if !ok {
		if x.prev != nil && !x.closed {
			execCommands(x.ctx, x.env, x.prev, x.op.S3)
			x.closed = true
		}
		return nil, false
	}
	if x.prev == nil {
		execCommands(x.ctx, x.env, t, x.op.S1)
	} else if !sameGroup(x.prev, t, x.op.By) {
		execCommands(x.ctx, x.env, x.prev, x.op.S3)
		execCommands(x.ctx, x.env, t, x.op.S1)
	}
	execCommands(x.ctx, x.env, t, x.op.S2)
	x.prev = t
	return t, true
}

func (x *xiGroupStreamIter) Close() { x.in.Close() }

type unnestMapIter struct {
	in      Iterator
	attr    string
	posAttr string
	e       Expr
	ctx     *Ctx
	env     value.Tuple

	cur     value.Tuple
	pending value.Seq
	pos     int
}

func (u *unnestMapIter) Next() (value.Tuple, bool) {
	for {
		// The scan-level cancellation point of the map engine, mirroring
		// rowUnnestMapIter on the slot engine.
		if u.ctx.Cancelled() {
			return nil, false
		}
		if u.pos < len(u.pending) {
			nt := u.cur.Copy()
			nt[u.attr] = u.pending[u.pos]
			if u.posAttr != "" {
				nt[u.posAttr] = value.Int(int64(u.pos + 1))
			}
			u.pos++
			u.ctx.Stats.Tuples++
			u.ctx.ChargeTuple(TripScan, nt)
			return nt, true
		}
		t, ok := u.in.Next()
		if !ok {
			return nil, false
		}
		u.cur = t
		u.pending = value.AsSeq(u.e.Eval(u.ctx, u.env.Concat(t)))
		u.pos = 0
	}
}

func (u *unnestMapIter) Close() { u.in.Close() }

type xiIter struct {
	in   Iterator
	cmds []Command
	ctx  *Ctx
	env  value.Tuple
}

func (x *xiIter) Next() (value.Tuple, bool) {
	t, ok := x.in.Next()
	if !ok {
		return nil, false
	}
	execCommands(x.ctx, x.env, t, x.cmds)
	return t, true
}

func (x *xiIter) Close() { x.in.Close() }

type unnestIter struct {
	op Unnest
	in Iterator

	inner      []string
	staticDone bool // resolver consulted for the ⊥-pad attribute set
	cur        value.Tuple
	pending    value.TupleSeq
	pos        int
	padded     bool
}

func (u *unnestIter) Next() (value.Tuple, bool) {
	for {
		if u.pos < len(u.pending) {
			base := u.cur.Drop([]string{u.op.Attr})
			g := u.pending[u.pos]
			u.pos++
			return base.Concat(g), true
		}
		t, ok := u.in.Next()
		if !ok {
			return nil, false
		}
		u.cur = t
		ts, _ := value.TuplesOf(t[u.op.Attr])
		if len(ts) == 0 {
			// ⊥-pad: the operator hint, then the resolver's nested schema
			// (consulted lazily, on the first empty group — matching
			// Unnest.Eval), then attributes observed on earlier groups.
			inner := u.op.InnerAttrs
			if inner == nil && !u.staticDone {
				u.staticDone = true
				if s := staticInnerAttrs(u.op.In, u.op.Attr); s != nil {
					u.inner = s
				}
			}
			if inner == nil {
				inner = u.inner
			}
			u.pending = nil
			u.pos = 0
			return t.Drop([]string{u.op.Attr}).Concat(value.NullTuple(inner)), true
		}
		if u.inner == nil {
			u.inner = ts[0].Attrs()
		}
		u.pending = ts
		u.pos = 0
	}
}

func (u *unnestIter) Close() { u.in.Close() }

type crossIter struct {
	left  Iterator
	right value.TupleSeq
	cur   value.Tuple
	pos   int
	done  bool
}

func newCrossIter(c Cross, ctx *Ctx, env value.Tuple) Iterator {
	right := c.R.Eval(ctx, env)
	ctx.ChargeTuples(TripBuild, right)
	return &crossIter{left: OpenIter(c.L, ctx, env), right: right, pos: -1}
}

func (c *crossIter) Next() (value.Tuple, bool) {
	for {
		if c.done {
			return nil, false
		}
		if c.pos >= 0 && c.pos < len(c.right) {
			t := c.cur.Concat(c.right[c.pos])
			c.pos++
			return t, true
		}
		lt, ok := c.left.Next()
		if !ok {
			c.done = true
			return nil, false
		}
		c.cur = lt
		c.pos = 0
		if len(c.right) == 0 {
			c.pos = len(c.right) // skip
		}
	}
}

func (c *crossIter) Close() { c.left.Close() }

type joinMode uint8

const (
	joinModeInner joinMode = iota
	joinModeSemi
	joinModeAnti
	joinModeOuter
)

// joinIter is the probe-order-preserving hash/nested-loop join family: the
// build side (right operand) materializes once, the probe side streams.
type joinIter struct {
	left Iterator
	jp   joinPlan
	mode joinMode
	ctx  *Ctx
	env  value.Tuple

	g        string
	def      SeqFunc
	padAttrs []string

	cur     value.Tuple
	pending value.TupleSeq
	pos     int
}

func newJoinIter(l, r Op, pred Expr, ctx *Ctx, env value.Tuple, mode joinMode, g string, def SeqFunc) Iterator {
	it := &joinIter{left: OpenIter(l, ctx, env), mode: mode, ctx: ctx, env: env, g: g, def: def}
	it.jp = prepareJoin(ctx, env, l, r, pred)
	if mode == joinModeOuter {
		rAttrs, known := r.Attrs()
		if !known && len(it.jp.right) > 0 {
			rAttrs = it.jp.right[0].Attrs()
		}
		for _, a := range rAttrs {
			if a != g {
				it.padAttrs = append(it.padAttrs, a)
			}
		}
	}
	return it
}

func (j *joinIter) Next() (value.Tuple, bool) {
	for {
		if j.pos < len(j.pending) {
			t := j.cur.Concat(j.pending[j.pos])
			j.pos++
			return t, true
		}
		lt, ok := j.left.Next()
		if !ok {
			return nil, false
		}
		// Probe side streams: fault-injection boundary only.
		j.ctx.Fault(TripProbe)
		switch j.mode {
		case joinModeSemi:
			if j.jp.anyMatch(j.ctx, j.env, lt) {
				return lt, true
			}
		case joinModeAnti:
			if !j.jp.anyMatch(j.ctx, j.env, lt) {
				return lt, true
			}
		case joinModeInner:
			j.cur = lt
			j.pending = j.jp.matches(j.ctx, j.env, lt)
			j.pos = 0
		case joinModeOuter:
			ms := j.jp.matches(j.ctx, j.env, lt)
			if len(ms) == 0 {
				nt := lt.Concat(value.NullTuple(j.padAttrs))
				nt[j.g] = j.def.Apply(j.ctx, j.env, nil)
				return nt, true
			}
			j.cur = lt
			j.pending = ms
			j.pos = 0
		}
	}
}

func (j *joinIter) Close() { j.left.Close() }
