package algebra

import (
	"testing"

	"nalquery/internal/value"
)

// Differential property tests of the RowSeq group-payload representation:
// for plans whose nested data the slot engine carries as rows (Γ payloads,
// e[a] bindings, nested-in-nested groups), native execution must emit the
// same sequences as the definitional map evaluator — across the edge cases
// that distinguish the representations (⊥-padding of empty groups, renames
// inside groups, µD member dedup on partially absent attributes).

// mapFree executes op natively and requires that no map tuple materialized
// on the data path (the conversion shim at the constOp leaves streams base
// tuples and is excluded, exactly like leafShims excludes their ShimOps).
func mapFree(t *testing.T, name string, op Op, leafTuples int64) {
	t.Helper()
	ctx := NewCtx(nil)
	sc, ok := ResolveSchema(op)
	if !ok || !sc.Native {
		t.Fatalf("%s: plan is not native", name)
	}
	it := openRowsSchema(op, sc, ctx, nil)
	for {
		if _, ok := it.Next(); !ok {
			break
		}
	}
	it.Close()
	if got := ctx.Stats.MapTuples - leafTuples; got > 0 {
		t.Errorf("%s: %d map tuples materialized beyond the leaf scans", name, got)
	}
}

// leafTupleCount sums the tuples the constOp leaves feed through the
// conversion shim (each conversion counts once in Stats.MapTuples).
func leafTupleCount(op Op) int64 {
	var n int64
	var walk func(Op)
	walk = func(o Op) {
		cs := o.Children()
		if len(cs) == 0 {
			if c, ok := o.(constOp); ok {
				n += int64(len(c.ts))
			}
			return
		}
		for _, c := range cs {
			walk(c)
		}
	}
	walk(op)
	return n
}

func diffPayloadPlan(t *testing.T, name string, op Op) {
	t.Helper()
	if diffOp(t, name, op) {
		mapFree(t, name, op, leafTupleCount(op))
	}
}

// TestRowSeqGammaMuRoundtrip pins the Γ→µ roundtrip: grouping builds a
// RowSeq payload (zero-copy over the bucket rows), unnesting splices it
// back — and the flat sequences match the map evaluator's, including the
// group keys reappearing inside the members (shared slots).
func TestRowSeqGammaMuRoundtrip(t *testing.T) {
	in := constOp{
		ts: value.TupleSeq{
			{"K": value.Int(1), "V": value.Str("a")},
			{"K": value.Int(2), "V": value.Str("b")},
			{"K": value.Int(1), "V": value.Str("c")},
			{"K": value.Int(3), "V": value.Str("d")},
			{"K": value.Int(2), "V": value.Str("e")},
		},
		attrs: []string{"K", "V"},
	}
	gamma := GroupUnary{In: in, G: "g", By: []string{"K"}, Theta: value.CmpEq, F: SFIdent{}}
	diffPayloadPlan(t, "gamma-mu", Unnest{In: gamma, Attr: "g"})
	diffPayloadPlan(t, "gamma-muD", UnnestDistinct{In: gamma, Attr: "g"})
}

// TestRowSeqAllDuplicateKeys drives one giant group (every input tuple
// shares the key) through Γ→µ and through the count/aggregate appliers.
func TestRowSeqAllDuplicateKeys(t *testing.T) {
	ts := make(value.TupleSeq, 0, 12)
	for i := 0; i < 12; i++ {
		ts = append(ts, value.Tuple{"K": value.Str("same"), "N": value.Int(int64(i % 3))})
	}
	in := constOp{ts: ts, attrs: []string{"K", "N"}}
	gamma := GroupUnary{In: in, G: "g", By: []string{"K"}, Theta: value.CmpEq, F: SFIdent{}}
	diffPayloadPlan(t, "alldup-mu", Unnest{In: gamma, Attr: "g"})
	diffPayloadPlan(t, "alldup-muD", UnnestDistinct{In: gamma, Attr: "g"})
	diffPayloadPlan(t, "alldup-count",
		Map{In: gamma, Attr: "c", E: AggOfAttr{F: SFCount{}, Attr: Var{Name: "g"}}})
	diffPayloadPlan(t, "alldup-sum",
		Map{In: gamma, Attr: "s", E: AggOfAttr{F: SFAgg{Fn: "sum", Attr: "N"}, Attr: Var{Name: "g"}}})
}

// TestRowSeqEmptyGroupPadding pins ⊥-padding: binary Γ gives unmatched left
// tuples an empty payload, and µ must release it as one NULL-padded tuple —
// before any non-empty group has been seen (the plan-time inner layout).
func TestRowSeqEmptyGroupPadding(t *testing.T) {
	left := constOp{
		ts: value.TupleSeq{
			{"A1": value.Int(1)},
			{"A1": value.Int(99)}, // no partner
			{"A1": value.Int(2)},
		},
		attrs: []string{"A1"},
	}
	right := constOp{
		ts: value.TupleSeq{
			{"A2": value.Int(1), "B": value.Str("x")},
			{"A2": value.Int(2), "B": value.Str("y")},
			{"A2": value.Int(1), "B": value.Str("z")},
		},
		attrs: []string{"A2", "B"},
	}
	gamma := GroupBinary{L: left, R: right, G: "g",
		LAttrs: []string{"A1"}, RAttrs: []string{"A2"}, Theta: value.CmpEq, F: SFIdent{}}
	diffPayloadPlan(t, "empty-group-mu", Unnest{In: gamma, Attr: "g"})

	// All groups empty: the ⊥ attribute set must come from the resolver's
	// nested layout, not from an observed member.
	emptyRight := constOp{attrs: []string{"A2", "B"}}
	allEmpty := GroupBinary{L: left, R: emptyRight, G: "g",
		LAttrs: []string{"A1"}, RAttrs: []string{"A2"}, Theta: value.CmpEq, F: SFIdent{}}
	diffPayloadPlan(t, "all-empty-groups-mu", Unnest{In: allEmpty, Attr: "g"})
}

// TestRowSeqRenameInsideGroup pins that a rename below Γ reaches the
// payload as a layout-pointer swap: the members carry the renamed
// attributes and µ releases them under the new names.
func TestRowSeqRenameInsideGroup(t *testing.T) {
	in := constOp{
		ts: value.TupleSeq{
			{"K": value.Int(1), "V": value.Str("a")},
			{"K": value.Int(1), "V": value.Str("b")},
			{"K": value.Int(2), "V": value.Str("c")},
		},
		attrs: []string{"K", "V"},
	}
	ren := ProjectRename{In: in, Pairs: []Rename{{New: "W", Old: "V"}}}
	gamma := GroupUnary{In: ren, G: "g", By: []string{"K"}, Theta: value.CmpEq, F: SFIdent{}}
	diffPayloadPlan(t, "rename-in-group", Unnest{In: gamma, Attr: "g"})

	// Swap rename (K↔V) below Γ: simultaneous substitution inside the
	// member layout.
	swap := ProjectRename{In: in, Pairs: []Rename{{New: "V", Old: "K"}, {New: "K", Old: "V"}}}
	gammaSwap := GroupUnary{In: swap, G: "g", By: []string{"V"}, Theta: value.CmpEq, F: SFIdent{}}
	diffPayloadPlan(t, "swap-rename-in-group", Unnest{In: gammaSwap, Attr: "g"})
}

// TestRowSeqNestedInNested pins Γ under µ under Γ: the outer payload's
// members themselves carry a RowSeq payload, and both unnest levels release
// their attributes natively.
func TestRowSeqNestedInNested(t *testing.T) {
	in := constOp{
		ts: value.TupleSeq{
			{"K": value.Int(1), "J": value.Str("x"), "V": value.Int(10)},
			{"K": value.Int(1), "J": value.Str("y"), "V": value.Int(20)},
			{"K": value.Int(2), "J": value.Str("x"), "V": value.Int(30)},
			{"K": value.Int(1), "J": value.Str("x"), "V": value.Int(40)},
		},
		attrs: []string{"J", "K", "V"},
	}
	inner := GroupUnary{In: in, G: "g1", By: []string{"K", "J"}, Theta: value.CmpEq, F: SFIdent{}}
	outer := GroupUnary{In: inner, G: "g2", By: []string{"K"}, Theta: value.CmpEq, F: SFIdent{}}
	plan := Unnest{In: Unnest{In: outer, Attr: "g2"}, Attr: "g1"}
	diffPayloadPlan(t, "gamma-under-mu", plan)
}

// TestRowSeqBindingsAndDistinct pins the e[a] constructor payloads: χ binds
// an item sequence as a width-1 RowSeq sharing the sequence backing, and
// µ/µD release and deduplicate it like the map engine.
func TestRowSeqBindingsAndDistinct(t *testing.T) {
	in := constOp{
		ts: value.TupleSeq{
			{"S": value.Seq{value.Int(1), value.Int(2), value.Int(1)}},
			{"S": value.Seq{value.Str("3"), value.Int(3)}}, // numeric dedup across lexical forms
			{"S": value.Seq{}},
		},
		attrs: []string{"S"},
	}
	bind := Map{In: in, Attr: "b", E: BindTuples{E: Var{Name: "S"}, Attr: "x"}}
	diffPayloadPlan(t, "bind-mu", Unnest{In: bind, Attr: "b", InnerAttrs: []string{"x"}})
	diffPayloadPlan(t, "bind-muD", UnnestDistinct{In: bind, Attr: "b"})
}

// TestRowSeqFilteredApplier pins f ∘ σp payloads (Eqvs. 8/9): the predicate
// compiles against the member layout and the filtered payload stays a
// RowSeq.
func TestRowSeqFilteredApplier(t *testing.T) {
	in := constOp{
		ts: value.TupleSeq{
			{"K": value.Int(1), "N": value.Int(5)},
			{"K": value.Int(1), "N": value.Int(15)},
			{"K": value.Int(2), "N": value.Int(25)},
			{"K": value.Int(2), "N": value.Int(5)},
		},
		attrs: []string{"K", "N"},
	}
	f := SFFiltered{
		Pred:  CmpExpr{L: Var{Name: "N"}, R: ConstVal{V: value.Int(10)}, Op: value.CmpGt},
		Inner: SFCount{},
	}
	gamma := GroupUnary{In: in, G: "c", By: []string{"K"}, Theta: value.CmpEq, F: f}
	diffPayloadPlan(t, "filtered-count", gamma)

	fid := SFFiltered{
		Pred:  CmpExpr{L: Var{Name: "N"}, R: ConstVal{V: value.Int(10)}, Op: value.CmpGt},
		Inner: SFIdent{},
	}
	gammaID := GroupUnary{In: in, G: "g", By: []string{"K"}, Theta: value.CmpEq, F: fid}
	diffPayloadPlan(t, "filtered-id-mu", Unnest{In: gammaID, Attr: "g"})
}
