package algebra

import (
	"math/rand"
	"testing"

	"nalquery/internal/value"
)

// Differential property tests of the native partitioned operators against
// the definitional Op.Eval, mirroring the engine-level slot/map tests
// (internal/experiments/slotdiff_test.go): sequence equality, bag equality
// and Ξ-output equality, over random inputs plus the edge cases that bit
// hash implementations before (empty inputs, all-duplicate keys,
// ⊥-padding of empty groups).

// leafShims counts the leaf operators that legitimately open behind the
// conversion shim: the constOp test fixtures resolve generically (they are
// stand-ins for base scans, which are native in real plans). Any shim
// beyond these means an inner operator fell back.
func leafShims(op Op) int64 {
	var n int64
	var walk func(Op)
	walk = func(o Op) {
		cs := o.Children()
		if len(cs) == 0 {
			if sc, ok := ResolveSchema(o); ok && !sc.Native {
				n++
			}
			return
		}
		for _, c := range cs {
			walk(c)
		}
	}
	walk(op)
	return n
}

// runNativeRows executes op on the slot engine and reports the result plus
// whether execution was slot-native: the schema resolves natively, the
// root iterator is not the conversion shim, and no shim fired anywhere
// beyond the constOp leaves.
func runNativeRows(op Op) (value.TupleSeq, string, bool) {
	sc, ok := ResolveSchema(op)
	if !ok || !sc.Native {
		return nil, "", false
	}
	ctx := NewCtx(nil)
	it := openRowsSchema(op, sc, ctx, nil)
	if _, isShim := it.(*tupleRowIter); isShim {
		return nil, "", false
	}
	rows := drainRows(ctx, TripBuild, it)
	out := make(value.TupleSeq, len(rows))
	for i, r := range rows {
		out[i] = r.Tuple()
	}
	return out, ctx.OutString(), ctx.Stats.ShimOps <= leafShims(op)
}

// diffOp compares Eval and native row execution of one operator.
func diffOp(t *testing.T, name string, op Op) bool {
	t.Helper()
	want := op.Eval(NewCtx(nil), nil)
	got, _, native := runNativeRows(op)
	if !native {
		t.Errorf("%s: not fully slot-native", name)
		return false
	}
	if !value.TupleSeqEqual(want, got) {
		t.Errorf("%s: native rows differ from Eval\neval:   %.300s\nnative: %.300s", name, want, got)
		return false
	}
	if !value.TupleSeqEqualBag(want, got) {
		t.Errorf("%s: native rows not bag-equal to Eval", name)
		return false
	}
	return true
}

// partitionedFamily builds every partitioned operator over the given
// inputs (e1 with A1/C, e2 with A2/B columns).
func partitionedFamily(e1, e2 Op, residual Expr) map[string]Op {
	return map[string]Op{
		"Grace": GraceJoin{L: e1, R: e2, LAttrs: []string{"A1"}, RAttrs: []string{"A2"},
			Residual: residual},
		"OPHJ": OPHashJoin{L: e1, R: e2, LAttrs: []string{"A1"}, RAttrs: []string{"A2"},
			Residual: residual},
		"⋈ᵁ": UnorderedJoin{L: e1, R: e2, LAttrs: []string{"A1"}, RAttrs: []string{"A2"},
			Residual: residual},
		"⋉ᵁ": UnorderedSemiJoin{L: e1, R: e2, LAttrs: []string{"A1"}, RAttrs: []string{"A2"},
			Residual: residual},
		"▷ᵁ": UnorderedAntiJoin{L: e1, R: e2, LAttrs: []string{"A1"}, RAttrs: []string{"A2"},
			Residual: residual},
		"⟕ᵁ": UnorderedOuterJoin{L: e1, R: e2, LAttrs: []string{"A1"}, RAttrs: []string{"A2"},
			G: "B", Default: SFCount{}},
		"Γᵁ-binary": UnorderedGroupBinary{L: e1, R: e2, G: "g",
			LAttrs: []string{"A1"}, RAttrs: []string{"A2"}, Theta: value.CmpEq, F: SFIdent{}},
		"Γᵁ-unary": UnorderedGroupUnary{In: e2, G: "g", By: []string{"A2"},
			Theta: value.CmpEq, F: SFAgg{Fn: "sum", Attr: "B"}},
	}
}

// TestPartitionedRowsMatchEval: random inputs, every operator of the
// family, with and without a residual predicate.
func TestPartitionedRowsMatchEval(t *testing.T) {
	quickCheck(t, "partitioned-rows=Eval", func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		e1 := randRel(rng, []string{"A1", "C"}, 12, 4)
		e2 := randRel(rng, []string{"A2", "B"}, 12, 4)
		var residual Expr
		if rng.Intn(2) == 1 {
			residual = CmpExpr{L: Var{Name: "C"}, R: Var{Name: "B"}, Op: value.CmpLe}
		}
		for name, op := range partitionedFamily(e1, e2, residual) {
			if !diffOp(t, name, op) {
				return false
			}
		}
		return true
	})
}

// TestPartitionedRowsMultiKey: composite keys exercise the two-column
// inline HashKey and the >2-column string fold.
func TestPartitionedRowsMultiKey(t *testing.T) {
	quickCheck(t, "partitioned-rows-multikey", func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		e1 := randRel(rng, []string{"A1", "K1", "J1"}, 12, 3)
		e2 := randRel(rng, []string{"A2", "K2", "J2"}, 12, 3)
		two := GraceJoin{L: e1, R: e2,
			LAttrs: []string{"A1", "K1"}, RAttrs: []string{"A2", "K2"}}
		three := UnorderedJoin{L: e1, R: e2,
			LAttrs: []string{"A1", "K1", "J1"}, RAttrs: []string{"A2", "K2", "J2"}}
		opTwo := OPHashJoin{L: e1, R: e2,
			LAttrs: []string{"A1", "K1"}, RAttrs: []string{"A2", "K2"}, Partitions: rng.Intn(8)}
		gu := UnorderedGroupUnary{In: e2, G: "g", By: []string{"A2", "K2", "J2"},
			Theta: value.CmpEq, F: SFCount{}}
		return diffOp(t, "Grace-2key", two) && diffOp(t, "⋈ᵁ-3key", three) &&
			diffOp(t, "OPHJ-2key", opTwo) && diffOp(t, "Γᵁ-3key", gu)
	})
}

// TestPartitionedRowsGeneralTheta: the non-equality grouping paths take
// the scan route on both engines.
func TestPartitionedRowsGeneralTheta(t *testing.T) {
	quickCheck(t, "partitioned-rows-θ", func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		e1 := randRel(rng, []string{"A1"}, 8, 4)
		e2 := randRel(rng, []string{"A2", "B"}, 8, 4)
		theta := thetasAll[rng.Intn(len(thetasAll))]
		gu := UnorderedGroupUnary{In: e2, G: "g", By: []string{"A2"}, Theta: theta, F: SFCount{}}
		gb := UnorderedGroupBinary{L: e1, R: e2, G: "g",
			LAttrs: []string{"A1"}, RAttrs: []string{"A2"}, Theta: theta, F: SFCount{}}
		return diffOp(t, "Γᵁ-θ", gu) && diffOp(t, "Γᵁ-binary-θ", gb)
	})
}

// TestPartitionedRowsEdgeInputs: empty inputs and all-duplicate keys.
func TestPartitionedRowsEdgeInputs(t *testing.T) {
	empty1 := constOp{attrs: []string{"A1", "C"}}
	empty2 := constOp{attrs: []string{"A2", "B"}}
	one1 := constOp{ts: value.TupleSeq{{"A1": value.Int(1), "C": value.Int(9)}},
		attrs: []string{"A1", "C"}}
	allDup := func(n int, attrs ...string) constOp {
		ts := make(value.TupleSeq, n)
		for i := range ts {
			t := value.Tuple{attrs[0]: value.Int(7)}
			for _, a := range attrs[1:] {
				t[a] = value.Int(int64(i))
			}
			ts[i] = t
		}
		return constOp{ts: ts, attrs: attrs}
	}
	cases := []struct {
		name   string
		e1, e2 Op
	}{
		{"both-empty", empty1, empty2},
		{"left-empty", empty1, allDup(5, "A2", "B")},
		{"right-empty", one1, empty2},
		{"all-dup-keys", allDup(6, "A1", "C"), allDup(6, "A2", "B")},
	}
	for _, c := range cases {
		for name, op := range partitionedFamily(c.e1, c.e2, nil) {
			diffOp(t, c.name+"/"+name, op)
		}
	}
}

// TestPartitionedRowsPadding: ⊥-padding of empty ⟕ᵁ groups and the default
// value of empty Γᵁ groups, in the Eqv. 2 configuration (grouped right
// side).
func TestPartitionedRowsPadding(t *testing.T) {
	left := constOp{ts: value.TupleSeq{
		{"A1": value.Int(1)}, {"A1": value.Int(99)}, {"A1": value.Int(2)},
	}, attrs: []string{"A1"}}
	right := constOp{ts: value.TupleSeq{
		{"A2": value.Int(1), "B": value.Int(10)},
		{"A2": value.Int(2), "B": value.Int(20)},
		{"A2": value.Int(2), "B": value.Int(21)},
	}, attrs: []string{"A2", "B"}}
	grouped := GroupUnary{In: right, G: "g", By: []string{"A2"}, Theta: value.CmpEq, F: SFIdent{}}

	oj := UnorderedOuterJoin{L: left, R: grouped, LAttrs: []string{"A1"}, RAttrs: []string{"A2"},
		G: "g", Default: SFCount{}}
	if !diffOp(t, "⟕ᵁ-padding", oj) {
		return
	}
	got, _, _ := runNativeRows(oj)
	var padded value.Tuple
	for _, tp := range got {
		if value.DeepEqual(tp["A1"], value.Int(99)) {
			padded = tp
		}
	}
	if padded == nil {
		t.Fatalf("⟕ᵁ lost the unmatched left tuple: %s", got)
	}
	if _, isNull := padded["A2"].(value.Null); !isNull {
		t.Errorf("⟕ᵁ must ⊥-pad A2, got %v", padded["A2"])
	}
	if !value.DeepEqual(padded["g"], value.Int(0)) {
		t.Errorf("⟕ᵁ default on empty group: g = %v, want count(ε) = 0", padded["g"])
	}

	gb := UnorderedGroupBinary{L: left, R: right, G: "g",
		LAttrs: []string{"A1"}, RAttrs: []string{"A2"}, Theta: value.CmpEq, F: SFCount{}}
	if !diffOp(t, "Γᵁ-binary-empty-group", gb) {
		return
	}
	got, _, _ = runNativeRows(gb)
	for _, tp := range got {
		if value.DeepEqual(tp["A1"], value.Int(99)) && !value.DeepEqual(tp["g"], value.Int(0)) {
			t.Errorf("Γᵁ empty group: g = %v, want 0", tp["g"])
		}
	}
}

// TestPartitionedRowsXiOutput: Ξ over a partitioned subtree emits the same
// output stream on both engines (the slotdiff Ξ-equality mirrored at
// operator level).
func TestPartitionedRowsXiOutput(t *testing.T) {
	quickCheck(t, "partitioned-rows-Ξ", func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		e1 := randRel(rng, []string{"A1", "C"}, 10, 4)
		e2 := randRel(rng, []string{"A2", "B"}, 10, 4)
		for name, inner := range partitionedFamily(e1, e2, nil) {
			attr := "A1"
			if name == "Γᵁ-unary" {
				attr = "A2"
			}
			xi := XiSimple{In: inner, Cmds: []Command{
				LitCmd("<"), ExprCmd(Var{Name: attr}), LitCmd(">"),
			}}
			ctxE := NewCtx(nil)
			xi.Eval(ctxE, nil)
			sc, ok := ResolveSchema(xi)
			if !ok || !sc.Native {
				t.Errorf("Ξ over %s: not native", name)
				return false
			}
			ctxR := NewCtx(nil)
			drainRows(ctxR, TripBuild, openRowsSchema(xi, sc, ctxR, nil))
			if ctxR.Stats.ShimOps > leafShims(xi) {
				t.Errorf("Ξ over %s: shim fired beyond the leaves", name)
				return false
			}
			if ctxE.OutString() != ctxR.OutString() {
				t.Errorf("Ξ over %s: output differs\neval:   %.200q\nnative: %.200q",
					name, ctxE.OutString(), ctxR.OutString())
				return false
			}
		}
		return true
	})
}

// TestPartitionedRowsSemiAntiCollidingNames: ⋉ᵁ/▷ᵁ output only left rows,
// so a residual-free join over inputs sharing an attribute name must still
// run natively (no concatenated layout is needed).
func TestPartitionedRowsSemiAntiCollidingNames(t *testing.T) {
	e1 := constOp{ts: value.TupleSeq{
		{"A1": value.Int(1), "X": value.Int(1)},
		{"A1": value.Int(2), "X": value.Int(2)},
	}, attrs: []string{"A1", "X"}}
	e2 := constOp{ts: value.TupleSeq{
		{"A2": value.Int(1), "X": value.Int(9)},
	}, attrs: []string{"A2", "X"}}
	semi := UnorderedSemiJoin{L: e1, R: e2, LAttrs: []string{"A1"}, RAttrs: []string{"A2"}}
	anti := UnorderedAntiJoin{L: e1, R: e2, LAttrs: []string{"A1"}, RAttrs: []string{"A2"}}
	diffOp(t, "⋉ᵁ-colliding-X", semi)
	diffOp(t, "▷ᵁ-colliding-X", anti)
}

// TestOPHashJoinPartitionCount pins the build-side-driven sizing: tiny
// builds run single-partition, large builds cap at 16, explicit settings
// win.
func TestOPHashJoinPartitionCount(t *testing.T) {
	j := OPHashJoin{}
	for _, c := range []struct{ build, want int }{
		{0, 1}, {10, 1}, {127, 1}, {128, 2}, {1000, 8}, {1 << 20, 16},
	} {
		if got := j.partitionCount(c.build); got != c.want {
			t.Errorf("partitionCount(%d) = %d, want %d", c.build, got, c.want)
		}
	}
	if got := (OPHashJoin{Partitions: 7}).partitionCount(5); got != 7 {
		t.Errorf("explicit Partitions overridden: %d", got)
	}
}
