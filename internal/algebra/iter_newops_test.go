package algebra

import (
	"math/rand"
	"testing"

	"nalquery/internal/value"
)

// The iterator engine materializes operators without a streaming
// decomposition through the definitional evaluator. These tests pin the
// contract for the operators added after the original engine: RunIter must
// agree with Eval exactly.

// TestIterMatchesEvalNewOps: Sort (with directions), the Claussen
// order-preserving hash join, and the unordered family agree across
// engines.
func TestIterMatchesEvalNewOps(t *testing.T) {
	quickCheck(t, "iter=eval-new-ops", func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		e1 := randRel(rng, []string{"A1", "C"}, 8, 3)
		e2 := randRel(rng, []string{"A2", "B"}, 8, 3)
		ops := []Op{
			Sort{In: e1, By: []string{"A1", "C"}, Dirs: []bool{true, false}},
			OPHashJoin{L: e1, R: e2, LAttrs: []string{"A1"}, RAttrs: []string{"A2"}, Partitions: 4},
			UnorderedJoin{L: e1, R: e2, LAttrs: []string{"A1"}, RAttrs: []string{"A2"}},
			UnorderedSemiJoin{L: e1, R: e2, LAttrs: []string{"A1"}, RAttrs: []string{"A2"}},
			UnorderedAntiJoin{L: e1, R: e2, LAttrs: []string{"A1"}, RAttrs: []string{"A2"}},
			UnorderedGroupUnary{In: e2, G: "g", By: []string{"A2"}, Theta: value.CmpEq, F: SFCount{}},
			UnorderedGroupBinary{L: e1, R: e2, G: "g",
				LAttrs: []string{"A1"}, RAttrs: []string{"A2"}, Theta: value.CmpEq, F: SFCount{}},
		}
		for _, op := range ops {
			want := op.Eval(NewCtx(nil), nil)
			got := RunIter(op, NewCtx(nil), nil)
			if !value.TupleSeqEqual(want, got) {
				return false
			}
		}
		return true
	})
}

// TestIterUnnestMapPositions: the streaming Υ assigns the same positions as
// the materialized one.
func TestIterUnnestMapPositions(t *testing.T) {
	in := constOp{
		ts: value.TupleSeq{
			{"s": value.Seq{value.Str("a"), value.Str("b")}},
			{"s": value.Seq{}},
			{"s": value.Seq{value.Str("c")}},
		},
		attrs: []string{"s"},
	}
	op := UnnestMap{In: in, Attr: "x", PosAttr: "i", E: Var{Name: "s"}}
	want := op.Eval(NewCtx(nil), nil)
	got := RunIter(op, NewCtx(nil), nil)
	if !value.TupleSeqEqual(want, got) {
		t.Fatalf("iterator Υ with positions differs:\n%v\nvs\n%v", got, want)
	}
	if len(want) != 3 {
		t.Fatalf("got %d tuples, want 3", len(want))
	}
	wantPos := []int64{1, 2, 1}
	for i, p := range wantPos {
		if int64(want[i]["i"].(value.Int)) != p {
			t.Errorf("tuple %d: position %v, want %d", i, want[i]["i"], p)
		}
	}
}
