package algebra

import (
	"nalquery/internal/value"
)

// This file implements the plan-time schema-resolution pass of the slot
// engine. It walks an operator tree bottom-up and assigns every operator an
// output Layout — a fixed attribute→slot mapping — so that execution can
// read and write slices instead of rebuilding Go maps per tuple.
//
// Besides the flat layout, the resolver tracks the layouts of
// tuple-sequence-valued attributes (group attributes created by Γ, the e[a]
// constructor, nested query blocks): µ and µD need them to assign slots to
// the attributes that unnesting releases, and ⊥-padding of empty groups
// needs them before the first non-empty group is seen.
//
// Resolution is best-effort: an operator the resolver cannot type
// structurally still resolves through its static attribute set (Attrs) and
// executes through the definitional evaluator behind a conversion shim
// (Schema.Native = false); a subtree whose attribute set is statically
// unknown does not resolve at all, and the plan falls back to the map-based
// engine (see OpenIter).

// Schema is the resolved output type of one operator.
type Schema struct {
	// Lay assigns the operator's output attributes to slots.
	Lay *value.Layout
	// Nested holds the inner schemas of tuple-sequence-valued attributes,
	// keyed by attribute name, when statically known.
	Nested map[string]*Inner
	// Native reports that the operator has a slot-native iterator under this
	// schema; otherwise it executes through the fallback shim.
	Native bool
}

// Inner is the schema of a tuple-sequence-valued attribute: the member
// layout plus, recursively, the inner schemas of the members' own
// sequence-valued attributes. The recursion is what lets nested-in-nested
// plans (Γ under µ — the outer payload's members carrying their own group
// attribute) resolve natively: unnesting releases not just the member
// attributes but their nested schemas too.
type Inner struct {
	Lay    *value.Layout
	Nested map[string]*Inner
}

func (s Schema) nested(attr string) *Inner {
	if s.Nested == nil {
		return nil
	}
	return s.Nested[attr]
}

// nestedWith returns a copy of the nested map with one entry replaced (or
// removed when in is nil).
func nestedWith(src map[string]*Inner, attr string, in *Inner) map[string]*Inner {
	out := make(map[string]*Inner, len(src)+1)
	for k, v := range src {
		out[k] = v
	}
	if in == nil {
		delete(out, attr)
	} else {
		out[attr] = in
	}
	if len(out) == 0 {
		return nil
	}
	return out
}

// nestedKept filters a nested map to the attributes of a layout.
func nestedKept(src map[string]*Inner, lay *value.Layout) map[string]*Inner {
	if src == nil {
		return nil
	}
	var out map[string]*Inner
	for k, v := range src {
		if lay.Has(k) {
			if out == nil {
				out = map[string]*Inner{}
			}
			out[k] = v
		}
	}
	return out
}

func nestedUnion(a, b map[string]*Inner) map[string]*Inner {
	if a == nil && b == nil {
		return nil
	}
	out := make(map[string]*Inner, len(a)+len(b))
	for k, v := range a {
		out[k] = v
	}
	for k, v := range b {
		out[k] = v
	}
	return out
}

// fnNested returns the inner schema of the tuple sequence a SeqFunc
// produces when applied to groups drawn from tuples of the input schema.
func fnNested(f SeqFunc, in Schema) *Inner {
	switch w := f.(type) {
	case SFIdent:
		return &Inner{Lay: in.Lay, Nested: in.Nested}
	case SFProject:
		if lay := value.NewLayout(w.Attrs...); lay != nil {
			return &Inner{Lay: lay, Nested: nestedKept(in.Nested, lay)}
		}
		return nil
	case SFFiltered:
		return fnNested(w.Inner, in)
	default:
		// Aggregates (count, min, …) produce items, not tuple sequences.
		return nil
	}
}

// exprNested returns the inner schema of a tuple-sequence value an
// expression produces, when statically known.
func exprNested(e Expr, in Schema) *Inner {
	switch w := e.(type) {
	case Var:
		return in.nested(w.Name)
	case BindTuples:
		return &Inner{Lay: value.NewLayout(w.Attr)}
	case NestedApply:
		sub, ok := ResolveSchema(w.Plan)
		if !ok {
			return nil
		}
		return fnNested(w.F, sub)
	case CondExpr:
		t := exprNested(w.Then, in)
		f := exprNested(w.Else, in)
		if t != nil && f != nil && sameNames(t.Lay, f.Lay) {
			return t
		}
		return nil
	default:
		return nil
	}
}

func sameNames(a, b *value.Layout) bool {
	if a.Width() != b.Width() {
		return false
	}
	for i, n := range a.Names() {
		if b.Name(i) != n {
			return false
		}
	}
	return true
}

// ResolveSchema computes the output schema of an operator tree. ok=false
// means the attribute set is statically unknown and the subtree can only run
// on the map-based engine.
func ResolveSchema(op Op) (Schema, bool) {
	//nal:opswitch schema
	switch w := op.(type) {
	case Singleton:
		return Schema{Lay: value.NewLayout(), Native: true}, true

	case Select:
		in, ok := ResolveSchema(w.In)
		if !ok {
			return genericSchema(op)
		}
		return Schema{Lay: in.Lay, Nested: in.Nested, Native: true}, true

	case Project:
		if in, ok := ResolveSchema(w.In); ok {
			lay, src := in.Lay.Project(w.Names)
			if lay != nil && src != nil {
				return Schema{Lay: lay, Nested: nestedKept(in.Nested, lay), Native: true}, true
			}
		}
		return genericSchema(op)

	case ProjectDrop:
		if in, ok := ResolveSchema(w.In); ok {
			lay, _ := in.Lay.Drop(w.Names)
			return Schema{Lay: lay, Nested: nestedKept(in.Nested, lay), Native: true}, true
		}
		return genericSchema(op)

	case ProjectRename:
		if in, ok := ResolveSchema(w.In); ok {
			ren := make(map[string]string, len(w.Pairs))
			for _, r := range w.Pairs {
				ren[r.Old] = r.New
			}
			if lay := in.Lay.Rename(ren); lay != nil {
				var nested map[string]*Inner
				for k, v := range in.Nested {
					if nested == nil {
						nested = map[string]*Inner{}
					}
					if nn, ok := ren[k]; ok {
						nested[nn] = v
					} else {
						nested[k] = v
					}
				}
				return Schema{Lay: lay, Nested: nested, Native: true}, true
			}
		}
		return genericSchema(op)

	case ProjectDistinct:
		if in, ok := ResolveSchema(w.In); ok {
			names := make([]string, len(w.Pairs))
			var nested map[string]*Inner
			for i, r := range w.Pairs {
				names[i] = r.New
				if inner := in.nested(r.Old); inner != nil {
					if nested == nil {
						nested = map[string]*Inner{}
					}
					nested[r.New] = inner
				}
			}
			if lay := value.NewLayout(names...); lay != nil {
				return Schema{Lay: lay, Nested: nested, Native: true}, true
			}
		}
		return genericSchema(op)

	case Map:
		if in, ok := ResolveSchema(w.In); ok {
			lay, _ := in.Lay.Extend(w.Attr)
			return Schema{Lay: lay,
				Nested: nestedWith(in.Nested, w.Attr, exprNested(w.E, in)), Native: true}, true
		}
		return genericSchema(op)

	case UnnestMap:
		if in, ok := ResolveSchema(w.In); ok {
			lay, _ := in.Lay.Extend(w.Attr)
			if w.PosAttr != "" {
				lay, _ = lay.Extend(w.PosAttr)
			}
			// Υ binds items, never tuple sequences.
			return Schema{Lay: lay, Nested: nestedWith(in.Nested, w.Attr, nil), Native: true}, true
		}
		return genericSchema(op)

	case IndexScan:
		if in, ok := ResolveSchema(w.In); ok {
			lay, _ := in.Lay.Extend(w.Attr)
			// An index scan binds nodes, never tuple sequences.
			return Schema{Lay: lay, Nested: nestedWith(in.Nested, w.Attr, nil), Native: true}, true
		}
		return genericSchema(op)

	case XiSimple:
		if in, ok := ResolveSchema(w.In); ok {
			return Schema{Lay: in.Lay, Nested: in.Nested, Native: true}, true
		}
		return genericSchema(op)
	case XiGroupStream:
		if in, ok := ResolveSchema(w.In); ok {
			return Schema{Lay: in.Lay, Nested: in.Nested, Native: true}, true
		}
		return genericSchema(op)
	case XiGroup:
		if in, ok := ResolveSchema(w.In); ok {
			return Schema{Lay: in.Lay, Nested: in.Nested, Native: true}, true
		}
		return genericSchema(op)

	case Sort:
		if in, ok := ResolveSchema(w.In); ok {
			return Schema{Lay: in.Lay, Nested: in.Nested, Native: true}, true
		}
		return genericSchema(op)

	case AttachSeq:
		if in, ok := ResolveSchema(w.In); ok {
			lay, _ := in.Lay.Extend(w.Attr)
			return Schema{Lay: lay, Nested: in.Nested, Native: true}, true
		}
		return genericSchema(op)

	case Cross:
		return concatSchema(op, w.L, w.R)
	case Join:
		return concatSchema(op, w.L, w.R)
	case OuterJoin:
		return concatSchema(op, w.L, w.R)
	case SemiJoin:
		if l, ok := ResolveSchema(w.L); ok {
			if _, rok := ResolveSchema(w.R); rok {
				return Schema{Lay: l.Lay, Nested: l.Nested, Native: true}, true
			}
		}
		return genericSchema(op)
	case AntiJoin:
		if l, ok := ResolveSchema(w.L); ok {
			if _, rok := ResolveSchema(w.R); rok {
				return Schema{Lay: l.Lay, Nested: l.Nested, Native: true}, true
			}
		}
		return genericSchema(op)

	case GroupSelf:
		if in, ok := ResolveSchema(w.In); ok {
			lay, slot := in.Lay.Extend(w.G)
			if slot == in.Lay.Width() { // G must be fresh
				nested := nestedWith(in.Nested, w.G, fnNested(w.F, in))
				return Schema{Lay: lay, Nested: nested, Native: true}, true
			}
		}
		return genericSchema(op)

	case GroupUnary:
		if in, ok := ResolveSchema(w.In); ok {
			if lay := value.NewLayout(append(append([]string(nil), w.By...), w.G)...); lay != nil {
				nested := nestedWith(nestedKept(in.Nested, lay), w.G, fnNested(w.F, in))
				return Schema{Lay: lay, Nested: nested, Native: true}, true
			}
		}
		return genericSchema(op)

	case GroupBinary:
		l, lok := ResolveSchema(w.L)
		r, rok := ResolveSchema(w.R)
		if lok && rok {
			lay, slot := l.Lay.Extend(w.G)
			if slot == l.Lay.Width() { // G must be fresh
				nested := nestedWith(l.Nested, w.G, fnNested(w.F, r))
				return Schema{Lay: lay, Nested: nested, Native: true}, true
			}
		}
		return genericSchema(op)

	case Unnest:
		return unnestSchema(op, w.In, w.Attr, w.InnerAttrs)
	case UnnestDistinct:
		return unnestSchema(op, w.In, w.Attr, nil)

	// The partitioned operator family: output layouts mirror the ordered
	// counterparts (concatenation for the joins, left-side layout for ⋉ᵁ/▷ᵁ,
	// key+group for Γᵁ).
	case GraceJoin:
		return concatSchema(op, w.L, w.R)
	case OPHashJoin:
		return concatSchema(op, w.L, w.R)
	case UnorderedJoin:
		return concatSchema(op, w.L, w.R)
	case UnorderedOuterJoin:
		return concatSchema(op, w.L, w.R)
	case UnorderedSemiJoin:
		if l, ok := ResolveSchema(w.L); ok {
			if _, rok := ResolveSchema(w.R); rok {
				return Schema{Lay: l.Lay, Nested: l.Nested, Native: true}, true
			}
		}
		return genericSchema(op)
	case UnorderedAntiJoin:
		if l, ok := ResolveSchema(w.L); ok {
			if _, rok := ResolveSchema(w.R); rok {
				return Schema{Lay: l.Lay, Nested: l.Nested, Native: true}, true
			}
		}
		return genericSchema(op)
	case UnorderedGroupUnary:
		if in, ok := ResolveSchema(w.In); ok {
			if lay := value.NewLayout(append(append([]string(nil), w.By...), w.G)...); lay != nil {
				nested := nestedWith(nestedKept(in.Nested, lay), w.G, fnNested(w.F, in))
				return Schema{Lay: lay, Nested: nested, Native: true}, true
			}
		}
		return genericSchema(op)
	case UnorderedGroupBinary:
		l, lok := ResolveSchema(w.L)
		r, rok := ResolveSchema(w.R)
		if lok && rok {
			lay, slot := l.Lay.Extend(w.G)
			if slot == l.Lay.Width() { // G must be fresh
				nested := nestedWith(l.Nested, w.G, fnNested(w.F, r))
				return Schema{Lay: lay, Nested: nested, Native: true}, true
			}
		}
		return genericSchema(op)

	default:
		// Unknown extensions execute through the fallback shim over their
		// static attribute set.
		return genericSchema(op)
	}
}

// concatSchema types the binary operators whose output is l ◦ r.
func concatSchema(op Op, lop, rop Op) (Schema, bool) {
	l, lok := ResolveSchema(lop)
	r, rok := ResolveSchema(rop)
	if lok && rok {
		if lay, ok := l.Lay.Concat(r.Lay); ok {
			return Schema{Lay: lay, Nested: nestedUnion(l.Nested, r.Nested), Native: true}, true
		}
	}
	return genericSchema(op)
}

// unnestSchema types µ/µD: the input minus the group attribute, extended by
// the group's inner layout. The inner layout comes from the operator hint
// (InnerAttrs) or from the resolver's nested-attribute tracking. Inner
// attributes that collide with kept input attributes share the slot (the
// group tuple wins, matching Concat's map semantics — e.g. µ over Γ, where
// the grouping key reappears inside the group members).
func unnestSchema(op Op, in Op, attr string, innerAttrs []string) (Schema, bool) {
	if insc, ok := ResolveSchema(in); ok {
		inner := insc.nested(attr)
		if innerAttrs != nil {
			inner = &Inner{Lay: value.NewLayout(innerAttrs...)}
		}
		if inner != nil && inner.Lay != nil {
			base, _ := insc.Lay.Drop([]string{attr})
			names := append([]string(nil), base.Names()...)
			for _, n := range inner.Lay.Names() {
				if !base.Has(n) {
					names = append(names, n)
				}
			}
			if lay := value.NewLayout(names...); lay != nil {
				// The released members' own nested schemas join the output's:
				// that is what makes Γ-under-µ (nested-in-nested payloads)
				// resolve natively. On a name collision the group side wins,
				// matching Concat's map semantics.
				nested := nestedUnion(nestedKept(insc.Nested, base),
					nestedKept(inner.Nested, lay))
				return Schema{Lay: lay, Nested: nested, Native: true}, true
			}
		}
	}
	return genericSchema(op)
}

// genericSchema types an operator by its static attribute set alone; the
// operator will execute through the definitional evaluator behind a
// conversion shim. Fails when the attribute set is unknown.
func genericSchema(op Op) (Schema, bool) {
	attrs, ok := op.Attrs()
	if !ok {
		return Schema{}, false
	}
	return Schema{Lay: value.SortedLayout(attrs), Native: false}, true
}
