package algebra

import (
	"testing"

	"nalquery/internal/value"
)

func TestArithExpr(t *testing.T) {
	n := func(f float64) Expr { return ConstVal{V: value.Float(f)} }
	cases := []struct {
		e    Expr
		want value.Value
	}{
		{ArithExpr{L: n(2), R: n(3), Op: '+'}, value.Float(5)},
		{ArithExpr{L: n(2), R: n(3), Op: '-'}, value.Float(-1)},
		{ArithExpr{L: n(2), R: n(3), Op: '*'}, value.Float(6)},
		{ArithExpr{L: n(6), R: n(3), Op: '/'}, value.Float(2)},
		{ArithExpr{L: n(7), R: n(3), Op: '%'}, value.Float(1)},
		{ArithExpr{L: n(1), R: n(0), Op: '/'}, value.Null{}},
		{ArithExpr{L: n(1), R: n(0), Op: '%'}, value.Null{}},
		{ArithExpr{L: ConstVal{V: value.Str("abc")}, R: n(1), Op: '+'}, value.Null{}},
		{ArithExpr{L: ConstVal{V: value.Null{}}, R: n(1), Op: '+'}, value.Null{}},
		// Untyped string operands promote numerically.
		{ArithExpr{L: ConstVal{V: value.Str("10")}, R: n(4), Op: '-'}, value.Float(6)},
	}
	for _, c := range cases {
		got := c.e.Eval(NewCtx(nil), nil)
		if !value.DeepEqual(got, c.want) {
			t.Errorf("%s = %v, want %v", c.e.String(), got, c.want)
		}
	}
}

func TestArithString(t *testing.T) {
	e := ArithExpr{L: Var{Name: "x"}, R: ConstVal{V: value.Int(1)}, Op: '/'}
	if e.String() != "(x div 1)" {
		t.Fatalf("arith string: %s", e.String())
	}
	m := ArithExpr{L: Var{Name: "x"}, R: ConstVal{V: value.Int(2)}, Op: '%'}
	if m.String() != "(x mod 2)" {
		t.Fatalf("mod string: %s", m.String())
	}
	fv := map[string]bool{}
	e.FreeVars(fv)
	if !fv["x"] {
		t.Fatalf("arith free vars: %v", fv)
	}
}

func TestExtendedBuiltins(t *testing.T) {
	cases := []struct {
		fn   string
		args []value.Value
		want value.Value
	}{
		{"unordered", []value.Value{value.Seq{value.Int(1)}}, value.Seq{value.Int(1)}},
		{"string-length", []value.Value{value.Str("héllo")}, value.Int(5)},
		{"string-length", []value.Value{value.Null{}}, value.Int(0)},
		{"starts-with", []value.Value{value.Str("Stevens"), value.Str("Ste")}, value.Bool(true)},
		{"starts-with", []value.Value{value.Str("Stevens"), value.Str("eve")}, value.Bool(false)},
		{"ends-with", []value.Value{value.Str("Stevens"), value.Str("ens")}, value.Bool(true)},
		{"upper-case", []value.Value{value.Str("abc")}, value.Str("ABC")},
		{"lower-case", []value.Value{value.Str("AbC")}, value.Str("abc")},
		{"normalize-space", []value.Value{value.Str("  a  b \n c ")}, value.Str("a b c")},
	}
	for _, c := range cases {
		got := evalBuiltin(c.fn, c.args)
		if !value.DeepEqual(got, c.want) {
			t.Errorf("%s(%v) = %v, want %v", c.fn, c.args, got, c.want)
		}
	}
	// data() atomizes.
	got := evalBuiltin("data", []value.Value{value.Seq{value.Str("a"), value.Str("b")}})
	if s, ok := got.(value.Seq); !ok || len(s) != 2 {
		t.Errorf("data() = %v", got)
	}
}
