package algebra

import (
	"math/rand"
	"testing"
	"testing/quick"

	"nalquery/internal/value"
)

// iterMatches asserts iterator evaluation equals materialized evaluation
// for an operator, including Ξ side effects.
func iterMatches(t *testing.T, op Op) {
	t.Helper()
	ctxM := NewCtx(nil)
	want := op.Eval(ctxM, nil)
	ctxI := NewCtx(nil)
	got := RunIter(op, ctxI, nil)
	if !value.TupleSeqEqual(want, got) {
		t.Fatalf("iterator mismatch for %s:\nmaterialized: %s\niterator:     %s",
			op.String(), want, got)
	}
	if ctxM.OutString() != ctxI.OutString() {
		t.Fatalf("Ξ output mismatch for %s: %q vs %q", op.String(), ctxM.OutString(), ctxI.OutString())
	}
}

func TestIterBasicOps(t *testing.T) {
	ops := []Op{
		Singleton{},
		Select{In: relR2(), Pred: CmpExpr{L: Var{Name: "B"}, R: ConstVal{V: value.Int(3)}, Op: value.CmpGt}},
		Project{In: relR2(), Names: []string{"A2"}},
		ProjectDrop{In: relR2(), Names: []string{"B"}},
		ProjectRename{In: relR2(), Pairs: []Rename{{New: "C", Old: "A2"}}},
		ProjectDistinct{In: relR2(), Pairs: []Rename{{New: "A1", Old: "A2"}}},
		Map{In: relR1(), Attr: "x", E: ConstVal{V: value.Int(9)}},
		Cross{L: relR1(), R: relR2()},
		Join{L: relR1(), R: relR2(), Pred: eqCmp("A1", "A2")},
		SemiJoin{L: relR1(), R: relR2(), Pred: eqCmp("A1", "A2")},
		AntiJoin{L: relR1(), R: relR2(), Pred: eqCmp("A1", "A2")},
		GroupUnary{In: relR2(), G: "g", By: []string{"A2"}, Theta: value.CmpEq, F: SFCount{}},
		GroupBinary{L: relR1(), R: relR2(), G: "g", LAttrs: []string{"A1"}, RAttrs: []string{"A2"}, Theta: value.CmpEq, F: SFCount{}},
		XiSimple{In: relR1(), Cmds: []Command{ExprCmd(Var{Name: "A1"}), LitCmd(";")}},
	}
	for _, op := range ops {
		iterMatches(t, op)
	}
}

func TestIterOuterJoin(t *testing.T) {
	grouped := GroupUnary{In: relR2(), G: "g", By: []string{"A2"}, Theta: value.CmpEq, F: SFCount{}}
	iterMatches(t, OuterJoin{L: relR1(), R: grouped, Pred: eqCmp("A1", "A2"), G: "g", Default: SFCount{}})
}

func TestIterUnnest(t *testing.T) {
	grouped := GroupBinary{L: relR1(), R: relR2(), G: "g",
		LAttrs: []string{"A1"}, RAttrs: []string{"A2"}, Theta: value.CmpEq, F: SFIdent{}}
	iterMatches(t, Unnest{In: grouped, Attr: "g"})
}

func TestIterUnnestMap(t *testing.T) {
	iterMatches(t, UnnestMap{In: relR1(), Attr: "b", E: NestedApply{
		F:    SFProject{Attrs: []string{"B"}},
		Plan: Select{In: relR2(), Pred: eqCmp("A1", "A2")},
	}})
}

func TestIterCloseIdempotent(t *testing.T) {
	it := OpenIter(Select{In: relR1(), Pred: ConstVal{V: value.Bool(true)}}, NewCtx(nil), nil)
	it.Close()
	it.Close()
}

func TestIterEarlyClose(t *testing.T) {
	it := OpenIter(Cross{L: relR1(), R: relR2()}, NewCtx(nil), nil)
	if _, ok := it.Next(); !ok {
		t.Fatalf("expected at least one tuple")
	}
	it.Close()
}

// TestIterMatchesEvalProperty: random plan shapes evaluate identically
// under both engines.
func TestIterMatchesEvalProperty(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		mk := func(attrs []string) constOp {
			n := rng.Intn(7)
			ts := make(value.TupleSeq, n)
			for i := range ts {
				tp := value.Tuple{}
				for _, a := range attrs {
					tp[a] = value.Int(int64(rng.Intn(4)))
				}
				ts[i] = tp
			}
			return constOp{ts: ts, attrs: attrs}
		}
		e1 := mk([]string{"A1"})
		e2 := mk([]string{"A2", "B"})
		var op Op
		switch rng.Intn(6) {
		case 0:
			op = Join{L: e1, R: e2, Pred: eqCmp("A1", "A2")}
		case 1:
			op = SemiJoin{L: e1, R: e2, Pred: eqCmp("A1", "A2")}
		case 2:
			op = AntiJoin{L: e1, R: e2, Pred: eqCmp("A1", "A2")}
		case 3:
			op = GroupBinary{L: e1, R: e2, G: "g", LAttrs: []string{"A1"},
				RAttrs: []string{"A2"}, Theta: value.CmpEq, F: SFCount{}}
		case 4:
			op = Select{In: Cross{L: e1, R: e2}, Pred: eqCmp("A1", "A2")}
		default:
			op = ProjectDistinct{In: e2, Pairs: []Rename{{New: "k", Old: "A2"}}}
		}
		a := op.Eval(NewCtx(nil), nil)
		b := RunIter(op, NewCtx(nil), nil)
		return value.TupleSeqEqual(a, b)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
