package algebra

import (
	"fmt"

	"nalquery/internal/value"
)

// Per-run resource governance. The paper's plan alternatives differ exactly
// in how much state their pipeline breakers materialize (hash builds, sort
// buffers, grouped payloads), and an adversarial or mis-estimated query can
// grow that state without bound. A Budget turns unbounded growth into a
// per-query failure: every materialization point charges the run's budget,
// and the first charge past a limit aborts the run with a typed
// ResourceTrip — the process-level analogue of "degrade per query, not per
// process".
//
// Accounting is an estimate, not an RSS measurement: each materialized row
// or tuple charges a fixed structural overhead plus one machine word per
// attribute slot, and Ξ serialization charges the emitted bytes (output
// accumulates in spill buffers and in-memory builders, so it is a
// materialization point too). The model is deliberately cheap — a couple of
// integer adds and compares per materialized row, nothing on streaming
// rows — and consistent across both engines, which is what a trip threshold
// needs; it is not a promise about exact heap use.

// Trip-point labels. Every charge and fault site names the operator
// boundary it guards; the label travels on the ResourceTrip so callers can
// see which materialization tripped, and the fault-injection harness keys
// on it to force allocation failure at one exact boundary.
const (
	// TripScan is the Υ scan producer (per produced tuple).
	TripScan = "scan"
	// TripBuild is the build side of the order-preserving hash-join family
	// and the materialized right input of ×.
	TripBuild = "build"
	// TripProbe is the probe side of a join (streaming — a fault point, not
	// a charge point).
	TripProbe = "probe"
	// TripSort is the Sort breaker's materialization buffer.
	TripSort = "sort"
	// TripGroup is a Γ/Ξ-group bucket table or grouped payload backing.
	TripGroup = "group"
	// TripPartition is a partition build of the Grace/OPHash joins and the
	// unordered operator family.
	TripPartition = "partition"
	// TripDedup is a µD/ΠD duplicate-elimination table.
	TripDedup = "dedup"
	// TripSerialize is Ξ result emission (literal markup and values).
	TripSerialize = "serialize"
)

// Budget is the per-run resource governor: byte and tuple limits plus the
// running charge counters. A Budget belongs to exactly one run (one Ctx)
// and is accessed from that run's single goroutine — no synchronization.
// The zero limits mean "unlimited"; a nil *Budget on the Ctx disables all
// accounting (the default — one nil check per materialized row).
type Budget struct {
	// MaxBytes bounds the estimated bytes materialized by the run
	// (0 = unlimited).
	MaxBytes int64
	// MaxTuples bounds the tuples materialized by the run (0 = unlimited).
	MaxTuples int64

	bytes  int64
	tuples int64

	// hook, when set, is the fault-injection point: it is consulted on
	// every charge and fault site with the site's trip label, and a true
	// return forces the trip regardless of the limits — a deterministic
	// stand-in for allocation failure at that boundary.
	hook func(point string) bool
}

// NewBudget builds a budget with the given limits (0 = unlimited).
func NewBudget(maxBytes, maxTuples int64) *Budget {
	return &Budget{MaxBytes: maxBytes, MaxTuples: maxTuples}
}

// SetFaultHook installs the fault-injection hook (see Budget.hook). The
// hook is called from the run's goroutine only.
func (b *Budget) SetFaultHook(h func(point string) bool) { b.hook = h }

// Bytes returns the estimated bytes charged so far.
func (b *Budget) Bytes() int64 { return b.bytes }

// Tuples returns the tuples charged so far.
func (b *Budget) Tuples() int64 { return b.tuples }

// trip raises the typed resource panic. The public Run/Results boundary
// recovers it into *nalquery.ResourceError — it is the one sanctioned
// panic of the engine, used because the iterator protocol has no error
// channel and a budget trip must abort the whole pipeline, not one
// operator.
func (b *Budget) trip(point string) {
	panic(&ResourceTrip{Op: point, Bytes: b.bytes, Tuples: b.tuples,
		MaxBytes: b.MaxBytes, MaxTuples: b.MaxTuples})
}

// exceeded reports whether a limit has been crossed.
func (b *Budget) exceeded() bool {
	return (b.MaxBytes > 0 && b.bytes > b.MaxBytes) ||
		(b.MaxTuples > 0 && b.tuples > b.MaxTuples)
}

// ResourceTrip is the panic payload of a budget trip. It carries the
// operator boundary that tripped and the charge counters at that moment;
// the public API converts it into the typed *nalquery.ResourceError, so it
// never escapes to callers as a panic.
type ResourceTrip struct {
	// Op is the trip-point label (TripScan, TripBuild, ...).
	Op string
	// Bytes and Tuples are the charges accumulated when the trip fired.
	Bytes, Tuples int64
	// MaxBytes and MaxTuples are the run's limits (0 = unlimited — the
	// trip then came from the fault-injection hook).
	MaxBytes, MaxTuples int64
}

func (t *ResourceTrip) Error() string {
	return fmt.Sprintf("resource budget exhausted at %s (%d bytes, %d tuples; limits %d bytes, %d tuples)",
		t.Op, t.Bytes, t.Tuples, t.MaxBytes, t.MaxTuples)
}

// Byte-accounting model: a materialized row costs its backing slice header
// plus one interface word pair per slot; a map tuple costs the same per
// entry plus the map's per-entry overhead. Serialized values without a
// cheaply known size charge a flat word count.
const (
	rowOverheadBytes   = 48
	rowSlotBytes       = 16
	tupleEntryBytes    = 48
	dedupEntryBytes    = 64
	emitValueFlatBytes = 32
)

func approxRowBytes(r value.Row) int64 {
	return rowOverheadBytes + rowSlotBytes*int64(len(r.Vals))
}

func approxTupleBytes(t value.Tuple) int64 {
	return rowOverheadBytes + tupleEntryBytes*int64(len(t))
}

// charge debits the run's budget at a materialization point and trips when
// a limit is crossed (or the fault hook fires). With no budget attached it
// is a single nil check — the disabled-by-default cost every existing plan
// pays.
func (c *Ctx) charge(point string, tuples int, bytes int64) {
	b := c.Budget
	if b == nil {
		return
	}
	b.tuples += int64(tuples)
	b.bytes += bytes
	if b.hook != nil && b.hook(point) {
		b.trip(point)
	}
	if b.exceeded() {
		b.trip(point)
	}
}

// ChargeRow debits one materialized slot row.
func (c *Ctx) ChargeRow(point string, r value.Row) {
	if c.Budget == nil {
		return
	}
	c.charge(point, 1, approxRowBytes(r))
}

// ChargeTuple debits one materialized map tuple (the reference engine's
// data model).
func (c *Ctx) ChargeTuple(point string, t value.Tuple) {
	if c.Budget == nil {
		return
	}
	c.charge(point, 1, approxTupleBytes(t))
}

// ChargeTuples bulk-debits a materialized tuple sequence (the reference
// engine's breakers materialize whole inputs at once).
func (c *Ctx) ChargeTuples(point string, ts value.TupleSeq) {
	if c.Budget == nil || len(ts) == 0 {
		return
	}
	var bytes int64
	for _, t := range ts {
		bytes += approxTupleBytes(t)
	}
	c.charge(point, len(ts), bytes)
}

// ChargeBytes debits raw bytes (Ξ serialization, payload backings).
func (c *Ctx) ChargeBytes(point string, n int) {
	if c.Budget == nil {
		return
	}
	c.charge(point, 0, int64(n))
}

// Fault is a pure fault-injection point for boundaries that stream rather
// than materialize (the probe side of a join): it charges nothing and only
// consults the injection hook. Disabled cost: one nil check.
func (c *Ctx) Fault(point string) {
	b := c.Budget
	if b == nil || b.hook == nil {
		return
	}
	if b.hook(point) {
		b.trip(point)
	}
}
