package algebra

import (
	"fmt"
	"strconv"
	"strings"

	"nalquery/internal/value"
)

// evalBuiltin implements the item-level builtin function library used by the
// paper's queries.
func evalBuiltin(fn string, args []value.Value) value.Value {
	switch fn {
	case "true":
		return value.Bool(true)
	case "false":
		return value.Bool(false)
	case "not":
		return value.Bool(!value.EffectiveBool(arg(args, 0)))
	case "exists":
		return value.Bool(nonEmpty(arg(args, 0)))
	case "empty":
		return value.Bool(!nonEmpty(arg(args, 0)))
	case "count":
		return value.Int(int64(itemCount(arg(args, 0))))
	case "string":
		a := value.AtomizeSingle(arg(args, 0))
		if a == nil {
			return value.Str("")
		}
		return value.Str(a.String())
	case "decimal", "number":
		a := value.AtomizeSingle(arg(args, 0))
		if a == nil {
			return value.Null{}
		}
		f, err := strconv.ParseFloat(strings.TrimSpace(a.String()), 64)
		if err != nil {
			return value.Null{}
		}
		return value.Float(f)
	case "concat":
		var sb strings.Builder
		for _, a := range args {
			sb.WriteString(PrintValue(a))
		}
		return value.Str(sb.String())
	case "contains":
		s := value.AtomizeSingle(arg(args, 0))
		sub := value.AtomizeSingle(arg(args, 1))
		if s == nil || sub == nil {
			return value.Bool(false)
		}
		return value.Bool(strings.Contains(s.String(), sub.String()))
	case "distinct-values":
		return distinctValues(arg(args, 0))
	case "min", "max", "sum", "avg":
		return aggregate(fn, atomsOf(arg(args, 0)))
	case "unordered":
		// unordered(e) signals that the result order is irrelevant (paper
		// Sec. 1). This engine's operators all preserve order anyway, so the
		// function is the identity; it is accepted so that queries written
		// for unordered processors run unchanged.
		return arg(args, 0)
	case "data":
		return value.Atomize(arg(args, 0))
	case "string-length":
		a := value.AtomizeSingle(arg(args, 0))
		if a == nil {
			return value.Int(0)
		}
		return value.Int(int64(len([]rune(a.String()))))
	case "starts-with":
		s := value.AtomizeSingle(arg(args, 0))
		p := value.AtomizeSingle(arg(args, 1))
		if s == nil || p == nil {
			return value.Bool(false)
		}
		return value.Bool(strings.HasPrefix(s.String(), p.String()))
	case "ends-with":
		s := value.AtomizeSingle(arg(args, 0))
		p := value.AtomizeSingle(arg(args, 1))
		if s == nil || p == nil {
			return value.Bool(false)
		}
		return value.Bool(strings.HasSuffix(s.String(), p.String()))
	case "upper-case":
		a := value.AtomizeSingle(arg(args, 0))
		if a == nil {
			return value.Str("")
		}
		return value.Str(strings.ToUpper(a.String()))
	case "lower-case":
		a := value.AtomizeSingle(arg(args, 0))
		if a == nil {
			return value.Str("")
		}
		return value.Str(strings.ToLower(a.String()))
	case "normalize-space":
		a := value.AtomizeSingle(arg(args, 0))
		if a == nil {
			return value.Str("")
		}
		return value.Str(strings.Join(strings.Fields(a.String()), " "))
	case "substring":
		// substring(s, start[, length]) with XQuery's 1-based positions.
		s := stringArg(args, 0)
		start, ok := floatArg(args, 1)
		if !ok {
			return value.Str("")
		}
		runes := []rune(s)
		lo := int(start) - 1
		hi := len(runes)
		if len(args) > 2 {
			ln, ok := floatArg(args, 2)
			if !ok {
				return value.Str("")
			}
			hi = lo + int(ln)
		}
		if lo < 0 {
			lo = 0
		}
		if hi > len(runes) {
			hi = len(runes)
		}
		if lo >= hi {
			return value.Str("")
		}
		return value.Str(string(runes[lo:hi]))
	case "substring-before":
		s, sub := stringArg(args, 0), stringArg(args, 1)
		if i := strings.Index(s, sub); i >= 0 && sub != "" {
			return value.Str(s[:i])
		}
		return value.Str("")
	case "substring-after":
		s, sub := stringArg(args, 0), stringArg(args, 1)
		if i := strings.Index(s, sub); i >= 0 && sub != "" {
			return value.Str(s[i+len(sub):])
		}
		return value.Str("")
	case "string-join":
		atoms := atomsOf(arg(args, 0))
		sep := stringArg(args, 1)
		parts := make([]string, len(atoms))
		for i, a := range atoms {
			parts[i] = a.String()
		}
		return value.Str(strings.Join(parts, sep))
	case "translate":
		s, from, to := stringArg(args, 0), []rune(stringArg(args, 1)), []rune(stringArg(args, 2))
		var sb strings.Builder
		for _, r := range s {
			replaced := false
			for i, f := range from {
				if r == f {
					replaced = true
					if i < len(to) {
						sb.WriteRune(to[i])
					}
					break
				}
			}
			if !replaced {
				sb.WriteRune(r)
			}
		}
		return value.Str(sb.String())
	case "abs":
		f, ok := floatArg(args, 0)
		if !ok {
			return value.Null{}
		}
		if f < 0 {
			f = -f
		}
		return value.Float(f)
	case "floor":
		f, ok := floatArg(args, 0)
		if !ok {
			return value.Null{}
		}
		return value.Float(mathFloor(f))
	case "ceiling":
		f, ok := floatArg(args, 0)
		if !ok {
			return value.Null{}
		}
		return value.Float(-mathFloor(-f))
	case "round":
		f, ok := floatArg(args, 0)
		if !ok {
			return value.Null{}
		}
		// XPath rounds halves towards positive infinity.
		return value.Float(mathFloor(f + 0.5))
	case "boolean":
		return value.Bool(value.EffectiveBool(arg(args, 0)))
	case "zero-or-one":
		v := arg(args, 0)
		if itemCount(v) > 1 {
			return value.Null{}
		}
		return v
	case "exactly-one":
		v := arg(args, 0)
		if itemCount(v) != 1 {
			return value.Null{}
		}
		return v
	default:
		// Unknown functions evaluate to empty; the frontend rejects them
		// before execution.
		return value.Null{}
	}
}

func arg(args []value.Value, i int) value.Value {
	if i < len(args) {
		return args[i]
	}
	return value.Null{}
}

// stringArg atomizes the i-th argument to a string; empty values map to "".
func stringArg(args []value.Value, i int) string {
	a := value.AtomizeSingle(arg(args, i))
	if a == nil {
		return ""
	}
	return a.String()
}

// floatArg atomizes the i-th argument to a number.
func floatArg(args []value.Value, i int) (float64, bool) {
	a := value.AtomizeSingle(arg(args, i))
	if a == nil {
		return 0, false
	}
	f, err := strconv.ParseFloat(strings.TrimSpace(a.String()), 64)
	return f, err == nil
}

// mathFloor avoids importing math for the one function the rounding family
// needs.
func mathFloor(f float64) float64 {
	i := float64(int64(f))
	if f < 0 && f != i {
		return i - 1
	}
	return i
}

func nonEmpty(v value.Value) bool {
	switch w := v.(type) {
	case nil, value.Null:
		return false
	case value.Seq:
		return len(w) > 0
	case value.TupleSeq:
		return len(w) > 0
	case value.RowSeq:
		return w.Len() > 0
	default:
		return true
	}
}

func itemCount(v value.Value) int {
	switch w := v.(type) {
	case nil, value.Null:
		return 0
	case value.Seq:
		return len(w)
	case value.TupleSeq:
		return len(w)
	case value.RowSeq:
		return w.Len()
	default:
		return 1
	}
}

// atomsOf flattens a value into its atomic items. Tuple sequences contribute
// the atomized values of all their attributes in order (the tuples produced
// by nested query blocks carry a single attribute).
func atomsOf(v value.Value) value.Seq {
	switch w := v.(type) {
	case value.TupleSeq:
		var out value.Seq
		for _, t := range w {
			t.EachValue(func(x value.Value) { out = append(out, value.Atomize(x)...) })
		}
		return out
	case value.RowSeq:
		var out value.Seq
		for i := 0; i < w.Len(); i++ {
			w.EachValue(i, func(x value.Value) { out = append(out, value.Atomize(x)...) })
		}
		return out
	default:
		return value.Atomize(v)
	}
}

// distinctValues implements XQuery's distinct-values on an item sequence:
// atomize and remove duplicates. Like ΠD it need not preserve order but must
// be deterministic; we keep first-occurrence order, which satisfies both
// requirements.
func distinctValues(v value.Value) value.Seq {
	atoms := atomsOf(v)
	seen := make(map[string]bool, len(atoms))
	var out value.Seq
	for _, a := range atoms {
		k := value.Key(a)
		if !seen[k] {
			seen[k] = true
			out = append(out, a)
		}
	}
	return out
}

func aggregate(fn string, atoms value.Seq) value.Value {
	if len(atoms) == 0 {
		if fn == "sum" {
			return value.Int(0)
		}
		return value.Null{}
	}
	nums := make([]float64, 0, len(atoms))
	allNum := true
	for _, a := range atoms {
		f, err := strconv.ParseFloat(strings.TrimSpace(a.String()), 64)
		if err != nil {
			allNum = false
			break
		}
		nums = append(nums, f)
	}
	if allNum {
		best := nums[0]
		sum := 0.0
		for _, f := range nums {
			sum += f
			switch fn {
			case "min":
				if f < best {
					best = f
				}
			case "max":
				if f > best {
					best = f
				}
			}
		}
		switch fn {
		case "min", "max":
			return value.Float(best)
		case "sum":
			return value.Float(sum)
		case "avg":
			return value.Float(sum / float64(len(nums)))
		}
	}
	// String min/max; sum/avg over non-numeric values is an empty result.
	if fn == "min" || fn == "max" {
		best := atoms[0].String()
		for _, a := range atoms[1:] {
			s := a.String()
			if (fn == "min" && s < best) || (fn == "max" && s > best) {
				best = s
			}
		}
		return value.Str(best)
	}
	return value.Null{}
}

// SeqFunc is the function f in operator subscripts such as Γg;θA;f and
// χg:f(σ...(e2)): a function from an ordered tuple sequence to a value.
// Implementations must assign a meaningful value to the empty sequence
// (Sec. 2) — that value becomes the outer join default f() in Eqvs. 2 and 4.
type SeqFunc interface {
	Apply(ctx *Ctx, env value.Tuple, ts value.TupleSeq) value.Value
	String() string
	// FreeVars appends free variables of embedded predicates.
	FreeVars(dst map[string]bool)
}

// applyFnRowSeq applies a sequence function to a slot-backed group payload
// without materializing map tuples, by compiling the function against the
// payload's member layout (groupApplier) and running it over the members.
// The per-call compilation is the dynamic-payload fallback; the compiled
// AggOfAttr path caches the applier per layout instead.
func applyFnRowSeq(ctx *Ctx, env value.Tuple, f SeqFunc, rs value.RowSeq) value.Value {
	switch f.(type) {
	case SFIdent:
		return rs
	case SFCount:
		return value.Int(int64(rs.Len()))
	}
	return groupApplier(f, rs.Lay(), env)(ctx, env, rowSeqRows(rs, nil))
}

// rowSeqRows appends the members of a sequence to dst as rows.
func rowSeqRows(rs value.RowSeq, dst []value.Row) []value.Row {
	for i := 0; i < rs.Len(); i++ {
		dst = append(dst, rs.At(i))
	}
	return dst
}

// SFIdent is the identity function id.
type SFIdent struct{}

// Apply implements SeqFunc.
func (SFIdent) Apply(_ *Ctx, _ value.Tuple, ts value.TupleSeq) value.Value {
	if ts == nil {
		return value.TupleSeq{}
	}
	return ts
}

func (SFIdent) String() string { return "id" }

// FreeVars implements SeqFunc.
func (SFIdent) FreeVars(map[string]bool) {}

// SFCount counts the tuples of the sequence; the empty group counts 0.
type SFCount struct{}

// Apply implements SeqFunc.
func (SFCount) Apply(_ *Ctx, _ value.Tuple, ts value.TupleSeq) value.Value {
	return value.Int(int64(len(ts)))
}

func (SFCount) String() string { return "count" }

// FreeVars implements SeqFunc.
func (SFCount) FreeVars(map[string]bool) {}

// SFProject projects every tuple onto Attrs (f = ΠA). The empty group stays
// the empty sequence.
type SFProject struct{ Attrs []string }

// Apply implements SeqFunc.
func (p SFProject) Apply(_ *Ctx, _ value.Tuple, ts value.TupleSeq) value.Value {
	out := make(value.TupleSeq, len(ts))
	for i, t := range ts {
		out[i] = t.Project(p.Attrs)
	}
	return out
}

func (p SFProject) String() string { return "Π" + strings.Join(p.Attrs, ",") }

// FreeVars implements SeqFunc.
func (SFProject) FreeVars(map[string]bool) {}

// SFAgg is an aggregate f = agg ∘ ΠAttr: min, max, sum, avg over the
// atomized values of one attribute. The empty group yields NULL (0 for sum),
// the paper's "meaningful value for empty groups".
type SFAgg struct {
	Fn   string // min | max | sum | avg
	Attr string
}

// Apply implements SeqFunc.
func (a SFAgg) Apply(_ *Ctx, _ value.Tuple, ts value.TupleSeq) value.Value {
	var atoms value.Seq
	for _, t := range ts {
		atoms = append(atoms, value.Atomize(t[a.Attr])...)
	}
	return aggregate(a.Fn, atoms)
}

func (a SFAgg) String() string { return fmt.Sprintf("%s∘Π%s", a.Fn, a.Attr) }

// FreeVars implements SeqFunc.
func (SFAgg) FreeVars(map[string]bool) {}

// SFFiltered composes a sequence function with a selection: f ∘ σp, the form
// used by Eqvs. 8 and 9 (count ∘ σp). The predicate sees the group tuple's
// bindings concatenated onto the invoking environment.
type SFFiltered struct {
	Pred  Expr
	Inner SeqFunc
}

// Apply implements SeqFunc.
func (f SFFiltered) Apply(ctx *Ctx, env value.Tuple, ts value.TupleSeq) value.Value {
	var kept value.TupleSeq
	for _, t := range ts {
		if value.EffectiveBool(f.Pred.Eval(ctx, env.Concat(t))) {
			kept = append(kept, t)
		}
	}
	return f.Inner.Apply(ctx, env, kept)
}

func (f SFFiltered) String() string {
	return fmt.Sprintf("%s∘σ[%s]", f.Inner.String(), f.Pred.String())
}

// FreeVars implements SeqFunc.
func (f SFFiltered) FreeVars(dst map[string]bool) {
	f.Pred.FreeVars(dst)
	f.Inner.FreeVars(dst)
}
