package algebra

import (
	"strings"
	"testing"

	"nalquery/internal/dom"
	"nalquery/internal/value"
	"nalquery/internal/xpath"
)

func evalExpr(t *testing.T, e Expr, env value.Tuple) value.Value {
	t.Helper()
	return e.Eval(NewCtx(nil), env)
}

func TestVarAndConst(t *testing.T) {
	env := value.Tuple{"x": value.Int(7)}
	if got := evalExpr(t, Var{Name: "x"}, env); !value.DeepEqual(got, value.Int(7)) {
		t.Fatalf("Var: %v", got)
	}
	if got := evalExpr(t, Var{Name: "missing"}, env); got != nil {
		t.Fatalf("missing var must be nil: %v", got)
	}
	if got := evalExpr(t, ConstVal{V: value.Str("s")}, nil); !value.DeepEqual(got, value.Str("s")) {
		t.Fatalf("Const: %v", got)
	}
}

func TestDocExprCountsAccesses(t *testing.T) {
	d := dom.MustParseString(`<r/>`, "a.xml")
	ctx := NewCtx(map[string]*dom.Document{"a.xml": d})
	e := Doc{URI: "a.xml"}
	v := e.Eval(ctx, nil)
	if nv, ok := v.(value.NodeVal); !ok || nv.Node != d.Root {
		t.Fatalf("doc(): %v", v)
	}
	e.Eval(ctx, nil)
	if ctx.Stats.DocAccesses != 2 {
		t.Fatalf("DocAccesses = %d", ctx.Stats.DocAccesses)
	}
	if _, ok := (Doc{URI: "missing.xml"}).Eval(ctx, nil).(value.Null); !ok {
		t.Fatalf("missing doc must be NULL")
	}
}

func TestPathOfExpr(t *testing.T) {
	d := dom.MustParseString(`<r><a>1</a><a>2</a></r>`, "a.xml")
	env := value.Tuple{"d": value.NodeVal{Node: d.Root}}
	e := PathOf{Input: Var{Name: "d"}, Path: xpath.MustParse("//a")}
	out := evalExpr(t, e, env).(value.Seq)
	if len(out) != 2 {
		t.Fatalf("path: %v", out)
	}
}

func TestLogicalExprs(t *testing.T) {
	tr := ConstVal{V: value.Bool(true)}
	fa := ConstVal{V: value.Bool(false)}
	if !value.EffectiveBool(evalExpr(t, AndExpr{L: tr, R: tr}, nil)) ||
		value.EffectiveBool(evalExpr(t, AndExpr{L: tr, R: fa}, nil)) {
		t.Fatalf("and wrong")
	}
	if !value.EffectiveBool(evalExpr(t, OrExpr{L: fa, R: tr}, nil)) ||
		value.EffectiveBool(evalExpr(t, OrExpr{L: fa, R: fa}, nil)) {
		t.Fatalf("or wrong")
	}
	if value.EffectiveBool(evalExpr(t, NotExpr{E: tr}, nil)) {
		t.Fatalf("not wrong")
	}
}

func TestBuiltins(t *testing.T) {
	seq := value.Seq{value.Str("10"), value.Str("3"), value.Str("7.5")}
	cases := []struct {
		fn   string
		args []value.Value
		want value.Value
	}{
		{"count", []value.Value{seq}, value.Int(3)},
		{"count", []value.Value{value.Null{}}, value.Int(0)},
		{"count", []value.Value{value.Str("x")}, value.Int(1)},
		{"min", []value.Value{seq}, value.Float(3)},
		{"max", []value.Value{seq}, value.Float(10)},
		{"sum", []value.Value{seq}, value.Float(20.5)},
		{"avg", []value.Value{value.Seq{value.Int(2), value.Int(4)}}, value.Float(3)},
		{"sum", []value.Value{value.Seq{}}, value.Int(0)},
		{"min", []value.Value{value.Seq{}}, value.Null{}},
		{"min", []value.Value{value.Seq{value.Str("b"), value.Str("a")}}, value.Str("a")},
		{"max", []value.Value{value.Seq{value.Str("b"), value.Str("a")}}, value.Str("b")},
		{"exists", []value.Value{value.Seq{}}, value.Bool(false)},
		{"exists", []value.Value{value.Str("x")}, value.Bool(true)},
		{"empty", []value.Value{value.Seq{}}, value.Bool(true)},
		{"not", []value.Value{value.Bool(true)}, value.Bool(false)},
		{"true", nil, value.Bool(true)},
		{"false", nil, value.Bool(false)},
		{"string", []value.Value{value.Int(5)}, value.Str("5")},
		{"string", []value.Value{value.Null{}}, value.Str("")},
		{"decimal", []value.Value{value.Str(" 65.95 ")}, value.Float(65.95)},
		{"decimal", []value.Value{value.Str("abc")}, value.Null{}},
		{"number", []value.Value{value.Str("2")}, value.Float(2)},
		{"contains", []value.Value{value.Str("SuciuD."), value.Str("Suciu")}, value.Bool(true)},
		{"contains", []value.Value{value.Str("Stevens"), value.Str("Suciu")}, value.Bool(false)},
		{"concat", []value.Value{value.Str("a"), value.Int(1)}, value.Str("a1")},
	}
	for _, c := range cases {
		got := evalBuiltin(c.fn, c.args)
		if !value.DeepEqual(got, c.want) {
			t.Errorf("%s(%v) = %v, want %v", c.fn, c.args, got, c.want)
		}
	}
}

func TestDistinctValuesBuiltin(t *testing.T) {
	in := value.Seq{value.Str("a"), value.Str("b"), value.Str("a"), value.Str("1"), value.Int(1)}
	out := evalBuiltin("distinct-values", []value.Value{in}).(value.Seq)
	if len(out) != 3 { // a, b, 1 ("1" and 1 coincide numerically)
		t.Fatalf("distinct-values: %v", out)
	}
	// Deterministic and idempotent.
	out2 := evalBuiltin("distinct-values", []value.Value{out}).(value.Seq)
	if !value.DeepEqual(value.Value(out), value.Value(out2)) {
		t.Fatalf("distinct-values not idempotent: %v vs %v", out, out2)
	}
}

func TestAggregatesOverTupleSeq(t *testing.T) {
	// Aggregates over nested query results (tuple sequences).
	ts := value.TupleSeq{{"c": value.Float(10)}, {"c": value.Float(5)}}
	if got := evalBuiltin("min", []value.Value{ts}); !value.DeepEqual(got, value.Float(5)) {
		t.Fatalf("min over tuples: %v", got)
	}
	if got := evalBuiltin("count", []value.Value{ts}); !value.DeepEqual(got, value.Int(2)) {
		t.Fatalf("count over tuples: %v", got)
	}
}

func TestSeqFuncs(t *testing.T) {
	ctx := NewCtx(nil)
	ts := value.TupleSeq{
		{"b": value.Int(4), "k": value.Int(1)},
		{"b": value.Int(6), "k": value.Int(2)},
	}
	if got := (SFCount{}).Apply(ctx, nil, ts); !value.DeepEqual(got, value.Int(2)) {
		t.Fatalf("count: %v", got)
	}
	if got := (SFCount{}).Apply(ctx, nil, nil); !value.DeepEqual(got, value.Int(0)) {
		t.Fatalf("count(ε): %v", got)
	}
	if got := (SFIdent{}).Apply(ctx, nil, ts); !value.DeepEqual(got, value.Value(ts)) {
		t.Fatalf("id: %v", got)
	}
	if got := (SFAgg{Fn: "sum", Attr: "b"}).Apply(ctx, nil, ts); !value.DeepEqual(got, value.Float(10)) {
		t.Fatalf("sum: %v", got)
	}
	if got := (SFAgg{Fn: "min", Attr: "b"}).Apply(ctx, nil, nil); !value.DeepEqual(got, value.Null{}) {
		t.Fatalf("min(ε): %v", got)
	}
	proj := (SFProject{Attrs: []string{"b"}}).Apply(ctx, nil, ts).(value.TupleSeq)
	if len(proj) != 2 || len(proj[0]) != 1 {
		t.Fatalf("Π: %v", proj)
	}
	filt := SFFiltered{
		Pred:  CmpExpr{L: Var{Name: "b"}, R: ConstVal{V: value.Int(5)}, Op: value.CmpGt},
		Inner: SFCount{},
	}
	if got := filt.Apply(ctx, nil, ts); !value.DeepEqual(got, value.Int(1)) {
		t.Fatalf("count∘σ: %v", got)
	}
}

func TestAggOfAttr(t *testing.T) {
	env := value.Tuple{"g": value.TupleSeq{{"x": value.Int(1)}, {"x": value.Int(2)}}}
	e := AggOfAttr{F: SFCount{}, Attr: Var{Name: "g"}}
	if got := evalExpr(t, e, env); !value.DeepEqual(got, value.Int(2)) {
		t.Fatalf("agg-of-attr: %v", got)
	}
	// Non-tuple-seq attribute yields NULL.
	if got := evalExpr(t, e, value.Tuple{"g": value.Int(3)}); !value.DeepEqual(got, value.Null{}) {
		t.Fatalf("agg-of-attr over scalar: %v", got)
	}
}

func TestNestedApplyCountsEvals(t *testing.T) {
	ctx := NewCtx(nil)
	na := NestedApply{F: SFCount{}, Plan: relR2()}
	na.Eval(ctx, nil)
	na.Eval(ctx, nil)
	if ctx.Stats.NestedEvals != 2 {
		t.Fatalf("NestedEvals = %d", ctx.Stats.NestedEvals)
	}
}

func TestQuantifierExprs(t *testing.T) {
	rng := Project{In: relR2(), Names: []string{"A2"}}
	// ∃x: x = 2
	ex := ExistsQ{Var: "x", RangeAttr: "A2", Range: rng,
		Pred: CmpExpr{L: Var{Name: "x"}, R: ConstVal{V: value.Int(2)}, Op: value.CmpEq}}
	if !value.EffectiveBool(evalExpr(t, ex, nil)) {
		t.Fatalf("∃ x=2 must hold")
	}
	// ∀x: x ≤ 2 holds; ∀x: x < 2 fails.
	fa := ForallQ{Var: "x", RangeAttr: "A2", Range: rng,
		Pred: CmpExpr{L: Var{Name: "x"}, R: ConstVal{V: value.Int(2)}, Op: value.CmpLe}}
	if !value.EffectiveBool(evalExpr(t, fa, nil)) {
		t.Fatalf("∀ x<=2 must hold")
	}
	fa2 := ForallQ{Var: "x", RangeAttr: "A2", Range: rng,
		Pred: CmpExpr{L: Var{Name: "x"}, R: ConstVal{V: value.Int(2)}, Op: value.CmpLt}}
	if value.EffectiveBool(evalExpr(t, fa2, nil)) {
		t.Fatalf("∀ x<2 must fail")
	}
	// Quantifiers over the empty range: ∃ false, ∀ true.
	empty := Project{In: constOp{attrs: []string{"A2"}}, Names: []string{"A2"}}
	if value.EffectiveBool(evalExpr(t, ExistsQ{Var: "x", RangeAttr: "A2", Range: empty, Pred: ConstVal{V: value.Bool(true)}}, nil)) {
		t.Fatalf("∃ over ε must be false")
	}
	if !value.EffectiveBool(evalExpr(t, ForallQ{Var: "x", RangeAttr: "A2", Range: empty, Pred: ConstVal{V: value.Bool(false)}}, nil)) {
		t.Fatalf("∀ over ε must be true")
	}
}

func TestBindTuplesExpr(t *testing.T) {
	e := BindTuples{E: ConstVal{V: value.Seq{value.Int(1), value.Int(2)}}, Attr: "a'"}
	out := evalExpr(t, e, nil).(value.TupleSeq)
	if len(out) != 2 || !value.DeepEqual(out[0]["a'"], value.Int(1)) {
		t.Fatalf("e[a]: %v", out)
	}
}

func TestFreeVars(t *testing.T) {
	e := AndExpr{
		L: CmpExpr{L: Var{Name: "a"}, R: Var{Name: "b"}, Op: value.CmpEq},
		R: ExistsQ{Var: "x", RangeAttr: "r", Range: relR2(),
			Pred: CmpExpr{L: Var{Name: "x"}, R: Var{Name: "c"}, Op: value.CmpLt}},
	}
	fv := map[string]bool{}
	e.FreeVars(fv)
	for _, want := range []string{"a", "b", "c"} {
		if !fv[want] {
			t.Errorf("missing free var %s in %v", want, fv)
		}
	}
	if fv["x"] {
		t.Errorf("quantifier variable must be bound")
	}
}

func TestOpFreeVars(t *testing.T) {
	// A nested plan referencing an outer attribute.
	plan := Select{
		In:   relR2(),
		Pred: CmpExpr{L: Var{Name: "outer"}, R: Var{Name: "A2"}, Op: value.CmpEq},
	}
	fv := FreeVarsOf(plan)
	if len(fv) != 1 || fv[0] != "outer" {
		t.Fatalf("free vars: %v", fv)
	}
}

func TestPrintValue(t *testing.T) {
	d := dom.MustParseString(`<r><t a="v">x</t></r>`, "p.xml")
	el := d.RootElement().FirstChildElement("t")
	cases := []struct {
		v    value.Value
		want string
	}{
		{value.Null{}, ""},
		{value.Str("a<b"), "a&lt;b"},
		{value.Int(3), "3"},
		{value.NodeVal{Node: el}, `<t a="v">x</t>`},
		{value.NodeVal{Node: el.Attr("a")}, "v"},
		{value.Seq{value.Int(1), value.Int(2)}, "12"},
		{value.TupleSeq{{"t": value.NodeVal{Node: el}}}, `<t a="v">x</t>`},
	}
	for _, c := range cases {
		if got := PrintValue(c.v); got != c.want {
			t.Errorf("PrintValue(%v) = %q, want %q", c.v, got, c.want)
		}
	}
}

func TestExplainShowsNestedPlans(t *testing.T) {
	m := Map{
		In:   relR1(),
		Attr: "g",
		E:    NestedApply{F: SFCount{}, Plan: Select{In: relR2(), Pred: eqCmp("A1", "A2")}},
	}
	out := Explain(m)
	if !strings.Contains(out, "nested:") || !strings.Contains(out, "σ[A1 = A2]") {
		t.Fatalf("explain:\n%s", out)
	}
	q := Select{In: relR1(), Pred: ExistsQ{Var: "x", RangeAttr: "A2",
		Range: Project{In: relR2(), Names: []string{"A2"}}, Pred: ConstVal{V: value.Bool(true)}}}
	out2 := Explain(q)
	if !strings.Contains(out2, "∃-range:") {
		t.Fatalf("explain quantifier:\n%s", out2)
	}
}

func TestStringsAreInformative(t *testing.T) {
	// Every operator and expression has a printable form.
	ops := []Op{
		Singleton{}, Select{In: relR1(), Pred: eqCmp("A1", "A2")},
		Project{In: relR1(), Names: []string{"A1"}},
		ProjectDrop{In: relR1(), Names: []string{"A1"}},
		ProjectRename{In: relR1(), Pairs: []Rename{{New: "B", Old: "A1"}}},
		ProjectDistinct{In: relR1(), Pairs: []Rename{{New: "B", Old: "A1"}}},
		Map{In: relR1(), Attr: "x", E: ConstVal{V: value.Int(1)}},
		UnnestMap{In: relR1(), Attr: "x", E: ConstVal{V: value.Int(1)}},
		Cross{L: relR1(), R: relR2()},
		Join{L: relR1(), R: relR2(), Pred: eqCmp("A1", "A2")},
		SemiJoin{L: relR1(), R: relR2(), Pred: eqCmp("A1", "A2")},
		AntiJoin{L: relR1(), R: relR2(), Pred: eqCmp("A1", "A2")},
		OuterJoin{L: relR1(), R: relR2(), Pred: eqCmp("A1", "A2"), G: "g", Default: SFCount{}},
		GroupUnary{In: relR2(), G: "g", By: []string{"A2"}, Theta: value.CmpEq, F: SFCount{}},
		GroupBinary{L: relR1(), R: relR2(), G: "g", LAttrs: []string{"A1"}, RAttrs: []string{"A2"}, Theta: value.CmpEq, F: SFCount{}},
		Unnest{In: relR2(), Attr: "g"},
		UnnestDistinct{In: relR2(), Attr: "g"},
		XiSimple{In: relR1(), Cmds: []Command{LitCmd("x")}},
		XiGroup{In: relR2(), By: []string{"A2"}, S2: []Command{ExprCmd(Var{Name: "B"})}},
	}
	for _, op := range ops {
		if op.String() == "" {
			t.Errorf("%T has empty String()", op)
		}
	}
}
