package algebra

import (
	"fmt"
	"sort"
	"strings"

	"nalquery/internal/value"
)

// Op is an algebraic operator of NAL. Operators evaluate to ordered tuple
// sequences. The env parameter carries the bindings of free variables: a
// nested algebraic expression inside another operator's subscript is
// evaluated once per outer tuple with that tuple as environment — the
// nested-loop strategy unnesting removes.
type Op interface {
	Eval(ctx *Ctx, env value.Tuple) value.TupleSeq
	// String renders the operator (without inputs) for plan explanation.
	String() string
	// Children returns the operator's algebraic inputs.
	Children() []Op
	// Exprs returns the scalar expressions in the operator's subscript.
	Exprs() []Expr
	// Attrs returns the statically known produced attribute set, and whether
	// it is known.
	Attrs() ([]string, bool)
}

// opFreeVars computes F(e) of an operator tree: variables referenced by
// subscript expressions that are not bound by attributes produced inside the
// tree.
func opFreeVars(op Op, dst map[string]bool) {
	local := map[string]bool{}
	var walk func(o Op)
	walk = func(o Op) {
		for _, e := range o.Exprs() {
			if e != nil {
				e.FreeVars(local)
			}
		}
		for _, c := range o.Children() {
			walk(c)
		}
	}
	walk(op)
	if attrs, ok := op.Attrs(); ok {
		for _, a := range attrs {
			delete(local, a)
		}
	} else {
		// Unknown schema: subtract everything any subtree introduces.
		var sub func(o Op)
		sub = func(o Op) {
			if attrs, ok := o.Attrs(); ok {
				for _, a := range attrs {
					delete(local, a)
				}
			}
			for _, c := range o.Children() {
				sub(c)
			}
		}
		sub(op)
	}
	for k := range local {
		dst[k] = true
	}
}

// FreeVarsOf returns the sorted free variables of an operator tree.
func FreeVarsOf(op Op) []string {
	m := map[string]bool{}
	opFreeVars(op, m)
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func unionAttrs(a, b []string) []string {
	out := append([]string{}, a...)
	seen := map[string]bool{}
	for _, x := range a {
		seen[x] = true
	}
	for _, x := range b {
		if !seen[x] {
			seen[x] = true
			out = append(out, x)
		}
	}
	sort.Strings(out)
	return out
}

// Singleton is the □ operator: it returns a singleton sequence consisting of
// the empty tuple (Sec. 2).
type Singleton struct{}

// Eval implements Op.
func (Singleton) Eval(*Ctx, value.Tuple) value.TupleSeq {
	return value.TupleSeq{value.EmptyTuple()}
}

func (Singleton) String() string { return "□" }

// Children implements Op.
func (Singleton) Children() []Op { return nil }

// Exprs implements Op.
func (Singleton) Exprs() []Expr { return nil }

// Attrs implements Op.
func (Singleton) Attrs() ([]string, bool) { return nil, true }

// Select is the order-preserving selection σp.
type Select struct {
	In   Op
	Pred Expr
}

// Eval implements Op.
func (s Select) Eval(ctx *Ctx, env value.Tuple) value.TupleSeq {
	in := s.In.Eval(ctx, env)
	var out value.TupleSeq
	for _, t := range in {
		if value.EffectiveBool(s.Pred.Eval(ctx, env.Concat(t))) {
			out = append(out, t)
		}
	}
	return out
}

func (s Select) String() string { return fmt.Sprintf("σ[%s]", s.Pred.String()) }

// Children implements Op.
func (s Select) Children() []Op { return []Op{s.In} }

// Exprs implements Op.
func (s Select) Exprs() []Expr { return []Expr{s.Pred} }

// Attrs implements Op.
func (s Select) Attrs() ([]string, bool) { return s.In.Attrs() }

// Project is ΠA: projection onto a list of attributes.
type Project struct {
	In    Op
	Names []string
}

// Eval implements Op.
func (p Project) Eval(ctx *Ctx, env value.Tuple) value.TupleSeq {
	in := p.In.Eval(ctx, env)
	out := make(value.TupleSeq, len(in))
	for i, t := range in {
		out[i] = t.Project(p.Names)
	}
	return out
}

func (p Project) String() string { return "Π[" + strings.Join(p.Names, ",") + "]" }

// Children implements Op.
func (p Project) Children() []Op { return []Op{p.In} }

// Exprs implements Op.
func (p Project) Exprs() []Expr { return nil }

// Attrs implements Op.
func (p Project) Attrs() ([]string, bool) { return append([]string{}, p.Names...), true }

// ProjectDrop is Π-bar: drop a set of attributes.
type ProjectDrop struct {
	In    Op
	Names []string
}

// Eval implements Op.
func (p ProjectDrop) Eval(ctx *Ctx, env value.Tuple) value.TupleSeq {
	in := p.In.Eval(ctx, env)
	out := make(value.TupleSeq, len(in))
	for i, t := range in {
		out[i] = t.Drop(p.Names)
	}
	return out
}

func (p ProjectDrop) String() string { return "Π̄[" + strings.Join(p.Names, ",") + "]" }

// Children implements Op.
func (p ProjectDrop) Children() []Op { return []Op{p.In} }

// Exprs implements Op.
func (p ProjectDrop) Exprs() []Expr { return nil }

// Attrs implements Op.
func (p ProjectDrop) Attrs() ([]string, bool) {
	in, ok := p.In.Attrs()
	if !ok {
		return nil, false
	}
	drop := map[string]bool{}
	for _, n := range p.Names {
		drop[n] = true
	}
	var out []string
	for _, a := range in {
		if !drop[a] {
			out = append(out, a)
		}
	}
	return out, true
}

// Rename is one A′:A pair of a renaming projection.
type Rename struct{ New, Old string }

// ProjectRename is ΠA′:A — rename attributes, keep the rest untouched.
type ProjectRename struct {
	In    Op
	Pairs []Rename
}

// Eval implements Op.
func (p ProjectRename) Eval(ctx *Ctx, env value.Tuple) value.TupleSeq {
	in := p.In.Eval(ctx, env)
	out := make(value.TupleSeq, len(in))
	for i, t := range in {
		out[i] = renameTuple(t, p.Pairs)
	}
	return out
}

// renameTuple applies the rename pairs as a simultaneous substitution on the
// original tuple, so chains and swaps (a→b, b→a) cannot clobber each other
// the way sequential in-place renaming does.
func renameTuple(t value.Tuple, pairs []Rename) value.Tuple {
	renamed := make(map[string]bool, len(pairs))
	for _, r := range pairs {
		if _, ok := t[r.Old]; ok {
			renamed[r.Old] = true
		}
	}
	nt := make(value.Tuple, len(t))
	for k, v := range t {
		if !renamed[k] {
			nt[k] = v
		}
	}
	for _, r := range pairs {
		if v, ok := t[r.Old]; ok {
			nt[r.New] = v
		}
	}
	return nt
}

func (p ProjectRename) String() string {
	parts := make([]string, len(p.Pairs))
	for i, r := range p.Pairs {
		parts[i] = r.New + ":" + r.Old
	}
	return "Π[" + strings.Join(parts, ",") + "]"
}

// Children implements Op.
func (p ProjectRename) Children() []Op { return []Op{p.In} }

// Exprs implements Op.
func (p ProjectRename) Exprs() []Expr { return nil }

// Attrs implements Op.
func (p ProjectRename) Attrs() ([]string, bool) {
	in, ok := p.In.Attrs()
	if !ok {
		return nil, false
	}
	ren := map[string]string{}
	for _, r := range p.Pairs {
		ren[r.Old] = r.New
	}
	out := make([]string, 0, len(in))
	for _, a := range in {
		if n, ok := ren[a]; ok {
			out = append(out, n)
		} else {
			out = append(out, a)
		}
	}
	sort.Strings(out)
	return out, true
}

// ProjectDistinct is the duplicate-eliminating projection ΠD with optional
// renaming (ΠD A′:A). It is not order-preserving per the paper, but it must
// be deterministic and idempotent; first-occurrence order satisfies both.
type ProjectDistinct struct {
	In    Op
	Pairs []Rename // New:Old; use New==Old for plain ΠD
}

// Eval implements Op.
func (p ProjectDistinct) Eval(ctx *Ctx, env value.Tuple) value.TupleSeq {
	in := p.In.Eval(ctx, env)
	seen := make(map[string]bool, len(in))
	var out value.TupleSeq
	for _, t := range in {
		nt := make(value.Tuple, len(p.Pairs))
		var kb strings.Builder
		for _, r := range p.Pairs {
			v := t[r.Old]
			nt[r.New] = v
			kb.WriteString(value.Key(v))
			kb.WriteByte('|')
		}
		k := kb.String()
		if !seen[k] {
			ctx.charge(TripDedup, 0, dedupEntryBytes+int64(len(k)))
			seen[k] = true
			out = append(out, nt)
		}
	}
	return out
}

func (p ProjectDistinct) String() string {
	parts := make([]string, len(p.Pairs))
	for i, r := range p.Pairs {
		if r.New == r.Old {
			parts[i] = r.New
		} else {
			parts[i] = r.New + ":" + r.Old
		}
	}
	return "ΠD[" + strings.Join(parts, ",") + "]"
}

// Children implements Op.
func (p ProjectDistinct) Children() []Op { return []Op{p.In} }

// Exprs implements Op.
func (p ProjectDistinct) Exprs() []Expr { return nil }

// Attrs implements Op.
func (p ProjectDistinct) Attrs() ([]string, bool) {
	out := make([]string, len(p.Pairs))
	for i, r := range p.Pairs {
		out[i] = r.New
	}
	sort.Strings(out)
	return out, true
}

// Map is the map operator χa:e — it extends every input tuple by attribute a
// computed by evaluating e under the tuple's bindings (Sec. 2, Fig. 1).
type Map struct {
	In   Op
	Attr string
	E    Expr
}

// Eval implements Op.
func (m Map) Eval(ctx *Ctx, env value.Tuple) value.TupleSeq {
	in := m.In.Eval(ctx, env)
	out := make(value.TupleSeq, len(in))
	for i, t := range in {
		nt := t.Copy()
		nt[m.Attr] = m.E.Eval(ctx, env.Concat(t))
		out[i] = nt
	}
	return out
}

func (m Map) String() string { return fmt.Sprintf("χ[%s:%s]", m.Attr, m.E.String()) }

// Children implements Op.
func (m Map) Children() []Op { return []Op{m.In} }

// Exprs implements Op.
func (m Map) Exprs() []Expr { return []Expr{m.E} }

// Attrs implements Op.
func (m Map) Attrs() ([]string, bool) {
	in, ok := m.In.Attrs()
	if !ok {
		return nil, false
	}
	return unionAttrs(in, []string{m.Attr}), true
}

// UnnestMap is the Υa:e operator: µg(χg:e[a](e1)). It evaluates e to an item
// sequence and emits one tuple per item, in sequence order.
//
// Note: a tuple whose sequence is empty produces no output tuple. This
// matches XQuery's for-clause semantics, which is what Υ exists to
// translate; the µ operator proper pads empty groups with ⊥ (see Unnest).
//
// PosAttr, when non-empty, additionally binds the 1-based position of each
// item within its sequence — the translation of XQuery's positional
// "for $x at $i in e" binding, a construct that only makes sense in the
// ordered context this engine preserves.
type UnnestMap struct {
	In      Op
	Attr    string
	E       Expr
	PosAttr string
}

// Eval implements Op.
func (u UnnestMap) Eval(ctx *Ctx, env value.Tuple) value.TupleSeq {
	in := u.In.Eval(ctx, env)
	var out value.TupleSeq
	for _, t := range in {
		// Scan-level cancellation point of the materializing reference
		// evaluator (every document traversal streams through Υ).
		if ctx.Cancelled() {
			break
		}
		items := value.AsSeq(u.E.Eval(ctx, env.Concat(t)))
		for i, item := range items {
			nt := t.Copy()
			nt[u.Attr] = item
			if u.PosAttr != "" {
				nt[u.PosAttr] = value.Int(int64(i + 1))
			}
			ctx.ChargeTuple(TripScan, nt)
			out = append(out, nt)
		}
	}
	ctx.Stats.Tuples += int64(len(out))
	return out
}

func (u UnnestMap) String() string {
	if u.PosAttr != "" {
		return fmt.Sprintf("Υ[%s at %s:%s]", u.Attr, u.PosAttr, u.E.String())
	}
	return fmt.Sprintf("Υ[%s:%s]", u.Attr, u.E.String())
}

// Children implements Op.
func (u UnnestMap) Children() []Op { return []Op{u.In} }

// Exprs implements Op.
func (u UnnestMap) Exprs() []Expr { return []Expr{u.E} }

// Attrs implements Op.
func (u UnnestMap) Attrs() ([]string, bool) {
	in, ok := u.In.Attrs()
	if !ok {
		return nil, false
	}
	add := []string{u.Attr}
	if u.PosAttr != "" {
		add = append(add, u.PosAttr)
	}
	return unionAttrs(in, add), true
}

// Cross is the order-preserving cross product e1 × e2: for every left tuple
// in order, all right tuples in order.
type Cross struct{ L, R Op }

// Eval implements Op.
func (c Cross) Eval(ctx *Ctx, env value.Tuple) value.TupleSeq {
	l := c.L.Eval(ctx, env)
	if len(l) == 0 {
		return nil
	}
	r := c.R.Eval(ctx, env)
	ctx.ChargeTuples(TripBuild, r)
	var out value.TupleSeq
	for _, lt := range l {
		for _, rt := range r {
			out = append(out, lt.Concat(rt))
		}
	}
	return out
}

func (Cross) String() string { return "×" }

// Children implements Op.
func (c Cross) Children() []Op { return []Op{c.L, c.R} }

// Exprs implements Op.
func (Cross) Exprs() []Expr { return nil }

// Attrs implements Op.
func (c Cross) Attrs() ([]string, bool) {
	l, ok1 := c.L.Attrs()
	r, ok2 := c.R.Attrs()
	if !ok1 || !ok2 {
		return nil, false
	}
	return unionAttrs(l, r), true
}
