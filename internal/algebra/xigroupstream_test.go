package algebra

import (
	"math/rand"
	"testing"

	"nalquery/internal/value"
)

// Tests for the boundary-detecting streaming Ξ (the paper's literal
// "stable sort + group boundaries by attribute change" implementation).

func xiCmds() (s1, s2, s3 []Command) {
	s1 = []Command{LitCmd("<g k='"), {E: Var{Name: "k"}}, LitCmd("'>")}
	s2 = []Command{LitCmd("<v>"), {E: Var{Name: "v"}}, LitCmd("</v>")}
	s3 = []Command{LitCmd("</g>")}
	return
}

func runXi(op Op) string {
	ctx := NewCtx(nil)
	op.Eval(ctx, nil)
	return ctx.OutString()
}

func runXiIter(op Op) string {
	ctx := NewCtx(nil)
	DrainIter(op, ctx, nil)
	return ctx.OutString()
}

// TestXiGroupStreamMatchesHashOnSorted: on contiguous (sorted) input the
// streaming Ξ produces exactly the hash-bucket XiGroup's output.
func TestXiGroupStreamMatchesHashOnSorted(t *testing.T) {
	quickCheck(t, "Ξstream=Ξ-on-sorted", func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(20)
		ts := make(value.TupleSeq, n)
		for i := range ts {
			ts[i] = value.Tuple{"k": value.Int(int64(rng.Intn(4))), "v": value.Int(int64(i))}
		}
		in := constOp{ts: ts, attrs: []string{"k", "v"}}
		sorted := Sort{In: in, By: []string{"k"}}
		s1, s2, s3 := xiCmds()
		stream := XiGroupStream{In: sorted, By: []string{"k"}, S1: s1, S2: s2, S3: s3}
		hash := XiGroup{In: sorted, By: []string{"k"}, S1: s1, S2: s2, S3: s3}
		return runXi(stream) == runXi(hash)
	})
}

// TestXiGroupStreamIterMatchesEval: the pipelined iterator fires the same
// side effects as the materialized evaluation.
func TestXiGroupStreamIterMatchesEval(t *testing.T) {
	quickCheck(t, "Ξstream-iter=eval", func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(20)
		ts := make(value.TupleSeq, n)
		for i := range ts {
			ts[i] = value.Tuple{"k": value.Int(int64(rng.Intn(3))), "v": value.Int(int64(i))}
		}
		in := constOp{ts: ts, attrs: []string{"k", "v"}}
		s1, s2, s3 := xiCmds()
		op := XiGroupStream{In: Sort{In: in, By: []string{"k"}}, By: []string{"k"},
			S1: s1, S2: s2, S3: s3}
		return runXi(op) == runXiIter(op)
	})
}

// TestXiGroupStreamBoundaries: explicit boundary checks — one group, every
// tuple its own group, empty input.
func TestXiGroupStreamBoundaries(t *testing.T) {
	s1, s2, s3 := xiCmds()
	mk := func(keys ...int) Op {
		ts := make(value.TupleSeq, len(keys))
		for i, k := range keys {
			ts[i] = value.Tuple{"k": value.Int(int64(k)), "v": value.Int(int64(i))}
		}
		return XiGroupStream{In: constOp{ts: ts, attrs: []string{"k", "v"}},
			By: []string{"k"}, S1: s1, S2: s2, S3: s3}
	}
	if got := runXi(mk()); got != "" {
		t.Errorf("empty input produced %q", got)
	}
	if got := runXi(mk(1, 1, 1)); got != "<g k='1'><v>0</v><v>1</v><v>2</v></g>" {
		t.Errorf("single group: %q", got)
	}
	if got := runXi(mk(1, 2, 3)); got != "<g k='1'><v>0</v></g><g k='2'><v>1</v></g><g k='3'><v>2</v></g>" {
		t.Errorf("singleton groups: %q", got)
	}
	// Non-contiguous keys: boundary detection treats each run as a group
	// (the documented behaviour without the upstream sort).
	if got := runXi(mk(1, 2, 1)); got != "<g k='1'><v>0</v></g><g k='2'><v>1</v></g><g k='1'><v>2</v></g>" {
		t.Errorf("runs as groups: %q", got)
	}
}

// TestXiGroupStreamMultiKeyBoundary: a change in any of the attributes of A
// opens a new group.
func TestXiGroupStreamMultiKeyBoundary(t *testing.T) {
	ts := value.TupleSeq{
		{"a": value.Int(1), "b": value.Int(1), "v": value.Int(0)},
		{"a": value.Int(1), "b": value.Int(2), "v": value.Int(1)},
		{"a": value.Int(2), "b": value.Int(2), "v": value.Int(2)},
	}
	s1 := []Command{LitCmd("[")}
	s2 := []Command{{E: Var{Name: "v"}}}
	s3 := []Command{LitCmd("]")}
	op := XiGroupStream{In: constOp{ts: ts, attrs: []string{"a", "b", "v"}},
		By: []string{"a", "b"}, S1: s1, S2: s2, S3: s3}
	if got := runXi(op); got != "[0][1][2]" {
		t.Errorf("multi-key boundaries: %q", got)
	}
}
