// Package algebra implements NAL, the order-preserving nested algebra of the
// paper (Sec. 2), together with its evaluation engine.
//
// NAL operators work on ordered sequences of unordered tuples
// (value.TupleSeq). Expressions in operator subscripts may contain nested
// algebraic expressions; evaluating a nested expression per outer tuple is
// exactly the nested-loop strategy the unnesting equivalences of
// internal/core remove.
package algebra

import (
	"fmt"
	"strconv"
	"strings"

	"nalquery/internal/dom"
	"nalquery/internal/value"
	"nalquery/internal/xpath"
)

// StringWriter is the output sink of the Ξ result-construction operators
// (satisfied by strings.Builder, bufio.Writer, …). Write errors are the
// sink's to track: operators stream fire-and-forget, and callers that wrap
// files flush and check at the end (see Query.ExecuteTo).
type StringWriter interface {
	WriteString(s string) (int, error)
}

// CardEstimator estimates operator output cardinalities — implemented by
// the cost model and wired into the Ctx by the public API, so pipeline
// breakers can pre-size their hash tables and partition buffers from the
// plan-time estimates instead of Go map defaults.
type CardEstimator interface {
	EstimateCard(op Op) float64
}

// ResultSink receives the result-construction stream of the Ξ operators as
// discrete items instead of serialized text: literal markup fragments and
// the typed values of expression commands. It is the yield boundary the
// public Results iterator consumes — serialization becomes one sink among
// others rather than the only way out of the engine.
type ResultSink interface {
	// EmitLit receives a literal markup fragment of a Ξ command list.
	EmitLit(s string)
	// EmitValue receives the typed value of a Ξ expression command.
	EmitValue(v value.Value)
}

// Ctx is the evaluation context shared by a plan execution.
type Ctx struct {
	// Docs resolves document URIs for the doc()/document() functions.
	Docs map[string]*dom.Document
	// Out receives the output stream of the Ξ result-construction operators.
	Out StringWriter
	// Sink, when non-nil, receives the Ξ stream as typed items instead of
	// serialized text on Out (see EmitLit/EmitValue).
	Sink ResultSink
	// Stats accumulates execution counters.
	Stats Stats
	// Cards optionally estimates operator cardinalities (nil: fall back to
	// input-derived heuristics).
	Cards CardEstimator
	// Params is the per-run binding table of external variables: Param
	// expressions read their value by slot index. The slice is fixed for
	// the lifetime of one run (bindings never change mid-execution).
	Params []value.Value
	// Budget, when non-nil, is the run's resource governor: materialization
	// points (breaker drains, scan producers, dedup tables, Ξ emission)
	// charge it and the first charge past a limit aborts the run with a
	// typed ResourceTrip (see budget.go). nil disables all accounting.
	Budget *Budget

	// done, when non-nil, is the run's cancellation signal (a
	// context.Context Done channel). Scans and pipeline breakers poll it
	// through Cancelled and terminate the pipeline early.
	done      <-chan struct{}
	cancelled bool
	tick      uint
}

// EmitLit routes a Ξ literal to the sink, or to the serialized output
// stream when no sink is attached. Emission is a charge point: output
// accumulates in item queues, spill buffers and in-memory builders, so the
// emitted bytes count against the run's budget.
func (c *Ctx) EmitLit(s string) {
	c.ChargeBytes(TripSerialize, len(s))
	if c.Sink != nil {
		c.Sink.EmitLit(s)
		return
	}
	c.Out.WriteString(s)
}

// EmitValue routes a Ξ expression value to the sink, or serializes it onto
// the output stream when no sink is attached. Values charge a flat word
// count (their serialized size is not cheaply known).
func (c *Ctx) EmitValue(v value.Value) {
	if c.Budget != nil {
		c.charge(TripSerialize, 0, emitValueFlatBytes)
	}
	if c.Sink != nil {
		c.Sink.EmitValue(v)
		return
	}
	WriteValue(c.Out, v)
}

// ParamVal returns the bound value of parameter slot i; an unbound or
// out-of-range slot reads as the empty sequence (the public API validates
// bindings before execution, so this is a defensive default, never an
// error path).
func (c *Ctx) ParamVal(i int) value.Value {
	if i < 0 || i >= len(c.Params) || c.Params[i] == nil {
		return value.Null{}
	}
	return c.Params[i]
}

// SetDone wires a cancellation signal (typically ctx.Done()) into the
// evaluation context. A nil channel disables cancellation checks.
func (c *Ctx) SetDone(done <-chan struct{}) { c.done = done }

// cancelCheckMask paces the cancellation poll: hot per-tuple loops pay a
// counter increment and poll the channel once every mask+1 calls, keeping
// the guard overhead far below measurement noise while still bounding how
// much work runs after a cancel.
const cancelCheckMask = 63

// Cancelled polls the run's cancellation signal. The check is paced (one
// channel poll per cancelCheckMask+1 calls), so callers may invoke it per
// tuple; once it has observed the cancel it stays true.
func (c *Ctx) Cancelled() bool {
	if c.cancelled {
		return true
	}
	if c.done == nil {
		return false
	}
	c.tick++
	if c.tick&cancelCheckMask != 0 {
		return false
	}
	select {
	case <-c.done:
		c.cancelled = true
	default:
	}
	return c.cancelled
}

// cardHint returns the estimated output cardinality of op as a map-size
// hint, or fallback when no estimator is wired or the estimate is useless.
// The estimate is clamped to fallback: callers pass the known input size,
// which bounds a grouping operator's output, and an inflated estimate (the
// model multiplies across joins) must never pre-allocate beyond it.
func (c *Ctx) cardHint(op Op, fallback int) int {
	if c.Cards != nil {
		if est := c.Cards.EstimateCard(op); est >= 1 {
			if est < float64(fallback) {
				return int(est)
			}
			return fallback
		}
	}
	return fallback
}

// Stats holds execution counters used by the experiment reports.
type Stats struct {
	// DocAccesses counts evaluations of doc()/document() — each one starts a
	// fresh traversal of a stored document, the analogue of the paper's
	// "scans over the input document".
	DocAccesses int64
	// NestedEvals counts evaluations of nested algebraic expressions inside
	// operator subscripts (the nested-loop iterations).
	NestedEvals int64
	// Tuples counts tuples produced by operators.
	Tuples int64
	// IndexScans counts index-scan resolutions (one per IndexScan open):
	// scans answered from a structural or value index instead of a
	// document traversal.
	IndexScans int64
	// ShimOps counts operators that executed behind the map→row conversion
	// shim (resolvable schema but no slot-native iterator). A fully native
	// plan runs with ShimOps == 0 — the property the
	// partitioned-plans-resolve-natively tests pin.
	ShimOps int64
	// MapTuples counts map tuples materialized on the row engine's data
	// path: group payloads converted to TupleSeq for an uncompiled sequence
	// function, and the per-tuple traffic of the conversion shim. The
	// public-API boundary (RunIter, iterator Next) and the environment shim
	// of nested algebraic expressions — the deliberately-measured
	// nested-loop strategy — are excluded. A plan whose nested data runs
	// natively on RowSeq executes with MapTuples == 0, the property
	// TestPaperPlansMapFree pins.
	MapTuples int64
}

// NewCtx creates an evaluation context over the given documents, collecting
// result construction into an in-memory builder (retrieve it with OutString).
func NewCtx(docs map[string]*dom.Document) *Ctx {
	return &Ctx{Docs: docs, Out: &strings.Builder{}}
}

// NewCtxWriter creates an evaluation context streaming result construction
// into w instead of an in-memory builder.
func NewCtxWriter(docs map[string]*dom.Document, w StringWriter) *Ctx {
	return &Ctx{Docs: docs, Out: w}
}

// OutString returns the collected output when the context was created with
// NewCtx; for writer-backed contexts it returns the empty string.
func (c *Ctx) OutString() string {
	if sb, ok := c.Out.(*strings.Builder); ok {
		return sb.String()
	}
	return ""
}

// Expr is a scalar expression evaluable against a tuple of variable
// bindings.
type Expr interface {
	// Eval computes the expression value; env supplies the bindings of free
	// variables (F(e) ⊆ A(env)).
	Eval(ctx *Ctx, env value.Tuple) value.Value
	// String renders the expression for plan explanation.
	String() string
	// FreeVars appends the free variable names of the expression to dst.
	FreeVars(dst map[string]bool)
}

// Var references a variable/attribute binding.
type Var struct{ Name string }

// Eval implements Expr.
func (v Var) Eval(_ *Ctx, env value.Tuple) value.Value { return env[v.Name] }

func (v Var) String() string { return v.Name }

// FreeVars implements Expr.
func (v Var) FreeVars(dst map[string]bool) { dst[v.Name] = true }

// ConstVal is a literal constant.
type ConstVal struct{ V value.Value }

// Eval implements Expr.
func (c ConstVal) Eval(*Ctx, value.Tuple) value.Value { return c.V }

func (c ConstVal) String() string {
	if s, ok := c.V.(value.Str); ok {
		return fmt.Sprintf("%q", string(s))
	}
	if c.V == nil {
		return "()"
	}
	return c.V.String()
}

// FreeVars implements Expr.
func (ConstVal) FreeVars(map[string]bool) {}

// Param is a typed parameter expression: the compiled form of an XQuery
// external variable ("declare variable $x external;"). Its value comes
// from the per-run binding table on Ctx, resolved by the slot index fixed
// at prepare time — not from the tuple environment. A Param therefore has
// no free tuple variables: to the unnesting equivalences and the slot
// engine it behaves exactly like a constant whose value is supplied at run
// time, so plan alternatives are chosen once and bindings only change
// selection constants.
type Param struct {
	// Name is the external variable's name (for plan explanation).
	Name string
	// Idx is the parameter's slot in Ctx.Params, assigned in declaration
	// order at prepare time.
	Idx int
}

// Eval implements Expr.
func (p Param) Eval(ctx *Ctx, _ value.Tuple) value.Value { return ctx.ParamVal(p.Idx) }

func (p Param) String() string { return "$" + p.Name }

// FreeVars implements Expr: a parameter reference binds outside the tuple
// environment, so it contributes no free variables.
func (Param) FreeVars(map[string]bool) {}

// Doc resolves a stored document by URI (the doc()/document() function).
type Doc struct{ URI string }

// Eval implements Expr.
func (d Doc) Eval(ctx *Ctx, _ value.Tuple) value.Value {
	ctx.Stats.DocAccesses++
	doc, ok := ctx.Docs[d.URI]
	if !ok {
		return value.Null{}
	}
	return value.NodeVal{Node: doc.Root}
}

func (d Doc) String() string { return fmt.Sprintf("doc(%q)", d.URI) }

// FreeVars implements Expr.
func (Doc) FreeVars(map[string]bool) {}

// PathOf applies an XPath to the value of Input.
type PathOf struct {
	Input Expr
	Path  xpath.Path
}

// Eval implements Expr.
func (p PathOf) Eval(ctx *Ctx, env value.Tuple) value.Value {
	return p.Path.Eval(p.Input.Eval(ctx, env))
}

func (p PathOf) String() string {
	in := p.Input.String()
	ps := p.Path.String()
	if strings.HasPrefix(ps, "//") || strings.HasPrefix(ps, "@") {
		if strings.HasPrefix(ps, "@") {
			return in + "/" + ps
		}
		return in + ps
	}
	return in + "/" + ps
}

// FreeVars implements Expr.
func (p PathOf) FreeVars(dst map[string]bool) { p.Input.FreeVars(dst) }

// CmpExpr is a general comparison L θ R with existential semantics over
// sequences (Sec. 5.1: "a simple '=' has existential semantics in case
// either side contains a sequence").
type CmpExpr struct {
	L, R Expr
	Op   value.CmpOp
}

// Eval implements Expr.
func (c CmpExpr) Eval(ctx *Ctx, env value.Tuple) value.Value {
	return value.Bool(value.GeneralCompare(c.L.Eval(ctx, env), c.R.Eval(ctx, env), c.Op))
}

func (c CmpExpr) String() string {
	return fmt.Sprintf("%s %s %s", c.L.String(), c.Op, c.R.String())
}

// FreeVars implements Expr.
func (c CmpExpr) FreeVars(dst map[string]bool) {
	c.L.FreeVars(dst)
	c.R.FreeVars(dst)
}

// InExpr is the membership predicate A1 ∈ a2 of Eqvs. 4 and 5: the left item
// is a member of the sequence-valued right operand.
type InExpr struct {
	Item Expr
	Seq  Expr
}

// Eval implements Expr.
func (e InExpr) Eval(ctx *Ctx, env value.Tuple) value.Value {
	return value.Bool(value.Member(e.Item.Eval(ctx, env), e.Seq.Eval(ctx, env)))
}

func (e InExpr) String() string { return fmt.Sprintf("%s ∈ %s", e.Item.String(), e.Seq.String()) }

// FreeVars implements Expr.
func (e InExpr) FreeVars(dst map[string]bool) {
	e.Item.FreeVars(dst)
	e.Seq.FreeVars(dst)
}

// AndExpr is logical conjunction.
type AndExpr struct{ L, R Expr }

// Eval implements Expr.
func (a AndExpr) Eval(ctx *Ctx, env value.Tuple) value.Value {
	if !value.EffectiveBool(a.L.Eval(ctx, env)) {
		return value.Bool(false)
	}
	return value.Bool(value.EffectiveBool(a.R.Eval(ctx, env)))
}

func (a AndExpr) String() string { return fmt.Sprintf("(%s ∧ %s)", a.L.String(), a.R.String()) }

// FreeVars implements Expr.
func (a AndExpr) FreeVars(dst map[string]bool) {
	a.L.FreeVars(dst)
	a.R.FreeVars(dst)
}

// OrExpr is logical disjunction.
type OrExpr struct{ L, R Expr }

// Eval implements Expr.
func (o OrExpr) Eval(ctx *Ctx, env value.Tuple) value.Value {
	if value.EffectiveBool(o.L.Eval(ctx, env)) {
		return value.Bool(true)
	}
	return value.Bool(value.EffectiveBool(o.R.Eval(ctx, env)))
}

func (o OrExpr) String() string { return fmt.Sprintf("(%s ∨ %s)", o.L.String(), o.R.String()) }

// FreeVars implements Expr.
func (o OrExpr) FreeVars(dst map[string]bool) {
	o.L.FreeVars(dst)
	o.R.FreeVars(dst)
}

// NotExpr is logical negation.
type NotExpr struct{ E Expr }

// Eval implements Expr.
func (n NotExpr) Eval(ctx *Ctx, env value.Tuple) value.Value {
	return value.Bool(!value.EffectiveBool(n.E.Eval(ctx, env)))
}

func (n NotExpr) String() string { return fmt.Sprintf("¬(%s)", n.E.String()) }

// FreeVars implements Expr.
func (n NotExpr) FreeVars(dst map[string]bool) { n.E.FreeVars(dst) }

// CondExpr is the conditional expression if (If) then Then else Else; the
// condition is taken by effective boolean value, and only the selected
// branch is evaluated.
type CondExpr struct {
	If, Then, Else Expr
}

// Eval implements Expr.
func (c CondExpr) Eval(ctx *Ctx, env value.Tuple) value.Value {
	if value.EffectiveBool(c.If.Eval(ctx, env)) {
		return c.Then.Eval(ctx, env)
	}
	return c.Else.Eval(ctx, env)
}

func (c CondExpr) String() string {
	return fmt.Sprintf("if(%s; %s; %s)", c.If.String(), c.Then.String(), c.Else.String())
}

// FreeVars implements Expr.
func (c CondExpr) FreeVars(dst map[string]bool) {
	c.If.FreeVars(dst)
	c.Then.FreeVars(dst)
	c.Else.FreeVars(dst)
}

// ArithExpr is an arithmetic expression over atomized numeric operands
// (+, -, *, div, mod). Non-numeric or absent operands yield NULL, following
// XQuery's empty-sequence propagation.
type ArithExpr struct {
	L, R Expr
	Op   byte // '+', '-', '*', '/', '%'
}

// Eval implements Expr.
func (a ArithExpr) Eval(ctx *Ctx, env value.Tuple) value.Value {
	return evalArith(a.Op, a.L.Eval(ctx, env), a.R.Eval(ctx, env))
}

func numArg(v value.Value) (float64, bool) {
	a := value.AtomizeSingle(v)
	if a == nil {
		return 0, false
	}
	f, err := strconv.ParseFloat(strings.TrimSpace(a.String()), 64)
	return f, err == nil
}

func (a ArithExpr) String() string {
	op := string(a.Op)
	if a.Op == '/' {
		op = "div"
	}
	if a.Op == '%' {
		op = "mod"
	}
	return fmt.Sprintf("(%s %s %s)", a.L.String(), op, a.R.String())
}

// FreeVars implements Expr.
func (a ArithExpr) FreeVars(dst map[string]bool) {
	a.L.FreeVars(dst)
	a.R.FreeVars(dst)
}

// Call is a builtin function call on item values.
type Call struct {
	Fn   string
	Args []Expr
}

// Eval implements Expr.
func (c Call) Eval(ctx *Ctx, env value.Tuple) value.Value {
	args := make([]value.Value, len(c.Args))
	for i, a := range c.Args {
		args[i] = a.Eval(ctx, env)
	}
	return evalBuiltin(c.Fn, args)
}

func (c Call) String() string {
	parts := make([]string, len(c.Args))
	for i, a := range c.Args {
		parts[i] = a.String()
	}
	return fmt.Sprintf("%s(%s)", c.Fn, strings.Join(parts, ", "))
}

// FreeVars implements Expr.
func (c Call) FreeVars(dst map[string]bool) {
	for _, a := range c.Args {
		a.FreeVars(dst)
	}
}

// NestedApply applies a sequence function f to the result of a nested
// algebraic expression: the form f(σ...(e2)) that the unnesting
// equivalences' left-hand sides are made of. Its evaluation is the
// nested-loop strategy: the plan is re-evaluated for every environment it is
// invoked under.
type NestedApply struct {
	F    SeqFunc
	Plan Op
}

// Eval implements Expr.
func (n NestedApply) Eval(ctx *Ctx, env value.Tuple) value.Value {
	ctx.Stats.NestedEvals++
	ts := n.Plan.Eval(ctx, env)
	return n.F.Apply(ctx, env, ts)
}

func (n NestedApply) String() string {
	return fmt.Sprintf("%s(%s)", n.F.String(), n.Plan.String())
}

// FreeVars implements Expr.
func (n NestedApply) FreeVars(dst map[string]bool) {
	opFreeVars(n.Plan, dst)
	n.F.FreeVars(dst)
}

// AggOfAttr applies a sequence function to a tuple-sequence-valued
// attribute (e.g. counting the members of a group attribute created by Γ).
type AggOfAttr struct {
	F    SeqFunc
	Attr Expr
}

// Eval implements Expr.
func (a AggOfAttr) Eval(ctx *Ctx, env value.Tuple) value.Value {
	switch ts := a.Attr.Eval(ctx, env).(type) {
	case value.TupleSeq:
		return a.F.Apply(ctx, env, ts)
	case value.RowSeq:
		// Slot-backed payloads (reaching the definitional evaluator through
		// an environment shim) apply without materializing map tuples.
		return applyFnRowSeq(ctx, env, a.F, ts)
	}
	return value.Null{}
}

func (a AggOfAttr) String() string {
	return fmt.Sprintf("%s(%s)", a.F.String(), a.Attr.String())
}

// FreeVars implements Expr.
func (a AggOfAttr) FreeVars(dst map[string]bool) {
	a.Attr.FreeVars(dst)
	a.F.FreeVars(dst)
}

// ExistsQ is the existential quantifier predicate
// ∃x ∈ (range) : p — the left-hand side of Eqv. 6. Range is an algebraic
// expression whose tuples carry the attribute RangeAttr (x'); for each range
// tuple, Var is bound to that attribute's value and Pred is evaluated.
type ExistsQ struct {
	Var       string
	RangeAttr string
	Range     Op
	Pred      Expr
}

// Eval implements Expr.
func (q ExistsQ) Eval(ctx *Ctx, env value.Tuple) value.Value {
	ctx.Stats.NestedEvals++
	rng := q.Range.Eval(ctx, env)
	for _, t := range rng {
		env2 := env.Copy()
		env2[q.Var] = t[q.RangeAttr]
		if value.EffectiveBool(q.Pred.Eval(ctx, env2)) {
			return value.Bool(true)
		}
	}
	return value.Bool(false)
}

func (q ExistsQ) String() string {
	return fmt.Sprintf("∃%s∈%s: %s", q.Var, q.Range.String(), q.Pred.String())
}

// FreeVars implements Expr.
func (q ExistsQ) FreeVars(dst map[string]bool) {
	opFreeVars(q.Range, dst)
	inner := map[string]bool{}
	q.Pred.FreeVars(inner)
	delete(inner, q.Var)
	for k := range inner {
		dst[k] = true
	}
}

// ForallQ is the universal quantifier predicate ∀x ∈ (range) : p — the
// left-hand side of Eqv. 7.
type ForallQ struct {
	Var       string
	RangeAttr string
	Range     Op
	Pred      Expr
}

// Eval implements Expr.
func (q ForallQ) Eval(ctx *Ctx, env value.Tuple) value.Value {
	ctx.Stats.NestedEvals++
	rng := q.Range.Eval(ctx, env)
	for _, t := range rng {
		env2 := env.Copy()
		env2[q.Var] = t[q.RangeAttr]
		if !value.EffectiveBool(q.Pred.Eval(ctx, env2)) {
			return value.Bool(false)
		}
	}
	return value.Bool(true)
}

func (q ForallQ) String() string {
	return fmt.Sprintf("∀%s∈%s: %s", q.Var, q.Range.String(), q.Pred.String())
}

// FreeVars implements Expr.
func (q ForallQ) FreeVars(dst map[string]bool) {
	opFreeVars(q.Range, dst)
	inner := map[string]bool{}
	q.Pred.FreeVars(inner)
	delete(inner, q.Var)
	for k := range inner {
		dst[k] = true
	}
}
