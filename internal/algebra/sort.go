package algebra

import (
	"fmt"
	"sort"
	"strings"

	"nalquery/internal/value"
)

// The operators in this file implement the physical alternative the paper
// mentions for restoring order (Sec. 2): "Currently, we have not
// implemented [the order-preserving hash join] but use a Grace-Hash-Join
// instead with a subsequent sorting operator to restore order." The default
// join family of this library preserves probe order directly; GraceJoin +
// Sort reproduces the paper's actual implementation for the ablation
// benchmarks.

// AttachSeq extends every input tuple with a sequence number (its ordinal
// position), the sort key a subsequent Sort uses to restore the input
// order after an order-destroying operator.
type AttachSeq struct {
	In   Op
	Attr string
}

// Eval implements Op.
func (a AttachSeq) Eval(ctx *Ctx, env value.Tuple) value.TupleSeq {
	in := a.In.Eval(ctx, env)
	out := make(value.TupleSeq, len(in))
	for i, t := range in {
		nt := t.Copy()
		nt[a.Attr] = value.Int(int64(i))
		out[i] = nt
	}
	return out
}

func (a AttachSeq) String() string { return fmt.Sprintf("χ#[%s:seq]", a.Attr) }

// Children implements Op.
func (a AttachSeq) Children() []Op { return []Op{a.In} }

// Exprs implements Op.
func (a AttachSeq) Exprs() []Expr { return nil }

// Attrs implements Op.
func (a AttachSeq) Attrs() ([]string, bool) {
	in, ok := a.In.Attrs()
	if !ok {
		return nil, false
	}
	return unionAttrs(in, []string{a.Attr}), true
}

// Sort orders its input stably by the given attributes (atomic comparison:
// numeric when both sides are numeric, else string — consistent with the
// predicate semantics). A stable sort is exactly what the group-detecting Ξ
// requires of its producers (Sec. 2: "this condition can be met by a
// stable(!) sort"). Dirs optionally flips individual keys to descending
// (the order by clause); a nil Dirs sorts every key ascending.
type Sort struct {
	In Op
	By []string
	// Dirs[i] = true sorts By[i] descending. Empty values sort first on
	// ascending keys and last on descending ones.
	Dirs []bool
}

// Eval implements Op.
func (s Sort) Eval(ctx *Ctx, env value.Tuple) value.TupleSeq {
	in := s.In.Eval(ctx, env)
	ctx.ChargeTuples(TripSort, in)
	out := in.Copy()
	sort.SliceStable(out, func(i, j int) bool {
		return lessTuplesDirs(out[i], out[j], s.By, s.Dirs)
	})
	return out
}

func lessTuples(a, b value.Tuple, by []string) bool {
	return lessTuplesDirs(a, b, by, nil)
}

func lessTuplesDirs(a, b value.Tuple, by []string, dirs []bool) bool {
	for i, k := range by {
		desc := i < len(dirs) && dirs[i]
		av := value.AtomizeSingle(a[k])
		bv := value.AtomizeSingle(b[k])
		switch {
		case av == nil && bv == nil:
			continue
		case av == nil:
			return !desc // empty sorts first ascending, last descending
		case bv == nil:
			return desc
		}
		lt, gt := value.CmpLt, value.CmpGt
		if desc {
			lt, gt = gt, lt
		}
		if value.CompareAtomic(av, bv, lt) {
			return true
		}
		if value.CompareAtomic(av, bv, gt) {
			return false
		}
	}
	return false
}

func (s Sort) String() string {
	parts := make([]string, len(s.By))
	for i, k := range s.By {
		parts[i] = k
		if i < len(s.Dirs) && s.Dirs[i] {
			parts[i] += "↓"
		}
	}
	return "Sort[" + strings.Join(parts, ",") + "]"
}

// Children implements Op.
func (s Sort) Children() []Op { return []Op{s.In} }

// Exprs implements Op.
func (s Sort) Exprs() []Expr { return nil }

// Attrs implements Op.
func (s Sort) Attrs() ([]string, bool) { return s.In.Attrs() }

// GraceJoin is a Grace-style partitioned hash join: both inputs are
// partitioned by the join key, partitions are joined one after another, and
// the output comes in partition order — NOT in probe order. A plan using it
// must restore order afterwards (AttachSeq upstream + Sort downstream),
// which is the paper's stated implementation strategy.
type GraceJoin struct {
	L, R   Op
	LAttrs []string
	RAttrs []string
	// Residual is an optional extra predicate evaluated on joined tuples.
	Residual Expr
}

// Eval implements Op.
func (g GraceJoin) Eval(ctx *Ctx, env value.Tuple) value.TupleSeq {
	l := g.L.Eval(ctx, env)
	if len(l) == 0 {
		return nil
	}
	r := g.R.Eval(ctx, env)
	ctx.ChargeTuples(TripPartition, l)
	ctx.ChargeTuples(TripPartition, r)
	// Partition order: the canonical LessKey order for determinism (a real
	// Grace join's partition order depends on the hash function; any fixed
	// order shows the same effect — it is not the probe order). The slot
	// engine's native GraceJoin iterator uses the same order, so both
	// engines produce identical sequences.
	lKeys, lParts := partitionSorted(l, g.LAttrs)
	rParts := hashBuckets(r, g.RAttrs)
	var out value.TupleSeq
	for _, k := range lKeys {
		rp := rParts[k]
		if len(rp) == 0 {
			continue
		}
		for _, lt := range lParts[k] {
			for _, rt := range rp {
				if g.Residual != nil &&
					!value.EffectiveBool(g.Residual.Eval(ctx, env.Concat(lt).Concat(rt))) {
					continue
				}
				out = append(out, lt.Concat(rt))
			}
		}
	}
	return out
}

func (g GraceJoin) String() string {
	return fmt.Sprintf("GraceJoin[%s=%s]", strings.Join(g.LAttrs, ","), strings.Join(g.RAttrs, ","))
}

// Children implements Op.
func (g GraceJoin) Children() []Op { return []Op{g.L, g.R} }

// Exprs implements Op.
func (g GraceJoin) Exprs() []Expr {
	if g.Residual != nil {
		return []Expr{g.Residual}
	}
	return nil
}

// Attrs implements Op.
func (g GraceJoin) Attrs() ([]string, bool) {
	l, ok1 := g.L.Attrs()
	r, ok2 := g.R.Attrs()
	if !ok1 || !ok2 {
		return nil, false
	}
	return unionAttrs(l, r), true
}
