package algebra

import (
	"testing"

	"nalquery/internal/dom"
	"nalquery/internal/value"
	"nalquery/internal/xpath"
)

// fakeIndex is a NodeIndex over an explicit node list. The value layer is
// simulated with the same general comparison the real index agrees with;
// hasVals=false refuses probes, forcing the operator's filter fallback.
type fakeIndex struct {
	nodes   []*dom.Node
	hasVals bool
	scans   int
	probes  int
}

func (f *fakeIndex) ScanAll() []*dom.Node { f.scans++; return f.nodes }

func (f *fakeIndex) ProbeEq(key value.Value) ([]*dom.Node, bool) {
	if !f.hasVals {
		return nil, false
	}
	f.probes++
	var out []*dom.Node
	for _, n := range f.nodes {
		if value.GeneralCompare(value.NodeVal{Node: n}, key, value.CmpEq) {
			out = append(out, n)
		}
	}
	return out, true
}

func (f *fakeIndex) ProbeCmp(op value.CmpOp, key value.Value) ([]*dom.Node, bool) {
	if !f.hasVals {
		return nil, false
	}
	f.probes++
	var out []*dom.Node
	for _, n := range f.nodes {
		if value.GeneralCompare(value.NodeVal{Node: n}, key, op) {
			out = append(out, n)
		}
	}
	return out, true
}

const idxTestDoc = `<bib>
  <book year="1999"><title>a</title></book>
  <book year="2001"><title>b</title></book>
  <book year="1999"><title>c</title></book>
</bib>`

func idxNodes(t *testing.T, d *dom.Document, expr string) []*dom.Node {
	t.Helper()
	var out []*dom.Node
	for _, v := range xpath.MustParse(expr).Eval(value.NodeVal{Node: d.Root}) {
		out = append(out, v.(value.NodeVal).Node)
	}
	return out
}

// boundNodes collects the nodes an IndexScan bound to attr, per engine run.
func boundNodes(t *testing.T, op Op, attr string) ([]*dom.Node, *Stats, *Stats) {
	t.Helper()
	evalCtx := NewCtx(nil)
	want := op.Eval(evalCtx, nil)
	iterCtx := NewCtx(nil)
	got := RunIter(op, iterCtx, nil)
	if !value.TupleSeqEqual(want, got) {
		t.Fatalf("engines disagree:\n eval %v\n iter %v", want, got)
	}
	var out []*dom.Node
	for _, tu := range want {
		out = append(out, tu[attr].(value.NodeVal).Node)
	}
	return out, &evalCtx.Stats, &iterCtx.Stats
}

func sameNodes(a, b []*dom.Node) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestIndexScanStructural: the structural form emits input × indexed nodes
// in document order, identically on both engines, counting one index scan
// per open and no document accesses.
func TestIndexScanStructural(t *testing.T) {
	d := dom.MustParseString(idxTestDoc, "bib.xml")
	books := idxNodes(t, d, "//book")
	fx := &fakeIndex{nodes: books}
	op := IndexScan{In: Singleton{}, Attr: "b", URI: "bib.xml",
		Path: "/bib/book", Index: fx, EstCard: 3}
	got, evalStats, iterStats := boundNodes(t, op, "b")
	if !sameNodes(got, books) {
		t.Fatalf("structural scan bound %d nodes, want the 3 books", len(got))
	}
	for _, st := range []*Stats{evalStats, iterStats} {
		if st.IndexScans != 1 {
			t.Fatalf("index scans = %d, want 1 per open", st.IndexScans)
		}
		if st.DocAccesses != 0 {
			t.Fatalf("an index scan must not traverse the document")
		}
		if st.Tuples != int64(len(books)) {
			t.Fatalf("tuples = %d, want %d", st.Tuples, len(books))
		}
	}
}

// TestIndexScanValueProbe: the value form probes the index and, with Depth,
// hops the matches up to the bound ancestors, deduplicated in doc order.
func TestIndexScanValueProbe(t *testing.T) {
	d := dom.MustParseString(idxTestDoc, "bib.xml")
	years := idxNodes(t, d, "//book/@year")
	books := idxNodes(t, d, "//book")
	fx := &fakeIndex{nodes: years, hasVals: true}
	op := IndexScan{In: Singleton{}, Attr: "b", URI: "bib.xml",
		Path: "/bib/book/@year", Index: fx, Depth: 1,
		Cmp: value.CmpEq, Key: ConstVal{V: value.Int(1999)}, EstCard: 2}
	got, _, _ := boundNodes(t, op, "b")
	want := []*dom.Node{books[0], books[2]}
	if !sameNodes(got, want) {
		t.Fatalf("probe bound %d nodes, want books 1 and 3", len(got))
	}
	if fx.probes == 0 {
		t.Fatalf("value form must probe the index")
	}
}

// TestIndexScanMultiAtomKey: general comparison is existential over the
// key's atoms — a sequence key probes per atom and unions the matches.
func TestIndexScanMultiAtomKey(t *testing.T) {
	d := dom.MustParseString(idxTestDoc, "bib.xml")
	years := idxNodes(t, d, "//book/@year")
	fx := &fakeIndex{nodes: years, hasVals: true}
	op := IndexScan{In: Singleton{}, Attr: "y", URI: "bib.xml",
		Path: "/bib/book/@year", Index: fx, Cmp: value.CmpEq,
		Key: ConstVal{V: value.Seq{value.Int(1999), value.Int(2001)}}}
	got, _, _ := boundNodes(t, op, "y")
	if !sameNodes(got, years) {
		t.Fatalf("multi-atom probe bound %d nodes, want all 3 years", len(got))
	}
}

// TestIndexScanProbeFallback: an index without a value layer still executes
// the value form correctly by filtering the scan — and CmpNe always
// filters, because ∃-≠ is not the complement of ∃-=.
func TestIndexScanProbeFallback(t *testing.T) {
	d := dom.MustParseString(idxTestDoc, "bib.xml")
	years := idxNodes(t, d, "//book/@year")
	for _, tc := range []struct {
		name    string
		hasVals bool
		cmp     value.CmpOp
		wantN   int
	}{
		{"no value layer", false, value.CmpEq, 2},
		{"ne filters", true, value.CmpNe, 1},
		{"ordered probe", true, value.CmpGt, 1},
	} {
		fx := &fakeIndex{nodes: years, hasVals: tc.hasVals}
		op := IndexScan{In: Singleton{}, Attr: "y", URI: "bib.xml",
			Path: "/bib/book/@year", Index: fx, Cmp: tc.cmp,
			Key: ConstVal{V: value.Int(1999)}}
		got, _, _ := boundNodes(t, op, "y")
		if len(got) != tc.wantN {
			t.Fatalf("%s: bound %d nodes, want %d", tc.name, len(got), tc.wantN)
		}
		if tc.cmp == value.CmpNe && fx.probes != 0 {
			t.Fatalf("CmpNe must not probe")
		}
	}
}

// TestIndexScanPerInputRow: like Υ, the node list repeats per input tuple,
// resolved once per open — not once per row.
func TestIndexScanPerInputRow(t *testing.T) {
	d := dom.MustParseString(idxTestDoc, "bib.xml")
	books := idxNodes(t, d, "//book")
	fx := &fakeIndex{nodes: books}
	in := UnnestMap{In: Singleton{}, Attr: "i",
		E: ConstVal{V: value.Seq{value.Int(1), value.Int(2)}}}
	op := IndexScan{In: in, Attr: "b", URI: "bib.xml", Path: "/bib/book", Index: fx}
	ctx := NewCtx(nil)
	out := RunIter(op, ctx, nil)
	if len(out) != 2*len(books) {
		t.Fatalf("%d tuples, want input × nodes = %d", len(out), 2*len(books))
	}
	if ctx.Stats.IndexScans != 1 {
		t.Fatalf("index resolved %d times, want once per open", ctx.Stats.IndexScans)
	}
}
