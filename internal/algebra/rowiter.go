package algebra

import (
	"slices"
	"sync"

	"nalquery/internal/value"
)

// This file is the slot-based pull engine: the open-next-close iterators of
// iter.go re-implemented over value.Row. The schema-resolution pass
// (schema.go) fixes every operator's attribute→slot mapping at plan time;
// the iterators then produce rows with one value-slice allocation (often
// zero: σ and Ξ pass rows through, ΠA′:A swaps the layout pointer and keeps
// the slice). Nested data is slot-native too: group payloads, e[a] bindings
// and nested-block results travel as value.RowSeq. Map-based tuples survive
// only in the conversion shim that runs structurally untyped operators
// through the definitional evaluator — every map tuple materialized on the
// data path counts in Stats.MapTuples.
//
// Rows are immutable once emitted. Operators may retain received rows
// (sort, hash build, the group-detecting Ξ's previous row) without copying;
// producers therefore never reuse an emitted value slice.

// RowIter is the slot-based iterator interface.
type RowIter interface {
	Next() (value.Row, bool)
	Close()
}

// openRows builds the slot-based iterator tree for a plan. ok=false means
// the plan's schema does not resolve and only the map-based engine applies.
//
// Schema resolution is re-derived per level while opening (a node at depth
// d is resolved O(d) times), so plan open is quadratic in plan size in the
// worst case. Plans are tens of nodes and resolution is allocation-light
// next to execution, so this stays far below measurement noise; memoization
// would need operator identity, which the value-typed Op trees don't have.
func openRows(op Op, ctx *Ctx, env value.Tuple) (RowIter, *value.Layout, bool) {
	sc, ok := ResolveSchema(op)
	if !ok {
		return nil, nil, false
	}
	return openRowsSchema(op, sc, ctx, env), sc.Lay, true
}

// openRowsSchema opens an operator whose schema is already resolved.
func openRowsSchema(op Op, sc Schema, ctx *Ctx, env value.Tuple) RowIter {
	if sc.Native {
		if it := openNative(op, sc, ctx, env); it != nil {
			return it
		}
	}
	// Conversion shim: run the operator on the map engine and re-type its
	// tuples under the resolved layout.
	ctx.Stats.ShimOps++
	return &tupleRowIter{in: openLegacy(op, ctx, env), lay: sc.Lay, ctx: ctx}
}

// openNative constructs the slot-native iterator for a structurally resolved
// operator; nil falls back to the conversion shim.
func openNative(op Op, sc Schema, ctx *Ctx, env value.Tuple) RowIter {
	//nal:opswitch rowiter
	switch w := op.(type) {
	case Singleton:
		return &rowSliceIter{rows: []value.Row{value.NewRow(sc.Lay)}}

	case Select:
		in, insc, ok := openRowsChild(w.In, ctx, env)
		if !ok {
			return nil
		}
		return &rowSelectIter{in: in, pred: compileExpr(w.Pred, insc, env), ctx: ctx}

	case Project:
		return openSlotMap(w.In, sc, ctx, env, func(in *value.Layout) ([]int, bool) {
			_, src := in.Project(w.Names)
			return src, src != nil
		})

	case ProjectDrop:
		return openSlotMap(w.In, sc, ctx, env, func(in *value.Layout) ([]int, bool) {
			_, src := in.Drop(w.Names)
			return src, true
		})

	case XiGroup:
		return openRowXiGroup(w, ctx, env)

	case ProjectRename:
		in, _, ok := openRowsChild(w.In, ctx, env)
		if !ok {
			return nil
		}
		return &rowRenameIter{in: in, lay: sc.Lay}

	case ProjectDistinct:
		in, insc, ok := openRowsChild(w.In, ctx, env)
		if !ok {
			return nil
		}
		src := make([]int, len(w.Pairs))
		for i, r := range w.Pairs {
			if s, ok := insc.Lay.Slot(r.Old); ok {
				src[i] = s
			} else {
				src[i] = -1
			}
		}
		all := make([]int, sc.Lay.Width())
		for i := range all {
			all[i] = i
		}
		return &rowDistinctIter{in: in, lay: sc.Lay, src: src, allSlots: all,
			seen: map[value.HashKey]bool{}, ctx: ctx}

	case Map:
		in, insc, ok := openRowsChild(w.In, ctx, env)
		if !ok {
			return nil
		}
		_, slot := insc.Lay.Extend(w.Attr)
		return &rowMapIter{in: in, lay: sc.Lay, slot: slot,
			e: compileExpr(w.E, insc, env), ctx: ctx}

	case UnnestMap:
		in, insc, ok := openRowsChild(w.In, ctx, env)
		if !ok {
			return nil
		}
		lay, slot := insc.Lay.Extend(w.Attr)
		posSlot := -1
		if w.PosAttr != "" {
			lay, posSlot = lay.Extend(w.PosAttr)
		}
		return &rowUnnestMapIter{in: in, lay: lay, slot: slot, posSlot: posSlot,
			e: compileExpr(w.E, insc, env), ctx: ctx}

	case IndexScan:
		in, insc, ok := openRowsChild(w.In, ctx, env)
		if !ok {
			return nil
		}
		lay, slot := insc.Lay.Extend(w.Attr)
		nodes := w.resolve(ctx, env)
		// pos starts exhausted so the first Next pulls an input row before
		// emitting.
		return &rowIndexScanIter{in: in, lay: lay, slot: slot, nodes: nodes,
			ctx: ctx, pos: len(nodes)}

	case XiSimple:
		in, insc, ok := openRowsChild(w.In, ctx, env)
		if !ok {
			return nil
		}
		return &rowXiIter{in: in, cmds: compileCommands(w.Cmds, insc, env), ctx: ctx}

	case XiGroupStream:
		insc, ok := ResolveSchema(w.In)
		if !ok {
			return nil
		}
		by, ok := slotsOf(insc.Lay, w.By)
		if !ok {
			return nil
		}
		in := openRowsSchema(w.In, insc, ctx, env)
		return &rowXiGroupStreamIter{in: in, by: by, ctx: ctx,
			s1: compileCommands(w.S1, insc, env),
			s2: compileCommands(w.S2, insc, env),
			s3: compileCommands(w.S3, insc, env)}

	case Sort:
		insc, ok := ResolveSchema(w.In)
		if !ok {
			return nil
		}
		by, ok := slotsOf(insc.Lay, w.By)
		if !ok {
			return nil
		}
		// The order-restoration breaker: materialize into a pooled buffer
		// (reused across Open cycles — emitted Rows are value copies, so
		// recycling the buffer never aliases them) and sort it in place with
		// a monomorphic comparison instead of sort.Sort's interface dispatch.
		rows := drainRowsInto(ctx, TripSort, openRowsSchema(w.In, insc, ctx, env), getSortBuf())
		slices.SortStableFunc(rows, func(a, b value.Row) int {
			return cmpRowsDirs(a, b, by, w.Dirs)
		})
		return &rowSliceIter{rows: rows, pooled: true}

	case AttachSeq:
		in, insc, ok := openRowsChild(w.In, ctx, env)
		if !ok {
			return nil
		}
		_, slot := insc.Lay.Extend(w.Attr)
		return &rowAttachSeqIter{in: in, lay: sc.Lay, slot: slot}

	case Cross:
		left, _, ok := openRowsChild(w.L, ctx, env)
		if !ok {
			return nil
		}
		right, _, rok := openRowsChild(w.R, ctx, env)
		if !rok {
			left.Close()
			return nil
		}
		return &rowCrossIter{left: left, right: drainRows(ctx, TripBuild, right), lay: sc.Lay, pos: -1}

	case Join:
		return openRowJoin(w.L, w.R, w.Pred, sc, ctx, env, joinModeInner, "", nil)
	case SemiJoin:
		return openRowJoin(w.L, w.R, w.Pred, sc, ctx, env, joinModeSemi, "", nil)
	case AntiJoin:
		return openRowJoin(w.L, w.R, w.Pred, sc, ctx, env, joinModeAnti, "", nil)
	case OuterJoin:
		return openRowJoin(w.L, w.R, w.Pred, sc, ctx, env, joinModeOuter, w.G, w.Default)

	case GroupUnary:
		return openRowGroupUnary(w, sc, ctx, env)
	case GroupSelf:
		return openRowGroupSelf(w, sc, ctx, env)
	case GroupBinary:
		return openRowGroupBinary(w, sc, ctx, env)

	case GraceJoin:
		return openRowPartitionedJoin(w.L, w.R, w.LAttrs, w.RAttrs, w.Residual,
			sc, ctx, env, joinModeInner, "", nil)
	case OPHashJoin:
		return openRowOPHashJoin(w, sc, ctx, env)
	case UnorderedJoin:
		return openRowPartitionedJoin(w.L, w.R, w.LAttrs, w.RAttrs, w.Residual,
			sc, ctx, env, joinModeInner, "", nil)
	case UnorderedSemiJoin:
		return openRowPartitionedJoin(w.L, w.R, w.LAttrs, w.RAttrs, w.Residual,
			sc, ctx, env, joinModeSemi, "", nil)
	case UnorderedAntiJoin:
		return openRowPartitionedJoin(w.L, w.R, w.LAttrs, w.RAttrs, w.Residual,
			sc, ctx, env, joinModeAnti, "", nil)
	case UnorderedOuterJoin:
		return openRowPartitionedJoin(w.L, w.R, w.LAttrs, w.RAttrs, nil,
			sc, ctx, env, joinModeOuter, w.G, w.Default)
	case UnorderedGroupUnary:
		return openRowUnorderedGroupUnary(w, sc, ctx, env)
	case UnorderedGroupBinary:
		return openRowUnorderedGroupBinary(w, sc, ctx, env)

	case Unnest:
		return openRowUnnest(w.In, w.Attr, w.InnerAttrs, sc, ctx, env, true)
	case UnnestDistinct:
		return openRowUnnest(w.In, w.Attr, nil, sc, ctx, env, false)

	default:
		return nil
	}
}

// openRowsChild opens a child subtree, returning its schema alongside.
func openRowsChild(op Op, ctx *Ctx, env value.Tuple) (RowIter, Schema, bool) {
	sc, ok := ResolveSchema(op)
	if !ok {
		return nil, Schema{}, false
	}
	return openRowsSchema(op, sc, ctx, env), sc, true
}

// drainRows materializes an iterator's remaining rows and closes it. point
// names the materialization boundary for budget accounting (TripSort,
// TripBuild, ...).
func drainRows(ctx *Ctx, point string, it RowIter) []value.Row {
	return drainRowsInto(ctx, point, it, nil)
}

// drainRowsInto materializes into a caller-provided buffer (the pooled form
// used by the Sort breaker) and closes the iterator. It is the breaker-side
// cancellation point — a cancelled run stops materializing build sides, sort
// buffers and group inputs mid-drain — and the breaker-side budget charge
// point: every retained row debits the run's Budget under the caller's trip
// label.
func drainRowsInto(ctx *Ctx, point string, it RowIter, buf []value.Row) []value.Row {
	for {
		if ctx.Cancelled() {
			it.Close()
			return buf
		}
		r, ok := it.Next()
		if !ok {
			it.Close()
			return buf
		}
		ctx.ChargeRow(point, r)
		buf = append(buf, r)
	}
}

// sortBufPool recycles the Sort breaker's materialization buffers across
// Open cycles (and across executions — the pool is process-wide). Buffers
// hold Row structs by value; emitted rows are copies, so reuse is safe.
var sortBufPool sync.Pool

func getSortBuf() []value.Row {
	if p, ok := sortBufPool.Get().(*[]value.Row); ok {
		return (*p)[:0]
	}
	return nil
}

func putSortBuf(buf []value.Row) {
	if cap(buf) == 0 {
		return
	}
	buf = buf[:0]
	sortBufPool.Put(&buf)
}

// rowsToTuples converts materialized rows for map-level consumers — the
// counted fallback for sequence functions the slot engine cannot compile.
func rowsToTuples(ctx *Ctx, rows []value.Row) value.TupleSeq {
	ctx.Stats.MapTuples += int64(len(rows))
	out := make(value.TupleSeq, len(rows))
	for i, r := range rows {
		out[i] = r.Tuple()
	}
	return out
}

// groupApplier compiles a SeqFunc against the layout of the group's member
// rows. The whole paper library runs slot-natively: id wraps the member rows
// as a RowSeq without copying, count and the aggregates read slots, ΠA
// builds a flat projected RowSeq, and f ∘ σp compiles its predicate against
// the member layout once. Only unknown SeqFunc extensions materialize the
// group as map tuples (counted in Stats.MapTuples).
func groupApplier(f SeqFunc, lay *value.Layout, env value.Tuple) func(ctx *Ctx, env value.Tuple, rows []value.Row) value.Value {
	switch w := f.(type) {
	case SFIdent:
		return func(_ *Ctx, _ value.Tuple, rows []value.Row) value.Value {
			return value.WrapRows(lay, rows)
		}
	case SFCount:
		return func(_ *Ctx, _ value.Tuple, rows []value.Row) value.Value {
			return value.Int(int64(len(rows)))
		}
	case SFAgg:
		if slot, ok := lay.Slot(w.Attr); ok {
			return func(_ *Ctx, _ value.Tuple, rows []value.Row) value.Value {
				var atoms value.Seq
				for _, r := range rows {
					atoms = append(atoms, value.Atomize(r.Vals[slot])...)
				}
				return aggregate(w.Fn, atoms)
			}
		}
	case SFProject:
		if plLay := value.NewLayout(w.Attrs...); plLay != nil && plLay.Width() > 0 {
			slots := make([]int, len(w.Attrs))
			for i, a := range w.Attrs {
				if s, ok := lay.Slot(a); ok {
					slots[i] = s
				} else {
					slots[i] = -1
				}
			}
			return func(ctx *Ctx, _ value.Tuple, rows []value.Row) value.Value {
				// The projected payload is a fresh flat backing — the Γ group
				// state the budget exists to bound.
				ctx.ChargeBytes(TripGroup, len(rows)*len(slots)*rowSlotBytes)
				flat := make([]value.Value, 0, len(rows)*len(slots))
				for _, r := range rows {
					for _, s := range slots {
						if s >= 0 {
							flat = append(flat, r.Vals[s])
						} else {
							flat = append(flat, nil)
						}
					}
				}
				return value.RowSeqOfFlat(plLay, flat)
			}
		}
	case SFFiltered:
		pred := compileExpr(w.Pred, Schema{Lay: lay}, env)
		inner := groupApplier(w.Inner, lay, env)
		return func(ctx *Ctx, env value.Tuple, rows []value.Row) value.Value {
			var kept []value.Row
			for _, r := range rows {
				if value.EffectiveBool(pred(ctx, r)) {
					kept = append(kept, r)
				}
			}
			return inner(ctx, env, kept)
		}
	}
	return func(ctx *Ctx, env value.Tuple, rows []value.Row) value.Value {
		return f.Apply(ctx, env, rowsToTuples(ctx, rows))
	}
}

// ---- elementary iterators ----

type rowSliceIter struct {
	rows   []value.Row
	pos    int
	pooled bool // return the buffer to the sort pool on Close
}

func (s *rowSliceIter) Next() (value.Row, bool) {
	if s.pos >= len(s.rows) {
		return value.Row{}, false
	}
	r := s.rows[s.pos]
	s.pos++
	return r, true
}

func (s *rowSliceIter) Close() {
	if s.pooled && s.rows != nil {
		putSortBuf(s.rows)
	}
	s.rows = nil
}

// tupleRowIter is the conversion shim: it streams a map-based iterator and
// re-types every tuple under the resolved layout.
type tupleRowIter struct {
	in  Iterator
	lay *value.Layout
	ctx *Ctx
}

func (s *tupleRowIter) Next() (value.Row, bool) {
	t, ok := s.in.Next()
	if !ok {
		return value.Row{}, false
	}
	s.ctx.Stats.MapTuples++
	return value.RowFromTuple(s.lay, t), true
}

func (s *tupleRowIter) Close() { s.in.Close() }

type rowSelectIter struct {
	in   RowIter
	pred RowExpr
	ctx  *Ctx
}

func (s *rowSelectIter) Next() (value.Row, bool) {
	for {
		r, ok := s.in.Next()
		if !ok {
			return value.Row{}, false
		}
		if value.EffectiveBool(s.pred(s.ctx, r)) {
			return r, true
		}
	}
}

func (s *rowSelectIter) Close() { s.in.Close() }

// openSlotMap builds the slot-copy iterator shared by Π and Π̄.
func openSlotMap(child Op, sc Schema, ctx *Ctx, env value.Tuple,
	mapping func(in *value.Layout) ([]int, bool)) RowIter {
	insc, ok := ResolveSchema(child)
	if !ok {
		return nil
	}
	src, ok := mapping(insc.Lay)
	if !ok {
		return nil
	}
	in, _, ok := openRows(child, ctx, env)
	if !ok {
		return nil
	}
	return &rowSlotMapIter{in: in, lay: sc.Lay, src: src}
}

type rowSlotMapIter struct {
	in  RowIter
	lay *value.Layout
	src []int
}

func (m *rowSlotMapIter) Next() (value.Row, bool) {
	r, ok := m.in.Next()
	if !ok {
		return value.Row{}, false
	}
	return value.MapSlots(m.lay, m.src, r), true
}

func (m *rowSlotMapIter) Close() { m.in.Close() }

// rowRenameIter implements ΠA′:A as a pure layout swap: zero copies, zero
// allocations per tuple.
type rowRenameIter struct {
	in  RowIter
	lay *value.Layout
}

func (m *rowRenameIter) Next() (value.Row, bool) {
	r, ok := m.in.Next()
	if !ok {
		return value.Row{}, false
	}
	return value.Row{Lay: m.lay, Vals: r.Vals}, true
}

func (m *rowRenameIter) Close() { m.in.Close() }

type rowDistinctIter struct {
	in       RowIter
	lay      *value.Layout
	src      []int
	allSlots []int // 0..width-1, the distinct key spans every output slot
	seen     map[value.HashKey]bool
	ctx      *Ctx
}

func (d *rowDistinctIter) Next() (value.Row, bool) {
	for {
		r, ok := d.in.Next()
		if !ok {
			return value.Row{}, false
		}
		out := value.MapSlots(d.lay, d.src, r)
		key := rowKey(out, d.allSlots)
		if !d.seen[key] {
			// The dedup table retains one entry (and the emitted row) per
			// distinct key — the materialized state of ΠD.
			d.ctx.charge(TripDedup, 0, dedupEntryBytes)
			d.seen[key] = true
			return out, true
		}
	}
}

func (d *rowDistinctIter) Close() { d.in.Close() }

type rowMapIter struct {
	in   RowIter
	lay  *value.Layout
	slot int
	e    RowExpr
	ctx  *Ctx
}

func (m *rowMapIter) Next() (value.Row, bool) {
	r, ok := m.in.Next()
	if !ok {
		return value.Row{}, false
	}
	vals := make([]value.Value, m.lay.Width())
	copy(vals, r.Vals)
	vals[m.slot] = m.e(m.ctx, r)
	return value.Row{Lay: m.lay, Vals: vals}, true
}

func (m *rowMapIter) Close() { m.in.Close() }

type rowUnnestMapIter struct {
	in      RowIter
	lay     *value.Layout
	slot    int
	posSlot int
	e       RowExpr
	ctx     *Ctx

	cur     value.Row
	pending value.Seq
	pos     int
}

func (u *rowUnnestMapIter) Next() (value.Row, bool) {
	for {
		// Υ is the engine's scan producer: every stored-document traversal
		// streams through here, making it the cancellation point of choice
		// for fully pipelined plans.
		if u.ctx.Cancelled() {
			return value.Row{}, false
		}
		if u.pos < len(u.pending) {
			vals := make([]value.Value, u.lay.Width())
			copy(vals, u.cur.Vals)
			vals[u.slot] = u.pending[u.pos]
			if u.posSlot >= 0 {
				vals[u.posSlot] = value.Int(int64(u.pos + 1))
			}
			u.pos++
			u.ctx.Stats.Tuples++
			u.ctx.ChargeRow(TripScan, value.Row{Lay: u.lay, Vals: vals})
			return value.Row{Lay: u.lay, Vals: vals}, true
		}
		r, ok := u.in.Next()
		if !ok {
			return value.Row{}, false
		}
		u.cur = r
		u.pending = value.AsSeq(u.e(u.ctx, r))
		u.pos = 0
	}
}

func (u *rowUnnestMapIter) Close() { u.in.Close() }

type rowXiIter struct {
	in   RowIter
	cmds []compiledCmd
	ctx  *Ctx
}

func (x *rowXiIter) Next() (value.Row, bool) {
	r, ok := x.in.Next()
	if !ok {
		return value.Row{}, false
	}
	execCompiled(x.ctx, r, x.cmds)
	return r, true
}

func (x *rowXiIter) Close() { x.in.Close() }

type rowXiGroupStreamIter struct {
	in         RowIter
	by         []int
	s1, s2, s3 []compiledCmd
	ctx        *Ctx

	prev    value.Row
	hasPrev bool
	closed  bool
}

func (x *rowXiGroupStreamIter) Next() (value.Row, bool) {
	r, ok := x.in.Next()
	if !ok {
		if x.hasPrev && !x.closed {
			execCompiled(x.ctx, x.prev, x.s3)
			x.closed = true
		}
		return value.Row{}, false
	}
	if !x.hasPrev {
		execCompiled(x.ctx, r, x.s1)
	} else if !sameGroupRows(x.prev, r, x.by) {
		execCompiled(x.ctx, x.prev, x.s3)
		execCompiled(x.ctx, r, x.s1)
	}
	execCompiled(x.ctx, r, x.s2)
	x.prev = r
	x.hasPrev = true
	return r, true
}

func (x *rowXiGroupStreamIter) Close() { x.in.Close() }

// openRowXiGroup implements the hash-bucket Γ-Ξ: it materializes the input,
// fires S1/S2/S3 per first-occurrence group, and streams the input rows
// unchanged — the slot twin of XiGroup.Eval.
func openRowXiGroup(x XiGroup, ctx *Ctx, env value.Tuple) RowIter {
	insc, ok := ResolveSchema(x.In)
	if !ok {
		return nil
	}
	by, ok := slotsOf(insc.Lay, x.By)
	if !ok {
		return nil
	}
	rows := drainRows(ctx, TripGroup, openRowsSchema(x.In, insc, ctx, env))
	// Ξ-group passes its input through, so its output cardinality says
	// nothing about the bucket count; size the table by the textbook
	// distinct-keys fraction of the input instead.
	hint := len(rows)/3 + 1
	keys := make([]value.HashKey, 0, hint)
	buckets := make(map[value.HashKey][]value.Row, hint)
	for _, r := range rows {
		k := rowKey(r, by)
		if _, ok := buckets[k]; !ok {
			keys = append(keys, k)
		}
		buckets[k] = append(buckets[k], r)
	}
	s1 := compileCommands(x.S1, insc, env)
	s2 := compileCommands(x.S2, insc, env)
	s3 := compileCommands(x.S3, insc, env)
	for _, k := range keys {
		grp := buckets[k]
		execCompiled(ctx, grp[0], s1)
		for _, r := range grp {
			execCompiled(ctx, r, s2)
		}
		execCompiled(ctx, grp[len(grp)-1], s3)
	}
	return &rowSliceIter{rows: rows}
}

func sameGroupRows(a, b value.Row, by []int) bool {
	for _, s := range by {
		if value.KeyOf(a.Vals[s]) != value.KeyOf(b.Vals[s]) {
			return false
		}
	}
	return true
}

// cmpRowsDirs is the three-way sort comparison of the row engine's Sort
// breaker: per-key atomization with one atom parse per side (value.Compare3)
// instead of the two CompareAtomic probes the bool form needed. Empty values
// sort first on ascending keys and last on descending ones.
func cmpRowsDirs(a, b value.Row, by []int, dirs []bool) int {
	for i, s := range by {
		c := value.Compare3(value.AtomizeSingle(a.Vals[s]), value.AtomizeSingle(b.Vals[s]))
		if c == 0 {
			continue
		}
		if i < len(dirs) && dirs[i] {
			return -c
		}
		return c
	}
	return 0
}

type rowAttachSeqIter struct {
	in   RowIter
	lay  *value.Layout
	slot int
	seq  int64
}

func (a *rowAttachSeqIter) Next() (value.Row, bool) {
	r, ok := a.in.Next()
	if !ok {
		return value.Row{}, false
	}
	vals := make([]value.Value, a.lay.Width())
	copy(vals, r.Vals)
	vals[a.slot] = value.Int(a.seq)
	a.seq++
	return value.Row{Lay: a.lay, Vals: vals}, true
}

func (a *rowAttachSeqIter) Close() { a.in.Close() }

type rowCrossIter struct {
	left  RowIter
	right []value.Row
	lay   *value.Layout

	cur  value.Row
	pos  int
	done bool
}

func (c *rowCrossIter) Next() (value.Row, bool) {
	for {
		if c.done {
			return value.Row{}, false
		}
		if c.pos >= 0 && c.pos < len(c.right) {
			r := value.ConcatRows(c.lay, c.cur, c.right[c.pos])
			c.pos++
			return r, true
		}
		lt, ok := c.left.Next()
		if !ok {
			c.done = true
			return value.Row{}, false
		}
		c.cur = lt
		c.pos = 0
		if len(c.right) == 0 {
			c.pos = len(c.right)
		}
	}
}

func (c *rowCrossIter) Close() { c.left.Close() }

// ---- join family ----

// rowJoinPlan is the slot twin of joinPlan: build side materialized as rows,
// hashed on the key slots.
type rowJoinPlan struct {
	lSlots   []int
	rSlots   []int
	residual RowExpr // over the concatenated layout
	catLay   *value.Layout
	hash     map[value.HashKey][]value.Row
	right    []value.Row
	useHash  bool
}

func (jp *rowJoinPlan) candidates(lt value.Row) []value.Row {
	if jp.useHash {
		return jp.hash[rowKey(lt, jp.lSlots)]
	}
	return jp.right
}

func (jp *rowJoinPlan) matches(ctx *Ctx, lt value.Row, dst []value.Row) []value.Row {
	cand := jp.candidates(lt)
	if jp.residual == nil {
		return cand
	}
	dst = dst[:0]
	for _, rt := range cand {
		if value.EffectiveBool(jp.residual(ctx, value.ConcatRows(jp.catLay, lt, rt))) {
			dst = append(dst, rt)
		}
	}
	return dst
}

func (jp *rowJoinPlan) anyMatch(ctx *Ctx, lt value.Row) bool {
	cand := jp.candidates(lt)
	if jp.residual == nil {
		return len(cand) > 0
	}
	for _, rt := range cand {
		if value.EffectiveBool(jp.residual(ctx, value.ConcatRows(jp.catLay, lt, rt))) {
			return true
		}
	}
	return false
}

type rowJoinIter struct {
	left RowIter
	jp   rowJoinPlan
	mode joinMode
	lay  *value.Layout // output layout (concat for inner/outer, left for semi/anti)
	ctx  *Ctx
	env  value.Tuple

	gSlot   int
	def     SeqFunc
	padFrom int // first right slot in the concatenated layout
	cur     value.Row
	pending []value.Row
	pool    []value.Row
	pos     int
}

func openRowJoin(l, r Op, pred Expr, sc Schema, ctx *Ctx, env value.Tuple,
	mode joinMode, g string, def SeqFunc) RowIter {
	lsc, lok := ResolveSchema(l)
	rsc, rok := ResolveSchema(r)
	if !lok || !rok {
		return nil
	}
	catLay, cok := lsc.Lay.Concat(rsc.Lay)
	if !cok {
		return nil
	}
	gSlot := -1
	if mode == joinModeOuter {
		s, ok := catLay.Slot(g)
		if !ok {
			return nil // G outside the right schema: map semantics needed
		}
		gSlot = s
	}

	left := openRowsSchema(l, lsc, ctx, env)
	jp := rowJoinPlan{catLay: catLay, right: drainRows(ctx, TripBuild, openRowsSchema(r, rsc, ctx, env))}

	if pairs, residual, ok := splitEqPred(pred, attrBoolSet(lsc.Lay), attrBoolSet(rsc.Lay)); ok {
		var lKeys, rKeys []string
		for _, p := range pairs {
			lKeys = append(lKeys, p.Left)
			rKeys = append(rKeys, p.Right)
		}
		jp.lSlots, _ = slotsOf(lsc.Lay, lKeys)
		jp.rSlots, _ = slotsOf(rsc.Lay, rKeys)
		jp.hash = make(map[value.HashKey][]value.Row, len(jp.right))
		for _, rt := range jp.right {
			k := rowKey(rt, jp.rSlots)
			jp.hash[k] = append(jp.hash[k], rt)
		}
		jp.useHash = true
		if residual != nil {
			jp.residual = compileExpr(residual, Schema{Lay: catLay}, env)
		}
	} else {
		jp.residual = compileExpr(pred, Schema{Lay: catLay}, env)
	}

	it := &rowJoinIter{left: left, jp: jp, mode: mode, ctx: ctx, env: env,
		gSlot: gSlot, def: def, padFrom: lsc.Lay.Width()}
	switch mode {
	case joinModeSemi, joinModeAnti:
		it.lay = lsc.Lay
	default:
		it.lay = catLay
	}
	return it
}

func attrBoolSet(lay *value.Layout) map[string]bool {
	m := make(map[string]bool, lay.Width())
	for _, n := range lay.Names() {
		m[n] = true
	}
	return m
}

func (j *rowJoinIter) Next() (value.Row, bool) {
	for {
		if j.pos < len(j.pending) {
			r := value.ConcatRows(j.lay, j.cur, j.pending[j.pos])
			j.pos++
			return r, true
		}
		lt, ok := j.left.Next()
		if !ok {
			return value.Row{}, false
		}
		// The probe side streams — no accounting, but it is a fault-injection
		// boundary (a real allocator can fail growing the match pool here).
		j.ctx.Fault(TripProbe)
		switch j.mode {
		case joinModeSemi:
			if j.jp.anyMatch(j.ctx, lt) {
				return lt, true
			}
		case joinModeAnti:
			if !j.jp.anyMatch(j.ctx, lt) {
				return lt, true
			}
		case joinModeInner:
			j.cur = lt
			j.pool = j.jp.matches(j.ctx, lt, j.pool)
			j.pending = j.pool
			j.pos = 0
		case joinModeOuter:
			ms := j.jp.matches(j.ctx, lt, j.pool)
			if len(ms) == 0 {
				vals := make([]value.Value, j.lay.Width())
				copy(vals, lt.Vals)
				for i := j.padFrom; i < len(vals); i++ {
					vals[i] = value.Null{}
				}
				vals[j.gSlot] = j.def.Apply(j.ctx, j.env, nil)
				return value.Row{Lay: j.lay, Vals: vals}, true
			}
			j.cur = lt
			j.pool = ms
			j.pending = ms
			j.pos = 0
		}
	}
}

func (j *rowJoinIter) Close() { j.left.Close() }

// ---- grouping ----

func openRowGroupUnary(g GroupUnary, sc Schema, ctx *Ctx, env value.Tuple) RowIter {
	insc, ok := ResolveSchema(g.In)
	if !ok {
		return nil
	}
	by, ok := slotsOf(insc.Lay, g.By)
	if !ok {
		return nil
	}
	gSlot, _ := sc.Lay.Slot(g.G)
	outBy, _ := slotsOf(sc.Lay, g.By)
	rows := drainRows(ctx, TripGroup, openRowsSchema(g.In, insc, ctx, env))
	apply := groupApplier(g.F, insc.Lay, env)

	// Γ's output cardinality is its distinct-key count: pre-size the hash
	// table and key list from the cost model's estimate instead of growing
	// from Go map defaults.
	hint := ctx.cardHint(g, len(rows))
	out := make([]value.Row, 0, hint)
	emit := func(key value.Row, v value.Value) {
		vals := make([]value.Value, sc.Lay.Width())
		for i, s := range by {
			vals[outBy[i]] = key.Vals[s]
		}
		vals[gSlot] = v
		out = append(out, value.Row{Lay: sc.Lay, Vals: vals})
	}

	if g.Theta == value.CmpEq {
		keys := make([]value.HashKey, 0, hint)
		buckets := make(map[value.HashKey][]value.Row, hint)
		for _, r := range rows {
			k := rowKey(r, by)
			if _, ok := buckets[k]; !ok {
				keys = append(keys, k)
			}
			buckets[k] = append(buckets[k], r)
		}
		for _, k := range keys {
			b := buckets[k]
			emit(b[0], apply(ctx, env, b))
		}
		return &rowSliceIter{rows: out}
	}

	// General θ: compare every distinct key against every input row.
	var keyRows []value.Row
	seen := map[value.HashKey]bool{}
	for _, r := range rows {
		k := rowKey(r, by)
		if !seen[k] {
			seen[k] = true
			keyRows = append(keyRows, r)
		}
	}
	for _, kr := range keyRows {
		var grp []value.Row
		for _, r := range rows {
			if thetaMatchRows(kr, r, by, by, g.Theta) {
				grp = append(grp, r)
			}
		}
		emit(kr, apply(ctx, env, grp))
	}
	return &rowSliceIter{rows: out}
}

// openRowGroupSelf annotates each input row with F applied to its equality
// group, preserving input order (unlike Γ, which emits one row per group).
func openRowGroupSelf(g GroupSelf, sc Schema, ctx *Ctx, env value.Tuple) RowIter {
	insc, ok := ResolveSchema(g.In)
	if !ok {
		return nil
	}
	by, ok := slotsOf(insc.Lay, g.By)
	if !ok {
		return nil
	}
	gSlot, _ := sc.Lay.Slot(g.G)
	rows := drainRows(ctx, TripGroup, openRowsSchema(g.In, insc, ctx, env))
	apply := groupApplier(g.F, insc.Lay, env)

	buckets := make(map[value.HashKey][]value.Row, len(rows))
	for _, r := range rows {
		k := rowKey(r, by)
		buckets[k] = append(buckets[k], r)
	}
	applied := make(map[value.HashKey]value.Value, len(buckets))
	out := make([]value.Row, 0, len(rows))
	for _, r := range rows {
		k := rowKey(r, by)
		v, ok := applied[k]
		if !ok {
			v = apply(ctx, env, buckets[k])
			applied[k] = v
		}
		vals := make([]value.Value, sc.Lay.Width())
		copy(vals, r.Vals)
		vals[gSlot] = v
		out = append(out, value.Row{Lay: sc.Lay, Vals: vals})
	}
	return &rowSliceIter{rows: out}
}

func thetaMatchRows(a, b value.Row, as, bs []int, op value.CmpOp) bool {
	for i := range as {
		av := value.AtomizeSingle(a.Vals[as[i]])
		bv := value.AtomizeSingle(b.Vals[bs[i]])
		if av == nil || bv == nil || !value.CompareAtomic(av, bv, op) {
			return false
		}
	}
	return true
}

func openRowGroupBinary(g GroupBinary, sc Schema, ctx *Ctx, env value.Tuple) RowIter {
	lsc, lok := ResolveSchema(g.L)
	rsc, rok := ResolveSchema(g.R)
	if !lok || !rok {
		return nil
	}
	lSlots, ok1 := slotsOf(lsc.Lay, g.LAttrs)
	rSlots, ok2 := slotsOf(rsc.Lay, g.RAttrs)
	if !ok1 || !ok2 {
		return nil
	}
	gSlot, _ := sc.Lay.Slot(g.G)

	left := openRowsSchema(g.L, lsc, ctx, env)

	it := &rowGroupBinaryIter{left: left, lay: sc.Lay, gSlot: gSlot,
		apply: groupApplier(g.F, rsc.Lay, env), ctx: ctx, env: env,
		lSlots: lSlots, rSlots: rSlots, theta: g.Theta}
	// The build side materializes lazily on the first left tuple, so an
	// empty left input never evaluates R — matching GroupBinary.Eval's
	// short-circuit.
	it.build = func() {
		rRows := drainRows(ctx, TripGroup, openRowsSchema(g.R, rsc, ctx, env))
		if g.Theta == value.CmpEq && !g.ForceScan {
			it.hash = make(map[value.HashKey][]value.Row, len(rRows))
			for _, r := range rRows {
				k := rowKey(r, rSlots)
				it.hash[k] = append(it.hash[k], r)
			}
			it.applied = make(map[value.HashKey]value.Value, len(it.hash))
			return
		}
		it.scanRows = rRows
	}
	return it
}

type rowGroupBinaryIter struct {
	left  RowIter
	lay   *value.Layout
	gSlot int
	apply func(ctx *Ctx, env value.Tuple, rows []value.Row) value.Value
	ctx   *Ctx
	env   value.Tuple

	// build materializes the right input on the first left tuple.
	build func()
	built bool

	// hash path; applied caches f per distinct key, so shared groups are
	// materialized once (and, like the map engine's shared bucket slices,
	// shared as values across output tuples).
	hash    map[value.HashKey][]value.Row
	applied map[value.HashKey]value.Value
	lSlots  []int

	// scan path
	scanRows []value.Row
	rSlots   []int
	theta    value.CmpOp
}

func (g *rowGroupBinaryIter) Next() (value.Row, bool) {
	lt, ok := g.left.Next()
	if !ok {
		return value.Row{}, false
	}
	if !g.built {
		g.built = true
		g.build()
	}
	var gv value.Value
	if g.hash != nil {
		k := rowKey(lt, g.lSlots)
		var cached bool
		if gv, cached = g.applied[k]; !cached {
			gv = g.apply(g.ctx, g.env, g.hash[k])
			g.applied[k] = gv
		}
	} else {
		var grp []value.Row
		for _, r := range g.scanRows {
			if thetaMatchRows(lt, r, g.lSlots, g.rSlots, g.theta) {
				grp = append(grp, r)
			}
		}
		gv = g.apply(g.ctx, g.env, grp)
	}
	vals := make([]value.Value, g.lay.Width())
	copy(vals, lt.Vals)
	vals[g.gSlot] = gv
	return value.Row{Lay: g.lay, Vals: vals}, true
}

func (g *rowGroupBinaryIter) Close() { g.left.Close() }

// ---- unnest ----

// openRowUnnest builds µ (pad=true) / µD (pad=false): the group attribute's
// tuples are spliced into slots computed at plan time. Attributes of the
// inner tuples that collide with kept input attributes overwrite them,
// matching the map engine's Concat semantics.
func openRowUnnest(child Op, attr string, innerAttrs []string, sc Schema, ctx *Ctx, env value.Tuple, pad bool) RowIter {
	insc, ok := ResolveSchema(child)
	if !ok {
		return nil
	}
	var inner *value.Layout
	if nested := insc.nested(attr); nested != nil {
		inner = nested.Lay
	}
	if innerAttrs != nil {
		inner = value.NewLayout(innerAttrs...)
	}
	if inner == nil {
		return nil
	}
	gSlot, ok := insc.Lay.Slot(attr)
	if !ok {
		return nil
	}
	// Base mapping: kept input slots into the output layout.
	baseLay, baseSrc := insc.Lay.Drop([]string{attr})
	baseDst := make([]int, baseLay.Width())
	for i, n := range baseLay.Names() {
		d, ok := sc.Lay.Slot(n)
		if !ok {
			return nil
		}
		baseDst[i] = d
	}
	// Inner mapping: group attributes into the output layout (overwriting
	// colliding base slots — the Concat right-hand side wins).
	innerNames := inner.Names()
	innerDst := make([]int, len(innerNames))
	for i, n := range innerNames {
		d, ok := sc.Lay.Slot(n)
		if !ok {
			return nil
		}
		innerDst[i] = d
	}
	in := openRowsSchema(child, insc, ctx, env)
	return &rowUnnestIter{in: in, lay: sc.Lay, gSlot: gSlot,
		baseSrc: baseSrc, baseDst: baseDst,
		innerNames: innerNames, innerDst: innerDst, pad: pad, ctx: ctx}
}

type rowUnnestIter struct {
	in         RowIter
	lay        *value.Layout
	gSlot      int
	baseSrc    []int
	baseDst    []int
	innerNames []string
	innerDst   []int
	pad        bool // µ pads empty groups with ⊥; µD skips them

	cur      value.Row
	pendRows value.RowSeq   // slot-backed payload (the native case)
	pendTup  value.TupleSeq // map-backed payload (values built off-engine)
	pendN    int
	pos      int

	// Splice cache for RowSeq payloads: innerSrc[i] is the slot of
	// innerNames[i] in the payload layout, recomputed only when the payload
	// layout changes (normally once — every group of one Γ shares it).
	innerLay *value.Layout
	innerSrc []int

	dedup   map[value.HashKey]bool
	scratch []int // KeyOfRow slot scratch, reused across members
	ctx     *Ctx
}

func (u *rowUnnestIter) base() []value.Value {
	vals := make([]value.Value, u.lay.Width())
	for i, s := range u.baseSrc {
		vals[u.baseDst[i]] = u.cur.Vals[s]
	}
	return vals
}

// spliceFor points the inner-attribute splice at a payload layout.
func (u *rowUnnestIter) spliceFor(lay *value.Layout) {
	if u.innerLay == lay {
		return
	}
	u.innerLay = lay
	if cap(u.innerSrc) < len(u.innerNames) {
		u.innerSrc = make([]int, len(u.innerNames))
	}
	u.innerSrc = u.innerSrc[:len(u.innerNames)]
	for i, n := range u.innerNames {
		if s, ok := lay.Slot(n); ok {
			u.innerSrc[i] = s
		} else {
			u.innerSrc[i] = -1
		}
	}
}

func (u *rowUnnestIter) Next() (value.Row, bool) {
	for {
		for u.pos < u.pendN {
			i := u.pos
			u.pos++
			if u.pendTup != nil {
				g := u.pendTup[i]
				if u.dedup != nil {
					// Key each member on its own attribute set, exactly like
					// UnnestDistinct.Eval: a member lacking an attribute must
					// not collide with one binding it to NULL.
					k := tupleHashKey(g, g.Attrs())
					if u.dedup[k] {
						continue
					}
					u.ctx.charge(TripDedup, 0, dedupEntryBytes)
					u.dedup[k] = true
				}
				vals := u.base()
				for j, n := range u.innerNames {
					if v, ok := g[n]; ok {
						vals[u.innerDst[j]] = v
					}
				}
				return value.Row{Lay: u.lay, Vals: vals}, true
			}
			g := u.pendRows.At(i)
			if u.dedup != nil {
				var k value.HashKey
				k, u.scratch = value.KeyOfRow(g, u.scratch)
				if u.dedup[k] {
					continue
				}
				u.ctx.charge(TripDedup, 0, dedupEntryBytes)
				u.dedup[k] = true
			}
			vals := u.base()
			for j, s := range u.innerSrc {
				if s >= 0 {
					if v := g.Vals[s]; v != nil {
						vals[u.innerDst[j]] = v
					}
				}
			}
			return value.Row{Lay: u.lay, Vals: vals}, true
		}
		r, ok := u.in.Next()
		if !ok {
			return value.Row{}, false
		}
		u.cur = r
		u.pendTup, u.pendRows, u.pendN = nil, value.RowSeq{}, 0
		switch p := r.Vals[u.gSlot].(type) {
		case value.RowSeq:
			u.pendRows = p
			u.pendN = p.Len()
			u.spliceFor(p.Lay())
		case value.TupleSeq:
			u.pendTup = p
			u.pendN = len(p)
		}
		u.pos = 0
		if !u.pad {
			u.dedup = map[value.HashKey]bool{}
			continue
		}
		u.dedup = nil
		if u.pendN == 0 {
			vals := u.base()
			for _, d := range u.innerDst {
				vals[d] = value.Null{}
			}
			return value.Row{Lay: u.lay, Vals: vals}, true
		}
	}
}

func (u *rowUnnestIter) Close() { u.in.Close() }
