package algebra

import (
	"math/rand"
	"testing"
	"testing/quick"

	"nalquery/internal/value"
)

// randRel builds a random constant relation for the join properties.
func randRel(rng *rand.Rand, attrs []string, maxLen, keyRange int) constOp {
	n := rng.Intn(maxLen + 1)
	ts := make(value.TupleSeq, n)
	for i := range ts {
		t := value.Tuple{}
		for _, a := range attrs {
			t[a] = value.Int(int64(rng.Intn(keyRange)))
		}
		ts[i] = t
	}
	return constOp{ts: ts, attrs: attrs}
}

func quickCheck(t *testing.T, name string, prop func(seed int64) bool) {
	t.Helper()
	cfg := &quick.Config{MaxCount: 300}
	if testing.Short() {
		cfg.MaxCount = 50
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Errorf("%s violated: %v", name, err)
	}
}

// TestOPHashJoinMatchesDefinition: the Claussen order-preserving hash join
// produces exactly σ[A1=A2](e1 × e2), including order, for any partition
// count.
func TestOPHashJoinMatchesDefinition(t *testing.T) {
	quickCheck(t, "OPHashJoin=σ(×)", func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		e1 := randRel(rng, []string{"A1", "C"}, 10, 4)
		e2 := randRel(rng, []string{"A2", "B"}, 10, 4)
		pred := CmpExpr{L: Var{Name: "A1"}, R: Var{Name: "A2"}, Op: value.CmpEq}
		ref := Select{In: Cross{L: e1, R: e2}, Pred: pred}.Eval(NewCtx(nil), nil)
		for _, p := range []int{0, 2, 3, 7, 64} {
			j := OPHashJoin{L: e1, R: e2, LAttrs: []string{"A1"}, RAttrs: []string{"A2"}, Partitions: p}
			if !value.TupleSeqEqual(ref, j.Eval(NewCtx(nil), nil)) {
				return false
			}
		}
		return true
	})
}

// TestOPHashJoinResidual: with a residual predicate the operator equals the
// definitional join on the conjunction.
func TestOPHashJoinResidual(t *testing.T) {
	quickCheck(t, "OPHashJoin-residual", func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		e1 := randRel(rng, []string{"A1", "C"}, 10, 4)
		e2 := randRel(rng, []string{"A2", "B"}, 10, 4)
		eq := CmpExpr{L: Var{Name: "A1"}, R: Var{Name: "A2"}, Op: value.CmpEq}
		res := CmpExpr{L: Var{Name: "C"}, R: Var{Name: "B"}, Op: value.CmpLe}
		ref := Select{In: Cross{L: e1, R: e2}, Pred: AndExpr{L: eq, R: res}}.Eval(NewCtx(nil), nil)
		j := OPHashJoin{L: e1, R: e2, LAttrs: []string{"A1"}, RAttrs: []string{"A2"},
			Residual: res, Partitions: 4}
		return value.TupleSeqEqual(ref, j.Eval(NewCtx(nil), nil))
	})
}

// TestOPHashJoinMultiKey: composite equality keys partition and match
// correctly.
func TestOPHashJoinMultiKey(t *testing.T) {
	quickCheck(t, "OPHashJoin-multikey", func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		e1 := randRel(rng, []string{"A1", "K1"}, 10, 3)
		e2 := randRel(rng, []string{"A2", "K2"}, 10, 3)
		pred := AndExpr{
			L: CmpExpr{L: Var{Name: "A1"}, R: Var{Name: "A2"}, Op: value.CmpEq},
			R: CmpExpr{L: Var{Name: "K1"}, R: Var{Name: "K2"}, Op: value.CmpEq},
		}
		ref := Select{In: Cross{L: e1, R: e2}, Pred: pred}.Eval(NewCtx(nil), nil)
		j := OPHashJoin{L: e1, R: e2,
			LAttrs: []string{"A1", "K1"}, RAttrs: []string{"A2", "K2"}, Partitions: 4}
		return value.TupleSeqEqual(ref, j.Eval(NewCtx(nil), nil))
	})
}

// TestOPHashJoinEmptyInputs: empty operands follow the binary-operator
// convention (empty left ⇒ empty output; empty right ⇒ no matches).
func TestOPHashJoinEmptyInputs(t *testing.T) {
	nonEmpty := constOp{ts: value.TupleSeq{{"A1": value.Int(1)}}, attrs: []string{"A1"}}
	empty := constOp{attrs: []string{"A2"}}
	j1 := OPHashJoin{L: empty, R: nonEmpty, LAttrs: []string{"A2"}, RAttrs: []string{"A1"}}
	if got := j1.Eval(NewCtx(nil), nil); len(got) != 0 {
		t.Errorf("empty left: got %d tuples, want 0", len(got))
	}
	j2 := OPHashJoin{L: nonEmpty, R: empty, LAttrs: []string{"A1"}, RAttrs: []string{"A2"}}
	if got := j2.Eval(NewCtx(nil), nil); len(got) != 0 {
		t.Errorf("empty right: got %d tuples, want 0", len(got))
	}
}

// TestOPHashJoinAgainstGraceSort: OPHashJoin output equals the paper's
// Grace+restore-order strategy (AttachSeq → GraceJoin → Sort → drop seq).
func TestOPHashJoinAgainstGraceSort(t *testing.T) {
	quickCheck(t, "OPHashJoin=Grace+Sort", func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		e1 := randRel(rng, []string{"A1", "C"}, 10, 4)
		e2 := randRel(rng, []string{"A2", "B"}, 10, 4)
		grace := ProjectDrop{
			In: Sort{
				In: GraceJoin{
					L:      AttachSeq{In: e1, Attr: "#l"},
					R:      AttachSeq{In: e2, Attr: "#r"},
					LAttrs: []string{"A1"},
					RAttrs: []string{"A2"},
				},
				By: []string{"#l", "#r"},
			},
			Names: []string{"#l", "#r"},
		}
		op := OPHashJoin{L: e1, R: e2, LAttrs: []string{"A1"}, RAttrs: []string{"A2"}, Partitions: 8}
		return value.TupleSeqEqual(grace.Eval(NewCtx(nil), nil), op.Eval(NewCtx(nil), nil))
	})
}
