package algebra

import (
	"fmt"
	"strings"

	"nalquery/internal/value"
)

// eqPair is one A1 = A2 conjunct of a join predicate, with Left an attribute
// of the left input and Right one of the right input.
type eqPair struct{ Left, Right string }

// splitEqPred decomposes a predicate into equality pairs between left and
// right attributes plus a residual predicate. It reports ok=false when no
// equality pair could be extracted (then only nested-loop evaluation
// applies).
func splitEqPred(p Expr, lAttrs, rAttrs map[string]bool) (pairs []eqPair, residual Expr, ok bool) {
	conjuncts := flattenAnd(p)
	var rest []Expr
	for _, c := range conjuncts {
		if cmp, isCmp := c.(CmpExpr); isCmp && cmp.Op == value.CmpEq {
			lv, lok := cmp.L.(Var)
			rv, rok := cmp.R.(Var)
			if lok && rok {
				switch {
				case lAttrs[lv.Name] && rAttrs[rv.Name]:
					pairs = append(pairs, eqPair{Left: lv.Name, Right: rv.Name})
					continue
				case rAttrs[lv.Name] && lAttrs[rv.Name]:
					pairs = append(pairs, eqPair{Left: rv.Name, Right: lv.Name})
					continue
				}
			}
		}
		rest = append(rest, c)
	}
	if len(pairs) == 0 {
		return nil, p, false
	}
	residual = combineAnd(rest)
	return pairs, residual, true
}

func flattenAnd(p Expr) []Expr {
	if a, ok := p.(AndExpr); ok {
		return append(flattenAnd(a.L), flattenAnd(a.R)...)
	}
	return []Expr{p}
}

func combineAnd(es []Expr) Expr {
	if len(es) == 0 {
		return nil
	}
	out := es[0]
	for _, e := range es[1:] {
		out = AndExpr{L: out, R: e}
	}
	return out
}

// SplitEquiJoin decomposes a join predicate over the inputs l and r into
// equality key columns plus a residual predicate. It reports ok=false when
// no equality pair could be extracted or an input's schema is unknown —
// then only predicate-based evaluation applies. Used by the rewriter to
// derive the physical unordered/partitioned join operators, which take key
// columns instead of predicates.
func SplitEquiJoin(pred Expr, l, r Op) (lKeys, rKeys []string, residual Expr, ok bool) {
	lSet := attrSet(l)
	rSet := attrSet(r)
	if lSet == nil || rSet == nil {
		return nil, nil, pred, false
	}
	pairs, residual, ok := splitEqPred(pred, lSet, rSet)
	if !ok {
		return nil, nil, pred, false
	}
	for _, p := range pairs {
		lKeys = append(lKeys, p.Left)
		rKeys = append(rKeys, p.Right)
	}
	return lKeys, rKeys, residual, true
}

func attrSet(op Op) map[string]bool {
	attrs, ok := op.Attrs()
	if !ok {
		return nil
	}
	m := make(map[string]bool, len(attrs))
	for _, a := range attrs {
		m[a] = true
	}
	return m
}

func hashKey(t value.Tuple, attrs []string) string {
	if len(attrs) == 1 {
		return value.Key(t[attrs[0]])
	}
	var sb strings.Builder
	for _, a := range attrs {
		sb.WriteString(value.Key(t[a]))
		sb.WriteByte('|')
	}
	return sb.String()
}

// buildHash partitions tuples into buckets keyed by the hash key over attrs,
// preserving the order of tuples within each bucket.
func buildHash(ts value.TupleSeq, attrs []string) map[string]value.TupleSeq {
	h := make(map[string]value.TupleSeq, len(ts))
	for _, t := range ts {
		k := hashKey(t, attrs)
		h[k] = append(h[k], t)
	}
	return h
}

// joinPlan prepares the hash-based execution of a binary predicate operator.
// Probing in left order with order-preserving buckets yields exactly the
// order of the definitional σp(e1 × e2) — the stand-in for the
// order-preserving hash join of Claussen et al. the paper cites.
type joinPlan struct {
	pairs    []eqPair
	lKeys    []string
	rKeys    []string
	residual Expr
	hash     map[string]value.TupleSeq
	right    value.TupleSeq
	useHash  bool
}

func prepareJoin(ctx *Ctx, env value.Tuple, l, r Op, pred Expr) joinPlan {
	right := r.Eval(ctx, env)
	// The build side materializes here whether or not hashing applies.
	ctx.ChargeTuples(TripBuild, right)
	lSet := attrSet(l)
	rSet := attrSet(r)
	var jp joinPlan
	jp.right = right
	if lSet != nil && rSet != nil {
		if pairs, residual, ok := splitEqPred(pred, lSet, rSet); ok {
			jp.pairs = pairs
			jp.residual = residual
			for _, p := range pairs {
				jp.lKeys = append(jp.lKeys, p.Left)
				jp.rKeys = append(jp.rKeys, p.Right)
			}
			jp.hash = buildHash(right, jp.rKeys)
			jp.useHash = true
			return jp
		}
	}
	jp.residual = pred
	return jp
}

// matches returns the right tuples joining with lt, in right order.
func (jp *joinPlan) matches(ctx *Ctx, env value.Tuple, lt value.Tuple) value.TupleSeq {
	candidates := jp.right
	if jp.useHash {
		candidates = jp.hash[hashKey(lt, jp.lKeys)]
	}
	if jp.residual == nil {
		return candidates
	}
	var out value.TupleSeq
	for _, rt := range candidates {
		if value.EffectiveBool(jp.residual.Eval(ctx, env.Concat(lt).Concat(rt))) {
			out = append(out, rt)
		}
	}
	return out
}

// anyMatch reports whether some right tuple joins with lt.
func (jp *joinPlan) anyMatch(ctx *Ctx, env value.Tuple, lt value.Tuple) bool {
	candidates := jp.right
	if jp.useHash {
		candidates = jp.hash[hashKey(lt, jp.lKeys)]
	}
	if jp.residual == nil {
		return len(candidates) > 0
	}
	for _, rt := range candidates {
		if value.EffectiveBool(jp.residual.Eval(ctx, env.Concat(lt).Concat(rt))) {
			return true
		}
	}
	return false
}

// Join is the order-preserving join e1 ⋈p e2 := σp(e1 × e2).
type Join struct {
	L, R Op
	Pred Expr
}

// Eval implements Op.
func (j Join) Eval(ctx *Ctx, env value.Tuple) value.TupleSeq {
	l := j.L.Eval(ctx, env)
	if len(l) == 0 {
		return nil
	}
	jp := prepareJoin(ctx, env, j.L, j.R, j.Pred)
	var out value.TupleSeq
	for _, lt := range l {
		ctx.Fault(TripProbe)
		for _, rt := range jp.matches(ctx, env, lt) {
			out = append(out, lt.Concat(rt))
		}
	}
	return out
}

func (j Join) String() string { return fmt.Sprintf("⋈[%s]", j.Pred.String()) }

// Children implements Op.
func (j Join) Children() []Op { return []Op{j.L, j.R} }

// Exprs implements Op.
func (j Join) Exprs() []Expr { return []Expr{j.Pred} }

// Attrs implements Op.
func (j Join) Attrs() ([]string, bool) {
	l, ok1 := j.L.Attrs()
	r, ok2 := j.R.Attrs()
	if !ok1 || !ok2 {
		return nil, false
	}
	return unionAttrs(l, r), true
}

// SemiJoin is the order-preserving semijoin e1 ⋉p e2: left tuples with at
// least one join partner (Sec. 2).
type SemiJoin struct {
	L, R Op
	Pred Expr
}

// Eval implements Op.
func (j SemiJoin) Eval(ctx *Ctx, env value.Tuple) value.TupleSeq {
	l := j.L.Eval(ctx, env)
	if len(l) == 0 {
		return nil
	}
	jp := prepareJoin(ctx, env, j.L, j.R, j.Pred)
	var out value.TupleSeq
	for _, lt := range l {
		ctx.Fault(TripProbe)
		if jp.anyMatch(ctx, env, lt) {
			out = append(out, lt)
		}
	}
	return out
}

func (j SemiJoin) String() string { return fmt.Sprintf("⋉[%s]", j.Pred.String()) }

// Children implements Op.
func (j SemiJoin) Children() []Op { return []Op{j.L, j.R} }

// Exprs implements Op.
func (j SemiJoin) Exprs() []Expr { return []Expr{j.Pred} }

// Attrs implements Op.
func (j SemiJoin) Attrs() ([]string, bool) { return j.L.Attrs() }

// AntiJoin is the order-preserving anti-join e1 ▷p e2: left tuples without
// any join partner (Sec. 2).
type AntiJoin struct {
	L, R Op
	Pred Expr
}

// Eval implements Op.
func (j AntiJoin) Eval(ctx *Ctx, env value.Tuple) value.TupleSeq {
	l := j.L.Eval(ctx, env)
	if len(l) == 0 {
		return nil
	}
	jp := prepareJoin(ctx, env, j.L, j.R, j.Pred)
	var out value.TupleSeq
	for _, lt := range l {
		ctx.Fault(TripProbe)
		if !jp.anyMatch(ctx, env, lt) {
			out = append(out, lt)
		}
	}
	return out
}

func (j AntiJoin) String() string { return fmt.Sprintf("▷[%s]", j.Pred.String()) }

// Children implements Op.
func (j AntiJoin) Children() []Op { return []Op{j.L, j.R} }

// Exprs implements Op.
func (j AntiJoin) Exprs() []Expr { return []Expr{j.Pred} }

// Attrs implements Op.
func (j AntiJoin) Attrs() ([]string, bool) { return j.L.Attrs() }

// OuterJoin is the paper's left outer join e1 ⟕[g:e]p e2 (Sec. 2): left
// tuples with join partners behave like the join; a left tuple without
// partner is padded with ⊥ on A(e2)\{g} and the attribute g receives the
// default value e — in the unnesting equivalences, e = f() applied to the
// empty group.
type OuterJoin struct {
	L, R Op
	Pred Expr
	// G is the grouped attribute of the right-hand side that receives the
	// default on padding.
	G string
	// Default computes e = f(ε), the value for empty groups.
	Default SeqFunc
}

// Eval implements Op.
func (j OuterJoin) Eval(ctx *Ctx, env value.Tuple) value.TupleSeq {
	l := j.L.Eval(ctx, env)
	if len(l) == 0 {
		return nil
	}
	jp := prepareJoin(ctx, env, j.L, j.R, j.Pred)
	rAttrs, rKnown := j.R.Attrs()
	if !rKnown && len(jp.right) > 0 {
		rAttrs = jp.right[0].Attrs()
	}
	var padAttrs []string
	for _, a := range rAttrs {
		if a != j.G {
			padAttrs = append(padAttrs, a)
		}
	}
	var out value.TupleSeq
	for _, lt := range l {
		ctx.Fault(TripProbe)
		ms := jp.matches(ctx, env, lt)
		if len(ms) == 0 {
			nt := lt.Concat(value.NullTuple(padAttrs))
			nt[j.G] = j.Default.Apply(ctx, env, nil)
			out = append(out, nt)
			continue
		}
		for _, rt := range ms {
			out = append(out, lt.Concat(rt))
		}
	}
	return out
}

func (j OuterJoin) String() string {
	return fmt.Sprintf("⟕[%s:%s(); %s]", j.G, j.Default.String(), j.Pred.String())
}

// Children implements Op.
func (j OuterJoin) Children() []Op { return []Op{j.L, j.R} }

// Exprs implements Op.
func (j OuterJoin) Exprs() []Expr { return []Expr{j.Pred} }

// Attrs implements Op.
func (j OuterJoin) Attrs() ([]string, bool) {
	l, ok1 := j.L.Attrs()
	r, ok2 := j.R.Attrs()
	if !ok1 || !ok2 {
		return nil, false
	}
	return unionAttrs(l, r), true
}
