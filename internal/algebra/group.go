package algebra

import (
	"fmt"
	"strings"

	"nalquery/internal/value"
)

// GroupUnary is the unary grouping operator Γg;θA;f(e) (Sec. 2): the group
// keys are the distinct A-projections of e (in first-occurrence order —
// deterministic and idempotent, which is all the paper requires of ΠD), and
// for each key the new attribute g holds f applied to the tuples of e whose
// A-attributes stand in relation θ to the key.
type GroupUnary struct {
	In    Op
	G     string
	By    []string
	Theta value.CmpOp
	F     SeqFunc
}

// Eval implements Op.
func (g GroupUnary) Eval(ctx *Ctx, env value.Tuple) value.TupleSeq {
	in := g.In.Eval(ctx, env)
	ctx.ChargeTuples(TripGroup, in)
	keys, buckets := partition(in, g.By)
	var out value.TupleSeq
	if g.Theta == value.CmpEq {
		for _, k := range keys {
			b := buckets[k]
			nt := b[0].Project(g.By)
			nt[g.G] = g.F.Apply(ctx, env, b)
			out = append(out, nt)
		}
		return out
	}
	// General θ: compare every distinct key against every input tuple.
	for _, k := range keys {
		keyT := buckets[k][0].Project(g.By)
		var grp value.TupleSeq
		for _, t := range in {
			if thetaMatch(keyT, t, g.By, g.By, g.Theta) {
				grp = append(grp, t)
			}
		}
		nt := keyT.Copy()
		nt[g.G] = g.F.Apply(ctx, env, grp)
		out = append(out, nt)
	}
	return out
}

func (g GroupUnary) String() string {
	return fmt.Sprintf("Γ[%s;%s%s;%s]", g.G, strings.Join(g.By, ","), g.Theta, g.F.String())
}

// Children implements Op.
func (g GroupUnary) Children() []Op { return []Op{g.In} }

// Exprs implements Op.
func (g GroupUnary) Exprs() []Expr { return nil }

// Attrs implements Op.
func (g GroupUnary) Attrs() ([]string, bool) {
	return unionAttrs(g.By, []string{g.G}), true
}

// partition splits tuples into buckets by the hash key over attrs; keys are
// returned in first-occurrence order and buckets preserve input order.
func partition(ts value.TupleSeq, attrs []string) ([]string, map[string]value.TupleSeq) {
	var keys []string
	buckets := make(map[string]value.TupleSeq, len(ts))
	for _, t := range ts {
		k := hashKey(t, attrs)
		if _, ok := buckets[k]; !ok {
			keys = append(keys, k)
		}
		buckets[k] = append(buckets[k], t)
	}
	return keys, buckets
}

func thetaMatch(lt, rt value.Tuple, lAttrs, rAttrs []string, op value.CmpOp) bool {
	for i := range lAttrs {
		la := value.AtomizeSingle(lt[lAttrs[i]])
		ra := value.AtomizeSingle(rt[rAttrs[i]])
		if la == nil || ra == nil || !value.CompareAtomic(la, ra, op) {
			return false
		}
	}
	return true
}

// GroupSelf is the order-preserving self-grouping operator: every input
// tuple is extended by G holding F applied to the tuple's own equality
// group (all input tuples with the same By-key), and the tuples are emitted
// in input order. It is the sound single-scan form of "Γ, filter, µ" used
// by the Sec. 5.4 self-join grouping plan: unlike unnesting a unary
// grouping, tuples whose keys interleave in the input stay interleaved —
// which is what the paper's order-preservation claim requires when key
// values repeat non-contiguously.
type GroupSelf struct {
	In Op
	G  string
	By []string
	F  SeqFunc
}

// Eval implements Op.
func (g GroupSelf) Eval(ctx *Ctx, env value.Tuple) value.TupleSeq {
	in := g.In.Eval(ctx, env)
	ctx.ChargeTuples(TripGroup, in)
	_, buckets := partition(in, g.By)
	applied := make(map[string]value.Value, len(buckets))
	out := make(value.TupleSeq, 0, len(in))
	for _, t := range in {
		k := hashKey(t, g.By)
		v, ok := applied[k]
		if !ok {
			v = g.F.Apply(ctx, env, buckets[k])
			applied[k] = v
		}
		nt := t.Copy()
		nt[g.G] = v
		out = append(out, nt)
	}
	return out
}

func (g GroupSelf) String() string {
	return fmt.Sprintf("Γself[%s;%s;%s]", g.G, strings.Join(g.By, ","), g.F.String())
}

// Children implements Op.
func (g GroupSelf) Children() []Op { return []Op{g.In} }

// Exprs implements Op.
func (g GroupSelf) Exprs() []Expr { return nil }

// Attrs implements Op.
func (g GroupSelf) Attrs() ([]string, bool) {
	in, ok := g.In.Attrs()
	if !ok {
		return nil, false
	}
	return unionAttrs(in, []string{g.G}), true
}

// GroupBinary is the binary grouping operator (nest-join)
// e1 Γg;A1θA2;f e2 (Sec. 2): every left tuple is extended by g holding f
// applied to the right tuples standing in relation θ. The left side
// determines the groups — the property the unnesting correctness hinges on.
type GroupBinary struct {
	L, R   Op
	G      string
	LAttrs []string
	RAttrs []string
	Theta  value.CmpOp
	F      SeqFunc
	// ForceScan disables the hash fast path for θ = '=' and evaluates the
	// definitional scan per left tuple (for the ablation experiments).
	ForceScan bool
}

// Eval implements Op.
func (g GroupBinary) Eval(ctx *Ctx, env value.Tuple) value.TupleSeq {
	l := g.L.Eval(ctx, env)
	if len(l) == 0 {
		return nil
	}
	r := g.R.Eval(ctx, env)
	ctx.ChargeTuples(TripGroup, r)
	out := make(value.TupleSeq, 0, len(l))
	if g.Theta == value.CmpEq && !g.ForceScan {
		hash := buildHash(r, g.RAttrs)
		for _, lt := range l {
			grp := hash[hashKey(lt, g.LAttrs)]
			nt := lt.Copy()
			nt[g.G] = g.F.Apply(ctx, env, grp)
			out = append(out, nt)
		}
		return out
	}
	for _, lt := range l {
		var grp value.TupleSeq
		for _, rt := range r {
			if thetaMatch(lt, rt, g.LAttrs, g.RAttrs, g.Theta) {
				grp = append(grp, rt)
			}
		}
		nt := lt.Copy()
		nt[g.G] = g.F.Apply(ctx, env, grp)
		out = append(out, nt)
	}
	return out
}

func (g GroupBinary) String() string {
	return fmt.Sprintf("Γ[%s;%s%s%s;%s]", g.G, strings.Join(g.LAttrs, ","), g.Theta,
		strings.Join(g.RAttrs, ","), g.F.String())
}

// Children implements Op.
func (g GroupBinary) Children() []Op { return []Op{g.L, g.R} }

// Exprs implements Op.
func (g GroupBinary) Exprs() []Expr { return nil }

// Attrs implements Op.
func (g GroupBinary) Attrs() ([]string, bool) {
	l, ok := g.L.Attrs()
	if !ok {
		return nil, false
	}
	return unionAttrs(l, []string{g.G}), true
}

// Unnest is the µg operator (Sec. 2): it flattens the tuple-sequence-valued
// attribute g. A tuple whose g is empty yields one output tuple padded with
// ⊥ on the attributes of g ("In case that g is empty, it returns the tuple
// ⊥A(e.g)").
type Unnest struct {
	In   Op
	Attr string
	// InnerAttrs optionally names A(e.g) for ⊥-padding when every group in
	// the input is empty; otherwise the attribute set is inferred from the
	// first non-empty group.
	InnerAttrs []string
}

// Eval implements Op.
func (u Unnest) Eval(ctx *Ctx, env value.Tuple) value.TupleSeq {
	in := u.In.Eval(ctx, env)
	// The ⊥-pad attribute set A(e.g) resolves lazily, on the first empty
	// group: the schema resolver names it even when every group is empty
	// (the paper defines ⊥A(e.g) by the schema, not by an observed member;
	// nested evaluation re-runs Eval per outer tuple, so the subtree walk
	// must not be paid when nothing pads). Observation remains the
	// fallback for inputs the resolver cannot type.
	inner := u.InnerAttrs
	resolved := inner != nil
	padAttrs := func() []string {
		if resolved {
			return inner
		}
		resolved = true
		if inner = staticInnerAttrs(u.In, u.Attr); inner != nil {
			return inner
		}
		for _, t := range in {
			// TuplesOf admits both payload representations: a slot-native
			// child below a map-engine plan hands groups over as RowSeq.
			if ts, ok := value.TuplesOf(t[u.Attr]); ok && len(ts) > 0 {
				inner = ts[0].Attrs()
				break
			}
		}
		return inner
	}
	var out value.TupleSeq
	for _, t := range in {
		base := t.Drop([]string{u.Attr})
		ts, _ := value.TuplesOf(t[u.Attr])
		if len(ts) == 0 {
			out = append(out, base.Concat(value.NullTuple(padAttrs())))
			continue
		}
		for _, g := range ts {
			out = append(out, base.Concat(g))
		}
	}
	return out
}

// staticInnerAttrs returns the statically known attribute set of a
// tuple-sequence-valued attribute of in's output, or nil.
func staticInnerAttrs(in Op, attr string) []string {
	if insc, ok := ResolveSchema(in); ok {
		if nested := insc.nested(attr); nested != nil && nested.Lay != nil {
			return nested.Lay.Names()
		}
	}
	return nil
}

func (u Unnest) String() string { return fmt.Sprintf("µ[%s]", u.Attr) }

// Children implements Op.
func (u Unnest) Children() []Op { return []Op{u.In} }

// Exprs implements Op.
func (u Unnest) Exprs() []Expr { return nil }

// Attrs implements Op.
func (u Unnest) Attrs() ([]string, bool) {
	in, ok := u.In.Attrs()
	if !ok || u.InnerAttrs == nil {
		return nil, false
	}
	var kept []string
	for _, a := range in {
		if a != u.Attr {
			kept = append(kept, a)
		}
	}
	return unionAttrs(kept, u.InnerAttrs), true
}

// UnnestDistinct is µD (Eqv. 4): unnesting that eliminates duplicate tuples
// within each nested sequence — µDg(e) = (α(e)|ḡ × ΠD(α(e).g)) ⊕ µDg(τ(e)).
// Unlike µ it does not ⊥-pad empty groups (the definition's × with the empty
// sequence is empty).
type UnnestDistinct struct {
	In   Op
	Attr string
}

// Eval implements Op.
func (u UnnestDistinct) Eval(ctx *Ctx, env value.Tuple) value.TupleSeq {
	in := u.In.Eval(ctx, env)
	var out value.TupleSeq
	for _, t := range in {
		base := t.Drop([]string{u.Attr})
		ts, _ := value.TuplesOf(t[u.Attr])
		seen := map[string]bool{}
		for _, g := range ts {
			k := hashKey(g, g.Attrs())
			if seen[k] {
				continue
			}
			ctx.charge(TripDedup, 0, dedupEntryBytes+int64(len(k)))
			seen[k] = true
			out = append(out, base.Concat(g))
		}
	}
	return out
}

func (u UnnestDistinct) String() string { return fmt.Sprintf("µD[%s]", u.Attr) }

// Children implements Op.
func (u UnnestDistinct) Children() []Op { return []Op{u.In} }

// Exprs implements Op.
func (u UnnestDistinct) Exprs() []Expr { return nil }

// Attrs implements Op.
func (u UnnestDistinct) Attrs() ([]string, bool) { return nil, false }

// BindTuples is the e[a] constructor of Sec. 2 as an expression: it turns an
// item sequence into a sequence of single-attribute tuples — the form the
// translation uses for nested sequence-valued attributes (b2/author[a2']).
type BindTuples struct {
	E    Expr
	Attr string
}

// Eval implements Expr.
func (b BindTuples) Eval(ctx *Ctx, env value.Tuple) value.Value {
	return value.BindSeq(value.AsSeq(b.E.Eval(ctx, env)), b.Attr)
}

func (b BindTuples) String() string { return fmt.Sprintf("%s[%s]", b.E.String(), b.Attr) }

// FreeVars implements Expr.
func (b BindTuples) FreeVars(dst map[string]bool) { b.E.FreeVars(dst) }
