package algebra

import (
	"nalquery/internal/value"
)

// This file compiles subscript expressions against a resolved Schema:
// attribute references become slot reads, so the per-tuple cost of σ, χ, Υ
// and Ξ drops from map lookups (and the env.Concat map rebuild) to slice
// indexing. Nested algebraic expressions — the nested-loop strategy the
// unnesting equivalences remove — stay on the definitional evaluator behind
// an environment shim: they are exactly the slow path whose cost the paper
// measures, and compiling them away would change what the benchmarks
// compare.

// RowExpr is a slot-compiled expression, evaluated against one row.
type RowExpr func(ctx *Ctx, r value.Row) value.Value

// compileExpr compiles e against the input schema sc; env carries the
// bindings of free variables of the enclosing plan execution (fixed for the
// lifetime of one iterator tree, so free references resolve at compile
// time).
func compileExpr(e Expr, sc Schema, env value.Tuple) RowExpr {
	switch w := e.(type) {
	case Var:
		if slot, ok := sc.Lay.Slot(w.Name); ok {
			if v, bound := env[w.Name]; bound {
				// A nil slot is an absent attribute: the map engine's env ◦ t
				// lets the environment binding show through, so the compiled
				// form must fall back too.
				return func(_ *Ctx, r value.Row) value.Value {
					if x := r.Vals[slot]; x != nil {
						return x
					}
					return v
				}
			}
			return func(_ *Ctx, r value.Row) value.Value { return r.Vals[slot] }
		}
		v := env[w.Name]
		return func(*Ctx, value.Row) value.Value { return v }

	case ConstVal:
		return func(*Ctx, value.Row) value.Value { return w.V }

	case Param:
		// External-variable read: one slice index into the per-run binding
		// table — the run-time twin of a constant.
		idx := w.Idx
		return func(ctx *Ctx, _ value.Row) value.Value { return ctx.ParamVal(idx) }

	case Doc:
		return func(ctx *Ctx, _ value.Row) value.Value { return w.Eval(ctx, nil) }

	case PathOf:
		in := compileExpr(w.Input, sc, env)
		return func(ctx *Ctx, r value.Row) value.Value { return w.Path.Eval(in(ctx, r)) }

	case CmpExpr:
		l := compileExpr(w.L, sc, env)
		rr := compileExpr(w.R, sc, env)
		return func(ctx *Ctx, r value.Row) value.Value {
			return value.Bool(value.GeneralCompare(l(ctx, r), rr(ctx, r), w.Op))
		}

	case InExpr:
		item := compileExpr(w.Item, sc, env)
		seq := compileExpr(w.Seq, sc, env)
		return func(ctx *Ctx, r value.Row) value.Value {
			return value.Bool(value.Member(item(ctx, r), seq(ctx, r)))
		}

	case AndExpr:
		l := compileExpr(w.L, sc, env)
		rr := compileExpr(w.R, sc, env)
		return func(ctx *Ctx, r value.Row) value.Value {
			if !value.EffectiveBool(l(ctx, r)) {
				return value.Bool(false)
			}
			return value.Bool(value.EffectiveBool(rr(ctx, r)))
		}

	case OrExpr:
		l := compileExpr(w.L, sc, env)
		rr := compileExpr(w.R, sc, env)
		return func(ctx *Ctx, r value.Row) value.Value {
			if value.EffectiveBool(l(ctx, r)) {
				return value.Bool(true)
			}
			return value.Bool(value.EffectiveBool(rr(ctx, r)))
		}

	case NotExpr:
		in := compileExpr(w.E, sc, env)
		return func(ctx *Ctx, r value.Row) value.Value {
			return value.Bool(!value.EffectiveBool(in(ctx, r)))
		}

	case CondExpr:
		cond := compileExpr(w.If, sc, env)
		then := compileExpr(w.Then, sc, env)
		els := compileExpr(w.Else, sc, env)
		return func(ctx *Ctx, r value.Row) value.Value {
			if value.EffectiveBool(cond(ctx, r)) {
				return then(ctx, r)
			}
			return els(ctx, r)
		}

	case ArithExpr:
		l := compileExpr(w.L, sc, env)
		rr := compileExpr(w.R, sc, env)
		return func(ctx *Ctx, r value.Row) value.Value {
			return evalArith(w.Op, l(ctx, r), rr(ctx, r))
		}

	case Call:
		args := make([]RowExpr, len(w.Args))
		for i, a := range w.Args {
			args[i] = compileExpr(a, sc, env)
		}
		// The argument buffer is reused across invocations: evalBuiltin never
		// retains the slice, and argument evaluation cannot re-enter this
		// closure (expressions form a tree).
		vals := make([]value.Value, len(args))
		return func(ctx *Ctx, r value.Row) value.Value {
			for i, a := range args {
				vals[i] = a(ctx, r)
			}
			return evalBuiltin(w.Fn, vals)
		}

	case BindTuples:
		in := compileExpr(w.E, sc, env)
		lay := value.NewLayout(w.Attr)
		return func(ctx *Ctx, r value.Row) value.Value {
			return value.BindRowSeqLay(lay, value.AsSeq(in(ctx, r)))
		}

	case AggOfAttr:
		attr := compileExpr(w.Attr, sc, env)
		if fnNeedsRowEnv(w.F, sc, exprNested(w.Attr, sc)) {
			// Free variables of f resolve from the current row: materialize
			// env ◦ row (the environment shim — not a data-path map tuple).
			// The applier closes over that per-row environment, so there is
			// nothing to cache across rows.
			return func(ctx *Ctx, r value.Row) value.Value {
				switch ts := attr(ctx, r).(type) {
				case value.TupleSeq:
					return w.F.Apply(ctx, rowEnv(env, r), ts)
				case value.RowSeq:
					return applyFnRowSeq(ctx, rowEnv(env, r), w.F, ts)
				}
				return value.Null{}
			}
		}
		// Payloads of one operator share a member layout: compile the
		// applier once per layout, not once per outer row, and reuse the
		// member buffer (no applier retains it — SFIdent, the one that
		// would, returns the payload before delegation). Iterator trees
		// evaluate single-threaded, so closure-local caching is safe.
		var cachedLay *value.Layout
		var cachedApply func(*Ctx, value.Tuple, []value.Row) value.Value
		var rowBuf []value.Row
		return func(ctx *Ctx, r value.Row) value.Value {
			switch ts := attr(ctx, r).(type) {
			case value.TupleSeq:
				return w.F.Apply(ctx, env, ts)
			case value.RowSeq:
				switch w.F.(type) {
				case SFIdent:
					return ts
				case SFCount:
					return value.Int(int64(ts.Len()))
				}
				if ts.Lay() != cachedLay {
					cachedLay = ts.Lay()
					cachedApply = groupApplier(w.F, cachedLay, env)
				}
				rowBuf = rowSeqRows(ts, rowBuf[:0])
				return cachedApply(ctx, env, rowBuf)
			}
			return value.Null{}
		}

	default:
		// Nested algebraic expressions (NestedApply, ExistsQ, ForallQ) and
		// unknown extensions: materialize the row as an environment and run
		// the definitional evaluator — the per-outer-tuple nested loop.
		return func(ctx *Ctx, r value.Row) value.Value {
			return e.Eval(ctx, rowEnv(env, r))
		}
	}
}

// evalArith mirrors ArithExpr.Eval on already-computed operands.
func evalArith(op byte, lv, rv value.Value) value.Value {
	l, lok := numArg(lv)
	r, rok := numArg(rv)
	if !lok || !rok {
		return value.Null{}
	}
	switch op {
	case '+':
		return value.Float(l + r)
	case '-':
		return value.Float(l - r)
	case '*':
		return value.Float(l * r)
	case '/':
		if r == 0 {
			return value.Null{}
		}
		return value.Float(l / r)
	case '%':
		// Guard the truncated divisor too: a fractional r in (-1, 1) passes
		// r != 0 but truncates to 0 and would panic the integer modulus.
		if int64(r) == 0 {
			return value.Null{}
		}
		return value.Float(float64(int64(l) % int64(r)))
	default:
		return value.Null{}
	}
}

// rowEnv materializes env ◦ row as a map tuple for the definitional
// evaluator — only the nested-loop slow path pays this.
func rowEnv(env value.Tuple, r value.Row) value.Tuple {
	out := make(value.Tuple, len(env)+len(r.Vals))
	for k, v := range env {
		out[k] = v
	}
	names := r.Lay.Names()
	for i, v := range r.Vals {
		if v != nil {
			out[names[i]] = v
		}
	}
	return out
}

// fnNeedsRowEnv reports whether a sequence function's free variables must be
// satisfied from the current row (then Apply needs the materialized env ◦
// row). Variables bound inside the group tuples (inner schema) shadow the
// environment, so they never force materialization.
func fnNeedsRowEnv(f SeqFunc, sc Schema, inner *Inner) bool {
	free := map[string]bool{}
	f.FreeVars(free)
	for name := range free {
		if inner != nil && inner.Lay != nil && inner.Lay.Has(name) {
			continue
		}
		if sc.Lay.Has(name) {
			return true
		}
	}
	return false
}

// compiledCmd is one slot-compiled Ξ command.
type compiledCmd struct {
	lit   string
	e     RowExpr
	isLit bool
}

func compileCommands(cs []Command, sc Schema, env value.Tuple) []compiledCmd {
	out := make([]compiledCmd, len(cs))
	for i, c := range cs {
		if c.IsLit {
			out[i] = compiledCmd{lit: c.Lit, isLit: true}
		} else {
			out[i] = compiledCmd{e: compileExpr(c.E, sc, env)}
		}
	}
	return out
}

func execCompiled(ctx *Ctx, r value.Row, cs []compiledCmd) {
	for _, c := range cs {
		if c.isLit {
			ctx.EmitLit(c.lit)
			continue
		}
		ctx.EmitValue(c.e(ctx, r))
	}
}

// slotsOf resolves attribute names to slots under a layout; missing names
// report ok=false (the caller falls back to name-based access).
func slotsOf(lay *value.Layout, names []string) ([]int, bool) {
	out := make([]int, len(names))
	for i, n := range names {
		s, ok := lay.Slot(n)
		if !ok {
			return nil, false
		}
		out[i] = s
	}
	return out, true
}

// rowKey computes the canonical grouping/join key of a row over slots —
// hashKey's slot twin. One- and two-column keys (the common cases) are
// allocation-free composites; wider keys fold into one string.
func rowKey(r value.Row, slots []int) value.HashKey {
	return value.KeyOfSlots(r.Vals, slots)
}

// tupleHashKey is rowKey for map tuples (group members inside TupleSeq
// values, and the partitioned operators' definitional evaluators — which
// must key identically to the slot engine so both agree on partition
// order).
func tupleHashKey(t value.Tuple, attrs []string) value.HashKey {
	return value.KeyOfAttrs(t, attrs)
}
