package algebra

import (
	"container/heap"
	"fmt"
	"strings"

	"nalquery/internal/value"
)

// This file implements the order-preserving hash join of Claussen, Kemper
// and Kossmann ("Order-preserving hash joins: Sorting (almost) for free",
// ref. [6] of the paper). The paper cites it as the intended physical
// implementation of the order-preserving join family; its own measurements
// use a Grace hash join plus a sort (see GraceJoin + Sort). The algorithm:
//
//  1. tag every probe-side tuple with its ordinal position (the order key);
//  2. partition both inputs by a hash of the join key, as a Grace join does;
//  3. join the partition pairs one after another — within one partition the
//     output is produced in probe order because probing happens in probe
//     order;
//  4. merge the per-partition outputs by the probe-side ordinal. Each
//     partition's output is already sorted by that ordinal, so restoring the
//     global probe order is a P-way merge — O(N log P) instead of the
//     O(N log N) full sort the Grace+Sort strategy pays. This is the
//     "sorting (almost) for free".
//
// The operator produces exactly the sequence of the definitional
// σp(e1 × e2) and is property-tested against it.

// OPHashJoin is the order-preserving hash join e1 ⋈[A1=A2 ∧ residual] e2 of
// Claussen et al. [6]. LAttrs/RAttrs are the equality key columns; Residual
// is an optional extra predicate on joined tuples.
type OPHashJoin struct {
	L, R   Op
	LAttrs []string
	RAttrs []string
	// Residual is evaluated on each joined tuple after the key match.
	Residual Expr
	// Partitions is an explicit partition count P; values < 2 let the
	// operator size P from the build-side cardinality at evaluation time.
	Partitions int
}

// partitionCount returns the effective partition count for a build side of
// buildCard tuples: an explicit Partitions setting wins; otherwise P grows
// with the build cardinality (one partition per 128 build tuples) and caps
// at 16, so tiny inputs stop paying a 16-way partition plus a 16-way
// merge.
func (j OPHashJoin) partitionCount(buildCard int) int {
	if j.Partitions >= 2 {
		return j.Partitions
	}
	p := 1 + buildCard/128
	if p > 16 {
		p = 16
	}
	return p
}

// opTagged is one joined output tuple tagged with the probe ordinal it
// belongs to, and a running emission index that keeps tuples of the same
// probe tuple in right order through the merge.
type opTagged struct {
	seq   int
	minor int
	t     value.Tuple
}

// opMergeHeap is the P-way merge heap over the partition output streams.
// Streams are compared by the head element's (seq, minor).
type opMergeHeap struct {
	streams [][]opTagged
}

func (h *opMergeHeap) Len() int { return len(h.streams) }
func (h *opMergeHeap) Less(i, k int) bool {
	a, b := h.streams[i][0], h.streams[k][0]
	if a.seq != b.seq {
		return a.seq < b.seq
	}
	return a.minor < b.minor
}
func (h *opMergeHeap) Swap(i, k int) { h.streams[i], h.streams[k] = h.streams[k], h.streams[i] }
func (h *opMergeHeap) Push(x any)    { h.streams = append(h.streams, x.([]opTagged)) }
func (h *opMergeHeap) Pop() any {
	n := len(h.streams)
	s := h.streams[n-1]
	h.streams = h.streams[:n-1]
	return s
}

// Eval implements Op.
func (j OPHashJoin) Eval(ctx *Ctx, env value.Tuple) value.TupleSeq {
	l := j.L.Eval(ctx, env)
	if len(l) == 0 {
		return nil
	}
	r := j.R.Eval(ctx, env)
	ctx.ChargeTuples(TripPartition, l)
	ctx.ChargeTuples(TripPartition, r)
	p := j.partitionCount(len(r))

	// Phase 1+2: tag the probe side with ordinals and partition both inputs
	// by the composite HashKey's hash.
	type tagged struct {
		seq int
		t   value.Tuple
	}
	lParts := make([][]tagged, p)
	for i, t := range l {
		pi := int(tupleHashKey(t, j.LAttrs).Hash() % uint64(p))
		lParts[pi] = append(lParts[pi], tagged{seq: i, t: t})
	}
	rParts := make([][]value.Tuple, p)
	for _, t := range r {
		pi := int(tupleHashKey(t, j.RAttrs).Hash() % uint64(p))
		rParts[pi] = append(rParts[pi], t)
	}

	// Phase 3: join partition pairs; output per partition is in probe order.
	outs := make([][]opTagged, 0, p)
	for pi := 0; pi < p; pi++ {
		if len(lParts[pi]) == 0 || len(rParts[pi]) == 0 {
			continue
		}
		buckets := make(map[value.HashKey]value.TupleSeq, len(rParts[pi]))
		for _, rt := range rParts[pi] {
			k := tupleHashKey(rt, j.RAttrs)
			buckets[k] = append(buckets[k], rt)
		}
		var out []opTagged
		for _, lt := range lParts[pi] {
			minor := 0
			for _, rt := range buckets[tupleHashKey(lt.t, j.LAttrs)] {
				if j.Residual != nil &&
					!value.EffectiveBool(j.Residual.Eval(ctx, env.Concat(lt.t).Concat(rt))) {
					continue
				}
				out = append(out, opTagged{seq: lt.seq, minor: minor, t: lt.t.Concat(rt)})
				minor++
			}
		}
		if len(out) > 0 {
			outs = append(outs, out)
		}
	}

	// Phase 4: P-way merge by probe ordinal.
	if len(outs) == 0 {
		return nil
	}
	if len(outs) == 1 {
		res := make(value.TupleSeq, len(outs[0]))
		for i, x := range outs[0] {
			res[i] = x.t
		}
		return res
	}
	h := &opMergeHeap{streams: outs}
	heap.Init(h)
	var res value.TupleSeq
	for h.Len() > 0 {
		s := h.streams[0]
		res = append(res, s[0].t)
		if len(s) > 1 {
			h.streams[0] = s[1:]
			heap.Fix(h, 0)
		} else {
			heap.Pop(h)
		}
	}
	return res
}

func (j OPHashJoin) String() string {
	return fmt.Sprintf("OPHashJoin[%s=%s]",
		strings.Join(j.LAttrs, ","), strings.Join(j.RAttrs, ","))
}

// Children implements Op.
func (j OPHashJoin) Children() []Op { return []Op{j.L, j.R} }

// Exprs implements Op.
func (j OPHashJoin) Exprs() []Expr {
	if j.Residual != nil {
		return []Expr{j.Residual}
	}
	return nil
}

// Attrs implements Op.
func (j OPHashJoin) Attrs() ([]string, bool) {
	l, ok1 := j.L.Attrs()
	r, ok2 := j.R.Attrs()
	if !ok1 || !ok2 {
		return nil, false
	}
	return unionAttrs(l, r), true
}
