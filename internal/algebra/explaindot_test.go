package algebra

import (
	"strings"
	"testing"

	"nalquery/internal/value"
)

// TestExplainDotWellFormed: the dot rendering opens and closes the digraph,
// declares every operator node, and draws dashed edges for nested
// expressions.
func TestExplainDotWellFormed(t *testing.T) {
	e1 := constOp{ts: value.TupleSeq{{"A1": value.Int(1)}}, attrs: []string{"A1"}}
	e2 := constOp{ts: value.TupleSeq{{"A2": value.Int(1)}}, attrs: []string{"A2"}}
	nested := Map{In: e1, Attr: "g",
		E: NestedApply{F: SFCount{}, Plan: Select{In: e2,
			Pred: CmpExpr{L: Var{Name: "A1"}, R: Var{Name: "A2"}, Op: value.CmpEq}}}}
	dot := ExplainDot(nested)
	if !strings.HasPrefix(dot, "digraph plan {") || !strings.HasSuffix(dot, "}\n") {
		t.Fatalf("not a digraph: %q", dot)
	}
	if !strings.Contains(dot, "style=dashed") {
		t.Errorf("nested expression not rendered as dashed edge:\n%s", dot)
	}
	if !strings.Contains(dot, "nested count") {
		t.Errorf("nested edge label missing:\n%s", dot)
	}
	// Node ids must be unique and every declared id must appear in an edge
	// or be the root.
	if strings.Count(dot, "n0 [label=") != 1 {
		t.Errorf("root node declared %d times", strings.Count(dot, "n0 [label="))
	}
}

// TestExplainDotQuantifier: quantifier ranges hang off the selection with a
// labelled dashed edge.
func TestExplainDotQuantifier(t *testing.T) {
	e1 := constOp{ts: value.TupleSeq{{"A1": value.Int(1)}}, attrs: []string{"A1"}}
	e2 := constOp{ts: value.TupleSeq{{"A2": value.Int(1)}}, attrs: []string{"A2"}}
	sel := Select{In: e1, Pred: ExistsQ{Var: "x", RangeAttr: "A2",
		Range: e2, Pred: CmpExpr{L: Var{Name: "x"}, R: Var{Name: "A1"}, Op: value.CmpEq}}}
	dot := ExplainDot(sel)
	if !strings.Contains(dot, "exists x") {
		t.Errorf("quantifier edge label missing:\n%s", dot)
	}
}
