package algebra

import (
	"testing"

	"nalquery/internal/value"
)

// Test fixtures mirroring Fig. 1 / Fig. 2 of the paper:
// R1 = <[A1:1], [A1:2], [A1:3]>, R2 = <[1,2],[1,3],[2,4],[2,5]>.

func relR1() Op {
	return constOp{
		ts: value.TupleSeq{
			{"A1": value.Int(1)},
			{"A1": value.Int(2)},
			{"A1": value.Int(3)},
		},
		attrs: []string{"A1"},
	}
}

func relR2() Op {
	return constOp{
		ts: value.TupleSeq{
			{"A2": value.Int(1), "B": value.Int(2)},
			{"A2": value.Int(1), "B": value.Int(3)},
			{"A2": value.Int(2), "B": value.Int(4)},
			{"A2": value.Int(2), "B": value.Int(5)},
		},
		attrs: []string{"A2", "B"},
	}
}

// constOp is a leaf operator over a constant tuple sequence (a stand-in for
// a base scan in operator-level tests).
type constOp struct {
	ts    value.TupleSeq
	attrs []string
}

func (c constOp) Eval(*Ctx, value.Tuple) value.TupleSeq { return c.ts }
func (c constOp) String() string                        { return "const" }
func (c constOp) Children() []Op                        { return nil }
func (c constOp) Exprs() []Expr                         { return nil }
func (c constOp) Attrs() ([]string, bool)               { return c.attrs, true }

func eval(t *testing.T, op Op) value.TupleSeq {
	t.Helper()
	ctx := NewCtx(nil)
	return op.Eval(ctx, nil)
}

func eqCmp(l, r string) Expr {
	return CmpExpr{L: Var{Name: l}, R: Var{Name: r}, Op: value.CmpEq}
}

func TestSingleton(t *testing.T) {
	out := eval(t, Singleton{})
	if len(out) != 1 || len(out[0]) != 0 {
		t.Fatalf("□ must produce one empty tuple, got %s", out)
	}
}

func TestSelectPreservesOrder(t *testing.T) {
	out := eval(t, Select{In: relR2(), Pred: CmpExpr{L: Var{Name: "B"}, R: ConstVal{V: value.Int(3)}, Op: value.CmpGt}})
	want := value.TupleSeq{
		{"A2": value.Int(2), "B": value.Int(4)},
		{"A2": value.Int(2), "B": value.Int(5)},
	}
	if !value.TupleSeqEqual(out, want) {
		t.Fatalf("σ wrong: %s", out)
	}
}

// TestMapFigure1 replays the paper's Fig. 1: χ a:σA1=A2(R2) (R1).
func TestMapFigure1(t *testing.T) {
	m := Map{
		In:   relR1(),
		Attr: "a",
		E:    NestedApply{F: SFIdent{}, Plan: Select{In: relR2(), Pred: eqCmp("A1", "A2")}},
	}
	out := eval(t, m)
	if len(out) != 3 {
		t.Fatalf("want 3 tuples, got %d", len(out))
	}
	g1 := out[0]["a"].(value.TupleSeq)
	g3 := out[2]["a"].(value.TupleSeq)
	if len(g1) != 2 || len(g3) != 0 {
		t.Fatalf("Fig.1 group sizes wrong: |a(1)|=%d |a(3)|=%d", len(g1), len(g3))
	}
	if !value.DeepEqual(g1[0]["B"], value.Int(2)) || !value.DeepEqual(g1[1]["B"], value.Int(3)) {
		t.Fatalf("Fig.1 group content wrong: %s", g1)
	}
}

// TestGroupUnaryFigure2 replays Γg;=A2;count(R2) and Γg;=A2;id(R2).
func TestGroupUnaryFigure2(t *testing.T) {
	count := eval(t, GroupUnary{In: relR2(), G: "g", By: []string{"A2"}, Theta: value.CmpEq, F: SFCount{}})
	wantCount := value.TupleSeq{
		{"A2": value.Int(1), "g": value.Int(2)},
		{"A2": value.Int(2), "g": value.Int(2)},
	}
	if !value.TupleSeqEqual(count, wantCount) {
		t.Fatalf("Γcount wrong: %s", count)
	}

	id := eval(t, GroupUnary{In: relR2(), G: "g", By: []string{"A2"}, Theta: value.CmpEq, F: SFIdent{}})
	if len(id) != 2 {
		t.Fatalf("Γid wrong size: %s", id)
	}
	g2 := id[1]["g"].(value.TupleSeq)
	if len(g2) != 2 || !value.DeepEqual(g2[0]["B"], value.Int(4)) {
		t.Fatalf("Γid second group wrong: %s", g2)
	}
}

// TestGroupBinaryFigure2 replays R1 Γg;A1=A2;id (R2): the left-hand side
// determines the groups, including the empty group for A1=3.
func TestGroupBinaryFigure2(t *testing.T) {
	out := eval(t, GroupBinary{L: relR1(), R: relR2(), G: "g",
		LAttrs: []string{"A1"}, RAttrs: []string{"A2"}, Theta: value.CmpEq, F: SFIdent{}})
	if len(out) != 3 {
		t.Fatalf("want 3 groups, got %d", len(out))
	}
	if g := out[2]["g"].(value.TupleSeq); len(g) != 0 {
		t.Fatalf("A1=3 must have the empty group, got %s", g)
	}
	if g := out[0]["g"].(value.TupleSeq); len(g) != 2 {
		t.Fatalf("A1=1 group wrong: %s", g)
	}
}

// TestGroupBinaryScanMatchesHash verifies the definitional scan variant and
// the hash fast path agree (the ablation baseline).
func TestGroupBinaryScanMatchesHash(t *testing.T) {
	hash := eval(t, GroupBinary{L: relR1(), R: relR2(), G: "g",
		LAttrs: []string{"A1"}, RAttrs: []string{"A2"}, Theta: value.CmpEq, F: SFCount{}})
	scan := eval(t, GroupBinary{L: relR1(), R: relR2(), G: "g",
		LAttrs: []string{"A1"}, RAttrs: []string{"A2"}, Theta: value.CmpEq, F: SFCount{}, ForceScan: true})
	if !value.TupleSeqEqual(hash, scan) {
		t.Fatalf("hash/scan disagree: %s vs %s", hash, scan)
	}
}

func TestGroupUnaryThetaNonEq(t *testing.T) {
	// Γg;<A2;count: for each distinct key k, count tuples with k < A2.
	out := eval(t, GroupUnary{In: relR2(), G: "g", By: []string{"A2"}, Theta: value.CmpLt, F: SFCount{}})
	// keys 1 and 2; for key 1: tuples with 1 < A2 → two (A2=2); key 2: none.
	want := value.TupleSeq{
		{"A2": value.Int(1), "g": value.Int(2)},
		{"A2": value.Int(2), "g": value.Int(0)},
	}
	if !value.TupleSeqEqual(out, want) {
		t.Fatalf("Γ θ=< wrong: %s", out)
	}
}

func TestCrossOrder(t *testing.T) {
	out := eval(t, Cross{L: relR1(), R: relR2()})
	if len(out) != 12 {
		t.Fatalf("cross size: %d", len(out))
	}
	// First four tuples pair A1=1 with R2 in order.
	if !value.DeepEqual(out[0]["A1"], value.Int(1)) || !value.DeepEqual(out[0]["B"], value.Int(2)) ||
		!value.DeepEqual(out[3]["B"], value.Int(5)) {
		t.Fatalf("cross order wrong: %s", out[:4])
	}
}

func TestJoinMatchesSelectCross(t *testing.T) {
	join := eval(t, Join{L: relR1(), R: relR2(), Pred: eqCmp("A1", "A2")})
	selCross := eval(t, Select{In: Cross{L: relR1(), R: relR2()}, Pred: eqCmp("A1", "A2")})
	if !value.TupleSeqEqual(join, selCross) {
		t.Fatalf("⋈ ≠ σ(×): %s vs %s", join, selCross)
	}
}

func TestSemiAntiJoin(t *testing.T) {
	semi := eval(t, SemiJoin{L: relR1(), R: relR2(), Pred: eqCmp("A1", "A2")})
	if len(semi) != 2 || !value.DeepEqual(semi[0]["A1"], value.Int(1)) || !value.DeepEqual(semi[1]["A1"], value.Int(2)) {
		t.Fatalf("⋉ wrong: %s", semi)
	}
	anti := eval(t, AntiJoin{L: relR1(), R: relR2(), Pred: eqCmp("A1", "A2")})
	if len(anti) != 1 || !value.DeepEqual(anti[0]["A1"], value.Int(3)) {
		t.Fatalf("▷ wrong: %s", anti)
	}
}

func TestOuterJoinDefault(t *testing.T) {
	// Join R1 with Rcount2 (grouped by A2, counted) — A1=3 finds no partner
	// and must receive the default count 0 (the paper's Sec. 2 example).
	grouped := GroupUnary{In: relR2(), G: "g", By: []string{"A2"}, Theta: value.CmpEq, F: SFCount{}}
	oj := OuterJoin{L: relR1(), R: grouped, Pred: eqCmp("A1", "A2"), G: "g", Default: SFCount{}}
	out := eval(t, oj)
	if len(out) != 3 {
		t.Fatalf("⟕ size %d", len(out))
	}
	if !value.DeepEqual(out[0]["g"], value.Int(2)) {
		t.Fatalf("⟕ g(1) = %v", out[0]["g"])
	}
	if !value.DeepEqual(out[2]["g"], value.Int(0)) {
		t.Fatalf("⟕ default must be f() = 0, got %v", out[2]["g"])
	}
	if _, isNull := out[2]["A2"].(value.Null); !isNull {
		t.Fatalf("⟕ must ⊥-pad A2, got %v", out[2]["A2"])
	}
}

// TestUnnestInverse verifies µg(Γg;=A2;id(R2)) = R2 (the paper's example
// "µg(Rg2) = R2").
func TestUnnestInverse(t *testing.T) {
	grouped := GroupUnary{In: relR2(), G: "g", By: []string{"A2"}, Theta: value.CmpEq, F: SFIdent{}}
	out := eval(t, Unnest{In: grouped, Attr: "g"})
	if !value.TupleSeqEqual(out, relR2().(constOp).ts) {
		t.Fatalf("µ(Γid) ≠ R2: %s", out)
	}
}

func TestUnnestPadsEmptyGroups(t *testing.T) {
	grouped := GroupBinary{L: relR1(), R: relR2(), G: "g",
		LAttrs: []string{"A1"}, RAttrs: []string{"A2"}, Theta: value.CmpEq, F: SFIdent{}}
	out := eval(t, Unnest{In: grouped, Attr: "g"})
	// 2 + 2 tuples from groups plus one ⊥-padded tuple for A1=3.
	if len(out) != 5 {
		t.Fatalf("µ size %d: %s", len(out), out)
	}
	last := out[4]
	if !value.DeepEqual(last["A1"], value.Int(3)) {
		t.Fatalf("padded tuple wrong: %s", last)
	}
	if _, isNull := last["A2"].(value.Null); !isNull {
		t.Fatalf("µ must ⊥-pad inner attributes: %s", last)
	}
}

func TestUnnestDistinct(t *testing.T) {
	dup := constOp{
		ts: value.TupleSeq{{
			"k": value.Int(7),
			"g": value.TupleSeq{{"x": value.Int(1)}, {"x": value.Int(1)}, {"x": value.Int(2)}},
		}},
		attrs: []string{"g", "k"},
	}
	out := eval(t, UnnestDistinct{In: dup, Attr: "g"})
	want := value.TupleSeq{
		{"k": value.Int(7), "x": value.Int(1)},
		{"k": value.Int(7), "x": value.Int(2)},
	}
	if !value.TupleSeqEqual(out, want) {
		t.Fatalf("µD wrong: %s", out)
	}
}

func TestUnnestMapDropsEmpty(t *testing.T) {
	u := UnnestMap{In: relR1(), Attr: "b", E: NestedApply{
		F:    SFProject{Attrs: []string{"B"}},
		Plan: Select{In: relR2(), Pred: eqCmp("A1", "A2")},
	}}
	out := eval(t, u)
	// A1=3 has no matches and produces no tuples (for-clause semantics).
	if len(out) != 4 {
		t.Fatalf("Υ size %d: %s", len(out), out)
	}
}

func TestProjectDistinctDeterministicIdempotent(t *testing.T) {
	p := ProjectDistinct{In: relR2(), Pairs: []Rename{{New: "A1", Old: "A2"}}}
	out1 := eval(t, p)
	out2 := eval(t, p)
	if !value.TupleSeqEqual(out1, out2) {
		t.Fatalf("ΠD must be deterministic")
	}
	want := value.TupleSeq{{"A1": value.Int(1)}, {"A1": value.Int(2)}}
	if !value.TupleSeqEqual(out1, want) {
		t.Fatalf("ΠD wrong: %s", out1)
	}
}

func TestProjectRenameKeepsOthers(t *testing.T) {
	out := eval(t, ProjectRename{In: relR2(), Pairs: []Rename{{New: "C", Old: "A2"}}})
	if _, ok := out[0]["C"]; !ok {
		t.Fatalf("rename missing C: %s", out[0])
	}
	if _, ok := out[0]["B"]; !ok {
		t.Fatalf("rename must keep B: %s", out[0])
	}
	if _, ok := out[0]["A2"]; ok {
		t.Fatalf("rename must remove A2: %s", out[0])
	}
}

func TestEmptyInputsProduceEmptyOutputs(t *testing.T) {
	empty := constOp{attrs: []string{"A1"}}
	ops := []Op{
		Select{In: empty, Pred: ConstVal{V: value.Bool(true)}},
		Project{In: empty, Names: []string{"A1"}},
		Map{In: empty, Attr: "x", E: ConstVal{V: value.Int(1)}},
		Cross{L: empty, R: relR2()},
		Join{L: empty, R: relR2(), Pred: eqCmp("A1", "A2")},
		SemiJoin{L: empty, R: relR2(), Pred: eqCmp("A1", "A2")},
		AntiJoin{L: empty, R: relR2(), Pred: eqCmp("A1", "A2")},
		OuterJoin{L: empty, R: relR2(), Pred: eqCmp("A1", "A2"), G: "g", Default: SFCount{}},
		GroupBinary{L: empty, R: relR2(), G: "g", LAttrs: []string{"A1"}, RAttrs: []string{"A2"}, Theta: value.CmpEq, F: SFCount{}},
		GroupUnary{In: empty, G: "g", By: []string{"A1"}, Theta: value.CmpEq, F: SFCount{}},
		Unnest{In: empty, Attr: "g"},
		UnnestDistinct{In: empty, Attr: "g"},
		UnnestMap{In: empty, Attr: "x", E: ConstVal{V: value.Int(1)}},
	}
	for _, op := range ops {
		if out := eval(t, op); len(out) != 0 {
			t.Errorf("%s on empty input produced %s", op.String(), out)
		}
	}
}

// TestXiAuthorTitleExample replays the Ξ example of Sec. 2 (author/title
// grouping with the group-detecting Ξ).
func TestXiAuthorTitleExample(t *testing.T) {
	in := constOp{
		ts: value.TupleSeq{
			{"a": value.Str("author1"), "t": value.Str("title1")},
			{"a": value.Str("author1"), "t": value.Str("title2")},
			{"a": value.Str("author2"), "t": value.Str("title1")},
			{"a": value.Str("author2"), "t": value.Str("title3")},
		},
		attrs: []string{"a", "t"},
	}
	xi := XiGroup{
		In: in,
		By: []string{"a"},
		S1: []Command{LitCmd("<author>"), LitCmd("<name>"), ExprCmd(Var{Name: "a"}), LitCmd("</name>")},
		S2: []Command{LitCmd("<title>"), ExprCmd(Var{Name: "t"}), LitCmd("</title>")},
		S3: []Command{LitCmd("</author>")},
	}
	ctx := NewCtx(nil)
	xi.Eval(ctx, nil)
	want := "<author><name>author1</name><title>title1</title><title>title2</title></author>" +
		"<author><name>author2</name><title>title1</title><title>title3</title></author>"
	if ctx.OutString() != want {
		t.Fatalf("Ξ example wrong:\ngot:  %s\nwant: %s", ctx.OutString(), want)
	}
}

func TestXiSimpleIdentity(t *testing.T) {
	xi := XiSimple{In: relR1(), Cmds: []Command{ExprCmd(Var{Name: "A1"}), LitCmd(";")}}
	ctx := NewCtx(nil)
	out := xi.Eval(ctx, nil)
	if !value.TupleSeqEqual(out, relR1().(constOp).ts) {
		t.Fatalf("Ξ must return its input")
	}
	if ctx.OutString() != "1;2;3;" {
		t.Fatalf("Ξ output %q", ctx.OutString())
	}
}

// TestFamiliarEquivalences spot-checks the Sec. 2 "familiar equivalences"
// on ordered sequences.
func TestFamiliarEquivalences(t *testing.T) {
	p1 := CmpExpr{L: Var{Name: "B"}, R: ConstVal{V: value.Int(2)}, Op: value.CmpGt}
	p2 := CmpExpr{L: Var{Name: "B"}, R: ConstVal{V: value.Int(5)}, Op: value.CmpLt}
	// σp1(σp2(e)) = σp2(σp1(e))
	a := eval(t, Select{In: Select{In: relR2(), Pred: p2}, Pred: p1})
	b := eval(t, Select{In: Select{In: relR2(), Pred: p1}, Pred: p2})
	if !value.TupleSeqEqual(a, b) {
		t.Fatalf("selection commutation fails")
	}
	// σp(e1 × e2) = e1 × σp(e2) for p over e2.
	c := eval(t, Select{In: Cross{L: relR1(), R: relR2()}, Pred: p1})
	d := eval(t, Cross{L: relR1(), R: Select{In: relR2(), Pred: p1}})
	if !value.TupleSeqEqual(c, d) {
		t.Fatalf("selection pushdown into × fails")
	}
	// Associativity of ×.
	e3 := constOp{ts: value.TupleSeq{{"C": value.Int(9)}}, attrs: []string{"C"}}
	x1 := eval(t, Cross{L: Cross{L: relR1(), R: relR2()}, R: e3})
	x2 := eval(t, Cross{L: relR1(), R: Cross{L: relR2(), R: e3}})
	if !value.TupleSeqEqual(x1, x2) {
		t.Fatalf("× associativity fails")
	}
}
