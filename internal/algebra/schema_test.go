package algebra

import (
	"testing"

	"nalquery/internal/value"
)

func TestResolveSchemaBasics(t *testing.T) {
	src := UnnestMap{In: Singleton{}, Attr: "x", E: ConstVal{V: value.Seq{value.Int(1)}}}
	sc, ok := ResolveSchema(Select{In: src, Pred: ConstVal{V: value.Bool(true)}})
	if !ok || !sc.Native {
		t.Fatalf("select schema: %+v %v", sc, ok)
	}
	if s, found := sc.Lay.Slot("x"); !found || s != 0 {
		t.Fatalf("slot of x: %d %v", s, found)
	}
}

func TestResolveSchemaRenameSwap(t *testing.T) {
	src := Map{In: Map{In: Singleton{}, Attr: "a", E: ConstVal{V: value.Int(1)}},
		Attr: "b", E: ConstVal{V: value.Int(2)}}
	op := ProjectRename{In: src, Pairs: []Rename{{New: "b", Old: "a"}, {New: "a", Old: "b"}}}
	sc, ok := ResolveSchema(op)
	if !ok || !sc.Native {
		t.Fatalf("swap schema: %+v %v", sc, ok)
	}
	sa, _ := sc.Lay.Slot("a")
	sb, _ := sc.Lay.Slot("b")
	if sa != 1 || sb != 0 {
		t.Fatalf("swap slots: a=%d b=%d", sa, sb)
	}
}

// TestResolveSchemaNestedTracking: µ over a binary grouping resolves because
// the resolver knows the group attribute's inner layout (the right input's
// schema under f = id).
func TestResolveSchemaNestedTracking(t *testing.T) {
	grouped := GroupBinary{L: relR1(), R: relR2(), G: "g",
		LAttrs: []string{"A1"}, RAttrs: []string{"A2"}, Theta: value.CmpEq, F: SFIdent{}}
	sc, ok := ResolveSchema(grouped)
	if !ok || sc.nested("g") == nil {
		t.Fatalf("group schema must track the inner layout: %+v %v", sc, ok)
	}
	mu := Unnest{In: grouped, Attr: "g"}
	msc, ok := ResolveSchema(mu)
	if !ok || !msc.Native {
		t.Fatalf("µ over tracked group must resolve natively: %+v %v", msc, ok)
	}
	for _, a := range []string{"A1", "A2", "B"} {
		if !msc.Lay.Has(a) {
			t.Fatalf("µ layout misses %s: %v", a, msc.Lay.Names())
		}
	}
	if msc.Lay.Has("g") {
		t.Fatalf("µ layout must drop the group attribute")
	}
}

// TestResolveSchemaFallbacks: the partitioned family resolves structurally
// (slot-native); unknown attribute sets fail.
func TestResolveSchemaFallbacks(t *testing.T) {
	uj := UnorderedJoin{L: relR1(), R: relR2(), LAttrs: []string{"A1"}, RAttrs: []string{"A2"}}
	sc, ok := ResolveSchema(uj)
	if !ok || !sc.Native {
		t.Fatalf("unordered join must resolve natively: %+v %v", sc, ok)
	}
	for i, a := range []string{"A1", "A2", "B"} {
		if s, found := sc.Lay.Slot(a); !found || s != i {
			t.Fatalf("⋈ᵁ concat layout wrong: %v", sc.Lay.Names())
		}
	}
	// µD's attribute set is statically unknown without nested tracking.
	ud := UnnestDistinct{In: constOp{attrs: []string{"a", "g"}}, Attr: "g"}
	if _, ok := ResolveSchema(ud); ok {
		t.Fatalf("µD without inner layout must not resolve")
	}
}

// TestProjectRenameSwap pins the satellite fix: a→b, b→a is a simultaneous
// substitution on both engines, not a sequential clobber.
func TestProjectRenameSwap(t *testing.T) {
	in := constOp{ts: value.TupleSeq{{"a": value.Int(1), "b": value.Int(2), "c": value.Int(3)}},
		attrs: []string{"a", "b", "c"}}
	op := ProjectRename{In: in, Pairs: []Rename{{New: "b", Old: "a"}, {New: "a", Old: "b"}}}
	want := value.Tuple{"a": value.Int(2), "b": value.Int(1), "c": value.Int(3)}

	got := op.Eval(NewCtx(nil), nil)
	if len(got) != 1 || !value.TupleEqual(got[0], want) {
		t.Fatalf("Eval swap: %s, want %s", got, want)
	}
	it := RunIter(op, NewCtx(nil), nil)
	if len(it) != 1 || !value.TupleEqual(it[0], want) {
		t.Fatalf("iterator swap: %s, want %s", it, want)
	}

	// Rename chains behave as simultaneous substitution too.
	chain := ProjectRename{In: in, Pairs: []Rename{{New: "b", Old: "a"}, {New: "d", Old: "b"}}}
	wantChain := value.Tuple{"b": value.Int(1), "d": value.Int(2), "c": value.Int(3)}
	gotChain := chain.Eval(NewCtx(nil), nil)
	if len(gotChain) != 1 || !value.TupleEqual(gotChain[0], wantChain) {
		t.Fatalf("Eval chain: %s, want %s", gotChain, wantChain)
	}
	itChain := RunIter(chain, NewCtx(nil), nil)
	if len(itChain) != 1 || !value.TupleEqual(itChain[0], wantChain) {
		t.Fatalf("iterator chain: %s, want %s", itChain, wantChain)
	}
}

// TestStreamingAllocsPerTuple is the allocation regression gate of the slot
// engine: streaming σ adds no per-tuple allocation and Π adds at most one
// (the projected value slice).
func TestStreamingAllocsPerTuple(t *testing.T) {
	const n = 2000
	seq := make(value.Seq, n)
	for i := range seq {
		seq[i] = value.Int(int64(i))
	}
	src := UnnestMap{In: Singleton{}, Attr: "x", E: ConstVal{V: seq}}
	sel := Select{In: src, Pred: CmpExpr{L: Var{Name: "x"}, R: ConstVal{V: value.Int(-1)}, Op: value.CmpGt}}
	proj := Project{In: sel, Names: []string{"x"}}

	perTuple := func(op Op) float64 {
		return testing.AllocsPerRun(5, func() {
			DrainIter(op, NewCtx(nil), nil)
		}) / n
	}
	base := perTuple(src)
	withSel := perTuple(sel)
	withProj := perTuple(proj)

	if d := withSel - base; d > 0.1 {
		t.Errorf("streaming σ adds %.2f allocs/tuple, want 0", d)
	}
	if d := withProj - withSel; d > 1.1 {
		t.Errorf("streaming Π adds %.2f allocs/tuple, want ≤1", d)
	}
	// Absolute guard: the σ+Π pipeline stays ≤1 alloc per tuple on top of
	// the source's own row.
	if withProj-base > 1.2 {
		t.Errorf("σ+Π pipeline adds %.2f allocs/tuple over the source", withProj-base)
	}
}

// TestArithModFractionalDivisor: a divisor in (-1, 1) truncates to 0 for
// the integer modulus; both engines must yield NULL instead of panicking.
func TestArithModFractionalDivisor(t *testing.T) {
	e := ArithExpr{L: ConstVal{V: value.Int(7)}, R: ConstVal{V: value.Float(0.5)}, Op: '%'}
	if v := e.Eval(NewCtx(nil), nil); v.Kind() != value.KNull {
		t.Fatalf("mod by 0.5 (eval): %v", v)
	}
	if v := evalArith('%', value.Int(7), value.Float(0.5)); v.Kind() != value.KNull {
		t.Fatalf("mod by 0.5 (compiled): %v", v)
	}
}
