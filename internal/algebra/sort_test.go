package algebra

import (
	"math/rand"
	"testing"
	"testing/quick"

	"nalquery/internal/value"
)

func TestAttachSeq(t *testing.T) {
	out := eval(t, AttachSeq{In: relR2(), Attr: "#"})
	for i, tp := range out {
		if !value.DeepEqual(tp["#"], value.Int(int64(i))) {
			t.Fatalf("seq attr wrong at %d: %v", i, tp["#"])
		}
	}
}

func TestSortStable(t *testing.T) {
	in := constOp{
		ts: value.TupleSeq{
			{"k": value.Int(2), "v": value.Str("a")},
			{"k": value.Int(1), "v": value.Str("b")},
			{"k": value.Int(2), "v": value.Str("c")},
			{"k": value.Int(1), "v": value.Str("d")},
		},
		attrs: []string{"k", "v"},
	}
	out := eval(t, Sort{In: in, By: []string{"k"}})
	want := []string{"b", "d", "a", "c"} // stable within equal keys
	for i, w := range want {
		if out[i]["v"].String() != w {
			t.Fatalf("stable sort wrong: %s", out)
		}
	}
}

func TestSortNumericVsString(t *testing.T) {
	in := constOp{
		ts: value.TupleSeq{
			{"k": value.Str("10")},
			{"k": value.Str("9")},
			{"k": value.Str("2")},
		},
		attrs: []string{"k"},
	}
	out := eval(t, Sort{In: in, By: []string{"k"}})
	// Numeric comparison: 2 < 9 < 10 (not lexicographic "10" < "2" < "9").
	if out[0]["k"].String() != "2" || out[2]["k"].String() != "10" {
		t.Fatalf("numeric sort wrong: %s", out)
	}
}

func TestSortEmptyFirst(t *testing.T) {
	in := constOp{
		ts: value.TupleSeq{
			{"k": value.Int(1)},
			{"k": value.Null{}},
		},
		attrs: []string{"k"},
	}
	out := eval(t, Sort{In: in, By: []string{"k"}})
	if _, isNull := out[0]["k"].(value.Null); !isNull {
		t.Fatalf("NULL must sort first: %s", out)
	}
}

// TestGraceJoinPlusSortEqualsOrderPreservingJoin reproduces the paper's
// implementation note: AttachSeq → GraceJoin → Sort#seq is equivalent to
// the order-preserving join.
func TestGraceJoinPlusSortEqualsOrderPreservingJoin(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		mk := func(attrs []string, n int) constOp {
			ts := make(value.TupleSeq, n)
			for i := range ts {
				tp := value.Tuple{}
				for _, a := range attrs {
					tp[a] = value.Int(int64(rng.Intn(4)))
				}
				ts[i] = tp
			}
			return constOp{ts: ts, attrs: attrs}
		}
		e1 := mk([]string{"A1", "C"}, rng.Intn(8))
		e2 := mk([]string{"A2", "B"}, rng.Intn(8))

		direct := Join{L: e1, R: e2, Pred: eqCmp("A1", "A2")}.Eval(NewCtx(nil), nil)

		grace := ProjectDrop{
			In: Sort{
				In: GraceJoin{
					L:      AttachSeq{In: e1, Attr: "#l"},
					R:      AttachSeq{In: e2, Attr: "#r"},
					LAttrs: []string{"A1"}, RAttrs: []string{"A2"},
				},
				By: []string{"#l", "#r"},
			},
			Names: []string{"#l", "#r"},
		}.Eval(NewCtx(nil), nil)

		return value.TupleSeqEqual(direct, grace)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestGraceJoinResidual(t *testing.T) {
	res := CmpExpr{L: Var{Name: "B"}, R: ConstVal{V: value.Int(4)}, Op: value.CmpGe}
	out := eval(t, GraceJoin{L: relR1(), R: relR2(),
		LAttrs: []string{"A1"}, RAttrs: []string{"A2"}, Residual: res})
	for _, tp := range out {
		if value.CompareAtomic(tp["B"], value.Int(4), value.CmpLt) {
			t.Fatalf("residual not applied: %s", tp)
		}
	}
	if len(out) != 2 {
		t.Fatalf("grace residual join size: %d", len(out))
	}
}

func TestGraceJoinDestroysProbeOrder(t *testing.T) {
	// Sanity: the grace join's output order is the partition order, not the
	// probe order (otherwise the ablation would not measure anything).
	l := constOp{ts: value.TupleSeq{
		{"A1": value.Int(2)}, {"A1": value.Int(1)},
	}, attrs: []string{"A1"}}
	out := eval(t, GraceJoin{L: l, R: relR2(), LAttrs: []string{"A1"}, RAttrs: []string{"A2"}})
	if len(out) != 4 {
		t.Fatalf("size: %d", len(out))
	}
	if !value.DeepEqual(out[0]["A1"], value.Int(1)) {
		t.Fatalf("grace join must emit partition order (key 1 first): %s", out)
	}
}
