package algebra

import (
	"math/rand"
	"testing"

	"nalquery/internal/value"
)

func sortFixture(vals ...value.Tuple) constOp {
	seen := map[string]bool{}
	var names []string
	for _, t := range vals {
		for _, a := range t.Attrs() {
			if !seen[a] {
				seen[a] = true
				names = append(names, a)
			}
		}
	}
	return constOp{ts: vals, attrs: names}
}

// TestSortDescending: Dirs flips individual keys.
func TestSortDescending(t *testing.T) {
	in := sortFixture(
		value.Tuple{"k": value.Int(2)},
		value.Tuple{"k": value.Int(1)},
		value.Tuple{"k": value.Int(3)},
	)
	out := Sort{In: in, By: []string{"k"}, Dirs: []bool{true}}.Eval(NewCtx(nil), nil)
	want := []int64{3, 2, 1}
	for i, w := range want {
		if got := int64(out[i]["k"].(value.Int)); got != w {
			t.Errorf("position %d: k = %d, want %d", i, got, w)
		}
	}
}

// TestSortMixedDirections: ascending primary key, descending secondary key.
func TestSortMixedDirections(t *testing.T) {
	in := sortFixture(
		value.Tuple{"a": value.Int(1), "b": value.Int(1)},
		value.Tuple{"a": value.Int(1), "b": value.Int(3)},
		value.Tuple{"a": value.Int(0), "b": value.Int(2)},
		value.Tuple{"a": value.Int(1), "b": value.Int(2)},
	)
	out := Sort{In: in, By: []string{"a", "b"}, Dirs: []bool{false, true}}.Eval(NewCtx(nil), nil)
	wantA := []int64{0, 1, 1, 1}
	wantB := []int64{2, 3, 2, 1}
	for i := range out {
		if int64(out[i]["a"].(value.Int)) != wantA[i] || int64(out[i]["b"].(value.Int)) != wantB[i] {
			t.Errorf("position %d: (%v,%v), want (%d,%d)", i, out[i]["a"], out[i]["b"], wantA[i], wantB[i])
		}
	}
}

// TestSortStabilityWithDirs: equal keys keep input order in both
// directions — the property XQuery's stable order by depends on.
func TestSortStabilityWithDirs(t *testing.T) {
	quickCheck(t, "sort-stability-dirs", func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(20)
		in := make(value.TupleSeq, n)
		for i := range in {
			in[i] = value.Tuple{"k": value.Int(int64(rng.Intn(3))), "i": value.Int(int64(i))}
		}
		for _, desc := range []bool{false, true} {
			out := Sort{In: constOp{ts: in, attrs: []string{"k", "i"}},
				By: []string{"k"}, Dirs: []bool{desc}}.Eval(NewCtx(nil), nil)
			last := map[int64]int64{}
			for _, tp := range out {
				k := int64(tp["k"].(value.Int))
				i := int64(tp["i"].(value.Int))
				if prev, ok := last[k]; ok && i < prev {
					return false
				}
				last[k] = i
			}
		}
		return true
	})
}

// TestSortEmptyDescending: empty keys sort first ascending and last
// descending.
func TestSortEmptyDescending(t *testing.T) {
	in := sortFixture(
		value.Tuple{"k": value.Int(1)},
		value.Tuple{"k": value.Null{}},
		value.Tuple{"k": value.Int(0)},
	)
	asc := Sort{In: in, By: []string{"k"}}.Eval(NewCtx(nil), nil)
	if _, isNull := asc[0]["k"].(value.Null); !isNull {
		t.Errorf("ascending: empty key must sort first, got %v", asc[0]["k"])
	}
	desc := Sort{In: in, By: []string{"k"}, Dirs: []bool{true}}.Eval(NewCtx(nil), nil)
	if _, isNull := desc[2]["k"].(value.Null); !isNull {
		t.Errorf("descending: empty key must sort last, got %v", desc[2]["k"])
	}
}
