package algebra

import (
	"math/rand"
	"testing"

	"nalquery/internal/value"
)

// The unordered operator family must compute the same bag as the ordered
// counterparts and be insensitive to input permutations (for
// order-insensitive subscript functions).

func shuffled(rng *rand.Rand, c constOp) constOp {
	ts := c.ts.Copy()
	rng.Shuffle(len(ts), func(i, j int) { ts[i], ts[j] = ts[j], ts[i] })
	return constOp{ts: ts, attrs: c.attrs}
}

func eqPred() Expr {
	return CmpExpr{L: Var{Name: "A1"}, R: Var{Name: "A2"}, Op: value.CmpEq}
}

// TestUnorderedJoinBagEqual: ⋈ᵁ computes the bag of ⋈, and is permutation
// insensitive.
func TestUnorderedJoinBagEqual(t *testing.T) {
	quickCheck(t, "⋈ᵁ", func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		e1 := randRel(rng, []string{"A1", "C"}, 10, 4)
		e2 := randRel(rng, []string{"A2", "B"}, 10, 4)
		ordered := Join{L: e1, R: e2, Pred: eqPred()}.Eval(NewCtx(nil), nil)
		u := UnorderedJoin{L: e1, R: e2, LAttrs: []string{"A1"}, RAttrs: []string{"A2"}}
		got := u.Eval(NewCtx(nil), nil)
		if !value.TupleSeqEqualBag(ordered, got) {
			return false
		}
		// Permutation insensitivity: same output on shuffled inputs.
		u2 := UnorderedJoin{L: shuffled(rng, e1), R: shuffled(rng, e2),
			LAttrs: []string{"A1"}, RAttrs: []string{"A2"}}
		return value.TupleSeqEqualBag(got, u2.Eval(NewCtx(nil), nil))
	})
}

// TestUnorderedJoinResidual: residual predicates filter the same bag.
func TestUnorderedJoinResidual(t *testing.T) {
	quickCheck(t, "⋈ᵁ-residual", func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		e1 := randRel(rng, []string{"A1", "C"}, 10, 4)
		e2 := randRel(rng, []string{"A2", "B"}, 10, 4)
		res := CmpExpr{L: Var{Name: "C"}, R: Var{Name: "B"}, Op: value.CmpLe}
		ordered := Join{L: e1, R: e2, Pred: AndExpr{L: eqPred(), R: res}}.Eval(NewCtx(nil), nil)
		u := UnorderedJoin{L: e1, R: e2, LAttrs: []string{"A1"}, RAttrs: []string{"A2"}, Residual: res}
		return value.TupleSeqEqualBag(ordered, u.Eval(NewCtx(nil), nil))
	})
}

// TestUnorderedSemiAntiBagEqual: ⋉ᵁ and ▷ᵁ compute the bags of ⋉ and ▷.
func TestUnorderedSemiAntiBagEqual(t *testing.T) {
	quickCheck(t, "⋉ᵁ/▷ᵁ", func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		e1 := randRel(rng, []string{"A1", "C"}, 10, 4)
		e2 := randRel(rng, []string{"A2"}, 10, 4)
		semi := SemiJoin{L: e1, R: e2, Pred: eqPred()}.Eval(NewCtx(nil), nil)
		anti := AntiJoin{L: e1, R: e2, Pred: eqPred()}.Eval(NewCtx(nil), nil)
		uSemi := UnorderedSemiJoin{L: e1, R: e2, LAttrs: []string{"A1"}, RAttrs: []string{"A2"}}
		uAnti := UnorderedAntiJoin{L: e1, R: e2, LAttrs: []string{"A1"}, RAttrs: []string{"A2"}}
		return value.TupleSeqEqualBag(semi, uSemi.Eval(NewCtx(nil), nil)) &&
			value.TupleSeqEqualBag(anti, uAnti.Eval(NewCtx(nil), nil))
	})
}

// TestUnorderedSemiAntiPartition: ⋉ᵁ and ▷ᵁ partition the left input — every
// left tuple appears in exactly one of the two outputs.
func TestUnorderedSemiAntiPartition(t *testing.T) {
	quickCheck(t, "⋉ᵁ∪▷ᵁ=e1", func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		e1 := randRel(rng, []string{"A1"}, 10, 3)
		e2 := randRel(rng, []string{"A2"}, 10, 3)
		uSemi := UnorderedSemiJoin{L: e1, R: e2, LAttrs: []string{"A1"}, RAttrs: []string{"A2"}}
		uAnti := UnorderedAntiJoin{L: e1, R: e2, LAttrs: []string{"A1"}, RAttrs: []string{"A2"}}
		both := append(uSemi.Eval(NewCtx(nil), nil), uAnti.Eval(NewCtx(nil), nil)...)
		return value.TupleSeqEqualBag(e1.ts, both)
	})
}

// TestUnorderedOuterJoinBagEqual: ⟕ᵁ computes the bag of ⟕ (with grouped
// right side and count default, the Eqv. 2 configuration).
func TestUnorderedOuterJoinBagEqual(t *testing.T) {
	quickCheck(t, "⟕ᵁ", func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		e1 := randRel(rng, []string{"A1"}, 10, 4)
		e2 := randRel(rng, []string{"A2", "B"}, 10, 4)
		grouped := GroupUnary{In: e2, G: "g", By: []string{"A2"}, Theta: value.CmpEq, F: SFCount{}}
		ordered := OuterJoin{L: e1, R: grouped, Pred: eqPred(), G: "g", Default: SFCount{}}.
			Eval(NewCtx(nil), nil)
		u := UnorderedOuterJoin{L: e1, R: grouped, LAttrs: []string{"A1"}, RAttrs: []string{"A2"},
			G: "g", Default: SFCount{}}
		return value.TupleSeqEqualBag(ordered, u.Eval(NewCtx(nil), nil))
	})
}

// TestUnorderedGroupUnaryBagEqual: Γᵁ computes the bag of Γ for all θ with an
// order-insensitive f, and is permutation insensitive.
func TestUnorderedGroupUnaryBagEqual(t *testing.T) {
	quickCheck(t, "Γᵁ", func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		e := randRel(rng, []string{"A2", "B"}, 10, 4)
		theta := thetasAll[rng.Intn(len(thetasAll))]
		f := SFAgg{Fn: "sum", Attr: "B"}
		ordered := GroupUnary{In: e, G: "g", By: []string{"A2"}, Theta: theta, F: f}.
			Eval(NewCtx(nil), nil)
		u := UnorderedGroupUnary{In: e, G: "g", By: []string{"A2"}, Theta: theta, F: f}
		got := u.Eval(NewCtx(nil), nil)
		if !value.TupleSeqEqualBag(ordered, got) {
			return false
		}
		u2 := UnorderedGroupUnary{In: shuffled(rng, e), G: "g", By: []string{"A2"}, Theta: theta, F: f}
		return value.TupleSeqEqualBag(got, u2.Eval(NewCtx(nil), nil))
	})
}

var thetasAll = []value.CmpOp{value.CmpEq, value.CmpNe, value.CmpLt, value.CmpLe, value.CmpGt, value.CmpGe}

// TestUnorderedGroupBinaryBagEqual: the unordered nest-join computes the bag
// of the ordered one.
func TestUnorderedGroupBinaryBagEqual(t *testing.T) {
	quickCheck(t, "Γᵁ-binary", func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		e1 := randRel(rng, []string{"A1"}, 8, 4)
		e2 := randRel(rng, []string{"A2", "B"}, 8, 4)
		theta := thetasAll[rng.Intn(len(thetasAll))]
		f := SFCount{}
		ordered := GroupBinary{L: e1, R: e2, G: "g",
			LAttrs: []string{"A1"}, RAttrs: []string{"A2"}, Theta: theta, F: f}.
			Eval(NewCtx(nil), nil)
		u := UnorderedGroupBinary{L: e1, R: e2, G: "g",
			LAttrs: []string{"A1"}, RAttrs: []string{"A2"}, Theta: theta, F: f}
		return value.TupleSeqEqualBag(ordered, u.Eval(NewCtx(nil), nil))
	})
}

// TestUnorderedDeterminism: key order is a fixed total order — two
// evaluations produce identical sequences (not merely equal bags).
func TestUnorderedDeterminism(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	e1 := randRel(rng, []string{"A1"}, 20, 5)
	e2 := randRel(rng, []string{"A2", "B"}, 20, 5)
	u := UnorderedJoin{L: e1, R: e2, LAttrs: []string{"A1"}, RAttrs: []string{"A2"}}
	first := u.Eval(NewCtx(nil), nil)
	for i := 0; i < 5; i++ {
		if !value.TupleSeqEqual(first, u.Eval(NewCtx(nil), nil)) {
			t.Fatalf("unordered join is nondeterministic at repetition %d", i)
		}
	}
}

// TestUnorderedEmptyInputs: the binary-operator conventions hold.
func TestUnorderedEmptyInputs(t *testing.T) {
	empty := constOp{attrs: []string{"A1"}}
	one := constOp{ts: value.TupleSeq{{"A2": value.Int(1)}}, attrs: []string{"A2"}}
	ops := []Op{
		UnorderedJoin{L: empty, R: one, LAttrs: []string{"A1"}, RAttrs: []string{"A2"}},
		UnorderedSemiJoin{L: empty, R: one, LAttrs: []string{"A1"}, RAttrs: []string{"A2"}},
		UnorderedAntiJoin{L: empty, R: one, LAttrs: []string{"A1"}, RAttrs: []string{"A2"}},
		UnorderedOuterJoin{L: empty, R: one, LAttrs: []string{"A1"}, RAttrs: []string{"A2"},
			G: "A2", Default: SFCount{}},
		UnorderedGroupBinary{L: empty, R: one, G: "g",
			LAttrs: []string{"A1"}, RAttrs: []string{"A2"}, Theta: value.CmpEq, F: SFCount{}},
		UnorderedGroupUnary{In: empty, G: "g", By: []string{"A1"}, Theta: value.CmpEq, F: SFCount{}},
	}
	for _, op := range ops {
		if got := op.Eval(NewCtx(nil), nil); len(got) != 0 {
			t.Errorf("%s on empty left: got %d tuples, want 0", op.String(), len(got))
		}
	}
}
